package durability

import (
	"context"
	"math"
	"testing"

	"durability/internal/rng"
)

func TestSessionWatchMaintainsAnswer(t *testing.T) {
	ctx := context.Background()
	s, err := NewSession(&RandomWalk{Sigma: 1},
		WithRelativeErrorTarget(0.15), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Z: ScalarValue, Beta: 20, Horizon: 100}
	sub, err := s.Watch(ctx, "live", q)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	first := sub.Answer()
	if first.P() <= 0 || first.P() >= 1 {
		t.Fatalf("initial answer %v outside (0,1)", first.P())
	}
	if first.FreshSteps == 0 {
		t.Fatal("initial answer did no sampling")
	}

	// Publishing a nearby state maintains the answer incrementally.
	refreshes, err := s.Publish(ctx, "live", &Scalar{V: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(refreshes) != 1 {
		t.Fatalf("%d refreshes, want 1", len(refreshes))
	}
	ans := refreshes[0].Answer
	if ans.SurvivedRoots == 0 {
		t.Fatalf("no roots carried forward: %+v", ans)
	}
	if ans.FreshSteps+ans.SearchSteps >= first.FreshSteps+first.SearchSteps {
		t.Fatalf("maintenance (%d steps) cost as much as the cold start (%d)",
			ans.FreshSteps+ans.SearchSteps, first.FreshSteps+first.SearchSteps)
	}
	if st := s.StreamStats(); st.Streams != 1 || st.Subscriptions != 1 || st.Ticks != 1 {
		t.Fatalf("stream stats %+v", st)
	}
}

func TestWatchRejectsIncompatibleOptions(t *testing.T) {
	ctx := context.Background()
	s, err := NewSession(&RandomWalk{Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Z: ScalarValue, Beta: 20, Horizon: 100}
	if _, err := s.Watch(ctx, "live", q, WithMethod(SRS)); err == nil {
		t.Error("Watch accepted SRS")
	}
	if _, err := s.Watch(ctx, "live", q, WithMethod(SMLSS)); err == nil {
		t.Error("Watch accepted s-MLSS")
	}
	if _, err := s.Watch(ctx, "live", q, WithPlan(0.5)); err == nil {
		t.Error("Watch accepted a fixed plan")
	}
	if _, err := s.Watch(ctx, "live", q, WithBalancedLevels(0.01, 4)); err == nil {
		t.Error("Watch accepted balanced levels")
	}
	if _, err := s.Watch(ctx, "live", Query{Z: ScalarValue, Beta: -1, Horizon: 100}); err == nil {
		t.Error("Watch accepted an invalid query")
	}
}

func TestPackageWatch(t *testing.T) {
	ctx := context.Background()
	sub, err := Watch(ctx, &RandomWalk{Sigma: 1},
		Query{Z: ScalarValue, Beta: 20, Horizon: 100},
		WithRelativeErrorTarget(0.15), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ans, err := sub.Publish(ctx, &Scalar{V: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Tick != 1 || ans.P() <= 0 {
		t.Fatalf("published answer %+v", ans)
	}
}

// TestLiveTickerIncrementalBeatsCold is the acceptance benchmark behind
// examples/live-ticker: a standing query maintained over a market stream
// must cost at least 5x fewer simulation steps per tick than re-running
// the query cold (same quality target) at that tick's state.
func TestLiveTickerIncrementalBeatsCold(t *testing.T) {
	const (
		s0        = 100.0
		beta      = 130.0
		horizon   = 250
		ticks     = 200
		coldEvery = 25
	)
	ctx := context.Background()
	market := &GBM{S0: s0, Mu: 0.0003, Sigma: 0.01}
	q := Query{Z: ScalarValue, Beta: beta, Horizon: horizon, ZName: "price"}
	target := []Option{WithRelativeErrorTarget(0.10), WithSeed(42)}

	s, err := NewSession(market, target...)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.Watch(ctx, "ticker", q)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// The live feed: the market's own dynamics driven tick by tick.
	feed := market.Initial()
	src := rng.NewStream(2026, 0)
	var incrementalSteps, coldSteps int64
	coldRuns := 0
	for tick := 1; tick <= ticks; tick++ {
		market.Step(feed, tick, src)
		refreshes, err := s.Publish(ctx, "ticker", feed)
		if err != nil {
			t.Fatal(err)
		}
		ans := refreshes[0].Answer
		if refreshes[0].Err != nil {
			t.Fatal(refreshes[0].Err)
		}
		incrementalSteps += ans.FreshSteps + ans.SearchSteps

		if tick%coldEvery != 0 || ans.Satisfied {
			continue
		}
		// Cold baseline: answer the same query from the current price
		// with a fresh Run — full level search plus full sampling.
		price := ScalarValue(feed)
		cold, err := Run(ctx, &GBM{S0: price, Mu: market.Mu, Sigma: market.Sigma}, q, target...)
		if err != nil {
			t.Fatal(err)
		}
		coldSteps += cold.Steps
		coldRuns++
		// The maintained answer must agree with the cold answer: its pool
		// mixes roots started within the drift tolerance, so allow a
		// factor-2 band on top of both runs' 10% relative-error targets.
		if ans.P() < cold.P/2 || ans.P() > cold.P*2 {
			t.Errorf("tick %d: maintained answer %v vs cold %v", tick, ans.P(), cold.P)
		}
	}
	if coldRuns == 0 {
		t.Fatal("no cold comparison ran")
	}

	perTick := float64(incrementalSteps) / float64(ticks)
	perCold := float64(coldSteps) / float64(coldRuns)
	ratio := perCold / perTick
	t.Logf("incremental: %.0f steps/tick over %d ticks; cold: %.0f steps/query over %d runs; ratio %.1fx",
		perTick, ticks, perCold, coldRuns, ratio)
	if ratio < 5 {
		t.Fatalf("incremental refresh saved only %.1fx steps per tick vs cold, want >= 5x", ratio)
	}
	if math.IsNaN(ratio) || math.IsInf(ratio, 0) {
		t.Fatalf("degenerate ratio %v", ratio)
	}
}
