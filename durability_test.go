package durability

import (
	"context"
	"math"
	"testing"

	"durability/internal/exact"
)

// walkQuery is a random-walk query with a moderately rare answer; the
// analytic reference is obtained from a heavy SRS run once per test run.
func walkQuery() (*RandomWalk, Query) {
	return &RandomWalk{Start: 0, Drift: 0, Sigma: 1},
		Query{Z: ScalarValue, Beta: 8, Horizon: 100}
}

func TestRunDefaultsGMLSSAuto(t *testing.T) {
	w, q := walkQuery()
	res, err := Run(context.Background(), w, q,
		WithBudget(600_000), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.P <= 0 || res.P >= 1 {
		t.Fatalf("estimate %v outside (0,1)", res.P)
	}
	if res.Steps == 0 || res.Paths == 0 {
		t.Fatalf("cost accounting missing: %+v", res)
	}
}

func TestRunMethodsAgree(t *testing.T) {
	w, q := walkQuery()
	ctx := context.Background()
	srs, err := Run(ctx, w, q, WithMethod(SRS), WithBudget(3_000_000), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{SMLSS, GMLSS} {
		res, err := Run(ctx, w, q, WithMethod(m),
			WithPlan(0.4, 0.7), WithBudget(600_000), WithSeed(3))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if math.Abs(res.P-srs.P) > 0.25*srs.P {
			t.Fatalf("%v estimate %v far from SRS %v", m, res.P, srs.P)
		}
	}
}

func TestRunQualityTarget(t *testing.T) {
	w, q := walkQuery()
	res, err := Run(context.Background(), w, q,
		WithRelativeErrorTarget(0.15), WithBudget(50_000_000), WithSeed(4), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if re := res.RelErr(); re > 0.17 {
		t.Fatalf("stopped at RE %v, want <= 0.15", re)
	}
}

func TestRunValidation(t *testing.T) {
	w, q := walkQuery()
	ctx := context.Background()
	if _, err := Run(ctx, nil, q); err == nil {
		t.Error("nil process accepted")
	}
	if _, err := Run(ctx, w, Query{Z: ScalarValue, Beta: 0, Horizon: 5}); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := Run(ctx, w, Query{Z: nil, Beta: 1, Horizon: 5}); err == nil {
		t.Error("nil observer accepted")
	}
	if _, err := Run(ctx, w, Query{Z: ScalarValue, Beta: 1, Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Run(ctx, w, q, WithSplitRatio(0)); err == nil {
		t.Error("ratio 0 accepted")
	}
	if _, err := Run(ctx, w, q, WithWorkers(0)); err == nil {
		t.Error("workers 0 accepted")
	}
	if _, err := Run(ctx, w, q, WithPlan(1.5)); err == nil {
		t.Error("boundary outside (0,1) accepted")
	}
	if _, err := Run(ctx, w, q, WithBudget(-1)); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := Run(ctx, w, q, WithCITarget(0, 0.95, false)); err == nil {
		t.Error("zero CI target accepted")
	}
	if _, err := Run(ctx, w, q, WithRelativeErrorTarget(0)); err == nil {
		t.Error("zero RE target accepted")
	}
	if _, err := Run(ctx, w, q, WithBalancedLevels(0, 3)); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := Run(ctx, w, q, WithMethod(Method(99))); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	w, q := walkQuery()
	ctx := context.Background()
	run := func(workers int) Result {
		res, err := Run(ctx, w, q, WithPlan(0.5), WithBudget(200_000),
			WithSeed(5), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(1), run(6); a.P != b.P || a.Steps != b.Steps {
		t.Fatalf("worker counts disagree: %v vs %v", a.P, b.P)
	}
}

func TestRunBalancedLevels(t *testing.T) {
	w, q := walkQuery()
	res, err := Run(context.Background(), w, q,
		WithBalancedLevels(0.01, 4), WithBudget(400_000), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.P <= 0 {
		t.Fatalf("estimate %v", res.P)
	}
}

func TestRunTrace(t *testing.T) {
	w, q := walkQuery()
	calls := 0
	_, err := Run(context.Background(), w, q, WithPlan(0.5),
		WithBudget(100_000), WithSeed(7), WithTrace(func(Result) { calls++ }))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("trace never invoked")
	}
}

func TestAutoPlan(t *testing.T) {
	w, q := walkQuery()
	plan, cost, err := AutoPlan(context.Background(), w, q, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cost == 0 {
		t.Fatal("no search cost reported")
	}
	// The plan must be usable in a subsequent run.
	res, err := Run(context.Background(), w, q,
		WithPlan(plan.Boundaries...), WithBudget(300_000), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.P <= 0 {
		t.Fatalf("estimate with auto plan = %v", res.P)
	}
}

func TestMethodString(t *testing.T) {
	if GMLSS.String() != "g-mlss" || SMLSS.String() != "s-mlss" || SRS.String() != "srs" {
		t.Fatal("method names wrong")
	}
	if Method(42).String() == "" {
		t.Fatal("unknown method has empty name")
	}
}

// The full pipeline agrees with an independent analytical reference: the
// reflection-principle formula for the Brownian maximum approximates the
// Gaussian walk's hitting probability, and g-MLSS with auto levels must
// land within the approximation's accuracy on a genuinely rare event.
func TestRunMatchesAnalyticalReference(t *testing.T) {
	if testing.Short() {
		t.Skip("analytical comparison is slow")
	}
	w := &RandomWalk{Start: 0, Drift: -0.05, Sigma: 1}
	q := Query{Z: ScalarValue, Beta: 30, Horizon: 400}
	want, err := exact.BrownianMaxTail(w.Drift, w.Sigma, float64(q.Horizon), q.Beta)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), w, q,
		WithRelativeErrorTarget(0.08),
		WithBudget(2_000_000_000),
		WithWorkers(8),
		WithSeed(12),
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-want) > 0.35*want {
		t.Fatalf("g-MLSS %v vs Brownian reference %v", res.P, want)
	}
	t.Logf("rare drifted walk: g-MLSS %.4g vs analytical %.4g (%d steps)", res.P, want, res.Steps)
}

// MLSS must beat SRS on a rare event at equal quality — the paper's
// headline efficiency claim, asserted end-to-end through the public API.
func TestMLSSBeatsSRSOnRareEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("rare-event comparison is slow")
	}
	w := &RandomWalk{Start: 0, Drift: 0, Sigma: 1}
	// With sigma*sqrt(100) = 10, beta = 38 sits at 3.8 sigma: tau ~ 1.4e-4.
	q := Query{Z: ScalarValue, Beta: 38, Horizon: 100}
	ctx := context.Background()
	mlss, err := Run(ctx, w, q, WithPlan(0.3, 0.55, 0.8),
		WithRelativeErrorTarget(0.2), WithBudget(2_000_000_000), WithSeed(10), WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	srs, err := Run(ctx, w, q, WithMethod(SRS),
		WithRelativeErrorTarget(0.2), WithBudget(2_000_000_000), WithSeed(11), WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if mlss.Steps >= srs.Steps {
		t.Fatalf("MLSS took %d steps, SRS %d — no speedup on a rare event", mlss.Steps, srs.Steps)
	}
	t.Logf("rare event: MLSS %d steps vs SRS %d steps (%.1fx), estimates %.3g vs %.3g",
		mlss.Steps, srs.Steps, float64(srs.Steps)/float64(mlss.Steps), mlss.P, srs.P)
}
