package durability

import (
	"context"
	"errors"
	"fmt"

	"durability/internal/stream"
)

// Standing-query types, re-exported from the maintenance engine so
// downstream users never import internal packages.
type (
	// Subscription is a registered standing durability query whose answer
	// is maintained incrementally as its live state updates.
	Subscription = stream.Subscription
	// Answer is one maintained answer plus its refresh cost accounting.
	Answer = stream.Answer
	// Refresh is the per-subscription outcome of one state update.
	Refresh = stream.Refresh
	// SubscriptionStats is a subscription's lifetime cost accounting.
	SubscriptionStats = stream.SubStats
	// StreamStats is the maintenance engine's aggregate cost accounting.
	StreamStats = stream.EngineStats
)

// ErrSubscriptionClosed reports use of a closed subscription.
var ErrSubscriptionClosed = stream.ErrSubscriptionClosed

// engine lazily creates the session's standing-query engine. It shares
// the session's runner, so standing queries and one-shot queries
// amortize their level searches through the same plan cache.
func (s *Session) engine() *stream.Engine {
	s.streamOnce.Do(func() {
		s.stream = stream.NewEngine(stream.Config{Runner: s.runner})
	})
	return s.stream
}

// Publish creates or advances the named live state within the session
// and incrementally refreshes every standing query watching it. The
// state is cloned; the first Publish of a name registers the stream with
// the session's process as its dynamics. It returns one Refresh per
// affected subscription, ordered by subscription ID.
func (s *Session) Publish(ctx context.Context, name string, st State) ([]Refresh, error) {
	if st == nil {
		return nil, errors.New("durability: nil state")
	}
	e := s.engine()
	if err := e.Ensure(name, s.proc, st); err != nil {
		return nil, err
	}
	refreshes, err := e.Update(ctx, name, st)
	if err != nil {
		return nil, err
	}
	// Durable sessions checkpoint when the log's size or age trigger has
	// fired; the tick's answers stand either way.
	if cerr := s.maybeCheckpoint(); cerr != nil {
		return refreshes, fmt.Errorf("durability: tick applied but checkpoint failed: %w", cerr)
	}
	return refreshes, nil
}

// Watch registers a standing durability query against the named live
// state: the returned subscription's answer is computed immediately from
// the stream's current state and from then on maintained incrementally
// on every Publish — surviving root paths are carried forward, the level
// plan is reused across small drift (re-searched only when the state
// crosses a drift bucket), and just enough fresh sampling tops the
// answer back up to the quality target. If the stream does not exist yet
// it is created from the session's process at its initial state.
//
// Options shape the maintained answer the same way they shape Run: the
// stopping options set the per-tick quality target, WithSplitRatio,
// WithSeed and WithWorkers tune the sampler. Standing queries always use
// g-MLSS with automatic level search; WithMethod and the explicit plan
// options are rejected.
func (s *Session) Watch(ctx context.Context, name string, q Query, opts ...Option) (*Subscription, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	all := append(append([]Option(nil), s.defaults...), opts...)
	cfg, err := buildConfig(all)
	if err != nil {
		return nil, err
	}
	if cfg.method != GMLSS {
		return nil, errors.New("durability: standing queries support only WithMethod(GMLSS)")
	}
	if cfg.planMode != planAuto {
		return nil, errors.New("durability: standing queries use automatic level search; WithPlan and WithBalancedLevels are not supported")
	}
	obs := q.Z
	if s.store != nil {
		// Durable subscriptions are rebuilt after a restart by observer
		// name; an identity the session cannot resolve would make the
		// snapshot unrecoverable, so refuse it now rather than at the
		// worst possible moment. The *registered* function is also the
		// one subscribed live — if q.Z differed from it, the recovered
		// subscription would silently maintain a different quantity.
		registered, ok := s.observers[observerID(q)]
		if !ok {
			return nil, fmt.Errorf("durability: durable standing queries need an observer registered with OpenSession; query %q is not (set Query.ZName to a registered name)", observerID(q))
		}
		obs = registered
	}
	e := s.engine()
	if err := e.Ensure(name, s.proc, s.proc.Initial()); err != nil {
		return nil, err
	}
	return e.Subscribe(ctx, stream.SubSpec{
		Stream:     name,
		Obs:        obs,
		ObserverID: observerID(q),
		Beta:       q.Beta,
		Horizon:    q.Horizon,
		Ratio:      cfg.ratio,
		Seed:       cfg.seed,
		SimWorkers: cfg.workers,
		DriftTol:   cfg.driftTol,
		MaxAge:     cfg.maxAge,
		Stop:       cfg.stops,
	})
}

// StreamStats reports the session's standing-query cost accounting; it
// is zero-valued before the first Watch or Publish.
func (s *Session) StreamStats() StreamStats {
	return s.engine().Stats()
}

// Watch is the single-query convenience form of Session.Watch: it opens
// a dedicated session on the process, registers the standing query
// against a live state seeded from the process's initial state, and
// returns the subscription. Drive the live state with
// Subscription.Publish; the subscription's session (and its plan cache)
// lives as long as the subscription.
func Watch(ctx context.Context, proc Process, q Query, opts ...Option) (*Subscription, error) {
	s, err := NewSession(proc, opts...)
	if err != nil {
		return nil, err
	}
	return s.Watch(ctx, "live", q)
}
