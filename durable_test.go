package durability_test

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"durability"
	"durability/internal/rng"
)

// gbmTrajectory precomputes a deterministic price path so the reference
// and durable runs publish identical states.
func gbmTrajectory(market *durability.GBM, ticks int) []float64 {
	st := market.Initial()
	src := rng.NewStream(2027, 0)
	out := make([]float64, ticks)
	for i := 0; i < ticks; i++ {
		market.Step(st, i+1, src)
		out[i] = durability.ScalarValue(st)
	}
	return out
}

// sameAnswer asserts bit-for-bit equality of every deterministic field.
func sameAnswer(t *testing.T, label string, got, want durability.Answer) {
	t.Helper()
	if got.Result.P != want.Result.P || got.Result.Variance != want.Result.Variance ||
		got.Result.Paths != want.Result.Paths || got.Result.Hits != want.Result.Hits ||
		got.Tick != want.Tick || got.Satisfied != want.Satisfied ||
		got.FreshRoots != want.FreshRoots || got.FreshSteps != want.FreshSteps ||
		got.SurvivedRoots != want.SurvivedRoots || got.PoolRoots != want.PoolRoots {
		t.Fatalf("%s: answer %+v differs from uninterrupted %+v", label, got, want)
	}
}

const durableTicks = 40 // total trajectory length; the crash lands mid-way

// watchOpts is the one configuration both the reference and the durable
// sessions run under.
func watchOpts() []durability.Option {
	return []durability.Option{
		durability.WithRelativeErrorTarget(0.2),
		durability.WithSeed(42),
	}
}

// referenceAnswers maintains the standing query on a never-dying session.
func referenceAnswers(t *testing.T, market *durability.GBM, q durability.Query, prices []float64) []durability.Answer {
	t.Helper()
	ctx := context.Background()
	session, err := durability.NewSession(market, watchOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := session.Watch(ctx, "live", q)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	out := make([]durability.Answer, 0, len(prices))
	for _, p := range prices {
		refreshes, err := session.Publish(ctx, "live", &durability.Scalar{V: p})
		if err != nil {
			t.Fatal(err)
		}
		if len(refreshes) != 1 || refreshes[0].Err != nil {
			t.Fatalf("refreshes %+v", refreshes)
		}
		out = append(out, refreshes[0].Answer)
	}
	return out
}

// A durable session killed without warning and reopened must continue
// producing bit-for-bit the uninterrupted session's answers — including
// when the crash tore the final WAL record in half, in which case the
// dropped tick is simply re-published.
func TestOpenSessionCrashRecoveryDeterminism(t *testing.T) {
	for _, tearTail := range []bool{false, true} {
		name := "clean-tail"
		if tearTail {
			name = "torn-tail"
		}
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			dir := t.TempDir()
			market := &durability.GBM{S0: 100, Mu: 0.0004, Sigma: 0.01}
			q := durability.Query{Z: durability.ScalarValue, ZName: "price", Beta: 120, Horizon: 150}
			prices := gbmTrajectory(market, durableTicks)
			reference := referenceAnswers(t, market, q, prices)

			observers := map[string]durability.Observer{"price": durability.ScalarValue}
			session, err := durability.OpenSession(market, dir, observers, watchOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			sub, err := session.Watch(ctx, "live", q)
			if err != nil {
				t.Fatal(err)
			}
			crashAt := durableTicks / 2
			for i := 0; i < crashAt; i++ {
				refreshes, err := session.Publish(ctx, "live", &durability.Scalar{V: prices[i]})
				if err != nil {
					t.Fatal(err)
				}
				sameAnswer(t, "pre-crash tick", refreshes[0].Answer, reference[i])
			}
			_ = sub // the crash: no Close, no final checkpoint

			resume := crashAt
			if tearTail {
				// Chop bytes off the newest WAL segment: the final tick's
				// record becomes a torn tail, recovery truncates it, and
				// the server resumes one tick earlier.
				wals, err := filepath.Glob(filepath.Join(dir, "wal-*"))
				if err != nil || len(wals) == 0 {
					t.Fatalf("no wal segments (%v)", err)
				}
				sort.Strings(wals)
				newest := wals[len(wals)-1]
				info, err := os.Stat(newest)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(newest, info.Size()-5); err != nil {
					t.Fatal(err)
				}
				resume = crashAt - 1
			}

			recovered, err := durability.OpenSession(market, dir, observers, watchOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			defer recovered.Close()
			for i := resume; i < durableTicks; i++ {
				refreshes, err := recovered.Publish(ctx, "live", &durability.Scalar{V: prices[i]})
				if err != nil {
					t.Fatal(err)
				}
				if len(refreshes) != 1 || refreshes[0].Err != nil {
					t.Fatalf("refreshes %+v", refreshes)
				}
				sameAnswer(t, "post-recovery tick", refreshes[0].Answer, reference[i])
			}
		})
	}
}

// Durable standing queries must name a registered observer; an anonymous
// identity could never be resolved at recovery time.
func TestDurableWatchRequiresRegisteredObserver(t *testing.T) {
	market := &durability.GBM{S0: 100, Mu: 0, Sigma: 0.01}
	session, err := durability.OpenSession(market, t.TempDir(),
		map[string]durability.Observer{"price": durability.ScalarValue})
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()
	q := durability.Query{Z: durability.ScalarValue, Beta: 120, Horizon: 100} // no ZName
	if _, err := session.Watch(context.Background(), "live", q); err == nil {
		t.Fatal("durable Watch accepted a query without a registered observer name")
	}
	q.ZName = "volume" // named, but not registered
	if _, err := session.Watch(context.Background(), "live", q); err == nil {
		t.Fatal("durable Watch accepted an unregistered observer name")
	}
}

// Checkpoint on a non-durable session is a contract error, not a panic;
// Close is a no-op.
func TestCheckpointRequiresDurableSession(t *testing.T) {
	session, err := durability.NewSession(&durability.GBM{S0: 100, Sigma: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := session.Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded on a session without a data directory")
	}
	if err := session.Close(); err != nil {
		t.Fatalf("Close on a non-durable session: %v", err)
	}
}

// TestRecoveryWarmStartBeatsColdRestart is the acceptance benchmark
// behind examples/crash-restart: after a restart, a recovered server's
// steps-to-first-answer (a routine top-up over the restored pool) must
// be at least 5x cheaper than a cold restart paying the full level
// search and pool fill again.
func TestRecoveryWarmStartBeatsColdRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	market := &durability.GBM{S0: 100, Mu: 0.0004, Sigma: 0.01}
	q := durability.Query{Z: durability.ScalarValue, ZName: "price", Beta: 125, Horizon: 200}
	observers := map[string]durability.Observer{"price": durability.ScalarValue}
	prices := gbmTrajectory(market, 60)

	session, err := durability.OpenSession(market, dir, observers, watchOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.Watch(ctx, "live", q); err != nil {
		t.Fatal(err)
	}
	for _, p := range prices {
		if _, err := session.Publish(ctx, "live", &durability.Scalar{V: p}); err != nil {
			t.Fatal(err)
		}
	}
	// The crash: no Close, no final checkpoint.

	recovered, err := durability.OpenSession(market, dir, observers, watchOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	nextPrice := prices[len(prices)-1] * 1.001
	refreshes, err := recovered.Publish(ctx, "live", &durability.Scalar{V: nextPrice})
	if err != nil {
		t.Fatal(err)
	}
	warm := refreshes[0].Answer.FreshSteps + refreshes[0].Answer.SearchSteps

	cold, err := durability.NewSession(market, watchOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Publish(ctx, "live", &durability.Scalar{V: nextPrice}); err != nil {
		t.Fatal(err)
	}
	coldSub, err := cold.Watch(ctx, "live", q)
	if err != nil {
		t.Fatal(err)
	}
	defer coldSub.Close()
	coldSteps := coldSub.Answer().FreshSteps + coldSub.Answer().SearchSteps

	if warm*5 > coldSteps {
		t.Fatalf("recovered first answer cost %d steps, cold restart %d — want at least 5x cheaper", warm, coldSteps)
	}
	t.Logf("recovery warm-start: %d steps vs cold restart %d (%.1fx)", warm, coldSteps, float64(coldSteps)/float64(warm))
}

// A recovered session re-attaches to its standing queries through
// Subscriptions: the recovered handle long-polls and closes exactly like
// the pre-crash one.
func TestOpenSessionSubscriptionsReattach(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	market := &durability.GBM{S0: 100, Mu: 0.0004, Sigma: 0.01}
	q := durability.Query{Z: durability.ScalarValue, ZName: "price", Beta: 120, Horizon: 150}
	observers := map[string]durability.Observer{"price": durability.ScalarValue}
	prices := gbmTrajectory(market, 10)

	session, err := durability.OpenSession(market, dir, observers, watchOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := session.Watch(ctx, "live", q)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range prices[:5] {
		if _, err := session.Publish(ctx, "live", &durability.Scalar{V: p}); err != nil {
			t.Fatal(err)
		}
	}
	// The crash: no Close, no final checkpoint.

	recovered, err := durability.OpenSession(market, dir, observers, watchOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	subs := recovered.Subscriptions()
	if len(subs) != 1 || subs[0].ID() != orig.ID() {
		t.Fatalf("recovered Subscriptions() = %d entries, want the original subscription", len(subs))
	}
	sub := subs[0]
	if got := sub.Answer(); got.Tick != 5 {
		t.Fatalf("recovered answer at tick %d, want 5", got.Tick)
	}
	// The re-attached handle long-polls like the original.
	done := make(chan durability.Answer, 1)
	go func() {
		ans, err := sub.Wait(ctx, 5)
		if err != nil {
			t.Error(err)
		}
		done <- ans
	}()
	if _, err := recovered.Publish(ctx, "live", &durability.Scalar{V: prices[5]}); err != nil {
		t.Fatal(err)
	}
	if ans := <-done; ans.Tick != 6 {
		t.Fatalf("Wait returned tick %d, want 6", ans.Tick)
	}
	// And closes like the original.
	sub.Close()
	if n := len(recovered.Subscriptions()); n != 0 {
		t.Fatalf("after Close, Subscriptions() still lists %d", n)
	}
}
