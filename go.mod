module durability

go 1.24.0
