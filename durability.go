// Package durability answers durability prediction queries over step-wise
// simulation models, implementing the SIGMOD 2021 paper "Efficiently
// Answering Durability Prediction Queries" (Gao, Xu, Agarwal, Yang).
//
// A durability prediction query asks: given a stochastic process with a
// step-by-step simulator, what is the probability that a condition of
// interest holds at any time within a horizon? ("What is the chance this
// insurance product goes 300 units into profit within 500 days?") The
// package provides the standard Monte-Carlo baseline (simple random
// sampling) and the paper's contribution, Multi-Level Splitting Sampling
// (MLSS), which answers rare-event queries up to an order of magnitude
// faster at the same statistical quality — with automatic level design so
// no manual tuning is required.
//
// Minimal use:
//
//	q := durability.Query{Z: durability.Queue2Len, Beta: 26, Horizon: 500}
//	res, err := durability.Run(ctx, durability.NewTandemQueue(0.5, 2, 2), q,
//	    durability.WithRelativeErrorTarget(0.1),
//	)
//	fmt.Println(res.P, res.CI(0.95))
//
// By default Run uses g-MLSS (correct even for processes whose value can
// jump across several levels in one step) with an automatically searched
// level partition. See the examples directory for richer scenarios.
package durability

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/opt"
	"durability/internal/persist"
	"durability/internal/serve"
	"durability/internal/stochastic"
	"durability/internal/stream"
)

// Re-exported substrate types. State, Process and Observer form the
// simulation contract: a Process steps a State forward one time unit at a
// time, and an Observer extracts the real-valued quantity queries
// threshold on.
type (
	// State is one snapshot of a process; Clone must deep-copy it.
	State = stochastic.State
	// Process is the step-wise simulation procedure 𝔤.
	Process = stochastic.Process
	// Observer maps a state to the real-valued evaluation z(x).
	Observer = stochastic.Observer
	// Result carries the estimate, its variance, the confidence interval
	// accessors, and cost accounting (Steps = simulator invocations).
	Result = mc.Result
	// StopRule decides when sampling may stop.
	StopRule = mc.StopRule
	// Plan is an MLSS level-partition plan.
	Plan = core.Plan
)

// Method selects the sampling algorithm. It aliases the serving layer's
// enum (like Result and Plan alias theirs) so the two never drift.
type Method = serve.Method

// Available methods.
const (
	// GMLSS is general multi-level splitting (§4 of the paper): unbiased
	// for arbitrary processes, including ones that skip levels. The
	// default.
	GMLSS = serve.GMLSS
	// SMLSS is simple multi-level splitting (§3): slightly cheaper
	// bookkeeping, but unbiased only when the process cannot jump across
	// a level boundary in a single step.
	SMLSS = serve.SMLSS
	// SRS is simple random sampling, the standard Monte-Carlo baseline.
	SRS = serve.SRS
)

// Query is a durability prediction query in the standard threshold form:
// the probability that Z(state) >= Beta at any time 1..Horizon.
type Query struct {
	Z       Observer
	Beta    float64
	Horizon int

	// ZName optionally names the observer for Session plan caching. With
	// it empty the observer function value itself is the identity, which
	// is right for package-level observers (ScalarValue, Queue2Len, ...)
	// and for a closure built once and reused across a sweep. Set ZName
	// when logically identical observers are constructed per query (say
	// NodeLen(2) rebuilt in a loop) so their cached plans can be shared.
	// It never influences the numerics.
	ZName string
}

// Validate reports configuration errors.
func (q Query) Validate() error {
	if q.Z == nil {
		return errors.New("durability: query has no observer")
	}
	if q.Beta <= 0 {
		return fmt.Errorf("durability: threshold %v must be positive (the value function scales by it)", q.Beta)
	}
	if q.Horizon <= 0 {
		return fmt.Errorf("durability: horizon %d must be positive", q.Horizon)
	}
	return nil
}

type planMode int

const (
	planAuto planMode = iota // adaptive greedy search (§5.2)
	planFixed
	planBalanced
)

type config struct {
	method      Method
	ratio       int
	workers     int
	concurrency int
	seed        uint64
	stops       mc.Any
	planMode    planMode
	planSet     bool // an explicit plan option was given (conflicts with SRS)
	plan        core.Plan
	balTau      float64
	balLevels   int
	trace       func(Result)

	// Standing-query (Watch) knobs; ignored by Run/RunMany.
	driftTol float64
	maxAge   int64
}

// Option configures Run.
type Option func(*config) error

// WithMethod selects the sampler (default GMLSS).
func WithMethod(m Method) Option {
	return func(c *config) error {
		if m != GMLSS && m != SMLSS && m != SRS {
			return fmt.Errorf("durability: unknown method %v", m)
		}
		c.method = m
		return nil
	}
}

// WithSplitRatio sets the MLSS splitting ratio r (default 3, the value the
// paper's ratio sweep identifies as near-optimal across models).
func WithSplitRatio(r int) Option {
	return func(c *config) error {
		if r < 1 {
			return fmt.Errorf("durability: splitting ratio %d must be >= 1", r)
		}
		c.ratio = r
		return nil
	}
}

// WithPlan fixes the MLSS level boundaries explicitly (values in (0,1),
// relative to the threshold: boundary 0.5 splits paths whose value reaches
// half of Beta).
func WithPlan(boundaries ...float64) Option {
	return func(c *config) error {
		p, err := core.NewPlan(boundaries...)
		if err != nil {
			return err
		}
		c.planMode = planFixed
		c.planSet = true
		c.plan = p
		return nil
	}
}

// WithAutoLevels enables the adaptive greedy level search (the default):
// boundaries are placed automatically by trial simulations before the main
// run; the trials' cost is included in the result's Steps.
func WithAutoLevels() Option {
	return func(c *config) error {
		c.planMode = planAuto
		c.planSet = true
		return nil
	}
}

// WithBalancedLevels builds a balanced-growth plan with the given number
// of levels from a prior estimate tau of the answer (an order of magnitude
// suffices).
func WithBalancedLevels(tau float64, levels int) Option {
	return func(c *config) error {
		if tau <= 0 || tau >= 1 {
			return fmt.Errorf("durability: prior tau %v must be in (0,1)", tau)
		}
		if levels < 1 {
			return fmt.Errorf("durability: level count %d must be >= 1", levels)
		}
		c.planMode = planBalanced
		c.planSet = true
		c.balTau = tau
		c.balLevels = levels
		return nil
	}
}

// WithSeed fixes the random seed; runs with equal seeds and settings are
// bit-for-bit reproducible regardless of parallelism.
func WithSeed(seed uint64) Option {
	return func(c *config) error { c.seed = seed; return nil }
}

// WithWorkers sets the number of parallel simulation workers (default 1).
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("durability: worker count %d must be >= 1", n)
		}
		c.workers = n
		return nil
	}
}

// WithQueryConcurrency sets how many queries RunMany executes at once
// (default: GOMAXPROCS, never more than the number of queries). It only
// affects RunMany; single Run calls ignore it.
func WithQueryConcurrency(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("durability: query concurrency %d must be >= 1", n)
		}
		c.concurrency = n
		return nil
	}
}

// WithBudget caps the total number of simulator invocations.
func WithBudget(steps int64) Option {
	return func(c *config) error {
		if steps <= 0 {
			return fmt.Errorf("durability: budget %d must be positive", steps)
		}
		c.stops = append(c.stops, mc.Budget{Steps: steps})
		return nil
	}
}

// WithCITarget stops when the confidence interval half-width (relative to
// the estimate if relative is true) reaches half at the given confidence.
func WithCITarget(half, confidence float64, relative bool) Option {
	return func(c *config) error {
		if half <= 0 || confidence <= 0 || confidence >= 1 {
			return fmt.Errorf("durability: bad CI target (half=%v, confidence=%v)", half, confidence)
		}
		c.stops = append(c.stops, mc.CITarget{Half: half, Confidence: confidence, Relative: relative})
		return nil
	}
}

// WithRelativeErrorTarget stops when sqrt(Var)/estimate reaches re — the
// paper's quality measure for rare queries (it uses 0.10).
func WithRelativeErrorTarget(re float64) Option {
	return func(c *config) error {
		if re <= 0 {
			return fmt.Errorf("durability: relative error target %v must be positive", re)
		}
		c.stops = append(c.stops, mc.RETarget{Target: re})
		return nil
	}
}

// WithDriftTolerance sets a standing query's survival tolerance: root
// paths sampled earlier keep contributing to the maintained answer while
// the live state's observed value stays within tol*Beta of the value they
// started from. It is the staleness/cost dial of Watch — wider keeps more
// of the pool alive across ticks (cheaper maintenance), tighter keeps the
// answer closer to the exact point value. Run and RunMany ignore it.
func WithDriftTolerance(tol float64) Option {
	return func(c *config) error {
		if tol <= 0 || tol >= 1 {
			return fmt.Errorf("durability: drift tolerance %v must be in (0,1)", tol)
		}
		c.driftTol = tol
		return nil
	}
}

// WithMaxAnswerAge caps, in ticks, how long a standing query's root paths
// may keep contributing to its maintained answer, bounding staleness on a
// becalmed stream. Run and RunMany ignore it.
func WithMaxAnswerAge(ticks int64) Option {
	return func(c *config) error {
		if ticks < 1 {
			return fmt.Errorf("durability: max answer age %d must be >= 1", ticks)
		}
		c.maxAge = ticks
		return nil
	}
}

// WithTrace registers a callback invoked with the running result after
// every batch — convergence monitoring.
func WithTrace(f func(Result)) Option {
	return func(c *config) error { c.trace = f; return nil }
}

// defaultSafetyCap bounds runaway runs when only a quality target is set
// and the event turns out to be (nearly) impossible.
const defaultSafetyCap = int64(2_000_000_000)

// buildConfig applies options over the defaults and finishes the
// cross-option validation a single Option cannot see.
func buildConfig(opts []Option) (config, error) {
	cfg := config{method: GMLSS, ratio: 3, workers: 1, seed: 1, planMode: planAuto}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return config{}, err
		}
	}
	if cfg.method == SRS && cfg.planSet {
		return config{}, errors.New("durability: WithPlan, WithBalancedLevels and WithAutoLevels configure MLSS level partitions and cannot be combined with WithMethod(SRS)")
	}
	if len(cfg.stops) == 0 {
		cfg.stops = append(cfg.stops, mc.RETarget{Target: 0.10})
	}
	cfg.stops = append(cfg.stops, mc.Budget{Steps: defaultSafetyCap})
	return cfg, nil
}

// observerID identifies q's observer for plan caching: the explicit ZName
// when given, the observer function value's identity otherwise. The
// identity is the funcval pointer (the first word of the func value), not
// the code pointer reflect.Value.Pointer exposes — whether same-origin
// closures share a code pointer depends on inlining, and aliasing
// distinct observers would reuse a plan tuned for the wrong level
// geometry. The funcval address is best-effort too (a stack-allocated
// closure can move; an address can be reused after its closure dies), but
// in session flows observers escape into sampler specs and stay
// heap-pinned for the session's life, and either failure mode only costs
// a duplicate or mis-tuned search — MLSS stays unbiased under any plan.
// ZName is the reliable identity; set it when constructing observers per
// query.
func observerID(q Query) string {
	if q.ZName != "" {
		return q.ZName
	}
	return fmt.Sprintf("fn:%x", *(*uintptr)(unsafe.Pointer(&q.Z)))
}

// spec lowers a validated (config, query) pair onto the serving layer.
func (c config) spec(proc Process, q Query) serve.Spec {
	var mode serve.PlanMode
	switch c.planMode {
	case planFixed:
		mode = serve.PlanFixed
	case planBalanced:
		mode = serve.PlanBalanced
	default:
		mode = serve.PlanAuto
	}
	return serve.Spec{
		Proc:       proc,
		Obs:        q.Z,
		ModelID:    proc.Name(),
		ObserverID: observerID(q),
		Beta:       q.Beta,
		Horizon:    q.Horizon,
		Method:     c.method,
		PlanMode:   mode,
		Plan:       c.plan,
		BalTau:     c.balTau,
		BalLevels:  c.balLevels,
		Ratio:      c.ratio,
		Seed:       c.seed,
		SimWorkers: c.workers,
		Stop:       c.stops,
		Trace:      c.trace,
	}
}

// Run answers the query against the process. At least one stopping option
// (WithBudget, WithCITarget, WithRelativeErrorTarget) should be given;
// with none, a relative-error target of 10% is used. A safety budget of
// two billion simulator invocations always applies.
//
// Every Run call pays its own level search. When many queries share a
// model, open a Session instead: its plan cache amortizes the search
// across queries.
func Run(ctx context.Context, proc Process, q Query, opts ...Option) (Result, error) {
	if proc == nil {
		return Result{}, errors.New("durability: nil process")
	}
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return Result{}, err
	}
	r := &serve.Runner{} // no cache: the paper's per-query behavior
	res, _, err := r.Run(ctx, cfg.spec(proc, q))
	return res, err
}

// AutoPlan runs only the adaptive greedy level search (§5.2) and returns
// the selected plan plus the number of simulator invocations spent, for
// callers who want to reuse a plan across many queries.
func AutoPlan(ctx context.Context, proc Process, q Query, ratio int, seed uint64) (Plan, int64, error) {
	if err := q.Validate(); err != nil {
		return Plan{}, 0, err
	}
	if ratio < 1 {
		ratio = 3
	}
	problem := &opt.Problem{
		Proc:  proc,
		Query: core.Query{Value: core.ThresholdValue(q.Z, q.Beta), Horizon: q.Horizon},
		Ratio: ratio,
		Seed:  seed,
	}
	g, err := opt.Greedy(ctx, problem, opt.GreedyOptions{})
	if err != nil {
		return Plan{}, 0, err
	}
	return g.Plan, g.SearchSteps, nil
}

// NewPlan validates explicit level boundaries into a Plan.
func NewPlan(boundaries ...float64) (Plan, error) { return core.NewPlan(boundaries...) }

// Session answers many durability queries against one process while
// amortizing the level-search cost across them. Run pays the adaptive
// search of §5.2 on every call; a Session memoizes the resulting plans by
// query shape (observer, normalized threshold bucket, horizon, splitting
// ratio) with single-flight deduplication, so N concurrent queries of the
// same shape trigger exactly one search and every later query samples
// immediately. Reuse is safe: MLSS is unbiased under any level plan, so a
// cached plan changes only the cost of an answer, never its distribution.
//
// A Session is safe for concurrent use, and results remain deterministic
// even under concurrency: a cached plan is a pure function of the query
// shape (the search runs at the bucket's canonical threshold with a
// shape-derived seed), so it cannot depend on which concurrent query won
// the single-flight race, and a query answered with a cached plan P and
// seed s returns bit-for-bit the same estimate as Run with
// WithPlan(P.Boundaries...) and WithSeed(s).
type Session struct {
	proc     Process
	defaults []Option
	runner   *serve.Runner

	// Standing-query engine, created lazily by Watch/Publish; it shares
	// runner (and so the plan cache) with the one-shot query path.
	streamOnce sync.Once
	stream     *stream.Engine

	// Durable sessions (OpenSession) carry the checkpoint+WAL store and
	// the named observers persisted subscriptions are rebuilt from; both
	// are nil on a plain NewSession.
	store     *persist.Store
	observers map[string]Observer

	queries     atomic.Int64
	sampleSteps atomic.Int64
}

// NewSession opens a session on the process. The options become defaults
// for every query and may be overridden per call; they are validated
// eagerly.
func NewSession(proc Process, defaults ...Option) (*Session, error) {
	if proc == nil {
		return nil, errors.New("durability: nil process")
	}
	if _, err := buildConfig(defaults); err != nil {
		return nil, err
	}
	return &Session{
		proc:     proc,
		defaults: append([]Option(nil), defaults...),
		runner:   &serve.Runner{Cache: serve.NewPlanCache(0)},
	}, nil
}

// Run answers one query through the session's plan cache. The result's
// Steps include level-search cost only when this call performed the
// search; queries served from the cache report their sampling cost alone.
func (s *Session) Run(ctx context.Context, q Query, opts ...Option) (Result, error) {
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	all := append(append([]Option(nil), s.defaults...), opts...)
	cfg, err := buildConfig(all)
	if err != nil {
		return Result{}, err
	}
	res, meta, err := s.runner.Run(ctx, cfg.spec(s.proc, q))
	// Book the sampling cost even when the query failed mid-run — partial
	// runs burned real simulation, and Stats must not hide it. (Search
	// cost flows through the plan cache's counter, failed searches
	// included.) Queries counts successful answers only.
	s.sampleSteps.Add(res.Steps - meta.SearchSteps)
	if err != nil {
		return res, err
	}
	s.queries.Add(1)
	return res, nil
}

// RunBatch answers a set of queries that share a (observer, horizon)
// shape with one splitting run per shape: a covering level plan is built
// whose boundaries include every requested threshold (with per-level
// splitting ratios balanced against measured advancement), a single
// shared g-MLSS run is executed through the session's execution path, and
// each query's estimate and confidence interval are derived from the
// shared per-level counters as a cumulative level-crossing prefix. The
// shared run continues until every threshold's quality target holds, so
// its cost is set by the hardest threshold and every easier one rides
// along nearly free — the cross-query sharing the per-query path cannot
// express even with a warm plan cache.
//
// Queries of different shapes batch separately; a shape with a single
// query falls back to the per-query path. Results align with qs; each
// batched Result reports the shared run's Steps and Paths (the cost is
// joint, not divisible). RunBatch requires the default GMLSS method with
// automatic levels — fixed/balanced plans and SRS have no covering form.
func (s *Session) RunBatch(ctx context.Context, qs []Query, opts ...Option) ([]Result, error) {
	all := append(append([]Option(nil), s.defaults...), opts...)
	cfg, err := buildConfig(all)
	if err != nil {
		return nil, err
	}
	if cfg.method != GMLSS || cfg.planMode != planAuto {
		return nil, errors.New("durability: RunBatch requires GMLSS with automatic levels (no WithMethod(SRS/SMLSS), WithPlan or WithBalancedLevels)")
	}
	if len(qs) == 0 {
		return nil, nil
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			return nil, err
		}
	}
	results := make([]Result, len(qs))
	for _, group := range groupByShape(qs) {
		if err := s.runBatchGroup(ctx, cfg, opts, qs, group, results); err != nil {
			return results, err
		}
	}
	return results, nil
}

// groupByShape partitions query indices by batchable shape: the observer
// identity, the horizon — and the observer *function value* itself. The
// last is load-bearing: a shared run simulates one observer for the whole
// group, so unlike plan caching (where ZName aliasing across distinct
// funcs only reuses a mis-tuned-at-worst plan), batching queries whose Z
// funcs differ would compute some answers over the wrong observer.
// Same-ID-different-func queries therefore land in separate groups and
// still share plans through the cache. Order within a group follows qs.
func groupByShape(qs []Query) [][]int {
	type shape struct {
		obs     string
		fn      uintptr
		horizon int
	}
	order := make([]shape, 0, 4)
	groups := make(map[shape][]int, 4)
	for i, q := range qs {
		k := shape{obs: observerID(q), fn: *(*uintptr)(unsafe.Pointer(&q.Z)), horizon: q.Horizon}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	out := make([][]int, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out
}

// runBatchGroup answers one shape group, writing into results at the
// group's original positions.
func (s *Session) runBatchGroup(ctx context.Context, cfg config, opts []Option, qs []Query, group []int, results []Result) error {
	if len(group) == 1 {
		res, err := s.Run(ctx, qs[group[0]], opts...)
		results[group[0]] = res
		return err
	}
	q0 := qs[group[0]]
	betas := make([]float64, len(group))
	for i, gi := range group {
		betas[i] = qs[gi].Beta
	}
	spec := serve.BatchSpec{
		Proc:       s.proc,
		Obs:        q0.Z,
		ModelID:    s.proc.Name(),
		ObserverID: observerID(q0),
		Betas:      betas,
		Horizon:    q0.Horizon,
		Ratio:      cfg.ratio,
		Seed:       cfg.seed,
		SimWorkers: cfg.workers,
		Stop:       cfg.stops,
		Trace:      cfg.trace, // one shared run: traced through the hardest threshold
	}
	res, meta, err := s.runner.RunBatch(ctx, spec)
	// Shared sampling cost is booked once for the whole group; the search
	// cost flows through the plan cache's counter as usual.
	s.sampleSteps.Add(meta.SharedSteps)
	if err != nil {
		return err
	}
	for i, gi := range group {
		results[gi] = res[i]
	}
	s.queries.Add(int64(len(group)))
	return nil
}

// RunMany answers a batch of queries. Queries sharing a shape (observer
// and horizon, under the default GMLSS method with automatic levels) are
// answered by one shared splitting run per shape via RunBatch; remaining
// queries execute concurrently through the per-query path
// (WithQueryConcurrency controls that parallelism; the default is
// GOMAXPROCS), deduplicating level searches through the plan cache.
// Results are positionally aligned with qs. The first error cancels the
// remaining queries and is returned alongside whatever results completed.
func (s *Session) RunMany(ctx context.Context, qs []Query, opts ...Option) ([]Result, error) {
	all := append(append([]Option(nil), s.defaults...), opts...)
	cfg, err := buildConfig(all)
	if err != nil {
		return nil, err
	}
	if len(qs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return make([]Result, len(qs)), err
	}

	// Delegate shape groups to the batch path when the configuration
	// supports it: shared runs answer a whole threshold lattice at the
	// cost of its hardest member. Per-query traces and explicit plans keep
	// the per-query path.
	results := make([]Result, len(qs))
	var singles []int
	var groups [][]int
	if cfg.method == GMLSS && cfg.planMode == planAuto && cfg.trace == nil {
		for _, group := range groupByShape(qs) {
			if len(group) < 2 {
				singles = append(singles, group...)
			} else {
				groups = append(groups, group)
			}
		}
	} else {
		singles = make([]int, len(qs))
		for i := range qs {
			singles[i] = i
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	// One bounded pool executes every unit of work — a shape group's
	// shared run counts as one unit, exactly like a single query, so a
	// many-shape sweep cannot oversubscribe the machine beyond
	// WithQueryConcurrency.
	type unit struct {
		group  []int // a shape group's shared run...
		single int   // ...or one per-query index (when group is nil)
	}
	units := make([]unit, 0, len(groups)+len(singles))
	for _, g := range groups {
		units = append(units, unit{group: g})
	}
	for _, i := range singles {
		units = append(units, unit{group: nil, single: i})
	}
	workers := cfg.concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}

	jobs := make(chan unit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range jobs {
				if u.group != nil {
					if err := s.runBatchGroup(ctx, cfg, opts, qs, u.group, results); err != nil {
						fail(err)
						return
					}
					continue
				}
				res, err := s.Run(ctx, qs[u.single], opts...)
				results[u.single] = res
				if err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for _, u := range units {
		select {
		case jobs <- u:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return results, firstErr
}

// CachedPlan reports the level plan the session would reuse for q's
// shape, if one is cached. Options refine the shape the same way they
// would for Run (splitting ratio, balanced-plan parameters).
func (s *Session) CachedPlan(q Query, opts ...Option) (Plan, bool) {
	if err := q.Validate(); err != nil {
		return Plan{}, false
	}
	all := append(append([]Option(nil), s.defaults...), opts...)
	cfg, err := buildConfig(all)
	if err != nil {
		return Plan{}, false
	}
	return s.runner.PeekPlan(cfg.spec(s.proc, q))
}

// Stats reports the session's accumulated cost accounting.
func (s *Session) Stats() SessionStats {
	cache := s.runner.Cache.Stats()
	return SessionStats{
		Queries:         s.queries.Load(),
		SampleSteps:     s.sampleSteps.Load(),
		PlanEntries:     cache.Entries,
		PlanHits:        cache.Hits,
		PlanMisses:      cache.Misses,
		PlanSearchSteps: cache.SearchSteps,
	}
}

// SessionStats is a point-in-time snapshot of a session.
type SessionStats struct {
	Queries     int64 // queries answered successfully
	SampleSteps int64 // simulator invocations spent sampling, failed queries included
	// Plan cache effectiveness: searches run, lookups served from cache,
	// and the total simulator invocations searches consumed (failed and
	// cancelled searches included).
	PlanEntries     int
	PlanHits        int64
	PlanMisses      int64
	PlanSearchSteps int64
}

// HitRate returns the plan-cache hit rate, or 0 before any MLSS query.
func (st SessionStats) HitRate() float64 {
	total := st.PlanHits + st.PlanMisses
	if total == 0 {
		return 0
	}
	return float64(st.PlanHits) / float64(total)
}

// TotalSteps returns every simulator invocation the session performed.
func (st SessionStats) TotalSteps() int64 { return st.SampleSteps + st.PlanSearchSteps }

// RunMany is the one-shot convenience form of Session.RunMany: it opens a
// session with the given options as defaults, answers the batch through a
// shared plan cache, and discards the session.
func RunMany(ctx context.Context, proc Process, qs []Query, opts ...Option) ([]Result, error) {
	s, err := NewSession(proc, opts...)
	if err != nil {
		return nil, err
	}
	return s.RunMany(ctx, qs)
}

// RunBatch is the one-shot convenience form of Session.RunBatch: queries
// sharing a (observer, horizon) shape are answered by one shared
// splitting run over a covering level plan, so a whole threshold ladder
// costs about as much as its hardest member. See Session.RunBatch.
func RunBatch(ctx context.Context, proc Process, qs []Query, opts ...Option) ([]Result, error) {
	s, err := NewSession(proc, opts...)
	if err != nil {
		return nil, err
	}
	return s.RunBatch(ctx, qs)
}
