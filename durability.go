// Package durability answers durability prediction queries over step-wise
// simulation models, implementing the SIGMOD 2021 paper "Efficiently
// Answering Durability Prediction Queries" (Gao, Xu, Agarwal, Yang).
//
// A durability prediction query asks: given a stochastic process with a
// step-by-step simulator, what is the probability that a condition of
// interest holds at any time within a horizon? ("What is the chance this
// insurance product goes 300 units into profit within 500 days?") The
// package provides the standard Monte-Carlo baseline (simple random
// sampling) and the paper's contribution, Multi-Level Splitting Sampling
// (MLSS), which answers rare-event queries up to an order of magnitude
// faster at the same statistical quality — with automatic level design so
// no manual tuning is required.
//
// Minimal use:
//
//	q := durability.Query{Z: durability.Queue2Len, Beta: 26, Horizon: 500}
//	res, err := durability.Run(ctx, durability.NewTandemQueue(0.5, 2, 2), q,
//	    durability.WithRelativeErrorTarget(0.1),
//	)
//	fmt.Println(res.P, res.CI(0.95))
//
// By default Run uses g-MLSS (correct even for processes whose value can
// jump across several levels in one step) with an automatically searched
// level partition. See the examples directory for richer scenarios.
package durability

import (
	"context"
	"errors"
	"fmt"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/opt"
	"durability/internal/stochastic"
)

// Re-exported substrate types. State, Process and Observer form the
// simulation contract: a Process steps a State forward one time unit at a
// time, and an Observer extracts the real-valued quantity queries
// threshold on.
type (
	// State is one snapshot of a process; Clone must deep-copy it.
	State = stochastic.State
	// Process is the step-wise simulation procedure 𝔤.
	Process = stochastic.Process
	// Observer maps a state to the real-valued evaluation z(x).
	Observer = stochastic.Observer
	// Result carries the estimate, its variance, the confidence interval
	// accessors, and cost accounting (Steps = simulator invocations).
	Result = mc.Result
	// StopRule decides when sampling may stop.
	StopRule = mc.StopRule
	// Plan is an MLSS level-partition plan.
	Plan = core.Plan
)

// Method selects the sampling algorithm.
type Method int

// Available methods.
const (
	// GMLSS is general multi-level splitting (§4 of the paper): unbiased
	// for arbitrary processes, including ones that skip levels. The
	// default.
	GMLSS Method = iota
	// SMLSS is simple multi-level splitting (§3): slightly cheaper
	// bookkeeping, but unbiased only when the process cannot jump across
	// a level boundary in a single step.
	SMLSS
	// SRS is simple random sampling, the standard Monte-Carlo baseline.
	SRS
)

func (m Method) String() string {
	switch m {
	case GMLSS:
		return "g-mlss"
	case SMLSS:
		return "s-mlss"
	case SRS:
		return "srs"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Query is a durability prediction query in the standard threshold form:
// the probability that Z(state) >= Beta at any time 1..Horizon.
type Query struct {
	Z       Observer
	Beta    float64
	Horizon int
}

// Validate reports configuration errors.
func (q Query) Validate() error {
	if q.Z == nil {
		return errors.New("durability: query has no observer")
	}
	if q.Beta <= 0 {
		return fmt.Errorf("durability: threshold %v must be positive (the value function scales by it)", q.Beta)
	}
	if q.Horizon <= 0 {
		return fmt.Errorf("durability: horizon %d must be positive", q.Horizon)
	}
	return nil
}

type planMode int

const (
	planAuto planMode = iota // adaptive greedy search (§5.2)
	planFixed
	planBalanced
)

type config struct {
	method    Method
	ratio     int
	workers   int
	seed      uint64
	stops     mc.Any
	planMode  planMode
	plan      core.Plan
	balTau    float64
	balLevels int
	trace     func(Result)
	maxSteps  int64
}

// Option configures Run.
type Option func(*config) error

// WithMethod selects the sampler (default GMLSS).
func WithMethod(m Method) Option {
	return func(c *config) error {
		if m != GMLSS && m != SMLSS && m != SRS {
			return fmt.Errorf("durability: unknown method %v", m)
		}
		c.method = m
		return nil
	}
}

// WithSplitRatio sets the MLSS splitting ratio r (default 3, the value the
// paper's ratio sweep identifies as near-optimal across models).
func WithSplitRatio(r int) Option {
	return func(c *config) error {
		if r < 1 {
			return fmt.Errorf("durability: splitting ratio %d must be >= 1", r)
		}
		c.ratio = r
		return nil
	}
}

// WithPlan fixes the MLSS level boundaries explicitly (values in (0,1),
// relative to the threshold: boundary 0.5 splits paths whose value reaches
// half of Beta).
func WithPlan(boundaries ...float64) Option {
	return func(c *config) error {
		p, err := core.NewPlan(boundaries...)
		if err != nil {
			return err
		}
		c.planMode = planFixed
		c.plan = p
		return nil
	}
}

// WithAutoLevels enables the adaptive greedy level search (the default):
// boundaries are placed automatically by trial simulations before the main
// run; the trials' cost is included in the result's Steps.
func WithAutoLevels() Option {
	return func(c *config) error {
		c.planMode = planAuto
		return nil
	}
}

// WithBalancedLevels builds a balanced-growth plan with the given number
// of levels from a prior estimate tau of the answer (an order of magnitude
// suffices).
func WithBalancedLevels(tau float64, levels int) Option {
	return func(c *config) error {
		if tau <= 0 || tau >= 1 {
			return fmt.Errorf("durability: prior tau %v must be in (0,1)", tau)
		}
		if levels < 1 {
			return fmt.Errorf("durability: level count %d must be >= 1", levels)
		}
		c.planMode = planBalanced
		c.balTau = tau
		c.balLevels = levels
		return nil
	}
}

// WithSeed fixes the random seed; runs with equal seeds and settings are
// bit-for-bit reproducible regardless of parallelism.
func WithSeed(seed uint64) Option {
	return func(c *config) error { c.seed = seed; return nil }
}

// WithWorkers sets the number of parallel simulation workers (default 1).
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("durability: worker count %d must be >= 1", n)
		}
		c.workers = n
		return nil
	}
}

// WithBudget caps the total number of simulator invocations.
func WithBudget(steps int64) Option {
	return func(c *config) error {
		if steps <= 0 {
			return fmt.Errorf("durability: budget %d must be positive", steps)
		}
		c.stops = append(c.stops, mc.Budget{Steps: steps})
		return nil
	}
}

// WithCITarget stops when the confidence interval half-width (relative to
// the estimate if relative is true) reaches half at the given confidence.
func WithCITarget(half, confidence float64, relative bool) Option {
	return func(c *config) error {
		if half <= 0 || confidence <= 0 || confidence >= 1 {
			return fmt.Errorf("durability: bad CI target (half=%v, confidence=%v)", half, confidence)
		}
		c.stops = append(c.stops, mc.CITarget{Half: half, Confidence: confidence, Relative: relative})
		return nil
	}
}

// WithRelativeErrorTarget stops when sqrt(Var)/estimate reaches re — the
// paper's quality measure for rare queries (it uses 0.10).
func WithRelativeErrorTarget(re float64) Option {
	return func(c *config) error {
		if re <= 0 {
			return fmt.Errorf("durability: relative error target %v must be positive", re)
		}
		c.stops = append(c.stops, mc.RETarget{Target: re})
		return nil
	}
}

// WithTrace registers a callback invoked with the running result after
// every batch — convergence monitoring.
func WithTrace(f func(Result)) Option {
	return func(c *config) error { c.trace = f; return nil }
}

// defaultSafetyCap bounds runaway runs when only a quality target is set
// and the event turns out to be (nearly) impossible.
const defaultSafetyCap = int64(2_000_000_000)

// Run answers the query against the process. At least one stopping option
// (WithBudget, WithCITarget, WithRelativeErrorTarget) should be given;
// with none, a relative-error target of 10% is used. A safety budget of
// two billion simulator invocations always applies.
func Run(ctx context.Context, proc Process, q Query, opts ...Option) (Result, error) {
	if proc == nil {
		return Result{}, errors.New("durability: nil process")
	}
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	cfg := config{method: GMLSS, ratio: 3, workers: 1, seed: 1, planMode: planAuto}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return Result{}, err
		}
	}
	if len(cfg.stops) == 0 {
		cfg.stops = append(cfg.stops, mc.RETarget{Target: 0.10})
	}
	cfg.stops = append(cfg.stops, mc.Budget{Steps: defaultSafetyCap})

	if cfg.method == SRS {
		s := &mc.SRS{
			Proc:    proc,
			Query:   mc.Query{Cond: mc.Threshold(q.Z, q.Beta), Horizon: q.Horizon},
			Stop:    cfg.stops,
			Seed:    cfg.seed,
			Workers: cfg.workers,
			Trace:   cfg.trace,
		}
		return s.Run(ctx)
	}

	cq := core.Query{Value: core.ThresholdValue(q.Z, q.Beta), Horizon: q.Horizon}
	plan := cfg.plan
	var searchSteps int64
	switch cfg.planMode {
	case planAuto:
		problem := &opt.Problem{Proc: proc, Query: cq, Ratio: cfg.ratio, Seed: cfg.seed, Workers: cfg.workers}
		g, err := opt.Greedy(ctx, problem, opt.GreedyOptions{})
		if err != nil {
			return Result{}, err
		}
		plan = g.Plan
		searchSteps = g.SearchSteps
	case planBalanced:
		problem := &opt.Problem{Proc: proc, Query: cq, Ratio: cfg.ratio, Seed: cfg.seed, Workers: cfg.workers}
		p, cost, err := opt.BalancedPlan(ctx, problem, cfg.balTau, cfg.balLevels, 500)
		if err != nil {
			return Result{}, err
		}
		plan = p
		searchSteps = cost
	}

	var res Result
	var err error
	if cfg.method == SMLSS {
		s := &core.SMLSS{
			Proc: proc, Query: cq, Plan: plan, Ratio: cfg.ratio,
			Stop: cfg.stops, Seed: cfg.seed, Workers: cfg.workers, Trace: cfg.trace,
		}
		res, err = s.Run(ctx)
	} else {
		g := &core.GMLSS{
			Proc: proc, Query: cq, Plan: plan, Ratio: cfg.ratio,
			Stop: cfg.stops, Seed: cfg.seed, Workers: cfg.workers, Trace: cfg.trace,
		}
		res, err = g.Run(ctx)
	}
	res.Steps += searchSteps // level search is part of the query's cost
	return res, err
}

// AutoPlan runs only the adaptive greedy level search (§5.2) and returns
// the selected plan plus the number of simulator invocations spent, for
// callers who want to reuse a plan across many queries.
func AutoPlan(ctx context.Context, proc Process, q Query, ratio int, seed uint64) (Plan, int64, error) {
	if err := q.Validate(); err != nil {
		return Plan{}, 0, err
	}
	if ratio < 1 {
		ratio = 3
	}
	problem := &opt.Problem{
		Proc:  proc,
		Query: core.Query{Value: core.ThresholdValue(q.Z, q.Beta), Horizon: q.Horizon},
		Ratio: ratio,
		Seed:  seed,
	}
	g, err := opt.Greedy(ctx, problem, opt.GreedyOptions{})
	if err != nil {
		return Plan{}, 0, err
	}
	return g.Plan, g.SearchSteps, nil
}

// NewPlan validates explicit level boundaries into a Plan.
func NewPlan(boundaries ...float64) (Plan, error) { return core.NewPlan(boundaries...) }
