package durability

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// SRS uses no level partition, so plan options silently doing nothing was
// a trap; they must be rejected regardless of option order.
func TestSRSRejectsPlanOptions(t *testing.T) {
	w, q := walkQuery()
	ctx := context.Background()
	cases := [][]Option{
		{WithMethod(SRS), WithPlan(0.5)},
		{WithPlan(0.5), WithMethod(SRS)}, // order must not matter
		{WithMethod(SRS), WithAutoLevels()},
		{WithMethod(SRS), WithBalancedLevels(0.01, 4)},
	}
	for i, opts := range cases {
		if _, err := Run(ctx, w, q, append(opts, WithBudget(1000))...); err == nil {
			t.Errorf("case %d: SRS with a plan option accepted", i)
		}
	}
	// Plain SRS (auto mode is only the default, not an explicit choice)
	// must keep working.
	if _, err := Run(ctx, w, q, WithMethod(SRS), WithBudget(1000)); err != nil {
		t.Fatalf("plain SRS rejected: %v", err)
	}
	// Sessions apply the same validation.
	if _, err := NewSession(w, WithMethod(SRS), WithPlan(0.5)); err == nil {
		t.Error("NewSession accepted SRS with a plan option")
	}
}

// A cancelled context must surface ctx.Err() from every method, both with
// a fixed plan and through the level search.
func TestRunCancelledContext(t *testing.T) {
	w, q := walkQuery()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cases := map[string][]Option{
		"srs":          {WithMethod(SRS)},
		"smlss-fixed":  {WithMethod(SMLSS), WithPlan(0.5)},
		"gmlss-fixed":  {WithMethod(GMLSS), WithPlan(0.5)},
		"gmlss-auto":   {WithMethod(GMLSS)},
		"gmlss-balanc": {WithMethod(GMLSS), WithBalancedLevels(0.01, 4)},
	}
	for name, opts := range cases {
		_, err := Run(ctx, w, q, append(opts, WithBudget(1_000_000))...)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// A deadline expiring mid-run must end the query at the next batch
// boundary, not run to its (enormous) budget.
func TestRunDeadlineMidRun(t *testing.T) {
	w := &RandomWalk{Start: 0, Drift: 0, Sigma: 1}
	q := Query{Z: ScalarValue, Beta: 38, Horizon: 100} // tau ~ 1e-4: far beyond a 100ms budget
	for _, m := range []Method{SRS, SMLSS, GMLSS} {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		start := time.Now()
		opts := []Option{WithMethod(m), WithBudget(2_000_000_000), WithWorkers(4), WithSeed(1)}
		if m != SRS {
			opts = append(opts, WithPlan(0.3, 0.55, 0.8))
		}
		_, err := Run(ctx, w, q, opts...)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%v: err = %v, want context.DeadlineExceeded", m, err)
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Errorf("%v: deadline ignored for %v", m, elapsed)
		}
	}
}

func TestSessionCancelledContext(t *testing.T) {
	w, q := walkQuery()
	s, err := NewSession(w, WithBudget(1_000_000), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("Session.Run err = %v, want context.Canceled", err)
	}
	if _, err := s.RunMany(ctx, []Query{q, q}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Session.RunMany err = %v, want context.Canceled", err)
	}
}

func TestSessionValidation(t *testing.T) {
	w, q := walkQuery()
	if _, err := NewSession(nil); err == nil {
		t.Error("nil process accepted")
	}
	if _, err := NewSession(w, WithWorkers(0)); err == nil {
		t.Error("bad default option accepted")
	}
	s, err := NewSession(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), Query{Z: nil, Beta: 1, Horizon: 5}); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := s.RunMany(context.Background(), []Query{q}, WithQueryConcurrency(0)); err == nil {
		t.Error("zero query concurrency accepted")
	}
	if res, err := s.RunMany(context.Background(), nil); err != nil || res != nil {
		t.Errorf("empty batch: %v %v", res, err)
	}
}

// The headline amortization claim, end to end: a 100-query threshold sweep
// over one model must spend at most a fifth of the simulation that one
// hundred independent Run calls spend at the same relative-error target.
// Since the batch path landed, RunMany shares more than the level search:
// the whole sweep collapses into one covering-plan search plus one shared
// splitting run — and the sweep must remain exactly reproducible under a
// fixed seed.
func TestSessionPlanReuseBeatsIndependentRuns(t *testing.T) {
	w := &RandomWalk{Start: 0, Drift: 0, Sigma: 1}
	const n = 100
	queries := make([]Query, n)
	for i := range queries {
		queries[i] = Query{Z: ScalarValue, Beta: 7.5 + float64(i)*0.01, Horizon: 100}
	}
	opts := []Option{WithRelativeErrorTarget(0.10), WithSeed(1)}
	ctx := context.Background()

	sweep := func() ([]Result, SessionStats) {
		s, err := NewSession(w, opts...)
		if err != nil {
			t.Fatal(err)
		}
		results, err := s.RunMany(ctx, queries)
		if err != nil {
			t.Fatal(err)
		}
		return results, s.Stats()
	}
	results, stats := sweep()

	var independent int64
	for i, q := range queries {
		res, err := Run(ctx, w, q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		independent += res.Steps
		// Per-query estimates must be sane either way.
		if results[i].P <= 0 || results[i].P >= 1 {
			t.Fatalf("query %d: session estimate %v", i, results[i].P)
		}
	}

	total := stats.TotalSteps()
	if total*5 > independent {
		t.Fatalf("sweep spent %d steps, independent runs %d — want <= 1/5 (searches: %d cached hits, %d misses)",
			total, independent, stats.PlanHits, stats.PlanMisses)
	}
	// One shape means one covering-plan search for the whole sweep; no
	// query pays a second one.
	if stats.PlanMisses != 1 {
		t.Fatalf("one-shape sweep ran %d plan searches, want 1: %+v", stats.PlanMisses, stats)
	}
	if stats.Queries != n {
		t.Fatalf("queries = %d, want %d", stats.Queries, n)
	}
	t.Logf("sweep: %d steps vs %d independent (%.1fx); %d searches for %d queries (hit rate %.0f%%)",
		total, independent, float64(independent)/float64(total),
		stats.PlanMisses, n, 100*stats.HitRate())

	// Determinism: a second sweep with the same seed reproduces every
	// estimate bit for bit, concurrency notwithstanding.
	again, _ := sweep()
	for i := range results {
		if results[i].P != again[i].P || results[i].Variance != again[i].Variance {
			t.Fatalf("query %d not reproducible: %v vs %v", i, results[i].P, again[i].P)
		}
	}
}

// A query answered with a cached plan is bit-for-bit the query one would
// have run by hand with WithPlan: caching changes cost, never results.
// And the cached plan itself is a pure function of the query shape, so a
// fresh session derives the identical plan.
func TestSessionMatchesExplicitPlan(t *testing.T) {
	w := &RandomWalk{Start: 0, Drift: 0, Sigma: 1}
	q := Query{Z: ScalarValue, Beta: 8, Horizon: 100}
	opts := []Option{WithRelativeErrorTarget(0.15), WithSeed(3)}
	ctx := context.Background()

	s, err := NewSession(w, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.CachedPlan(q); ok {
		t.Fatal("cold session reported a cached plan")
	}
	if _, err := s.Run(ctx, q); err != nil { // warm the cache
		t.Fatal(err)
	}
	cached, err := s.Run(ctx, q) // pure cache hit: no search steps
	if err != nil {
		t.Fatal(err)
	}
	plan, ok := s.CachedPlan(q)
	if !ok {
		t.Fatal("warmed session reported no cached plan")
	}

	manual, err := Run(ctx, w, q, append(opts, WithPlan(plan.Boundaries...))...)
	if err != nil {
		t.Fatal(err)
	}
	if cached.P != manual.P || cached.Steps != manual.Steps {
		t.Fatalf("cached run (p=%v, %d steps) != manual plan run (p=%v, %d steps)",
			cached.P, cached.Steps, manual.P, manual.Steps)
	}

	// Shape-determinism: an independent session must derive the same plan.
	s2, err := NewSession(w, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(ctx, q); err != nil {
		t.Fatal(err)
	}
	plan2, ok := s2.CachedPlan(q)
	if !ok {
		t.Fatal("second session reported no cached plan")
	}
	if len(plan2.Boundaries) != len(plan.Boundaries) {
		t.Fatalf("sessions derived different plans: %v vs %v", plan, plan2)
	}
	for i := range plan.Boundaries {
		if plan.Boundaries[i] != plan2.Boundaries[i] {
			t.Fatalf("sessions derived different plans: %v vs %v", plan, plan2)
		}
	}
}

func TestRunManyConvenience(t *testing.T) {
	w := &RandomWalk{Start: 0, Drift: 0, Sigma: 1}
	qs := []Query{
		{Z: ScalarValue, Beta: 8, Horizon: 100},
		{Z: ScalarValue, Beta: 8.05, Horizon: 100},
		{Z: ScalarValue, Beta: 8.1, Horizon: 100},
	}
	results, err := RunMany(context.Background(), w, qs,
		WithRelativeErrorTarget(0.2), WithSeed(2), WithQueryConcurrency(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(qs) {
		t.Fatalf("%d results for %d queries", len(results), len(qs))
	}
	for i, r := range results {
		if r.P <= 0 || r.P >= 1 || math.IsNaN(r.P) {
			t.Fatalf("query %d: estimate %v", i, r.P)
		}
	}
}

// Observer identity drives plan caching: ZName overrides; otherwise the
// function value identifies. Package-level observers have static funcvals,
// so their ids are unconditionally stable; closure identity is exercised
// through the Session surface below, where observers escape into sampler
// specs and stay heap-pinned.
func TestObserverNaming(t *testing.T) {
	q1 := Query{Z: NodeLen(0), Beta: 5, Horizon: 50, ZName: "node0"}
	q2 := Query{Z: NodeLen(1), Beta: 5, Horizon: 50, ZName: "node1"}
	if observerID(q1) == observerID(q2) {
		t.Fatal("named observers alias")
	}
	// ZName lets logically identical but separately constructed closures
	// share a cache entry.
	qa := Query{Z: NodeLen(0), ZName: "node0"}
	qb := Query{Z: NodeLen(0), ZName: "node0"}
	if observerID(qa) != observerID(qb) {
		t.Fatal("equal ZNames produced different ids")
	}
	if observerID(Query{Z: ScalarValue}) != observerID(Query{Z: ScalarValue}) {
		t.Fatal("one package observer produced two ids")
	}
	if observerID(Query{Z: ScalarValue}) == observerID(Query{Z: ARValue}) {
		t.Fatal("distinct package observers alias")
	}
}

// A closure observer reused across session queries must hit the plan
// cache: in the session flow the observer escapes into the sampler spec,
// pinning its identity for the session's life.
func TestSessionClosureObserverCacheHit(t *testing.T) {
	w := &RandomWalk{Start: 0, Drift: 0, Sigma: 1}
	obs := func(s State) float64 { return ScalarValue(s) } // a closure, not a package func
	s, err := NewSession(w, WithRelativeErrorTarget(0.2), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Z: obs, Beta: 8, Horizon: 100}
	ctx := context.Background()
	if _, err := s.Run(ctx, q); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, q); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PlanHits != 1 || st.PlanMisses != 1 {
		t.Fatalf("closure observer did not cache: %+v", st)
	}
}
