// Command durcluster runs the distributed MLSS execution of §3.1: one
// process per machine in worker mode, plus one coordinator that fans root
// paths out, merges counters and stops at the quality target. The
// coordinator rides the pluggable execution seam of internal/exec — the
// same cluster backend durserve mounts with -workers — so a query here is
// bit-for-bit the run a single machine would have produced at the same
// seed.
//
// Start two workers (different machines or ports):
//
//	durcluster -serve 127.0.0.1:7070
//	durcluster -serve 127.0.0.1:7071
//
// Then coordinate a query across them:
//
//	durcluster -model queue -beta 58 -horizon 500 -re 0.1 \
//	    -peers 127.0.0.1:7070,127.0.0.1:7071
//
// The built-in model registry covers the paper's evaluation models with
// their standard parameters (see internal/experiments): queue, cpp,
// volatile-queue, volatile-cpp, walk.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"durability/internal/cluster"
	coreq "durability/internal/core"
	"durability/internal/exec"
	"durability/internal/experiments"
	"durability/internal/mc"
	"durability/internal/opt"
	"durability/internal/stochastic"
)

// registry exposes the evaluation models under stable names. Every model
// publishes its canonical observable as "value", the name shard requests
// default to.
func registry() cluster.Registry {
	fromSpec := func(spec *experiments.Spec) cluster.ModelFactory {
		return func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return spec.Proc, map[string]stochastic.Observer{"value": spec.Obs}, nil
		}
	}
	return cluster.Registry{
		"queue":          fromSpec(experiments.QueueSpec()),
		"cpp":            fromSpec(experiments.CPPSpec()),
		"volatile-queue": fromSpec(experiments.VolatileQueueSpec()),
		"volatile-cpp":   fromSpec(experiments.VolatileCPPSpec()),
		"walk": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return &stochastic.RandomWalk{Sigma: 1}, map[string]stochastic.Observer{"value": stochastic.ScalarValue}, nil
		},
	}
}

func main() {
	var (
		serve      = flag.String("serve", "", "worker mode: listen on this address")
		local      = flag.Int("local-workers", 4, "worker mode: local simulation parallelism")
		model      = flag.String("model", "queue", "coordinator: model name")
		beta       = flag.Float64("beta", 58, "coordinator: threshold")
		horizon    = flag.Int("horizon", 500, "coordinator: time horizon")
		re         = flag.Float64("re", 0.1, "coordinator: relative-error target")
		budget     = flag.Int64("budget", 2_000_000_000, "coordinator: hard step budget")
		ratio      = flag.Int("ratio", 3, "coordinator: splitting ratio")
		seed       = flag.Uint64("seed", 1, "coordinator: random seed")
		peers      = flag.String("peers", "", "coordinator: comma-separated worker addresses")
		bounds     = flag.String("levels", "", "coordinator: comma-separated boundaries in (0,1); empty = greedy search")
		batchRoots = flag.Int("batch-roots", 256, "coordinator: root paths per synchronization round (fixed regardless of fleet size, so results are identical across peer counts)")
	)
	flag.Parse()
	reg := registry()

	if *serve != "" {
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "durcluster:", err)
			os.Exit(1)
		}
		addr := cluster.Serve(cluster.NewWorker(reg, *local), ln)
		fmt.Printf("worker serving on %s (%d local workers)\n", addr, *local)
		select {} // serve until killed
	}

	if *peers == "" {
		fmt.Fprintln(os.Stderr, "durcluster: need -serve (worker) or -peers (coordinator)")
		os.Exit(1)
	}
	factory, ok := reg[*model]
	if !ok {
		fmt.Fprintf(os.Stderr, "durcluster: unknown model %q\n", *model)
		os.Exit(1)
	}
	proc, observers, err := factory()
	if err != nil {
		fmt.Fprintln(os.Stderr, "durcluster:", err)
		os.Exit(1)
	}
	obs := observers["value"]

	var boundaries []float64
	if *bounds != "" {
		for _, part := range strings.Split(*bounds, ",") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%g", &v); err != nil {
				fmt.Fprintf(os.Stderr, "durcluster: bad boundary %q\n", part)
				os.Exit(1)
			}
			boundaries = append(boundaries, v)
		}
	} else {
		prob := &opt.Problem{
			Proc:  proc,
			Query: coreq.Query{Value: coreq.ThresholdValue(obs, *beta), Horizon: *horizon},
			Ratio: *ratio,
			Seed:  *seed,
		}
		g, err := opt.Greedy(context.Background(), prob, opt.GreedyOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "durcluster:", err)
			os.Exit(1)
		}
		boundaries = g.Plan.Boundaries
		fmt.Printf("greedy levels: %v (search cost %d steps)\n", boundaries, g.SearchSteps)
	}

	var addrs []string
	for _, a := range strings.Split(*peers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "durcluster: -peers names no worker addresses")
		os.Exit(1)
	}
	backend := exec.NewCluster(addrs...)
	defer backend.Close()
	res, err := exec.Sample(context.Background(), backend, exec.Task{
		Proc:       proc,
		Obs:        obs,
		Model:      *model,
		Beta:       *beta,
		Horizon:    *horizon,
		Boundaries: boundaries,
		Ratio:      *ratio,
		Seed:       *seed,
	}, exec.SampleOptions{
		Stop:       mc.Any{mc.RETarget{Target: *re}, mc.Budget{Steps: *budget}},
		BatchRoots: *batchRoots,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "durcluster:", err)
		os.Exit(1)
	}
	fmt.Printf("P = %.6g  (95%% CI %v, RE %.3g)\n", res.P, res.CI(0.95), res.RelErr())
	fmt.Printf("cost: %d steps across %d root paths, %v wall\n", res.Steps, res.Paths, res.Elapsed)
}
