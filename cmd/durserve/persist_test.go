package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"durability/internal/persist"
	"durability/internal/serve"
)

// durableServer builds a durserve stack persisting to dir, mirroring
// testServerHub. Every call with one dir must use the same settings, as a
// real restart would.
func durableServer(t *testing.T, dir string) (*httptest.Server, *streamHub) {
	t.Helper()
	registry := buildRegistry(modelParams{
		lambda: 0.5, mu1: 2, mu2: 2,
		u0: 15, premium: 6, claimLam: 0.8, claimLo: 5, claimHi: 10,
		sigma: 1, s0: 1000,
	})
	tel := newTelemetry()
	srv := serve.NewServer(registry, serve.Config{PoolWorkers: 2, Seed: 1, Tracer: tel.tracer})
	t.Cleanup(srv.Close)
	hub := newStreamHub(srv, registry, 0.15, 50_000_000, 1, nil, 0, tel.engine, 1)
	tel.bind(srv, hub)
	hs, err := openHubStores(dir, persist.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hs.Close() })
	// Mirror main's readiness and recovery-metric sequence, so tests can
	// assert on the post-recovery /metrics surface.
	tel.setState(stateReplaying)
	began := time.Now()
	replayed, err := hub.attachStores(hs)
	if err != nil {
		t.Fatalf("recovering %s: %v", dir, err)
	}
	tel.observeRecovery(int64(replayed), time.Since(began))
	tel.setState(stateReady)
	ts := httptest.NewServer(newMux(srv, hub, tel, &replicaSet{}))
	t.Cleanup(ts.Close)
	return ts, hub
}

// tickOnce advances a stream one step and returns the lone refresh.
func tickOnce(t *testing.T, ts *httptest.Server, stream string) answerJSON {
	t.Helper()
	resp, raw := postJSON(t, ts, "/tick", `{"stream":"`+stream+`","steps":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status %d: %s", resp.StatusCode, raw)
	}
	var tk tickResponse
	if err := json.Unmarshal(raw, &tk); err != nil {
		t.Fatal(err)
	}
	if len(tk.Refreshes) != 1 || tk.Refreshes[0].Error != "" {
		t.Fatalf("tick response %+v", tk)
	}
	return tk.Refreshes[0].Answer
}

// goldenAnswers runs the whole trajectory on a never-restarted in-memory
// server: the reference the recovered server must match bit for bit.
func goldenAnswers(t *testing.T, ticks int) []answerJSON {
	t.Helper()
	ts := testServer(t)
	if sub := subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`); sub.ID != "sub-1" {
		t.Fatalf("golden subscribe %+v", sub)
	}
	out := make([]answerJSON, 0, ticks)
	for i := 0; i < ticks; i++ {
		out = append(out, tickOnce(t, ts, "walk"))
	}
	return out
}

// A durserve killed without warning (no shutdown, no final checkpoint)
// and restarted on its -data-dir must serve bit-for-bit the answers an
// uninterrupted server would — including when the crash tears the last
// shard WAL record, in which case recovery completes the torn tick by
// recomputing the feed trajectory and republishing the missing update.
func TestDurserveCrashRestartMatchesUninterrupted(t *testing.T) {
	const totalTicks, crashAfter = 11, 6
	golden := goldenAnswers(t, totalTicks)

	for _, tearTail := range []bool{false, true} {
		name := "clean-tail"
		if tearTail {
			name = "torn-tail"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			ts, hub := durableServer(t, dir)
			if sub := subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`); sub.ID != "sub-1" {
				t.Fatalf("subscribe %+v", sub)
			}
			for i := 0; i < crashAfter; i++ {
				if got := tickOnce(t, ts, "walk"); got != golden[i] {
					t.Fatalf("pre-crash tick %d: %+v != golden %+v", i+1, got, golden[i])
				}
			}
			// The crash: close the listener and release the store's file
			// handle, but write no checkpoint — the state must come back
			// from the boot checkpoint plus the WAL alone.
			ts.Close()
			hub.closeStores()

			if tearTail {
				// Tear the engine shard's newest segment mid-record: the
				// shard loses the last tick's refresh, but the hub lineage
				// still holds the feed step, so recovery must catch the
				// shard up instead of serving from a short state.
				wals, err := filepath.Glob(filepath.Join(dir, shardStoreName(0), "wal-*"))
				if err != nil || len(wals) == 0 {
					t.Fatalf("no wal segments (%v)", err)
				}
				sort.Strings(wals)
				newest := wals[len(wals)-1]
				info, err := os.Stat(newest)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(newest, info.Size()-4); err != nil {
					t.Fatal(err)
				}
			}

			ts2, hub2 := durableServer(t, dir)
			if got, want := hub2.stats().Subscriptions, 1; got != want {
				t.Fatalf("recovered %d subscriptions, want %d", got, want)
			}
			for i := crashAfter; i < totalTicks; i++ {
				if got := tickOnce(t, ts2, "walk"); got != golden[i] {
					t.Fatalf("post-recovery tick %d: %+v != golden %+v", i+1, got, golden[i])
				}
			}
		})
	}
}

// The recovered handle table must serve /updates on pre-crash
// subscription IDs, and a recovered subscription must long-poll exactly
// like a never-restarted one.
func TestDurserveRecoveredHandleServesUpdates(t *testing.T) {
	dir := t.TempDir()
	ts, hub := durableServer(t, dir)
	sub := subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`)
	want := tickOnce(t, ts, "walk")
	ts.Close()
	hub.closeStores()

	ts2, _ := durableServer(t, dir)
	resp, err := http.Get(ts2.URL + "/updates?id=" + sub.ID + "&since=0&timeoutSec=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("updates status %d", resp.StatusCode)
	}
	var got answerJSON
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("recovered answer %+v, pre-crash answer %+v", got, want)
	}
}

// A deleted subscription must stay deleted across the restart.
func TestDurserveUnsubscribeSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ts, hub := durableServer(t, dir)
	sub := subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/subscribe?id="+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("unsubscribe status %d", resp.StatusCode)
	}
	ts.Close()
	hub.closeStores()

	ts2, hub2 := durableServer(t, dir)
	if n := hub2.stats().Subscriptions; n != 0 {
		t.Fatalf("recovered %d subscriptions, want 0", n)
	}
	resp2, err := http.Get(ts2.URL + "/updates?id=" + sub.ID + "&since=0&timeoutSec=1")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("updates on deleted subscription: status %d, want 404", resp2.StatusCode)
	}
}

// On shutdown, in-flight GET /updates long-polls resolve with 204
// (shutting down) instead of hanging until their timeout or being
// dropped mid-poll.
func TestShutdownResolvesLongPollsWith204(t *testing.T) {
	ts, hub := testServerHub(t)
	sub := subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`)

	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/updates?id=" + sub.ID + "&since=0&timeoutSec=60")
		if err != nil {
			done <- result{err: err}
			return
		}
		resp.Body.Close()
		done <- result{status: resp.StatusCode}
	}()

	// Let the poll arm, then begin shutdown.
	time.Sleep(100 * time.Millisecond)
	hub.beginShutdown()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("long poll failed: %v", r.err)
		}
		if r.status != http.StatusNoContent {
			t.Fatalf("long poll resolved with %d, want 204", r.status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll still hanging 5s after shutdown began")
	}
}

// A crash between the engine's subscribe record and the hub's bind
// record (or a snapshot landing between the two captures) recovers a
// live subscription no handle can address. Recovery must reap it — the
// client never received a handle, so the subscribe never happened from
// its point of view — instead of refreshing it forever.
func TestRecoveryReapsHandleLessSubscriptions(t *testing.T) {
	dir := t.TempDir()
	ts, hub := durableServer(t, dir)
	subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`)
	// Manufacture the crash window: the engine holds the subscription
	// but the handle table forgets it, and a checkpoint captures exactly
	// that split (its HubLSN then makes replay skip the bind record).
	hub.mu.Lock()
	delete(hub.subs, "sub-1")
	hub.mu.Unlock()
	if err := hub.checkpoint(); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	hub.closeStores()

	_, hub2 := durableServer(t, dir)
	st := hub2.stats()
	if st.Engine.Subscriptions != 0 || st.Subscriptions != 0 {
		t.Fatalf("recovered %d engine / %d hub subscriptions, want the orphan reaped", st.Engine.Subscriptions, st.Subscriptions)
	}
}
