package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"durability/internal/cluster"
	"durability/internal/exec"
	"durability/internal/planstats"
	"durability/internal/replicate"
	"durability/internal/serve"
)

// planServer builds a fully wired daemon with the crossing-statistics
// ledger installed — the configuration main assembles — on the given
// execution backend (nil = in-process local sampling).
func planServer(t *testing.T, backend exec.Executor) *httptest.Server {
	t.Helper()
	registry := buildRegistry(modelParams{
		lambda: 0.5, mu1: 2, mu2: 2,
		u0: 15, premium: 6, claimLam: 0.8, claimLo: 5, claimHi: 10,
		sigma: 1, s0: 1000,
	})
	tel := newTelemetry()
	ledger := planstats.NewLedger()
	tel.bindPlanLedger(ledger, 0.05)
	srv := serve.NewServer(registry, serve.Config{PoolWorkers: 2, Seed: 1, Executor: backend, Tracer: tel.tracer, Ledger: ledger})
	t.Cleanup(srv.Close)
	hub := newStreamHub(srv, registry, 0.15, 50_000_000, 1, backend, 0, tel.engine, 1)
	tel.bind(srv, hub)
	tel.setState(stateReady)
	ts := httptest.NewServer(newMux(srv, hub, tel, &replicaSet{}))
	t.Cleanup(ts.Close)
	return ts
}

// drivePlans sends one deterministic traffic mix: a repeated one-shot
// query (the repeat is a cache hit), a batch ladder, and a standing
// query advanced two ticks.
func drivePlans(t *testing.T, ts *httptest.Server) {
	t.Helper()
	const query = `{"model":"walk","beta":12,"horizon":100,"re":0.2,"seed":7}`
	for i := 0; i < 2; i++ {
		if resp, _ := postQuery(t, ts, query); resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
	}
	if resp, _ := postJSON(t, ts, "/batch", `{"model":"walk","betas":[10,12,14],"horizon":100,"re":0.2,"seed":3}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2,"seed":7}`)
	for i := 0; i < 2; i++ {
		if resp, _ := postJSON(t, ts, "/tick", `{"stream":"walk"}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("tick %d: status %d", i, resp.StatusCode)
		}
	}
}

// GET /plans is a pure function of the driven traffic: two identically
// driven servers must render byte-identical listings (there are no
// duration fields in the payload). The guarantee holds per backend —
// the local and cluster engines sample in different round sizes, so
// their absolute counts differ, but each is deterministic — so the
// pairing is checked on both.
func TestPlansByteIdenticalAcrossServers(t *testing.T) {
	registry := buildRegistry(modelParams{
		lambda: 0.5, mu1: 2, mu2: 2,
		u0: 15, premium: 6, claimLam: 0.8, claimLo: 5, claimHi: 10,
		sigma: 1, s0: 1000,
	})
	addrs, stop, err := cluster.ServeLocal(clusterRegistry(registry), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)

	backends := []struct {
		name string
		open func() exec.Executor
	}{
		{"local", func() exec.Executor { return nil }},
		{"cluster", func() exec.Executor {
			backend := exec.NewCluster(addrs...)
			t.Cleanup(backend.Close)
			return backend
		}},
	}
	for _, bk := range backends {
		t.Run(bk.name, func(t *testing.T) {
			a := planServer(t, bk.open())
			b := planServer(t, bk.open())
			drivePlans(t, a)
			drivePlans(t, b)

			rawA := getBytes(t, a, "/plans")
			rawB := getBytes(t, b, "/plans")
			if !bytes.Equal(rawA, rawB) {
				t.Errorf("identically driven servers rendered different /plans:\nA: %s\nB: %s", rawA, rawB)
			}

			var out plansResponse
			if err := json.Unmarshal(rawA, &out); err != nil {
				t.Fatal(err)
			}
			if len(out.Plans) == 0 {
				t.Fatal("no plans listed after driving queries")
			}
			booked, hits := 0, false
			for _, p := range out.Plans {
				if p.Runs > 0 {
					booked++
					if len(p.Levels) != len(p.Boundaries) {
						t.Errorf("plan %v: %d levels for %d boundaries", p.Key, len(p.Levels), len(p.Boundaries))
					}
					if p.Verdict == verdictUnobserved {
						t.Errorf("plan %v: booked %d runs but verdict is %q", p.Key, p.Runs, p.Verdict)
					}
				}
				if p.CacheHits > 0 {
					hits = true
				}
			}
			if booked == 0 {
				t.Error("no plan accumulated any booked run")
			}
			if !hits {
				t.Error("repeated query registered no cache hit")
			}
		})
	}
}

// The ledger must keep concurrent bookings keyed apart: batch runs book
// under their covering key (Set includes the threshold set), one-shot
// and standing queries under their own shape keys, and a GET /plans
// racing both must always decode cleanly with every entry's levels
// joined against its own plan's boundaries. Run with -race, this is
// also the data-race drill for the booking hot path.
func TestPlansConcurrentTrafficKeepsKeysApart(t *testing.T) {
	ts := planServer(t, nil)
	subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2,"seed":7}`)

	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, 3*rounds)
	post := func(path, body string) error {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return nil
	}
	for i := 0; i < rounds; i++ {
		wg.Add(3)
		go func(i int) {
			defer wg.Done()
			errs <- post("/batch", fmt.Sprintf(`{"model":"walk","betas":[10,12,14],"horizon":100,"re":0.2,"seed":%d}`, 3+i))
		}(i)
		go func() {
			defer wg.Done()
			errs <- post("/tick", `{"stream":"walk"}`)
		}()
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/plans")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out plansResponse
			errs <- json.NewDecoder(resp.Body).Decode(&out)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	var out plansResponse
	if err := json.Unmarshal(getBytes(t, ts, "/plans"), &out); err != nil {
		t.Fatal(err)
	}
	var coverKeys, shapeKeys int
	seen := make(map[planstats.Key]bool)
	for _, p := range out.Plans {
		if seen[p.Key] {
			t.Fatalf("key %v listed twice", p.Key)
		}
		seen[p.Key] = true
		if p.Key.Set != "" {
			coverKeys++
		} else {
			shapeKeys++
		}
		if p.Runs == 0 {
			continue
		}
		// The ledger entry joined by shape: mixed-key bookings would have
		// reset the lineage to a foreign shape and failed this join.
		if len(p.Levels) != len(p.Boundaries) {
			t.Errorf("plan %v: %d levels for %d boundaries", p.Key, len(p.Levels), len(p.Boundaries))
		}
		for i, ls := range p.Levels {
			if ls.Boundary != p.Boundaries[i] {
				t.Errorf("plan %v: level %d boundary %v != plan boundary %v (keys mixed)", p.Key, ls.Level, ls.Boundary, p.Boundaries[i])
			}
		}
	}
	if coverKeys == 0 {
		t.Error("no covering (batch) key booked")
	}
	if shapeKeys == 0 {
		t.Error("no per-shape key booked")
	}
}

// GET /streams carries each subscription's resolved plan: its shape,
// the plan-cache key it lives under, and the crossing summary the
// ledger booked for that key.
func TestStreamsCarryPlanDetail(t *testing.T) {
	ts := planServer(t, nil)
	sub := subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2,"seed":7}`)
	if resp, _ := postJSON(t, ts, "/tick", `{"stream":"walk"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("tick: status %d", resp.StatusCode)
	}

	var out streamStats
	if err := json.Unmarshal(getBytes(t, ts, "/streams"), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Plans) != 1 {
		t.Fatalf("plans %+v, want the one subscription's", out.Plans)
	}
	p := out.Plans[0]
	if p.ID != sub.ID || p.Stream != "walk" {
		t.Errorf("plan attributed to %q/%q, want %q/%q", p.ID, p.Stream, sub.ID, "walk")
	}
	if len(p.Boundaries) == 0 {
		t.Error("no plan boundaries after a tick")
	}
	if p.PlanKey == nil {
		t.Fatal("no plan key after a tick")
	}
	if p.Crossing == nil {
		t.Fatal("no crossing summary after a booked refresh")
	}
	if p.Crossing.Runs == 0 || p.Crossing.Roots == 0 || p.Crossing.Steps == 0 {
		t.Errorf("crossing summary empty: %+v", p.Crossing)
	}
	if !p.Crossing.Observed {
		t.Error("booked runs but no level observation recorded")
	}
}

// A follower's /readyz body is structured JSON carrying per-store
// replication lag; every other lifecycle state keeps the bare-text body
// orchestration scripts already parse.
func TestFollowerReadyzCarriesLag(t *testing.T) {
	tel := newTelemetry()
	tel.lagsFn = func() map[string]replicate.Lag {
		return map[string]replicate.Lag{
			"shard-0001": {AppliedLSN: 40, SourceLSN: 44, Records: 4, Bytes: 2048},
			"shard-0000": {AppliedLSN: 41, SourceLSN: 44, Records: 3, Bytes: 1024, Restored: true},
		}
	}
	tel.setState(stateFollowing)

	rec := httptest.NewRecorder()
	tel.handleReadyz(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("following /readyz status %d, want 503 (a follower is not ready to serve)", rec.Code)
	}
	var body readyzFollower
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("following /readyz is not JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if body.State != stateFollowing {
		t.Errorf("state %q, want %q", body.State, stateFollowing)
	}
	if len(body.Stores) != 2 {
		t.Fatalf("stores %v, want both shards", body.Stores)
	}
	want := readyzLag{Bytes: 1024, Records: 3, AppliedLSN: 41, SourceLSN: 44, Restored: true}
	if got := body.Stores["shard-0000"]; got != want {
		t.Errorf("shard-0000 lag %+v, want %+v", got, want)
	}
	if got := body.Stores["shard-0001"]; got.Bytes != 2048 || got.Restored {
		t.Errorf("shard-0001 lag %+v", got)
	}

	// Map keys render sorted: the body is deterministic across renders.
	rec2 := httptest.NewRecorder()
	tel.handleReadyz(rec2, httptest.NewRequest("GET", "/readyz", nil))
	if !bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
		t.Error("two renders of the follower /readyz body differ")
	}

	// Non-follower states keep the plain-text contract.
	tel.setState(stateReady)
	rec3 := httptest.NewRecorder()
	tel.handleReadyz(rec3, httptest.NewRequest("GET", "/readyz", nil))
	if rec3.Code != http.StatusOK || strings.TrimSpace(rec3.Body.String()) != stateReady {
		t.Errorf("ready /readyz returned %d %q, want 200 %q", rec3.Code, rec3.Body.String(), stateReady)
	}
}
