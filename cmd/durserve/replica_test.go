package main

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"durability/internal/persist"
	"durability/internal/replicate"
	"durability/internal/serve"
)

// replicaStack is a shards-wide durable durserve with the primary side
// of replication mounted — what `durserve -data-dir ... -shards N`
// builds, driven through httptest.
type replicaStack struct {
	ts     *httptest.Server
	hub    *streamHub
	tel    *telemetrySet
	rep    *replicaSet
	hs     *hubStores
	acks   *ackTable
	shards int
}

func durableSharded(t *testing.T, dir string, shards int) *replicaStack {
	t.Helper()
	registry := buildRegistry(modelParams{
		lambda: 0.5, mu1: 2, mu2: 2,
		u0: 15, premium: 6, claimLam: 0.8, claimLo: 5, claimHi: 10,
		sigma: 1, s0: 1000,
	})
	tel := newTelemetry()
	srv := serve.NewServer(registry, serve.Config{PoolWorkers: 2, Seed: 1, Tracer: tel.tracer})
	t.Cleanup(srv.Close)
	hub := newStreamHub(srv, registry, 0.15, 50_000_000, 1, nil, 0, tel.engine, shards)
	tel.bind(srv, hub)
	hs, err := openHubStores(dir, persist.Options{}, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hs.Close() })
	if _, err := hub.attachStores(hs); err != nil {
		t.Fatalf("recovering %s: %v", dir, err)
	}
	acks := newAckTable(tel.replica)
	rep := &replicaSet{}
	rep.enablePrimary(hs, acks)
	tel.setState(stateReady)
	ts := httptest.NewServer(newMux(srv, hub, tel, rep))
	t.Cleanup(ts.Close)
	return &replicaStack{ts: ts, hub: hub, tel: tel, rep: rep, hs: hs, acks: acks, shards: shards}
}

// followerStack is the other half: a warm standby mirroring a primary's
// store set, what `durserve -follow URL -data-dir ...` builds.
type followerStack struct {
	hub *streamHub
	srv *serve.Server
	tel *telemetrySet
	fr  *followerRun
}

func startTestFollower(t *testing.T, primaryURL, dir string, shards int) *followerStack {
	t.Helper()
	registry := buildRegistry(modelParams{
		lambda: 0.5, mu1: 2, mu2: 2,
		u0: 15, premium: 6, claimLam: 0.8, claimLo: 5, claimHi: 10,
		sigma: 1, s0: 1000,
	})
	tel := newTelemetry()
	srv := serve.NewServer(registry, serve.Config{PoolWorkers: 2, Seed: 1, Tracer: tel.tracer})
	t.Cleanup(srv.Close)
	hub := newStreamHub(srv, registry, 0.15, 50_000_000, 1, nil, 0, tel.engine, shards)
	tel.bind(srv, hub)
	tel.setState(stateFollowing)
	fr := startFollower(hub, replicate.HTTPSource{Base: primaryURL}, dir, persist.Options{},
		10*time.Millisecond, 0, func() {})
	t.Cleanup(func() { fr.follower.Close() })
	return &followerStack{hub: hub, srv: srv, tel: tel, fr: fr}
}

// waitCaughtUp polls the follower until every replicated store reports
// zero byte lag behind the primary's manifest.
func waitCaughtUp(t *testing.T, fs *followerStack, names []string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		lags := fs.fr.follower.Lags()
		caught := len(lags) >= len(names)
		for _, name := range names {
			lag, ok := lags[name]
			if !ok || lag.Bytes != 0 || lag.Records != 0 {
				caught = false
			}
		}
		if caught {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: lags %+v", lags)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// tickRaw advances a stream and returns the raw /tick response bytes —
// the full refresh set, whose encoding is part of the deterministic
// contract, so byte comparison is the strongest equality available.
func tickRaw(t *testing.T, ts *httptest.Server, stream string) []byte {
	t.Helper()
	resp, raw := postJSON(t, ts, "/tick", `{"stream":"`+stream+`","steps":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status %d: %s", resp.StatusCode, raw)
	}
	return raw
}

// driveReplicaSequence registers the fixed subscription set every
// failover test drives: three standing queries over two streams,
// spread across shards by the hash ring.
func driveReplicaSubs(t *testing.T, ts *httptest.Server) {
	t.Helper()
	subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`)
	subscribe(t, ts, `{"model":"queue","beta":26,"horizon":500,"re":0.2}`)
	subscribe(t, ts, `{"model":"walk","beta":8,"horizon":100,"re":0.2}`)
}

// TestDurserveShardCountInvariant: a 4-shard daemon serves bit-for-bit
// the tick responses a 1-shard daemon serves — subscription placement
// never leaks into answers, all the way through the HTTP encoding.
func TestDurserveShardCountInvariant(t *testing.T) {
	one := durableSharded(t, t.TempDir(), 1)
	four := durableSharded(t, t.TempDir(), 4)
	driveReplicaSubs(t, one.ts)
	driveReplicaSubs(t, four.ts)
	for i := 0; i < 6; i++ {
		stream := "walk"
		if i%2 == 1 {
			stream = "queue"
		}
		a, b := tickRaw(t, one.ts, stream), tickRaw(t, four.ts, stream)
		if !bytes.Equal(a, b) {
			t.Fatalf("tick %d diverged across shard counts:\n1 shard: %s\n4 shards: %s", i+1, a, b)
		}
	}
}

// TestFinalShutdownCoversAllShards is the SIGTERM regression: the final
// checkpoint must capture every lineage — the hub and each shard — so a
// clean restart replays zero WAL events. Before the fix only a single
// store was checkpointed, stranding shard tails in the WAL.
func TestFinalShutdownCoversAllShards(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	stack := durableSharded(t, dir, shards)
	driveReplicaSubs(t, stack.ts)
	for i := 0; i < 4; i++ {
		tickRaw(t, stack.ts, "walk")
		tickRaw(t, stack.ts, "queue")
	}
	if err := finalShutdown(stack.hub, stack.acks, 0); err != nil {
		t.Fatalf("final shutdown: %v", err)
	}
	stack.ts.Close()
	stack.hub.closeStores()

	for _, name := range storeNames(shards) {
		snaps, err := filepath.Glob(filepath.Join(dir, name, "snap-*"))
		if err != nil || len(snaps) == 0 {
			t.Fatalf("final checkpoint left no snapshot in %s (err %v)", name, err)
		}
	}

	restarted := durableSharded(t, dir, shards)
	if n := restarted.hub.stats().Subscriptions; n != 3 {
		t.Fatalf("restart recovered %d subscriptions, want 3", n)
	}
	// The restart's own attachStores reports the replay count through the
	// recovery path; re-derive it directly to assert the zero.
	registry := buildRegistry(modelParams{
		lambda: 0.5, mu1: 2, mu2: 2,
		u0: 15, premium: 6, claimLam: 0.8, claimLo: 5, claimHi: 10,
		sigma: 1, s0: 1000,
	})
	tel := newTelemetry()
	srv := serve.NewServer(registry, serve.Config{PoolWorkers: 2, Seed: 1, Tracer: tel.tracer})
	defer srv.Close()
	restarted.ts.Close()
	restarted.hub.closeStores()
	hub := newStreamHub(srv, registry, 0.15, 50_000_000, 1, nil, 0, tel.engine, shards)
	tel.bind(srv, hub)
	hs, err := openHubStores(dir, persist.Options{}, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	replayed, err := hub.attachStores(hs)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("clean shutdown still left %d WAL events to replay; the final checkpoint missed a lineage", replayed)
	}
}

// TestWaitForAcks pins the shutdown handshake: a primary that never saw
// a follower exits immediately, one whose follower lags waits out the
// timeout, and one whose follower catches up proceeds as soon as the
// acks cover the final LSNs.
func TestWaitForAcks(t *testing.T) {
	final := map[string]int64{"hub": 5, "shard-0000": 9}

	t.Run("no-follower", func(t *testing.T) {
		at := newAckTable(nil)
		start := time.Now()
		if !waitForAcks(at, final, 5*time.Second) {
			t.Fatal("ack wait failed with no follower")
		}
		if time.Since(start) > time.Second {
			t.Fatal("ack wait blocked with no follower")
		}
	})

	t.Run("lagging-follower-times-out", func(t *testing.T) {
		at := newAckTable(nil)
		at.record(map[string]int64{"hub": 5, "shard-0000": 7})
		if waitForAcks(at, final, 150*time.Millisecond) {
			t.Fatal("ack wait reported covered while shard-0000 lagged")
		}
	})

	t.Run("follower-catches-up", func(t *testing.T) {
		at := newAckTable(nil)
		at.record(map[string]int64{"hub": 5, "shard-0000": 7})
		go func() {
			time.Sleep(120 * time.Millisecond)
			at.record(map[string]int64{"shard-0000": 9})
		}()
		if !waitForAcks(at, final, 10*time.Second) {
			t.Fatal("ack wait missed the catching-up follower")
		}
	})
}

// TestFollowerPromoteServesIdenticalAnswers is the in-process failover
// e2e: a 2-shard primary replicates to a warm follower; the primary
// performs its SIGTERM handover (final checkpoint + follower ack) and
// dies; the promoted follower must serve bit-for-bit the tick responses
// the primary would have kept serving — same handles, same answers.
func TestFollowerPromoteServesIdenticalAnswers(t *testing.T) {
	const shards, preTicks, postTicks = 2, 3, 4
	names := storeNames(shards)

	// Golden: one uninterrupted primary driven through the whole
	// trajectory.
	golden := durableSharded(t, t.TempDir(), shards)
	driveReplicaSubs(t, golden.ts)
	var goldenTicks [][]byte
	for i := 0; i < preTicks+postTicks; i++ {
		goldenTicks = append(goldenTicks, tickRaw(t, golden.ts, "walk"))
		goldenTicks = append(goldenTicks, tickRaw(t, golden.ts, "queue"))
	}

	// The doomed primary and its follower.
	primary := durableSharded(t, t.TempDir(), shards)
	followDir := t.TempDir()
	fs := startTestFollower(t, primary.ts.URL, followDir, shards)

	driveReplicaSubs(t, primary.ts)
	for i := 0; i < preTicks; i++ {
		a := tickRaw(t, primary.ts, "walk")
		b := tickRaw(t, primary.ts, "queue")
		if !bytes.Equal(a, goldenTicks[2*i]) || !bytes.Equal(b, goldenTicks[2*i+1]) {
			t.Fatalf("primary tick %d diverged from golden", i+1)
		}
	}
	waitCaughtUp(t, fs, names)

	// SIGTERM handover: the final checkpoint covers every lineage and the
	// follower acknowledges the final LSNs before the primary lets go.
	if err := finalShutdown(primary.hub, primary.acks, 10*time.Second); err != nil {
		t.Fatalf("final shutdown: %v", err)
	}
	if !primary.acks.everAcked() {
		t.Fatal("follower never acknowledged replication progress")
	}
	if !primary.acks.covered(primary.hs.lastLSNs()) {
		t.Fatal("primary exited before the follower acknowledged the final LSNs")
	}
	waitCaughtUp(t, fs, names)
	primary.ts.Close()
	primary.hub.closeStores()

	// Promote and serve — the same wiring main performs on takeover:
	// the mirrored stores become the replication source for the next
	// generation of followers.
	phs, err := fs.fr.promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	fs.tel.setState(stateReady)
	rep := &replicaSet{}
	rep.enablePrimary(phs, newAckTable(nil))
	ts := httptest.NewServer(newMux(fs.srv, fs.hub, fs.tel, rep))
	defer ts.Close()

	if n := fs.hub.stats().Subscriptions; n != 3 {
		t.Fatalf("promoted follower serves %d subscriptions, want 3", n)
	}
	for i := preTicks; i < preTicks+postTicks; i++ {
		a := tickRaw(t, ts, "walk")
		b := tickRaw(t, ts, "queue")
		if !bytes.Equal(a, goldenTicks[2*i]) {
			t.Fatalf("promoted tick %d (walk) diverged from golden:\n%s\n%s", i+1, a, goldenTicks[2*i])
		}
		if !bytes.Equal(b, goldenTicks[2*i+1]) {
			t.Fatalf("promoted tick %d (queue) diverged from golden:\n%s\n%s", i+1, b, goldenTicks[2*i+1])
		}
	}

	// The promoted follower serves /updates on the pre-crash handle and
	// can itself feed a next-generation follower.
	resp, err := http.Get(ts.URL + "/updates?id=sub-1&since=0&timeoutSec=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("updates on promoted follower: status %d", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/replicate/manifest")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("promoted follower's /replicate/manifest: status %d, want 200", resp2.StatusCode)
	}
}

// TestOpenHubStoresRefusesLayoutDrift: the partitioned layout refuses a
// pre-sharding data directory and a shard-count change — both would
// silently re-home state.
func TestOpenHubStoresRefusesLayoutDrift(t *testing.T) {
	t.Run("legacy-single-store", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001"), []byte("DURWAL1\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := openHubStores(dir, persist.Options{}, 1); err == nil {
			t.Fatal("openHubStores accepted a pre-sharding layout")
		}
	})
	t.Run("shard-count-change", func(t *testing.T) {
		dir := t.TempDir()
		hs, err := openHubStores(dir, persist.Options{}, 2)
		if err != nil {
			t.Fatal(err)
		}
		hs.Close()
		if _, err := openHubStores(dir, persist.Options{}, 3); err == nil {
			t.Fatal("openHubStores reopened a 2-shard directory as 3 shards")
		}
		if _, err := openHubStores(dir, persist.Options{}, 1); err == nil {
			t.Fatal("openHubStores reopened a 2-shard directory as 1 shard")
		}
	})
}

// TestPromoteEndpointStates pins the HTTP surface: POST /promote on a
// non-follower answers 409, /replicate/* without replication enabled
// answers 503.
func TestPromoteEndpointStates(t *testing.T) {
	ts := testServer(t) // in-memory daemon: no stores, no follower
	resp, err := http.Post(ts.URL+"/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /promote on non-follower: status %d, want 409", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/replicate/manifest")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /replicate/manifest without stores: status %d, want 503", resp2.StatusCode)
	}
}

// manifestOnlySource serves a canned manifest after a configurable
// number of failures — the follower's startup-discovery cases.
type manifestOnlySource struct {
	names    []string
	failures int
	calls    int
}

func (s *manifestOnlySource) Manifest(ctx context.Context) (replicate.Manifest, error) {
	s.calls++
	if s.calls <= s.failures {
		return replicate.Manifest{}, errors.New("primary not up yet")
	}
	var m replicate.Manifest
	for _, n := range s.names {
		m.Stores = append(m.Stores, replicate.StoreManifest{Name: n})
	}
	return m, nil
}

func (s *manifestOnlySource) Fetch(ctx context.Context, store, file string, offset, max int64) ([]byte, error) {
	return nil, errors.New("manifest-only source")
}

// TestDiscoverShardCount pins the follower's layout adoption: the shard
// count comes from the primary's manifest (retrying through startup
// races), and a manifest without the hub+shard layout is refused rather
// than guessed at.
func TestDiscoverShardCount(t *testing.T) {
	n, err := discoverShardCount(&manifestOnlySource{names: storeNames(4)}, time.Second)
	if err != nil || n != 4 {
		t.Fatalf("discoverShardCount(hub+4 shards) = %d, %v; want 4, nil", n, err)
	}
	n, err = discoverShardCount(&manifestOnlySource{names: storeNames(1), failures: 2}, 5*time.Second)
	if err != nil || n != 1 {
		t.Fatalf("discoverShardCount with startup races = %d, %v; want 1, nil", n, err)
	}
	if _, err := discoverShardCount(&manifestOnlySource{names: []string{"hub"}}, time.Second); err == nil {
		t.Fatal("discoverShardCount accepted a manifest with no shard stores")
	}
	if _, err := discoverShardCount(&manifestOnlySource{failures: 1 << 30}, 300*time.Millisecond); err == nil {
		t.Fatal("discoverShardCount returned without a reachable primary")
	}
}
