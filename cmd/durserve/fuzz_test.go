package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"durability/internal/serve"
)

// fuzzTS lazily builds one server shared by every fuzz iteration: the
// targets only decode and validate bodies (plus small bounded runs for
// the rare valid input), so per-iteration servers would be pure overhead.
// Budgets and the horizon cap keep a fuzz-crafted "valid" body from
// turning into an expensive simulation.
var fuzzTS = sync.OnceValue(func() *httptest.Server {
	registry := buildRegistry(modelParams{
		lambda: 0.5, mu1: 2, mu2: 2,
		u0: 15, premium: 6, claimLam: 0.8, claimLo: 5, claimHi: 10,
		sigma: 1, s0: 1000,
	})
	srv := serve.NewServer(registry, serve.Config{
		PoolWorkers:   2,
		QueueDepth:    64,
		Seed:          1,
		MaxBudget:     50_000,
		DefaultRelErr: 0.5,
		MaxHorizon:    2_000,
	})
	hub := newStreamHub(srv, registry, 0.5, 50_000, 1, nil, 0, nil, 1)
	return httptest.NewServer(newMux(srv, hub, newTelemetry(), &replicaSet{}))
})

// fuzzEndpoint drives one decode surface: whatever the body, the endpoint
// must answer — never panic, never 5xx — and a body that is not valid
// JSON must always be a 400. The seeded corpus (valid requests, typos,
// truncations, type confusion, trailing garbage) runs as part of the
// normal `go test ./...`; `go test -fuzz` explores from there.
func fuzzEndpoint(f *testing.F, path string, seeds []string) {
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		ts := fuzzTS()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatalf("transport error (handler crashed?): %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("body %q: status %d — malformed or unlucky bodies must never 5xx", body, resp.StatusCode)
		}
		if !json.Valid([]byte(body)) && resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q is not JSON yet got status %d, want 400", body, resp.StatusCode)
		}
	})
}

func FuzzBatchEndpoint(f *testing.F) {
	fuzzEndpoint(f, "/batch", []string{
		`{"model":"walk","betas":[6,8],"horizon":50,"re":0.5}`,
		`{"model":"walk","betas":[],"horizon":50}`,
		`{"model":"walk","betas":[-1e308],"horizon":50}`,
		`{"model":"walk","betas":[1e308,1e-308],"horizon":50}`,
		`{"model":"walk","betas":[6],"horizon":99999999}`,
		`{"model":"walk","betas":"6","horizon":50}`,
		`{"model":"nope","betas":[6],"horizon":50}`,
		`{"model":"walk","betas":[6],"horizon":50}{"again":true}`,
		`{"model":"walk","betas":[6],"horizon":50,"unknown":1}`,
		`{not json`,
		``,
		`null`,
		`[]`,
		`"string"`,
	})
}

func FuzzQueryEndpoint(f *testing.F) {
	fuzzEndpoint(f, "/query", []string{
		`{"model":"walk","beta":6,"horizon":50,"re":0.5}`,
		`{"model":"walk","beta":-6,"horizon":50}`,
		`{"model":"walk","beta":6,"horizon":-50}`,
		`{"model":"walk","beta":6,"horizon":50,"method":"bogus"}`,
		`{"model":"walk","beta":1e308,"horizon":50,"budget":100}`,
		`{"model":"queue","observer":"nope","beta":26,"horizon":50}`,
		`{"model":"walk","beta":6,"horizon":50}trailing`,
		`{"beta":{},"horizon":[]}`,
		`{not json`,
		``,
		`null`,
	})
}

func FuzzSubscribeEndpoint(f *testing.F) {
	fuzzEndpoint(f, "/subscribe", []string{
		`{"model":"walk","beta":15,"horizon":50,"re":0.5}`,
		`{"model":"walk","beta":0,"horizon":50}`,
		`{"model":"walk","beta":15,"horizon":50,"drift":-2}`,
		`{"model":"walk","beta":15,"horizon":50,"maxAge":-1}`,
		`{"stream":123}`,
		`{"model":"nope","beta":15,"horizon":50}`,
		`{"model":"walk","beta":15}`,
		`{not json`,
		``,
		`true`,
	})
}
