package main

import (
	"durability"
	"durability/internal/cluster"
	"durability/internal/serve"
	"durability/internal/stochastic"
)

// modelParams carries the flag-configurable parameters of the built-in
// models, mirroring cmd/durquery.
type modelParams struct {
	lambda, mu1, mu2                        float64
	u0, premium, claimLam, claimLo, claimHi float64
	start, drift, sigma, s0                 float64
}

// clusterRegistry adapts the serving registry for the shard-worker rpc
// service: the factory shapes are identical, only the named types
// differ, so a worker fleet started with the same model flags simulates
// exactly what the HTTP daemon would.
func clusterRegistry(reg serve.Registry) cluster.Registry {
	out := make(cluster.Registry, len(reg))
	for name, factory := range reg {
		out[name] = cluster.ModelFactory(factory)
	}
	return out
}

// buildRegistry assembles the serving registry from the built-in models,
// following the registry idiom of internal/cluster: models are rebuilt
// locally from factories, only names appear in requests. Every model
// exposes a "value" observer (the canonical quantity its paper queries
// threshold on); the tandem queue additionally exposes both stages.
func buildRegistry(p modelParams) serve.Registry {
	return serve.Registry{
		"queue": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			proc := durability.NewTandemQueue(p.lambda, p.mu1, p.mu2)
			return proc, map[string]stochastic.Observer{
				"value": stochastic.Queue2Len,
				"q1":    stochastic.Queue1Len,
				"q2":    stochastic.Queue2Len,
			}, nil
		},
		"cpp": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			proc := durability.NewCompoundPoisson(p.u0, p.premium, p.claimLam, p.claimLo, p.claimHi)
			return proc, map[string]stochastic.Observer{"value": stochastic.ScalarValue}, nil
		},
		"walk": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			proc := &durability.RandomWalk{Start: p.start, Drift: p.drift, Sigma: p.sigma}
			return proc, map[string]stochastic.Observer{"value": stochastic.ScalarValue}, nil
		},
		"gbm": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			proc := &durability.GBM{S0: p.s0, Mu: p.drift, Sigma: p.sigma}
			return proc, map[string]stochastic.Observer{"value": stochastic.ScalarValue}, nil
		},
	}
}
