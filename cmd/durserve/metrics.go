package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"durability/internal/planstats"
	"durability/internal/replicate"
	"durability/internal/serve"
	"durability/internal/telemetry"
)

// Readiness states, in lifecycle order. The daemon starts serving its
// listener immediately but gates the serving endpoints until recovery
// finishes, so a restarted instance is reachable (probes see progress)
// without answering queries from a half-replayed state.
const (
	stateStarting  = "starting"
	stateReplaying = "replaying-wal"
	stateFollowing = "following"
	stateReady     = "ready"
)

// telemetrySet bundles the daemon's observability: the metric registry
// behind GET /metrics, the lifecycle-span tracer, the standing-query
// engine metrics, the per-worker shard attribution and the readiness
// state machine. Everything in here is telemetry — none of it is
// reachable from checkpoints, answers or any other deterministic state.
type telemetrySet struct {
	registry *telemetry.Registry
	tracer   *telemetry.Tracer
	engine   *telemetry.EngineMetrics
	workers  *telemetry.WorkerMetrics
	replica  *telemetry.ReplicaMetrics

	state atomic.Value // readiness: starting → replaying-wal → ready

	recoveries      *telemetry.Counter
	walReplayed     *telemetry.Counter
	recoverySeconds *telemetry.Histogram

	// Plan-quality introspection sources (see plans.go): the ledger and
	// threshold installed by bindPlanLedger, the cache installed by bind.
	// All written once during wiring, before the listener serves.
	ledger         *planstats.Ledger
	driftThreshold float64
	planCache      *serve.PlanCache

	// lagsFn, installed by bindFollowerMetrics, feeds the follower's
	// structured /readyz body alongside the lag gauges.
	lagsFn func() map[string]replicate.Lag
}

// lifecycleStages is every span stage the serving path can book.
// newTelemetry pre-creates all of them so the exposed metric set is a
// function of the build, not of which code paths traffic happened to
// exercise — the golden identical-metric-set test depends on this.
var lifecycleStages = []string{
	telemetry.StageAdmission,
	telemetry.StagePlanCache,
	telemetry.StagePlanSearch,
	telemetry.StageExec,
	telemetry.StageMerge,
	telemetry.StageAnswer,
	telemetry.StageQuery,
	telemetry.StageBatch,
	telemetry.StageRefresh,
}

func newTelemetry() *telemetrySet {
	reg := telemetry.NewRegistry()
	t := &telemetrySet{registry: reg}
	t.state.Store(stateStarting)

	// The tracer's stage histograms live in the registry, so each stage
	// surfaces as one labeled series of a single family.
	t.tracer = telemetry.NewTracer(func(stage string) *telemetry.Histogram {
		return reg.Histogram("durserve_stage_duration_seconds",
			"Wall time per query-lifecycle stage span.",
			telemetry.DurationBuckets, telemetry.Label{Name: "stage", Value: stage})
	})
	for _, stage := range lifecycleStages {
		agg := t.tracer.Stage(stage)
		l := telemetry.Label{Name: "stage", Value: stage}
		reg.CounterFunc("durserve_stage_spans_total",
			"Spans ended per query-lifecycle stage.", agg.Spans, l)
		reg.CounterFunc("durserve_stage_steps_total",
			"Simulator invocations attributed per query-lifecycle stage; plan-search sums to the server's searchSteps, exec to its sampleSteps.",
			agg.Steps, l)
	}

	t.engine = telemetry.NewEngineMetrics()
	// Refreshes book StageRefresh spans on the same tracer, so the stage
	// family covers standing-query maintenance, not just one-shot serving.
	t.engine.Trace = t.tracer
	reg.RegisterHistogram("durserve_tick_duration_seconds",
		"Wall time per standing-query engine update.", t.engine.TickSeconds)
	reg.RegisterHistogram("durserve_refresh_duration_seconds",
		"Wall time per subscription refresh.", t.engine.RefreshSeconds)
	reg.RegisterHistogram("durserve_tick_refreshed_subscriptions",
		"Subscriptions refreshed per engine update.", t.engine.RefreshedPerTick)
	reg.RegisterHistogram("durserve_tick_topup_roots",
		"Fresh root paths simulated per engine update.", t.engine.TopUpRootsPerTick)
	reg.CounterFunc("durserve_stream_revivals_total",
		"Dormant root batches revived by the live state drifting back within tolerance.",
		t.engine.Revivals)

	// Per-worker series appear lazily as the cluster backend first calls
	// each address; a local (or in-memory) daemon exposes none.
	t.workers = telemetry.NewWorkerMetrics(func(addr string, ws *telemetry.WorkerStats) {
		l := telemetry.Label{Name: "worker", Value: addr}
		reg.CounterFunc("durserve_worker_calls_total",
			"Shard chunk calls dispatched per worker.", ws.Calls, l)
		reg.CounterFunc("durserve_worker_errors_total",
			"Shard chunk calls that failed per worker.", ws.Errors, l)
		reg.CounterFunc("durserve_worker_steps_total",
			"Simulator invocations performed per worker.", ws.Steps, l)
		reg.CounterFunc("durserve_worker_roots_total",
			"Root paths simulated per worker.", ws.Roots, l)
		reg.CounterFunc("durserve_worker_busy_nanoseconds_total",
			"Worker-reported cumulative simulation time per worker.", ws.WorkerNanos, l)
		reg.RegisterHistogram("durserve_worker_chunk_seconds",
			"Coordinator-observed chunk round-trip time per worker.", ws.Chunk, l)
		reg.RegisterHistogram("durserve_worker_sim_seconds",
			"Worker-reported per-chunk simulation time.", ws.Remote, l)
	})

	t.replica = &telemetry.ReplicaMetrics{}
	reg.CounterFunc("durserve_promotions_total",
		"Follower promotions performed (lease expiry or POST /promote).", t.replica.Promotions)
	reg.CounterFunc("durserve_lease_expiries_total",
		"Primary-lease expiries observed while following.", t.replica.LeaseExpiries)
	reg.CounterFunc("durserve_follower_ack_rounds_total",
		"Replication acknowledgement rounds received from a follower.", t.replica.AckRounds)

	t.recoveries = reg.Counter("durserve_recoveries_total",
		"Recoveries performed from the checkpoint + write-ahead log store.")
	t.walReplayed = reg.Counter("durserve_wal_records_replayed_total",
		"Write-ahead log records replayed during recovery.")
	t.recoverySeconds = reg.Histogram("durserve_recovery_duration_seconds",
		"Wall time per recovery (checkpoint restore + WAL replay).",
		telemetry.DurationBuckets)
	reg.GaugeFunc("durserve_ready",
		"1 once recovery has finished and the serving endpoints accept requests.",
		func() float64 {
			if t.readyState() == stateReady {
				return 1
			}
			return 0
		})
	return t
}

// bind exposes the server's and hub's own counters as metric series.
// These are function-backed reads of the same atomics /stats reports —
// no double bookkeeping, and /metrics can never drift from /stats.
func (t *telemetrySet) bind(srv *serve.Server, hub *streamHub) {
	t.planCache = srv.Runner().Cache
	reg := t.registry
	counter := func(name, help string, fn func(serve.Stats) int64) {
		reg.CounterFunc(name, help, func() int64 { return fn(srv.Stats()) })
	}
	gauge := func(name, help string, fn func(serve.Stats) float64) {
		reg.GaugeFunc(name, help, func() float64 { return fn(srv.Stats()) })
	}
	counter("durserve_queries_served_total", "Queries answered successfully.",
		func(s serve.Stats) int64 { return s.QueriesServed })
	counter("durserve_query_errors_total", "Queries that failed.",
		func(s serve.Stats) int64 { return s.Errors })
	counter("durserve_queries_rejected_total", "Queries shed by admission control or expired in queue.",
		func(s serve.Stats) int64 { return s.Rejected })
	gauge("durserve_inflight_queries", "Queries currently executing.",
		func(s serve.Stats) float64 { return float64(s.InFlight) })
	gauge("durserve_queue_depth", "Queries waiting in the admission queue.",
		func(s serve.Stats) float64 { return float64(s.QueueDepth) })
	counter("durserve_batch_runs_total", "Shared splitting runs answering batches.",
		func(s serve.Stats) int64 { return s.BatchRuns })
	counter("durserve_batch_callers_total", "Batch requests answered.",
		func(s serve.Stats) int64 { return s.BatchCallers })
	counter("durserve_batch_coalesced_total", "Batch requests that shared another request's run.",
		func(s serve.Stats) int64 { return s.BatchCoalesced })
	counter("durserve_batch_thresholds_total", "Thresholds answered across all batch runs.",
		func(s serve.Stats) int64 { return s.BatchThresholds })
	counter("durserve_sample_steps_total", "Simulator invocations spent sampling.",
		func(s serve.Stats) int64 { return s.SampleSteps })
	counter("durserve_search_steps_total", "Simulator invocations spent on level-plan searches.",
		func(s serve.Stats) int64 { return s.SearchSteps })
	gauge("durserve_plan_cache_entries", "Completed plans resident in the cache.",
		func(s serve.Stats) float64 { return float64(s.PlanEntries) })
	counter("durserve_plan_cache_hits_total", "Plan resolutions served from the cache.",
		func(s serve.Stats) int64 { return s.PlanHits })
	counter("durserve_plan_cache_misses_total", "Plan resolutions that paid a level search.",
		func(s serve.Stats) int64 { return s.PlanMisses })
	counter("durserve_plan_cache_evictions_total", "Plans evicted by capacity.",
		func(s serve.Stats) int64 { return s.PlanEvictions })
	counter("durserve_plan_cache_invalidated_total", "Plans dropped by invalidation.",
		func(s serve.Stats) int64 { return s.PlanInvalidated })

	engineStats := func(fn func(streamStats) int64) func() int64 {
		return func() int64 { return fn(hub.stats()) }
	}
	reg.GaugeFunc("durserve_streams", "Live states the standing-query engine maintains.",
		func() float64 { return float64(hub.stats().Engine.Streams) })
	reg.GaugeFunc("durserve_subscriptions", "Standing queries currently registered.",
		func() float64 { return float64(hub.stats().Subscriptions) })
	reg.CounterFunc("durserve_stream_ticks_total", "State updates the engine processed.",
		engineStats(func(s streamStats) int64 { return s.Engine.Ticks }))
	reg.CounterFunc("durserve_stream_refreshes_total", "Subscription refreshes performed.",
		engineStats(func(s streamStats) int64 { return s.Engine.Refreshes }))
	reg.CounterFunc("durserve_stream_fresh_roots_total", "Root trees simulated by refresh top-ups.",
		engineStats(func(s streamStats) int64 { return s.Engine.FreshRoots }))
	reg.CounterFunc("durserve_stream_fresh_steps_total", "Simulator invocations spent on fresh roots.",
		engineStats(func(s streamStats) int64 { return s.Engine.FreshSteps }))
	reg.CounterFunc("durserve_stream_search_steps_total", "Simulator invocations refreshes spent on plan searches.",
		engineStats(func(s streamStats) int64 { return s.Engine.SearchSteps }))
	reg.CounterFunc("durserve_stream_replans_total", "Refreshes that crossed a drift bucket and re-resolved their plan.",
		engineStats(func(s streamStats) int64 { return s.Engine.Replans }))
	reg.CounterFunc("durserve_stream_dropped_roots_total", "Root trees discarded by drift, age or replanning.",
		engineStats(func(s streamStats) int64 { return s.Engine.DroppedRoots }))
}

func (t *telemetrySet) readyState() string {
	return t.state.Load().(string)
}

func (t *telemetrySet) setState(s string) {
	t.state.Store(s)
}

// observeRecovery books one completed recovery.
func (t *telemetrySet) observeRecovery(replayed int64, d time.Duration) {
	t.recoveries.Inc()
	t.walReplayed.Add(replayed)
	t.recoverySeconds.ObserveDuration(d)
}

// readyzLag is one store's replication position in the follower's
// structured /readyz body.
type readyzLag struct {
	Bytes      int64 `json:"bytes"`      // manifest WAL bytes not yet applied
	Records    int64 `json:"records"`    // records behind the primary's LSN (0 = unknown)
	AppliedLSN int64 `json:"appliedLSN"` // last LSN applied locally
	SourceLSN  int64 `json:"sourceLSN"`  // primary's last LSN (0 = unknown)
	Restored   bool  `json:"restored"`   // lineage restored into the warm engine
}

// readyzFollower is the follower-state /readyz body: the state plus the
// per-store replication lag, so orchestration can judge how warm a
// standby is from the same probe it already polls. Stores is a map, and
// encoding/json sorts map keys, so the body is deterministic.
type readyzFollower struct {
	State  string               `json:"state"`
	Stores map[string]readyzLag `json:"stores"`
}

// handleReadyz reports the readiness state: 200 once recovery finished,
// 503 with the current state while starting or replaying the WAL — the
// split from /healthz lets orchestrators keep a recovering instance
// alive (live) without routing traffic to it (not ready). A follower
// answers structured JSON carrying its per-store replication lag; every
// other state keeps the bare-text body.
func (t *telemetrySet) handleReadyz(w http.ResponseWriter, r *http.Request) {
	state := t.readyState()
	status := http.StatusServiceUnavailable
	if state == stateReady {
		status = http.StatusOK
	}
	if state == stateFollowing && t.lagsFn != nil {
		lags := t.lagsFn()
		body := readyzFollower{State: state, Stores: make(map[string]readyzLag, len(lags))}
		//durlint:ignore maporder keyed map copy; JSON encoding sorts the keys
		for name, l := range lags {
			body.Stores[name] = readyzLag{
				Bytes:      l.Bytes,
				Records:    l.Records,
				AppliedLSN: l.AppliedLSN,
				SourceLSN:  l.SourceLSN,
				Restored:   l.Restored,
			}
		}
		writeJSON(w, status, body)
		return
	}
	w.WriteHeader(status)
	fmt.Fprintln(w, state)
}

// gate 503s the serving endpoints until the daemon is ready; the health
// and observability endpoints always pass, so probes and scrapers can
// watch recovery progress instead of being locked out by it.
func (t *telemetrySet) gate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/readyz", "/metrics", "/promote", "/plans":
			next.ServeHTTP(w, r)
			return
		}
		// A follower serves the replication feed of its own mirror (for
		// chained followers) and must accept /promote before it is ready.
		if strings.HasPrefix(r.URL.Path, "/replicate/") {
			next.ServeHTTP(w, r)
			return
		}
		if state := t.readyState(); state != stateReady {
			httpError(w, http.StatusServiceUnavailable, fmt.Errorf("not ready: %s", state))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// opsMux is the operations listener (-ops-addr): metrics, health,
// readiness and the pprof profiling surface, kept off the serving
// address so profiling endpoints are never exposed where queries are.
func (t *telemetrySet) opsMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", t.registry.Handler())
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /readyz", t.handleReadyz)
	mux.HandleFunc("GET /plans", t.handlePlans)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}
