package main

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"durability/internal/exec"
	"durability/internal/mc"
	"durability/internal/planstats"
	"durability/internal/rng"
	"durability/internal/serve"
	"durability/internal/stochastic"
	"durability/internal/stream"
	"durability/internal/telemetry"
)

// streamHub fronts the standing-query engine of internal/stream for the
// HTTP transport: it owns one live state per model (advanced by /tick or
// the -tick auto-ticker), the subscription table for /subscribe and the
// long-poll plumbing for /updates. The engine shares the query server's
// runner, so standing queries amortize level searches through the same
// plan cache as one-shot /query requests.
type streamHub struct {
	engine   *stream.ShardedEngine
	runner   *serve.Runner
	registry serve.Registry

	defaultRelErr float64
	maxBudget     int64
	seed          uint64

	// Durable serving state (-data-dir): the hub's own checkpoint+WAL
	// store (each engine shard journals to its own store — see
	// hubStores), the checkpoint serializer, and the hub's last-applied
	// log sequence number (each shard and each feed track theirs
	// separately).
	stores *hubStores
	ckptMu sync.Mutex

	// down closes when the server begins shutting down, resolving every
	// in-flight long poll with 204 instead of dropping it mid-wait.
	down     chan struct{}
	downOnce sync.Once

	mu       sync.Mutex
	lsn      int64
	nextID   int64
	subs     map[string]*stream.Subscription
	binds    map[string]uint64 // recovery/follow only: handle binds awaiting resolveBinds
	feeds    map[string]*feed
	tickErrs map[string]int64 // auto-tick failures per stream
}

// feed is the live state the hub advances for one stream: the model's own
// dynamics driven by a dedicated random source. Real deployments publish
// externally observed states; the hub's feed makes the demo (and tests)
// self-contained. mu serializes ticks on this feed (the auto-ticker and
// concurrent POST /tick requests both advance it).
type feed struct {
	model     string
	proc      stochastic.Process
	observers map[string]stochastic.Observer

	mu    sync.Mutex
	state stochastic.State
	src   *rng.Source
	steps int
	lsn   int64 // last journaled mutation applied to this feed
}

func newStreamHub(srv *serve.Server, registry serve.Registry, defaultRelErr float64, maxBudget int64, seed uint64, backend exec.Executor, topUpRoots int, metrics *telemetry.EngineMetrics, shards int) *streamHub {
	if defaultRelErr <= 0 {
		defaultRelErr = 0.10
	}
	if maxBudget <= 0 {
		maxBudget = 200_000_000
	}
	if seed == 0 {
		seed = 1
	}
	if shards < 1 {
		shards = 1
	}
	return &streamHub{
		engine:        stream.NewSharded(stream.Config{Runner: srv.Runner(), Exec: backend, TopUpRoots: topUpRoots, Metrics: metrics}, shards, 0),
		runner:        srv.Runner(),
		registry:      registry,
		defaultRelErr: defaultRelErr,
		maxBudget:     maxBudget,
		seed:          seed,
		down:          make(chan struct{}),
		subs:          make(map[string]*stream.Subscription),
		binds:         make(map[string]uint64),
		feeds:         make(map[string]*feed),
		tickErrs:      make(map[string]int64),
	}
}

// subscribeRequest registers a standing query over HTTP.
type subscribeRequest struct {
	Stream   string  `json:"stream,omitempty"` // live state name; defaults to the model name
	Model    string  `json:"model"`
	Observer string  `json:"observer,omitempty"` // default "value"
	Beta     float64 `json:"beta"`
	Horizon  int     `json:"horizon"`

	RelErr   float64 `json:"re,omitempty"`       // quality target (default: server's)
	Budget   int64   `json:"budget,omitempty"`   // root-pool step budget (capped by the server)
	Ratio    int     `json:"ratio,omitempty"`    // splitting ratio (default 3)
	Seed     uint64  `json:"seed,omitempty"`     // 0 selects the server seed
	DriftTol float64 `json:"driftTol,omitempty"` // survival tolerance (0 = engine default)
	MaxAge   int64   `json:"maxAge,omitempty"`   // batch age cap in ticks (0 = engine default)
}

// answerJSON is the wire form of a maintained answer.
type answerJSON struct {
	Tick      int64   `json:"tick"`
	P         float64 `json:"p"`
	StdErr    float64 `json:"stderr"`
	RelErr    float64 `json:"relErr"`
	CILo      float64 `json:"ciLo"`
	CIHi      float64 `json:"ciHi"`
	Satisfied bool    `json:"satisfied,omitempty"`

	PoolPaths int64 `json:"poolPaths"`
	PoolSteps int64 `json:"poolSteps"`

	FreshRoots    int64 `json:"freshRoots"`
	FreshSteps    int64 `json:"freshSteps"`
	SearchSteps   int64 `json:"searchSteps"`
	SurvivedRoots int64 `json:"survivedRoots"`
	DroppedRoots  int64 `json:"droppedRoots"`
	Replanned     bool  `json:"replanned,omitempty"`
	PlanCached    bool  `json:"planCached,omitempty"`
	Capped        bool  `json:"capped,omitempty"`
}

// finiteOr replaces non-finite values (an empty or hitless pool has
// infinite variance and relative error) with a JSON-encodable fallback:
// encoding/json rejects ±Inf and NaN outright, which would otherwise
// truncate a 200 response mid-body.
func finiteOr(v, fallback float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fallback
	}
	return v
}

func toAnswerJSON(a stream.Answer) answerJSON {
	ci := a.Result.CI(0.95)
	return answerJSON{
		Tick: a.Tick,
		P:    a.Result.P,
		// -1 marks "no estimate yet" (zero hits in the pool); the CI
		// collapses onto the answer's probability range.
		StdErr:        finiteOr(a.Result.StdErr(), -1),
		RelErr:        finiteOr(a.Result.RelErr(), -1),
		CILo:          math.Max(finiteOr(ci.Lo, 0), 0),
		CIHi:          math.Min(finiteOr(ci.Hi, 1), 1),
		Satisfied:     a.Satisfied,
		PoolPaths:     a.Result.Paths,
		PoolSteps:     a.Result.Steps,
		FreshRoots:    a.FreshRoots,
		FreshSteps:    a.FreshSteps,
		SearchSteps:   a.SearchSteps,
		SurvivedRoots: a.SurvivedRoots,
		DroppedRoots:  a.DroppedRoots,
		Replanned:     a.Replanned,
		PlanCached:    a.PlanCached,
		Capped:        a.Capped,
	}
}

// subscribeResponse answers POST /subscribe. ID is the hub handle for
// /updates and DELETE /subscribe; SubID is the engine's subscription ID,
// the value /tick refreshes report, so clients can correlate the two.
type subscribeResponse struct {
	ID     string     `json:"id"`
	SubID  uint64     `json:"subId"`
	Stream string     `json:"stream"`
	Answer answerJSON `json:"answer"`
}

// ensureFeed lazily creates the live state for a stream name backed by
// the given model, registering it with the engine at the model's initial
// state. A stream, once created, is bound to its model: subscribing to
// it under a different model name is an error, not a silent reuse.
func (h *streamHub) ensureFeed(streamName, model string) (*feed, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if f, ok := h.feeds[streamName]; ok {
		if f.model != model {
			return nil, fmt.Errorf("stream %q serves model %q, not %q", streamName, f.model, model)
		}
		return f, nil
	}
	factory, ok := h.registry[model]
	if !ok {
		return nil, fmt.Errorf("unknown model %q", model)
	}
	proc, observers, err := factory()
	if err != nil {
		return nil, fmt.Errorf("%w: building model %q: %v", serve.ErrInternal, model, err)
	}
	state := proc.Initial()
	// The model name rides along as the stream's registry identity, so a
	// distributed execution backend can rebuild the model on its workers
	// (and the persist layer can rebuild it on recovery).
	if err := h.engine.RegisterModel(streamName, model, proc, state); err != nil {
		return nil, err
	}
	lsn, err := h.append(hubFeedCreate{Stream: streamName, Model: model})
	if err != nil {
		return nil, fmt.Errorf("%w: journaling feed %q: %v", serve.ErrInternal, streamName, err)
	}
	f := &feed{
		model: model, proc: proc, observers: observers,
		state: state, src: feedSource(h.seed, streamName), lsn: lsn,
	}
	h.feeds[streamName] = f
	return f, nil
}

// feedSource derives the random source driving one stream's live feed.
// The substream index mixes the stream name into a reserved high range
// (1<<60 and up), so distinct feeds never share a sequence and no feed
// collides with subscription root substreams, whose indices count up
// from zero (or with the resampling streams parked at 1<<62 and 1<<63).
func feedSource(seed uint64, streamName string) *rng.Source {
	h := fnv.New64a()
	h.Write([]byte(streamName))
	return rng.NewStream(seed, 1<<60|h.Sum64()>>4)
}

// subscribe registers the standing query and returns its handle plus the
// initial answer.
func (h *streamHub) subscribe(ctx context.Context, req subscribeRequest) (subscribeResponse, error) {
	streamName := req.Stream
	if streamName == "" {
		streamName = req.Model
	}
	f, err := h.ensureFeed(streamName, req.Model)
	if err != nil {
		return subscribeResponse{}, err
	}
	obsName := req.Observer
	if obsName == "" {
		obsName = "value"
	}
	obs, ok := f.observers[obsName]
	if !ok {
		return subscribeResponse{}, fmt.Errorf("model %q has no observer %q", req.Model, obsName)
	}

	seed := req.Seed
	if seed == 0 {
		seed = h.seed
	}
	var stop mc.Any
	if req.RelErr > 0 {
		stop = append(stop, mc.RETarget{Target: req.RelErr})
	}
	budget := h.maxBudget
	if req.Budget > 0 && req.Budget < budget {
		budget = req.Budget
	}
	if len(stop) == 0 && req.Budget <= 0 {
		stop = append(stop, mc.RETarget{Target: h.defaultRelErr})
	}
	stop = append(stop, mc.Budget{Steps: budget})

	sub, err := h.engine.Subscribe(ctx, stream.SubSpec{
		Stream:     streamName,
		Obs:        obs,
		ObserverID: obsName,
		Beta:       req.Beta,
		Horizon:    req.Horizon,
		Ratio:      req.Ratio,
		Seed:       seed,
		DriftTol:   req.DriftTol,
		MaxAge:     req.MaxAge,
		Stop:       stop,
	})
	if err != nil {
		return subscribeResponse{}, err
	}
	h.mu.Lock()
	h.nextID++
	id := "sub-" + strconv.FormatInt(h.nextID, 10)
	if lsn, jerr := h.append(hubBind{Handle: id, SubID: sub.ID()}); jerr != nil {
		h.mu.Unlock()
		sub.Close()
		return subscribeResponse{}, fmt.Errorf("%w: journaling subscription: %v", serve.ErrInternal, jerr)
	} else if lsn > h.lsn {
		h.lsn = lsn
	}
	h.subs[id] = sub
	h.mu.Unlock()
	return subscribeResponse{ID: id, SubID: sub.ID(), Stream: streamName, Answer: toAnswerJSON(sub.Answer())}, nil
}

// lookup finds a subscription by its handle.
func (h *streamHub) lookup(id string) (*stream.Subscription, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sub, ok := h.subs[id]
	return sub, ok
}

// unsubscribe closes and forgets a subscription. The engine journals the
// close itself (inside sub.Close), and only then does the hub journal
// the handle's removal: a crash between the two records recovers a
// *closed* subscription with a dangling handle — /updates answers it
// with 410 Gone, consistent from the client's view — never a live,
// unaddressable subscription burning refresh cost forever.
func (h *streamHub) unsubscribe(id string) bool {
	h.mu.Lock()
	sub, ok := h.subs[id]
	delete(h.subs, id)
	h.mu.Unlock()
	if !ok {
		return false
	}
	sub.Close()
	h.mu.Lock()
	if lsn, err := h.append(hubUnbind{Handle: id}); err == nil && lsn > h.lsn {
		h.lsn = lsn
	}
	h.mu.Unlock()
	return true
}

// tickRequest advances a live state.
type tickRequest struct {
	Stream string `json:"stream"`
	Steps  int    `json:"steps,omitempty"` // default 1
}

// refreshJSON is the wire form of one subscription's refresh outcome.
type refreshJSON struct {
	SubID  uint64     `json:"subId"`
	Answer answerJSON `json:"answer"`
	Error  string     `json:"error,omitempty"`
}

// tickResponse answers POST /tick: the stream's new tick and the last
// step's refresh outcomes.
type tickResponse struct {
	Stream    string        `json:"stream"`
	Tick      int64         `json:"tick"`
	Refreshes []refreshJSON `json:"refreshes"`
}

// tick advances the named live state by stepping its model's dynamics,
// publishing each new state to the engine (which refreshes every
// subscription incrementally).
func (h *streamHub) tick(ctx context.Context, req tickRequest) (tickResponse, error) {
	steps := req.Steps
	if steps <= 0 {
		steps = 1
	}
	if steps > 10_000 {
		return tickResponse{}, fmt.Errorf("steps %d exceeds the per-request cap of 10000", steps)
	}
	h.mu.Lock()
	f, ok := h.feeds[req.Stream]
	h.mu.Unlock()
	if !ok {
		return tickResponse{}, fmt.Errorf("unknown stream %q (streams are created by /subscribe)", req.Stream)
	}

	// The feed lock serializes concurrent tickers (the -tick auto-ticker
	// and POST /tick requests) on this stream's state and random source.
	f.mu.Lock()
	defer f.mu.Unlock()
	var refreshes []stream.Refresh
	var err error
	for i := 0; i < steps; i++ {
		// The feed step is journaled before the engine's own update
		// record, so replay advances the feed's random source in lockstep
		// with the published states.
		lsn, jerr := h.append(hubFeedStep{Stream: req.Stream})
		if jerr != nil {
			return tickResponse{}, fmt.Errorf("%w: journaling tick: %v", serve.ErrInternal, jerr)
		}
		f.steps++
		f.proc.Step(f.state, f.steps, f.src)
		if lsn > f.lsn {
			f.lsn = lsn
		}
		refreshes, err = h.engine.Update(ctx, req.Stream, f.state)
		if err != nil {
			return tickResponse{}, err
		}
	}
	tick, _ := h.engine.Tick(req.Stream)
	out := tickResponse{Stream: req.Stream, Tick: tick}
	for _, r := range refreshes {
		rj := refreshJSON{SubID: r.SubID, Answer: toAnswerJSON(r.Answer)}
		if r.Err != nil {
			rj.Error = r.Err.Error()
		}
		out.Refreshes = append(out.Refreshes, rj)
	}
	return out, nil
}

// autoTick advances every known stream once; the -tick flag drives it on
// a timer. One stream's failure must not starve the others — the sweep
// continues past it and the failure is booked in the per-stream error
// counters GET /streams exposes.
func (h *streamHub) autoTick(ctx context.Context) {
	h.mu.Lock()
	names := make([]string, 0, len(h.feeds))
	for name := range h.feeds {
		names = append(names, name)
	}
	h.mu.Unlock()
	// Sweep in name order: map order would tick streams in a different
	// sequence every pass, making multi-stream traces unreproducible.
	sort.Strings(names)
	for _, name := range names {
		if _, err := h.tick(ctx, tickRequest{Stream: name, Steps: 1}); err != nil {
			h.mu.Lock()
			h.tickErrs[name]++
			h.mu.Unlock()
		}
	}
}

// handleUpdates serves the long-poll GET /updates?id=&since=&timeoutSec=:
// it blocks until the subscription's answer moves past the given tick,
// then returns it; an expired wait returns 204 No Content so clients can
// simply re-arm.
func (h *streamHub) handleUpdates(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	sub, ok := h.lookup(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown subscription %q", id))
		return
	}
	var since int64
	if s := r.URL.Query().Get("since"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad since %q: %w", s, err))
			return
		}
		since = v
	}
	timeout := 30 * time.Second
	if s := r.URL.Query().Get("timeoutSec"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || v > 300 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad timeoutSec %q (want 0 < s <= 300)", s))
			return
		}
		timeout = time.Duration(v * float64(time.Second))
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// A shutting-down server resolves the poll instead of dropping the
	// connection: the cancellation surfaces as 204 below, telling the
	// client to re-arm (against the restarted server).
	waitDone := make(chan struct{})
	defer close(waitDone)
	go func() {
		select {
		case <-h.down:
			cancel()
		case <-waitDone:
		}
	}()
	ans, err := sub.Wait(ctx, since)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, toAnswerJSON(ans))
	case errors.Is(err, stream.ErrSubscriptionClosed):
		httpError(w, http.StatusGone, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// An expired wait — or the client abandoning its own long poll —
		// is the protocol working, not a gateway failure: clients simply
		// re-arm. (Canceled used to map to 504 and count as a server
		// error, miscoloring every aborted poll in the error stats.)
		w.WriteHeader(http.StatusNoContent)
	default:
		httpError(w, http.StatusGatewayTimeout, err)
	}
}

// streamStats is the GET /streams payload.
type streamStats struct {
	Engine        stream.EngineStats `json:"engine"`
	Subscriptions int                `json:"subscriptions"`
	// TickErrors counts auto-tick sweeps that failed, per stream; a
	// failing stream no longer stops the sweep, so these are the only
	// trace it leaves.
	TickErrors map[string]int64 `json:"tickErrors,omitempty"`
	// Plans is the per-subscription plan detail, sorted by handle; only
	// statsDetailed (the GET /streams handler) fills it — the metric
	// gauges read the cheap stats() and skip it.
	Plans []subPlanJSON `json:"plans,omitempty"`
}

// subPlanJSON is one subscription's resolved plan on GET /streams: which
// drift bucket it stands in, the plan's shape, the plan-cache key the
// shape lives under, and a crossing-statistics summary from the ledger.
// Absent entirely while the subscription has no resolved plan yet.
type subPlanJSON struct {
	ID          string         `json:"id"`
	SubID       uint64         `json:"subID"`
	Stream      string         `json:"stream"`
	DriftBucket int            `json:"driftBucket"`
	Boundaries  []float64      `json:"boundaries"`
	Ratios      []int          `json:"ratios,omitempty"`
	PlanKey     *planstats.Key `json:"planKey,omitempty"`
	// Crossing summarizes the ledger entry under PlanKey — shared with
	// every other query of the same shape, absent until any run booked.
	Crossing *subCrossingJSON `json:"crossing,omitempty"`
}

// subCrossingJSON restates the ledger snapshot's run accounting and
// drift verdict inputs — all pure functions of driven traffic.
type subCrossingJSON struct {
	Runs     int64   `json:"runs"`
	Roots    int64   `json:"roots"`
	Steps    int64   `json:"steps"`
	MaxDrift float64 `json:"maxDrift"`
	Observed bool    `json:"observedAny"`
}

func (h *streamHub) stats() streamStats {
	h.mu.Lock()
	n := len(h.subs)
	var tickErrs map[string]int64
	if len(h.tickErrs) > 0 {
		tickErrs = make(map[string]int64, len(h.tickErrs))
		for name, c := range h.tickErrs {
			tickErrs[name] = c
		}
	}
	h.mu.Unlock()
	return streamStats{Engine: h.engine.Stats(), Subscriptions: n, TickErrors: tickErrs}
}

// statsDetailed is stats() plus the per-subscription plan listing. Only
// the GET /streams handler pays for it; PlanInfo takes each live state's
// lock, so the subscription slice is collected first and the hub lock
// released before any plan is read.
func (h *streamHub) statsDetailed() streamStats {
	out := h.stats()
	h.mu.Lock()
	handles := make([]string, 0, len(h.subs))
	for id := range h.subs {
		handles = append(handles, id)
	}
	sort.Strings(handles)
	subs := make([]*stream.Subscription, len(handles))
	for i, id := range handles {
		subs[i] = h.subs[id]
	}
	h.mu.Unlock()
	for i, sub := range subs {
		info, ok := sub.PlanInfo()
		if !ok {
			continue
		}
		pj := subPlanJSON{
			ID:          handles[i],
			SubID:       sub.ID(),
			Stream:      sub.Stream(),
			DriftBucket: info.Bucket,
			Boundaries:  info.Boundaries,
			Ratios:      info.Ratios,
		}
		if info.HaveKey {
			key := serve.StatsKey(info.Key)
			pj.PlanKey = &key
			if snap, ok := h.runner.Ledger.Snapshot(key); ok {
				pj.Crossing = &subCrossingJSON{
					Runs:     snap.Runs,
					Roots:    snap.Roots,
					Steps:    snap.Steps,
					MaxDrift: snap.MaxDrift,
					Observed: snap.Observed,
				}
			}
		}
		out.Plans = append(out.Plans, pj)
	}
	return out
}
