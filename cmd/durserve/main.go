// Command durserve serves durability prediction queries over HTTP.
//
// It fronts the concurrent serving layer of internal/serve: a worker pool
// executes queries, a bounded admission queue sheds load once the pool is
// saturated, and a shared plan cache amortizes the paper's §5.2 level
// search across queries of the same shape — the first query of a shape
// pays the search, every later one samples immediately.
//
//	durserve -addr :8077 &
//
//	# One durability query (tandem queue backing up past 26 customers):
//	curl -s localhost:8077/query -d '{"model":"queue","beta":26,"horizon":500,"re":0.1}'
//
//	# Serving statistics, including the plan-cache hit rate:
//	curl -s localhost:8077/stats
//
// POST /query accepts a JSON serve.Request; the response carries the
// estimate, its 95% confidence interval, cost accounting and whether the
// level plan came from the cache. GET /stats reports a serve.Stats
// snapshot. Model parameters are fixed at startup by flags (the same
// defaults as cmd/durquery); queries select a model and observer by name.
//
// A whole threshold ladder goes through POST /batch as one shared
// splitting run — every threshold is a boundary of one covering level
// plan, and each answer is read off the shared counters:
//
//	curl -s localhost:8077/batch -d '{"model":"gbm","betas":[1100,1150,1200,1250],"horizon":250,"re":0.1}'
//
// Concurrent /batch requests of the same shape (model, observer, horizon,
// ratio, seed, quality target) coalesce into a single run over the union
// of their thresholds when -coalesce is set; each caller receives exactly
// its own thresholds' answers.
//
// Standing queries ride the incremental maintenance engine of
// internal/stream:
//
//	# Register a standing query against the gbm live state:
//	curl -s localhost:8077/subscribe -d '{"model":"gbm","beta":1200,"horizon":250,"re":0.1}'
//
//	# Advance the live state three ticks (answers refresh incrementally):
//	curl -s localhost:8077/tick -d '{"stream":"gbm","steps":3}'
//
//	# Long-poll the maintained answer past tick 3:
//	curl -s 'localhost:8077/updates?id=sub-1&since=3&timeoutSec=30'
//
// DELETE /subscribe?id=sub-1 deregisters; GET /streams reports the
// maintenance engine's cost accounting. The -tick flag auto-advances
// every live stream on an interval, turning the daemon into a
// self-contained live demo.
//
// Both query paths can shard their simulation across a worker fleet —
// the §3.1 parallelization, behind the pluggable execution seam of
// internal/exec. Start shard workers (same binary, same model flags, one
// per machine), then point the serving daemon at them:
//
//	durserve -worker 127.0.0.1:7070 &
//	durserve -worker 127.0.0.1:7071 &
//	durserve -addr :8077 -workers 127.0.0.1:7070,127.0.0.1:7071
//
// Root path i draws from PRNG substream i regardless of which worker
// simulates it, so a sharded daemon returns bit-for-bit the answers a
// single-machine daemon would; a worker dying mid-query costs a retry,
// not the answer.
//
// With -data-dir the serving state is durable: every mutation is written
// ahead to a log, checkpoints capture the standing-query engine, the
// warm plan cache, the live feeds and the subscription handle table, and
// a restarted daemon recovers all of it — answering every subsequent
// tick bit-for-bit as the uninterrupted daemon would:
//
//	durserve -addr :8077 -data-dir /var/lib/durserve
//
// Checkpoints are written at boot, when the log outgrows
// -checkpoint-bytes or -checkpoint-age, and on SIGTERM — after which
// in-flight GET /updates long-polls resolve with 204 (shutting down)
// instead of being dropped mid-wait.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"durability/internal/cluster"
	"durability/internal/exec"
	"durability/internal/persist"
	"durability/internal/planstats"
	"durability/internal/replicate"
	"durability/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8077", "HTTP listen address")
		opsAddr    = flag.String("ops-addr", "", "separate operations listener for /metrics, /healthz, /readyz and /debug/pprof (empty = no ops listener; /metrics and /readyz still serve on -addr, pprof does not)")
		pool       = flag.Int("pool", 0, "concurrent queries (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue", 64, "admission queue depth")
		simWorkers = flag.Int("sim-workers", 1, "simulation workers per query")
		timeout    = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
		maxBudget  = flag.Int64("max-budget", 0, "per-query simulator-invocation cap (0 = default)")
		maxHorizon = flag.Int("max-horizon", 1_000_000, "reject queries with a longer horizon — budgets only bind between sampling rounds, so an absurd horizon could overshoot the budget by a whole round (0 = unlimited)")
		defaultRE  = flag.Float64("re", 0.10, "default relative-error target")
		seed       = flag.Uint64("seed", 1, "base random seed")
		bucket     = flag.Float64("bucket", serve.DefaultBetaBucketWidth, "plan-cache threshold bucket width (relative)")
		planCache  = flag.Int("plan-cache", serve.DefaultPlanCacheCap, "plan-cache capacity (completed plans; < 0 = unlimited)")
		planDrift  = flag.Float64("plan-drift-threshold", 0.05, "flag a plan on GET /plans and durserve_plan_drift_exceeded_total when its max per-level |observed - assumed| crossing probability exceeds this (report-only; <= 0 disables the verdict)")
		tick       = flag.Duration("tick", 0, "auto-advance every live stream on this interval (0 = ticks only via POST /tick)")
		dataDir    = flag.String("data-dir", "", "durable serving state: checkpoint + write-ahead log directory (empty = in-memory only; a restart forgets every subscription)")
		ckptBytes  = flag.Int64("checkpoint-bytes", 0, "checkpoint when a write-ahead log outgrows this many bytes (0 = 4 MiB default)")
		ckptAge    = flag.Duration("checkpoint-age", 0, "checkpoint when a write-ahead log has been collecting this long (0 = 5m default)")
		shards     = flag.Int("shards", 1, "standing-query engine shards; subscriptions partition across them by consistent hash and each shard keeps its own checkpoint+WAL lineage under -data-dir")
		follow     = flag.String("follow", "", "run as a warm follower of the primary durserve at this base URL (e.g. http://primary:8077); requires -data-dir for the mirror, serves once promoted")
		followPoll = flag.Duration("follow-poll", 200*time.Millisecond, "follower: replication poll interval")
		leaseTTL   = flag.Duration("lease-ttl", 10*time.Second, "follower: promote automatically when no manifest fetch succeeds for this long (0 = promote only via POST /promote)")
		ackWait    = flag.Duration("ack-wait", 5*time.Second, "primary: on SIGTERM, how long to wait for a follower to acknowledge the final checkpoint's LSNs")
		coalesce   = flag.Duration("coalesce", 2*time.Millisecond, "how long a /batch request waits for compatible batches to share its run (0 = never coalesce)")
		workers    = flag.String("workers", "", "comma-separated shard-worker addresses; g-MLSS simulation is distributed across them")
		worker     = flag.String("worker", "", "run as a shard worker on this address instead of serving HTTP")
		localSim   = flag.Int("worker-sim", 4, "worker mode: local simulation parallelism per shard")
		batchRoots = flag.Int("batch-roots", 0, "one-shot queries: root paths per round (0 = 256); a round spreads over at most batch-roots/16 workers")
		topUpRoots = flag.Int("topup-roots", 0, "standing queries: fresh root paths per refresh top-up (0 = 64); a top-up spreads over at most topup-roots/16 workers")

		// queue parameters
		lambda = flag.Float64("lambda", 0.5, "queue: arrival rate")
		mu1    = flag.Float64("mu1", 2, "queue: mean service time, stage 1")
		mu2    = flag.Float64("mu2", 2, "queue: mean service time, stage 2")
		// cpp parameters
		u0       = flag.Float64("u", 15, "cpp: initial surplus")
		premium  = flag.Float64("c", 6.0, "cpp: per-step premium")
		claimLam = flag.Float64("claim-rate", 0.8, "cpp: claim rate")
		claimLo  = flag.Float64("claim-lo", 5, "cpp: claim size lower bound")
		claimHi  = flag.Float64("claim-hi", 10, "cpp: claim size upper bound")
		// walk / gbm parameters
		start = flag.Float64("start", 0, "walk: start value")
		drift = flag.Float64("drift", 0, "walk/gbm: per-step drift")
		sigma = flag.Float64("sigma", 1, "walk/gbm: per-step volatility")
		s0    = flag.Float64("s0", 1000, "gbm: initial price")
	)
	flag.Parse()

	registry := buildRegistry(modelParams{
		lambda: *lambda, mu1: *mu1, mu2: *mu2,
		u0: *u0, premium: *premium, claimLam: *claimLam, claimLo: *claimLo, claimHi: *claimHi,
		start: *start, drift: *drift, sigma: *sigma, s0: *s0,
	})

	if *worker != "" {
		// Shard-worker mode: serve root-path ranges over rpc for a
		// durserve (or durcluster) coordinator. The registry is the same
		// one the HTTP daemon queries, so a fleet started with identical
		// model flags simulates identical dynamics.
		ln, err := net.Listen("tcp", *worker)
		if err != nil {
			log.Fatalf("durserve: %v", err)
		}
		addr := cluster.Serve(cluster.NewWorker(clusterRegistry(registry), *localSim), ln)
		log.Printf("durserve: shard worker serving on %s (%d local sim workers)", addr, *localSim)
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		<-stop
		return
	}

	tel := newTelemetry()
	var backend exec.Executor
	if *workers != "" {
		cl := exec.NewCluster(strings.Split(*workers, ",")...)
		cl.Metrics = tel.workers
		defer cl.Close()
		backend = cl
		log.Printf("durserve: distributing g-MLSS simulation across %s", *workers)
	}

	// The crossing-statistics ledger must exist before the server so every
	// booked run lands in it; bindPlanLedger also hangs the drift gauges
	// off the registry before the listener first scrapes.
	ledger := planstats.NewLedger()
	tel.bindPlanLedger(ledger, *planDrift)

	srv := serve.NewServer(registry, serve.Config{
		PoolWorkers:     *pool,
		QueueDepth:      *queueDepth,
		SimWorkers:      *simWorkers,
		QueryTimeout:    *timeout,
		MaxBudget:       *maxBudget,
		MaxHorizon:      *maxHorizon,
		DefaultRelErr:   *defaultRE,
		Seed:            *seed,
		BetaBucketWidth: *bucket,
		PlanCacheCap:    *planCache,
		Executor:        backend,
		ExecBatchRoots:  *batchRoots,
		CoalesceWindow:  *coalesce,
		Tracer:          tel.tracer,
		Ledger:          ledger,
	})
	defer srv.Close()
	// A follower adopts the primary's shard layout instead of trusting
	// -shards: the engines must partition exactly as the replicated hub
	// snapshot records, or restore refuses. Discovery happens before the
	// hub is built because the shard count is baked into its engines.
	shardCount := *shards
	var followSource replicate.HTTPSource
	if *follow != "" {
		if *dataDir == "" {
			log.Fatal("durserve: -follow requires -data-dir (the mirror directory)")
		}
		followSource = replicate.HTTPSource{Base: strings.TrimRight(*follow, "/")}
		n, err := discoverShardCount(followSource, 2*time.Minute)
		if err != nil {
			log.Fatalf("durserve: discovering primary layout: %v", err)
		}
		if n != shardCount {
			log.Printf("durserve: adopting the primary's %d-shard layout (local -shards %d ignored)", n, shardCount)
		}
		shardCount = n
	}
	hub := newStreamHub(srv, registry, *defaultRE, *maxBudget, *seed, backend, *topUpRoots, tel.engine, shardCount)
	tel.bind(srv, hub)

	opts := persist.Options{MaxWALBytes: *ckptBytes, MaxWALAge: *ckptAge}
	rep := &replicaSet{}
	var acks *ackTable
	var hs *hubStores
	var fr *followerRun
	// promoteReq carries at most one promotion trigger (lease expiry or
	// POST /promote) to the main loop, which owns the takeover.
	promoteReq := make(chan string, 1)
	requestPromotion := func(reason string) error {
		select {
		case promoteReq <- reason:
		default: // one is already queued; the takeover is single-shot anyway
		}
		return nil
	}
	if *follow != "" {
		tel.setState(stateFollowing)
		fr = startFollower(hub, followSource, *dataDir, opts, *followPoll, *leaseTTL, func() {
			tel.replica.IncLeaseExpiry()
			requestPromotion("primary lease expired")
		})
		tel.bindFollowerMetrics(fr.follower, storeNames(shardCount))
		rep.setPromote(requestPromotion)
		log.Printf("durserve: following %s (%d shards, poll %s, lease %s)", *follow, shardCount, *followPoll, *leaseTTL)
	} else if *dataDir != "" {
		// Opening the store set is cheap; the slow part (replay) happens
		// below, after the listener is up.
		var err error
		hs, err = openHubStores(*dataDir, opts, shardCount)
		if err != nil {
			log.Fatalf("durserve: %v", err)
		}
		acks = newAckTable(tel.replica)
		rep.enablePrimary(hs, acks)
		tel.bindAckMetrics(acks, storeNames(shardCount))
	}

	// The listener comes up before recovery: a restarting daemon is
	// immediately live (healthz, readyz, metrics) while the serving
	// endpoints stay gated 503 until the WAL is replayed (or, on a
	// follower, until promotion).
	httpSrv := &http.Server{Addr: *addr, Handler: tel.gate(newMux(srv, hub, tel, rep))}
	go func() {
		log.Printf("durserve: listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("durserve: %v", err)
		}
	}()
	var opsSrv *http.Server
	if *opsAddr != "" {
		opsSrv = &http.Server{Addr: *opsAddr, Handler: tel.opsMux()}
		go func() {
			log.Printf("durserve: ops endpoints (metrics, pprof) on %s", *opsAddr)
			if err := opsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("durserve: ops listener: %v", err)
			}
		}()
	}

	if hs != nil {
		tel.setState(stateReplaying)
		began := time.Now()
		replayed, err := hub.attachStores(hs)
		if err != nil {
			log.Fatalf("durserve: recovering %s: %v", *dataDir, err)
		}
		tel.observeRecovery(int64(replayed), time.Since(began))
		st := hub.stats()
		log.Printf("durserve: recovered %d subscriptions across %d streams and %d shard lineages from %s (%d WAL events replayed)",
			st.Subscriptions, st.Engine.Streams, shardCount, *dataDir, replayed)
	}
	if *dataDir != "" {
		// The trigger poller turns each store's size/age thresholds into
		// actual checkpoints; SIGTERM below writes the final one. On a
		// follower it idles (no stores attached) until promotion.
		pollDone := make(chan struct{})
		defer close(pollDone)
		go func() {
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := hub.maybeCheckpoint(); err != nil {
						log.Printf("durserve: checkpoint: %v", err)
					}
				case <-pollDone:
					return
				}
			}
		}()
	}
	if fr == nil {
		tel.setState(stateReady)
	}
	if *tick > 0 {
		ticker := time.NewTicker(*tick)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				// A follower never ticks its own feeds — ticks arrive
				// through replication until promotion flips the state.
				if tel.readyState() == stateReady {
					hub.autoTick(context.Background())
				}
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
loop:
	for {
		select {
		case <-stop:
			break loop
		case reason := <-promoteReq:
			if fr == nil {
				continue
			}
			log.Printf("durserve: promoting: %s", reason)
			phs, err := fr.promote()
			if err != nil {
				log.Fatalf("durserve: promotion failed: %v", err)
			}
			hs = phs
			acks = newAckTable(tel.replica)
			rep.enablePrimary(hs, acks)
			tel.bindAckMetrics(acks, storeNames(shardCount))
			tel.replica.IncPromotion()
			tel.setState(stateReady)
			st := hub.stats()
			log.Printf("durserve: promoted; serving %d subscriptions across %d streams from %s",
				st.Subscriptions, st.Engine.Streams, *dataDir)
		}
	}
	log.Print("durserve: shutting down")
	// Order matters: the final checkpoint captures every lineage and (if
	// a follower has been acking) waits for it to confirm the final
	// LSNs, then in-flight long polls resolve with 204 (shutting down)
	// instead of being dropped mid-wait, then the listener drains.
	if fr != nil && tel.readyState() == stateFollowing {
		fr.stop() // never promoted: the mirror on disk is already consistent
	} else if *dataDir != "" {
		if err := finalShutdown(hub, acks, *ackWait); err != nil {
			log.Printf("durserve: final checkpoint: %v", err)
		} else {
			log.Printf("durserve: final checkpoint written to %s", *dataDir)
		}
	}
	hub.beginShutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("durserve: shutdown: %v", err)
	}
	if opsSrv != nil {
		if err := opsSrv.Shutdown(ctx); err != nil {
			log.Printf("durserve: ops shutdown: %v", err)
		}
	}
}

// decodeJSON strictly decodes a request body: unknown fields (usually
// typos of real ones) and trailing data are rejected, so malformed
// bodies surface as 400s instead of silently defaulted queries.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("bad request body: trailing data after JSON value")
	}
	return nil
}

// queryStatus maps a serving error onto its HTTP status.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, serve.ErrOverloaded), errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrInternal):
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

// newMux wires the serving endpoints; it is separated from main so tests
// can drive the handlers through httptest.
func newMux(srv *serve.Server, hub *streamHub, tel *telemetrySet, rep *replicaSet) *http.ServeMux {
	mux := http.NewServeMux()
	// Replication feed (primary) and promotion trigger (follower). Both
	// are allowlisted through the readiness gate: a follower accepts
	// /promote before it is ready, and a primary ships WAL segments even
	// while a checkpoint poller is mid-replay.
	mux.Handle("/replicate/", http.HandlerFunc(rep.serveReplicate))
	mux.HandleFunc("POST /promote", rep.handlePromote)
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req serve.Request
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := srv.Do(r.Context(), req)
		if err != nil {
			httpError(w, queryStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		var req serve.BatchRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := srv.DoBatch(r.Context(), req)
		if err != nil {
			httpError(w, queryStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Stats())
	})
	mux.Handle("GET /metrics", tel.registry.Handler())
	// Liveness vs readiness: /healthz answers 200 whenever the process
	// serves HTTP at all; /readyz answers 200 only once recovery has
	// finished and the serving endpoints accept requests.
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /readyz", tel.handleReadyz)
	// Plan-quality introspection: every cached plan with its assumed vs
	// observed per-level crossing statistics and drift verdict.
	mux.HandleFunc("GET /plans", tel.handlePlans)

	// Standing queries: register, long-poll, advance, deregister.
	mux.HandleFunc("POST /subscribe", func(w http.ResponseWriter, r *http.Request) {
		var req subscribeRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := hub.subscribe(r.Context(), req)
		if err != nil {
			httpError(w, queryStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("DELETE /subscribe", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if !hub.unsubscribe(id) {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown subscription %q", id))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /updates", hub.handleUpdates)
	mux.HandleFunc("POST /tick", func(w http.ResponseWriter, r *http.Request) {
		var req tickRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := hub.tick(r.Context(), req)
		if err != nil {
			httpError(w, queryStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /streams", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, hub.statsDetailed())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("durserve: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
