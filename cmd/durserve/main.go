// Command durserve serves durability prediction queries over HTTP.
//
// It fronts the concurrent serving layer of internal/serve: a worker pool
// executes queries, a bounded admission queue sheds load once the pool is
// saturated, and a shared plan cache amortizes the paper's §5.2 level
// search across queries of the same shape — the first query of a shape
// pays the search, every later one samples immediately.
//
//	durserve -addr :8077 &
//
//	# One durability query (tandem queue backing up past 26 customers):
//	curl -s localhost:8077/query -d '{"model":"queue","beta":26,"horizon":500,"re":0.1}'
//
//	# Serving statistics, including the plan-cache hit rate:
//	curl -s localhost:8077/stats
//
// POST /query accepts a JSON serve.Request; the response carries the
// estimate, its 95% confidence interval, cost accounting and whether the
// level plan came from the cache. GET /stats reports a serve.Stats
// snapshot. Model parameters are fixed at startup by flags (the same
// defaults as cmd/durquery); queries select a model and observer by name.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"durability/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8077", "HTTP listen address")
		pool       = flag.Int("pool", 0, "concurrent queries (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue", 64, "admission queue depth")
		simWorkers = flag.Int("sim-workers", 1, "simulation workers per query")
		timeout    = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
		maxBudget  = flag.Int64("max-budget", 0, "per-query simulator-invocation cap (0 = default)")
		defaultRE  = flag.Float64("re", 0.10, "default relative-error target")
		seed       = flag.Uint64("seed", 1, "base random seed")
		bucket     = flag.Float64("bucket", serve.DefaultBetaBucketWidth, "plan-cache threshold bucket width (relative)")

		// queue parameters
		lambda = flag.Float64("lambda", 0.5, "queue: arrival rate")
		mu1    = flag.Float64("mu1", 2, "queue: mean service time, stage 1")
		mu2    = flag.Float64("mu2", 2, "queue: mean service time, stage 2")
		// cpp parameters
		u0       = flag.Float64("u", 15, "cpp: initial surplus")
		premium  = flag.Float64("c", 6.0, "cpp: per-step premium")
		claimLam = flag.Float64("claim-rate", 0.8, "cpp: claim rate")
		claimLo  = flag.Float64("claim-lo", 5, "cpp: claim size lower bound")
		claimHi  = flag.Float64("claim-hi", 10, "cpp: claim size upper bound")
		// walk / gbm parameters
		start = flag.Float64("start", 0, "walk: start value")
		drift = flag.Float64("drift", 0, "walk/gbm: per-step drift")
		sigma = flag.Float64("sigma", 1, "walk/gbm: per-step volatility")
		s0    = flag.Float64("s0", 1000, "gbm: initial price")
	)
	flag.Parse()

	registry := buildRegistry(modelParams{
		lambda: *lambda, mu1: *mu1, mu2: *mu2,
		u0: *u0, premium: *premium, claimLam: *claimLam, claimLo: *claimLo, claimHi: *claimHi,
		start: *start, drift: *drift, sigma: *sigma, s0: *s0,
	})
	srv := serve.NewServer(registry, serve.Config{
		PoolWorkers:     *pool,
		QueueDepth:      *queueDepth,
		SimWorkers:      *simWorkers,
		QueryTimeout:    *timeout,
		MaxBudget:       *maxBudget,
		DefaultRelErr:   *defaultRE,
		Seed:            *seed,
		BetaBucketWidth: *bucket,
	})
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: newMux(srv)}
	go func() {
		log.Printf("durserve: listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("durserve: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("durserve: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("durserve: shutdown: %v", err)
	}
}

// newMux wires the serving endpoints; it is separated from main so tests
// can drive the handlers through httptest.
func newMux(srv *serve.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req serve.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		resp, err := srv.Do(r.Context(), req)
		if err != nil {
			switch {
			case errors.Is(err, serve.ErrOverloaded), errors.Is(err, serve.ErrClosed):
				httpError(w, http.StatusServiceUnavailable, err)
			case errors.Is(err, serve.ErrInternal):
				httpError(w, http.StatusInternalServerError, err)
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				httpError(w, http.StatusGatewayTimeout, err)
			default:
				httpError(w, http.StatusBadRequest, err)
			}
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("durserve: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
