package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"durability/internal/serve"
)

func testServer(t *testing.T) *httptest.Server {
	ts, _ := testServerHub(t)
	return ts
}

// testServerHub also hands back the hub, for tests that drive handlers
// directly or inspect hub internals.
func testServerHub(t *testing.T) (*httptest.Server, *streamHub) {
	t.Helper()
	registry := buildRegistry(modelParams{
		lambda: 0.5, mu1: 2, mu2: 2,
		u0: 15, premium: 6, claimLam: 0.8, claimLo: 5, claimHi: 10,
		sigma: 1, s0: 1000,
	})
	tel := newTelemetry()
	srv := serve.NewServer(registry, serve.Config{PoolWorkers: 2, Seed: 1, Tracer: tel.tracer})
	t.Cleanup(srv.Close)
	hub := newStreamHub(srv, registry, 0.15, 50_000_000, 1, nil, 0, tel.engine, 1)
	tel.bind(srv, hub)
	tel.setState(stateReady)
	ts := httptest.NewServer(newMux(srv, hub, tel, &replicaSet{}))
	t.Cleanup(ts.Close)
	return ts, hub
}

func postQuery(t *testing.T, ts *httptest.Server, body string) (*http.Response, serve.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.Response
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestQueryEndpoint(t *testing.T) {
	ts := testServer(t)

	resp, first := postQuery(t, ts, `{"model":"walk","beta":8,"horizon":100,"re":0.2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if first.P <= 0 || first.P >= 1 {
		t.Fatalf("estimate %v outside (0,1)", first.P)
	}
	if first.Method != "g-mlss" || first.PlanCached || first.SearchSteps == 0 {
		t.Fatalf("first answer should pay a fresh search: %+v", first)
	}

	// The same shape again: served from the plan cache, same estimate.
	_, second := postQuery(t, ts, `{"model":"walk","beta":8,"horizon":100,"re":0.2}`)
	if !second.PlanCached || second.SearchSteps != 0 {
		t.Fatalf("second answer should hit the cache: %+v", second)
	}
	if second.P != first.P {
		t.Fatalf("identical request diverged: %v vs %v", second.P, first.P)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	ts := testServer(t)
	for _, body := range []string{
		`{not json`,
		`{"model":"nope","beta":8,"horizon":100}`,
		`{"model":"walk","beta":-8,"horizon":100}`,
		`{"model":"queue","observer":"nope","beta":26,"horizon":500}`,
	} {
		resp, _ := postQuery(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// Wrong HTTP method.
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status %d, want 405", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	postQuery(t, ts, `{"model":"walk","beta":8,"horizon":100,"re":0.2,"method":"srs","budget":50000}`)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.QueriesServed != 1 || st.SampleSteps == 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.PoolWorkers != 2 {
		t.Fatalf("pool workers %d, want 2", st.PoolWorkers)
	}
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
