package main

import (
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"durability/internal/persist"
	"durability/internal/rng"
	"durability/internal/serve"
	"durability/internal/stochastic"
	"durability/internal/stream"
)

// Durable serving state for the HTTP daemon, partitioned by lineage.
// Each engine shard journals its own mutations (registrations,
// subscriptions, closes, publish ticks — see internal/stream) to its own
// store under shard-NNNN/, so shards checkpoint, replay and replicate
// independently. The hub's own store under hub/ carries the few things
// only the hub knows: the handle table binding HTTP subscription IDs to
// engine IDs, the live feeds whose dedicated random sources drive /tick,
// and the warm plan cache. A crash can land between any two of these
// logs; recovery reconciles by replaying every lineage and then
// catching lagging ones forward — feeds are deterministic functions of
// (seed, stream, step), so any missing tick's state can be recomputed
// and republished, and the engine's determinism makes the re-run
// refresh bit-for-bit the one the dead process would have served.

// hubFeedCreate records a feed's birth (its initial state and random
// source are derived deterministically from the stream name and server
// seed, so only the names need logging).
type hubFeedCreate struct {
	Stream string
	Model  string
}

// hubFeedStep records one advance of a feed's own dynamics. Replay
// re-steps the feed, which both reproduces the published state and leaves
// the feed's random source at exactly the pre-crash position — the next
// live tick continues the sequence as if nothing happened.
type hubFeedStep struct {
	Stream string
}

// hubBind records the HTTP handle assigned to an engine subscription.
type hubBind struct {
	Handle string
	SubID  uint64
}

// hubUnbind records a handle's removal (the engine's EvClosed rides in
// the owning shard's log).
type hubUnbind struct {
	Handle string
}

func init() {
	gob.Register(hubFeedCreate{})
	gob.Register(hubFeedStep{})
	gob.Register(hubBind{})
	gob.Register(hubUnbind{})
}

// feedSnapshot is one live feed's persisted state: the model identity
// plus the simulation state, step counter and the random source
// mid-sequence.
type feedSnapshot struct {
	Stream string
	Model  string
	State  stochastic.State
	Src    *rng.Source
	Steps  int
	LSN    int64
}

// handleBinding is one HTTP-handle-to-subscription row. Persisted as a
// slice sorted by handle, not a map: gob encodes maps in iteration
// order, which would make two checkpoints of the same state differ.
type handleBinding struct {
	Handle string
	SubID  uint64
}

// tickErrCount is one stream's failed-sweep counter, sorted by stream
// for the same reason.
type tickErrCount struct {
	Stream string
	Errors int64
}

// hubSnapshot is the hub store's checkpoint payload: everything the
// daemon persists except the engine shards, which checkpoint their own
// stream.EngineSnapshot into their own stores. Every component is
// persisted in a canonical order (sorted handles, feeds and error
// counters), so checkpoints of identical serving states are
// byte-identical. Shards pins the shard count the directory was created
// with: placement is a pure function of (stream, id, shard count), so
// reopening under a different count would silently re-home
// subscriptions — recovery refuses instead.
//
//durlint:gobroot
type hubSnapshot struct {
	Shards   int
	Plans    []serve.WarmPlan
	NextID   int64
	Handles  []handleBinding
	HubLSN   int64
	Feeds    []feedSnapshot
	TickErrs []tickErrCount
}

// hubStores is the daemon's store set: the hub's own lineage plus one
// per engine shard, all subdirectories of one -data-dir.
type hubStores struct {
	hub    *persist.Store
	shards []*persist.Store
}

// hubStoreName and shardStoreName are the -data-dir subdirectory (and
// replication store) names.
const hubStoreName = "hub"

func shardStoreName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// storeNames lists every replicated store of a shards-wide daemon, hub
// first.
func storeNames(shards int) []string {
	names := []string{hubStoreName}
	for i := 0; i < shards; i++ {
		names = append(names, shardStoreName(i))
	}
	return names
}

// openHubStores opens (creating if absent) the partitioned store layout
// under dir. A directory holding the old single-store layout (snap-/wal-
// files at the root) is refused rather than silently shadowed, as is a
// directory whose shard count differs from the requested one.
func openHubStores(dir string, opts persist.Options, shards int) (*hubStores, error) {
	if shards < 1 {
		shards = 1
	}
	if entries, err := os.ReadDir(dir); err == nil {
		existing := 0
		for _, e := range entries {
			name := e.Name()
			if !e.IsDir() && (strings.HasPrefix(name, "wal-") || strings.HasPrefix(name, "snap-")) {
				return nil, fmt.Errorf("%s holds a pre-sharding single-store layout; move it aside (the partitioned layout keeps per-shard lineages under %s/ and shard-NNNN/)", dir, hubStoreName)
			}
			if e.IsDir() && strings.HasPrefix(name, "shard-") {
				existing++
			}
		}
		if existing > 0 && existing != shards {
			return nil, fmt.Errorf("%s was created with %d shards, refusing to open with %d — subscription placement is a function of the shard count", dir, existing, shards)
		}
	}
	// Replicated lineages keep one extra snapshot generation: the
	// compaction floor then never outruns a follower that has shipped the
	// previous generation (see internal/replicate).
	if opts.Keep < 2 {
		opts.Keep = 2
	}
	hs := &hubStores{}
	hub, err := persist.Open(filepath.Join(dir, hubStoreName), opts)
	if err != nil {
		return nil, err
	}
	hs.hub = hub
	for i := 0; i < shards; i++ {
		st, err := persist.Open(filepath.Join(dir, shardStoreName(i)), opts)
		if err != nil {
			hs.Close()
			return nil, err
		}
		hs.shards = append(hs.shards, st)
	}
	return hs, nil
}

// byName maps the store set by replication store name.
func (hs *hubStores) byName() map[string]*persist.Store {
	m := map[string]*persist.Store{hubStoreName: hs.hub}
	for i, st := range hs.shards {
		m[shardStoreName(i)] = st
	}
	return m
}

// lastLSNs reports each store's last appended LSN, keyed by store name —
// what a follower must acknowledge before shutdown lets go.
func (hs *hubStores) lastLSNs() map[string]int64 {
	out := map[string]int64{hubStoreName: hs.hub.LastLSN()}
	for i, st := range hs.shards {
		out[shardStoreName(i)] = st.LastLSN()
	}
	return out
}

// Close releases every store handle.
func (hs *hubStores) Close() {
	if hs == nil {
		return
	}
	if hs.hub != nil {
		hs.hub.Close()
	}
	for _, st := range hs.shards {
		if st != nil {
			st.Close()
		}
	}
}

// closeStores releases the hub's store handles (tests simulate crashes
// with it; main lets process exit do it).
func (h *streamHub) closeStores() {
	h.mu.Lock()
	hs := h.stores
	h.mu.Unlock()
	hs.Close()
}

// resolver rebuilds stream dynamics and observers from the model
// registry, the same factories live requests use.
func (h *streamHub) resolver(streamName, modelID string) (stochastic.Process, map[string]stochastic.Observer, error) {
	factory, ok := h.registry[modelID]
	if !ok {
		return nil, nil, fmt.Errorf("snapshot names model %q, which this server was not started with", modelID)
	}
	return factory()
}

// snapshot assembles the hub store's checkpoint payload. Each component
// carries the log sequence number of its last applied mutation, which is
// what reconciles a snapshot taken under live traffic with the WAL
// around it. The hub snapshot is always captured after the shard
// snapshots (see checkpoint): a handle captured here either finds its
// subscription in a shard snapshot or in that shard's WAL right after
// it, and a bind landing between the captures is replayed from the hub
// WAL — resolveBinds settles both cases after every lineage has
// replayed.
func (h *streamHub) snapshot() (*hubSnapshot, error) {
	snap := &hubSnapshot{Shards: h.engine.Shards()}
	h.mu.Lock()
	snap.NextID = h.nextID
	snap.HubLSN = h.lsn
	snap.Handles = make([]handleBinding, 0, len(h.subs))
	for handle, sub := range h.subs {
		snap.Handles = append(snap.Handles, handleBinding{Handle: handle, SubID: sub.ID()})
	}
	sort.Slice(snap.Handles, func(i, j int) bool { return snap.Handles[i].Handle < snap.Handles[j].Handle })
	snap.TickErrs = make([]tickErrCount, 0, len(h.tickErrs))
	for name, n := range h.tickErrs {
		snap.TickErrs = append(snap.TickErrs, tickErrCount{Stream: name, Errors: n})
	}
	sort.Slice(snap.TickErrs, func(i, j int) bool { return snap.TickErrs[i].Stream < snap.TickErrs[j].Stream })
	// Feed order must not leak map order into the snapshot: two
	// checkpoints of the same server state must be byte-identical.
	names := make([]string, 0, len(h.feeds))
	for name := range h.feeds {
		names = append(names, name)
	}
	sort.Strings(names)
	feeds := make([]*feed, 0, len(names))
	for _, name := range names {
		feeds = append(feeds, h.feeds[name])
	}
	h.mu.Unlock()
	snap.Plans = h.planCache().Export()
	for i, f := range feeds {
		f.mu.Lock()
		src := *f.src
		snap.Feeds = append(snap.Feeds, feedSnapshot{
			Stream: names[i],
			Model:  f.model,
			State:  f.state.Clone(),
			Src:    &src,
			Steps:  f.steps,
			LSN:    f.lsn,
		})
		f.mu.Unlock()
	}
	return snap, nil
}

// planCache returns the shared plan cache the hub warms and exports.
func (h *streamHub) planCache() *serve.PlanCache {
	return h.runner.Cache
}

// restore rebuilds the hub from its store's snapshot: warm plans, feeds,
// handle table (deferred — the engine shards restore from their own
// stores, possibly after this runs, so handles resolve against live
// subscriptions only once every lineage has settled; see resolveBinds).
func (h *streamHub) restore(snap *hubSnapshot) error {
	if snap.Shards != 0 && snap.Shards != h.engine.Shards() {
		return fmt.Errorf("snapshot was taken with %d shards, this server runs %d — subscription placement is a function of the shard count", snap.Shards, h.engine.Shards())
	}
	for _, wp := range snap.Plans {
		h.planCache().Warm(wp.Key, wp.Plan)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextID = snap.NextID
	h.lsn = snap.HubLSN
	for _, te := range snap.TickErrs {
		h.tickErrs[te.Stream] = te.Errors
	}
	for _, fs := range snap.Feeds {
		proc, observers, err := h.resolver(fs.Stream, fs.Model)
		if err != nil {
			return fmt.Errorf("restoring feed %q: %w", fs.Stream, err)
		}
		src := *fs.Src
		h.feeds[fs.Stream] = &feed{
			model: fs.Model, proc: proc, observers: observers,
			state: fs.State.Clone(), src: &src, steps: fs.Steps, lsn: fs.LSN,
		}
	}
	for _, hb := range snap.Handles {
		h.binds[hb.Handle] = hb.SubID
	}
	return nil
}

// apply replays one hub-store WAL event the same way the live handlers
// mutate the hub, except that handle binds are deferred: during a
// follower's continuous apply the shard carrying the subscription may
// not have caught up yet, so binds resolve against the engine only at
// resolveBinds time. Components skip events their snapshot already
// covers (lsn at or below their restored sequence number).
func (h *streamHub) apply(ctx context.Context, lsn int64, ev any) error {
	switch ev := ev.(type) {
	case hubFeedCreate:
		h.mu.Lock()
		defer h.mu.Unlock()
		if f, ok := h.feeds[ev.Stream]; ok {
			if f.lsn < lsn {
				f.lsn = lsn
			}
			return nil
		}
		proc, observers, err := h.resolver(ev.Stream, ev.Model)
		if err != nil {
			return fmt.Errorf("replaying feed %q: %w", ev.Stream, err)
		}
		h.feeds[ev.Stream] = &feed{
			model: ev.Model, proc: proc, observers: observers,
			state: proc.Initial(), src: feedSource(h.seed, ev.Stream), lsn: lsn,
		}
		return nil

	case hubFeedStep:
		h.mu.Lock()
		f := h.feeds[ev.Stream]
		h.mu.Unlock()
		if f == nil {
			return fmt.Errorf("replaying step of unknown feed %q", ev.Stream)
		}
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.lsn >= lsn {
			return nil
		}
		f.steps++
		f.proc.Step(f.state, f.steps, f.src)
		f.lsn = lsn
		return nil

	case hubBind:
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.lsn >= lsn {
			return nil
		}
		h.binds[ev.Handle] = ev.SubID
		if n := handleNumber(ev.Handle); n > h.nextID {
			h.nextID = n
		}
		h.lsn = lsn
		return nil

	case hubUnbind:
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.lsn >= lsn {
			return nil
		}
		delete(h.binds, ev.Handle)
		delete(h.subs, ev.Handle)
		h.lsn = lsn
		return nil

	default:
		return fmt.Errorf("unknown WAL event %T", ev)
	}
}

// resolveBinds settles the deferred handle table against the recovered
// engine. A bind whose subscription is gone is legitimately dropped: it
// was bound after one capture but closed before another, so no lineage
// carries the subscription — the later hubUnbind replay (if any) was a
// no-op, and the handle number stays consumed (no reuse).
func (h *streamHub) resolveBinds() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for handle, id := range h.binds {
		if sub, ok := h.engine.Subscription(id); ok {
			h.subs[handle] = sub
		}
	}
	h.binds = make(map[string]uint64)
}

// reapOrphans closes engine subscriptions no handle can ever address —
// a crash between a shard's EvSubscribed record and the hub's bind
// record recovers a live subscription that would otherwise pay refresh
// cost on every tick forever. The client never saw its handle (the
// crash beat the response), so closing it is the consistent outcome:
// the subscribe simply never happened. Runs before journals attach, so
// the closes are not journaled; the boot checkpoint captures the
// post-reap state.
func (h *streamHub) reapOrphans() {
	h.mu.Lock()
	bound := make(map[uint64]bool, len(h.subs))
	for _, sub := range h.subs {
		bound[sub.ID()] = true
	}
	h.mu.Unlock()
	for _, sub := range h.engine.Subscriptions() {
		if !bound[sub.ID()] {
			sub.Close()
		}
	}
}

// alignStreams reconciles per-lineage tick divergence after recovery or
// promotion. A tick writes the hub's feed-step record first, then each
// shard's EvUpdated; a crash can tear any suffix of that sequence, so
// the recovered lineages agree on a prefix and diverge by at most the
// ticks in flight. The furthest lineage defines the target; the feed's
// state trajectory is recomputed from genesis (it is a pure function of
// (seed, stream, step)), lagging shards republish exactly the missing
// states through the same refresh code the dead server would have run,
// and the feed itself fast-forwards to the target. Determinism makes
// the result bit-for-bit the state of an uninterrupted server at that
// tick.
func (h *streamHub) alignStreams(ctx context.Context) error {
	h.mu.Lock()
	names := make([]string, 0, len(h.feeds))
	for name := range h.feeds {
		names = append(names, name)
	}
	sort.Strings(names)
	feeds := make([]*feed, 0, len(names))
	for _, name := range names {
		feeds = append(feeds, h.feeds[name])
	}
	h.mu.Unlock()
	for i, name := range names {
		if err := h.alignStream(ctx, name, feeds[i]); err != nil {
			return err
		}
	}
	return nil
}

func (h *streamHub) alignStream(ctx context.Context, name string, f *feed) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	target := int64(f.steps)
	low := target
	ticks, registered := h.engine.ShardTicks(name)
	if registered {
		for _, t := range ticks {
			if t > target {
				target = t
			}
			if t < low {
				low = t
			}
		}
	}
	if target == low && target == int64(f.steps) {
		return nil // every lineage agrees
	}
	// Recompute the feed's trajectory from genesis, keeping the states
	// lagging lineages are missing.
	src := feedSource(h.seed, name)
	st := f.proc.Initial()
	states := make(map[int64]stochastic.State)
	for k := int64(1); k <= target; k++ {
		f.proc.Step(st, int(k), src)
		if k > low {
			states[k] = st.Clone()
		}
	}
	if registered {
		err := h.engine.CatchUp(ctx, name, target, func(k int64) (stochastic.State, error) {
			s, ok := states[k]
			if !ok {
				return nil, fmt.Errorf("tick %d outside the recomputed window (%d, %d]", k, low, target)
			}
			return s, nil
		})
		if err != nil {
			return err
		}
	}
	// Fast-forward the feed itself (a torn hub record can leave it behind
	// the shards). The recomputed walk equals the restored state at the
	// restored step count, so adopting it wholesale is a no-op when the
	// feed was already at target.
	f.state, f.src, f.steps = st, src, int(target)
	return nil
}

// attachStores recovers the hub from the partitioned store set (each
// shard's snapshot plus WAL, then the hub's), reconciles lineage
// divergence, attaches the journals so every subsequent mutation is
// logged, and writes a fresh checkpoint truncating the replayed tails.
// It reports how many events were replayed across all lineages.
func (h *streamHub) attachStores(hs *hubStores) (replayed int, err error) {
	ctx := context.Background()
	// Shards first: the hub's handle table resolves against the engine,
	// so every shard lineage must have settled before binds resolve.
	for i, st := range hs.shards {
		i := i
		var esnap stream.EngineSnapshot
		_, n, err := st.Recover(&esnap,
			func(found bool) error {
				if !found {
					return nil
				}
				return h.engine.Shard(i).Restore(esnap, h.resolver)
			},
			func(lsn int64, ev any) error {
				jev, ok := ev.(stream.JournalEvent)
				if !ok {
					return fmt.Errorf("shard %d log carries %T, not an engine event", i, ev)
				}
				return h.engine.Shard(i).Apply(ctx, lsn, jev, h.resolver)
			},
		)
		replayed += n
		if err != nil {
			return replayed, fmt.Errorf("recovering %s: %w", shardStoreName(i), err)
		}
	}
	var snap hubSnapshot
	_, n, err := hs.hub.Recover(&snap,
		func(found bool) error {
			if !found {
				return nil
			}
			return h.restore(&snap)
		},
		func(lsn int64, ev any) error {
			return h.apply(ctx, lsn, ev)
		},
	)
	replayed += n
	if err != nil {
		return replayed, fmt.Errorf("recovering %s: %w", hubStoreName, err)
	}
	h.engine.SyncNextSub()
	if err := h.alignStreams(ctx); err != nil {
		return replayed, err
	}
	h.resolveBinds()
	h.reapOrphans()
	h.mu.Lock()
	h.stores = hs
	h.mu.Unlock()
	for i, st := range hs.shards {
		h.engine.Shard(i).SetJournal(persist.EngineJournal{Store: st})
	}
	return replayed, h.checkpoint()
}

// checkpoint writes one snapshot generation per lineage — every shard,
// then the hub; concurrent callers serialize. Shard snapshots go first
// so a handle the hub snapshot carries always finds its subscription in
// the shard snapshot or the shard WAL right after it.
func (h *streamHub) checkpoint() error {
	h.mu.Lock()
	hs := h.stores
	h.mu.Unlock()
	if hs == nil {
		return nil
	}
	h.ckptMu.Lock()
	defer h.ckptMu.Unlock()
	for i, st := range hs.shards {
		i := i
		if err := st.Err(); err != nil {
			return err
		}
		if err := st.Checkpoint(func() (any, error) { return h.engine.Shard(i).Snapshot(), nil }); err != nil {
			return fmt.Errorf("checkpointing %s: %w", shardStoreName(i), err)
		}
	}
	if err := hs.hub.Err(); err != nil {
		return err
	}
	if err := hs.hub.Checkpoint(func() (any, error) { return h.snapshot() }); err != nil {
		return fmt.Errorf("checkpointing %s: %w", hubStoreName, err)
	}
	return nil
}

// maybeCheckpoint runs a full checkpoint when any lineage's size or age
// trigger has fired; the main loop polls it.
func (h *streamHub) maybeCheckpoint() error {
	h.mu.Lock()
	hs := h.stores
	h.mu.Unlock()
	if hs == nil {
		return nil
	}
	need := hs.hub.NeedCheckpoint()
	for _, st := range hs.shards {
		need = need || st.NeedCheckpoint()
	}
	if !need {
		return nil
	}
	return h.checkpoint()
}

// append journals one hub-level event to the hub store; with no store
// attached it reports lsn 0, which every consumer treats as "not
// journaled".
func (h *streamHub) append(ev any) (int64, error) {
	if h.stores == nil {
		return 0, nil
	}
	return h.stores.hub.Append(ev)
}

// handleNumber extracts N from a "sub-N" handle (0 when malformed).
func handleNumber(handle string) int64 {
	n, err := strconv.ParseInt(strings.TrimPrefix(handle, "sub-"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// beginShutdown resolves every in-flight long poll: /updates waits are
// cancelled, which the handler answers with 204 No Content — the client's
// cue to re-arm against the server that comes back. Idempotent.
func (h *streamHub) beginShutdown() {
	h.downOnce.Do(func() { close(h.down) })
}
