package main

import (
	"context"
	"encoding/gob"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"durability/internal/persist"
	"durability/internal/rng"
	"durability/internal/serve"
	"durability/internal/stochastic"
	"durability/internal/stream"
)

// Durable serving state for the HTTP daemon. The stream engine journals
// its own mutations (registrations, subscriptions, closes, publish ticks
// — see internal/stream); the hub adds the few things only it knows: the
// handle table binding HTTP subscription IDs to engine IDs, and the live
// feeds whose dedicated random sources drive /tick. Snapshots carry the
// whole serving state — engine, warm plan cache, handles, feeds — and the
// WAL carries the events between snapshots, so a durserve restarted with
// -data-dir resumes serving bit-for-bit where the dead process stood.

// hubFeedCreate records a feed's birth (its initial state and random
// source are derived deterministically from the stream name and server
// seed, so only the names need logging).
type hubFeedCreate struct {
	Stream string
	Model  string
}

// hubFeedStep records one advance of a feed's own dynamics. Replay
// re-steps the feed, which both reproduces the published state and leaves
// the feed's random source at exactly the pre-crash position — the next
// live tick continues the sequence as if nothing happened.
type hubFeedStep struct {
	Stream string
}

// hubBind records the HTTP handle assigned to an engine subscription.
type hubBind struct {
	Handle string
	SubID  uint64
}

// hubUnbind records a handle's removal (the engine's EvClosed rides just
// before it in the log).
type hubUnbind struct {
	Handle string
}

func init() {
	gob.Register(hubFeedCreate{})
	gob.Register(hubFeedStep{})
	gob.Register(hubBind{})
	gob.Register(hubUnbind{})
}

// feedSnapshot is one live feed's persisted state: the model identity
// plus the simulation state, step counter and the random source
// mid-sequence.
type feedSnapshot struct {
	Stream string
	Model  string
	State  stochastic.State
	Src    *rng.Source
	Steps  int
	LSN    int64
}

// handleBinding is one HTTP-handle-to-subscription row. Persisted as a
// slice sorted by handle, not a map: gob encodes maps in iteration
// order, which would make two checkpoints of the same state differ.
type handleBinding struct {
	Handle string
	SubID  uint64
}

// tickErrCount is one stream's failed-sweep counter, sorted by stream
// for the same reason.
type tickErrCount struct {
	Stream string
	Errors int64
}

// hubSnapshot is the daemon's full serving state. Every component is
// persisted in a canonical order (sorted handles, feeds and error
// counters; the engine sorts its own streams and subscriptions), so
// checkpoints of identical serving states are byte-identical.
//
//durlint:gobroot
type hubSnapshot struct {
	Serving  persist.ServingSnapshot
	NextID   int64
	Handles  []handleBinding
	HubLSN   int64
	Feeds    []feedSnapshot
	TickErrs []tickErrCount
}

// resolver rebuilds stream dynamics and observers from the model
// registry, the same factories live requests use.
func (h *streamHub) resolver(streamName, modelID string) (stochastic.Process, map[string]stochastic.Observer, error) {
	factory, ok := h.registry[modelID]
	if !ok {
		return nil, nil, fmt.Errorf("snapshot names model %q, which this server was not started with", modelID)
	}
	return factory()
}

// snapshot assembles the hub's full serving state. Each component carries
// the log sequence number of its last applied mutation, which is what
// reconciles a snapshot taken under live traffic with the WAL around it.
// The handle table is captured before the engine: a handle must never
// name a subscription the engine part of the snapshot does not carry (a
// bind landing between the two captures is replayed from the WAL
// instead), while the reverse — an engine subscription without its handle
// yet — is healed by the hubBind record replay.
func (h *streamHub) snapshot() (*hubSnapshot, error) {
	snap := &hubSnapshot{}
	h.mu.Lock()
	snap.NextID = h.nextID
	snap.HubLSN = h.lsn
	snap.Handles = make([]handleBinding, 0, len(h.subs))
	for handle, sub := range h.subs {
		snap.Handles = append(snap.Handles, handleBinding{Handle: handle, SubID: sub.ID()})
	}
	sort.Slice(snap.Handles, func(i, j int) bool { return snap.Handles[i].Handle < snap.Handles[j].Handle })
	snap.TickErrs = make([]tickErrCount, 0, len(h.tickErrs))
	for name, n := range h.tickErrs {
		snap.TickErrs = append(snap.TickErrs, tickErrCount{Stream: name, Errors: n})
	}
	sort.Slice(snap.TickErrs, func(i, j int) bool { return snap.TickErrs[i].Stream < snap.TickErrs[j].Stream })
	// Feed order must not leak map order into the snapshot: two
	// checkpoints of the same server state must be byte-identical.
	names := make([]string, 0, len(h.feeds))
	for name := range h.feeds {
		names = append(names, name)
	}
	sort.Strings(names)
	feeds := make([]*feed, 0, len(names))
	for _, name := range names {
		feeds = append(feeds, h.feeds[name])
	}
	h.mu.Unlock()
	snap.Serving = persist.ServingSnapshot{
		Engine: h.engine.Snapshot(),
		Plans:  h.planCache().Export(),
	}
	for i, f := range feeds {
		f.mu.Lock()
		src := *f.src
		snap.Feeds = append(snap.Feeds, feedSnapshot{
			Stream: names[i],
			Model:  f.model,
			State:  f.state.Clone(),
			Src:    &src,
			Steps:  f.steps,
			LSN:    f.lsn,
		})
		f.mu.Unlock()
	}
	return snap, nil
}

// planCache returns the shared plan cache the hub warms and exports.
func (h *streamHub) planCache() *serve.PlanCache {
	return h.runner.Cache
}

// restore rebuilds the hub from a snapshot: warm plans, engine state,
// feeds, handle table.
func (h *streamHub) restore(snap *hubSnapshot) error {
	for _, wp := range snap.Serving.Plans {
		h.planCache().Warm(wp.Key, wp.Plan)
	}
	if err := h.engine.Restore(snap.Serving.Engine, h.resolver); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextID = snap.NextID
	h.lsn = snap.HubLSN
	for _, te := range snap.TickErrs {
		h.tickErrs[te.Stream] = te.Errors
	}
	for _, fs := range snap.Feeds {
		proc, observers, err := h.resolver(fs.Stream, fs.Model)
		if err != nil {
			return fmt.Errorf("restoring feed %q: %w", fs.Stream, err)
		}
		src := *fs.Src
		h.feeds[fs.Stream] = &feed{
			model: fs.Model, proc: proc, observers: observers,
			state: fs.State.Clone(), src: &src, steps: fs.Steps, lsn: fs.LSN,
		}
	}
	for _, hb := range snap.Handles {
		sub, ok := h.engine.Subscription(hb.SubID)
		if !ok {
			// The subscription closed between the handle-table and engine
			// captures; the hubUnbind record later in the WAL removes the
			// handle too.
			continue
		}
		h.subs[hb.Handle] = sub
	}
	return nil
}

// pendingStep is a replayed hubFeedStep waiting for its paired engine
// update. A tick writes two records — the feed step, then the engine's
// EvUpdated — and a crash can tear the log between them; applying the
// feed step only when the update arrives makes the pair atomic, so a
// torn pair leaves feed and engine consistently one tick back instead of
// desynchronized by half a tick.
type pendingStep struct {
	lsn int64
}

// apply replays one WAL event. Engine events go to the engine; hub events
// mutate the handle table and feeds the same way the live handlers do.
// Components skip events their snapshot already covers (lsn at or below
// their restored sequence number).
func (h *streamHub) apply(ctx context.Context, lsn int64, ev any) error {
	switch ev := ev.(type) {
	case stream.JournalEvent:
		if up, ok := ev.(stream.EvUpdated); ok {
			if err := h.applyPendingStep(up.Name); err != nil {
				return err
			}
		}
		return h.engine.Apply(ctx, lsn, ev, h.resolver)

	case hubFeedCreate:
		h.mu.Lock()
		defer h.mu.Unlock()
		if f, ok := h.feeds[ev.Stream]; ok {
			if f.lsn < lsn {
				f.lsn = lsn
			}
			return nil
		}
		proc, observers, err := h.resolver(ev.Stream, ev.Model)
		if err != nil {
			return fmt.Errorf("replaying feed %q: %w", ev.Stream, err)
		}
		h.feeds[ev.Stream] = &feed{
			model: ev.Model, proc: proc, observers: observers,
			state: proc.Initial(), src: feedSource(h.seed, ev.Stream), lsn: lsn,
		}
		return nil

	case hubFeedStep:
		h.mu.Lock()
		_, ok := h.feeds[ev.Stream]
		if ok {
			h.pending[ev.Stream] = pendingStep{lsn: lsn}
		}
		h.mu.Unlock()
		if !ok {
			return fmt.Errorf("replaying step of unknown feed %q", ev.Stream)
		}
		return nil

	case hubBind:
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.lsn >= lsn {
			return nil
		}
		// The subscription can legitimately be gone: it was bound after
		// the handle-table capture but closed before the engine capture,
		// so neither snapshot half carries it and its EvSubscribed replay
		// was LSN-skipped. Tolerated — the handle number is still
		// consumed (no reuse), and the later hubUnbind replay is a no-op.
		if sub, ok := h.engine.Subscription(ev.SubID); ok {
			h.subs[ev.Handle] = sub
		}
		if n := handleNumber(ev.Handle); n > h.nextID {
			h.nextID = n
		}
		h.lsn = lsn
		return nil

	case hubUnbind:
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.lsn >= lsn {
			return nil
		}
		delete(h.subs, ev.Handle)
		h.lsn = lsn
		return nil

	default:
		return fmt.Errorf("unknown WAL event %T", ev)
	}
}

// applyPendingStep advances a feed whose journaled step's paired engine
// update has now arrived in the replay.
func (h *streamHub) applyPendingStep(streamName string) error {
	h.mu.Lock()
	p, ok := h.pending[streamName]
	if ok {
		delete(h.pending, streamName)
	}
	f := h.feeds[streamName]
	h.mu.Unlock()
	if !ok {
		return nil // an engine-only update (no feed step preceded it)
	}
	if f == nil {
		return fmt.Errorf("replaying step of unknown feed %q", streamName)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.lsn >= p.lsn {
		return nil
	}
	f.steps++
	f.proc.Step(f.state, f.steps, f.src)
	f.lsn = p.lsn
	return nil
}

// handleNumber extracts N from a "sub-N" handle (0 when malformed).
func handleNumber(handle string) int64 {
	n, err := strconv.ParseInt(strings.TrimPrefix(handle, "sub-"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// attachStore recovers the hub from the store (snapshot plus WAL tail),
// attaches the journal so every subsequent mutation is logged, and writes
// a fresh checkpoint truncating the replayed tail. It reports how many
// events were replayed.
func (h *streamHub) attachStore(store *persist.Store) (replayed int, err error) {
	var snap hubSnapshot
	_, replayed, err = store.Recover(&snap,
		func(found bool) error {
			if !found {
				return nil
			}
			return h.restore(&snap)
		},
		func(lsn int64, ev any) error {
			return h.apply(context.Background(), lsn, ev)
		},
	)
	if err != nil {
		return replayed, err
	}
	// A feed step whose paired engine update was torn off the tail is
	// dropped with it: the recovered server serves that tick again.
	h.mu.Lock()
	h.pending = make(map[string]pendingStep)
	bound := make(map[uint64]bool, len(h.subs))
	for _, sub := range h.subs {
		bound[sub.ID()] = true
	}
	h.mu.Unlock()
	// Reap orphans: a crash between the engine's EvSubscribed record and
	// the hub's bind record recovers a live subscription no handle can
	// ever address — it would pay refresh cost on every tick forever.
	// The client never saw its handle (the crash beat the response), so
	// closing it is the consistent outcome: the subscribe simply never
	// happened.
	for _, sub := range h.engine.Subscriptions() {
		if !bound[sub.ID()] {
			sub.Close()
		}
	}
	h.store = store
	h.engine.SetJournal(persist.EngineJournal{Store: store})
	return replayed, h.checkpoint()
}

// checkpoint writes one snapshot generation; concurrent callers serialize.
func (h *streamHub) checkpoint() error {
	if h.store == nil {
		return nil
	}
	h.ckptMu.Lock()
	defer h.ckptMu.Unlock()
	if err := h.store.Err(); err != nil {
		return err
	}
	return h.store.Checkpoint(func() (any, error) { return h.snapshot() })
}

// maybeCheckpoint runs a checkpoint when the store's size or age trigger
// has fired; the main loop polls it.
func (h *streamHub) maybeCheckpoint() error {
	if h.store == nil || !h.store.NeedCheckpoint() {
		return nil
	}
	return h.checkpoint()
}

// append journals one hub-level event; with no store attached it reports
// lsn 0, which every consumer treats as "not journaled".
func (h *streamHub) append(ev any) (int64, error) {
	if h.store == nil {
		return 0, nil
	}
	return h.store.Append(ev)
}

// beginShutdown resolves every in-flight long poll: /updates waits are
// cancelled, which the handler answers with 204 No Content — the client's
// cue to re-arm against the server that comes back. Idempotent.
func (h *streamHub) beginShutdown() {
	h.downOnce.Do(func() { close(h.down) })
}
