package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"durability/internal/serve"
)

// splitExposition classifies one /metrics body for the golden test.
// identities is every line with sample values stripped — the exposed
// metric set. exact is the subset of lines whose values are pure
// functions of the request history: everything except families whose
// name carries "_seconds" (wall-time: stage/tick/refresh/recovery
// histograms, worker nanoseconds), which may legitimately differ
// between two identically driven servers.
func splitExposition(body string) (identities, exact []string) {
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			identities = append(identities, line)
			exact = append(exact, line)
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		id := line
		if j := strings.LastIndexByte(line, ' '); j >= 0 {
			id = line[:j]
		}
		identities = append(identities, id)
		if !strings.Contains(name, "seconds") {
			exact = append(exact, line)
		}
	}
	return identities, exact
}

// TestMetricsGoldenAcrossServers is the observability half of the
// byte-identity contract: two servers driven through the same request
// sequence must expose the identical metric set (every family, every
// labeled series), and identical values on every metric that is not
// wall-time. Durations are the one sanctioned nondeterminism — if any
// other family diverges, telemetry has picked up a hidden clock, a map
// order, or a scheduling dependency.
func TestMetricsGoldenAcrossServers(t *testing.T) {
	tsA := testServer(t)
	tsB := testServer(t)
	driveFixedSequence(t, tsA)
	driveFixedSequence(t, tsB)

	bodyA := string(getBytes(t, tsA, "/metrics"))
	bodyB := string(getBytes(t, tsB, "/metrics"))
	idsA, exactA := splitExposition(bodyA)
	idsB, exactB := splitExposition(bodyB)

	if a, b := strings.Join(idsA, "\n"), strings.Join(idsB, "\n"); a != b {
		t.Errorf("metric sets diverged across identically-driven servers:\n%s\n----\n%s", a, b)
	}
	if a, b := strings.Join(exactA, "\n"), strings.Join(exactB, "\n"); a != b {
		t.Errorf("non-duration metric values diverged across identically-driven servers:\n%s\n----\n%s", a, b)
	}

	// The exposition must cover every serving subsystem.
	for _, want := range []string{
		`durserve_stage_duration_seconds_bucket{stage="admission",le="0.0001"}`,
		`durserve_stage_steps_total{stage="exec"}`,
		`durserve_stage_steps_total{stage="plan-search"}`,
		"durserve_queries_served_total 1",
		"durserve_plan_cache_misses_total",
		"durserve_batch_runs_total",
		"durserve_stream_ticks_total 3",
		"durserve_tick_refreshed_subscriptions_count 3",
		"durserve_recoveries_total 0",
		"durserve_ready 1",
	} {
		if !strings.Contains(bodyA, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// metricValue extracts the value of one exact (unlabeled) series.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				t.Fatalf("metric %s has non-integer value %q", name, v)
			}
			return n
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// TestMetricsStepAttributionMatchesStats asserts the exactness contract
// end to end over HTTP: the steps attributed to the plan-search stage
// spans equal the server's searchSteps counter, and the exec stage's
// equal its sampleSteps — both visible in the same scrape.
func TestMetricsStepAttributionMatchesStats(t *testing.T) {
	ts := testServer(t)
	driveFixedSequence(t, ts)
	postQuery(t, ts, `{"model":"queue","beta":26,"horizon":500,"re":0.2}`)

	body := string(getBytes(t, ts, "/metrics"))
	searchSpanSteps := metricValue(t, body, `durserve_stage_steps_total{stage="plan-search"}`)
	execSpanSteps := metricValue(t, body, `durserve_stage_steps_total{stage="exec"}`)
	searchSteps := metricValue(t, body, "durserve_search_steps_total")
	sampleSteps := metricValue(t, body, "durserve_sample_steps_total")

	// searchSteps is the shared plan cache's total, covering every
	// surface that resolves plans through the runner — one-shot queries
	// and standing-query refreshes alike — which is exactly the set of
	// call sites that book plan-search spans. sampleSteps is the one-shot
	// and batch sampling total, the set that books exec spans (the stream
	// engine's incremental top-ups are accounted separately, in
	// durserve_stream_fresh_steps_total).
	if searchSpanSteps != searchSteps {
		t.Errorf("plan-search span steps %d != searchSteps %d", searchSpanSteps, searchSteps)
	}
	if execSpanSteps != sampleSteps {
		t.Errorf("exec span steps %d != sampleSteps %d", execSpanSteps, sampleSteps)
	}
	if searchSpanSteps == 0 || execSpanSteps == 0 {
		t.Errorf("span steps are zero (search %d, exec %d); attribution is not wired", searchSpanSteps, execSpanSteps)
	}
}

// TestMetricsScrapeConcurrentWithTraffic hammers /metrics while queries,
// batches and ticks are in flight — the lock-free histograms and
// function-backed series must hold up under -race.
func TestMetricsScrapeConcurrentWithTraffic(t *testing.T) {
	ts := testServer(t)
	subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.25}`)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	var traffic sync.WaitGroup
	for c := 0; c < 3; c++ {
		traffic.Add(1)
		go func(c int) {
			defer traffic.Done()
			for i := 0; i < 4; i++ {
				postQuery(t, ts, fmt.Sprintf(`{"model":"walk","beta":%d,"horizon":100,"re":0.3}`, 6+c))
				postJSON(t, ts, "/batch", fmt.Sprintf(`{"model":"walk","betas":[%d,%d],"horizon":100,"re":0.3}`, 7+c, 10+c))
				postJSON(t, ts, "/tick", `{"stream":"walk","steps":1}`)
			}
		}(c)
	}
	traffic.Wait()
	close(stop)
	wg.Wait()
}

// TestReadinessGate walks the starting → replaying-wal → ready lifecycle
// against a gated mux: serving endpoints 503 until ready while liveness
// and observability stay reachable throughout.
func TestReadinessGate(t *testing.T) {
	registry := buildRegistry(modelParams{
		lambda: 0.5, mu1: 2, mu2: 2,
		u0: 15, premium: 6, claimLam: 0.8, claimLo: 5, claimHi: 10,
		sigma: 1, s0: 1000,
	})
	tel := newTelemetry()
	srv := serve.NewServer(registry, serve.Config{PoolWorkers: 2, Seed: 1, Tracer: tel.tracer})
	t.Cleanup(srv.Close)
	hub := newStreamHub(srv, registry, 0.15, 50_000_000, 1, nil, 0, tel.engine, 1)
	tel.bind(srv, hub)
	ts := httptest.NewServer(tel.gate(newMux(srv, hub, tel, &replicaSet{})))
	t.Cleanup(ts.Close)

	status := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob := make([]byte, 256)
		n, _ := resp.Body.Read(blob)
		return resp.StatusCode, strings.TrimSpace(string(blob[:n]))
	}

	for _, state := range []string{stateStarting, stateReplaying} {
		tel.setState(state)
		if code, body := status("/readyz"); code != http.StatusServiceUnavailable || body != state {
			t.Errorf("state %s: /readyz returned %d %q", state, code, body)
		}
		if code, _ := status("/healthz"); code != http.StatusOK {
			t.Errorf("state %s: /healthz returned %d, want 200 (liveness is not readiness)", state, code)
		}
		if code, _ := status("/metrics"); code != http.StatusOK {
			t.Errorf("state %s: /metrics returned %d, want 200", state, code)
		}
		if code, _ := status("/stats"); code != http.StatusServiceUnavailable {
			t.Errorf("state %s: /stats returned %d, want 503 while not ready", state, code)
		}
		if resp, _ := postQuery(t, ts, `{"model":"walk","beta":8,"horizon":100,"re":0.3}`); resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("state %s: /query returned %d, want 503 while not ready", state, resp.StatusCode)
		}
	}

	tel.setState(stateReady)
	if code, body := status("/readyz"); code != http.StatusOK || body != stateReady {
		t.Errorf("ready: /readyz returned %d %q", code, body)
	}
	if resp, _ := postQuery(t, ts, `{"model":"walk","beta":8,"horizon":100,"re":0.3}`); resp.StatusCode != http.StatusOK {
		t.Errorf("ready: /query returned %d, want 200", resp.StatusCode)
	}
}

// TestRecoveryMetricsExposed is the in-process twin of the crash drill's
// metrics assertion: a recovered durable server reports its recovery on
// /metrics.
func TestRecoveryMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	ts, hub := durableServer(t, dir)
	subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`)
	tickOnce(t, ts, "walk")
	ts.Close()
	hub.closeStores()

	ts2, _ := durableServer(t, dir)
	body := string(getBytes(t, ts2, "/metrics"))
	if got := metricValue(t, body, "durserve_recoveries_total"); got != 1 {
		t.Errorf("durserve_recoveries_total %d, want 1", got)
	}
	if got := metricValue(t, body, "durserve_wal_records_replayed_total"); got <= 0 {
		t.Errorf("durserve_wal_records_replayed_total %d, want > 0", got)
	}
}
