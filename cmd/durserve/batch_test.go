package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"durability/internal/serve"
)

func postBatch(t *testing.T, ts *httptest.Server, body string) (*http.Response, serve.BatchResponse) {
	t.Helper()
	resp, raw := postJSON(t, ts, "/batch", body)
	var out serve.BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestBatchEndpoint(t *testing.T) {
	ts := testServer(t)

	resp, first := postBatch(t, ts, `{"model":"walk","betas":[6,8,10],"horizon":100,"re":0.2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(first.Answers) != 3 || first.Thresholds != 3 {
		t.Fatalf("batch response shape: %+v", first)
	}
	for i, beta := range []float64{6, 8, 10} {
		a := first.Answers[i]
		if a.Beta != beta || a.P <= 0 || a.P >= 1 {
			t.Fatalf("answer %d: %+v", i, a)
		}
		if i > 0 && a.P > first.Answers[i-1].P {
			t.Fatalf("estimates not monotone in beta: %+v", first.Answers)
		}
	}
	if first.PlanCached || first.SearchSteps == 0 {
		t.Fatalf("first batch should pay a fresh covering search: %+v", first)
	}

	// The same ladder again: covering plan served from the cache, answers
	// reproduced bit for bit.
	_, second := postBatch(t, ts, `{"model":"walk","betas":[6,8,10],"horizon":100,"re":0.2}`)
	if !second.PlanCached || second.SearchSteps != 0 {
		t.Fatalf("second batch should hit the plan cache: %+v", second)
	}
	for i := range first.Answers {
		if second.Answers[i].P != first.Answers[i].P {
			t.Fatalf("identical batch diverged at %d: %v vs %v", i, second.Answers[i].P, first.Answers[i].P)
		}
	}
}

func TestBatchEndpointErrors(t *testing.T) {
	ts := testServer(t)
	for _, body := range []string{
		`{not json`,
		`{"model":"walk","horizon":100}`,
		`{"model":"walk","betas":[],"horizon":100}`,
		`{"model":"walk","betas":[-1],"horizon":100}`,
		`{"model":"nope","betas":[8],"horizon":100}`,
		`{"model":"walk","observer":"nope","betas":[8],"horizon":100}`,
		`{"model":"walk","betas":[8],"horizon":100,"bogus":1}`,
	} {
		resp, _ := postJSON(t, ts, "/batch", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /batch: status %d, want 405", resp.StatusCode)
	}
}

// The acceptance bar for sharded batches, through the HTTP surface: a
// daemon distributing the shared run over a worker fleet answers every
// threshold bit-for-bit as the single-machine daemon does.
func TestShardedBatchMatchesLocal(t *testing.T) {
	for _, workers := range []int{1, 2, 3} {
		sharded, local := shardedServer(t, workers)
		const body = `{"model":"walk","betas":[6,9,12],"horizon":100,"re":0.2,"seed":7}`
		sresp, sout := postBatch(t, sharded, body)
		lresp, lout := postBatch(t, local, body)
		if sresp.StatusCode != 200 || lresp.StatusCode != 200 {
			t.Fatalf("%d workers: status sharded %d, local %d", workers, sresp.StatusCode, lresp.StatusCode)
		}
		if sout.SharedSteps != lout.SharedSteps || sout.Paths != lout.Paths {
			t.Fatalf("%d workers: shared run cost differs: %d/%d vs %d/%d",
				workers, sout.SharedSteps, sout.Paths, lout.SharedSteps, lout.Paths)
		}
		for i := range lout.Answers {
			if sout.Answers[i].P != lout.Answers[i].P || sout.Answers[i].StdErr != lout.Answers[i].StdErr {
				t.Fatalf("%d workers: answer %d differs: (P=%v ± %v) vs (P=%v ± %v)", workers, i,
					sout.Answers[i].P, sout.Answers[i].StdErr, lout.Answers[i].P, lout.Answers[i].StdErr)
			}
		}
	}
}

// Concurrency and isolation: concurrent /batch, /query and /tick traffic
// against one server must never mix answers across callers — every batch
// caller gets exactly its own thresholds back, in order, with estimates
// monotone within its ladder (exact within one shared run). Run under
// -race in CI.
func TestBatchConcurrentWithQueriesAndTicks(t *testing.T) {
	registry := buildRegistry(modelParams{
		lambda: 0.5, mu1: 2, mu2: 2,
		u0: 15, premium: 6, claimLam: 0.8, claimLo: 5, claimHi: 10,
		sigma: 1, s0: 1000,
	})
	tel := newTelemetry()
	srv := serve.NewServer(registry, serve.Config{
		PoolWorkers: 4, Seed: 1, CoalesceWindow: 10 * time.Millisecond, QueueDepth: 256,
		Tracer: tel.tracer,
	})
	t.Cleanup(srv.Close)
	hub := newStreamHub(srv, registry, 0.2, 50_000_000, 1, nil, 0, tel.engine, 1)
	tel.bind(srv, hub)
	tel.setState(stateReady)
	ts := httptest.NewServer(newMux(srv, hub, tel, &replicaSet{}))
	t.Cleanup(ts.Close)

	// A live stream so /tick has something to advance.
	subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`)

	const callers = 6
	var wg sync.WaitGroup
	errs := make(chan error, callers*3)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each caller asks a distinct ladder; coalescing may merge any
			// subset of them into shared runs.
			b0 := 5 + float64(c)*0.25
			body := fmt.Sprintf(`{"model":"walk","betas":[%g,%g,%g],"horizon":100,"re":0.25}`, b0, b0+3, b0+6)
			resp, out := postBatch(t, ts, body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("caller %d: status %d", c, resp.StatusCode)
				return
			}
			if len(out.Answers) != 3 {
				errs <- fmt.Errorf("caller %d: %d answers", c, len(out.Answers))
				return
			}
			for i, want := range []float64{b0, b0 + 3, b0 + 6} {
				if out.Answers[i].Beta != want {
					errs <- fmt.Errorf("caller %d: answer %d echoes beta %v, want %v", c, i, out.Answers[i].Beta, want)
					return
				}
				if i > 0 && out.Answers[i].P > out.Answers[i-1].P {
					errs <- fmt.Errorf("caller %d: answers not monotone: %+v", c, out.Answers)
					return
				}
			}
		}(c)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"model":"walk","beta":%g,"horizon":100,"re":0.3}`, 6+float64(c)*0.5)
			resp, out := postQuery(t, ts, body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("query %d: status %d", c, resp.StatusCode)
				return
			}
			if out.P <= 0 || out.P >= 1 {
				errs <- fmt.Errorf("query %d: estimate %v", c, out.P)
			}
		}(c)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts, "/tick", `{"stream":"walk"}`)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("tick %d: status %d", c, resp.StatusCode)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := srv.Stats(); st.BatchCallers != callers {
		t.Fatalf("batch callers served = %d, want %d", st.BatchCallers, callers)
	}
}
