package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"durability/internal/persist"
	"durability/internal/replicate"
	"durability/internal/stream"
	"durability/internal/telemetry"
)

// WAL-follower replication for the HTTP daemon. A primary started with
// -data-dir exposes its store set (the hub lineage plus one per engine
// shard) through the /replicate endpoints of internal/replicate; a
// second durserve started with -follow pointed at it mirrors those
// bytes, applies complete records into warm engines as they arrive, and
// answers /readyz with "following" until it is promoted — by POST
// /promote, or automatically when the primary's lease (a successful
// manifest fetch within -lease-ttl) expires. Promotion reconciles shard
// tick divergence exactly like crash recovery does, attaches journals
// over the mirrored stores and seals them with a checkpoint; from that
// point the promoted follower serves bit-for-bit the answers the dead
// primary would have.

// ackTable is the primary-side record of follower progress: the highest
// applied LSN each follower acknowledged per store. SIGTERM waits for
// the acks to cover the final checkpoint's LSNs before the process lets
// go, so a clean handover never strands unshipped records.
type ackTable struct {
	mu      sync.Mutex
	applied map[string]int64
	seen    bool
	metrics *telemetry.ReplicaMetrics
}

func newAckTable(m *telemetry.ReplicaMetrics) *ackTable {
	return &ackTable{applied: make(map[string]int64), metrics: m}
}

// record merges one follower ack round (monotonic per store).
func (a *ackTable) record(applied map[string]int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seen = true
	a.metrics.IncAckRound()
	//durlint:ignore maporder merged into a keyed table, order-free
	for store, lsn := range applied {
		if lsn > a.applied[store] {
			a.applied[store] = lsn
		}
	}
}

// ackedLSN reports the highest acknowledged LSN for one store.
func (a *ackTable) ackedLSN(store string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied[store]
}

// everAcked reports whether any follower has ever acknowledged.
func (a *ackTable) everAcked() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seen
}

// covered reports whether acks have reached every store's final LSN.
func (a *ackTable) covered(final map[string]int64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	//durlint:ignore maporder pure conjunction over the map
	for store, lsn := range final {
		if a.applied[store] < lsn {
			return false
		}
	}
	return true
}

// waitForAcks blocks until the table covers the final LSNs or the
// timeout elapses, reporting which. Only meaningful when a follower has
// ever acked — a primary with no follower exits immediately.
func waitForAcks(at *ackTable, final map[string]int64, timeout time.Duration) bool {
	if !at.everAcked() {
		return true
	}
	deadline := time.Now().Add(timeout)
	for {
		if at.covered(final) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// replicaSet is the mux-facing replication surface: the primary's
// /replicate handler (absent on followers and on in-memory daemons) and
// the follower's promote trigger (absent everywhere else). Fields are
// installed after the listener is already serving — a follower becomes
// a replication source only once promoted — so access is mutex-guarded.
type replicaSet struct {
	mu      sync.Mutex
	handler http.Handler              // primary: /replicate/manifest|file|ack
	promote func(reason string) error // follower: POST /promote
}

// enablePrimary mounts the serving side of replication over the
// daemon's open stores.
func (r *replicaSet) enablePrimary(hs *hubStores, at *ackTable) {
	src := replicate.StoreSource{Stores: hs.byName()}
	h := replicate.NewHandler(src, at.record)
	r.mu.Lock()
	r.handler = h
	r.mu.Unlock()
}

// setPromote installs the follower's promote trigger.
func (r *replicaSet) setPromote(fn func(reason string) error) {
	r.mu.Lock()
	r.promote = fn
	r.mu.Unlock()
}

// serveReplicate proxies /replicate/* to the primary handler.
func (r *replicaSet) serveReplicate(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	h := r.handler
	r.mu.Unlock()
	if h == nil {
		httpError(w, http.StatusServiceUnavailable, errors.New("replication is not enabled (start with -data-dir, or promote this follower first)"))
		return
	}
	h.ServeHTTP(w, req)
}

// handlePromote answers POST /promote: on a follower it requests the
// (asynchronous, single-shot) promotion and answers 202 — /readyz flips
// to 200 when the takeover completes; anywhere else it answers 409.
func (r *replicaSet) handlePromote(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	fn := r.promote
	r.mu.Unlock()
	if fn == nil {
		httpError(w, http.StatusConflict, errNotFollower)
		return
	}
	if err := fn("requested via POST /promote"); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"state": "promoting"})
}

// followerHooks wires mirrored stores into the hub: the hub lineage
// restores and applies hub events (handle binds deferred until
// promotion), each shard lineage restores and applies engine events on
// its own warm shard engine.
func followerHooks(h *streamHub) func(store string) (replicate.StoreHooks, bool) {
	ctx := context.Background()
	return func(store string) (replicate.StoreHooks, bool) {
		if store == hubStoreName {
			return replicate.StoreHooks{
				Restore: func(snapPath string, found bool) error {
					if !found {
						return nil
					}
					var snap hubSnapshot
					ok, err := persist.ReadSnapshotFile(nil, snapPath, &snap)
					if err != nil {
						return err
					}
					if !ok {
						return fmt.Errorf("chosen snapshot %s unreadable", snapPath)
					}
					return h.restore(&snap)
				},
				Apply: func(lsn int64, ev any) error {
					return h.apply(ctx, lsn, ev)
				},
			}, true
		}
		var idx int
		if _, err := fmt.Sscanf(store, "shard-%04d", &idx); err != nil || idx < 0 || idx >= h.engine.Shards() {
			return replicate.StoreHooks{}, false
		}
		eng := h.engine.Shard(idx)
		return replicate.StoreHooks{
			Restore: func(snapPath string, found bool) error {
				if !found {
					return nil // EvRegistered replay rebuilds the stream
				}
				var snap stream.EngineSnapshot
				ok, err := persist.ReadSnapshotFile(nil, snapPath, &snap)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("chosen snapshot %s unreadable", snapPath)
				}
				return eng.Restore(snap, h.resolver)
			},
			Apply: func(lsn int64, ev any) error {
				jev, ok := ev.(stream.JournalEvent)
				if !ok {
					return fmt.Errorf("record lsn %d is %T, not an engine event", lsn, ev)
				}
				return eng.Apply(ctx, lsn, jev, h.resolver)
			},
		}, true
	}
}

// followerRun owns a running follower: the replication loop, its
// cancellation, and the single-shot promotion that turns the warm
// standby into the serving primary.
type followerRun struct {
	hub      *streamHub
	follower *replicate.Follower
	dataDir  string
	opts     persist.Options

	cancel  context.CancelFunc
	done    chan struct{} // closes when Run returns
	runErr  error
	promo   sync.Once
	promErr error
}

// discoverShardCount asks the primary's replication manifest how many
// shard lineages it ships, retrying until the primary answers or wait
// elapses. A follower adopts the primary's layout rather than trusting
// a local -shards flag: a mirror tracking fewer lineages than the
// primary ships would drain every lag gauge to zero while silently
// missing subscriptions, and then be refused at promotion by the hub
// snapshot's shard-count check. Discovering the count up front turns
// that late, confusing failure into a correct follower.
func discoverShardCount(source replicate.Source, wait time.Duration) (int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	var lastErr error
	logged := false
	for {
		man, err := source.Manifest(ctx)
		if err == nil {
			hub := false
			n := 0
			for _, sm := range man.Stores {
				switch {
				case sm.Name == hubStoreName:
					hub = true
				case strings.HasPrefix(sm.Name, "shard-"):
					n++
				}
			}
			if !hub || n == 0 {
				return 0, fmt.Errorf("primary manifest lists no hub+shard layout (%d stores)", len(man.Stores))
			}
			return n, nil
		}
		lastErr = err
		if !logged {
			log.Printf("durserve: primary not answering manifest requests yet (%v); retrying", err)
			logged = true
		}
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("primary never answered a manifest request: %w", lastErr)
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// startFollower builds and launches the replication loop. onExpire
// fires (once) when the primary's lease lapses; the caller decides
// whether that triggers promotion.
func startFollower(h *streamHub, source replicate.Source, dataDir string, opts persist.Options, poll, lease time.Duration, onExpire func()) *followerRun {
	fr := &followerRun{hub: h, dataDir: dataDir, opts: opts, done: make(chan struct{})}
	fr.follower = replicate.NewFollower(replicate.Config{
		Source:         source,
		Dir:            dataDir,
		Hooks:          followerHooks(h),
		Interval:       poll,
		Lease:          lease,
		OnLeaseExpired: onExpire,
	})
	ctx, cancel := context.WithCancel(context.Background())
	fr.cancel = cancel
	go func() {
		defer close(fr.done)
		fr.runErr = fr.follower.Run(ctx)
	}()
	return fr
}

// stop halts the replication loop and waits for it to settle.
func (fr *followerRun) stop() {
	fr.cancel()
	<-fr.done
	fr.follower.Close()
}

// promote turns the warm standby into the serving primary, once. The
// replication loop is stopped, lineage divergence is reconciled exactly
// like crash recovery (SyncNextSub, alignStreams, resolveBinds, orphan
// reap), and the mirrored stores — valid persist data directories by
// construction — are opened, repaired of any torn tails the dead
// primary shipped, attached as journals and sealed with a checkpoint.
// It returns the attached store set so the caller can serve /replicate
// onward and gate its own shutdown.
func (fr *followerRun) promote() (*hubStores, error) {
	fr.promo.Do(func() { fr.promErr = fr.promoteOnce() })
	if fr.promErr != nil {
		return nil, fr.promErr
	}
	fr.hub.mu.Lock()
	hs := fr.hub.stores
	fr.hub.mu.Unlock()
	return hs, nil
}

func (fr *followerRun) promoteOnce() error {
	fr.stop()
	ctx := context.Background()
	h := fr.hub
	h.engine.SyncNextSub()
	if err := h.alignStreams(ctx); err != nil {
		return fmt.Errorf("promote: aligning lineages: %w", err)
	}
	h.resolveBinds()
	h.reapOrphans()
	// The engines are already warm — Recover here only repairs torn
	// tails and positions each store's next LSN; the replayed events are
	// discarded, not re-applied.
	hs, err := openHubStores(fr.dataDir, fr.opts, h.engine.Shards())
	if err != nil {
		return fmt.Errorf("promote: opening mirror: %w", err)
	}
	for i, st := range hs.shards {
		if _, _, err := st.Recover(&stream.EngineSnapshot{},
			func(bool) error { return nil },
			func(int64, any) error { return nil }); err != nil {
			hs.Close()
			return fmt.Errorf("promote: positioning %s: %w", shardStoreName(i), err)
		}
	}
	if _, _, err := hs.hub.Recover(&hubSnapshot{},
		func(bool) error { return nil },
		func(int64, any) error { return nil }); err != nil {
		hs.Close()
		return fmt.Errorf("promote: positioning %s: %w", hubStoreName, err)
	}
	h.mu.Lock()
	h.stores = hs
	h.mu.Unlock()
	for i, st := range hs.shards {
		h.engine.Shard(i).SetJournal(persist.EngineJournal{Store: st})
	}
	if err := h.checkpoint(); err != nil {
		return fmt.Errorf("promote: sealing checkpoint: %w", err)
	}
	return nil
}

// bindFollowerMetrics surfaces the follower's per-store replication lag
// on /metrics: bytes and records behind the primary's manifest, and
// whether the lineage has restored into the warm engine.
func (t *telemetrySet) bindFollowerMetrics(f *replicate.Follower, names []string) {
	t.lagsFn = f.Lags
	for _, name := range names {
		name := name
		l := telemetry.Label{Name: "store", Value: name}
		t.registry.GaugeFunc("durserve_follower_lag_bytes",
			"Shipped-byte lag behind the primary's manifest, per replicated store.",
			func() float64 { return float64(f.Lags()[name].Bytes) }, l)
		t.registry.GaugeFunc("durserve_follower_lag_records",
			"Applied-record lag behind the primary's next LSN, per replicated store (0 when the primary's LSN is unknown).",
			func() float64 { return float64(f.Lags()[name].Records) }, l)
		t.registry.GaugeFunc("durserve_follower_restored",
			"1 once the store's lineage has restored into the warm engine.",
			func() float64 {
				if f.Lags()[name].Restored {
					return 1
				}
				return 0
			}, l)
	}
}

// bindAckMetrics surfaces the primary-side follower-ack table.
func (t *telemetrySet) bindAckMetrics(at *ackTable, names []string) {
	for _, name := range names {
		name := name
		t.registry.GaugeFunc("durserve_follower_acked_lsn",
			"Highest applied LSN a follower acknowledged, per replicated store.",
			func() float64 { return float64(at.ackedLSN(name)) },
			telemetry.Label{Name: "store", Value: name})
	}
}

// finalShutdown writes the final checkpoint across every lineage and,
// when a follower has been acking, waits for it to confirm the final
// LSNs so the handover strands nothing. Returns an error only for the
// checkpoint; an ack timeout is logged, not fatal — the follower can
// still recover from the shipped bytes.
func finalShutdown(h *streamHub, at *ackTable, ackWait time.Duration) error {
	if err := h.checkpoint(); err != nil {
		return err
	}
	h.mu.Lock()
	hs := h.stores
	h.mu.Unlock()
	if hs == nil || at == nil {
		return nil
	}
	final := hs.lastLSNs()
	if !waitForAcks(at, final, ackWait) {
		log.Printf("durserve: follower did not acknowledge final LSNs within %s (have %s)", ackWait, ackSummary(at, final))
	}
	return nil
}

// ackSummary renders the ack shortfall for the shutdown log line.
func ackSummary(at *ackTable, final map[string]int64) string {
	names := make([]string, 0, len(final))
	//durlint:ignore maporder sorted immediately below
	for name := range final {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, name+"="+strconv.FormatInt(at.ackedLSN(name), 10)+"/"+strconv.FormatInt(final[name], 10))
	}
	return strings.Join(parts, " ")
}

// errNotFollower answers POST /promote on a daemon that is not
// following anyone.
var errNotFollower = errors.New("this daemon is not a follower")
