package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"durability/internal/cluster"
	"durability/internal/exec"
	"durability/internal/serve"
)

// shardedServer builds the -workers configuration end to end: shard
// workers serving the same registry as the HTTP daemon, with both the
// query server and the stream hub on the cluster backend.
func shardedServer(t *testing.T, nWorkers int) (*httptest.Server, *httptest.Server) {
	t.Helper()
	registry := buildRegistry(modelParams{
		lambda: 0.5, mu1: 2, mu2: 2,
		u0: 15, premium: 6, claimLam: 0.8, claimLo: 5, claimHi: 10,
		sigma: 1, s0: 1000,
	})

	addrs, stop, err := cluster.ServeLocal(clusterRegistry(registry), nWorkers, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	backend := exec.NewCluster(addrs...)
	t.Cleanup(backend.Close)

	// The sharded stack carries full telemetry, worker attribution
	// included: the equality assertions below then double as proof that
	// instrumentation never touches the numerics.
	shardedTel := newTelemetry()
	backend.Metrics = shardedTel.workers
	shardedSrv := serve.NewServer(registry, serve.Config{PoolWorkers: 2, Seed: 1, Executor: backend, Tracer: shardedTel.tracer})
	t.Cleanup(shardedSrv.Close)
	shardedHub := newStreamHub(shardedSrv, registry, 0.15, 50_000_000, 1, backend, 0, shardedTel.engine, 1)
	shardedTel.bind(shardedSrv, shardedHub)
	shardedTel.setState(stateReady)
	sharded := httptest.NewServer(newMux(shardedSrv, shardedHub, shardedTel, &replicaSet{}))
	t.Cleanup(sharded.Close)

	localTel := newTelemetry()
	localSrv := serve.NewServer(registry, serve.Config{PoolWorkers: 2, Seed: 1, Executor: exec.Local{}, Tracer: localTel.tracer})
	t.Cleanup(localSrv.Close)
	localHub := newStreamHub(localSrv, registry, 0.15, 50_000_000, 1, exec.Local{}, 0, localTel.engine, 1)
	localTel.bind(localSrv, localHub)
	localTel.setState(stateReady)
	local := httptest.NewServer(newMux(localSrv, localHub, localTel, &replicaSet{}))
	t.Cleanup(local.Close)
	return sharded, local
}

// A daemon sharding across workers must answer one-shot queries and
// maintain standing queries bit-for-bit as the single-machine daemon
// does, straight through the HTTP surface.
func TestShardedDaemonMatchesLocal(t *testing.T) {
	sharded, local := shardedServer(t, 2)

	const query = `{"model":"walk","beta":12,"horizon":100,"re":0.2,"seed":7}`
	sresp, sout := postQuery(t, sharded, query)
	lresp, lout := postQuery(t, local, query)
	if sresp.StatusCode != 200 || lresp.StatusCode != 200 {
		t.Fatalf("query status sharded %d, local %d", sresp.StatusCode, lresp.StatusCode)
	}
	if sout.P != lout.P || sout.Steps != lout.Steps || sout.Paths != lout.Paths {
		t.Fatalf("sharded query (P=%v, steps=%d, paths=%d) differs from local (P=%v, steps=%d, paths=%d)",
			sout.P, sout.Steps, sout.Paths, lout.P, lout.Steps, lout.Paths)
	}

	const subBody = `{"model":"walk","beta":15,"horizon":100,"re":0.2,"seed":7}`
	ssub := subscribe(t, sharded, subBody)
	lsub := subscribe(t, local, subBody)
	if ssub.Answer.P != lsub.Answer.P || ssub.Answer.FreshSteps != lsub.Answer.FreshSteps {
		t.Fatalf("sharded initial answer (P=%v, freshSteps=%d) differs from local (P=%v, freshSteps=%d)",
			ssub.Answer.P, ssub.Answer.FreshSteps, lsub.Answer.P, lsub.Answer.FreshSteps)
	}

	// Both hubs drive the feed with the same seed, so the live states —
	// and therefore the maintained answers — stay in lockstep.
	for i := 0; i < 3; i++ {
		_, sraw := postJSON(t, sharded, "/tick", `{"stream":"walk"}`)
		_, lraw := postJSON(t, local, "/tick", `{"stream":"walk"}`)
		var stk, ltk tickResponse
		if err := json.Unmarshal(sraw, &stk); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(lraw, &ltk); err != nil {
			t.Fatal(err)
		}
		sa, la := stk.Refreshes[0].Answer, ltk.Refreshes[0].Answer
		if sa.P != la.P || sa.FreshSteps != la.FreshSteps || sa.SurvivedRoots != la.SurvivedRoots {
			t.Fatalf("tick %d: sharded answer (P=%v, fresh=%d, survived=%d) differs from local (P=%v, fresh=%d, survived=%d)",
				i+1, sa.P, sa.FreshSteps, sa.SurvivedRoots, la.P, la.FreshSteps, la.SurvivedRoots)
		}
	}

	// The sharded daemon's scrape carries the per-worker attribution
	// series, registered lazily as each worker address took its first
	// call — the local daemon exposes none of them.
	body := string(getBytes(t, sharded, "/metrics"))
	for _, want := range []string{
		"durserve_worker_calls_total{worker=",
		"durserve_worker_roots_total{worker=",
		"durserve_worker_chunk_seconds_bucket{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("sharded /metrics missing %q", want)
		}
	}
	if localBody := string(getBytes(t, local, "/metrics")); strings.Contains(localBody, "durserve_worker_") {
		t.Error("local /metrics exposes per-worker series without a cluster backend")
	}
}
