package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// The stats surfaces are part of the deterministic contract: two servers
// driven through the same request sequence must render byte-identical
// GET /stats and GET /streams payloads, and byte-identical checkpoints.
// These tests pin the sorted-iteration fixes (snapshot feed order, the
// handle/error tables persisted as sorted slices) — before them, map
// iteration order leaked into the encodings and identical states could
// serialize differently from run to run.

// driveFixedSequence issues the same request trajectory every call: two
// standing queries on different streams, a one-shot query, and a few
// ticks. Everything downstream is seeded, so two servers driven through
// it land in identical serving states.
func driveFixedSequence(t *testing.T, ts *httptest.Server) {
	t.Helper()
	subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`)
	subscribe(t, ts, `{"model":"queue","beta":26,"horizon":500,"re":0.2}`)
	postQuery(t, ts, `{"model":"walk","beta":8,"horizon":100,"re":0.2}`)
	tickOnce(t, ts, "walk")
	tickOnce(t, ts, "queue")
	tickOnce(t, ts, "walk")
}

func getBytes(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStatsEncodingByteIdentical drives two independent servers through
// the same sequence and asserts the stats JSON matches byte for byte —
// across servers (no map order in the encoding) and across repeated
// reads of one quiescent server (no hidden clock in the counters).
func TestStatsEncodingByteIdentical(t *testing.T) {
	tsA := testServer(t)
	tsB := testServer(t)
	driveFixedSequence(t, tsA)
	driveFixedSequence(t, tsB)

	for _, path := range []string{"/stats", "/streams"} {
		a := getBytes(t, tsA, path)
		b := getBytes(t, tsB, path)
		if !bytes.Equal(a, b) {
			t.Errorf("GET %s diverged across identically-driven servers:\n%s\n%s", path, a, b)
		}
		again := getBytes(t, tsA, path)
		if !bytes.Equal(a, again) {
			t.Errorf("GET %s diverged across repeated reads:\n%s\n%s", path, a, again)
		}
	}
}

// latestSnapshots returns the bytes of the newest checkpoint in each
// store lineage under dir (hub plus every shard), keyed by store name.
func latestSnapshots(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, name := range storeNames(1) {
		snaps, err := filepath.Glob(filepath.Join(dir, name, "snap-*"))
		if err != nil || len(snaps) == 0 {
			t.Fatalf("no snapshots in %s/%s (err %v)", dir, name, err)
		}
		sort.Strings(snaps)
		blob, err := os.ReadFile(snaps[len(snaps)-1])
		if err != nil {
			t.Fatal(err)
		}
		out[name] = blob
	}
	return out
}

// TestCheckpointBytesIdentical is the persistence half of the contract:
// two durable servers driven through the same sequence write
// byte-identical checkpoints. Gob encodes maps in iteration order, so
// this only holds because every map in the snapshot path is serialized
// through a sorted slice.
func TestCheckpointBytesIdentical(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	tsA, hubA := durableServer(t, dirA)
	tsB, hubB := durableServer(t, dirB)
	driveFixedSequence(t, tsA)
	driveFixedSequence(t, tsB)

	if err := hubA.checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := hubB.checkpoint(); err != nil {
		t.Fatal(err)
	}
	a, b := latestSnapshots(t, dirA), latestSnapshots(t, dirB)
	for name, blob := range a {
		if !bytes.Equal(blob, b[name]) {
			t.Fatalf("%s checkpoints of identically-driven servers differ (%d vs %d bytes)", name, len(blob), len(b[name]))
		}
	}
}
