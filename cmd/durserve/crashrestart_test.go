package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestCrashRestartProcess is the end-to-end crash drill on the real
// binary: start durserve with -data-dir, drive a subscription through
// live ticks, kill -9 the process, restart it on the same directory and
// assert the answers match an uninterrupted golden run tick for tick.
// CI runs it as its own job step.
func TestCrashRestartProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "durserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building durserve: %v", err)
	}

	const totalTicks, crashAfter = 10, 5

	// Golden: one process, never interrupted.
	golden := func() []string {
		srv := startDurserve(t, bin, "")
		defer srv.stop()
		srv.subscribe(t)
		out := make([]string, 0, totalTicks)
		for i := 0; i < totalTicks; i++ {
			out = append(out, srv.tick(t))
		}
		return out
	}()

	// Crash run: same flags plus -data-dir, killed without warning.
	dir := t.TempDir()
	srv := startDurserve(t, bin, dir)
	srv.subscribe(t)
	for i := 0; i < crashAfter; i++ {
		if got := srv.tick(t); got != golden[i] {
			t.Fatalf("pre-crash tick %d:\n got %s\nwant %s", i+1, got, golden[i])
		}
	}
	srv.kill9(t)

	restarted := startDurserve(t, bin, dir)
	defer restarted.stop()
	for i := crashAfter; i < totalTicks; i++ {
		if got := restarted.tick(t); got != golden[i] {
			t.Fatalf("post-restart tick %d:\n got %s\nwant %s", i+1, got, golden[i])
		}
	}

	// The restarted instance's /metrics must attest to the recovery: one
	// recovery performed, and the pre-crash mutations replayed out of the
	// WAL (the subscription plus crashAfter journaled ticks guarantee a
	// nonzero count even though the boot checkpoint absorbs some records).
	metrics := restarted.metrics(t)
	if !strings.Contains(metrics, "durserve_recoveries_total 1\n") {
		t.Errorf("post-restart /metrics lacks durserve_recoveries_total 1")
	}
	replayed := -1
	for _, line := range strings.Split(metrics, "\n") {
		if v, ok := strings.CutPrefix(line, "durserve_wal_records_replayed_total "); ok {
			if n, err := strconv.Atoi(v); err == nil {
				replayed = n
			}
		}
	}
	if replayed <= 0 {
		t.Errorf("post-restart /metrics reports %d WAL records replayed, want > 0", replayed)
	}
}

// durserveProc is one running durserve child process.
type durserveProc struct {
	cmd  *exec.Cmd
	base string
}

// startDurserve launches the binary on a fresh loopback port and waits
// for /readyz — the listener comes up before recovery, so liveness alone
// (/healthz) would let a test query race the WAL replay and bounce off
// the 503 readiness gate. dataDir == "" runs it in-memory.
func startDurserve(t *testing.T, bin, dataDir string) *durserveProc {
	t.Helper()
	addr := freeAddr(t)
	args := []string{"-addr", addr, "-pool", "2", "-seed", "1"}
	if dataDir != "" {
		args = append(args, "-data-dir", dataDir)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting durserve: %v", err)
	}
	p := &durserveProc{cmd: cmd, base: "http://" + addr}
	t.Cleanup(p.stop)
	sawLive := false
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		// Liveness first: /healthz must answer 200 even before readiness,
		// or a recovering instance would look dead to its orchestrator.
		if !sawLive {
			resp, err := http.Get(p.base + "/healthz")
			if err == nil {
				resp.Body.Close()
				sawLive = resp.StatusCode == http.StatusOK
			}
		}
		if sawLive {
			resp, err := http.Get(p.base + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return p
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("durserve on %s never became ready", addr)
	return nil
}

func (p *durserveProc) stop() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

// kill9 delivers SIGKILL — no shutdown hook, no final checkpoint.
func (p *durserveProc) kill9(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

func (p *durserveProc) subscribe(t *testing.T) {
	t.Helper()
	resp, err := http.Post(p.base+"/subscribe", "application/json",
		strings.NewReader(`{"model":"walk","beta":15,"horizon":100,"re":0.2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
}

// tick advances the walk stream once and returns the canonical JSON of
// the lone refreshed answer.
func (p *durserveProc) tick(t *testing.T) string {
	t.Helper()
	resp, err := http.Post(p.base+"/tick", "application/json",
		strings.NewReader(`{"stream":"walk","steps":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tk tickResponse
	if err := json.NewDecoder(resp.Body).Decode(&tk); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(tk.Refreshes) != 1 || tk.Refreshes[0].Error != "" {
		t.Fatalf("tick status %d, response %+v", resp.StatusCode, tk)
	}
	blob, err := json.Marshal(tk.Refreshes[0].Answer)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// metrics scrapes the process's GET /metrics exposition.
func (p *durserveProc) metrics(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(p.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// freeAddr reserves a loopback port and releases it for the child.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return fmt.Sprintf("127.0.0.1:%d", ln.Addr().(*net.TCPAddr).Port)
}
