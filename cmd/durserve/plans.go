package main

import (
	"errors"
	"net/http"

	"durability/internal/planstats"
	"durability/internal/serve"
	"durability/internal/telemetry"
)

// errPlansUnavailable answers GET /plans before bind installs the cache.
var errPlansUnavailable = errors.New("plan introspection unavailable until serving starts")

// Plan-quality introspection: GET /plans joins the plan cache (which
// plans exist, how often they are hit) with the crossing-statistics
// ledger (how those plans behave under live traffic) into one
// deterministic listing. Everything here is observability — the handler
// reads, it never influences planning.

// Drift verdicts, per plan.
const (
	verdictUnobserved    = "unobserved"     // no run has attempted any level yet
	verdictOK            = "ok"             // observed, max drift within threshold
	verdictDriftExceeded = "drift-exceeded" // observed, max drift above threshold
)

// planJSON is one cached plan in the GET /plans payload. Every field is
// a pure function of the driven traffic — no durations, no wall clock —
// so two identically driven servers render byte-identical listings.
type planJSON struct {
	Key        planstats.Key `json:"key"`
	Boundaries []float64     `json:"boundaries"`
	Ratio      int           `json:"ratio"`
	Ratios     []int         `json:"ratios,omitempty"`

	CacheHits int64 `json:"cacheHits"` // lookups the cache served for this plan
	Warmed    bool  `json:"warmed"`    // inserted from a snapshot, not searched

	// Run accounting from the ledger; zero when no run has booked yet.
	Runs  int64   `json:"runs"`
	Roots int64   `json:"roots"`
	Steps int64   `json:"steps"`
	Hits  float64 `json:"hits"`

	// Levels carries assumed vs observed per-level crossing
	// probabilities; for never-run plans the observed side is null.
	Levels   []planstats.LevelStat `json:"levels"`
	MaxDrift float64               `json:"maxDrift"`
	Verdict  string                `json:"verdict"`
}

// plansResponse is the GET /plans payload: every cached plan in
// canonical key order, plus the drift threshold the verdicts used.
type plansResponse struct {
	DriftThreshold float64    `json:"driftThreshold"`
	Plans          []planJSON `json:"plans"`
}

// plansPayload assembles the listing. Entries() is already sorted by
// key; the ledger is nil-safe, so an unwired daemon lists plans with
// assumed-only levels.
func plansPayload(cache *serve.PlanCache, ledger *planstats.Ledger, threshold float64) plansResponse {
	entries := cache.Entries()
	out := plansResponse{DriftThreshold: threshold, Plans: make([]planJSON, 0, len(entries))}
	for _, cp := range entries {
		shape := planstats.Shape{
			Boundaries: cp.Plan.Boundaries,
			Ratio:      cp.Key.Ratio,
			Ratios:     cp.Plan.Ratios,
		}
		pj := planJSON{
			Key:        serve.StatsKey(cp.Key),
			Boundaries: cp.Plan.Boundaries,
			Ratio:      cp.Key.Ratio,
			Ratios:     cp.Plan.Ratios,
			CacheHits:  cp.Hits,
			Warmed:     cp.Warmed,
			Verdict:    verdictUnobserved,
		}
		snap, ok := ledger.Snapshot(pj.Key)
		if ok && shape.Equal(planstats.Shape{Boundaries: snap.Boundaries, Ratio: snap.Ratio, Ratios: snap.Ratios}) {
			pj.Runs, pj.Roots, pj.Steps, pj.Hits = snap.Runs, snap.Roots, snap.Steps, snap.Hits
			pj.Levels, pj.MaxDrift = snap.Levels, snap.MaxDrift
			if snap.Observed {
				pj.Verdict = verdictOK
				if threshold > 0 && snap.MaxDrift > threshold {
					pj.Verdict = verdictDriftExceeded
				}
			}
		} else {
			// No booked run under this exact shape (never run, or a
			// re-search whose lineage reset hasn't booked yet): list the
			// search's assumptions with the observed side null.
			pj.Levels = planstats.Describe(shape)
		}
		out.Plans = append(out.Plans, pj)
	}
	return out
}

// bindPlanLedger wires the crossing-statistics ledger into the metric
// registry: every booking refreshes the plan's drift and age gauges and
// the threshold-exceeded counter, and GET /plans gains its data sources.
// Call it before the first booking (in main, before the server is built)
// and before bind.
func (t *telemetrySet) bindPlanLedger(ledger *planstats.Ledger, threshold float64) {
	t.ledger = ledger
	t.driftThreshold = threshold
	drift := telemetry.NewPlanDriftMetrics(t.registry, threshold)
	ledger.OnBook = func(key planstats.Key, snap planstats.Snapshot) {
		drift.Observe(telemetry.PlanDriftSample{
			Key:      key.String(),
			MaxDrift: snap.MaxDrift,
			Observed: snap.Observed,
			Runs:     snap.Runs,
		})
	}
}

// handlePlans serves GET /plans on both the serving mux and the ops
// listener. It answers 503 until bind has installed the plan cache (the
// same window in which the serving endpoints are gated anyway).
func (t *telemetrySet) handlePlans(w http.ResponseWriter, r *http.Request) {
	cache := t.planCache
	if cache == nil {
		httpError(w, http.StatusServiceUnavailable, errPlansUnavailable)
		return
	}
	writeJSON(w, http.StatusOK, plansPayload(cache, t.ledger, t.driftThreshold))
}
