package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"durability/internal/mc"
	"durability/internal/stream"
)

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func subscribe(t *testing.T, ts *httptest.Server, body string) subscribeResponse {
	t.Helper()
	resp, raw := postJSON(t, ts, "/subscribe", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d: %s", resp.StatusCode, raw)
	}
	var out subscribeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSubscribeAndTick(t *testing.T) {
	ts := testServer(t)

	sub := subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`)
	if sub.ID == "" || sub.Stream != "walk" {
		t.Fatalf("subscribe response %+v", sub)
	}
	if sub.Answer.Tick != 0 || sub.Answer.P <= 0 || sub.Answer.FreshSteps == 0 {
		t.Fatalf("initial answer %+v", sub.Answer)
	}

	// Advance the live state; the standing answer refreshes incrementally.
	resp, raw := postJSON(t, ts, "/tick", `{"stream":"walk","steps":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status %d: %s", resp.StatusCode, raw)
	}
	var tk tickResponse
	if err := json.Unmarshal(raw, &tk); err != nil {
		t.Fatal(err)
	}
	if tk.Tick != 3 || len(tk.Refreshes) != 1 {
		t.Fatalf("tick response %+v", tk)
	}
	if tk.Refreshes[0].Error != "" {
		t.Fatalf("refresh error: %s", tk.Refreshes[0].Error)
	}
	last := tk.Refreshes[0].Answer
	if last.Tick != 3 {
		t.Fatalf("refreshed answer %+v", last)
	}
	if last.FreshSteps+last.SearchSteps >= sub.Answer.FreshSteps+sub.Answer.SearchSteps {
		t.Fatalf("tick 3 cost %d steps, cold start cost %d — not incremental",
			last.FreshSteps+last.SearchSteps, sub.Answer.FreshSteps+sub.Answer.SearchSteps)
	}

	// Stream stats reflect the maintenance work.
	streamsResp, err := http.Get(ts.URL + "/streams")
	if err != nil {
		t.Fatal(err)
	}
	defer streamsResp.Body.Close()
	var st streamStats
	if err := json.NewDecoder(streamsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Subscriptions != 1 || st.Engine.Ticks != 3 || st.Engine.Refreshes != 4 {
		t.Fatalf("stream stats %+v", st)
	}
}

func TestUpdatesLongPoll(t *testing.T) {
	ts := testServer(t)
	sub := subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`)

	// Arm the long poll before the tick arrives.
	type pollResult struct {
		status int
		body   []byte
	}
	got := make(chan pollResult, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/updates?id=%s&since=0&timeoutSec=30", ts.URL, sub.ID))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		got <- pollResult{status: resp.StatusCode, body: buf.Bytes()}
	}()
	time.Sleep(20 * time.Millisecond)
	if resp, raw := postJSON(t, ts, "/tick", `{"stream":"walk"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status %d: %s", resp.StatusCode, raw)
	}
	select {
	case r := <-got:
		if r.status != http.StatusOK {
			t.Fatalf("long poll status %d: %s", r.status, r.body)
		}
		var ans answerJSON
		if err := json.Unmarshal(r.body, &ans); err != nil {
			t.Fatal(err)
		}
		if ans.Tick != 1 {
			t.Fatalf("long poll woke with tick %d, want 1", ans.Tick)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("long poll did not wake on tick")
	}

	// A poll that outlives its timeout returns 204.
	resp, err := http.Get(fmt.Sprintf("%s/updates?id=%s&since=99&timeoutSec=0.05", ts.URL, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("expired poll status %d, want 204", resp.StatusCode)
	}

	// Unsubscribing wakes in-flight polls with 410 and frees the handle
	// (later polls see 404).
	woken := make(chan pollResult, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/updates?id=%s&since=99&timeoutSec=30", ts.URL, sub.ID))
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
		woken <- pollResult{status: resp.StatusCode}
	}()
	time.Sleep(20 * time.Millisecond)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/subscribe?id="+sub.ID, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("unsubscribe status %d", delResp.StatusCode)
	}
	select {
	case r := <-woken:
		if r.status != http.StatusGone {
			t.Fatalf("poll woken by unsubscribe: status %d, want 410", r.status)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("unsubscribe did not wake the in-flight poll")
	}
	resp, err = http.Get(fmt.Sprintf("%s/updates?id=%s&since=0", ts.URL, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("poll after unsubscribe: status %d, want 404", resp.StatusCode)
	}
}

func TestSubscribeErrors(t *testing.T) {
	ts := testServer(t)
	for _, body := range []string{
		`{not json`, // malformed
		`{"model":"walk","beta":15,"horizon":100} garbage`, // trailing data
		`{"modle":"walk","beta":15,"horizon":100}`,         // unknown field (typo)
		`{"model":"nope","beta":15,"horizon":100}`,         // unknown model
		`{"model":"walk","observer":"nope","beta":15,"horizon":100}`,
		`{"model":"walk","beta":-1,"horizon":100}`,
		`{"model":"walk","beta":15,"horizon":0}`,
	} {
		resp, raw := postJSON(t, ts, "/subscribe", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d (%s), want 400", body, resp.StatusCode, raw)
		}
	}
	// A stream is bound to the model that created it.
	subscribe(t, ts, `{"stream":"shared","model":"walk","beta":15,"horizon":100,"re":0.2}`)
	if resp, raw := postJSON(t, ts, "/subscribe", `{"stream":"shared","model":"gbm","beta":1200,"horizon":100}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("model mismatch on existing stream: status %d (%s), want 400", resp.StatusCode, raw)
	}
	// Unknown stream on /tick.
	if resp, _ := postJSON(t, ts, "/tick", `{"stream":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("tick of unknown stream: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts, "/tick", `{oops`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed tick body: status %d, want 400", resp.StatusCode)
	}
	// Unknown subscription handles.
	resp, err := http.Get(ts.URL + "/updates?id=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("updates for unknown id: status %d, want 404", resp.StatusCode)
	}
}

// A degenerate pool (empty, or hitless at p=0) carries infinite variance
// or relative error; the wire form must stay encodable — encoding/json
// rejects ±Inf outright, which would truncate a 200 response mid-body.
func TestToAnswerJSONStaysEncodable(t *testing.T) {
	for _, a := range []stream.Answer{
		{Result: mc.Result{P: 0, Variance: math.Inf(1)}},   // empty pool
		{Result: mc.Result{P: 0, Variance: 0, Paths: 128}}, // hitless pool
		{Result: mc.Result{P: 0.5, Variance: math.NaN()}},  // pathological
		{Result: mc.Result{P: 1, Variance: 0}, Satisfied: true},
	} {
		j := toAnswerJSON(a)
		if _, err := json.Marshal(j); err != nil {
			t.Errorf("answer %+v does not encode: %v", a, err)
		}
		if j.CILo < 0 || j.CIHi > 1 {
			t.Errorf("CI outside [0,1]: %+v", j)
		}
	}
	degenerate := toAnswerJSON(stream.Answer{Result: mc.Result{P: 0, Variance: math.Inf(1)}})
	if degenerate.RelErr != -1 || degenerate.StdErr != -1 {
		t.Errorf("infinite quality should encode as -1: %+v", degenerate)
	}
}

// Concurrent /tick requests on one stream must serialize on the feed.
func TestConcurrentTicksSerialize(t *testing.T) {
	ts := testServer(t)
	subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, raw := postJSON(t, ts, "/tick", `{"stream":"walk","steps":3}`)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("tick status %d: %s", resp.StatusCode, raw)
			}
		}()
	}
	wg.Wait()
	resp, raw := postJSON(t, ts, "/tick", `{"stream":"walk"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status %d: %s", resp.StatusCode, raw)
	}
	var tk tickResponse
	if err := json.Unmarshal(raw, &tk); err != nil {
		t.Fatal(err)
	}
	if tk.Tick != 13 {
		t.Fatalf("tick %d after 4x3+1 serialized ticks, want 13", tk.Tick)
	}
}

// Malformed JSON on /query must be a 400, never a 500 — including bodies
// that parse but carry trailing garbage or misspelled fields.
func TestQueryMalformedBodiesAre400(t *testing.T) {
	ts := testServer(t)
	for _, body := range []string{
		`{not json`,
		`null trailing`,
		`{"model":"walk","beta":8,"horizon":100}{"model":"walk"}`, // second document
		`{"mdoel":"walk","beta":8,"horizon":100}`,                 // typo'd field
		`{"model":"walk","beta":"eight","horizon":100}`,           // wrong type
	} {
		resp, raw := postJSON(t, ts, "/query", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d (%s), want 400", body, resp.StatusCode, raw)
		}
	}
}

// A stream that fails to tick must not starve the rest of the auto-tick
// sweep (the old sweep returned on the first error), and its failures
// must be visible as per-stream counters in GET /streams.
func TestAutoTickContinuesPastFailingStream(t *testing.T) {
	ts, hub := testServerHub(t)
	subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`)

	// Inject broken feeds: they exist in the hub's sweep but were never
	// registered with the engine, so every tick of them fails. Three of
	// them make "the healthy stream happened to sort first every sweep"
	// vanishingly unlikely under the old early-return behavior.
	hub.mu.Lock()
	proc := hub.feeds["walk"].proc
	for _, name := range []string{"broken-a", "broken-b", "broken-c"} {
		hub.feeds[name] = &feed{
			model: "walk", proc: proc,
			state: proc.Initial(), src: feedSource(1, name),
		}
	}
	hub.mu.Unlock()

	const sweeps = 4
	for i := 0; i < sweeps; i++ {
		hub.autoTick(context.Background())
	}

	tick, ok := hub.engine.Tick("walk")
	if !ok || tick != sweeps {
		t.Fatalf("healthy stream at tick %d after %d sweeps, want %d (starved by a failing sibling?)", tick, sweeps, sweeps)
	}
	st := hub.stats()
	for _, name := range []string{"broken-a", "broken-b", "broken-c"} {
		if st.TickErrors[name] != sweeps {
			t.Errorf("stream %q: %d tick errors recorded, want %d", name, st.TickErrors[name], sweeps)
		}
	}
	if st.TickErrors["walk"] != 0 {
		t.Errorf("healthy stream booked %d tick errors", st.TickErrors["walk"])
	}
}

// A client abandoning its own long poll is the protocol working: the
// aborted request must drain as 204 like an expired wait, not as a 504
// server error.
func TestUpdatesAbortedLongPollIs204(t *testing.T) {
	ts, hub := testServerHub(t)
	sub := subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`)

	req := httptest.NewRequest(http.MethodGet,
		fmt.Sprintf("/updates?id=%s&since=0&timeoutSec=30", sub.ID), nil)
	ctx, cancel := context.WithCancel(req.Context())
	cancel() // the client has already gone away
	rec := httptest.NewRecorder()
	hub.handleUpdates(rec, req.WithContext(ctx))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("aborted long poll: status %d, want 204", rec.Code)
	}
}

// POST /tick with steps > 1 refreshes every subscription once per step
// but reports only the final step's refresh outcomes — one entry per
// subscription at the final tick, not steps x subscriptions. This pins
// the wire contract clients re-arm against.
func TestTickMultiStepReturnsOnlyLastStepRefreshes(t *testing.T) {
	ts := testServer(t)
	s1 := subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.2}`)
	s2 := subscribe(t, ts, `{"model":"walk","beta":18,"horizon":100,"re":0.2}`)

	resp, raw := postJSON(t, ts, "/tick", `{"stream":"walk","steps":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status %d: %s", resp.StatusCode, raw)
	}
	var tk tickResponse
	if err := json.Unmarshal(raw, &tk); err != nil {
		t.Fatal(err)
	}
	if tk.Tick != 3 {
		t.Fatalf("tick %d after steps=3, want 3", tk.Tick)
	}
	if len(tk.Refreshes) != 2 {
		t.Fatalf("%d refresh outcomes for 2 subscriptions over 3 steps, want exactly 2 (last step only)", len(tk.Refreshes))
	}
	seen := map[uint64]bool{}
	for _, r := range tk.Refreshes {
		if r.Answer.Tick != 3 {
			t.Errorf("refresh for sub %d reports tick %d, want the final tick 3", r.SubID, r.Answer.Tick)
		}
		seen[r.SubID] = true
	}
	if !seen[s1.SubID] || !seen[s2.SubID] {
		t.Fatalf("refresh outcomes cover subs %v, want both %d and %d", seen, s1.SubID, s2.SubID)
	}
}

// Concurrent /tick, /subscribe, /updates and /streams traffic against one
// hub must be data-race free (the CI race job runs this package with
// -race) and leave the stream at the exact tick count the ticks summed to.
func TestConcurrentStreamEndpoints(t *testing.T) {
	ts, hub := testServerHub(t)
	subscribe(t, ts, `{"model":"walk","beta":15,"horizon":100,"re":0.3}`)

	const (
		tickers     = 3
		ticksEach   = 5
		subscribers = 3
		pollers     = 3
	)
	var wg sync.WaitGroup
	for i := 0; i < tickers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < ticksEach; j++ {
				resp, raw := postJSON(t, ts, "/tick", `{"stream":"walk","steps":1}`)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("tick status %d: %s", resp.StatusCode, raw)
					return
				}
			}
		}()
	}
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			beta := 14 + i
			sub := subscribe(t, ts, fmt.Sprintf(`{"model":"walk","beta":%d,"horizon":100,"re":0.3}`, beta))
			resp, err := http.Get(fmt.Sprintf("%s/updates?id=%s&since=0&timeoutSec=5", ts.URL, sub.ID))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
				t.Errorf("poll status %d", resp.StatusCode)
			}
		}(i)
	}
	for i := 0; i < pollers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/streams")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}()
	}
	wg.Wait()

	if tick, _ := hub.engine.Tick("walk"); tick != tickers*ticksEach {
		t.Fatalf("stream at tick %d after %d concurrent ticks", tick, tickers*ticksEach)
	}
}
