package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/stochastic"
)

// The kernel benchmark: every built-in model run cold through GMLSS down
// the scalar recursion (stochastic.ScalarOnly hides the bulk interface)
// and down the vectorized kernel, at the same seed and step budget. The
// two paths are bit-for-bit equal by contract, so the run doubles as a
// divergence tripwire; the numbers that differ are cost, not answers:
// ns/step and steps/sec (wall-clock, informational across machines) and
// allocs/root (deterministic, guarded against the committed
// BENCH_kernel.json under the same >10% budget as the serve scenarios).
//
// BootstrapReps is held at 1: per-batch bootstrap resampling is
// estimator bookkeeping both paths share (~25% of a default run), and a
// kernel benchmark should measure the kernel.

// kernelScenario is one built-in model under a fixed splitting config.
type kernelScenario struct {
	name    string
	proc    stochastic.Process
	obs     stochastic.Observer
	beta    float64
	levels  []float64
	horizon int
}

func kernelScenarios() ([]kernelScenario, error) {
	regime, err := stochastic.NewRegimeSwitching(0,
		[][]float64{{0.95, 0.05}, {0.2, 0.8}},
		[]float64{0.01, 0.3}, []float64{0.5, 2.0}, 0)
	if err != nil {
		return nil, err
	}
	return []kernelScenario{
		{name: "gbm", proc: &stochastic.GBM{S0: 100, Mu: 0.002, Sigma: 0.08},
			obs: stochastic.ScalarValue, beta: 200, levels: []float64{0.6, 0.75, 0.9}, horizon: 50},
		{name: "walk", proc: &stochastic.RandomWalk{Start: 5, Drift: 0.2, Sigma: 2},
			obs: stochastic.ScalarValue, beta: 20, levels: []float64{0.35, 0.5, 0.65, 0.8}, horizon: 60},
		{name: "ar", proc: stochastic.NewAR([]float64{0.6, 0.3}, 1.5, 1),
			obs: stochastic.ARValue, beta: 10, levels: []float64{0.3, 0.5, 0.7, 0.9}, horizon: 50},
		{name: "cpp", proc: &stochastic.CompoundPoisson{
			U0: 10, Premium: 1, ClaimRate: 0.8, ClaimLo: 0, ClaimHi: 2,
			ImpulseProb: 0.05, ImpulseSize: 4, ImpulseAfter: 3},
			obs: stochastic.ScalarValue, beta: 25, levels: []float64{0.5, 0.65, 0.8}, horizon: 60},
		{name: "chain", proc: stochastic.BirthDeathChain(12, 0.45, 2),
			obs: stochastic.ChainIndex, beta: 9, levels: []float64{4.0 / 9, 6.0 / 9, 8.0 / 9}, horizon: 80},
		{name: "regime", proc: regime,
			obs: stochastic.RegimeValue, beta: 15, levels: []float64{0.25, 0.5, 0.75}, horizon: 50},
		{name: "queue", proc: &stochastic.TandemQueue{
			ArrivalRate: 0.5, ServiceRate1: 0.5, ServiceRate2: 0.5,
			ImpulseProb: 0.1, ImpulseSize: 3, ImpulseAfter: 2},
			obs: stochastic.Queue2Len, beta: 8, levels: []float64{0.25, 0.5, 0.75}, horizon: 60},
	}, nil
}

func (sc kernelScenario) gmlss(proc stochastic.Process, budget int64) (*core.GMLSS, error) {
	plan, err := core.NewPlan(sc.levels...)
	if err != nil {
		return nil, err
	}
	return &core.GMLSS{
		Proc:          proc,
		Query:         core.Query{Value: core.ThresholdValue(sc.obs, sc.beta), Horizon: sc.horizon},
		Plan:          plan,
		Ratio:         3,
		Stop:          mc.Budget{Steps: budget},
		Seed:          41,
		Workers:       1,
		Batch:         512,
		BootstrapReps: 1,
	}, nil
}

// kernelReport is one entry of the BENCH_kernel.json array.
type kernelReport struct {
	Model string `json:"model"`
	Roots int64  `json:"roots"`
	Steps int64  `json:"steps"` // deterministic; equal on both paths by contract

	ScalarNsPerStep   float64 `json:"scalarNsPerStep"`
	BulkNsPerStep     float64 `json:"bulkNsPerStep"`
	ScalarStepsPerSec float64 `json:"scalarStepsPerSec"`
	BulkStepsPerSec   float64 `json:"bulkStepsPerSec"`

	// Allocations per completed root, measured over a whole cold run.
	// The scalar path pays O(splits) per root (one Clone per spill plus
	// boxed states); the bulk path amortizes pooled lane state to O(1).
	ScalarAllocsPerRoot float64 `json:"scalarAllocsPerRoot"`
	BulkAllocsPerRoot   float64 `json:"bulkAllocsPerRoot"`

	// Speedup is scalar ns/step over bulk ns/step. Step cost is
	// math-bound (exp / Box-Muller normals are most of a step on the
	// built-in models), so this headline is structurally modest next to
	// the allocs/root collapse.
	Speedup float64 `json:"speedup"`
}

// timedRun measures one cold GMLSS run: wall time, steps, roots, and
// total heap allocations. Mallocs deltas are exact counts, so the
// allocation numbers are deterministic where wall time is not.
func timedRun(ctx context.Context, g *core.GMLSS) (elapsed time.Duration, res mc.Result, allocs uint64, err error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err = g.Run(ctx)
	elapsed = time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, res, after.Mallocs - before.Mallocs, err
}

// runKernelBench produces the BENCH_kernel.json array. Each path runs
// reps times and keeps the fastest wall clock; allocations come from the
// last run (they are identical across runs).
func runKernelBench(ctx context.Context, budget int64, reps int) ([]kernelReport, error) {
	scenarios, err := kernelScenarios()
	if err != nil {
		return nil, err
	}
	out := make([]kernelReport, 0, len(scenarios))
	for _, sc := range scenarios {
		bulk, err := sc.gmlss(sc.proc, budget)
		if err != nil {
			return nil, err
		}
		scalar, err := sc.gmlss(stochastic.ScalarOnly(sc.proc), budget)
		if err != nil {
			return nil, err
		}

		var bulkRes, scalarRes mc.Result
		var bulkNs, scalarNs float64
		var bulkAllocs, scalarAllocs uint64
		for i := 0; i < reps; i++ {
			el, res, al, err := timedRun(ctx, bulk)
			if err != nil {
				return nil, fmt.Errorf("kernel %s bulk: %w", sc.name, err)
			}
			if ns := float64(el.Nanoseconds()); i == 0 || ns < bulkNs {
				bulkNs = ns
			}
			bulkRes, bulkAllocs = res, al

			el, res, al, err = timedRun(ctx, scalar)
			if err != nil {
				return nil, fmt.Errorf("kernel %s scalar: %w", sc.name, err)
			}
			if ns := float64(el.Nanoseconds()); i == 0 || ns < scalarNs {
				scalarNs = ns
			}
			scalarRes, scalarAllocs = res, al
		}

		// The divergence tripwire: the two paths must produce the same
		// answer, not just similar costs.
		if scalarRes.P != bulkRes.P || scalarRes.Steps != bulkRes.Steps ||
			scalarRes.Paths != bulkRes.Paths || scalarRes.Hits != bulkRes.Hits {
			return nil, fmt.Errorf("kernel %s: bulk diverged from scalar: P %v vs %v, steps %d vs %d, roots %d vs %d, hits %d vs %d",
				sc.name, bulkRes.P, scalarRes.P, bulkRes.Steps, scalarRes.Steps,
				bulkRes.Paths, scalarRes.Paths, bulkRes.Hits, scalarRes.Hits)
		}

		r := kernelReport{
			Model:               sc.name,
			Roots:               bulkRes.Paths,
			Steps:               bulkRes.Steps,
			ScalarNsPerStep:     scalarNs / float64(bulkRes.Steps),
			BulkNsPerStep:       bulkNs / float64(bulkRes.Steps),
			ScalarAllocsPerRoot: float64(scalarAllocs) / float64(bulkRes.Paths),
			BulkAllocsPerRoot:   float64(bulkAllocs) / float64(bulkRes.Paths),
		}
		r.ScalarStepsPerSec = 1e9 / r.ScalarNsPerStep
		r.BulkStepsPerSec = 1e9 / r.BulkNsPerStep
		r.Speedup = r.ScalarNsPerStep / r.BulkNsPerStep
		out = append(out, r)
	}
	return out, nil
}

// loadKernelBaseline reads a committed BENCH_kernel.json, with the same
// missing-file-guards-nothing contract as loadBaseline.
func loadKernelBaseline(path string) ([]kernelReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("durbench: reading kernel baseline %s: %w", path, err)
	}
	var base []kernelReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return nil, fmt.Errorf("durbench: parsing kernel baseline %s: %w", path, err)
	}
	return base, nil
}

// checkKernelRegression guards the deterministic kernel quantities
// against the committed baseline: allocs/root on either path may grow at
// most the guard budget (plus half an allocation of absolute slack — the
// bulk numbers sit near zero, where a ratio alone is too twitchy).
// Wall-clock numbers are recorded, not guarded: ns/step is a property of
// the machine as much as the code.
func checkKernelRegression(base, fresh []kernelReport) error {
	byModel := map[string]kernelReport{}
	for _, old := range base {
		byModel[old.Model] = old
	}
	for _, r := range fresh {
		old, ok := byModel[r.Model]
		if !ok {
			continue
		}
		if r.BulkAllocsPerRoot > guardBudget*old.BulkAllocsPerRoot+0.5 {
			return fmt.Errorf("durbench: kernel %s bulk allocs/root regressed: %.3f vs committed %.3f (>%.0f%% budget)",
				r.Model, r.BulkAllocsPerRoot, old.BulkAllocsPerRoot, 100*(guardBudget-1))
		}
		if r.ScalarAllocsPerRoot > guardBudget*old.ScalarAllocsPerRoot+0.5 {
			return fmt.Errorf("durbench: kernel %s scalar allocs/root regressed: %.3f vs committed %.3f (>%.0f%% budget)",
				r.Model, r.ScalarAllocsPerRoot, old.ScalarAllocsPerRoot, 100*(guardBudget-1))
		}
	}
	return nil
}
