package main

import (
	"context"
	"fmt"

	"durability/internal/cluster"
	"durability/internal/core"
	"durability/internal/exec"
	"durability/internal/mc"
	"durability/internal/planstats"
	"durability/internal/serve"
	"durability/internal/stochastic"
	"durability/internal/telemetry"
)

// runPlanQuality measures what the §5.2 level search is worth: the same
// threshold query answered to the same relative-error target once under
// the searched plan and once under a deliberately mis-specified one.
// The mis-specification keeps only every other searched boundary — an
// under-split ladder whose per-level crossing probabilities are roughly
// the square of the designed 1/ratio, so each level costs more variance
// than the search budgeted for. Both step counts are pure functions of
// the seed, so scripts/bench guards them like the batch and recovery
// scenarios; the ratio is the plan-quality headline GET /plans' drift
// verdicts exist to protect.
//
// The scenario thresholds at pqBeta rather than the shared beta: plan
// quality only matters in the rare-event regime. At the maintenance
// threshold (p ~ 0.1) the search settles on a single boundary, and a
// one-boundary ladder costs the same wherever the boundary sits — the
// penalty would measure nothing.
func runPlanQuality(ctx context.Context, re float64, seed uint64) (benchReport, error) {
	const ratio = 3
	const pqBeta = 170 // p ~ 2e-3 at the shared GBM parameters
	market := &stochastic.GBM{S0: s0, Mu: mu, Sigma: sigma}
	runner := &serve.Runner{} // no cache: the search runs at the query's own threshold and seed
	spec := serve.Spec{
		Proc:       market,
		Obs:        stochastic.ScalarValue,
		ModelID:    "gbm",
		ObserverID: "price",
		Beta:       pqBeta,
		Horizon:    horizon,
		Method:     serve.GMLSS,
		PlanMode:   serve.PlanAuto,
		Ratio:      ratio,
		Seed:       seed,
		SimWorkers: 1,
		Stop:       mc.Any{mc.RETarget{Target: re}},
	}
	res, meta, err := runner.Run(ctx, spec)
	if err != nil {
		return benchReport{}, fmt.Errorf("plan-quality searched run: %w", err)
	}
	plannedSteps := res.Steps - meta.SearchSteps // sampling only: the misplanned side pays no search

	bad := core.Plan{}
	for i := 0; i < len(meta.Plan.Boundaries); i += 2 {
		bad.Boundaries = append(bad.Boundaries, meta.Plan.Boundaries[i])
	}
	if len(bad.Boundaries) == len(meta.Plan.Boundaries) {
		// A one-boundary searched plan survives halving intact; misplace
		// the single boundary instead.
		bad.Boundaries = []float64{0.5}
	}
	mspec := spec
	mspec.PlanMode = serve.PlanFixed
	mspec.Plan = bad
	mres, _, err := runner.Run(ctx, mspec)
	if err != nil {
		return benchReport{}, fmt.Errorf("plan-quality misplanned run: %w", err)
	}

	pairHist := telemetry.NewHistogram(telemetry.SizeBuckets)
	pairHist.Observe(float64(plannedSteps))
	pairHist.Observe(float64(mres.Steps))
	return benchReport{
		Scenario:        fmt.Sprintf("plan-quality gbm(s0=%.0f) beta=%.0f horizon=%d ratio=%d", s0, float64(pqBeta), horizon, ratio),
		Backend:         "local",
		RelErr:          re,
		PlannedSteps:    plannedSteps,
		MisplannedSteps: mres.Steps,
		Speedup:         float64(mres.Steps) / float64(plannedSteps),
		StepsHistogram:  histJSON(pairHist),
	}, nil
}

// checkPlanObservation is the ledger's exactness drill, the crossing-
// statistics sibling of checkAttribution: a server with a ledger answers
// a handful of queries, and the ledger's booked roots and steps must
// equal the responses' own counters exactly — not within a tolerance —
// because both sides count the same events. The drill runs on the local
// backend and on an in-process cluster backend; each backend's ledger
// must match that backend's own responses (the two backends sample in
// different round sizes, so their absolute counts differ — exactness is
// a per-run property, and on the cluster side it holds because the
// coordinator folds shard replies in root-range order before booking).
func checkPlanObservation(ctx context.Context, re float64, seed uint64) error {
	betas := []float64{120, 126, 130}

	run := func(backend exec.Executor) ([]planstats.Snapshot, int64, int64, error) {
		ledger := planstats.NewLedger()
		reg := serve.Registry{
			"gbm": func() (stochastic.Process, map[string]stochastic.Observer, error) {
				return &stochastic.GBM{S0: s0, Mu: mu, Sigma: sigma}, map[string]stochastic.Observer{"value": stochastic.ScalarValue}, nil
			},
		}
		srv := serve.NewServer(reg, serve.Config{PoolWorkers: 2, Seed: seed, DefaultRelErr: re, Executor: backend, Ledger: ledger})
		defer srv.Close()
		var roots, steps int64
		for _, b := range betas {
			resp, err := srv.Do(ctx, serve.Request{Model: "gbm", Beta: b, Horizon: horizon, RelErr: re})
			if err != nil {
				return nil, 0, 0, fmt.Errorf("observation query beta=%.0f: %w", b, err)
			}
			roots += resp.Paths
			steps += resp.Steps - resp.SearchSteps // the ledger books sampling cost only
		}
		return ledger.Snapshots(), roots, steps, nil
	}

	exact := func(name string, backend exec.Executor) error {
		snaps, roots, steps, err := run(backend)
		if err != nil {
			return err
		}
		if len(snaps) == 0 {
			return fmt.Errorf("durbench: %s plan ledger booked nothing; observation is not wired", name)
		}
		var bookedRoots, bookedSteps int64
		for _, snap := range snaps {
			bookedRoots += snap.Roots
			bookedSteps += snap.Steps
		}
		if bookedRoots != roots {
			return fmt.Errorf("durbench: %s ledger booked %d roots != responses' %d paths", name, bookedRoots, roots)
		}
		if bookedSteps != steps {
			return fmt.Errorf("durbench: %s ledger booked %d steps != responses' %d sampling steps", name, bookedSteps, steps)
		}
		return nil
	}

	if err := exact("local", nil); err != nil {
		return err
	}

	// The cluster side: the coordinator books the deltas it folded out of
	// shard replies, so the same `==` must hold behind the rpc seam.
	addrs, stop, err := cluster.ServeLocal(cluster.Registry{
		"gbm": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return &stochastic.GBM{S0: s0, Mu: mu, Sigma: sigma}, map[string]stochastic.Observer{"value": stochastic.ScalarValue}, nil
		},
	}, 2, 2)
	if err != nil {
		return err
	}
	defer stop()
	backend := exec.NewCluster(addrs...)
	defer backend.Close()

	return exact("cluster", backend)
}
