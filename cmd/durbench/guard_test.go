package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBaseline commits a synthetic BENCH_serve.json and loads it back
// through the same decode path main uses.
func writeBaseline(t *testing.T, contents string) []benchReport {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatalf("loadBaseline: %v", err)
	}
	return base
}

const syntheticBaseline = `[
  {"scenario": "ladder", "backend": "local", "relErrTarget": 0.1,
   "thresholds": 10, "batchSteps": 100000, "perQuerySteps": 2000000, "speedup": 20},
  {"scenario": "recovery", "backend": "local", "relErrTarget": 0.1,
   "recoverySteps": 50000, "coldRestartSteps": 500000, "speedup": 10}
]`

// TestBatchGuardTrips is the guard's own regression test: the >10%
// tripwire must fire at +10.1% and stay quiet at +9%.
func TestBatchGuardTrips(t *testing.T) {
	base := writeBaseline(t, syntheticBaseline)

	regressed := benchReport{Scenario: "ladder", RelErr: 0.1, BatchSteps: 110100} // +10.1%
	err := checkBatchRegression(base, regressed)
	if err == nil {
		t.Fatalf("guard did not trip at +10.1%% (%d vs %d)", regressed.BatchSteps, 100000)
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("unexpected guard error: %v", err)
	}

	within := benchReport{Scenario: "ladder", RelErr: 0.1, BatchSteps: 109000} // +9%
	if err := checkBatchRegression(base, within); err != nil {
		t.Fatalf("guard tripped inside the 10%% budget: %v", err)
	}

	exact := benchReport{Scenario: "ladder", RelErr: 0.1, BatchSteps: 110000} // exactly +10%
	if err := checkBatchRegression(base, exact); err != nil {
		t.Fatalf("guard tripped at exactly +10%% (budget is exclusive): %v", err)
	}
}

// TestRecoveryGuardTrips mirrors the batch guard assertions for the
// recovery scenario.
func TestRecoveryGuardTrips(t *testing.T) {
	base := writeBaseline(t, syntheticBaseline)

	regressed := benchReport{Scenario: "recovery", RelErr: 0.1, RecoverySteps: 56000} // +12%
	if err := checkRecoveryRegression(base, regressed); err == nil {
		t.Fatal("recovery guard did not trip at +12%")
	}

	within := benchReport{Scenario: "recovery", RelErr: 0.1, RecoverySteps: 54500} // +9%
	if err := checkRecoveryRegression(base, within); err != nil {
		t.Fatalf("recovery guard tripped inside the 10%% budget: %v", err)
	}
}

// TestGuardMatchesScenarioAndTarget pins the matching rules: a fresh
// report only guards against baselines with the same scenario name and
// relative-error target, and baselines without the scenario's step
// counter guard nothing.
func TestGuardMatchesScenarioAndTarget(t *testing.T) {
	base := writeBaseline(t, syntheticBaseline)

	otherScenario := benchReport{Scenario: "other", RelErr: 0.1, BatchSteps: 10_000_000}
	if err := checkBatchRegression(base, otherScenario); err != nil {
		t.Fatalf("guard matched a different scenario: %v", err)
	}
	otherTarget := benchReport{Scenario: "ladder", RelErr: 0.05, BatchSteps: 10_000_000}
	if err := checkBatchRegression(base, otherTarget); err != nil {
		t.Fatalf("guard matched a different RE target: %v", err)
	}
	// The recovery entry has no BatchSteps: it must not batch-guard.
	viaRecovery := benchReport{Scenario: "recovery", RelErr: 0.1, BatchSteps: 10_000_000}
	if err := checkBatchRegression(base, viaRecovery); err != nil {
		t.Fatalf("batch guard matched a recovery-only baseline: %v", err)
	}
}

// TestGuardRefusesInformationalFields pins the refusal: wall-clock
// readings are typed *wallClock, and asking the guard to compare one is
// an error — not a silent skip — as is naming any field that is not an
// int64 step counter. The refusal is structural (the field's type), so
// no future scenario can accidentally put a machine-dependent number
// under the regression gate.
func TestGuardRefusesInformationalFields(t *testing.T) {
	fresh := benchReport{Scenario: "failover", FailoverSteps: 1, FailoverMillis: informational(12)}
	if err := checkStepRegression(nil, fresh, "failover", "failoverMillis", false); err == nil || !strings.Contains(err.Error(), "informational") {
		t.Fatalf("guard agreed to compare a wall-clock field: %v", err)
	}
	if err := checkStepRegression(nil, fresh, "failover", "p99TickMillis", false); err == nil || !strings.Contains(err.Error(), "informational") {
		t.Fatalf("guard agreed to compare p99TickMillis (nil reading must still refuse): %v", err)
	}
	if err := checkStepRegression(nil, fresh, "failover", "speedup", false); err == nil {
		t.Fatal("guard agreed to compare a float field")
	}
	if err := checkStepRegression(nil, fresh, "failover", "noSuchField", false); err == nil {
		t.Fatal("guard agreed to compare a nonexistent field")
	}
	if err := checkStepRegression(nil, fresh, "failover", "failoverSteps", false); err != nil {
		t.Fatalf("guard refused a legitimate step counter: %v", err)
	}
}

// TestLoadBaseline pins the loader's contract: missing file guards
// nothing, malformed file is an error, not a silently skipped guard.
func TestLoadBaseline(t *testing.T) {
	if base, err := loadBaseline(filepath.Join(t.TempDir(), "absent.json")); err != nil || base != nil {
		t.Fatalf("missing baseline: got %v, %v; want nil, nil", base, err)
	}
	path := filepath.Join(t.TempDir(), "broken.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(path); err == nil {
		t.Fatal("malformed baseline silently accepted")
	}
}
