package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"
)

// guardBudget is the tolerated cost growth for the deterministic
// scenarios: a fresh run may cost at most 10% more steps than the
// committed baseline before the guard trips.
const guardBudget = 1.10

// loadBaseline reads a committed BENCH_serve.json. A missing file guards
// nothing (first run records, later runs enforce); a malformed one is an
// error — a guard silently skipped by a typo is worse than no guard.
func loadBaseline(path string) ([]benchReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("durbench: reading baseline %s: %w", path, err)
	}
	var base []benchReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return nil, fmt.Errorf("durbench: parsing baseline %s: %w", path, err)
	}
	return base, nil
}

// stepCounter resolves one of benchReport's deterministic step counters
// by its JSON tag. Resolving reflectively is what lets the guard refuse
// wrong fields by construction rather than by reviewer vigilance: a
// *wallClock field is informational (machine-dependent wall time) and
// guarding it would flake on every slow CI runner, so asking for one is
// an error — not a skip — and the same goes for any field that is not an
// int64 step count.
func stepCounter(r benchReport, jsonTag string) (int64, error) {
	v := reflect.ValueOf(r)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		tag, _, _ := strings.Cut(t.Field(i).Tag.Get("json"), ",")
		if tag != jsonTag {
			continue
		}
		f := v.Field(i)
		if _, ok := f.Interface().(*wallClock); ok {
			return 0, fmt.Errorf("durbench: %q is an informational wall-clock reading — refusing to guard it", jsonTag)
		}
		if f.Kind() != reflect.Int64 {
			return 0, fmt.Errorf("durbench: %q is %s, not an int64 step counter — refusing to guard it", jsonTag, f.Kind())
		}
		return f.Int(), nil
	}
	return 0, fmt.Errorf("durbench: benchReport has no field %q", jsonTag)
}

// checkStepRegression is the shared >10% tripwire: the fresh scenario's
// step counter (named by JSON tag) may exceed the matching committed
// scenario's by at most the guard budget. Matching requires the same
// scenario name — and, when matchRE is set, the same relative-error
// target; a baseline without the counter (zero) guards nothing.
func checkStepRegression(base []benchReport, fresh benchReport, name, jsonTag string, matchRE bool) error {
	freshSteps, err := stepCounter(fresh, jsonTag)
	if err != nil {
		return err
	}
	for _, old := range base {
		oldSteps, err := stepCounter(old, jsonTag)
		if err != nil {
			return err
		}
		if oldSteps <= 0 || old.Scenario != fresh.Scenario || (matchRE && old.RelErr != fresh.RelErr) {
			continue
		}
		if float64(freshSteps) > guardBudget*float64(oldSteps) {
			return fmt.Errorf("durbench: %s scenario regressed: %d steps vs committed %d (+%.1f%%, >%.0f%% budget)",
				name, freshSteps, oldSteps,
				100*(float64(freshSteps)/float64(oldSteps)-1), 100*(guardBudget-1))
		}
		fmt.Printf("durbench: %s guard ok: %d steps vs committed %d\n", name, freshSteps, oldSteps)
	}
	return nil
}

// checkBatchRegression guards the batch scenario's total steps — the CI
// tripwire for the batch path's cost.
func checkBatchRegression(base []benchReport, fresh benchReport) error {
	return checkStepRegression(base, fresh, "batch", "batchSteps", true)
}

// checkFailoverRegression guards the failover scenario's deterministic
// steps from the drained mirror to the promoted engine's first answer
// set. The wall-clock readings (failoverMillis, p99TickMillis) are
// *wallClock fields, which stepCounter refuses by construction.
func checkFailoverRegression(base []benchReport, fresh benchReport) error {
	return checkStepRegression(base, fresh, "failover", "failoverSteps", false)
}

// checkRecoveryRegression guards the recovery scenario's deterministic
// steps-to-first-answer.
func checkRecoveryRegression(base []benchReport, fresh benchReport) error {
	return checkStepRegression(base, fresh, "recovery", "recoverySteps", true)
}

// checkPlanQualityRegression guards both sides of the plan-quality
// scenario: the searched plan's steps-to-target (the search regressing)
// and the mis-specified plan's (the sampler's sensitivity to bad plans
// shifting).
func checkPlanQualityRegression(base []benchReport, fresh benchReport) error {
	if err := checkStepRegression(base, fresh, "plan-quality(searched)", "plannedSteps", true); err != nil {
		return err
	}
	return checkStepRegression(base, fresh, "plan-quality(misplanned)", "misplannedSteps", true)
}
