package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// guardBudget is the tolerated cost growth for the deterministic
// scenarios: a fresh run may cost at most 10% more steps than the
// committed baseline before the guard trips.
const guardBudget = 1.10

// loadBaseline reads a committed BENCH_serve.json. A missing file guards
// nothing (first run records, later runs enforce); a malformed one is an
// error — a guard silently skipped by a typo is worse than no guard.
func loadBaseline(path string) ([]benchReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("durbench: reading baseline %s: %w", path, err)
	}
	var base []benchReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return nil, fmt.Errorf("durbench: parsing baseline %s: %w", path, err)
	}
	return base, nil
}

// checkBatchRegression returns an error when the fresh batch scenario's
// total steps exceed the matching committed scenario's by more than the
// guard budget — the CI tripwire for the batch path's cost. A baseline
// without a matching batch scenario guards nothing.
func checkBatchRegression(base []benchReport, fresh benchReport) error {
	for _, old := range base {
		if old.BatchSteps <= 0 || old.Scenario != fresh.Scenario || old.RelErr != fresh.RelErr {
			continue
		}
		if float64(fresh.BatchSteps) > guardBudget*float64(old.BatchSteps) {
			return fmt.Errorf("durbench: batch scenario regressed: %d steps vs committed %d (+%.1f%%, >%.0f%% budget)",
				fresh.BatchSteps, old.BatchSteps,
				100*(float64(fresh.BatchSteps)/float64(old.BatchSteps)-1), 100*(guardBudget-1))
		}
		fmt.Printf("durbench: batch guard ok: %d steps vs committed %d\n", fresh.BatchSteps, old.BatchSteps)
	}
	return nil
}

// checkFailoverRegression mirrors checkBatchRegression for the failover
// scenario's deterministic steps from the drained mirror to the promoted
// engine's first answer set. The wall-clock readings (FailoverMillis,
// P99TickMillis) are machine-dependent and deliberately unguarded.
func checkFailoverRegression(base []benchReport, fresh benchReport) error {
	for _, old := range base {
		if old.FailoverSteps <= 0 || old.Scenario != fresh.Scenario {
			continue
		}
		if float64(fresh.FailoverSteps) > guardBudget*float64(old.FailoverSteps) {
			return fmt.Errorf("durbench: failover scenario regressed: %d steps vs committed %d (+%.1f%%, >%.0f%% budget)",
				fresh.FailoverSteps, old.FailoverSteps,
				100*(float64(fresh.FailoverSteps)/float64(old.FailoverSteps)-1), 100*(guardBudget-1))
		}
		fmt.Printf("durbench: failover guard ok: %d steps vs committed %d\n", fresh.FailoverSteps, old.FailoverSteps)
	}
	return nil
}

// checkRecoveryRegression mirrors checkBatchRegression for the recovery
// scenario's deterministic steps-to-first-answer.
func checkRecoveryRegression(base []benchReport, fresh benchReport) error {
	for _, old := range base {
		if old.RecoverySteps <= 0 || old.Scenario != fresh.Scenario || old.RelErr != fresh.RelErr {
			continue
		}
		if float64(fresh.RecoverySteps) > guardBudget*float64(old.RecoverySteps) {
			return fmt.Errorf("durbench: recovery scenario regressed: %d steps vs committed %d (+%.1f%%, >%.0f%% budget)",
				fresh.RecoverySteps, old.RecoverySteps,
				100*(float64(fresh.RecoverySteps)/float64(old.RecoverySteps)-1), 100*(guardBudget-1))
		}
		fmt.Printf("durbench: recovery guard ok: %d steps vs committed %d\n", fresh.RecoverySteps, old.RecoverySteps)
	}
	return nil
}
