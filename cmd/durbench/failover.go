package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"durability/internal/mc"
	"durability/internal/persist"
	"durability/internal/replicate"
	"durability/internal/rng"
	"durability/internal/stochastic"
	"durability/internal/stream"
)

// runFailover measures the sharded standing-query engine under
// subscription load with a warm WAL-follower attached — the
// partitioned-serving headline. A ShardedEngine carries `subs`
// budget-capped subscriptions partitioned across `shards` consistent-hash
// shards, each shard journaling to its own checkpoint+WAL lineage; a
// replicate.Follower mirrors those lineages continuously and applies
// ticks as they ship. The primary ticks through `ticks` states (per-tick
// wall latency recorded), then dies without warning; the follower drains
// the shipped tail, a second engine is promoted, and the scenario
// reports:
//
//   - P99TickMillis: tail tick latency under the full subscription load
//     (wall time — machine-dependent, recorded but not guarded);
//   - FailoverMillis: wall time from the crash to the promoted engine's
//     first full set of maintained answers (also unguarded);
//   - FailoverSteps: fresh simulation steps the promoted engine pays
//     from its drained state to that first answer set (plan-search
//     steps excluded — see statsSum). Deterministic at the fixed seed —
//     scripts/bench guards it against regression like the batch and
//     recovery scenarios;
//   - Speedup: the warm takeover's step cost against rebuilding every
//     subscription from scratch (the initial registration cost).
//
// Subscriptions are deliberately cheap (tight step budgets, short
// horizons, 16 distinct plan shapes) so the scenario stresses the
// partitioning, journaling and replication machinery — fan-out, merge,
// per-lineage WAL traffic, snapshot shipping — rather than raw sampling
// throughput, which the kernel benchmark already covers.
func runFailover(ctx context.Context, shards, subs, ticks int, seed uint64) (benchReport, error) {
	primaryDir, err := os.MkdirTemp("", "durbench-failover-primary-*")
	if err != nil {
		return benchReport{}, err
	}
	defer os.RemoveAll(primaryDir)
	mirrorDir, err := os.MkdirTemp("", "durbench-failover-mirror-*")
	if err != nil {
		return benchReport{}, err
	}
	defer os.RemoveAll(mirrorDir)

	// A livelier market than the maintenance scenario's: enough per-tick
	// drift that pools genuinely churn (roots drop, top-ups replenish), so
	// every tick — including the promoted engine's first — pays real
	// maintenance, not a no-op sweep over satisfied pools.
	const failoverSigma = 0.04
	market := &stochastic.GBM{S0: s0, Mu: mu, Sigma: failoverSigma}
	observers := map[string]stochastic.Observer{"price": stochastic.ScalarValue}
	resolver := func(streamName, modelID string) (stochastic.Process, map[string]stochastic.Observer, error) {
		if modelID != "gbm-bench" {
			return nil, nil, fmt.Errorf("unknown model %q", modelID)
		}
		return &stochastic.GBM{S0: s0, Mu: mu, Sigma: failoverSigma}, observers, nil
	}
	spec := func(i int) stream.SubSpec {
		return stream.SubSpec{
			Stream:     "bench",
			Obs:        stochastic.ScalarValue,
			ObserverID: "price",
			Beta:       104 + float64(i%16),
			Horizon:    64,
			Seed:       seed + uint64(i),
			// Heterogeneous survival tolerances (0.005–0.049). All
			// subscriptions watch the one feed, so with a single
			// tolerance the fleet's maintenance cost is all-or-nothing
			// per tick: an increment inside the tolerance costs ~0 for
			// everyone, one outside rebuilds every pool at once. Spread
			// tolerances mean every tick — including the promoted
			// engine's first — drops some slice of the fleet and pays
			// real top-up work.
			DriftTol: 0.005 + 0.004*float64(i%12),
			// RETarget alone, never a Budget: Budget.Done is cumulative
			// over the pool's life, so inside an Any it would satisfy
			// every refresh after the first and zero out the per-tick
			// maintenance this scenario exists to measure. A loose RE
			// target on a near-the-money threshold keeps the initial
			// pools small while leaving drift-driven top-ups real.
			Stop: mc.Any{mc.RETarget{Target: 0.35}},
		}
	}

	// The primary: subscriptions register before the journals attach, so
	// the checkpoint below carries every pool and the WAL carries only
	// tick records — exactly the steady state of a long-lived server.
	eng := stream.NewSharded(stream.Config{}, shards, 0)
	if err := eng.RegisterModel("bench", "gbm-bench", market, market.Initial()); err != nil {
		return benchReport{}, err
	}
	// Fresh (top-up) steps only, deliberately excluding SearchSteps: the
	// shards share one plan cache and fan ticks concurrently, so which
	// shard pays a given plan search — or whether two racing shards both
	// pay it — is timing-dependent. The plan that wins is identical
	// either way, so the top-up work it drives is deterministic; only
	// the deterministic quantity is guarded (the kernel bench draws the
	// same line with allocs/root).
	statsSum := func(e *stream.ShardedEngine) int64 {
		return e.Stats().FreshSteps
	}
	for i := 0; i < subs; i++ {
		if _, err := eng.Subscribe(ctx, spec(i)); err != nil {
			return benchReport{}, fmt.Errorf("subscribing %d: %w", i, err)
		}
	}
	rebuildSteps := statsSum(eng) // what a from-scratch standby would pay

	names := make([]string, shards)
	stores := make([]*persist.Store, shards)
	for i := range stores {
		names[i] = fmt.Sprintf("shard-%04d", i)
		st, err := persist.Open(filepath.Join(primaryDir, names[i]), persist.Options{Keep: 2})
		if err != nil {
			return benchReport{}, err
		}
		defer st.Close()
		stores[i] = st
		// A fresh store still runs Recover: it positions the WAL cursor
		// (there is nothing to replay in a new directory).
		if _, _, err := st.Recover(&stream.EngineSnapshot{},
			func(bool) error { return nil },
			func(int64, any) error { return nil }); err != nil {
			return benchReport{}, err
		}
		eng.Shard(i).SetJournal(persist.EngineJournal{Store: st})
		i := i
		if err := st.Checkpoint(func() (any, error) { return eng.Shard(i).Snapshot(), nil }); err != nil {
			return benchReport{}, err
		}
	}

	// The warm follower mirrors the lineages while the primary serves.
	// Its engines start empty: the replicated snapshots rebuild the
	// stream registration (via the resolver) along with every pool.
	standby := stream.NewSharded(stream.Config{}, shards, 0)
	hooks := func(store string) (replicate.StoreHooks, bool) {
		var idx int
		if _, err := fmt.Sscanf(store, "shard-%04d", &idx); err != nil || idx < 0 || idx >= shards {
			return replicate.StoreHooks{}, false
		}
		sh := standby.Shard(idx)
		return replicate.StoreHooks{
			Restore: func(snapPath string, found bool) error {
				if !found {
					return nil
				}
				var snap stream.EngineSnapshot
				ok, err := persist.ReadSnapshotFile(nil, snapPath, &snap)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("snapshot %s unreadable", snapPath)
				}
				return sh.Restore(snap, resolver)
			},
			Apply: func(lsn int64, ev any) error {
				jev, ok := ev.(stream.JournalEvent)
				if !ok {
					return fmt.Errorf("lsn %d is %T, not an engine event", lsn, ev)
				}
				return sh.Apply(ctx, lsn, jev, resolver)
			},
		}, true
	}
	follower := replicate.NewFollower(replicate.Config{
		Source:   replicate.DirSource{Root: primaryDir, Stores: names},
		Dir:      mirrorDir,
		Hooks:    hooks,
		Interval: 10 * time.Millisecond,
	})
	followCtx, stopFollowing := context.WithCancel(ctx)
	defer stopFollowing()
	followDone := make(chan struct{})
	go func() {
		defer close(followDone)
		follower.Run(followCtx)
	}()

	// Tick through the trajectory under full load, recording per-tick
	// latency.
	feed := market.Initial()
	src := rng.NewStream(2026, 11)
	latencies := make([]float64, 0, ticks)
	var tickSteps int64
	before := statsSum(eng)
	for tick := 1; tick <= ticks; tick++ {
		market.Step(feed, tick, src)
		began := time.Now()
		if _, err := eng.Update(ctx, "bench", feed); err != nil {
			return benchReport{}, err
		}
		latencies = append(latencies, float64(time.Since(began).Milliseconds()))
	}
	tickSteps = statsSum(eng) - before

	// The crash: the primary is abandoned mid-flight — no final
	// checkpoint, no farewell to the follower.
	crashAt := time.Now()
	stopFollowing()
	<-followDone
	if err := follower.Drain(ctx); err != nil {
		return benchReport{}, fmt.Errorf("draining follower: %w", err)
	}
	follower.Close()

	// Promotion: the standby adopts the ID sequence and serves the next
	// tick. Everything the drain applied is deterministic state, so the
	// steps from here to the first answer set are a pure function of the
	// seed — the guarded number.
	standby.SyncNextSub()
	drained := statsSum(standby)
	market.Step(feed, ticks+1, src)
	refreshes, err := standby.Update(ctx, "bench", feed)
	if err != nil {
		return benchReport{}, fmt.Errorf("first post-failover tick: %w", err)
	}
	failoverMillis := float64(time.Since(crashAt).Milliseconds())
	if len(refreshes) != subs {
		return benchReport{}, fmt.Errorf("promoted engine refreshed %d subscriptions, want %d", len(refreshes), subs)
	}
	failoverSteps := statsSum(standby) - drained
	if failoverSteps <= 0 {
		failoverSteps = 1
	}

	latHist := histogramOf(latencies)
	return benchReport{
		Scenario:                fmt.Sprintf("failover gbm(s0=%.0f) subs=%d shards=%d ticks=%d", s0, subs, shards, ticks),
		Backend:                 "local",
		Ticks:                   ticks,
		RelErr:                  0,
		Subscriptions:           subs,
		ShardCount:              shards,
		FailoverSteps:           failoverSteps,
		FailoverMillis:          informational(failoverMillis),
		P99TickMillis:           informational(percentile(latencies, 0.99)),
		IncrementalStepsPerTick: float64(tickSteps) / float64(ticks),
		Speedup:                 float64(rebuildSteps) / float64(failoverSteps),
		StepsHistogram:          latHist,
	}, nil
}

// percentile returns the p-th percentile (nearest-rank) of samples; with
// few samples it degrades to the max, which is the honest reading.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// histogramOf buckets wall-latency samples into the standard size
// buckets so the report keeps the distribution, not just the p99.
func histogramOf(samples []float64) *histogramJSON {
	bounds := []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}
	counts := make([]uint64, len(bounds)+1)
	for _, s := range samples {
		i := sort.SearchFloat64s(bounds, s)
		counts[i]++
	}
	return &histogramJSON{Bounds: bounds, Counts: counts}
}
