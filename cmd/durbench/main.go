// Command durbench measures the serving layer's cost trajectory: how
// many simulator steps a query costs cold (durability.Run: level search
// plus full sampling) versus maintained incrementally as a standing
// query over a live stream (durability.Watch), at the same quality
// target. It writes the numbers as JSON — scripts/bench emits
// BENCH_serve.json at the repository root — so successive PRs can track
// the serve/stream performance trajectory.
//
//	go run ./cmd/durbench -out BENCH_serve.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"durability"
	"durability/internal/rng"
)

// benchReport is the BENCH_serve.json schema.
type benchReport struct {
	Scenario string  `json:"scenario"`
	Ticks    int     `json:"ticks"`
	RelErr   float64 `json:"relErrTarget"`

	// Cold path: durability.Run at sampled ticks.
	ColdRuns          int     `json:"coldRuns"`
	ColdStepsPerQuery float64 `json:"coldStepsPerQuery"`

	// Incremental path: standing-query maintenance.
	IncrementalStepsPerTick float64 `json:"incrementalStepsPerTick"`
	FreshRootsPerTick       float64 `json:"freshRootsPerTick"`
	Replans                 int64   `json:"replans"`

	// The headline: cold steps per query divided by incremental steps
	// per tick.
	Speedup float64 `json:"speedup"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_serve.json", "output path")
		ticks     = flag.Int("ticks", 500, "market ticks to maintain through")
		coldEvery = flag.Int("cold-every", 50, "cold re-run sampling interval (ticks)")
		re        = flag.Float64("re", 0.10, "relative-error target for both paths")
		seed      = flag.Uint64("seed", 42, "base random seed")
	)
	flag.Parse()

	const (
		s0      = 100.0
		beta    = 130.0
		horizon = 250
	)
	ctx := context.Background()
	market := &durability.GBM{S0: s0, Mu: 0.0003, Sigma: 0.01}
	query := durability.Query{Z: durability.ScalarValue, Beta: beta, Horizon: horizon, ZName: "price"}
	target := []durability.Option{
		durability.WithRelativeErrorTarget(*re),
		durability.WithSeed(*seed),
	}

	session, err := durability.NewSession(market, target...)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := session.Watch(ctx, "bench", query)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()

	feed := market.Initial()
	src := rng.NewStream(2026, 0)
	var incSteps, coldSteps, freshRoots int64
	coldRuns := 0
	for tick := 1; tick <= *ticks; tick++ {
		market.Step(feed, tick, src)
		refreshes, err := session.Publish(ctx, "bench", feed)
		if err != nil {
			log.Fatal(err)
		}
		if refreshes[0].Err != nil {
			log.Fatal(refreshes[0].Err)
		}
		ans := refreshes[0].Answer
		incSteps += ans.FreshSteps + ans.SearchSteps
		freshRoots += ans.FreshRoots

		if tick%*coldEvery != 0 || ans.Satisfied {
			continue
		}
		price := durability.ScalarValue(feed)
		cold, err := durability.Run(ctx,
			&durability.GBM{S0: price, Mu: market.Mu, Sigma: market.Sigma}, query, target...)
		if err != nil {
			log.Fatal(err)
		}
		coldSteps += cold.Steps
		coldRuns++
	}
	if coldRuns == 0 {
		log.Fatal("durbench: no cold run completed (stream stayed above threshold?)")
	}

	report := benchReport{
		Scenario:                fmt.Sprintf("gbm(s0=%.0f) beta=%.0f horizon=%d", s0, beta, horizon),
		Ticks:                   *ticks,
		RelErr:                  *re,
		ColdRuns:                coldRuns,
		ColdStepsPerQuery:       float64(coldSteps) / float64(coldRuns),
		IncrementalStepsPerTick: float64(incSteps) / float64(*ticks),
		FreshRootsPerTick:       float64(freshRoots) / float64(*ticks),
		Replans:                 session.StreamStats().Replans,
	}
	report.Speedup = report.ColdStepsPerQuery / report.IncrementalStepsPerTick

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("durbench: cold %.0f steps/query, incremental %.0f steps/tick (%.1fx) -> %s\n",
		report.ColdStepsPerQuery, report.IncrementalStepsPerTick, report.Speedup, *out)
}
