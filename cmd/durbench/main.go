// Command durbench measures the serving layer's cost trajectory: how
// many simulator steps a query costs cold (durability.Run: level search
// plus full sampling) versus maintained incrementally as a standing
// query over a live stream (durability.Watch), at the same quality
// target — and, when -workers > 0, the same maintenance sharded across
// an in-process worker fleet through the execution seam of
// internal/exec. A third scenario measures the batch answering path: a
// 10-threshold ladder answered by one shared splitting run
// (durability.RunBatch) against ten independent Run calls. It writes the
// numbers as a JSON array — scripts/bench emits BENCH_serve.json at the
// repository root — so successive PRs can track the serve/stream/batch
// performance trajectory; with -baseline it doubles as a regression
// guard, failing when the batch scenario's deterministic step count
// regresses more than 10% against the committed numbers.
//
//	go run ./cmd/durbench -out BENCH_serve.json -baseline BENCH_serve.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"durability"
	"durability/internal/cluster"
	"durability/internal/exec"
	"durability/internal/mc"
	"durability/internal/rng"
	"durability/internal/serve"
	"durability/internal/stochastic"
	"durability/internal/stream"
	"durability/internal/telemetry"
)

// histogramJSON is a telemetry histogram's deterministic face: bucket
// bounds and counts. Step counts are pure functions of the seed, so
// these distributions are comparable across machines and commits, which
// single per-scenario averages are not — a regression that moves the
// tail without moving the mean shows up here first.
type histogramJSON struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

func histJSON(h *telemetry.Histogram) *histogramJSON {
	snap := h.Snapshot()
	return &histogramJSON{Bounds: snap.Bounds, Counts: snap.Counts}
}

// wallClock is a machine-dependent wall-time reading. Informational is
// always true in emitted reports: it marks the number as recorded for
// the trajectory only, and the guard refuses to compare any field of
// this type — a wall-clock regression gate would flake on every slow CI
// runner.
type wallClock struct {
	Millis        float64 `json:"millis"`
	Informational bool    `json:"informational"`
}

func informational(ms float64) *wallClock {
	return &wallClock{Millis: ms, Informational: true}
}

// benchReport is one entry of the BENCH_serve.json array.
type benchReport struct {
	Scenario string  `json:"scenario"`
	Backend  string  `json:"backend"`
	Ticks    int     `json:"ticks,omitempty"`
	RelErr   float64 `json:"relErrTarget"`

	// Cold path: durability.Run at sampled ticks (local scenario only).
	ColdRuns          int     `json:"coldRuns,omitempty"`
	ColdStepsPerQuery float64 `json:"coldStepsPerQuery,omitempty"`

	// Incremental path: standing-query maintenance.
	IncrementalStepsPerTick float64 `json:"incrementalStepsPerTick,omitempty"`
	FreshRootsPerTick       float64 `json:"freshRootsPerTick,omitempty"`
	Replans                 int64   `json:"replans,omitempty"`

	// Batch path: one shared splitting run answering a threshold ladder
	// (the batch scenario only). BatchSteps is deterministic at a fixed
	// seed, which is what lets scripts/bench guard it against regression.
	Thresholds    int   `json:"thresholds,omitempty"`
	BatchSteps    int64 `json:"batchSteps,omitempty"`
	PerQuerySteps int64 `json:"perQuerySteps,omitempty"`

	// Recovery path: a durable session crash-restarted from its data
	// directory (the recovery scenario only). RecoverySteps is the
	// simulator cost from reopening to the first maintained answer —
	// WAL-tail replay plus the first tick's top-up over the restored
	// pool; ColdRestartSteps is what a server with no data directory pays
	// for the same first answer (full level search plus pool fill). Both
	// are deterministic at a fixed seed, so scripts/bench guards
	// RecoverySteps against regression alongside the batch scenario.
	RecoverySteps    int64 `json:"recoverySteps,omitempty"`
	ColdRestartSteps int64 `json:"coldRestartSteps,omitempty"`

	// Failover path: a sharded engine under subscription load with a warm
	// WAL follower, crashed and promoted (the failover scenario only).
	// FailoverSteps — the simulator cost from the drained mirror to the
	// promoted engine's first full answer set — is deterministic at the
	// fixed seed and guarded like the batch and recovery scenarios;
	// FailoverMillis and P99TickMillis are wall-clock readings, marked
	// informational in the JSON so nothing — human or guard — mistakes
	// them for comparable numbers.
	Subscriptions  int        `json:"subscriptions,omitempty"`
	ShardCount     int        `json:"shardCount,omitempty"`
	FailoverSteps  int64      `json:"failoverSteps,omitempty"`
	FailoverMillis *wallClock `json:"failoverMillis,omitempty"`
	P99TickMillis  *wallClock `json:"p99TickMillis,omitempty"`

	// Plan-quality path: the same query answered under the searched level
	// plan and under a deliberately mis-specified one, steps to the same
	// relative-error target each (the plan-quality scenario only). Both
	// are deterministic at the fixed seed and sit under the >10% guard —
	// PlannedSteps regressing means the search got worse, MisplannedSteps
	// moving means the sampler's sensitivity to bad plans changed.
	PlannedSteps    int64 `json:"plannedSteps,omitempty"`
	MisplannedSteps int64 `json:"misplannedSteps,omitempty"`

	// The headline: cold steps per query divided by incremental steps per
	// tick (stream scenarios; the sharded scenario reuses the local cold
	// baseline — the cold path is the same either way), per-query steps
	// divided by batch steps (batch scenario), cold-restart steps divided
	// by recovery steps (recovery scenario), or from-scratch rebuild steps
	// divided by failover steps (failover scenario).
	Speedup float64 `json:"speedup"`

	// StepsHistogram is the scenario's per-unit step distribution:
	// per-tick maintenance steps (stream scenarios), per-threshold
	// independent-query steps (batch), or the recovery/cold-restart pair
	// (recovery). Deterministic at the fixed seed.
	StepsHistogram *histogramJSON `json:"stepsHistogram,omitempty"`
}

const (
	s0      = 100.0
	beta    = 130.0
	horizon = 250
	mu      = 0.0003
	sigma   = 0.01
)

func main() {
	var (
		out       = flag.String("out", "BENCH_serve.json", "output path")
		ticks     = flag.Int("ticks", 500, "market ticks to maintain through")
		coldEvery = flag.Int("cold-every", 50, "cold re-run sampling interval (ticks)")
		re        = flag.Float64("re", 0.10, "relative-error target for both paths")
		seed      = flag.Uint64("seed", 42, "base random seed")
		workers   = flag.Int("workers", 2, "in-process shard workers for the sharded scenario (0 = skip)")
		baseline  = flag.String("baseline", "", "committed BENCH_serve.json to guard against: fail if the batch scenario's steps regress >10%")

		failoverSubs   = flag.Int("failover-subs", 100_000, "failover scenario: standing subscriptions on the sharded engine (0 = skip the scenario)")
		failoverShards = flag.Int("failover-shards", 4, "failover scenario: engine shards")
		failoverTicks  = flag.Int("failover-ticks", 4, "failover scenario: ticks under load before the crash")

		kernelOut      = flag.String("kernel-out", "", "write the kernel benchmark (scalar vs bulk per model) to this path (empty = skip)")
		kernelBaseline = flag.String("kernel-baseline", "", "committed BENCH_kernel.json to guard against: fail if allocs/root regress >10%")
		kernelBudget   = flag.Int64("kernel-budget", 1_000_000, "step budget per kernel scenario run")
		kernelReps     = flag.Int("kernel-reps", 2, "timed repetitions per kernel scenario (fastest wins)")
	)
	flag.Parse()

	// Read the committed baseline before anything overwrites it — the
	// guard compares against what was checked in, not what this run wrote.
	var base []benchReport
	if *baseline != "" {
		var err error
		if base, err = loadBaseline(*baseline); err != nil {
			log.Fatal(err)
		}
	}

	ctx := context.Background()
	market := &durability.GBM{S0: s0, Mu: mu, Sigma: sigma}
	query := durability.Query{Z: durability.ScalarValue, Beta: beta, Horizon: horizon, ZName: "price"}
	target := []durability.Option{
		durability.WithRelativeErrorTarget(*re),
		durability.WithSeed(*seed),
	}

	session, err := durability.NewSession(market, target...)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := session.Watch(ctx, "bench", query)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()

	feed := market.Initial()
	src := rng.NewStream(2026, 0)
	tickHist := telemetry.NewHistogram(telemetry.SizeBuckets)
	var incSteps, coldSteps, freshRoots int64
	coldRuns := 0
	for tick := 1; tick <= *ticks; tick++ {
		market.Step(feed, tick, src)
		refreshes, err := session.Publish(ctx, "bench", feed)
		if err != nil {
			log.Fatal(err)
		}
		if refreshes[0].Err != nil {
			log.Fatal(refreshes[0].Err)
		}
		ans := refreshes[0].Answer
		incSteps += ans.FreshSteps + ans.SearchSteps
		freshRoots += ans.FreshRoots
		tickHist.Observe(float64(ans.FreshSteps + ans.SearchSteps))

		if tick%*coldEvery != 0 || ans.Satisfied {
			continue
		}
		price := durability.ScalarValue(feed)
		cold, err := durability.Run(ctx,
			&durability.GBM{S0: price, Mu: market.Mu, Sigma: market.Sigma}, query, target...)
		if err != nil {
			log.Fatal(err)
		}
		coldSteps += cold.Steps
		coldRuns++
	}
	if coldRuns == 0 {
		log.Fatal("durbench: no cold run completed (stream stayed above threshold?)")
	}

	local := benchReport{
		Scenario:                fmt.Sprintf("gbm(s0=%.0f) beta=%.0f horizon=%d", s0, beta, horizon),
		Backend:                 "local",
		Ticks:                   *ticks,
		RelErr:                  *re,
		ColdRuns:                coldRuns,
		ColdStepsPerQuery:       float64(coldSteps) / float64(coldRuns),
		IncrementalStepsPerTick: float64(incSteps) / float64(*ticks),
		FreshRootsPerTick:       float64(freshRoots) / float64(*ticks),
		Replans:                 session.StreamStats().Replans,
		StepsHistogram:          histJSON(tickHist),
	}
	local.Speedup = local.ColdStepsPerQuery / local.IncrementalStepsPerTick
	reports := []benchReport{local}

	if *workers > 0 {
		sharded, err := runSharded(ctx, *workers, *ticks, *re, *seed)
		if err != nil {
			log.Fatal(err)
		}
		sharded.ColdRuns = 0
		sharded.Speedup = local.ColdStepsPerQuery / sharded.IncrementalStepsPerTick
		// The two scenarios resolve their subscription settings through
		// different paths (the public Session options vs a hand-built
		// stream.SubSpec in runSharded); the headline claim is that equal
		// settings make the backends' costs bit-for-bit equal, so if the
		// paths ever drift apart the comparison must announce itself as
		// broken rather than quietly compare two configurations.
		if sharded.IncrementalStepsPerTick != local.IncrementalStepsPerTick {
			log.Printf("durbench: WARNING: sharded scenario diverged from local (%.3f vs %.3f steps/tick) — runSharded's SubSpec no longer mirrors the Session defaults",
				sharded.IncrementalStepsPerTick, local.IncrementalStepsPerTick)
		}
		reports = append(reports, sharded)
	}

	batch, err := runBatchLadder(ctx, *re, *seed)
	if err != nil {
		log.Fatal(err)
	}
	reports = append(reports, batch)
	if err := checkBatchRegression(base, batch); err != nil {
		log.Fatal(err)
	}

	recovery, err := runRecovery(ctx, *re, *seed)
	if err != nil {
		log.Fatal(err)
	}
	reports = append(reports, recovery)
	if err := checkRecoveryRegression(base, recovery); err != nil {
		log.Fatal(err)
	}

	planQuality, err := runPlanQuality(ctx, *re, *seed)
	if err != nil {
		log.Fatal(err)
	}
	reports = append(reports, planQuality)
	if err := checkPlanQualityRegression(base, planQuality); err != nil {
		log.Fatal(err)
	}

	if *failoverSubs > 0 {
		failover, err := runFailover(ctx, *failoverShards, *failoverSubs, *failoverTicks, *seed)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, failover)
		if err := checkFailoverRegression(base, failover); err != nil {
			log.Fatal(err)
		}
	}

	if *kernelOut != "" {
		var kernelBase []kernelReport
		if *kernelBaseline != "" {
			if kernelBase, err = loadKernelBaseline(*kernelBaseline); err != nil {
				log.Fatal(err)
			}
		}
		kernel, err := runKernelBench(ctx, *kernelBudget, *kernelReps)
		if err != nil {
			log.Fatal(err)
		}
		if err := checkKernelRegression(kernelBase, kernel); err != nil {
			log.Fatal(err)
		}
		blob, err := json.MarshalIndent(kernel, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*kernelOut, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		for _, r := range kernel {
			fmt.Printf("durbench[kernel/%s]: bulk %.1f ns/step (%.2fx vs scalar %.1f), allocs/root %.2f vs scalar %.1f\n",
				r.Model, r.BulkNsPerStep, r.Speedup, r.ScalarNsPerStep, r.BulkAllocsPerRoot, r.ScalarAllocsPerRoot)
		}
		fmt.Printf("durbench: wrote %d kernel scenarios -> %s\n", len(kernel), *kernelOut)
	}

	// Totals sit under the >10% baseline guards above; span attribution
	// is held to a stricter standard — exact equality at the fixed seed.
	if err := checkAttribution(ctx, *re, *seed); err != nil {
		log.Fatal(err)
	}
	fmt.Println("durbench: span step attribution exact (plan-search == searchSteps, exec == sampleSteps)")

	// Same standard for the crossing-statistics ledger: what GET /plans
	// would report must equal the runs' own counters exactly, and the
	// cluster backend must book bit-for-bit what the local backend books.
	if err := checkPlanObservation(ctx, *re, *seed); err != nil {
		log.Fatal(err)
	}
	fmt.Println("durbench: plan-ledger observation exact (booked roots/steps == run counters, local and cluster)")

	blob, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		if r.BatchSteps > 0 {
			fmt.Printf("durbench[%s]: batch %d steps for %d thresholds (%.1fx vs per-query %d steps)\n",
				r.Backend, r.BatchSteps, r.Thresholds, r.Speedup, r.PerQuerySteps)
			continue
		}
		if r.RecoverySteps > 0 {
			fmt.Printf("durbench[%s]: recovery warm-start %d steps to first answer (%.1fx vs cold restart %d steps)\n",
				r.Backend, r.RecoverySteps, r.Speedup, r.ColdRestartSteps)
			continue
		}
		if r.FailoverSteps > 0 {
			fmt.Printf("durbench[%s]: failover %d subs/%d shards: first answers %.0fms after crash, %d steps (%.1fx vs rebuild), p99 tick %.0fms\n",
				r.Backend, r.Subscriptions, r.ShardCount, r.FailoverMillis.Millis, r.FailoverSteps, r.Speedup, r.P99TickMillis.Millis)
			continue
		}
		if r.PlannedSteps > 0 {
			fmt.Printf("durbench[%s]: plan-quality searched plan %d steps vs mis-specified %d (%.1fx penalty)\n",
				r.Backend, r.PlannedSteps, r.MisplannedSteps, r.Speedup)
			continue
		}
		fmt.Printf("durbench[%s]: incremental %.0f steps/tick (%.1fx vs cold %.0f steps/query)\n",
			r.Backend, r.IncrementalStepsPerTick, r.Speedup, local.ColdStepsPerQuery)
	}
	fmt.Printf("durbench: wrote %d scenarios -> %s\n", len(reports), *out)
}

// runBatchLadder measures the batch answering path: a 10-threshold profit
// ladder over the GBM market answered by one shared splitting run
// (durability.RunBatch, the examples/threshold-ladder scenario), against
// ten independent durability.Run calls at the same relative-error target.
// Both sides are deterministic at the fixed seed, so the numbers are
// comparable across machines and guardable across commits.
func runBatchLadder(ctx context.Context, re float64, seed uint64) (benchReport, error) {
	market := &durability.GBM{S0: s0, Mu: mu, Sigma: sigma}
	const thresholds = 10
	queries := make([]durability.Query, thresholds)
	for i := range queries {
		queries[i] = durability.Query{
			Z: durability.ScalarValue, Beta: 112 + 2*float64(i), Horizon: horizon, ZName: "price",
		}
	}
	opts := []durability.Option{
		durability.WithRelativeErrorTarget(re),
		durability.WithSeed(seed),
	}
	session, err := durability.NewSession(market, opts...)
	if err != nil {
		return benchReport{}, err
	}
	if _, err := session.RunBatch(ctx, queries); err != nil {
		return benchReport{}, err
	}
	batchSteps := session.Stats().TotalSteps()

	var perQuery int64
	queryHist := telemetry.NewHistogram(telemetry.SizeBuckets)
	for _, q := range queries {
		res, err := durability.Run(ctx, market, q, opts...)
		if err != nil {
			return benchReport{}, err
		}
		perQuery += res.Steps
		queryHist.Observe(float64(res.Steps))
	}
	return benchReport{
		Scenario:       fmt.Sprintf("batch-ladder gbm(s0=%.0f) betas=112..130 horizon=%d", s0, horizon),
		Backend:        "local",
		RelErr:         re,
		Thresholds:     thresholds,
		BatchSteps:     batchSteps,
		PerQuerySteps:  perQuery,
		Speedup:        float64(perQuery) / float64(batchSteps),
		StepsHistogram: histJSON(queryHist),
	}, nil
}

// runRecovery measures the persist layer's restart economics: a durable
// session (checkpoint + WAL in a scratch directory) maintains the
// standing query through a tick history, checkpoints on its normal
// cadence, takes a few more ticks and dies without warning. The
// restarted server's cost to its first maintained answer — WAL-tail
// replay plus one top-up over the restored root pool — is compared with
// a cold restart paying the full level search and pool fill at the same
// market state. Deterministic at the fixed seed, so regressions trip the
// baseline guard.
func runRecovery(ctx context.Context, re float64, seed uint64) (benchReport, error) {
	const (
		recoveryTicks = 60
		tailTicks     = 5 // ticks between the last checkpoint and the crash
	)
	dir, err := os.MkdirTemp("", "durbench-recovery-*")
	if err != nil {
		return benchReport{}, err
	}
	defer os.RemoveAll(dir)

	market := &durability.GBM{S0: s0, Mu: mu, Sigma: sigma}
	query := durability.Query{Z: durability.ScalarValue, Beta: beta, Horizon: horizon, ZName: "price"}
	observers := map[string]durability.Observer{"price": durability.ScalarValue}
	opts := []durability.Option{
		durability.WithRelativeErrorTarget(re),
		durability.WithSeed(seed),
	}

	prices := make([]float64, recoveryTicks+1)
	feed := market.Initial()
	src := rng.NewStream(2026, 7)
	for i := range prices {
		market.Step(feed, i+1, src)
		prices[i] = durability.ScalarValue(feed)
	}

	session, err := durability.OpenSession(market, dir, observers, opts...)
	if err != nil {
		return benchReport{}, err
	}
	if _, err := session.Watch(ctx, "bench", query); err != nil {
		return benchReport{}, err
	}
	var atCheckpoint durability.StreamStats
	for i := 0; i < recoveryTicks; i++ {
		if _, err := session.Publish(ctx, "bench", &durability.Scalar{V: prices[i]}); err != nil {
			return benchReport{}, err
		}
		if i == recoveryTicks-tailTicks-1 {
			if err := session.Checkpoint(); err != nil {
				return benchReport{}, err
			}
			atCheckpoint = session.StreamStats()
		}
	}
	// The crash: the session is abandoned — no Close, no final checkpoint.

	recovered, err := durability.OpenSession(market, dir, observers, opts...)
	if err != nil {
		return benchReport{}, err
	}
	defer recovered.Close()
	if _, err := recovered.Publish(ctx, "bench", &durability.Scalar{V: prices[recoveryTicks]}); err != nil {
		return benchReport{}, err
	}
	after := recovered.StreamStats()
	recoverySteps := (after.FreshSteps + after.SearchSteps) - (atCheckpoint.FreshSteps + atCheckpoint.SearchSteps)

	cold, err := durability.NewSession(market, opts...)
	if err != nil {
		return benchReport{}, err
	}
	if _, err := cold.Publish(ctx, "bench", &durability.Scalar{V: prices[recoveryTicks]}); err != nil {
		return benchReport{}, err
	}
	coldSub, err := cold.Watch(ctx, "bench", query)
	if err != nil {
		return benchReport{}, err
	}
	defer coldSub.Close()
	coldSteps := coldSub.Answer().FreshSteps + coldSub.Answer().SearchSteps

	if recoverySteps <= 0 {
		recoverySteps = 1 // a fully satisfied restored pool: count the lookup as one step
	}
	pairHist := telemetry.NewHistogram(telemetry.SizeBuckets)
	pairHist.Observe(float64(recoverySteps))
	pairHist.Observe(float64(coldSteps))
	return benchReport{
		Scenario:         fmt.Sprintf("recovery gbm(s0=%.0f) beta=%.0f horizon=%d ticks=%d tail=%d", s0, beta, horizon, recoveryTicks, tailTicks),
		Backend:          "local",
		RelErr:           re,
		RecoverySteps:    recoverySteps,
		ColdRestartSteps: coldSteps,
		Speedup:          float64(coldSteps) / float64(recoverySteps),
		StepsHistogram:   histJSON(pairHist),
	}, nil
}

// runSharded maintains the same standing query over the cluster
// execution backend: n in-process rpc workers on loopback listeners,
// each rebuilding the market model from its registry. The live feed is
// driven by the same seeds as the local scenario, so the maintained
// answers — not just the costs — are directly comparable.
func runSharded(ctx context.Context, n, ticks int, re float64, seed uint64) (benchReport, error) {
	// The observer is registered under the name the local scenario keys
	// its plans with ("price", the query's ZName), so both scenarios
	// search identical plans and their costs compare like for like.
	reg := cluster.Registry{
		"gbm-bench": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return &stochastic.GBM{S0: s0, Mu: mu, Sigma: sigma}, map[string]stochastic.Observer{"price": stochastic.ScalarValue}, nil
		},
	}
	addrs, stop, err := cluster.ServeLocal(reg, n, 2)
	if err != nil {
		return benchReport{}, err
	}
	defer stop()
	backend := exec.NewCluster(addrs...)
	defer backend.Close()

	market := &stochastic.GBM{S0: s0, Mu: mu, Sigma: sigma}
	eng := stream.NewEngine(stream.Config{Exec: backend})
	if err := eng.RegisterModel("bench", "gbm-bench", market, market.Initial()); err != nil {
		return benchReport{}, err
	}
	sub, err := eng.Subscribe(ctx, stream.SubSpec{
		Stream:     "bench",
		Obs:        stochastic.ScalarValue,
		ObserverID: "price",
		Beta:       beta,
		Horizon:    horizon,
		Seed:       seed,
		Stop:       mc.Any{mc.RETarget{Target: re}},
	})
	if err != nil {
		return benchReport{}, err
	}
	defer sub.Close()

	feed := market.Initial()
	src := rng.NewStream(2026, 0)
	tickHist := telemetry.NewHistogram(telemetry.SizeBuckets)
	var incSteps, freshRoots int64
	for tick := 1; tick <= ticks; tick++ {
		market.Step(feed, tick, src)
		refreshes, err := eng.Update(ctx, "bench", feed)
		if err != nil {
			return benchReport{}, err
		}
		if refreshes[0].Err != nil {
			return benchReport{}, refreshes[0].Err
		}
		ans := refreshes[0].Answer
		incSteps += ans.FreshSteps + ans.SearchSteps
		freshRoots += ans.FreshRoots
		tickHist.Observe(float64(ans.FreshSteps + ans.SearchSteps))
	}
	return benchReport{
		Scenario:                fmt.Sprintf("gbm(s0=%.0f) beta=%.0f horizon=%d", s0, beta, horizon),
		Backend:                 fmt.Sprintf("cluster(%d workers)", n),
		Ticks:                   ticks,
		RelErr:                  re,
		IncrementalStepsPerTick: float64(incSteps) / float64(ticks),
		FreshRootsPerTick:       float64(freshRoots) / float64(ticks),
		Replans:                 eng.Stats().Replans,
		StepsHistogram:          histJSON(tickHist),
	}, nil
}

// checkAttribution is the step-attribution exactness drill: a traced
// serve.Server answers a handful of one-shot queries and one batch
// ladder, then the steps booked on the tracer's plan-search and exec
// spans are required to equal the server's searchSteps and sampleSteps
// counters exactly — not within a tolerance. The totals above get a 10%
// regression allowance because plans legitimately shift; attribution
// has no such excuse, since both sides count the same events.
func checkAttribution(ctx context.Context, re float64, seed uint64) error {
	reg := serve.Registry{
		"gbm": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return &stochastic.GBM{S0: s0, Mu: mu, Sigma: sigma}, map[string]stochastic.Observer{"value": stochastic.ScalarValue}, nil
		},
	}
	tracer := telemetry.NewTracer(nil)
	srv := serve.NewServer(reg, serve.Config{PoolWorkers: 2, Seed: seed, DefaultRelErr: re, Tracer: tracer})
	defer srv.Close()

	for _, b := range []float64{120, 126, 130} {
		if _, err := srv.Do(ctx, serve.Request{Model: "gbm", Beta: b, Horizon: horizon, RelErr: re}); err != nil {
			return fmt.Errorf("attribution query beta=%.0f: %w", b, err)
		}
	}
	if _, err := srv.DoBatch(ctx, serve.BatchRequest{Model: "gbm", Betas: []float64{112, 118, 124, 130}, Horizon: horizon, RelErr: re}); err != nil {
		return fmt.Errorf("attribution batch: %w", err)
	}

	st := srv.Stats()
	if got, want := tracer.Steps(telemetry.StagePlanSearch), st.SearchSteps; got != want {
		return fmt.Errorf("durbench: plan-search span steps %d != server searchSteps %d", got, want)
	}
	if got, want := tracer.Steps(telemetry.StageExec), st.SampleSteps; got != want {
		return fmt.Errorf("durbench: exec span steps %d != server sampleSteps %d", got, want)
	}
	if tracer.Steps(telemetry.StageExec) == 0 {
		return fmt.Errorf("durbench: exec spans booked zero steps; attribution is not wired")
	}
	return nil
}
