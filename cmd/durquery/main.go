// Command durquery answers a single durability prediction query from the
// command line.
//
// Examples:
//
//	# Chance the second queue of a critically loaded tandem queue backs up
//	# past 37 customers within 500 time units, to 10% relative error:
//	durquery -model queue -beta 37 -horizon 500 -re 0.1
//
//	# Same query with plain Monte Carlo, budget-capped:
//	durquery -model queue -beta 37 -horizon 500 -method srs -budget 5000000
//
//	# Insurance surplus reaching 450 within 500 periods (rare):
//	durquery -model cpp -beta 450 -horizon 500 -re 0.1 -workers 8
//
//	# A trained LSTM-MDN stock model (see cmd/trainrnn):
//	durquery -model rnn -weights model.gob -s0 1000 -beta 1550 -horizon 200
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"durability"
)

func main() {
	var (
		model   = flag.String("model", "queue", "model: queue | cpp | walk | gbm | rnn")
		beta    = flag.Float64("beta", 26, "threshold: query is P(value >= beta before horizon)")
		horizon = flag.Int("horizon", 500, "time horizon s")
		method  = flag.String("method", "g-mlss", "sampler: g-mlss | s-mlss | srs")
		re      = flag.Float64("re", 0, "stop at this relative error (e.g. 0.1)")
		ci      = flag.Float64("ci", 0, "stop at this relative 95% CI half-width (e.g. 0.01)")
		budget  = flag.Int64("budget", 0, "stop after this many simulator invocations")
		ratio   = flag.Int("ratio", 3, "MLSS splitting ratio")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", 1, "parallel workers")

		// queue parameters
		lambda = flag.Float64("lambda", 0.5, "queue: arrival rate")
		mu1    = flag.Float64("mu1", 2, "queue: mean service time, stage 1")
		mu2    = flag.Float64("mu2", 2, "queue: mean service time, stage 2")
		// cpp parameters
		u0       = flag.Float64("u", 15, "cpp: initial surplus")
		premium  = flag.Float64("c", 6.0, "cpp: per-step premium")
		claimLam = flag.Float64("claim-rate", 0.8, "cpp: claim rate")
		claimLo  = flag.Float64("claim-lo", 5, "cpp: claim size lower bound")
		claimHi  = flag.Float64("claim-hi", 10, "cpp: claim size upper bound")
		// walk / gbm parameters
		start = flag.Float64("start", 0, "walk: start value")
		drift = flag.Float64("drift", 0, "walk: per-step drift")
		sigma = flag.Float64("sigma", 1, "walk/gbm: per-step volatility")
		s0    = flag.Float64("s0", 1000, "gbm/rnn: initial price")
		// rnn parameters
		weights = flag.String("weights", "", "rnn: weights file from cmd/trainrnn")
	)
	flag.Parse()

	proc, obs, err := buildModel(*model, modelParams{
		lambda: *lambda, mu1: *mu1, mu2: *mu2,
		u0: *u0, premium: *premium, claimLam: *claimLam, claimLo: *claimLo, claimHi: *claimHi,
		start: *start, drift: *drift, sigma: *sigma, s0: *s0, weights: *weights,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "durquery:", err)
		os.Exit(1)
	}

	opts := []durability.Option{
		durability.WithSeed(*seed),
		durability.WithWorkers(*workers),
		durability.WithSplitRatio(*ratio),
	}
	switch *method {
	case "g-mlss":
		opts = append(opts, durability.WithMethod(durability.GMLSS))
	case "s-mlss":
		opts = append(opts, durability.WithMethod(durability.SMLSS))
	case "srs":
		opts = append(opts, durability.WithMethod(durability.SRS))
	default:
		fmt.Fprintf(os.Stderr, "durquery: unknown method %q\n", *method)
		os.Exit(1)
	}
	if *re > 0 {
		opts = append(opts, durability.WithRelativeErrorTarget(*re))
	}
	if *ci > 0 {
		opts = append(opts, durability.WithCITarget(*ci, 0.95, true))
	}
	if *budget > 0 {
		opts = append(opts, durability.WithBudget(*budget))
	}

	res, err := durability.Run(context.Background(),
		proc, durability.Query{Z: obs, Beta: *beta, Horizon: *horizon}, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "durquery:", err)
		os.Exit(1)
	}
	fmt.Printf("P(hit %v within %d) = %.6g\n", *beta, *horizon, res.P)
	fmt.Printf("95%% CI            = %v\n", res.CI(0.95))
	fmt.Printf("relative error    = %.3g\n", res.RelErr())
	fmt.Printf("simulator steps   = %d (%d root paths, %d hits)\n", res.Steps, res.Paths, res.Hits)
	fmt.Printf("wall time         = %v (variance eval %v)\n", res.Elapsed, res.VarTime)
}
