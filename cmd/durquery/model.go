package main

import (
	"fmt"
	"os"

	"durability"
)

// modelParams carries every model flag; buildModel picks what it needs.
type modelParams struct {
	lambda, mu1, mu2                        float64
	u0, premium, claimLam, claimLo, claimHi float64
	start, drift, sigma, s0                 float64
	weights                                 string
}

// buildModel constructs the requested simulation model and its observer.
func buildModel(kind string, p modelParams) (durability.Process, durability.Observer, error) {
	switch kind {
	case "queue":
		return durability.NewTandemQueue(p.lambda, p.mu1, p.mu2), durability.Queue2Len, nil
	case "cpp":
		return durability.NewCompoundPoisson(p.u0, p.premium, p.claimLam, p.claimLo, p.claimHi),
			durability.ScalarValue, nil
	case "walk":
		return &durability.RandomWalk{Start: p.start, Drift: p.drift, Sigma: p.sigma},
			durability.ScalarValue, nil
	case "gbm":
		return &durability.GBM{S0: p.s0, Mu: p.drift, Sigma: p.sigma}, durability.ScalarValue, nil
	case "rnn":
		if p.weights == "" {
			return nil, nil, fmt.Errorf("rnn model needs -weights (train one with cmd/trainrnn)")
		}
		f, err := os.Open(p.weights)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		model, err := durability.LoadStockModel(f)
		if err != nil {
			return nil, nil, err
		}
		return durability.NewStockProcess(model, p.s0, 50), durability.StockPrice, nil
	}
	return nil, nil, fmt.Errorf("unknown model %q (want queue, cpp, walk, gbm or rnn)", kind)
}
