package main

import (
	"os"
	"path/filepath"
	"testing"

	"durability"
	"durability/internal/neural"
	"durability/internal/rng"
	"durability/internal/stochastic"
)

func TestBuildModelKinds(t *testing.T) {
	base := modelParams{
		lambda: 0.5, mu1: 2, mu2: 2,
		u0: 15, premium: 6, claimLam: 0.8, claimLo: 5, claimHi: 10,
		start: 0, drift: 0, sigma: 1, s0: 100,
	}
	for _, kind := range []string{"queue", "cpp", "walk", "gbm"} {
		proc, obs, err := buildModel(kind, base)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		src := rng.New(1)
		s := proc.Initial()
		for i := 1; i <= 5; i++ {
			proc.Step(s, i, src)
		}
		_ = obs(s) // must not panic
	}
}

func TestBuildModelUnknownKind(t *testing.T) {
	if _, _, err := buildModel("bogus", modelParams{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestBuildModelRNNRequiresWeights(t *testing.T) {
	if _, _, err := buildModel("rnn", modelParams{}); err == nil {
		t.Fatal("rnn without weights accepted")
	}
	if _, _, err := buildModel("rnn", modelParams{weights: "/no/such/file"}); err == nil {
		t.Fatal("missing weights file accepted")
	}
}

func TestBuildModelRNNRoundTrip(t *testing.T) {
	// Train a tiny model, save it, and load it through buildModel — the
	// trainrnn -> durquery pipeline.
	gbm := &stochastic.GBM{S0: 500, Mu: 0, Sigma: 0.02}
	series := gbm.SeriesWithRegimes(300, rng.New(4))
	model := neural.NewModel(neural.Config{Hidden: 6, Layers: 1, Mixtures: 2, SeqLen: 20}, 5)
	if _, err := model.Train(series, 1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "weights.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	proc, obs, err := buildModel("rnn", modelParams{weights: path, s0: 500})
	if err != nil {
		t.Fatal(err)
	}
	s := proc.Initial()
	if obs(s) != 500 {
		t.Fatalf("initial price = %v", obs(s))
	}
	src := rng.New(2)
	proc.Step(s, 1, src)
	if obs(s) <= 0 {
		t.Fatalf("price after one step = %v", obs(s))
	}
	var _ durability.Process = proc
}
