package main

import (
	"go/token"
	"strings"
	"testing"

	"durability/internal/analysis"
)

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(suite) {
		t.Fatalf("empty -checks: got %d analyzers, err %v; want the whole suite", len(all), err)
	}

	two, err := selectAnalyzers("substream, maporder")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "substream" || two[1].Name != "maporder" {
		t.Fatalf("selected %v", two)
	}

	if _, err := selectAnalyzers("nope"); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("unknown analyzer accepted: %v", err)
	}
}

func TestValidateDirective(t *testing.T) {
	cases := []struct {
		d    analysis.Directive
		want string // substring of the finding, "" = valid
	}{
		{analysis.Directive{Analyzer: "detsource", Reason: "telemetry only"}, ""},
		{analysis.Directive{Analyzer: "all", Reason: "generated file"}, ""},
		{analysis.Directive{Analyzer: "", Raw: "//durlint:ignore"}, "needs an analyzer"},
		{analysis.Directive{Analyzer: "typo", Reason: "x"}, "unknown analyzer"},
		{analysis.Directive{Analyzer: "locksafe", Raw: "//durlint:ignore locksafe"}, "needs a justification"},
	}
	for _, c := range cases {
		c.d.Pos = token.Pos(1)
		got := validateDirective(c.d)
		if c.want == "" && got != "" {
			t.Errorf("directive %+v: unexpected finding %q", c.d, got)
		}
		if c.want != "" && !strings.Contains(got, c.want) {
			t.Errorf("directive %+v: finding %q, want substring %q", c.d, got, c.want)
		}
	}
}
