// Command durlint is the repository's invariant checker: a multichecker
// driving the six internal/analysis passes that statically enforce
// what the runtime `==` drills can only spot-check — deterministic
// sources (detsource), collision-free substream construction
// (substream), sorted map iteration on serialized paths (maporder), a
// closed gob registration surface (gobreg), no blocking I/O under
// locks (locksafe) and Prometheus metric-naming conventions
// (metricname).
//
//	go run ./cmd/durlint ./...            # whole tree, all checks
//	go run ./cmd/durlint -checks substream,maporder ./internal/...
//	go run ./cmd/durlint -show-suppressed ./...
//
// Findings print as file:line:col: analyzer: message and make the exit
// status 1 — CI runs durlint as its own job, so a new finding fails the
// build. A finding that is understood and accepted is suppressed in
// source with `//durlint:ignore <analyzer> <reason>` on (or directly
// above) the flagged line; the reason is mandatory and malformed
// directives are themselves findings. ARCHITECTURE.md's "Invariants"
// section documents each invariant and the suppression policy.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"durability/internal/analysis"
	"durability/internal/analysis/detsource"
	"durability/internal/analysis/gobreg"
	"durability/internal/analysis/locksafe"
	"durability/internal/analysis/maporder"
	"durability/internal/analysis/metricname"
	"durability/internal/analysis/substream"
)

// suite is every analyzer durlint drives, in report order.
var suite = []*analysis.Analyzer{
	detsource.Analyzer,
	substream.Analyzer,
	maporder.Analyzer,
	gobreg.Analyzer,
	locksafe.Analyzer,
	metricname.Analyzer,
}

func main() {
	var (
		checks         = flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
		showSuppressed = flag.Bool("show-suppressed", false, "also list findings silenced by durlint:ignore directives")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: durlint [flags] [packages]\n\nanalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	active, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "durlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "durlint:", err)
		os.Exit(2)
	}

	type located struct {
		pos  token.Position
		name string
		msg  string
	}
	var findings, suppressed []located
	for _, pkg := range prog.Targets() {
		for _, a := range active {
			pass, err := analysis.RunAnalyzer(a, prog, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "durlint:", err)
				os.Exit(2)
			}
			for _, d := range pass.Diagnostics() {
				findings = append(findings, located{prog.Fset.Position(d.Pos), d.Analyzer, d.Message})
			}
			for _, d := range pass.Suppressed() {
				suppressed = append(suppressed, located{prog.Fset.Position(d.Pos), d.Analyzer, d.Message})
			}
		}
		// Malformed suppressions are findings too: an ignore without a
		// justification defeats the policy it implements.
		for _, f := range pkg.Files {
			for _, d := range analysis.FileDirectives(prog.Fset, f) {
				if msg := validateDirective(d); msg != "" {
					findings = append(findings, located{prog.Fset.Position(d.Pos), "durlint", msg})
				}
			}
		}
	}

	sortLocated := func(s []located) {
		sort.Slice(s, func(i, j int) bool {
			a, b := s[i], s[j]
			if a.pos.Filename != b.pos.Filename {
				return a.pos.Filename < b.pos.Filename
			}
			if a.pos.Line != b.pos.Line {
				return a.pos.Line < b.pos.Line
			}
			return a.name < b.name
		})
	}
	sortLocated(findings)
	for _, f := range findings {
		fmt.Printf("%s: %s: %s\n", f.pos, f.name, f.msg)
	}
	if *showSuppressed && len(suppressed) > 0 {
		sortLocated(suppressed)
		fmt.Printf("\n%d suppressed:\n", len(suppressed))
		for _, f := range suppressed {
			fmt.Printf("%s: %s: %s (suppressed)\n", f.pos, f.name, f.msg)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "durlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -checks flag against the suite.
func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return suite, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, names())
		}
		out = append(out, a)
	}
	return out, nil
}

func names() string {
	var ns []string
	for _, a := range suite {
		ns = append(ns, a.Name)
	}
	return strings.Join(ns, ", ")
}

// validateDirective returns a finding message when the parsed ignore
// directive is malformed, or "".
func validateDirective(d analysis.Directive) string {
	known := map[string]bool{"all": true}
	for _, a := range suite {
		known[a.Name] = true
	}
	switch {
	case d.Analyzer == "":
		return fmt.Sprintf("durlint:ignore needs an analyzer and a reason: %q", d.Raw)
	case !known[d.Analyzer]:
		return fmt.Sprintf("durlint:ignore names unknown analyzer %q (have all, %s)", d.Analyzer, names())
	case d.Reason == "":
		return fmt.Sprintf("durlint:ignore %s needs a justification — the reason is the policy: %q", d.Analyzer, d.Raw)
	}
	return ""
}
