// Command trainrnn trains the LSTM-MDN stock model (the paper's §6 model
// (3)) on a synthetic daily price series and writes the weights to a file
// that cmd/durquery can load with -model rnn -weights <file>.
//
//	trainrnn -out model.gob -hidden 24 -layers 2 -epochs 10
package main

import (
	"flag"
	"fmt"
	"os"

	"durability"
	"durability/internal/neural"
	"durability/internal/rng"
	"durability/internal/stochastic"
)

func main() {
	var (
		out      = flag.String("out", "model.gob", "output weights file")
		hidden   = flag.Int("hidden", 24, "LSTM units per layer")
		layers   = flag.Int("layers", 2, "stacked LSTM layers")
		mixtures = flag.Int("mixtures", 5, "MDN mixture components")
		epochs   = flag.Int("epochs", 10, "training epochs")
		days     = flag.Int("days", 1250, "length of the synthetic training series (~5 trading years)")
		s0       = flag.Float64("s0", 1000, "series starting price")
		mu       = flag.Float64("mu", 0.0004, "per-day log drift of the synthetic series")
		sigma    = flag.Float64("sigma", 0.02, "per-day log volatility of the synthetic series")
		seed     = flag.Uint64("seed", 20150101, "series generation seed")
	)
	flag.Parse()

	gbm := &stochastic.GBM{S0: *s0, Mu: *mu, Sigma: *sigma}
	series := gbm.SeriesWithRegimes(*days, rng.New(*seed))
	fmt.Printf("training series: %d days, first %.2f, last %.2f\n", len(series), series[0], series[len(series)-1])

	model := durability.NewStockModel(neural.Config{
		Hidden: *hidden, Layers: *layers, Mixtures: *mixtures,
	}, 7)
	report, err := model.Train(series, *epochs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainrnn:", err)
		os.Exit(1)
	}
	fmt.Printf("trained %d epochs: mean NLL %.4f -> %.4f\n", report.Epochs, report.FirstLoss, report.LastLoss)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainrnn:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := model.Save(f); err != nil {
		fmt.Fprintln(os.Stderr, "trainrnn:", err)
		os.Exit(1)
	}
	fmt.Printf("weights written to %s\n", *out)
}
