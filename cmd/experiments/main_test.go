package main

import (
	"context"
	"testing"

	"durability/internal/experiments"
)

func TestCatalogWellFormed(t *testing.T) {
	cat := catalog()
	if len(cat) != 14 { // 5 tables + 9 figures
		t.Fatalf("catalog has %d entries, want 14", len(cat))
	}
	seen := map[string]bool{}
	for _, e := range cat {
		if e.id == "" || e.desc == "" || e.run == nil {
			t.Fatalf("malformed entry %+v", e)
		}
		if seen[e.id] {
			t.Fatalf("duplicate id %q", e.id)
		}
		seen[e.id] = true
	}
}

// Each runner must produce at least one non-empty report at a tiny scale.
// Only the cheapest runners are exercised here; the heavyweight ones are
// covered by the repository benchmarks.
func TestRunnersProduceReports(t *testing.T) {
	o := experiments.RunOpts{Scale: 10, Cap: 150_000, Seed: 3, Workers: 4}
	ctx := context.Background()
	for _, id := range []string{"fig6", "fig7", "table7"} {
		var run func(context.Context, experiments.RunOpts, int) ([]experiments.Report, error)
		for _, e := range catalog() {
			if e.id == id {
				run = e.run
			}
		}
		reports, err := run(ctx, o, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(reports) == 0 {
			t.Fatalf("%s produced no reports", id)
		}
		for _, r := range reports {
			if len(r.Rows) == 0 || r.String() == "" {
				t.Fatalf("%s produced an empty report", id)
			}
		}
	}
}
