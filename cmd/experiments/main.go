// Command experiments regenerates every table and figure of the paper's
// evaluation section (§6). Each experiment prints an aligned text table;
// with -md the same tables are appended to a markdown file.
//
//	experiments -list
//	experiments -run table3 -scale 2 -workers 8
//	experiments -run all -scale 4 -workers 16 -md results.md
//
// scale loosens the paper's quality targets (1 = paper fidelity: 1%
// relative CI on Medium/Small, 10% RE on Tiny/Rare). Larger scales run
// dramatically faster; the *shape* of every comparison is preserved.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"durability/internal/experiments"
)

// experiment is one regenerable table or figure.
type experiment struct {
	id   string
	desc string
	run  func(ctx context.Context, o experiments.RunOpts, runs int) ([]experiments.Report, error)
}

func catalog() []experiment {
	return []experiment{
		{"table3", "Queue model: SRS vs MLSS answers (unbiasedness)", runTable3},
		{"table4", "CPP model: SRS vs MLSS answers (unbiasedness)", runTable4},
		{"table5", "RNN model: answers and cost", runTable5},
		{"table6", "Volatile models: s-MLSS bias vs g-MLSS (fixed budget)", runTable6},
		{"table7", "In-DBMS execution (simdb stored procedures)", runTable7},
		{"fig6", "Queue model: steps and time, SRS vs MLSS", runFig6},
		{"fig7", "CPP model: steps and time, SRS vs MLSS", runFig7},
		{"fig8", "Convergence of quality over cost (3 panels)", runFig8},
		{"fig9", "g-MLSS time breakdown on volatile models", runFig9},
		{"fig10", "Splitting-ratio sweep, Small queries", runFig10},
		{"fig11", "Splitting-ratio sweep, Tiny queries", runFig11},
		{"fig12", "Level-count sweep, Small and Tiny queries", runFig12},
		{"fig13", "Greedy level partitions with s-MLSS", runFig13},
		{"fig14", "Greedy level partitions with g-MLSS (volatile)", runFig14},
	}
}

// four is the standard set of query classes from Table 2.
var four = []experiments.Class{experiments.Medium, experiments.Small, experiments.Tiny, experiments.Rare}

func main() {
	var (
		runID   = flag.String("run", "", "experiment id (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		scale   = flag.Float64("scale", 2, "quality-target scale (1 = paper fidelity)")
		runs    = flag.Int("runs", 10, "repetitions for mean±std tables (paper uses 100)")
		workers = flag.Int("workers", 8, "parallel simulation workers")
		seed    = flag.Uint64("seed", 1, "base random seed")
		cap     = flag.Int64("cap", 500_000_000, "hard per-run step budget")
		mdPath  = flag.String("md", "", "append markdown output to this file")
	)
	flag.Parse()

	cat := catalog()
	if *list || *runID == "" {
		fmt.Println("available experiments:")
		for _, e := range cat {
			fmt.Printf("  %-8s %s\n", e.id, e.desc)
		}
		fmt.Println("  all      run everything")
		return
	}

	o := experiments.RunOpts{Scale: *scale, Cap: *cap, Seed: *seed, Workers: *workers}
	ids := map[string]experiment{}
	for _, e := range cat {
		ids[e.id] = e
	}
	var selected []experiment
	if *runID == "all" {
		selected = cat
	} else {
		for _, id := range strings.Split(*runID, ",") {
			e, ok := ids[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}
	sort.SliceStable(selected, func(i, j int) bool { return selected[i].id < selected[j].id })

	var md strings.Builder
	ctx := context.Background()
	for _, e := range selected {
		fmt.Printf("== %s: %s ==\n", e.id, e.desc)
		reports, err := e.run(ctx, o, *runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		for _, r := range reports {
			fmt.Println(r.String())
			md.WriteString(r.Markdown())
		}
	}
	if *mdPath != "" {
		f, err := os.OpenFile(*mdPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if _, err := f.WriteString(md.String()); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("markdown appended to %s\n", *mdPath)
	}
}

func one(r experiments.Report, err error) ([]experiments.Report, error) {
	return []experiments.Report{r}, err
}

func runTable3(ctx context.Context, o experiments.RunOpts, runs int) ([]experiments.Report, error) {
	return one(experiments.AnswerTable(ctx, experiments.QueueSpec(), four, runs, o))
}

func runTable4(ctx context.Context, o experiments.RunOpts, runs int) ([]experiments.Report, error) {
	return one(experiments.AnswerTable(ctx, experiments.CPPSpec(), four, runs, o))
}

func runTable5(ctx context.Context, o experiments.RunOpts, _ int) ([]experiments.Report, error) {
	spec := experiments.StockSpec()
	classes := []experiments.Class{experiments.Small, experiments.Tiny}
	rep, err := experiments.EfficiencyFigure(ctx, spec, classes, o)
	if err != nil {
		return nil, err
	}
	ans, err := experiments.AnswerTable(ctx, spec, classes, 1, o)
	if err != nil {
		return nil, err
	}
	return []experiments.Report{ans, rep}, nil
}

func runTable6(ctx context.Context, o experiments.RunOpts, runs int) ([]experiments.Report, error) {
	specs := []*experiments.Spec{experiments.VolatileCPPSpec(), experiments.VolatileQueueSpec()}
	return one(experiments.VolatileTable(ctx, specs, 50_000, runs, o))
}

func runTable7(ctx context.Context, o experiments.RunOpts, _ int) ([]experiments.Report, error) {
	return one(experiments.InDBMSTable(ctx, four, o))
}

func runFig6(ctx context.Context, o experiments.RunOpts, _ int) ([]experiments.Report, error) {
	return one(experiments.EfficiencyFigure(ctx, experiments.QueueSpec(), four, o))
}

func runFig7(ctx context.Context, o experiments.RunOpts, _ int) ([]experiments.Report, error) {
	return one(experiments.EfficiencyFigure(ctx, experiments.CPPSpec(), four, o))
}

func runFig8(ctx context.Context, o experiments.RunOpts, _ int) ([]experiments.Report, error) {
	var out []experiments.Report
	panels := []struct {
		spec  *experiments.Spec
		class experiments.Class
	}{
		{experiments.QueueSpec(), experiments.Small},
		{experiments.CPPSpec(), experiments.Tiny},
		{experiments.StockSpec(), experiments.Tiny},
	}
	for _, p := range panels {
		srs, mlss, err := experiments.ConvergenceFigure(ctx, p.spec, p.class, o)
		if err != nil {
			return nil, err
		}
		out = append(out, experiments.ConvergenceReport(p.spec, p.class, srs, mlss))
	}
	return out, nil
}

func runFig9(ctx context.Context, o experiments.RunOpts, _ int) ([]experiments.Report, error) {
	specs := []*experiments.Spec{experiments.VolatileCPPSpec(), experiments.VolatileQueueSpec()}
	return one(experiments.BreakdownFigure(ctx, specs, o))
}

var ratios = []int{1, 2, 3, 4, 5, 6, 7}

func runFig10(ctx context.Context, o experiments.RunOpts, _ int) ([]experiments.Report, error) {
	var out []experiments.Report
	for _, spec := range []*experiments.Spec{experiments.QueueSpec(), experiments.CPPSpec()} {
		rep, err := experiments.RatioSweep(ctx, spec, experiments.Small, ratios, 4, o)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

func runFig11(ctx context.Context, o experiments.RunOpts, _ int) ([]experiments.Report, error) {
	var out []experiments.Report
	for _, spec := range []*experiments.Spec{experiments.QueueSpec(), experiments.CPPSpec()} {
		rep, err := experiments.RatioSweep(ctx, spec, experiments.Tiny, ratios, 4, o)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

func runFig12(ctx context.Context, o experiments.RunOpts, _ int) ([]experiments.Report, error) {
	var out []experiments.Report
	for _, spec := range []*experiments.Spec{experiments.QueueSpec(), experiments.CPPSpec()} {
		for _, cfg := range []struct {
			class  experiments.Class
			levels []int
		}{
			{experiments.Small, []int{2, 3, 4, 5}},
			{experiments.Tiny, []int{2, 3, 4, 5, 6, 7, 8}},
		} {
			rep, err := experiments.LevelSweep(ctx, spec, cfg.class, cfg.levels, o)
			if err != nil {
				return nil, err
			}
			out = append(out, rep)
		}
	}
	return out, nil
}

func runFig13(ctx context.Context, o experiments.RunOpts, _ int) ([]experiments.Report, error) {
	var out []experiments.Report
	cases := []struct {
		spec    *experiments.Spec
		classes []experiments.Class
	}{
		{experiments.QueueSpec(), four},
		{experiments.CPPSpec(), four},
		{experiments.StockSpec(), []experiments.Class{experiments.Small, experiments.Tiny}},
	}
	for _, c := range cases {
		rep, err := experiments.GreedyFigure(ctx, c.spec, c.classes, false, o)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

func runFig14(ctx context.Context, o experiments.RunOpts, _ int) ([]experiments.Report, error) {
	var out []experiments.Report
	tinyRare := []experiments.Class{experiments.Tiny, experiments.Rare}
	for _, spec := range []*experiments.Spec{experiments.VolatileQueueSpec(), experiments.VolatileCPPSpec()} {
		rep, err := experiments.GreedyFigure(ctx, spec, tinyRare, true, o)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
