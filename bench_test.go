// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6). Each benchmark regenerates its artefact at a
// reduced quality scale so the whole suite finishes in minutes; the
// full-scale equivalents live behind cmd/experiments (see EXPERIMENTS.md
// for recorded paper-vs-measured numbers).
//
// Reported metrics: steps/op is the paper's cost measure (invocations of
// the step simulator); for comparison benchmarks, speedup is SRS cost
// divided by MLSS cost.
//
// Run a single artefact, e.g. Table 6:
//
//	go test -bench=BenchmarkTable6 -benchtime=1x
package durability_test

import (
	"context"
	"testing"

	"durability/internal/experiments"
)

// benchOpts returns the scaled-down run options used by every benchmark.
func benchOpts(seed uint64) experiments.RunOpts {
	return experiments.RunOpts{
		Scale:   6, // 6% relative CI on Medium/Small, 60% RE on Tiny/Rare
		Cap:     5_000_000,
		Seed:    seed,
		Workers: 8,
	}
}

var classes4 = []experiments.Class{
	experiments.Medium, experiments.Small, experiments.Tiny, experiments.Rare,
}

// BenchmarkTable3QueueAnswers regenerates Table 3: SRS vs MLSS answers on
// the queue model agree within noise (unbiasedness).
func BenchmarkTable3QueueAnswers(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AnswerTable(ctx, experiments.QueueSpec(), classes4, 3, benchOpts(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep)
		}
	}
}

// BenchmarkTable4CPPAnswers regenerates Table 4 for the CPP model.
func BenchmarkTable4CPPAnswers(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AnswerTable(ctx, experiments.CPPSpec(), classes4, 3, benchOpts(uint64(i)+2))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep)
		}
	}
}

// BenchmarkTable5RNN regenerates Table 5: cost of Small and Tiny queries
// on the LSTM-MDN stock model, SRS vs MLSS.
func BenchmarkTable5RNN(b *testing.B) {
	ctx := context.Background()
	spec := experiments.StockSpec() // trains once per process
	cls := []experiments.Class{experiments.Small, experiments.Tiny}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.EfficiencyFigure(ctx, spec, cls, benchOpts(uint64(i)+3))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep)
		}
	}
}

// BenchmarkTable6Volatile regenerates Table 6: under level skipping,
// s-MLSS is biased low while SRS and g-MLSS agree (fixed 50k budget).
func BenchmarkTable6Volatile(b *testing.B) {
	ctx := context.Background()
	specs := []*experiments.Spec{experiments.VolatileCPPSpec(), experiments.VolatileQueueSpec()}
	for i := 0; i < b.N; i++ {
		rep, err := experiments.VolatileTable(ctx, specs, 50_000, 5, benchOpts(uint64(i)+4))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep)
		}
	}
}

// BenchmarkTable7InDBMS regenerates Table 7: SRS vs MLSS with every
// simulator invocation dispatched through the embedded model database.
func BenchmarkTable7InDBMS(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.InDBMSTable(ctx, classes4, benchOpts(uint64(i)+5))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep)
		}
	}
}

// BenchmarkFigure6QueueEfficiency regenerates Figure 6: steps and time to
// target quality on the queue model, per query class.
func BenchmarkFigure6QueueEfficiency(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.EfficiencyFigure(ctx, experiments.QueueSpec(), classes4, benchOpts(uint64(i)+6))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep)
		}
	}
}

// BenchmarkFigure7CPPEfficiency regenerates Figure 7 for the CPP model.
func BenchmarkFigure7CPPEfficiency(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.EfficiencyFigure(ctx, experiments.CPPSpec(), classes4, benchOpts(uint64(i)+7))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep)
		}
	}
}

// BenchmarkFigure8Convergence regenerates Figure 8: the trajectory of the
// quality metric over cost for SRS vs MLSS (queue/Small and cpp/Tiny
// panels; the RNN panel runs under BenchmarkTable5RNN's model).
func BenchmarkFigure8Convergence(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		o := benchOpts(uint64(i) + 8)
		srs, mlss, err := experiments.ConvergenceFigure(ctx, experiments.QueueSpec(), experiments.Small, o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.ConvergenceReport(experiments.QueueSpec(), experiments.Small, srs, mlss))
		}
		srs, mlss, err = experiments.ConvergenceFigure(ctx, experiments.CPPSpec(), experiments.Tiny, o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.ConvergenceReport(experiments.CPPSpec(), experiments.Tiny, srs, mlss))
		}
	}
}

// BenchmarkFigure9GMLSSBreakdown regenerates Figure 9: g-MLSS total time
// split into simulation and bootstrap evaluation, vs SRS, on the volatile
// models.
func BenchmarkFigure9GMLSSBreakdown(b *testing.B) {
	ctx := context.Background()
	specs := []*experiments.Spec{experiments.VolatileCPPSpec(), experiments.VolatileQueueSpec()}
	for i := 0; i < b.N; i++ {
		rep, err := experiments.BreakdownFigure(ctx, specs, benchOpts(uint64(i)+9))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep)
		}
	}
}

var ratioSweep = []int{1, 2, 3, 4, 5, 6, 7}

// BenchmarkFigure10SplitRatioSmall regenerates Figure 10: the ratio
// sweep's U-shape on Small queries (optimum near r=3, r=1 equals SRS).
func BenchmarkFigure10SplitRatioSmall(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		for _, spec := range []*experiments.Spec{experiments.QueueSpec(), experiments.CPPSpec()} {
			rep, err := experiments.RatioSweep(ctx, spec, experiments.Small, ratioSweep, 4, benchOpts(uint64(i)+10))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("\n%s", rep)
			}
		}
	}
}

// BenchmarkFigure11SplitRatioTiny regenerates Figure 11: the ratio sweep
// on Tiny queries, whose optimum shifts to slightly larger ratios.
func BenchmarkFigure11SplitRatioTiny(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		for _, spec := range []*experiments.Spec{experiments.QueueSpec(), experiments.CPPSpec()} {
			rep, err := experiments.RatioSweep(ctx, spec, experiments.Tiny, ratioSweep, 4, benchOpts(uint64(i)+11))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("\n%s", rep)
			}
		}
	}
}

// BenchmarkFigure12NumLevels regenerates Figure 12: the level-count sweep
// (Small prefers few levels; Tiny prefers more).
func BenchmarkFigure12NumLevels(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		for _, spec := range []*experiments.Spec{experiments.QueueSpec(), experiments.CPPSpec()} {
			for _, cfg := range []struct {
				class  experiments.Class
				levels []int
			}{
				{experiments.Small, []int{2, 3, 4, 5}},
				{experiments.Tiny, []int{2, 3, 4, 5, 6, 7, 8}},
			} {
				rep, err := experiments.LevelSweep(ctx, spec, cfg.class, cfg.levels, benchOpts(uint64(i)+12))
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("\n%s", rep)
				}
			}
		}
	}
}

// BenchmarkFigure13GreedySMLSS regenerates Figure 13: SRS vs pre-tuned
// balanced MLSS vs greedy-searched MLSS (search overhead itemised), with
// s-MLSS on the queue and CPP models.
func BenchmarkFigure13GreedySMLSS(b *testing.B) {
	ctx := context.Background()
	cls := []experiments.Class{experiments.Small, experiments.Tiny, experiments.Rare}
	for i := 0; i < b.N; i++ {
		for _, spec := range []*experiments.Spec{experiments.QueueSpec(), experiments.CPPSpec()} {
			rep, err := experiments.GreedyFigure(ctx, spec, cls, false, benchOpts(uint64(i)+13))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("\n%s", rep)
			}
		}
	}
}

// BenchmarkFigure14GreedyGMLSS regenerates Figure 14: greedy level
// partitions with g-MLSS (bootstrap variance) on the volatile models.
func BenchmarkFigure14GreedyGMLSS(b *testing.B) {
	ctx := context.Background()
	cls := []experiments.Class{experiments.Tiny, experiments.Rare}
	for i := 0; i < b.N; i++ {
		for _, spec := range []*experiments.Spec{experiments.VolatileQueueSpec(), experiments.VolatileCPPSpec()} {
			rep, err := experiments.GreedyFigure(ctx, spec, cls, true, benchOpts(uint64(i)+14))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("\n%s", rep)
			}
		}
	}
}
