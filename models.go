package durability

import (
	"io"

	"durability/internal/neural"
	"durability/internal/simdb"
	"durability/internal/stochastic"
)

// The simulation models evaluated in the paper (§6) plus the supporting
// processes, re-exported so downstream users never import internal
// packages.

type (
	// TandemQueue is the two-stage queueing network of §6 model (1).
	TandemQueue = stochastic.TandemQueue
	// CompoundPoisson is the insurance risk process of §6 model (2).
	CompoundPoisson = stochastic.CompoundPoisson
	// RandomWalk is a Gaussian random walk.
	RandomWalk = stochastic.RandomWalk
	// AR is an auto-regressive AR(m) process.
	AR = stochastic.AR
	// MarkovChain is a finite time-homogeneous Markov chain with exact
	// hitting probabilities via dynamic programming.
	MarkovChain = stochastic.MarkovChain
	// GBM is geometric Brownian motion.
	GBM = stochastic.GBM
	// QueueNetwork is an open Jackson network of exponential queues.
	QueueNetwork = stochastic.QueueNetwork
	// Market is a multi-stock price/earnings simulator for rank-based
	// durability queries ("enters the top 10 by P/E").
	Market = stochastic.Market
	// RegimeSwitching is a Markov-modulated Gaussian walk (calm vs
	// turbulent phases).
	RegimeSwitching = stochastic.RegimeSwitching
	// StockModel is the LSTM-MDN sequence model of §6 model (3).
	StockModel = neural.Model
	// StockModelConfig sizes a StockModel.
	StockModelConfig = neural.Config
	// StockProcess adapts a trained StockModel into a Process.
	StockProcess = neural.StockProcess
	// ModelDB is the embedded model database of §6.4: parameter tables,
	// stored-procedure query execution and sample-path materialisation.
	ModelDB = simdb.DB
	// Scalar is the single-value state used by RandomWalk, GBM and
	// CompoundPoisson. It is exported so live feeds can publish observed
	// values directly into standing queries: Publish(ctx, "ticker",
	// &Scalar{V: price}).
	Scalar = stochastic.Scalar
)

// NewTandemQueue builds the paper's tandem queue: Poisson arrivals at rate
// lambda, exponential service with means mu1 and mu2.
func NewTandemQueue(lambda, mu1, mu2 float64) *TandemQueue {
	return stochastic.NewTandemQueue(lambda, mu1, mu2)
}

// NewCompoundPoisson builds the risk process U(t) = u + c*t - S(t) with
// claim rate lambda and uniform claim sizes on [lo, hi).
func NewCompoundPoisson(u, c, lambda, lo, hi float64) *CompoundPoisson {
	return stochastic.NewCompoundPoisson(u, c, lambda, lo, hi)
}

// NewAR builds an AR(m) process with the given lag coefficients, noise
// standard deviation and constant initial history.
func NewAR(phi []float64, sigma, start float64) *AR {
	return stochastic.NewAR(phi, sigma, start)
}

// NewMarkovChain validates a row-stochastic transition matrix into a chain.
func NewMarkovChain(p [][]float64, start int) (*MarkovChain, error) {
	return stochastic.NewMarkovChain(p, start)
}

// NewStockModel builds an untrained LSTM-MDN model with deterministic
// initial weights.
func NewStockModel(cfg StockModelConfig, seed uint64) *StockModel {
	return neural.NewModel(cfg, seed)
}

// LoadStockModel reads a model saved with (*StockModel).Save.
func LoadStockModel(r io.Reader) (*StockModel, error) { return neural.Load(r) }

// NewStockProcess wraps a trained model as a simulation process starting
// at price s0, warming the recurrent state for warmup steps.
func NewStockProcess(m *StockModel, s0 float64, warmup int) *StockProcess {
	return neural.NewStockProcess(m, s0, warmup)
}

// NewModelDB creates an empty embedded model database.
func NewModelDB() *ModelDB { return simdb.New() }

// NewQueueNetwork validates an open queueing network: per-node external
// arrival rates, service rates, and a routing matrix whose row sums may be
// below 1 (the remainder leaves the network).
func NewQueueNetwork(arrival, service []float64, route [][]float64) (*QueueNetwork, error) {
	return stochastic.NewQueueNetwork(arrival, service, route)
}

// NewMarket builds an n-stock market with a common volatility factor, for
// rank-based durability queries.
func NewMarket(n int, p0, e0, marketSD, idioSD float64) (*Market, error) {
	return stochastic.NewMarket(n, p0, e0, marketSD, idioSD)
}

// NewRegimeSwitching builds a Markov-modulated walk: the hidden chain
// switchP selects the active (drift, sigma) pair each step.
func NewRegimeSwitching(start float64, switchP [][]float64, drift, sigma []float64, startReg int) (*RegimeSwitching, error) {
	return stochastic.NewRegimeSwitching(start, switchP, drift, sigma, startReg)
}

// RegimeValue observes the accumulated value of a RegimeSwitching state.
var RegimeValue Observer = stochastic.RegimeValue

// NodeLen observes the queue length at one node of a QueueNetwork.
func NodeLen(node int) Observer { return stochastic.NodeLen(node) }

// TotalLen observes the total customer count of a QueueNetwork.
var TotalLen Observer = stochastic.TotalLen

// PE observes a stock's price/earnings ratio in a Market state.
func PE(stock int) Observer { return stochastic.PE(stock) }

// PERank observes a stock's 1-based P/E rank in a Market state.
func PERank(stock int) Observer { return stochastic.PERank(stock) }

// TopKMargin observes how close a stock is to the top k by P/E; it
// reaches 1 exactly when the stock is in the top k, so "enters the top k"
// is the threshold query TopKMargin >= 1.
func TopKMargin(stock, k int) Observer { return stochastic.TopKMargin(stock, k) }

// Common observers for the built-in models.
var (
	// Queue2Len observes the number of customers in the second queue.
	Queue2Len Observer = stochastic.Queue2Len
	// Queue1Len observes the number of customers in the first queue.
	Queue1Len Observer = stochastic.Queue1Len
	// ScalarValue observes single-value states (CompoundPoisson,
	// RandomWalk, GBM).
	ScalarValue Observer = stochastic.ScalarValue
	// ARValue observes the most recent value of an AR process.
	ARValue Observer = stochastic.ARValue
	// ChainIndex observes the integer state of a MarkovChain.
	ChainIndex Observer = stochastic.ChainIndex
	// StockPrice observes the price of a StockProcess state.
	StockPrice Observer = neural.Price
)
