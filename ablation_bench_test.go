// Ablation benchmarks for the design choices DESIGN.md §7 calls out:
// bootstrap replicate counts, the conservative variance-evaluation
// schedule, worker parallelism, value-function granularity, and the
// three-way SRS / importance-sampling / MLSS comparison on the one model
// where importance sampling is applicable.
package durability_test

import (
	"context"
	"testing"

	"durability/internal/core"
	"durability/internal/exact"
	"durability/internal/is"
	"durability/internal/mc"
	"durability/internal/stochastic"
)

// ablationQuery is a rare queueing event shared by several ablations.
func ablationQuery() (*stochastic.TandemQueue, core.Query, core.Plan) {
	q := stochastic.NewTandemQueue(0.5, 2, 2)
	query := core.Query{
		Value:   core.ThresholdValue(stochastic.Queue2Len, 58),
		Horizon: 500,
	}
	return q, query, core.MustPlan(0.25, 0.45, 0.62, 0.78, 0.9)
}

// BenchmarkAblationBootstrapReps varies the number of bootstrap
// replicates per variance evaluation. More replicates stabilise the
// stopping decision but cost evaluation time; the default 200 sits where
// extra replicates stop changing the total.
func BenchmarkAblationBootstrapReps(b *testing.B) {
	proc, query, plan := ablationQuery()
	for _, reps := range []int{25, 100, 200, 800} {
		reps := reps
		b.Run(itoa(reps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := &core.GMLSS{
					Proc: proc, Query: query, Plan: plan, Ratio: 3,
					Stop:          mc.Any{mc.RETarget{Target: 0.3}, mc.Budget{Steps: 5_000_000}},
					Seed:          uint64(i) + 1,
					Workers:       8,
					BootstrapReps: reps,
				}
				res, err := g.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("reps=%d: %d steps, var time %v of %v", reps, res.Steps, res.VarTime, res.Elapsed)
				}
			}
		})
	}
}

// BenchmarkAblationVarSchedule varies the conservative bootstrap
// re-evaluation factor (§4.2's "run bootstrap evaluation conservatively"):
// frequent evaluation wastes time, rare evaluation overshoots the target.
func BenchmarkAblationVarSchedule(b *testing.B) {
	proc, query, plan := ablationQuery()
	for _, factor := range []float64{1.05, 1.3, 2.0} {
		factor := factor
		b.Run(ftoa(factor), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := &core.GMLSS{
					Proc: proc, Query: query, Plan: plan, Ratio: 3,
					Stop:     mc.Any{mc.RETarget{Target: 0.3}, mc.Budget{Steps: 5_000_000}},
					Seed:     uint64(i) + 1,
					Workers:  8,
					VarEvery: factor,
				}
				res, err := g.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("factor=%.2f: %d steps, var time %v of %v", factor, res.Steps, res.VarTime, res.Elapsed)
				}
			}
		})
	}
}

// BenchmarkAblationParallelWorkers measures wall-clock scaling of the
// parallel root-path driver (§3.1 "Parallel Computations"). Steps stay
// identical across worker counts — results are scheduling-independent —
// so ns/op isolates the speedup.
func BenchmarkAblationParallelWorkers(b *testing.B) {
	proc, query, plan := ablationQuery()
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		b.Run(itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := &core.SMLSS{
					Proc: proc, Query: query, Plan: plan, Ratio: 3,
					Stop:    mc.Budget{Steps: 3_000_000},
					Seed:    7,
					Workers: workers,
				}
				if _, err := s.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationValueFunc compares the paper's min(z/beta, 1) value
// function against a deliberately coarse 4-bucket quantisation of it.
// Unbiasedness survives (only efficiency depends on f, §3), but the
// coarse function can no longer separate the levels, so the run costs
// more for the same target.
func BenchmarkAblationValueFunc(b *testing.B) {
	proc, query, plan := ablationQuery()
	coarse := func(s stochastic.State, t int) float64 {
		v := query.Value(s, t)
		if v >= 1 {
			return 1
		}
		return float64(int(v*4)) / 4
	}
	for _, cfg := range []struct {
		name  string
		value core.ValueFunc
	}{{"fine", query.Value}, {"coarse", coarse}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := &core.SMLSS{
					Proc:  proc,
					Query: core.Query{Value: cfg.value, Horizon: query.Horizon},
					Plan:  plan, Ratio: 3,
					Stop:    mc.Any{mc.RETarget{Target: 0.3}, mc.Budget{Steps: 8_000_000}},
					Seed:    uint64(i) + 3,
					Workers: 8,
				}
				res, err := s.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s: %d steps, p=%.4g", cfg.name, res.Steps, res.P)
				}
			}
		})
	}
}

// BenchmarkAblationVariableRatios compares uniform splitting ratios with
// per-level escalating ratios (more offspring at rarer, higher levels) —
// the optimisation opportunity §4.1 points at. Both are unbiased; the
// comparison is pure efficiency.
func BenchmarkAblationVariableRatios(b *testing.B) {
	proc, query, plan := ablationQuery()
	configs := []struct {
		name   string
		ratios []int
	}{
		{"uniform-3", nil},
		{"escalating", []int{2, 2, 3, 4, 5}},
		{"front-loaded", []int{5, 4, 3, 2, 2}},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := &core.GMLSS{
					Proc: proc, Query: query, Plan: plan, Ratio: 3, Ratios: cfg.ratios,
					Stop:    mc.Any{mc.RETarget{Target: 0.3}, mc.Budget{Steps: 8_000_000}},
					Seed:    uint64(i) + 5,
					Workers: 8,
				}
				res, err := g.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s: %d steps, p=%.4g", cfg.name, res.Steps, res.P)
				}
			}
		})
	}
}

// BenchmarkAblationRegimeSwitching runs MLSS on a Markov-modulated walk
// whose rare event is driven by a hidden turbulent regime — the setting
// where a value function that only sees the observable is weakest. MLSS
// must still beat SRS, just by less than on regime-free models.
func BenchmarkAblationRegimeSwitching(b *testing.B) {
	r, err := stochastic.NewRegimeSwitching(0,
		[][]float64{{0.98, 0.02}, {0.10, 0.90}},
		[]float64{0, 0.5},
		[]float64{0.5, 3},
		0)
	if err != nil {
		b.Fatal(err)
	}
	query := core.Query{Value: core.ThresholdValue(stochastic.RegimeValue, 110), Horizon: 300}
	stop := func() mc.StopRule {
		return mc.Any{mc.RETarget{Target: 0.3}, mc.Budget{Steps: 100_000_000}}
	}
	b.Run("srs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := &mc.SRS{
				Proc:    r,
				Query:   mc.Query{Cond: mc.Threshold(stochastic.RegimeValue, 110), Horizon: 300},
				Stop:    stop(),
				Seed:    uint64(i) + 1,
				Workers: 8,
			}
			res, err := s.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("srs: %d steps, p=%.4g", res.Steps, res.P)
			}
		}
	})
	b.Run("g-mlss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := &core.GMLSS{
				Proc: r, Query: query,
				Plan:    core.MustPlan(0.35, 0.6, 0.8),
				Ratio:   3,
				Stop:    stop(),
				Seed:    uint64(i) + 2,
				Workers: 8,
			}
			res, err := g.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("g-mlss: %d steps, p=%.4g", res.Steps, res.P)
			}
		}
	})
}

// BenchmarkAblationSRSvsISvsMLSS compares all three samplers on the one
// model importance sampling can handle (the Gaussian walk, §2.2): a rare
// 3.8-sigma barrier. IS wins when the model's internals are available;
// MLSS gets most of the benefit while treating the model as a black box.
func BenchmarkAblationSRSvsISvsMLSS(b *testing.B) {
	walk := &stochastic.RandomWalk{Start: 0, Drift: 0, Sigma: 1}
	const beta, horizon = 38.0, 100
	want, err := exact.BrownianMaxTail(0, 1, horizon, beta)
	if err != nil {
		b.Fatal(err)
	}
	target := func() mc.StopRule {
		return mc.Any{mc.RETarget{Target: 0.3}, mc.Budget{Steps: 400_000_000}}
	}

	b.Run("srs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := &mc.SRS{
				Proc:    walk,
				Query:   mc.Query{Cond: mc.Threshold(stochastic.ScalarValue, beta), Horizon: horizon},
				Stop:    target(),
				Seed:    uint64(i) + 1,
				Workers: 8,
			}
			res, err := s.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("srs: %d steps, p=%.3g (ref %.3g)", res.Steps, res.P, want)
			}
		}
	})
	b.Run("is-ce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			theta, pilotCost, err := is.CrossEntropyTilt(walk, beta, horizon, 4, 400, 0.1, uint64(i)+1)
			if err != nil {
				b.Fatal(err)
			}
			w := &is.WalkIS{Walk: walk, Beta: beta, Horizon: horizon, Theta: theta,
				Stop: target(), Seed: uint64(i) + 2}
			res, err := w.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("is: %d steps (+%d CE pilot), p=%.3g (ref %.3g)", res.Steps, pilotCost, res.P, want)
			}
		}
	})
	b.Run("g-mlss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := &core.GMLSS{
				Proc:    walk,
				Query:   core.Query{Value: core.ThresholdValue(stochastic.ScalarValue, beta), Horizon: horizon},
				Plan:    core.MustPlan(0.3, 0.55, 0.8),
				Ratio:   3,
				Stop:    target(),
				Seed:    uint64(i) + 3,
				Workers: 8,
			}
			res, err := g.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("g-mlss: %d steps, p=%.3g (ref %.3g)", res.Steps, res.P, want)
			}
		}
	})
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func ftoa(v float64) string {
	whole := int(v)
	frac := int(v*100) % 100
	return itoa(whole) + "p" + itoa(frac)
}
