// Autotune: the adaptive greedy level search (§5.2, Algorithm 1) in
// action. For a rare queueing event the example compares three ways of
// answering the same query:
//
//  1. plain Monte Carlo (SRS),
//  2. MLSS with a deliberately poor, hand-picked plan,
//  3. MLSS with the automatically searched plan (search cost included).
//
// The greedy search pays a small trial-simulation overhead and then beats
// both alternatives — which is the paper's argument for why users never
// need to tune levels by hand.
//
//	go run ./examples/autotune
package main

import (
	"context"
	"fmt"
	"log"

	"durability"
)

func main() {
	ctx := context.Background()
	pipeline := durability.NewTandemQueue(0.5, 2, 2)
	// A tiny-probability event: backlog 58 within 500 minutes (~0.1%).
	query := durability.Query{Z: durability.Queue2Len, Beta: 58, Horizon: 500}

	type variant struct {
		name string
		opts []durability.Option
	}

	// First, run the level search alone so its plan and cost are visible.
	plan, searchCost, err := durability.AutoPlan(ctx, pipeline, query, 3, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy search selected boundaries %v (cost: %d steps)\n\n", plan.Boundaries, searchCost)

	variants := []variant{
		{"SRS", []durability.Option{durability.WithMethod(durability.SRS)}},
		{"MLSS, poor plan (0.9)", []durability.Option{durability.WithPlan(0.9)}},
		{"MLSS, greedy plan", []durability.Option{durability.WithPlan(plan.Boundaries...)}},
	}

	fmt.Println("variant                  estimate    steps        time")
	for _, v := range variants {
		opts := append([]durability.Option{
			durability.WithRelativeErrorTarget(0.15),
			durability.WithBudget(400_000_000),
			durability.WithWorkers(8),
			durability.WithSeed(42),
		}, v.opts...)
		res, err := durability.Run(ctx, pipeline, query, opts...)
		if err != nil {
			log.Fatal(err)
		}
		steps := res.Steps
		if v.name == "MLSS, greedy plan" {
			steps += searchCost
		}
		fmt.Printf("%-24s %-11.6f %-12d %v\n", v.name, res.P, steps, res.Elapsed)
	}
}
