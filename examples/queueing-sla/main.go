// Queueing SLA: how likely is a two-stage service pipeline to violate its
// backlog SLA during a 500-minute window?
//
// The pipeline is the paper's tandem queue (§6 Figure 4) at critical
// load: requests arrive at 0.5/min, each stage takes 2 minutes on
// average. The SLA says the second stage's backlog must never exceed a
// limit; the durability query asks for the violation probability at
// several limits, showing how MLSS handles the increasingly rare tail
// while plain Monte Carlo costs explode.
//
//	go run ./examples/queueing-sla
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"durability"
)

func main() {
	pipeline := durability.NewTandemQueue(0.5, 2, 2)

	fmt.Println("SLA violation probabilities over a 500-minute window")
	fmt.Println("limit   P(violation)   95% CI               steps       time")
	for _, limit := range []float64{28, 37, 50} {
		query := durability.Query{Z: durability.Queue2Len, Beta: limit, Horizon: 500}
		start := time.Now()
		res, err := durability.Run(context.Background(), pipeline, query,
			durability.WithRelativeErrorTarget(0.10),
			durability.WithWorkers(8),
			durability.WithSeed(7),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5.0f   %-12.5f   %-20v %-11d %v\n",
			limit, res.P, res.CI(0.95), res.Steps, time.Since(start).Round(time.Millisecond))
	}

	fmt.Println()
	fmt.Println("The 50-request limit is a rare event; MLSS directs simulation")
	fmt.Println("effort toward paths that approach the limit instead of wasting")
	fmt.Println("it on the bulk that never comes close (importance splitting, §3).")
}
