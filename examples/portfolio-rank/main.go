// Portfolio rank: the paper's introductory query (§1) — "what is the
// probability that a given stock's P/E ratio will rank among the top k
// by the end of the week?"
//
// The condition is a *rank*, not a value threshold, which demonstrates
// the framework's generality: any state evaluation z with "z reaches 1
// exactly when the condition holds" plugs straight into the samplers,
// and the same evaluation doubles as the MLSS value function.
//
//	go run ./examples/portfolio-rank
package main

import (
	"context"
	"fmt"
	"log"

	"durability"
)

func main() {
	// Twenty stocks; the watched stock starts with the lowest valuation,
	// so breaking into the top 3 by P/E within 30 trading days is rare.
	market, err := durability.NewMarket(20, 100, 5, 0.01, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	const watched, topK = 0, 3

	query := durability.Query{
		// TopKMargin returns (watched stock's P/E) / (k-th best other
		// P/E): it reaches 1 exactly when the stock enters the top k.
		Z:       durability.TopKMargin(watched, topK),
		Beta:    1,
		Horizon: 30,
	}

	res, err := durability.Run(context.Background(), market, query,
		durability.WithRelativeErrorTarget(0.15),
		durability.WithBudget(100_000_000),
		durability.WithWorkers(8),
		durability.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(stock %d enters top %d by P/E within 30 days) = %.5f\n", watched, topK, res.P)
	fmt.Printf("95%% CI = %v, %d simulator steps, %v\n", res.CI(0.95), res.Steps, res.Elapsed)

	// Context: where does the stock currently rank?
	s := market.Initial()
	fmt.Printf("initial rank: %.0f of 20 (margin to top %d: %.3f)\n",
		durability.PERank(watched)(s), topK, durability.TopKMargin(watched, topK)(s))
}
