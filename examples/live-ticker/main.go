// Live ticker: a standing durability query maintained over a moving
// market, tick by tick.
//
// A client watches "will the price reach 130 within the next 250 steps?"
// against a live GBM price stream. The naive serving strategy re-answers
// the query from scratch on every tick — a full level search plus a full
// sampling run, multiplied by the tick rate. The standing-query engine
// (durability.Watch over internal/stream) instead maintains the answer
// incrementally: root paths sampled at earlier ticks keep contributing
// while the price stays within the drift tolerance, the level plan is
// re-searched only when the price crosses a drift bucket (and usually
// comes back out of the plan cache), and each tick tops the answer up
// with just enough fresh sampling to restore the 10% relative-error
// target.
//
// The example drives 1000 market ticks, prints the maintained answer as
// the price moves, and closes with the cost comparison: incremental
// steps per tick versus a cold durability.Run at the same quality
// target, sampled every 100 ticks. Expect well over an order of
// magnitude — the acceptance test guarding this example
// (TestLiveTickerIncrementalBeatsCold) requires at least 5x.
//
//	go run ./examples/live-ticker
package main

import (
	"context"
	"fmt"
	"log"

	"durability"
	"durability/internal/rng"
)

func main() {
	const (
		s0      = 100.0
		beta    = 130.0
		horizon = 250
		ticks   = 1000
	)
	ctx := context.Background()
	market := &durability.GBM{S0: s0, Mu: 0.0003, Sigma: 0.01}
	query := durability.Query{Z: durability.ScalarValue, Beta: beta, Horizon: horizon, ZName: "price"}
	target := []durability.Option{
		durability.WithRelativeErrorTarget(0.10),
		durability.WithSeed(42),
	}

	session, err := durability.NewSession(market, target...)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := session.Watch(ctx, "ticker", query)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	first := sub.Answer()
	fmt.Printf("standing query: P(price >= %.0f within %d steps)\n", beta, horizon)
	fmt.Printf("tick %4d  price %7.2f  p=%.4f  (cold start: %d steps)\n\n",
		0, s0, first.P(), first.FreshSteps+first.SearchSteps)

	// The live feed: the market's own dynamics, one tick at a time. A
	// real deployment would publish externally observed prices instead.
	feed := market.Initial()
	src := rng.NewStream(2026, 0)
	var incSteps, coldSteps int64
	var coldRuns int
	for tick := 1; tick <= ticks; tick++ {
		market.Step(feed, tick, src)
		refreshes, err := session.Publish(ctx, "ticker", feed)
		if err != nil {
			log.Fatal(err)
		}
		ans := refreshes[0].Answer
		if refreshes[0].Err != nil {
			log.Fatal(refreshes[0].Err)
		}
		incSteps += ans.FreshSteps + ans.SearchSteps

		if tick%100 == 0 {
			price := durability.ScalarValue(feed)
			note := ""
			if ans.Satisfied {
				note = "  (price above threshold — answered for free)"
			} else {
				// The cold baseline: re-answer the query from the current
				// price with a fresh Run — full search, full sampling.
				cold, err := durability.Run(ctx,
					&durability.GBM{S0: price, Mu: market.Mu, Sigma: market.Sigma}, query, target...)
				if err != nil {
					log.Fatal(err)
				}
				coldSteps += cold.Steps
				coldRuns++
				note = fmt.Sprintf("  cold re-run: p=%.4f in %d steps", cold.P, cold.Steps)
			}
			fmt.Printf("tick %4d  price %7.2f  p=%.4f  maintained for %6d steps (survived %5d roots)%s\n",
				tick, price, ans.P(), ans.FreshSteps+ans.SearchSteps, ans.SurvivedRoots, note)
		}
	}

	stats := session.StreamStats()
	fmt.Printf("\n%d ticks maintained with %d simulator steps (%.0f per tick)\n",
		ticks, incSteps, float64(incSteps)/float64(ticks))
	fmt.Printf("engine: %d refreshes, %d fresh roots, %d replans, %d roots dropped\n",
		stats.Refreshes, stats.FreshRoots, stats.Replans, stats.DroppedRoots)
	if coldRuns > 0 {
		perCold := float64(coldSteps) / float64(coldRuns)
		perTick := float64(incSteps) / float64(ticks)
		fmt.Printf("cold re-run average: %.0f steps per query (%d samples)\n", perCold, coldRuns)
		fmt.Printf("incremental maintenance is %.1fx cheaper per tick than re-running cold\n", perCold/perTick)
	}
}
