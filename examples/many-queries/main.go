// Many queries, one model: amortizing level search with a Session.
//
// An operations team watches a tandem queueing system and prices a whole
// family of service-level questions at once: "what is the chance the
// backlog at stage two reaches beta within 500 time units?" for a hundred
// different thresholds — the shape a durability-query service sees when
// many users ask near-identical questions of a shared model.
//
// Answered independently, every query pays the paper's §5.2 adaptive
// level search before it can sample, then its own full sampling run. A
// Session shares both: RunMany groups queries of one shape (observer,
// horizon) and answers each group with a single splitting run over a
// covering level plan — every threshold a boundary, every answer a prefix
// of the shared counters — while differently shaped queries still share
// searches through the plan cache. The sweep's total simulation drops by
// orders of magnitude at the same statistical quality. (See
// examples/threshold-ladder for the batch mechanics in isolation.)
//
//	go run ./examples/many-queries
package main

import (
	"context"
	"fmt"
	"log"

	"durability"
)

func main() {
	system := durability.NewTandemQueue(0.5, 2, 2)
	const n = 100
	queries := make([]durability.Query, n)
	for i := range queries {
		queries[i] = durability.Query{
			Z:       durability.Queue2Len,
			Beta:    24 + float64(i)*0.05, // thresholds 24.00, 24.05, ..., 28.95
			Horizon: 500,
		}
	}
	opts := []durability.Option{
		durability.WithRelativeErrorTarget(0.10),
		durability.WithSeed(7),
	}
	ctx := context.Background()

	// The serving path: one session, every query through the plan cache.
	session, err := durability.NewSession(system, opts...)
	if err != nil {
		log.Fatal(err)
	}
	results, err := session.RunMany(ctx, queries)
	if err != nil {
		log.Fatal(err)
	}
	stats := session.Stats()

	fmt.Println("threshold sweep over the tandem queue (100 queries, RE target 10%):")
	for _, i := range []int{0, 25, 50, 75, n - 1} {
		fmt.Printf("  P(stage-2 backlog >= %.2f within 500) = %.3g  (%d steps)\n",
			queries[i].Beta, results[i].P, results[i].Steps)
	}
	fmt.Printf("\nsession: %d queries, %d level searches (%d served from cache, hit rate %.0f%%)\n",
		stats.Queries, stats.PlanMisses, stats.PlanHits, 100*stats.HitRate())
	fmt.Printf("session total: %d simulator steps (%d searching + %d sampling)\n",
		stats.TotalSteps(), stats.PlanSearchSteps, stats.SampleSteps)

	// The same sweep the one-shot way: every Run pays its own search.
	var independent int64
	for _, q := range queries {
		res, err := durability.Run(ctx, system, q, opts...)
		if err != nil {
			log.Fatal(err)
		}
		independent += res.Steps
	}
	fmt.Printf("independent Run calls: %d simulator steps\n", independent)
	fmt.Printf("\namortization: %.1fx less simulation for the same quality targets\n",
		float64(independent)/float64(stats.TotalSteps()))
}
