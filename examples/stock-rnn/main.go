// Stock durability with a black-box neural simulator: the paper's §6
// model (3). An LSTM-MDN sequence model is trained on a synthetic daily
// price history; the durability query asks for the probability the price
// breaks a barrier within 200 trading days.
//
// The point of this example is that MLSS never looks inside the model —
// it only calls the step simulator — so the same machinery that handles
// a queueing model handles a recurrent neural network whose state
// includes hidden-layer activations.
//
//	go run ./examples/stock-rnn
package main

import (
	"context"
	"fmt"
	"log"

	"durability"
	"durability/internal/neural"
	"durability/internal/rng"
	"durability/internal/stochastic"
)

func main() {
	// Synthetic 5-year daily price history (stands in for the paper's
	// Google 2015-2020 series; see DESIGN.md §5).
	gbm := &stochastic.GBM{S0: 1000, Mu: 0.0004, Sigma: 0.02}
	history := gbm.SeriesWithRegimes(1250, rng.New(20150101))

	fmt.Println("training LSTM-MDN on 1250 days of prices...")
	model := durability.NewStockModel(neural.Config{Hidden: 16, Layers: 2, Mixtures: 3}, 7)
	report, err := model.Train(history, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean NLL %.3f -> %.3f over %d epochs\n\n", report.FirstLoss, report.LastLoss, report.Epochs)

	// The trained model becomes a black-box step simulator.
	market := durability.NewStockProcess(model, 1000, 50)

	for _, barrier := range []float64{1550, 1900} {
		query := durability.Query{Z: durability.StockPrice, Beta: barrier, Horizon: 200}
		res, err := durability.Run(context.Background(), market, query,
			durability.WithRelativeErrorTarget(0.15),
			durability.WithBudget(30_000_000),
			durability.WithWorkers(8),
			durability.WithSeed(11),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P(price >= %.0f within 200 days) = %.5f  (CI %v, %d steps, %v)\n",
			barrier, res.P, res.CI(0.95), res.Steps, res.Elapsed)
	}
}
