// Crash restart: durable serving state surviving a process death, with
// bit-for-bit identical answers afterwards.
//
// A standing durability query ("will the price reach 125 within 200
// steps?") is maintained against a live GBM market inside a *durable*
// session (durability.OpenSession): every mutation — the stream's
// registration, the subscription, each published tick — is written ahead
// to a WAL, and checkpoints capture the full serving state: the
// subscription's surviving root-path batches (the g-MLSS sufficient
// statistics), its level plan and drift bucket, the root substream
// cursor, the bootstrap generator mid-sequence, and the warm plan cache.
//
// Mid-run the process "dies": the session is abandoned with no shutdown,
// no final checkpoint — exactly what kill -9 leaves behind. Reopening
// the directory recovers the state (latest checkpoint + WAL-tail replay)
// and the session keeps serving. The headline is the determinism
// guarantee: because the restored counters and generator positions are
// exactly the pre-crash ones, every post-restart answer is bit-for-bit
// the answer an uninterrupted twin session produces — asserted here with
// == on estimate, variance and pool accounting, not "approximately".
//
// The closing comparison shows why this matters operationally: the
// recovered subscription's first tick costs a few thousand simulator
// steps (a routine top-up over the restored pool), while a cold restart
// — a fresh server re-subscribing at the same market state — pays the
// full level search and pool fill again.
//
//	go run ./examples/crash-restart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"durability"
	"durability/internal/rng"
)

const (
	s0      = 100.0
	beta    = 125.0
	horizon = 200
	ticks   = 120
	crashAt = 60
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "crash-restart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	market := &durability.GBM{S0: s0, Mu: 0.0004, Sigma: 0.01}
	query := durability.Query{Z: durability.ScalarValue, Beta: beta, Horizon: horizon, ZName: "price"}
	observers := map[string]durability.Observer{"price": durability.ScalarValue}
	target := []durability.Option{
		durability.WithRelativeErrorTarget(0.10),
		durability.WithSeed(42),
	}

	// The market trajectory, precomputed so the twin runs see identical
	// ticks (a real deployment publishes externally observed states).
	prices := make([]float64, ticks)
	feed := market.Initial()
	src := rng.NewStream(2026, 0)
	for i := range prices {
		market.Step(feed, i+1, src)
		prices[i] = durability.ScalarValue(feed)
	}

	// Twin A: never dies.
	twin, err := durability.NewSession(market, target...)
	if err != nil {
		log.Fatal(err)
	}
	twinSub, err := twin.Watch(ctx, "live", query)
	if err != nil {
		log.Fatal(err)
	}
	defer twinSub.Close()
	reference := make([]durability.Answer, ticks)
	for i, p := range prices {
		refreshes, err := twin.Publish(ctx, "live", &durability.Scalar{V: p})
		if err != nil {
			log.Fatal(err)
		}
		reference[i] = refreshes[0].Answer
	}

	// Twin B: durable, and about to die.
	session, err := durability.OpenSession(market, dir, observers, target...)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := session.Watch(ctx, "live", query); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standing query: P(price >= %.0f within %d steps), maintained durably in %s\n", beta, horizon, dir)
	for i := 0; i < crashAt; i++ {
		if _, err := session.Publish(ctx, "live", &durability.Scalar{V: prices[i]}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("tick %3d: answer %.6f — and the process dies here (no shutdown, no final checkpoint)\n",
		crashAt, reference[crashAt-1].P())

	// The crash: the session object is abandoned, exactly as kill -9
	// would leave it. Only the data directory survives.
	session = nil

	// Recovery: reopen the directory. The checkpoint loads, the WAL tail
	// replays, and the subscription is back — pool, plan, clocks and all.
	recovered, err := durability.OpenSession(market, dir, observers, target...)
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	stats := recovered.StreamStats()
	fmt.Printf("recovered: %d stream(s), %d subscription(s)\n", stats.Streams, stats.Subscriptions)

	var recoveredFirstCost int64 = -1
	mismatches := 0
	for i := crashAt; i < ticks; i++ {
		refreshes, err := recovered.Publish(ctx, "live", &durability.Scalar{V: prices[i]})
		if err != nil {
			log.Fatal(err)
		}
		got, want := refreshes[0].Answer, reference[i]
		if recoveredFirstCost < 0 {
			recoveredFirstCost = got.FreshSteps + got.SearchSteps
		}
		// The determinism guarantee, asserted with ==: estimate,
		// variance and pool movement all match the uninterrupted twin.
		if got.Result.P != want.Result.P || got.Result.Variance != want.Result.Variance ||
			got.FreshSteps != want.FreshSteps || got.SurvivedRoots != want.SurvivedRoots ||
			got.PoolRoots != want.PoolRoots {
			mismatches++
			fmt.Printf("tick %3d: MISMATCH recovered %.9f vs uninterrupted %.9f\n", i+1, got.P(), want.P())
		}
		if (i+1)%20 == 0 {
			fmt.Printf("tick %3d: price %7.2f  answer %.6f == uninterrupted %.6f\n",
				i+1, prices[i], got.P(), want.P())
		}
	}
	if mismatches > 0 {
		log.Fatalf("%d post-restart answers diverged from the uninterrupted twin", mismatches)
	}
	fmt.Printf("every post-restart answer is bit-for-bit the uninterrupted twin's\n\n")

	// Cold-restart comparison: a fresh server with no data directory
	// re-subscribes at the crash-point state and pays the cold start.
	cold, err := durability.NewSession(market, target...)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cold.Publish(ctx, "live", &durability.Scalar{V: prices[crashAt]}); err != nil {
		log.Fatal(err)
	}
	coldSub, err := cold.Watch(ctx, "live", query)
	if err != nil {
		log.Fatal(err)
	}
	defer coldSub.Close()
	coldCost := coldSub.Answer().FreshSteps + coldSub.Answer().SearchSteps
	fmt.Printf("steps to first answer after restart:\n")
	fmt.Printf("  recovered (checkpoint + WAL): %8d steps\n", recoveredFirstCost)
	fmt.Printf("  cold restart (search + fill): %8d steps  (%.1fx more)\n",
		coldCost, float64(coldCost)/float64(recoveredFirstCost))
}
