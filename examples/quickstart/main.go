// Quickstart: the probability that an insurance product's surplus reaches
// a profit milestone within 500 periods.
//
// The surplus follows the compound-Poisson risk process of the paper's §6:
// U(t) = u + c*t - S(t), with premium income c and uniformly sized claims
// arriving at Poisson rate lambda. "Reaching 450" is a tiny-probability
// event (~0.3%) — the regime durability queries usually live in, and the
// one where multi-level splitting beats plain Monte Carlo by a wide
// margin.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"durability"
)

func main() {
	// The insurance product: surplus 15, premium 6.0/period, claims at
	// rate 0.8/period sized uniformly in [5, 10).
	policy := durability.NewCompoundPoisson(15, 6.0, 0.8, 5, 10)

	// Query: P(surplus reaches 450 at any time within 500 periods),
	// answered to 10% relative error.
	query := durability.Query{Z: durability.ScalarValue, Beta: 450, Horizon: 500}

	res, err := durability.Run(context.Background(), policy, query,
		durability.WithRelativeErrorTarget(0.10),
		durability.WithWorkers(4),
		durability.WithSeed(2024),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("P(surplus >= 450 within 500 periods) = %.5f\n", res.P)
	fmt.Printf("95%% confidence interval              = %v\n", res.CI(0.95))
	fmt.Printf("simulator invocations                = %d\n", res.Steps)
	fmt.Printf("wall time                            = %v\n", res.Elapsed)

	// The same answer with plain Monte Carlo, for comparison.
	srs, err := durability.Run(context.Background(), policy, query,
		durability.WithMethod(durability.SRS),
		durability.WithRelativeErrorTarget(0.10),
		durability.WithWorkers(4),
		durability.WithSeed(2024),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplain Monte Carlo needed %d invocations for the same target —\n", srs.Steps)
	fmt.Printf("MLSS answered with %.1fx less simulation\n", float64(srs.Steps)/float64(res.Steps))
}
