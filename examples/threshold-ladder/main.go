// Threshold ladder: one splitting run answers a whole lattice of queries.
//
// A retail trading product shows every user the chance their position
// reaches a profit target: "P(price >= X within 250 ticks)" for a ladder
// of ten targets X over one market model. Each threshold is a separate
// durability query — but a single g-MLSS run already watches every level
// boundary on its way to the top, so if the level plan is built to
// *cover* the ladder (every threshold a boundary, per-level splitting
// ratios balanced against measured advancement), each query's answer is
// just a prefix of the shared per-level counters.
//
// RunBatch does exactly that. The shared run keeps sampling until every
// threshold meets the relative-error target, so its cost is set by the
// rarest threshold — and the nine easier ones ride along nearly free,
// where ten independent Run calls would each pay their own search and
// their own full sampling run.
//
//	go run ./examples/threshold-ladder
package main

import (
	"context"
	"fmt"
	"log"

	"durability"
)

func main() {
	market := &durability.GBM{S0: 100, Mu: 0.0003, Sigma: 0.01}
	const horizon = 250
	betas := make([]float64, 10)
	queries := make([]durability.Query, 10)
	for i := range betas {
		betas[i] = 112 + 2*float64(i) // profit targets 112, 114, ..., 130
		queries[i] = durability.Query{Z: durability.ScalarValue, Beta: betas[i], Horizon: horizon, ZName: "price"}
	}
	opts := []durability.Option{
		durability.WithRelativeErrorTarget(0.10),
		durability.WithSeed(42),
	}
	ctx := context.Background()

	// The batch path: one covering plan, one shared splitting run.
	session, err := durability.NewSession(market, opts...)
	if err != nil {
		log.Fatal(err)
	}
	results, err := session.RunBatch(ctx, queries)
	if err != nil {
		log.Fatal(err)
	}
	batchSteps := session.Stats().TotalSteps()

	fmt.Println("profit-target ladder over GBM(100) — 10 thresholds, RE target 10%:")
	for i, b := range betas {
		ci := results[i].CI(0.95)
		fmt.Printf("  P(price >= %3.0f within %d) = %.4g  (95%% CI [%.3g, %.3g])\n",
			b, horizon, results[i].P, ci.Lo, ci.Hi)
	}
	fmt.Printf("\nbatch: one shared run, %d total simulator steps (search + sampling)\n", batchSteps)

	// The per-query way: ten independent runs, each with its own level
	// search and its own sampling to the same target.
	var perQuery int64
	for _, q := range queries {
		res, err := durability.Run(ctx, market, q, opts...)
		if err != nil {
			log.Fatal(err)
		}
		perQuery += res.Steps
	}
	fmt.Printf("per-query Run calls: %d simulator steps\n", perQuery)
	fmt.Printf("\nsharing: %.1fx less simulation for the same quality targets\n",
		float64(perQuery)/float64(batchSteps))
}
