// Sharding one query across a worker fleet — and proving it changes
// nothing but the placement.
//
// The paper notes (§3.1) that MLSS root paths are independent and
// "straightforward to parallelize on a group of machines". This example
// exercises the execution seam that implements the observation: it spins
// up two in-process shard workers (stand-ins for remote machines — the
// transport is the same net/rpc the real fleet uses), runs one durability
// query on the local in-process backend and again sharded across the
// workers, and checks the two answers bit for bit. It then does the same
// for a standing query maintained over ten ticks of a live price stream.
//
// Root path i draws from PRNG substream i of the query seed no matter
// which machine simulates it, bootstrap groups cover fixed windows of
// consecutive root indices, and results merge in root-index order — so
// equality is exact, not approximate, and a worker fleet can be grown,
// shrunk or half-lost (dead workers are retried on survivors) without
// the answer moving.
//
//	go run ./examples/sharded-serve
package main

import (
	"context"
	"fmt"
	"log"

	"durability/internal/cluster"
	"durability/internal/exec"
	"durability/internal/mc"
	"durability/internal/rng"
	"durability/internal/stochastic"
	"durability/internal/stream"
)

func main() {
	ctx := context.Background()

	// The model fleet workers rebuild by name: a GBM price process.
	// Only names and plain-data snapshots travel over the wire.
	newMarket := func() *stochastic.GBM { return &stochastic.GBM{S0: 100, Mu: 0.0003, Sigma: 0.01} }
	registry := cluster.Registry{
		"gbm": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return newMarket(), map[string]stochastic.Observer{"price": stochastic.ScalarValue}, nil
		},
	}

	// Two shard workers on loopback listeners — one per "machine".
	addrs, stop, err := cluster.ServeLocal(registry, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	backend := exec.NewCluster(addrs...)
	defer backend.Close()

	// One durability query: P(price reaches 130 within 250 steps).
	task := exec.Task{
		Proc:       newMarket(),
		Obs:        stochastic.ScalarValue,
		Model:      "gbm",
		Observer:   "price",
		Beta:       130,
		Horizon:    250,
		Boundaries: []float64{0.85, 0.93},
		Ratio:      3,
		Seed:       7,
	}
	opt := exec.SampleOptions{Stop: mc.Any{mc.RETarget{Target: 0.1}, mc.Budget{Steps: 50_000_000}}}

	local, err := exec.Sample(ctx, exec.Local{}, task, opt)
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := exec.Sample(ctx, backend, task, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-shot query   local: P = %.6g  (%d steps, %d roots)\n", local.P, local.Steps, local.Paths)
	fmt.Printf("one-shot query sharded: P = %.6g  (%d steps, %d roots)\n", sharded.P, sharded.Steps, sharded.Paths)
	if local.P != sharded.P || local.Steps != sharded.Steps {
		log.Fatal("sharded run diverged from local — the determinism invariant is broken")
	}
	fmt.Println("bit-for-bit equal across 2 workers")

	// The same seam carries standing-query maintenance: two engines, one
	// per backend, maintain the same subscription through the same ticks.
	run := func(backend exec.Executor) []float64 {
		market := newMarket()
		eng := stream.NewEngine(stream.Config{Exec: backend})
		if err := eng.RegisterModel("live", "gbm", market, market.Initial()); err != nil {
			log.Fatal(err)
		}
		sub, err := eng.Subscribe(ctx, stream.SubSpec{
			Stream: "live", Obs: stochastic.ScalarValue, ObserverID: "price",
			Beta: 130, Horizon: 250, Seed: 7,
			Stop: mc.Any{mc.RETarget{Target: 0.1}, mc.Budget{Steps: 50_000_000}},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer sub.Close()
		feed, src := market.Initial(), rng.NewStream(2026, 0)
		answers := []float64{sub.Answer().P()}
		for tick := 1; tick <= 10; tick++ {
			market.Step(feed, tick, src)
			refreshes, err := eng.Update(ctx, "live", feed)
			if err != nil {
				log.Fatal(err)
			}
			if refreshes[0].Err != nil {
				log.Fatal(refreshes[0].Err)
			}
			answers = append(answers, refreshes[0].Answer.P())
		}
		return answers
	}
	localAns, shardedAns := run(exec.Local{}), run(backend)
	for i := range localAns {
		if localAns[i] != shardedAns[i] {
			log.Fatalf("tick %d: sharded answer %v diverged from local %v", i, shardedAns[i], localAns[i])
		}
	}
	fmt.Printf("standing query: %d maintained answers, bit-for-bit equal across backends (last P = %.6g)\n",
		len(localAns), localAns[len(localAns)-1])
}
