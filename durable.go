package durability

import (
	"context"
	"errors"
	"fmt"

	"durability/internal/persist"
	"durability/internal/stochastic"
	"durability/internal/stream"
)

// OpenSession opens a session whose standing-query state survives process
// death. dir is the session's data directory: on first open it is
// created; on a reopen the latest checkpoint is loaded and the write-
// ahead log's tail replayed, so every live stream, every Watch
// subscription — its root-path pool, plan, tick clock and generator
// positions — and every warm level plan come back exactly as they were.
// The recovered session then produces bit-for-bit the answers the
// uninterrupted session would have: recovery restores state, it never
// restarts sampling.
//
// observers names the observer functions standing queries may use.
// Persisted subscriptions are rebuilt by observer *name* (functions are
// code, not data), so every Watch query on a durable session must carry a
// ZName registered here; Watch rejects unregistered ones up front. The
// same process dynamics and session options must be passed on every open
// — the snapshot refuses settings that would change the maintained
// numerics. Re-attach to recovered standing queries through
// Session.Subscriptions (the pre-crash *Subscription handles died with
// their process).
//
// Durability is governed by the store's checkpoint policy: a checkpoint
// is written when the log outgrows its size or age trigger (checked after
// each Publish), on Session.Checkpoint, and on Session.Close.
func OpenSession(proc Process, dir string, observers map[string]Observer, opts ...Option) (*Session, error) {
	s, err := NewSession(proc, opts...)
	if err != nil {
		return nil, err
	}
	store, err := persist.Open(dir, persist.Options{})
	if err != nil {
		return nil, err
	}
	s.store = store
	s.observers = make(map[string]Observer, len(observers))
	for name, obs := range observers {
		if obs == nil {
			store.Close()
			return nil, fmt.Errorf("durability: observer %q is nil", name)
		}
		s.observers[name] = obs
	}

	eng := s.engine()
	resolve := func(streamName, modelID string) (stochastic.Process, map[string]stochastic.Observer, error) {
		return s.proc, s.observers, nil
	}
	var snap persist.ServingSnapshot
	_, _, err = store.Recover(&snap,
		func(found bool) error {
			if !found {
				return nil
			}
			for _, wp := range snap.Plans {
				s.runner.Cache.Warm(wp.Key, wp.Plan)
			}
			return eng.Restore(snap.Engine, resolve)
		},
		func(lsn int64, ev any) error {
			sev, ok := ev.(stream.JournalEvent)
			if !ok {
				return fmt.Errorf("durability: unexpected WAL event %T", ev)
			}
			return eng.Apply(context.Background(), lsn, sev, resolve)
		},
	)
	if err != nil {
		store.Close()
		return nil, fmt.Errorf("durability: recovering %s: %w", dir, err)
	}
	eng.SetJournal(persist.EngineJournal{Store: store})

	// An immediate checkpoint truncates the replayed tail, so the next
	// recovery starts from here instead of re-replaying it.
	if err := s.Checkpoint(); err != nil {
		store.Close()
		return nil, err
	}
	return s, nil
}

// Subscriptions lists the session's live standing queries, ordered by
// ID. After OpenSession recovers a data directory this is how callers
// re-attach to subscriptions whose *Subscription handles died with the
// previous process: each entry supports Answer, Wait and Close exactly
// as the original handle did. (Calling Watch again would register a
// second, duplicate subscription, doubling the per-tick refresh cost.)
func (s *Session) Subscriptions() []*Subscription {
	return s.engine().Subscriptions()
}

// Checkpoint writes a durable snapshot of the session's standing-query
// state and warm plans, and compacts the log behind it. It also surfaces
// any write error an unreportable journal append (a Subscription.Close)
// left behind. A non-durable session (NewSession) has nothing to
// checkpoint and reports an error.
func (s *Session) Checkpoint() error {
	if s.store == nil {
		return errors.New("durability: session has no data directory (open it with OpenSession)")
	}
	if err := s.store.Err(); err != nil {
		return err
	}
	return s.store.Checkpoint(func() (any, error) {
		return &persist.ServingSnapshot{
			Engine: s.engine().Snapshot(),
			Plans:  s.runner.Cache.Export(),
		}, nil
	})
}

// Close ends a durable session: a final checkpoint, then the store is
// released. On a non-durable session it is a no-op. The session must not
// be used afterwards.
func (s *Session) Close() error {
	if s.store == nil {
		return nil
	}
	err := s.Checkpoint()
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// maybeCheckpoint runs a checkpoint when the store's size or age trigger
// has fired. Called after mutations, outside every engine lock.
func (s *Session) maybeCheckpoint() error {
	if s.store == nil || !s.store.NeedCheckpoint() {
		return nil
	}
	return s.Checkpoint()
}
