// Package replicate ships persist store bytes from a primary to a warm
// follower. The primary exposes its stores — the hub store and one store
// per engine shard — through a Source: a consistent manifest of files
// and sizes plus ranged byte fetches. The follower mirrors those bytes
// into a local directory laid out exactly like the primary's data dir,
// and applies complete WAL records through a persist.Tailer as they
// arrive, so its engines track the primary tick by tick. On promotion
// the mirror IS a valid data directory: persist.Open recovers it like
// any other, torn tails and all.
//
// The protocol leans on two properties of the persist layer. Segments
// are append-only, so a byte once shipped is immutable and a checksum
// failure on a complete frame is real corruption, not a race; and the
// primary only ever truncates the torn tail of its final segment during
// its own crash recovery, which the follower mirrors by truncating its
// local copy when the manifest shrinks. Everything else — which records
// a snapshot covers, which replayed events are no-ops — is settled by
// the LSNs inside the files, not by the shipping layer.
package replicate

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"durability/internal/persist"
)

// StoreManifest lists one store's files at a point in time. NextLSN is
// the LSN the store's next append will take, when the source knows it
// (a live primary does; a post-mortem directory scan reports 0 =
// unknown, and followers fall back to byte lag).
type StoreManifest struct {
	Name    string
	Files   []persist.FileInfo
	NextLSN int64
}

// Manifest is a point-in-time view of every replicated store.
type Manifest struct {
	Stores []StoreManifest
}

// Source is where a follower pulls bytes from: a live primary's HTTP
// endpoints, its stores in-process, or (after it died) its bare data
// directory.
type Source interface {
	// Manifest lists every store's files and sizes. For live sources the
	// live segment's size must stop at a frame boundary or be safe to
	// over-read (append-only files are; the tailer simply waits on an
	// incomplete frame).
	Manifest(ctx context.Context) (Manifest, error)
	// Fetch returns up to max bytes of the named store file starting at
	// offset. A short (even empty) result is not an error: it means the
	// source currently has fewer bytes than asked for.
	Fetch(ctx context.Context, store, file string, offset, max int64) ([]byte, error)
}

// Acker is optionally implemented by a Source that can report the
// follower's applied LSNs back to the primary — the primary's shutdown
// path waits on these before letting a SIGTERM complete.
type Acker interface {
	Ack(ctx context.Context, applied map[string]int64) error
}

var (
	storeNameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)
	fileNameRe  = regexp.MustCompile(`^(snap|wal)-[0-9]{16}$`)
)

// validNames rejects store or file names that could escape the mirror
// root — both ends validate, so neither trusts the wire.
func validNames(store, file string) error {
	if !storeNameRe.MatchString(store) {
		return fmt.Errorf("replicate: invalid store name %q", store)
	}
	if file != "" && !fileNameRe.MatchString(file) {
		return fmt.Errorf("replicate: invalid file name %q", file)
	}
	return nil
}

// fileSeq extracts the generation number of a snap-/wal- file name.
func fileSeq(name string) uint64 {
	i := strings.IndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseUint(name[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// DirSource reads a primary's data directory straight off the
// filesystem: the post-mortem shipping path (the primary is dead, its
// directory is all that is left) and the path chaos tests inject faults
// into. It also works against a live primary's directory — segment
// files are append-only, so the worst a racing read sees is a frame
// still being written, which the follower's tailer waits out.
type DirSource struct {
	Root   string     // the primary's data directory
	Stores []string   // store subdirectory names to ship
	FS     persist.FS // nil reads through persist.OSFS
}

func (d DirSource) fs() persist.FS {
	if d.FS == nil {
		return persist.OSFS
	}
	return d.FS
}

// Manifest lists each configured store's snap-/wal- files. A store
// whose directory does not exist yet is listed empty.
func (d DirSource) Manifest(ctx context.Context) (Manifest, error) {
	var m Manifest
	for _, store := range d.Stores {
		if err := validNames(store, ""); err != nil {
			return Manifest{}, err
		}
		sm := StoreManifest{Name: store}
		entries, err := d.fs().ReadDir(filepath.Join(d.Root, store))
		if err != nil {
			if os.IsNotExist(err) {
				m.Stores = append(m.Stores, sm)
				continue
			}
			return Manifest{}, fmt.Errorf("replicate: listing %s: %w", store, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !fileNameRe.MatchString(name) {
				continue
			}
			st, err := d.fs().Stat(filepath.Join(d.Root, store, name))
			if err != nil {
				continue // removed between list and stat
			}
			sm.Files = append(sm.Files, persist.FileInfo{Name: name, Size: st.Size()})
		}
		sort.Slice(sm.Files, func(i, j int) bool { return sm.Files[i].Name < sm.Files[j].Name })
		m.Stores = append(m.Stores, sm)
	}
	return m, nil
}

// Fetch reads a byte range of one store file.
func (d DirSource) Fetch(ctx context.Context, store, file string, offset, max int64) ([]byte, error) {
	if err := validNames(store, file); err != nil {
		return nil, err
	}
	return readRange(d.fs(), filepath.Join(d.Root, store, file), offset, max)
}

// StoreSource serves a live primary's open stores: manifests come from
// Store.Listing, which reports the live segment at its last complete
// frame boundary together with the authoritative NextLSN. This is what
// the primary's HTTP replication handler wraps.
type StoreSource struct {
	Stores map[string]*persist.Store
	FS     persist.FS // nil reads through persist.OSFS
}

func (s StoreSource) fs() persist.FS {
	if s.FS == nil {
		return persist.OSFS
	}
	return s.FS
}

// Manifest lists every store in name order.
func (s StoreSource) Manifest(ctx context.Context) (Manifest, error) {
	names := make([]string, 0, len(s.Stores))
	//durlint:ignore maporder sorted immediately below
	for name := range s.Stores {
		names = append(names, name)
	}
	sort.Strings(names)
	var m Manifest
	for _, name := range names {
		l, err := s.Stores[name].Listing()
		if err != nil {
			return Manifest{}, fmt.Errorf("replicate: listing %s: %w", name, err)
		}
		m.Stores = append(m.Stores, StoreManifest{Name: name, Files: l.Files, NextLSN: l.NextLSN})
	}
	return m, nil
}

// Fetch reads a byte range of one store file.
func (s StoreSource) Fetch(ctx context.Context, store, file string, offset, max int64) ([]byte, error) {
	if err := validNames(store, file); err != nil {
		return nil, err
	}
	st, ok := s.Stores[store]
	if !ok {
		return nil, fmt.Errorf("replicate: no store %q", store)
	}
	return readRange(s.fs(), filepath.Join(st.Dir(), file), offset, max)
}

// readRange returns up to max bytes of path starting at offset; a short
// or empty slice means the file currently ends sooner.
func readRange(fsys persist.FS, path string, offset, max int64) ([]byte, error) {
	if offset < 0 || max <= 0 {
		return nil, fmt.Errorf("replicate: bad range offset=%d max=%d", offset, max)
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("replicate: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return nil, fmt.Errorf("replicate: %w", err)
	}
	buf := make([]byte, max)
	n, err := io.ReadFull(f, buf)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		err = nil
	}
	if err != nil {
		return nil, fmt.Errorf("replicate: reading %s: %w", path, err)
	}
	return buf[:n], nil
}
