package replicate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// The wire protocol: three endpoints a primary mounts under /replicate.
//
//	GET  /replicate/manifest                          -> Manifest (JSON)
//	GET  /replicate/file?store=S&name=F&off=O&max=M   -> raw bytes
//	POST /replicate/ack                               <- {"store": lsn} (JSON)
//
// Manifests are JSON because they are tiny and debuggable with curl;
// file bytes ship raw — the follower's tailer does the decoding, so the
// primary never re-serializes a record it already wrote.

// maxFetchBytes caps one file response; a follower asking for more gets
// a short read and comes back for the rest.
const maxFetchBytes = 4 << 20

// NewHandler serves the replication protocol over src. ack (may be nil)
// receives the follower's applied LSNs per store — the primary's
// shutdown path waits on these.
func NewHandler(src Source, ack func(applied map[string]int64)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /replicate/manifest", func(w http.ResponseWriter, r *http.Request) {
		m, err := src.Manifest(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(m)
	})
	mux.HandleFunc("GET /replicate/file", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		store, name := q.Get("store"), q.Get("name")
		if err := validNames(store, name); err != nil || name == "" {
			http.Error(w, "bad store or file name", http.StatusBadRequest)
			return
		}
		off, err := strconv.ParseInt(q.Get("off"), 10, 64)
		if err != nil || off < 0 {
			http.Error(w, "bad off", http.StatusBadRequest)
			return
		}
		max, err := strconv.ParseInt(q.Get("max"), 10, 64)
		if err != nil || max <= 0 {
			http.Error(w, "bad max", http.StatusBadRequest)
			return
		}
		if max > maxFetchBytes {
			max = maxFetchBytes
		}
		b, err := src.Fetch(r.Context(), store, name, off, max)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(b)
	})
	mux.HandleFunc("POST /replicate/ack", func(w http.ResponseWriter, r *http.Request) {
		var applied map[string]int64
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&applied); err != nil {
			http.Error(w, "bad ack body", http.StatusBadRequest)
			return
		}
		for store := range applied {
			if err := validNames(store, ""); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		if ack != nil {
			ack(applied)
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// HTTPSource pulls from a live primary's replication endpoints. It
// implements Acker, so a follower using it reports applied LSNs back.
type HTTPSource struct {
	Base   string // e.g. "http://primary:8080"
	Client *http.Client
}

func (h HTTPSource) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

// Manifest fetches the primary's current manifest.
func (h HTTPSource) Manifest(ctx context.Context) (Manifest, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.Base+"/replicate/manifest", nil)
	if err != nil {
		return Manifest{}, fmt.Errorf("replicate: %w", err)
	}
	resp, err := h.client().Do(req)
	if err != nil {
		return Manifest{}, fmt.Errorf("replicate: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Manifest{}, fmt.Errorf("replicate: manifest: %s", resp.Status)
	}
	var m Manifest
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("replicate: decoding manifest: %w", err)
	}
	for _, sm := range m.Stores {
		if err := validNames(sm.Name, ""); err != nil {
			return Manifest{}, err
		}
		for _, f := range sm.Files {
			if err := validNames(sm.Name, f.Name); err != nil {
				return Manifest{}, err
			}
		}
	}
	return m, nil
}

// Fetch reads a byte range of one store file from the primary.
func (h HTTPSource) Fetch(ctx context.Context, store, file string, offset, max int64) ([]byte, error) {
	if err := validNames(store, file); err != nil {
		return nil, err
	}
	url := fmt.Sprintf("%s/replicate/file?store=%s&name=%s&off=%d&max=%d", h.Base, store, file, offset, max)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("replicate: %w", err)
	}
	resp, err := h.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("replicate: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replicate: fetch %s/%s: %s", store, file, resp.Status)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxFetchBytes+1))
	if err != nil {
		return nil, fmt.Errorf("replicate: fetch %s/%s: %w", store, file, err)
	}
	return b, nil
}

// Ack posts the follower's applied LSNs back to the primary.
func (h HTTPSource) Ack(ctx context.Context, applied map[string]int64) error {
	body, err := json.Marshal(applied)
	if err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.Base+"/replicate/ack", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client().Do(req)
	if err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replicate: ack: %s", resp.Status)
	}
	return nil
}
