package replicate

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"durability/internal/persist"
)

// repEv is the journal event of these tests; repSnap the checkpoint.
type repEv struct{ N int }

type repSnap struct {
	LSN  int64
	Vals []int
}

func init() { gob.Register(repEv{}) }

// intLog is a store's applied state: the snapshot-then-WAL reduction a
// real engine performs, shrunk to an integer log with LSN skipping.
type intLog struct {
	mu       sync.Mutex
	lsn      int64
	vals     []int
	restores int
	found    bool
}

func (l *intLog) hooks() StoreHooks {
	return StoreHooks{
		Restore: func(snapPath string, found bool) error {
			l.mu.Lock()
			defer l.mu.Unlock()
			l.restores++
			l.found = found
			if !found {
				return nil
			}
			var s repSnap
			ok, err := persist.ReadSnapshotFile(nil, snapPath, &s)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("chosen snapshot %s is unreadable", snapPath)
			}
			l.lsn = s.LSN
			l.vals = append([]int(nil), s.Vals...)
			return nil
		},
		Apply: func(lsn int64, ev any) error {
			l.mu.Lock()
			defer l.mu.Unlock()
			if lsn <= l.lsn {
				return nil // covered by the snapshot
			}
			e, ok := ev.(repEv)
			if !ok {
				return fmt.Errorf("unexpected event %T", ev)
			}
			l.vals = append(l.vals, e.N)
			l.lsn = lsn
			return nil
		},
	}
}

func (l *intLog) state() (int64, []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn, append([]int(nil), l.vals...)
}

func hooksFor(logs map[string]*intLog) func(string) (StoreHooks, bool) {
	return func(store string) (StoreHooks, bool) {
		l, ok := logs[store]
		if !ok {
			return StoreHooks{}, false
		}
		return l.hooks(), true
	}
}

// openPrimary opens (or reopens) a store under root/name, tracking the
// last appended LSN for checkpoint assembly.
type primaryStore struct {
	st   *persist.Store
	lsn  int64
	vals []int
}

func openPrimary(t *testing.T, root, name string) *primaryStore {
	t.Helper()
	st, err := persist.Open(filepath.Join(root, name), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := &primaryStore{st: st}
	if _, _, err := st.Recover(&repSnap{}, func(found bool) error { return nil },
		func(lsn int64, ev any) error { return nil }); err != nil {
		t.Fatal(err)
	}
	return p
}

func (p *primaryStore) append(t *testing.T, vals ...int) {
	t.Helper()
	for _, v := range vals {
		lsn, err := p.st.Append(repEv{N: v})
		if err != nil {
			t.Fatal(err)
		}
		p.lsn = lsn
		p.vals = append(p.vals, v)
	}
}

func (p *primaryStore) checkpoint(t *testing.T) {
	t.Helper()
	if err := p.st.Checkpoint(func() (any, error) {
		return repSnap{LSN: p.lsn, Vals: append([]int(nil), p.vals...)}, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// A follower over a bare directory applies everything the primary
// journals — across appends, a checkpoint's rotation, and more appends
// — and reports zero byte lag once caught up.
func TestFollowerMirrorsAndApplies(t *testing.T) {
	ctx := context.Background()
	root, mirror := t.TempDir(), t.TempDir()
	p := openPrimary(t, root, "main")
	p.append(t, 1, 2, 3)

	log := &intLog{}
	f := NewFollower(Config{
		Source: DirSource{Root: root, Stores: []string{"main"}},
		Dir:    mirror,
		Hooks:  hooksFor(map[string]*intLog{"main": log}),
	})
	defer f.Close()
	if _, err := f.syncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if lsn, vals := log.state(); lsn != 3 || !equalInts(vals, []int{1, 2, 3}) {
		t.Fatalf("after first sync: lsn=%d vals=%v", lsn, vals)
	}
	if log.found {
		t.Fatal("restore claimed a snapshot before any checkpoint existed")
	}

	p.checkpoint(t) // rotation: wal-2 appears, snap-2 lands, wal-1 compacts away
	p.append(t, 4, 5, 6)
	if _, err := f.syncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if lsn, vals := log.state(); lsn != 6 || !equalInts(vals, []int{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("after rotation sync: lsn=%d vals=%v", lsn, vals)
	}
	lag := f.Lags()["main"]
	if lag.Bytes != 0 || lag.AppliedLSN != 6 || !lag.Restored {
		t.Fatalf("lag %+v, want fully applied", lag)
	}
	// The snapshot must be mirrored byte-for-byte too: promotion depends
	// on the mirror being a complete data directory.
	src, err := os.ReadFile(filepath.Join(root, "main", "snap-0000000000000002"))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := os.ReadFile(filepath.Join(mirror, "main", "snap-0000000000000002"))
	if err != nil {
		t.Fatal(err)
	}
	if string(src) != string(dst) {
		t.Fatal("mirrored snapshot differs from the primary's")
	}
}

// A follower that lost records to the primary's compaction — it
// restored at genesis, and a checkpoint folded records it never shipped
// into a snapshot it cannot splice into warm engines — must fail loudly
// on the LSN chain, never skip history silently.
func TestFollowerFellBehindCompactionIsLoud(t *testing.T) {
	ctx := context.Background()
	root, mirror := t.TempDir(), t.TempDir()
	p := openPrimary(t, root, "main")
	p.append(t, 1, 2, 3)

	log := &intLog{}
	f := NewFollower(Config{
		Source: DirSource{Root: root, Stores: []string{"main"}},
		Dir:    mirror,
		Hooks:  hooksFor(map[string]*intLog{"main": log}),
	})
	defer f.Close()
	if _, err := f.syncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	// Records 4 and 5 are appended and immediately checkpointed: the
	// follower never sees their WAL frames, only the snapshot.
	p.append(t, 4, 5)
	p.checkpoint(t)
	p.append(t, 6)
	_, err := f.syncOnce(ctx)
	if err == nil {
		t.Fatal("follower silently skipped compacted records")
	}
	if IsTransient(err) {
		t.Fatalf("fell-behind must be fatal, got transient: %v", err)
	}
}

// A follower arriving after checkpoints restores from the newest
// snapshot and only applies the WAL tail beyond it.
func TestFollowerRestoresFromSnapshot(t *testing.T) {
	ctx := context.Background()
	root, mirror := t.TempDir(), t.TempDir()
	p := openPrimary(t, root, "main")
	p.append(t, 1, 2, 3)
	p.checkpoint(t)
	p.append(t, 4, 5)

	log := &intLog{}
	f := NewFollower(Config{
		Source: StoreSource{Stores: map[string]*persist.Store{"main": p.st}},
		Dir:    mirror,
		Hooks:  hooksFor(map[string]*intLog{"main": log}),
	})
	defer f.Close()
	if _, err := f.syncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if lsn, vals := log.state(); lsn != 5 || !equalInts(vals, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("lsn=%d vals=%v", lsn, vals)
	}
	if !log.found || log.restores != 1 {
		t.Fatalf("restore found=%v count=%d, want snapshot restore exactly once", log.found, log.restores)
	}
	lag := f.Lags()["main"]
	if lag.SourceLSN != 5 || lag.Records != 0 || lag.Bytes != 0 {
		t.Fatalf("lag %+v, want zero against a live source", lag)
	}
}

// The primary dies leaving a torn record; its restart truncates and
// rewrites that suffix. The follower, which had already shipped the
// torn bytes, must converge on the repaired history rather than keep
// the garbage.
func TestFollowerSurvivesPrimaryTornTailRepair(t *testing.T) {
	ctx := context.Background()
	root, mirror := t.TempDir(), t.TempDir()
	p := openPrimary(t, root, "main")
	p.append(t, 1, 2, 3)

	log := &intLog{}
	f := NewFollower(Config{
		Source: DirSource{Root: root, Stores: []string{"main"}},
		Dir:    mirror,
		Hooks:  hooksFor(map[string]*intLog{"main": log}),
	})
	defer f.Close()
	if _, err := f.syncOnce(ctx); err != nil {
		t.Fatal(err)
	}

	// Crash: close the store, then tear the tail by hand — a partial
	// frame the next recovery will truncate.
	if err := p.st.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(root, "main", "wal-0000000000000001")
	h, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte{100, 0, 0, 0, 7, 7, 7}); err != nil {
		t.Fatal(err)
	}
	h.Close()

	// The follower ships the torn bytes; the tailer just waits on them.
	if _, err := f.syncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if lsn, _ := log.state(); lsn != 3 {
		t.Fatalf("applied through torn tail: lsn=%d", lsn)
	}

	// Primary restarts: recovery truncates the torn suffix, then serves on.
	p2 := openPrimary(t, root, "main")
	p2.lsn, p2.vals = 3, []int{1, 2, 3}
	p2.append(t, 4)

	if _, err := f.syncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if lsn, vals := log.state(); lsn != 4 || !equalInts(vals, []int{1, 2, 3, 4}) {
		t.Fatalf("after repair: lsn=%d vals=%v", lsn, vals)
	}
	src, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := os.ReadFile(filepath.Join(mirror, "main", "wal-0000000000000001"))
	if err != nil {
		t.Fatal(err)
	}
	if string(src) != string(dst) {
		t.Fatal("mirror diverged from the repaired segment")
	}
}

// countingSource wraps a Source counting fetches — restart-adoption
// coverage: a follower reopening an existing mirror re-applies from
// local bytes without re-shipping them.
type countingSource struct {
	Source
	fetches atomic.Int64
}

func (c *countingSource) Fetch(ctx context.Context, store, file string, off, max int64) ([]byte, error) {
	c.fetches.Add(1)
	return c.Source.Fetch(ctx, store, file, off, max)
}

func TestFollowerRestartAdoptsMirror(t *testing.T) {
	ctx := context.Background()
	root, mirror := t.TempDir(), t.TempDir()
	p := openPrimary(t, root, "main")
	p.append(t, 1, 2, 3, 4)

	src := &countingSource{Source: DirSource{Root: root, Stores: []string{"main"}}}
	log1 := &intLog{}
	f1 := NewFollower(Config{Source: src, Dir: mirror, Hooks: hooksFor(map[string]*intLog{"main": log1})})
	if _, err := f1.syncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	f1.Close()
	before := src.fetches.Load()

	log2 := &intLog{}
	f2 := NewFollower(Config{Source: src, Dir: mirror, Hooks: hooksFor(map[string]*intLog{"main": log2})})
	defer f2.Close()
	if _, err := f2.syncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if lsn, vals := log2.state(); lsn != 4 || !equalInts(vals, []int{1, 2, 3, 4}) {
		t.Fatalf("restarted follower: lsn=%d vals=%v", lsn, vals)
	}
	if got := src.fetches.Load(); got != before {
		t.Fatalf("restarted follower re-fetched %d ranges; the mirror already had every byte", got-before)
	}
}

// The HTTP transport round-trips manifests, bytes and acks.
func TestFollowerOverHTTP(t *testing.T) {
	ctx := context.Background()
	root, mirror := t.TempDir(), t.TempDir()
	p := openPrimary(t, root, "main")
	p.append(t, 1, 2, 3)
	p.checkpoint(t)
	p.append(t, 4)

	var mu sync.Mutex
	acked := map[string]int64{}
	srv := httptest.NewServer(NewHandler(
		StoreSource{Stores: map[string]*persist.Store{"main": p.st}},
		func(applied map[string]int64) {
			mu.Lock()
			defer mu.Unlock()
			//durlint:ignore maporder test bookkeeping
			for k, v := range applied {
				acked[k] = v
			}
		}))
	defer srv.Close()

	log := &intLog{}
	f := NewFollower(Config{
		Source: HTTPSource{Base: srv.URL},
		Dir:    mirror,
		Hooks:  hooksFor(map[string]*intLog{"main": log}),
		// A tiny chunk forces the ranged-fetch loop through many rounds.
		ChunkBytes: 16,
	})
	defer f.Close()
	if _, err := f.syncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if lsn, vals := log.state(); lsn != 4 || !equalInts(vals, []int{1, 2, 3, 4}) {
		t.Fatalf("lsn=%d vals=%v", lsn, vals)
	}
	mu.Lock()
	got := acked["main"]
	mu.Unlock()
	if got != 4 {
		t.Fatalf("primary saw ack lsn %d, want 4", got)
	}

	// Path traversal must die at the handler.
	resp, err := srv.Client().Get(srv.URL + "/replicate/file?store=..&name=wal-0000000000000001&off=0&max=10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("traversal store name got %d, want 400", resp.StatusCode)
	}
	_ = ctx
}

// flakySource serves n successful manifests, then fails forever — the
// primary dying from the follower's point of view.
type flakySource struct {
	Source
	ok atomic.Int64
}

func (s *flakySource) Manifest(ctx context.Context) (Manifest, error) {
	if s.ok.Add(-1) < 0 {
		return Manifest{}, errors.New("connection refused")
	}
	return s.Source.Manifest(ctx)
}

// Run holds its lease through manifest fetches and expires it — firing
// OnLeaseExpired exactly once — when the primary stays unreachable.
func TestFollowerLeaseExpiry(t *testing.T) {
	root, mirror := t.TempDir(), t.TempDir()
	p := openPrimary(t, root, "main")
	p.append(t, 1, 2)

	src := &flakySource{Source: DirSource{Root: root, Stores: []string{"main"}}}
	src.ok.Store(3)
	var expired atomic.Int64
	log := &intLog{}
	f := NewFollower(Config{
		Source:         src,
		Dir:            mirror,
		Hooks:          hooksFor(map[string]*intLog{"main": log}),
		Interval:       5 * time.Millisecond,
		Lease:          60 * time.Millisecond,
		OnLeaseExpired: func() { expired.Add(1) },
	})
	defer f.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := f.Run(ctx)
	if !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("Run returned %v, want ErrLeaseExpired", err)
	}
	if n := expired.Load(); n != 1 {
		t.Fatalf("OnLeaseExpired fired %d times", n)
	}
	if lsn, _ := log.state(); lsn != 2 {
		t.Fatalf("follower applied lsn %d before expiry, want 2", lsn)
	}
}

// Drain finishes once everything the (dead) source left behind is
// applied — including when the source's last bytes are a torn frame
// that will never complete.
func TestDrainConvergesOnTornTail(t *testing.T) {
	root, mirror := t.TempDir(), t.TempDir()
	p := openPrimary(t, root, "main")
	p.append(t, 1, 2, 3)
	if err := p.st.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(root, "main", "wal-0000000000000001")
	h, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte{42, 0, 0, 0, 9}); err != nil {
		t.Fatal(err)
	}
	h.Close()

	log := &intLog{}
	f := NewFollower(Config{
		Source: DirSource{Root: root, Stores: []string{"main"}},
		Dir:    mirror,
		Hooks:  hooksFor(map[string]*intLog{"main": log}),
	})
	defer f.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if lsn, vals := log.state(); lsn != 3 || !equalInts(vals, []int{1, 2, 3}) {
		t.Fatalf("drained lsn=%d vals=%v", lsn, vals)
	}
	// Promotion over the mirror must repair the torn tail and serve on.
	st, err := persist.Open(filepath.Join(mirror, "main"), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var replayed []int
	if _, _, err := st.Recover(&repSnap{}, func(bool) error { return nil },
		func(lsn int64, ev any) error {
			replayed = append(replayed, ev.(repEv).N)
			return nil
		}); err != nil {
		t.Fatal(err)
	}
	if !equalInts(replayed, []int{1, 2, 3}) {
		t.Fatalf("promoted store replayed %v", replayed)
	}
	if lsn, err := st.Append(repEv{N: 4}); err != nil || lsn != 4 {
		t.Fatalf("promoted store Append = (%d, %v), want lsn 4", lsn, err)
	}
}
