package replicate

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"durability/internal/cluster"
	"durability/internal/exec"
	"durability/internal/mc"
	"durability/internal/persist"
	"durability/internal/persist/faultfs"
	"durability/internal/stochastic"
	"durability/internal/stream"
)

// These are the failover drills the tentpole rests on: a 4-shard
// partitioned engine journaling to per-shard stores is killed at a
// scripted crash point — mid-tick fan-out, mid-checkpoint, mid-WAL-
// rotation — a follower drains what the dead primary left on disk into
// warm engines, reconciles shard tick divergence, promotes, and must
// then answer bit-for-bit like an engine that never died, for every
// standing query, on both execution backends.

const drillShards = 4

func drillStoreName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// chainResolver rebuilds the drill chain the way a recovery would.
func chainResolver(streamName, modelID string) (stochastic.Process, map[string]stochastic.Observer, error) {
	return stochastic.BirthDeathChain(10, 0.45, 0), map[string]stochastic.Observer{"index": stochastic.ChainIndex}, nil
}

// drillSpec is a cheap standing query: budget-capped so refreshes
// terminate fast no matter how unreachable the quality target is.
func drillSpec(seed uint64) stream.SubSpec {
	return stream.SubSpec{
		Stream:     "chain",
		Obs:        stochastic.ChainIndex,
		ObserverID: "index",
		Beta:       7.0,
		Horizon:    50,
		Seed:       seed,
		Stop:       mc.Any{mc.RETarget{Target: 0.15}, mc.Budget{Steps: 8_000}},
	}
}

// canon strips wall-clock times and racy search-cost attribution so the
// rest of the answer compares with == — the PR 5 drill contract.
func canon(a stream.Answer) stream.Answer {
	a.Result.Elapsed, a.Result.VarTime = 0, 0
	a.SearchSteps = 0
	a.PlanCached = false
	return a
}

// storeJournal adapts a persist store to the engine's journal seam.
type storeJournal struct{ st *persist.Store }

func (j storeJournal) Record(ev stream.JournalEvent) (int64, error) { return j.st.Append(ev) }

// startChainWorkers spins n in-process rpc shard workers that rebuild
// the drill chain by name.
func startChainWorkers(t *testing.T, n int) []string {
	t.Helper()
	reg := cluster.Registry{
		"chain": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return chainResolver("chain", "chain")
		},
	}
	addrs, stop, err := cluster.ServeLocal(reg, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	return addrs
}

func answersOf(t *testing.T, label string, refreshes []stream.Refresh) map[uint64]stream.Answer {
	t.Helper()
	m := make(map[uint64]stream.Answer, len(refreshes))
	for _, r := range refreshes {
		if r.Err != nil {
			t.Fatalf("%s: sub %d refresh: %v", label, r.SubID, r.Err)
		}
		m[r.SubID] = r.Answer
	}
	return m
}

func runFailoverDrill(t *testing.T, backend exec.Executor, point string) {
	ctx := context.Background()
	trajectory := []int{0, 1, 2, 1, 2, 3, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5}
	const subsUpfront = 8
	const subTick = 3 // one subscribe lands mid-stream, before tick 3
	checkpointTick := 8
	if point == "mid-tick" {
		checkpointTick = 5
	}
	cfg := stream.Config{Exec: backend}

	// The scripted crash. Nth for the mid-tick kill counts every write
	// shard 2's WAL files will take before the doomed tick-12 append:
	// segment header, EvRegistered, its EvSubscribed records, eleven
	// EvUpdated ticks, and the rotation header of the checkpoint at
	// tick 5. The ring is a pure function, so the count is exact.
	ring := stream.NewRing(drillShards, 0)
	n2 := 0
	for id := uint64(1); id <= subsUpfront+1; id++ {
		if ring.Shard("chain", id) == 2 {
			n2++
		}
	}
	var crashRule *faultfs.Rule
	switch point {
	case "mid-tick":
		crashRule = &faultfs.Rule{Op: faultfs.OpWrite, Path: "shard-0002/wal-", Nth: 15 + n2, KeepBytes: 9, Kill: true}
	case "mid-checkpoint":
		crashRule = &faultfs.Rule{Op: faultfs.OpWrite, Path: "shard-0001/snap-", Nth: 1, KeepBytes: 11, Kill: true}
	case "mid-rotation":
		crashRule = &faultfs.Rule{Op: faultfs.OpWrite, Path: "shard-0003/wal-0000000000000002", Nth: 1, KeepBytes: 8, Kill: true}
	default:
		t.Fatalf("unknown crash point %q", point)
	}
	ffs := faultfs.Wrap(nil, crashRule)

	// Control: the engine that never dies.
	control := stream.NewSharded(cfg, drillShards, 0)
	if err := control.Register("chain", stochastic.BirthDeathChain(10, 0.45, 0), &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}

	// Primary: same engine, journaling every shard to its own store
	// through the fault-injecting filesystem.
	pdir := t.TempDir()
	primary := stream.NewSharded(cfg, drillShards, 0)
	stores := make([]*persist.Store, drillShards)
	for i := 0; i < drillShards; i++ {
		st, err := persist.Open(filepath.Join(pdir, drillStoreName(i)), persist.Options{FS: ffs, Keep: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := st.Recover(&stream.EngineSnapshot{}, func(bool) error { return nil },
			func(int64, any) error { return nil }); err != nil {
			t.Fatal(err)
		}
		stores[i] = st
		primary.Shard(i).SetJournal(storeJournal{st})
	}
	if err := primary.Register("chain", stochastic.BirthDeathChain(10, 0.45, 0), &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}

	subscribe := func(seed uint64) {
		t.Helper()
		cs, err := control.Subscribe(ctx, drillSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		ps, err := primary.Subscribe(ctx, drillSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		if cs.ID() != ps.ID() {
			t.Fatalf("subscription ids diverged: control %d, primary %d", cs.ID(), ps.ID())
		}
	}
	for i := 0; i < subsUpfront; i++ {
		subscribe(uint64(100 + i))
	}

	// Drive the trajectory until the scripted crash fires.
	want := make([]map[uint64]stream.Answer, len(trajectory)+1)
	crashTick := 0
drive:
	for k := 1; k <= len(trajectory); k++ {
		if k == subTick {
			subscribe(150)
		}
		st := &stochastic.ChainState{I: trajectory[k-1]}
		cref, err := control.Update(ctx, "chain", st)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = answersOf(t, fmt.Sprintf("control tick %d", k), cref)
		if _, err := primary.Update(ctx, "chain", st); err != nil {
			crashTick = k
			break
		}
		if k == checkpointTick {
			for i := 0; i < drillShards; i++ {
				i := i
				if err := stores[i].Checkpoint(func() (any, error) {
					return primary.Shard(i).Snapshot(), nil
				}); err != nil {
					crashTick = k
					break drive
				}
			}
		}
	}
	if crashTick == 0 {
		t.Fatal("trajectory completed without the scripted crash")
	}
	if !ffs.Fired(crashRule) {
		t.Fatal("crash rule never fired; the drill tested nothing")
	}
	if !ffs.Dead() {
		t.Fatal("filesystem survived its own kill")
	}

	// Failover: a follower drains the dead primary's directory into
	// fresh warm engines. One read of a shard WAL is artificially
	// delayed — shipping latency must change nothing but wall time.
	names := make([]string, drillShards)
	for i := range names {
		names[i] = drillStoreName(i)
	}
	shipFS := faultfs.Wrap(nil, &faultfs.Rule{Op: faultfs.OpRead, Path: "shard-0001/wal-", Nth: 2, Delay: 20 * time.Millisecond})
	fdir := t.TempDir()
	foll := stream.NewSharded(cfg, drillShards, 0)
	hooks := func(store string) (StoreHooks, bool) {
		var idx int
		if _, err := fmt.Sscanf(store, "shard-%04d", &idx); err != nil || idx < 0 || idx >= drillShards {
			return StoreHooks{}, false
		}
		eng := foll.Shard(idx)
		return StoreHooks{
			Restore: func(snapPath string, found bool) error {
				if !found {
					return nil // EvRegistered replay rebuilds the stream
				}
				var snap stream.EngineSnapshot
				ok, err := persist.ReadSnapshotFile(nil, snapPath, &snap)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("chosen snapshot %s unreadable", snapPath)
				}
				return eng.Restore(snap, chainResolver)
			},
			Apply: func(lsn int64, ev any) error {
				jev, ok := ev.(stream.JournalEvent)
				if !ok {
					return fmt.Errorf("record lsn %d is %T, not a journal event", lsn, ev)
				}
				return eng.Apply(ctx, lsn, jev, chainResolver)
			},
		}, true
	}
	f := NewFollower(Config{
		Source: DirSource{Root: pdir, Stores: names, FS: shipFS},
		Dir:    fdir,
		Hooks:  hooks,
	})
	drainCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := f.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	f.Close()

	// Promotion: reconcile shard tick divergence (the mid-tick crash
	// footprint), resume the shared ID sequence, and take over.
	foll.SyncNextSub()
	ticks, ok := foll.ShardTicks("chain")
	if !ok {
		t.Fatal("promoted follower lost the stream")
	}
	maxTick := int64(0)
	for _, tk := range ticks {
		if tk > maxTick {
			maxTick = tk
		}
	}
	if maxTick < int64(crashTick-1) || maxTick > int64(crashTick) {
		t.Fatalf("follower shard ticks %v around crash tick %d", ticks, crashTick)
	}
	stateAt := func(k int64) (stochastic.State, error) {
		return &stochastic.ChainState{I: trajectory[k-1]}, nil
	}
	if err := foll.CatchUp(ctx, "chain", maxTick, stateAt); err != nil {
		t.Fatal(err)
	}

	// The standing answers after promotion must be bit-for-bit the
	// control's at the same tick — the == acceptance gate.
	subs := foll.Subscriptions()
	if len(subs) != subsUpfront+1 {
		t.Fatalf("promoted follower has %d subscriptions, want %d", len(subs), subsUpfront+1)
	}
	for _, s := range subs {
		w, ok := want[maxTick][s.ID()]
		if !ok {
			t.Fatalf("control never answered sub %d at tick %d", s.ID(), maxTick)
		}
		if canon(s.Answer()) != canon(w) {
			t.Fatalf("%s: sub %d after promotion: %+v != control %+v",
				point, s.ID(), canon(s.Answer()), canon(w))
		}
	}

	// The mirror is a full data directory: attach journals over it and
	// seal the promotion with a checkpoint, like a real takeover does.
	for i := 0; i < drillShards; i++ {
		st, err := persist.Open(filepath.Join(fdir, drillStoreName(i)), persist.Options{Keep: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := st.Recover(&stream.EngineSnapshot{}, func(bool) error { return nil },
			func(int64, any) error { return nil }); err != nil {
			t.Fatalf("promoting mirror of %s: %v", drillStoreName(i), err)
		}
		i := i
		foll.Shard(i).SetJournal(storeJournal{st})
		if err := st.Checkpoint(func() (any, error) { return foll.Shard(i).Snapshot(), nil }); err != nil {
			t.Fatalf("sealing promotion of %s: %v", drillStoreName(i), err)
		}
		defer st.Close()
	}

	// Serve on: every subsequent tick, and a brand-new subscription,
	// must stay bit-for-bit with the control.
	subscribed := false
	for k := maxTick + 1; k <= int64(len(trajectory)); k++ {
		if k > int64(crashTick) && !subscribed {
			cs, err := control.Subscribe(ctx, drillSpec(200))
			if err != nil {
				t.Fatal(err)
			}
			ps, err := foll.Subscribe(ctx, drillSpec(200))
			if err != nil {
				t.Fatal(err)
			}
			if cs.ID() != ps.ID() {
				t.Fatalf("post-promotion subscription ids diverged: control %d, promoted %d", cs.ID(), ps.ID())
			}
			subscribed = true
		}
		st := &stochastic.ChainState{I: trajectory[k-1]}
		got, err := foll.Update(ctx, "chain", st)
		if err != nil {
			t.Fatal(err)
		}
		if k > int64(crashTick) {
			cref, err := control.Update(ctx, "chain", st)
			if err != nil {
				t.Fatal(err)
			}
			want[k] = answersOf(t, fmt.Sprintf("control tick %d", k), cref)
		}
		gotm := answersOf(t, fmt.Sprintf("promoted tick %d", k), got)
		if len(gotm) != len(want[k]) {
			t.Fatalf("tick %d: promoted refreshed %d subs, control %d", k, len(gotm), len(want[k]))
		}
		//durlint:ignore maporder comparison only
		for id, w := range want[k] {
			g, ok := gotm[id]
			if !ok {
				t.Fatalf("tick %d: promoted skipped sub %d", k, id)
			}
			if canon(g) != canon(w) {
				t.Fatalf("%s tick %d sub %d: promoted %+v != control %+v", point, k, id, canon(g), canon(w))
			}
		}
	}
	if !subscribed {
		t.Fatal("drill never exercised a post-promotion subscribe")
	}
}

var drillCrashPoints = []string{"mid-tick", "mid-checkpoint", "mid-rotation"}

// TestFailoverDrillsLocal runs the three scripted crash points on the
// local execution backend.
func TestFailoverDrillsLocal(t *testing.T) {
	for _, point := range drillCrashPoints {
		t.Run(point, func(t *testing.T) { runFailoverDrill(t, exec.Local{}, point) })
	}
}

// TestFailoverDrillsCluster repeats them over an rpc worker fleet: a
// promoted follower refreshing across workers must still match bit for
// bit.
func TestFailoverDrillsCluster(t *testing.T) {
	backend := exec.NewCluster(startChainWorkers(t, 2)...)
	defer backend.Close()
	for _, point := range drillCrashPoints {
		t.Run(point, func(t *testing.T) { runFailoverDrill(t, backend, point) })
	}
}
