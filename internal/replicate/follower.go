package replicate

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"durability/internal/persist"
)

// ErrLeaseExpired is returned by Run when the primary has been
// unreachable for longer than the configured lease: the signal to
// promote. The follower holds its lease by fetching manifests — a
// primary that can still answer a manifest request is still the
// primary, even if it is slow; one that cannot has lost the lease.
var ErrLeaseExpired = errors.New("replicate: primary lease expired")

// StoreHooks is how one mirrored store feeds a live engine. Restore is
// called exactly once, before any Apply, with the local path of the
// best fully-shipped snapshot (found=false and an empty path when the
// primary has never checkpointed). Apply receives every complete WAL
// record from there on, in LSN order; records the snapshot already
// covers must be idempotent no-ops for the hook (the engine's per-stream
// LSNs make them so).
type StoreHooks struct {
	Restore func(snapPath string, found bool) error
	Apply   func(lsn int64, ev any) error
}

// Config wires a Follower.
type Config struct {
	Source Source
	Dir    string // local mirror root; becomes a valid data dir
	// Hooks resolves a store name to its apply hooks; ok=false ignores
	// the store (ship nothing, apply nothing).
	Hooks func(store string) (h StoreHooks, ok bool)

	Interval       time.Duration // poll period for Run (default 200ms)
	Lease          time.Duration // 0 disables lease expiry
	OnLeaseExpired func()        // called once, just before Run returns ErrLeaseExpired

	FS         persist.FS // local mirror filesystem (default OSFS)
	ChunkBytes int64      // max bytes per Fetch (default 1MiB)
}

// Lag is one store's replication lag as of the last successful sync.
type Lag struct {
	AppliedLSN int64 // last LSN applied (or covered by the restored snapshot)
	SourceLSN  int64 // primary's last LSN from the manifest; 0 = source doesn't know
	Records    int64 // SourceLSN - AppliedLSN when SourceLSN is known, else 0
	Bytes      int64 // manifest WAL bytes not yet applied (authoritative convergence signal)
	Restored   bool  // the store's snapshot (or empty genesis) has been restored
}

// Follower mirrors a primary's stores and applies their WAL records to
// live engines as they ship. Run/Drain drive it from one goroutine;
// Lags is safe to call concurrently (the /metrics scrape path).
type Follower struct {
	cfg    Config
	mu     sync.Mutex
	stores map[string]*followerStore
	lags   map[string]Lag
}

// followerStore is the per-store shipping and tailing state. It is only
// touched by the sync goroutine that owns the store for the round.
type followerStore struct {
	name, dir string
	hooks     StoreHooks

	inited   bool
	restored bool
	copied   map[string]int64 // local bytes per file

	tailSeq      uint64 // segment currently tailed
	tailer       *persist.Tailer
	startChecked bool  // this segment's first LSN verified against expectNext
	expectNext   int64 // LSN the next segment must start at (0 = unknown)
	applied      int64 // last applied (or snapshot-covered) LSN
	copyLag      int64 // manifest bytes not yet shipped, as of last round
}

// NewFollower builds a follower over cfg.
func NewFollower(cfg Config) *Follower {
	if cfg.FS == nil {
		cfg.FS = persist.OSFS
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 1 << 20
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 200 * time.Millisecond
	}
	return &Follower{
		cfg:    cfg,
		stores: make(map[string]*followerStore),
		lags:   make(map[string]Lag),
	}
}

// transientError marks failures worth retrying — the source being slow,
// partitioned or mid-restart — as opposed to corruption or hook
// failures, which stop the follower.
type transientError struct{ err error }

func (e transientError) Error() string { return e.err.Error() }
func (e transientError) Unwrap() error { return e.err }

// IsTransient reports whether err is a retryable source failure rather
// than a fatal one.
func IsTransient(err error) bool {
	var te transientError
	return errors.As(err, &te)
}

// Lags returns the per-store lag as of the last successful sync round.
func (f *Follower) Lags() map[string]Lag {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]Lag, len(f.lags))
	//durlint:ignore maporder snapshot copy; callers order it
	for k, v := range f.lags {
		out[k] = v
	}
	return out
}

// Run polls the source until the context ends, a fatal error surfaces,
// or the lease expires. It returns ErrLeaseExpired after calling
// OnLeaseExpired when the primary has been unreachable past the lease.
func (f *Follower) Run(ctx context.Context) error {
	lastOK := time.Now()
	for {
		_, err := f.syncOnce(ctx)
		switch {
		case err == nil:
			lastOK = time.Now()
		case !IsTransient(err):
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		if f.cfg.Lease > 0 && time.Since(lastOK) > f.cfg.Lease {
			if f.cfg.OnLeaseExpired != nil {
				f.cfg.OnLeaseExpired()
			}
			return ErrLeaseExpired
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(f.cfg.Interval):
		}
	}
}

// Drain syncs until everything the source has is applied: apply lag
// zero, or — when the source's final segment ends in a torn frame that
// can never complete (the primary died mid-write) — until every
// manifest byte is shipped and a full round applies nothing new. After
// Drain, promotion via persist.Open on the mirror loses nothing.
func (f *Follower) Drain(ctx context.Context) error {
	for {
		progressed, err := f.syncOnce(ctx)
		if err != nil && !IsTransient(err) {
			return err
		}
		if err == nil {
			f.mu.Lock()
			applyLag, copyLag := int64(0), int64(0)
			allRestored := true
			//durlint:ignore maporder aggregate only
			for _, l := range f.lags {
				applyLag += l.Bytes
				if !l.Restored {
					allRestored = false
				}
			}
			for _, fs := range f.stores {
				copyLag += fs.copyLag
			}
			f.mu.Unlock()
			if allRestored && applyLag == 0 {
				return nil
			}
			if allRestored && copyLag == 0 && !progressed {
				return nil // only a torn, never-completable tail remains
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Close releases the open tailers. The follower is not usable after.
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var first error
	//durlint:ignore maporder close order is irrelevant
	for _, fs := range f.stores {
		if fs.tailer != nil {
			if err := fs.tailer.Close(); err != nil && first == nil {
				first = err
			}
			fs.tailer = nil
		}
	}
	return first
}

// syncOnce runs one full round: manifest, then per-store ship+apply
// concurrently, then lag bookkeeping and (when the source supports it)
// an ack of applied LSNs. progressed reports whether any store shipped
// or applied anything.
func (f *Follower) syncOnce(ctx context.Context) (progressed bool, err error) {
	m, err := f.cfg.Source.Manifest(ctx)
	if err != nil {
		return false, transientError{fmt.Errorf("replicate: manifest: %w", err)}
	}
	type result struct {
		progressed bool
		lag        Lag
		err        error
	}
	stores := make([]*followerStore, 0, len(m.Stores))
	manifests := make([]StoreManifest, 0, len(m.Stores))
	for _, sm := range m.Stores {
		if err := validNames(sm.Name, ""); err != nil {
			return false, err
		}
		fs, ok := f.storeFor(sm.Name)
		if !ok {
			continue
		}
		stores = append(stores, fs)
		manifests = append(manifests, sm)
	}
	results := make([]result, len(stores))
	var wg sync.WaitGroup
	for i := range stores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, lag, err := f.syncStore(ctx, stores[i], manifests[i])
			results[i] = result{p, lag, err}
		}(i)
	}
	wg.Wait()

	applied := make(map[string]int64, len(stores))
	var errs []error
	f.mu.Lock()
	for i, r := range results {
		if r.err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", stores[i].name, r.err))
			continue
		}
		f.lags[stores[i].name] = r.lag
		if r.lag.Restored {
			applied[stores[i].name] = r.lag.AppliedLSN
		}
		progressed = progressed || r.progressed
	}
	f.mu.Unlock()
	if len(errs) > 0 {
		joined := errors.Join(errs...)
		for _, e := range errs {
			if !IsTransient(e) {
				return progressed, joined
			}
		}
		return progressed, transientError{joined}
	}
	if acker, ok := f.cfg.Source.(Acker); ok && len(applied) > 0 {
		if err := acker.Ack(ctx, applied); err != nil {
			return progressed, transientError{fmt.Errorf("replicate: ack: %w", err)}
		}
	}
	return progressed, nil
}

// storeFor returns (creating if needed) the state for one store name.
func (f *Follower) storeFor(name string) (*followerStore, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fs, ok := f.stores[name]; ok {
		return fs, true
	}
	hooks, ok := f.cfg.Hooks(name)
	if !ok {
		return nil, false
	}
	fs := &followerStore{
		name:   name,
		dir:    filepath.Join(f.cfg.Dir, name),
		hooks:  hooks,
		copied: make(map[string]int64),
	}
	f.stores[name] = fs
	return fs, true
}

func walName(seq uint64) string  { return fmt.Sprintf("wal-%016d", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016d", seq) }

// syncStore runs one store's round: ship missing bytes, restore once a
// snapshot is fully local, pump complete records into the hooks.
func (f *Follower) syncStore(ctx context.Context, fs *followerStore, sm StoreManifest) (progressed bool, lag Lag, err error) {
	if !fs.inited {
		if err := f.initStore(fs); err != nil {
			return false, Lag{}, err
		}
	}
	shipped, err := f.ship(ctx, fs, sm)
	if err != nil {
		return shipped, Lag{}, err
	}
	progressed = shipped
	if !fs.restored {
		if err := f.restore(fs, sm); err != nil {
			return progressed, Lag{}, err
		}
		progressed = progressed || fs.restored
	}
	if fs.restored {
		applied, err := f.pump(fs, sm)
		if err != nil {
			return progressed, Lag{}, err
		}
		progressed = progressed || applied
	}
	return progressed, f.lagOf(fs, sm), nil
}

// initStore prepares the local mirror directory and, after a follower
// restart, adopts bytes already shipped by the previous process.
func (f *Follower) initStore(fs *followerStore) error {
	if err := f.cfg.FS.MkdirAll(fs.dir, 0o755); err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	entries, err := f.cfg.FS.ReadDir(fs.dir)
	if err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	for _, e := range entries {
		if !fileNameRe.MatchString(e.Name()) {
			continue
		}
		st, err := f.cfg.FS.Stat(filepath.Join(fs.dir, e.Name()))
		if err != nil {
			continue
		}
		fs.copied[e.Name()] = st.Size()
	}
	fs.inited = true
	return nil
}

// ship copies every manifest byte the mirror lacks, and truncates local
// files the source has truncated (the primary repairing its own torn
// tail during crash recovery).
func (f *Follower) ship(ctx context.Context, fs *followerStore, sm StoreManifest) (progressed bool, err error) {
	var copyLag int64
	for _, file := range sm.Files {
		if err := validNames(sm.Name, file.Name); err != nil {
			return progressed, err
		}
		local := fs.copied[file.Name]
		high := local // previous high-water mark, for progress accounting
		if file.Size < high {
			progressed = true // the source shrank; mirroring that is progress
		}
		// Bytes past the tailer's committed offset are shipped but not
		// yet CRC-verified: a primary that crashed mid-write truncates
		// and rewrites exactly that suffix during its own recovery, so
		// never trust it across rounds — drop it and re-ship from the
		// verified boundary. The suffix is at most one partial frame,
		// so in steady state this truncates and re-fetches nothing.
		verified := local
		if fs.tailer != nil && file.Name == walName(fs.tailSeq) && fs.tailer.Offset() < verified {
			verified = fs.tailer.Offset()
		}
		if file.Size < verified {
			// The source rewound this file below bytes we parsed and
			// applied: replicated history was rewritten under us.
			return progressed, fmt.Errorf("replicate: %s/%s shrank to %d below verified offset %d — replicated history rewritten",
				sm.Name, file.Name, file.Size, verified)
		}
		if local > verified || local > file.Size {
			cut := verified
			if file.Size < cut {
				cut = file.Size
			}
			h, err := f.cfg.FS.OpenFile(filepath.Join(fs.dir, file.Name), os.O_RDWR, 0)
			if err != nil {
				return progressed, fmt.Errorf("replicate: %w", err)
			}
			terr := h.Truncate(cut)
			h.Close()
			if terr != nil {
				return progressed, fmt.Errorf("replicate: %w", terr)
			}
			local = cut
			fs.copied[file.Name] = local
		}
		if file.Size > local {
			n, err := f.shipFile(ctx, fs, sm.Name, file, local)
			fs.copied[file.Name] = local + n
			copyLag += file.Size - (local + n)
			// Only a new high-water mark is progress: re-shipping the
			// same unverified suffix round after round (a dead source's
			// torn tail) must let Drain's no-progress exit fire.
			if local+n > high {
				progressed = true
			}
			if err != nil {
				fs.copyLag = copyLag
				return progressed, err
			}
		}
	}
	fs.copyLag = copyLag
	return progressed, nil
}

// shipFile appends the [local, file.Size) range of one source file to
// its mirror, returning how many bytes landed.
func (f *Follower) shipFile(ctx context.Context, fs *followerStore, store string, file persist.FileInfo, local int64) (int64, error) {
	h, err := f.cfg.FS.OpenFile(filepath.Join(fs.dir, file.Name), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return 0, fmt.Errorf("replicate: %w", err)
	}
	defer h.Close()
	if _, err := h.Seek(local, 0); err != nil {
		return 0, fmt.Errorf("replicate: %w", err)
	}
	var n int64
	for local+n < file.Size {
		if ctx.Err() != nil {
			return n, transientError{ctx.Err()}
		}
		want := file.Size - (local + n)
		if want > f.cfg.ChunkBytes {
			want = f.cfg.ChunkBytes
		}
		b, err := f.cfg.Source.Fetch(ctx, store, file.Name, local+n, want)
		if err != nil {
			return n, transientError{err}
		}
		if len(b) == 0 {
			// The source has fewer bytes than its manifest promised —
			// a stale manifest racing compaction. Retry next round.
			return n, nil
		}
		if int64(len(b)) > want {
			b = b[:want]
		}
		if _, err := h.Write(b); err != nil {
			return n, fmt.Errorf("replicate: %w", err)
		}
		n += int64(len(b))
	}
	if n > 0 {
		if err := h.Sync(); err != nil {
			return n, fmt.Errorf("replicate: %w", err)
		}
	}
	return n, nil
}

// restore picks the newest fully-shipped snapshot and hands it to the
// store's Restore hook, positioning the tail at the matching segment.
// With snapshots in the manifest but none fully local yet, it waits;
// with none at all, it restores empty genesis and tails from the first
// segment.
func (f *Follower) restore(fs *followerStore, sm StoreManifest) error {
	var bestSnap uint64
	haveSnaps := false
	for _, file := range sm.Files {
		seq := fileSeq(file.Name)
		if file.Name != snapName(seq) {
			continue
		}
		haveSnaps = true
		if fs.copied[file.Name] == file.Size && seq > bestSnap {
			bestSnap = seq
		}
	}
	tailFrom := func(min uint64) (uint64, bool) {
		var best uint64
		found := false
		for _, file := range sm.Files {
			seq := fileSeq(file.Name)
			if file.Name != walName(seq) || seq < min {
				continue
			}
			if !found || seq < best {
				best, found = seq, true
			}
		}
		return best, found
	}
	if haveSnaps && bestSnap == 0 {
		return nil // snapshots exist but none fully shipped yet; wait
	}
	seq, ok := tailFrom(bestSnap)
	if !ok {
		if bestSnap > 0 {
			// snap-N durable but wal-N not shipped in this manifest yet.
			return nil
		}
		return nil // nothing at all yet
	}
	if bestSnap > 0 {
		if err := fs.hooks.Restore(filepath.Join(fs.dir, snapName(bestSnap)), true); err != nil {
			return fmt.Errorf("replicate: restoring %s: %w", snapName(bestSnap), err)
		}
	} else {
		if err := fs.hooks.Restore("", false); err != nil {
			return fmt.Errorf("replicate: restoring genesis: %w", err)
		}
	}
	fs.restored = true
	fs.tailSeq = seq
	return nil
}

// pump applies every complete record available locally, advancing to
// the next segment when the current one is sealed (a newer segment
// exists and every manifest byte of this one is parsed). Segment
// boundaries are verified against the LSN chain: the next segment must
// begin exactly where this one ended, so falling behind compaction is
// an error, never a silent gap.
func (f *Follower) pump(fs *followerStore, sm StoreManifest) (progressed bool, err error) {
	sizeOf := func(name string) (int64, bool) {
		for _, file := range sm.Files {
			if file.Name == name {
				return file.Size, true
			}
		}
		return 0, false
	}
	nextSeq := func(after uint64) (uint64, bool) {
		var best uint64
		found := false
		for _, file := range sm.Files {
			seq := fileSeq(file.Name)
			if file.Name != walName(seq) || seq <= after {
				continue
			}
			if !found || seq < best {
				best, found = seq, true
			}
		}
		return best, found
	}
	for {
		if fs.tailer == nil {
			if _, ok := fs.copied[walName(fs.tailSeq)]; !ok {
				return progressed, nil // not shipped yet
			}
			t, err := persist.OpenTailer(f.cfg.FS, filepath.Join(fs.dir, walName(fs.tailSeq)))
			if err != nil {
				return progressed, err
			}
			fs.tailer = t
			fs.startChecked = false
		}
		for {
			lsn, ev, ok, err := fs.tailer.Next()
			if err != nil {
				return progressed, err
			}
			if !ok {
				break
			}
			if !fs.startChecked {
				if fs.expectNext > 0 && lsn != fs.expectNext {
					return progressed, fmt.Errorf("replicate: %s/%s starts at lsn %d, expected %d — fell behind the primary's compaction; restart the follower with a fresh mirror",
						fs.name, walName(fs.tailSeq), lsn, fs.expectNext)
				}
				fs.startChecked = true
			}
			if err := fs.hooks.Apply(lsn, ev); err != nil {
				return progressed, fmt.Errorf("replicate: applying %s lsn %d: %w", fs.name, lsn, err)
			}
			fs.applied = lsn
			progressed = true
		}
		// An empty sealed segment still pins the chain via its header.
		if !fs.startChecked && fs.tailer.NextLSN() > 0 {
			if fs.expectNext > 0 && fs.tailer.NextLSN() != fs.expectNext {
				return progressed, fmt.Errorf("replicate: %s/%s starts at lsn %d, expected %d — fell behind the primary's compaction; restart the follower with a fresh mirror",
					fs.name, walName(fs.tailSeq), fs.tailer.NextLSN(), fs.expectNext)
			}
			fs.startChecked = true
		}
		if fs.tailer.NextLSN() > fs.applied+1 {
			// Records before the segment's first LSN are covered by the
			// restored snapshot; count them as applied for lag purposes.
			fs.applied = fs.tailer.NextLSN() - 1
		}
		next, ok := nextSeq(fs.tailSeq)
		if !ok {
			return progressed, nil // still on the live segment
		}
		msize, known := sizeOf(walName(fs.tailSeq))
		if known && (fs.tailer.Offset() < msize || fs.copied[walName(fs.tailSeq)] < msize) {
			return progressed, nil // current segment not fully shipped/parsed yet
		}
		if n := fs.tailer.NextLSN(); n > 0 {
			fs.expectNext = n
		}
		fs.tailer.Close()
		fs.tailer = nil
		fs.tailSeq = next
	}
}

// lagOf computes the store's lag against the manifest just synced.
func (f *Follower) lagOf(fs *followerStore, sm StoreManifest) Lag {
	lag := Lag{AppliedLSN: fs.applied, Restored: fs.restored}
	for _, file := range sm.Files {
		seq := fileSeq(file.Name)
		if file.Name != walName(seq) {
			continue
		}
		switch {
		case !fs.restored:
			lag.Bytes += file.Size
		case seq > fs.tailSeq:
			lag.Bytes += file.Size
		case seq == fs.tailSeq && fs.tailer != nil:
			if off := fs.tailer.Offset(); off < file.Size {
				lag.Bytes += file.Size - off
			}
		case seq == fs.tailSeq && fs.tailer == nil:
			lag.Bytes += file.Size
		}
	}
	if sm.NextLSN > 0 {
		lag.SourceLSN = sm.NextLSN - 1
		if fs.restored && lag.SourceLSN > fs.applied {
			lag.Records = lag.SourceLSN - fs.applied
		}
	}
	return lag
}
