package persist

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testEvent is the WAL payload for these tests; registered like real
// event types are.
type testEvent struct {
	N int
}

// testSnap is the snapshot payload: the last event folded in, so replay
// correctness is visible as plain data.
type testSnap struct {
	Applied int
}

func init() {
	gob.Register(testEvent{})
}

// replayInto collects replayed events, asserting LSNs arrive in order.
func replayInto(t *testing.T, got *[]testEvent) func(lsn int64, ev any) error {
	t.Helper()
	var prev int64
	return func(lsn int64, ev any) error {
		if lsn <= prev {
			t.Fatalf("replay lsn %d after %d", lsn, prev)
		}
		prev = lsn
		te, ok := ev.(testEvent)
		if !ok {
			return fmt.Errorf("unexpected event %T", ev)
		}
		*got = append(*got, te)
		return nil
	}
}

func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestFreshDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{})
	var snap testSnap
	found, replayed, err := st.Recover(&snap, nil, nil)
	if err != nil || found || replayed != 0 {
		t.Fatalf("fresh Recover = (%v, %d, %v)", found, replayed, err)
	}
	for i := 1; i <= 5; i++ {
		lsn, err := st.Append(testEvent{N: i})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != int64(i) {
			t.Fatalf("lsn %d, want %d", lsn, i)
		}
	}
	if err := st.Checkpoint(func() (any, error) { return &testSnap{Applied: 5}, nil }); err != nil {
		t.Fatal(err)
	}
	// Tail after the checkpoint.
	for i := 6; i <= 8; i++ {
		if _, err := st.Append(testEvent{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: snapshot holds 5, tail replays 6..8.
	st2 := openStore(t, dir, Options{})
	var got []testEvent
	var snap2 testSnap
	found, replayed, err = st2.Recover(&snap2, nil, replayInto(t, &got))
	if err != nil {
		t.Fatal(err)
	}
	if !found || snap2.Applied != 5 {
		t.Fatalf("recovered snapshot %+v (found=%v), want Applied=5", snap2, found)
	}
	if replayed != 3 || len(got) != 3 || got[0].N != 6 || got[2].N != 8 {
		t.Fatalf("replayed %d events %v, want 6..8", replayed, got)
	}
	// Appends continue the LSN chain.
	lsn, err := st2.Append(testEvent{N: 9})
	if err != nil || lsn != 9 {
		t.Fatalf("post-recovery Append = (%d, %v), want lsn 9", lsn, err)
	}
	st2.Close()
}

// A crash mid-write leaves a torn final record; replay must stop cleanly
// at the last complete entry, truncate the garbage, and keep appending.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{})
	var snap testSnap
	if _, _, err := st.Recover(&snap, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(func() (any, error) { return &testSnap{Applied: 0}, nil }); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := st.Append(testEvent{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Tear the last record: chop a few bytes off the segment's tail.
	walPath := filepath.Join(dir, fmt.Sprintf("wal-%016d", 2))
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, Options{})
	var got []testEvent
	var snap2 testSnap
	found, replayed, err := st2.Recover(&snap2, nil, replayInto(t, &got))
	if err != nil {
		t.Fatal(err)
	}
	if !found || replayed != 3 {
		t.Fatalf("recovered (found=%v, replayed=%d), want torn tail to stop after 3", found, replayed)
	}
	if len(got) != 3 || got[2].N != 3 {
		t.Fatalf("replayed %v, want events 1..3", got)
	}
	// The torn record is gone: the next append reuses its LSN and a third
	// recovery sees a fully well-formed log.
	if lsn, err := st2.Append(testEvent{N: 40}); err != nil || lsn != 4 {
		t.Fatalf("append after truncation = (%d, %v), want lsn 4", lsn, err)
	}
	st2.Close()

	st3 := openStore(t, dir, Options{})
	got = nil
	found, replayed, err = st3.Recover(&snap2, nil, replayInto(t, &got))
	if err != nil || !found || replayed != 4 {
		t.Fatalf("third recovery = (%v, %d, %v), want 4 events", found, replayed, err)
	}
	if got[3].N != 40 {
		t.Fatalf("restored tail %v, want last event N=40", got)
	}
	st3.Close()
}

// Checkpoints compact: with the default Keep of 1, old generations and
// their segments are deleted once the new snapshot is durable.
func TestCheckpointCompacts(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{})
	var snap testSnap
	if _, _, err := st.Recover(&snap, nil, nil); err != nil {
		t.Fatal(err)
	}
	for gen := 1; gen <= 3; gen++ {
		if _, err := st.Append(testEvent{N: gen}); err != nil {
			t.Fatal(err)
		}
		if err := st.Checkpoint(func() (any, error) { return &testSnap{Applied: gen}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("after 3 checkpoints the dir holds %v, want exactly the newest snapshot and its segment", names)
	}
	st2 := openStore(t, dir, Options{})
	var snap2 testSnap
	found, replayed, err := st2.Recover(&snap2, nil, replayInto(t, &[]testEvent{}))
	if err != nil || !found || replayed != 0 || snap2.Applied != 3 {
		t.Fatalf("recovery after compaction = (%v, %d, %v) snap %+v", found, replayed, err, snap2)
	}
	st2.Close()
}

// A crash between log rotation and snapshot publication leaves a new
// segment without its snapshot; recovery must fall back to the previous
// generation and replay across both segments.
func TestRecoverySpansSegmentsWhenSnapshotMissing(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{})
	var snap testSnap
	if _, _, err := st.Recover(&snap, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(func() (any, error) { return &testSnap{Applied: 0}, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(testEvent{N: 1}); err != nil {
		t.Fatal(err)
	}
	// The crash: rotation succeeds, snapshot assembly fails.
	boom := fmt.Errorf("assembly died")
	if err := st.Checkpoint(func() (any, error) { return nil, boom }); err == nil {
		t.Fatal("Checkpoint swallowed the assembly failure")
	}
	if _, err := st.Append(testEvent{N: 2}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openStore(t, dir, Options{})
	var got []testEvent
	var snap2 testSnap
	found, replayed, err := st2.Recover(&snap2, nil, replayInto(t, &got))
	if err != nil {
		t.Fatal(err)
	}
	if !found || snap2.Applied != 0 {
		t.Fatalf("fallback snapshot %+v (found=%v)", snap2, found)
	}
	if replayed != 2 || got[0].N != 1 || got[1].N != 2 {
		t.Fatalf("replayed %v, want events from both segments", got)
	}
	st2.Close()
}

// A corrupted newest snapshot falls back to the previous generation (when
// kept) instead of serving from garbage.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{Keep: 2})
	var snap testSnap
	if _, _, err := st.Recover(&snap, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(func() (any, error) { return &testSnap{Applied: 1}, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(testEvent{N: 10}); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(func() (any, error) { return &testSnap{Applied: 2}, nil }); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Flip a payload byte in the newest snapshot.
	newest := filepath.Join(dir, fmt.Sprintf("snap-%016d", 3))
	blob, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xFF
	if err := os.WriteFile(newest, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, Options{Keep: 2})
	var got []testEvent
	var snap2 testSnap
	found, replayed, err := st2.Recover(&snap2, nil, replayInto(t, &got))
	if err != nil {
		t.Fatal(err)
	}
	if !found || snap2.Applied != 1 {
		t.Fatalf("fallback snapshot %+v (found=%v), want generation 1", snap2, found)
	}
	if replayed != 1 || got[0].N != 10 {
		t.Fatalf("replayed %v, want the event between the generations", got)
	}
	st2.Close()
}

func TestNeedCheckpointSizeTrigger(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{MaxWALBytes: 256})
	var snap testSnap
	if _, _, err := st.Recover(&snap, nil, nil); err != nil {
		t.Fatal(err)
	}
	if st.NeedCheckpoint() {
		t.Fatal("NeedCheckpoint true on an empty segment")
	}
	for i := 0; i < 64; i++ {
		if _, err := st.Append(testEvent{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if !st.NeedCheckpoint() {
		t.Fatal("NeedCheckpoint false after outgrowing MaxWALBytes")
	}
	if err := st.Checkpoint(func() (any, error) { return &testSnap{}, nil }); err != nil {
		t.Fatal(err)
	}
	if st.NeedCheckpoint() {
		t.Fatal("NeedCheckpoint still true after a checkpoint")
	}
	st.Close()
}

func TestAppendBeforeRecoverRejected(t *testing.T) {
	st := openStore(t, t.TempDir(), Options{})
	if _, err := st.Append(testEvent{}); err == nil {
		t.Fatal("Append before Recover accepted")
	}
	if err := st.Checkpoint(func() (any, error) { return &testSnap{}, nil }); err == nil {
		t.Fatal("Checkpoint before Recover accepted")
	}
}
