package persist

import (
	"io"
	"os"
)

// File is the slice of *os.File the store relies on. Every byte the store
// reads or writes flows through this interface, so a test filesystem can
// script torn writes, short reads and fsync failures at exact points —
// the crash footprints recovery claims to survive.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Name() string
	Stat() (os.FileInfo, error)
	Sync() error
	Truncate(size int64) error
}

// FS is the filesystem seam. The zero-cost default is OSFS; fault
// injection wraps it (see internal/persist/faultfs).
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	Remove(name string) error
	Rename(oldpath, newpath string) error
	ReadFile(name string) ([]byte, error)
	Stat(name string) (os.FileInfo, error)
}

// OSFS is the production filesystem: direct passthrough to the os package.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
