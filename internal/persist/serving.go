package persist

import (
	"durability/internal/serve"
	"durability/internal/stream"
)

// ServingSnapshot is the snapshot payload shared by every serving front
// end: the standing-query engine's full state plus the warm plan cache.
// Front ends with extra state of their own (cmd/durserve persists its
// HTTP handle table and live feeds) embed it in a wider struct.
type ServingSnapshot struct {
	Engine stream.EngineSnapshot
	Plans  []serve.WarmPlan
}

// EngineJournal adapts a Store into the stream engine's journal: every
// engine mutation becomes one WAL record.
type EngineJournal struct {
	Store *Store
}

// Record implements stream.Journal.
func (j EngineJournal) Record(ev stream.JournalEvent) (int64, error) {
	return j.Store.Append(ev)
}
