// Package persist is the durability substrate for serving state: a
// snapshot + write-ahead-log store that lets a serving process survive
// crashes and deploys without discarding the amortized state its whole
// value rests on — standing subscriptions, their surviving root-path
// batches (the g-MLSS sufficient statistics), live-state clocks and warm
// level plans.
//
// The design is the classical checkpoint/redo-log pair, specialised by
// one property of this repository: every serving mutation is
// deterministic given the prior state (root path i draws substream i,
// plan searches are pure functions of their cache key and the searching
// state, bootstrap generators advance reproducibly). The WAL therefore
// records *logical* events — subscribe, close, publish ticks — not
// physical state diffs: replaying the tail re-runs the same refresh code
// live traffic ran, and determinism guarantees the recovered in-memory
// state is bit-for-bit the pre-crash one. Recovery is
//
//	state = decode(latest valid snapshot) + replay(WAL tail)
//
// Each WAL record is independently framed (length, CRC, sequence number,
// gob payload) so a torn final record — the normal shape of a crash mid-
// write — is detected and the log cleanly truncated to the last complete
// entry. Snapshots are written to a temp file and atomically renamed, and
// are CRC-guarded, so a crash mid-checkpoint can never leave a half
// snapshot as the latest: recovery falls back to the previous generation,
// whose WAL is only compacted away after the next snapshot is durable.
//
// Concurrency contract with the serving layers: appends may race a
// checkpoint. Checkpoint rotates the log *before* assembling the
// snapshot, so no event can land in a segment that is about to be
// deleted; events that land in the new segment while the snapshot is
// assembled are also captured by it, and the per-stream sequence numbers
// carried inside the snapshot (see internal/stream.StreamState.LSN) let
// replay skip exactly those double-covered events.
package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Defaults for Options fields left zero.
const (
	// DefaultMaxWALBytes triggers a checkpoint once the live segment
	// outgrows it; replay cost is proportional to segment size, so this
	// bounds recovery time.
	DefaultMaxWALBytes = 4 << 20
	// DefaultMaxWALAge triggers a checkpoint once the live segment has
	// been collecting events this long, bounding recovery of a low-rate
	// server whose log grows slowly.
	DefaultMaxWALAge = 5 * time.Minute
	// DefaultKeep is how many checkpoint generations compaction retains.
	DefaultKeep = 1
)

// maxRecordBytes bounds a single WAL record; a length prefix beyond it is
// treated as corruption rather than an allocation request.
const maxRecordBytes = 1 << 30

var (
	walMagic  = []byte("DURWAL1\n")
	snapMagic = []byte("DURSNP1\n")
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms this serves from.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Store. The zero value selects every default.
type Options struct {
	MaxWALBytes int64         // checkpoint trigger: live-segment size (default DefaultMaxWALBytes)
	MaxWALAge   time.Duration // checkpoint trigger: live-segment age (default DefaultMaxWALAge)
	Keep        int           // checkpoint generations retained by compaction (default DefaultKeep)
	FS          FS            // filesystem seam (default OSFS); tests inject faults here
}

func (o Options) withDefaults() Options {
	if o.MaxWALBytes <= 0 {
		o.MaxWALBytes = DefaultMaxWALBytes
	}
	if o.MaxWALAge <= 0 {
		o.MaxWALAge = DefaultMaxWALAge
	}
	if o.Keep <= 0 {
		o.Keep = DefaultKeep
	}
	if o.FS == nil {
		o.FS = OSFS
	}
	return o
}

// Store is one serving process's durable state directory: numbered
// snapshot generations (snap-N) paired with WAL segments (wal-N holds the
// events after snap-N). A Store is safe for concurrent use. The lifecycle
// is Open → Recover (exactly once, even on a fresh directory) → any mix
// of Append / Checkpoint / NeedCheckpoint → Close.
type Store struct {
	dir  string
	opts Options
	fs   FS

	mu        sync.Mutex
	recovered bool
	seq       uint64 // segment currently appended to
	snapSeq   uint64 // latest durable snapshot generation (0 = none)
	nextLSN   int64
	wal       File
	walBytes  int64
	walSince  time.Time // when the live segment took its first record
	walDirty  bool      // live segment holds at least one record
	sticky    error     // first append/IO failure; surfaced by Append and Checkpoint
}

// Open prepares the directory (creating it if needed). No file is read
// until Recover.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("persist: empty data directory")
	}
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return &Store{dir: dir, opts: opts, fs: opts.FS}, nil
}

func (s *Store) snapPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%016d", seq))
}

func (s *Store) walPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%016d", seq))
}

// scan lists the snapshot and segment sequence numbers present on disk.
func (s *Store) scan() (snaps, wals []uint64, err error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	for _, e := range entries {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), "snap-%d", &seq); n == 1 && e.Name() == fmt.Sprintf("snap-%016d", seq) {
			snaps = append(snaps, seq)
		}
		if n, _ := fmt.Sscanf(e.Name(), "wal-%d", &seq); n == 1 && e.Name() == fmt.Sprintf("wal-%016d", seq) {
			wals = append(wals, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, nil
}

// Recover loads the latest valid snapshot into snap (a pointer to the
// caller's snapshot type), calls prepare (when non-nil) so the caller can
// rebuild its in-memory state from the decoded snapshot, and then replays
// every WAL event recorded after it through apply, in log order, passing
// each event's sequence number. It reports whether a snapshot was found
// (false on a fresh directory, whose replay count is 0) and leaves the
// store ready to Append.
//
// A torn final record — the footprint of a crash mid-write — ends replay
// cleanly at the last complete entry and is truncated away, so subsequent
// appends extend a well-formed log. Corruption anywhere else (a torn
// record *before* the end, a CRC mismatch mid-segment) is an error: it
// means history was lost, and serving from a silently gappy history would
// break the determinism guarantee recovery exists to uphold.
func (s *Store) Recover(snap any, prepare func(found bool) error, apply func(lsn int64, ev any) error) (found bool, replayed int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovered {
		return false, 0, errors.New("persist: Recover called twice")
	}

	snaps, wals, err := s.scan()
	if err != nil {
		return false, 0, err
	}

	// Latest CRC-valid snapshot wins; earlier generations are the
	// fallback when the newest write never completed its rename or its
	// payload fails the checksum.
	for i := len(snaps) - 1; i >= 0; i-- {
		ok, derr := readSnapshot(s.fs, s.snapPath(snaps[i]), snap)
		if derr != nil {
			return false, 0, derr
		}
		if ok {
			found = true
			s.snapSeq = snaps[i]
			break
		}
	}
	if prepare != nil {
		if err := prepare(found); err != nil {
			return found, 0, fmt.Errorf("persist: restoring snapshot state: %w", err)
		}
	}

	// Replay every segment at or after the chosen snapshot generation.
	// (A crash between rotation and snapshot write leaves wal-(N+1)
	// without snap-(N+1); recovery then starts from snap-N and must walk
	// both segments.)
	s.nextLSN = 1
	for wi, seq := range wals {
		if seq < s.snapSeq {
			continue
		}
		last := wi == len(wals)-1
		n, next, err := s.replaySegment(seq, last, apply)
		if err != nil {
			return found, replayed, err
		}
		replayed += n
		if next > 0 {
			s.nextLSN = next
		}
	}

	// Append into the newest existing segment, or open the first one.
	s.seq = s.snapSeq
	if len(wals) > 0 && wals[len(wals)-1] > s.seq {
		s.seq = wals[len(wals)-1]
	}
	if s.seq == 0 {
		s.seq = 1
	}
	if err := s.openSegmentLocked(s.seq); err != nil {
		return found, replayed, err
	}
	s.recovered = true
	return found, replayed, nil
}

// replaySegment reads one WAL segment, calling apply per record. Only the
// final segment may end in a torn record, which is truncated; it returns
// the record count and the LSN following the last applied record (0 when
// the segment is empty).
func (s *Store) replaySegment(seq uint64, last bool, apply func(lsn int64, ev any) error) (n int, nextLSN int64, err error) {
	path := s.walPath(seq)
	f, err := s.fs.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, 0, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()

	header := make([]byte, len(walMagic)+8)
	if _, err := io.ReadFull(f, header); err != nil {
		// A crash during rotation can tear the 16-byte header itself,
		// leaving a short final segment that never took a record. That is
		// a normal crash footprint: truncate it to empty and let
		// openSegmentLocked rewrite the header. A short header anywhere
		// but the final segment is lost history.
		if last && (err == io.EOF || err == io.ErrUnexpectedEOF) {
			if terr := f.Truncate(0); terr != nil {
				return 0, 0, fmt.Errorf("persist: truncating torn header of %s: %w", path, terr)
			}
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("persist: %s: reading segment header: %w", path, err)
	}
	if !bytes.Equal(header[:len(walMagic)], walMagic) {
		return 0, 0, fmt.Errorf("persist: %s is not a WAL segment", path)
	}
	lsn := int64(binary.LittleEndian.Uint64(header[len(walMagic):]))
	offset := int64(len(header))

	r := &countingReader{r: f}
	for {
		ev, status, err := readRecord(r, lsn)
		if err != nil {
			return n, 0, fmt.Errorf("persist: %s: record %d (lsn %d): %w", path, n, lsn, err)
		}
		if status == readEOF {
			break
		}
		if status == readTorn {
			// A torn record at the end of the final segment is the
			// expected crash footprint: truncate to the last complete
			// record and carry on. Anywhere else it is lost history.
			if !last {
				return n, 0, fmt.Errorf("persist: %s: torn record %d in a non-final segment — history is incomplete", path, n)
			}
			if err := f.Truncate(offset); err != nil {
				return n, 0, fmt.Errorf("persist: truncating torn tail of %s: %w", path, err)
			}
			break
		}
		if apply != nil {
			if err := apply(lsn, ev); err != nil {
				return n, 0, fmt.Errorf("persist: applying lsn %d: %w", lsn, err)
			}
		}
		n++
		lsn++
		offset += r.n
		r.n = 0
	}
	return n, lsn, nil
}

// countingReader tracks bytes consumed, so truncation lands exactly after
// the last complete record.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// openSegmentLocked opens (or creates, with a header carrying the next
// LSN) the given segment for appending and primes the trigger bookkeeping.
func (s *Store) openSegmentLocked(seq uint64) error {
	path := s.walPath(seq)
	f, err := s.fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	size := st.Size()
	if size > 0 && size < int64(len(walMagic)+8) {
		// A crash tore the header write of a segment that never took a
		// record (Recover truncates this shape to 0 for the final
		// segment); start it over rather than appending after garbage.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return fmt.Errorf("persist: %w", err)
		}
		size = 0
	}
	if size == 0 {
		header := make([]byte, len(walMagic)+8)
		copy(header, walMagic)
		binary.LittleEndian.PutUint64(header[len(walMagic):], uint64(s.nextLSN))
		if _, err := f.Write(header); err != nil {
			f.Close()
			return fmt.Errorf("persist: %w", err)
		}
		size = int64(len(header))
	} else if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if s.wal != nil {
		s.wal.Close()
	}
	s.wal = f
	s.walBytes = size
	s.walDirty = size > int64(len(walMagic)+8)
	s.walSince = time.Now()
	return nil
}

// Append journals one event and returns its log sequence number. The
// event's concrete type must be gob-registered (it travels as an
// interface value). Writes go straight to the file — a killed process
// loses at most the record being written, which recovery detects and
// truncates — but are not fsynced per record; call Checkpoint for a
// durability point.
func (s *Store) Append(ev any) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered {
		return 0, errors.New("persist: Append before Recover")
	}
	if s.sticky != nil {
		return 0, s.sticky
	}
	lsn := s.nextLSN
	frame, err := encodeRecord(lsn, ev)
	if err != nil {
		return 0, err
	}
	if _, err := s.wal.Write(frame); err != nil {
		s.sticky = fmt.Errorf("persist: appending to %s: %w", s.wal.Name(), err)
		return 0, s.sticky
	}
	if !s.walDirty {
		s.walSince = time.Now()
	}
	s.walDirty = true
	s.walBytes += int64(len(frame))
	s.nextLSN++
	return lsn, nil
}

// NeedCheckpoint reports whether the live segment has outgrown the size
// trigger or outlived the age trigger. The serving layer polls it after
// mutations and checkpoints outside its own locks.
func (s *Store) NeedCheckpoint() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered || !s.walDirty {
		return false
	}
	return s.walBytes >= s.opts.MaxWALBytes || time.Since(s.walSince) >= s.opts.MaxWALAge
}

// Err returns the store's sticky I/O failure, if any — the trace of an
// append that could not be written (Subscription.Close, for one, cannot
// surface errors itself).
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sticky
}

// Checkpoint writes a new snapshot generation and compacts the log. The
// order is the correctness of the whole store:
//
//  1. rotate — a fresh segment starts taking appends, so nothing more
//     lands in segments the compaction below will delete;
//  2. assemble — the caller captures its state. Events appended after
//     rotation may or may not make it in; the sequence numbers inside the
//     snapshot let replay skip the ones that did;
//  3. publish — the snapshot is written, CRC-sealed, fsynced and
//     atomically renamed into place;
//  4. compact — older generations and their segments are deleted (the
//     newest Keep generations survive).
//
// assemble runs without store locks held, so live traffic keeps flowing
// through Append while the snapshot is taken.
func (s *Store) Checkpoint(assemble func() (any, error)) error {
	s.mu.Lock()
	if !s.recovered {
		s.mu.Unlock()
		return errors.New("persist: Checkpoint before Recover")
	}
	if s.sticky != nil {
		err := s.sticky
		s.mu.Unlock()
		return err
	}
	if err := s.wal.Sync(); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("persist: syncing %s: %w", s.wal.Name(), err)
	}
	newSeq := s.seq + 1
	if err := s.openSegmentLocked(newSeq); err != nil {
		s.mu.Unlock()
		return err
	}
	s.seq = newSeq
	s.mu.Unlock()

	snap, err := assemble()
	if err != nil {
		// The rotation stands — harmless: the old snapshot plus both
		// segments still replay to the live state.
		return fmt.Errorf("persist: assembling snapshot: %w", err)
	}
	if err := writeSnapshot(s.fs, s.snapPath(newSeq), snap); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapSeq = newSeq
	s.compactLocked()
	return nil
}

// compactLocked deletes generations older than the newest Keep. A
// segment is deleted only when a strictly newer durable snapshot exists,
// so recovery never needs a file compaction removed.
func (s *Store) compactLocked() {
	snaps, wals, err := s.scan()
	if err != nil {
		return // compaction is best-effort; stale files only cost disk
	}
	var floor uint64
	if n := len(snaps); n > s.opts.Keep {
		floor = snaps[n-s.opts.Keep]
	} else if n > 0 {
		floor = snaps[0]
	} else {
		return
	}
	for _, seq := range snaps {
		if seq < floor {
			s.fs.Remove(s.snapPath(seq))
		}
	}
	for _, seq := range wals {
		// wal-N holds the events after snap-N; it is dead once a newer
		// snapshot is durable.
		if seq < floor && seq < s.snapSeq {
			s.fs.Remove(s.walPath(seq))
		}
	}
}

// Close syncs and closes the live segment. The store is not usable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	//durlint:ignore locksafe final close: the store mutex serializes all WAL operations by design and nothing else runs after Close
	err := s.wal.Sync()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }
