package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// This file is the replication surface of the store: a consistent listing
// of its files for a shipper to copy, and a Tailer that parses complete
// records out of a segment as bytes arrive — the follower's read path.

// FileInfo names one store file and its size.
type FileInfo struct {
	Name string
	Size int64
}

// Listing is a point-in-time view of the store's snapshot and WAL files.
// The live segment's size is reported at the last complete record
// boundary, so a shipper copying up to Size never captures half a frame
// the primary is still writing.
type Listing struct {
	Files   []FileInfo
	NextLSN int64 // LSN the next Append will take; NextLSN-1 is the last durable record
}

// Listing scans the directory under the store lock. It is only valid
// after Recover.
func (s *Store) Listing() (Listing, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered {
		return Listing{}, errors.New("persist: Listing before Recover")
	}
	snaps, wals, err := s.scan()
	if err != nil {
		return Listing{}, err
	}
	var out Listing
	out.NextLSN = s.nextLSN
	add := func(name string, size int64) {
		out.Files = append(out.Files, FileInfo{Name: name, Size: size})
	}
	for _, seq := range snaps {
		st, err := s.fs.Stat(s.snapPath(seq))
		if err != nil {
			continue // compacted between scan and stat
		}
		add(fmt.Sprintf("snap-%016d", seq), st.Size())
	}
	for _, seq := range wals {
		if seq == s.seq {
			// Live segment: walBytes is maintained at frame boundaries.
			add(fmt.Sprintf("wal-%016d", seq), s.walBytes)
			continue
		}
		st, err := s.fs.Stat(s.walPath(seq))
		if err != nil {
			continue
		}
		add(fmt.Sprintf("wal-%016d", seq), st.Size())
	}
	sort.Slice(out.Files, func(i, j int) bool { return out.Files[i].Name < out.Files[j].Name })
	return out, nil
}

// LastLSN returns the sequence number of the last appended record (0 when
// the store has never taken one). A follower that has applied up to
// LastLSN holds everything the primary wrote.
func (s *Store) LastLSN() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextLSN - 1
}

// ReadSnapshotFile decodes a snapshot file into snap. ok == false with a
// nil error means the file is missing, incomplete or fails its checksum.
// A nil fsys reads through OSFS.
func ReadSnapshotFile(fsys FS, path string, snap any) (ok bool, err error) {
	if fsys == nil {
		fsys = OSFS
	}
	return readSnapshot(fsys, path, snap)
}

// Tailer incrementally parses records out of one WAL segment file that
// another process (a shipper) is appending to. Next returns records as
// they become complete; an incomplete tail is "not ready yet", never an
// error, because more bytes may still arrive. Bytes already parsed are
// immutable by the append-only contract, so a checksum failure on a
// complete frame is real corruption.
type Tailer struct {
	fsys FS
	path string
	f    File

	headerDone bool
	next       int64 // LSN expected at off
	off        int64 // committed frame-boundary offset
}

// OpenTailer opens a segment for tailing. The file must exist; it may
// still be empty (even its header not yet shipped).
func OpenTailer(fsys FS, path string) (*Tailer, error) {
	if fsys == nil {
		fsys = OSFS
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return &Tailer{fsys: fsys, path: path, f: f}, nil
}

// size returns the current byte length of the underlying file.
func (t *Tailer) size() (int64, error) {
	st, err := t.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("persist: %w", err)
	}
	return st.Size(), nil
}

// readAt fills buf from the given offset.
func (t *Tailer) readAt(buf []byte, off int64) error {
	if _, err := t.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := io.ReadFull(t.f, buf); err != nil {
		return fmt.Errorf("persist: %s: %w", t.path, err)
	}
	return nil
}

// Next parses the next complete record. ok == false means the segment
// currently ends mid-frame (or before its header): call again after more
// bytes have been shipped. err reports genuine corruption — a bad magic,
// a checksum failure on a complete frame, or a broken LSN chain.
func (t *Tailer) Next() (lsn int64, ev any, ok bool, err error) {
	size, err := t.size()
	if err != nil {
		return 0, nil, false, err
	}
	if !t.headerDone {
		headerLen := int64(len(walMagic) + 8)
		if size < headerLen {
			return 0, nil, false, nil
		}
		header := make([]byte, headerLen)
		if err := t.readAt(header, 0); err != nil {
			return 0, nil, false, err
		}
		if !bytes.Equal(header[:len(walMagic)], walMagic) {
			return 0, nil, false, fmt.Errorf("persist: %s is not a WAL segment", t.path)
		}
		t.next = int64(binary.LittleEndian.Uint64(header[len(walMagic):]))
		t.off = headerLen
		t.headerDone = true
	}
	if size < t.off {
		return 0, nil, false, fmt.Errorf("persist: %s shrank below parsed offset %d — replicated history rewritten", t.path, t.off)
	}
	if size < t.off+frameHeaderLen {
		return 0, nil, false, nil
	}
	header := make([]byte, frameHeaderLen)
	if err := t.readAt(header, t.off); err != nil {
		return 0, nil, false, err
	}
	length := binary.LittleEndian.Uint32(header[0:])
	if length > maxRecordBytes {
		return 0, nil, false, fmt.Errorf("persist: %s: record at %d has impossible length %d", t.path, t.off, length)
	}
	if size < t.off+frameHeaderLen+int64(length) {
		return 0, nil, false, nil
	}
	payload := make([]byte, length)
	if err := t.readAt(payload, t.off+frameHeaderLen); err != nil {
		return 0, nil, false, err
	}
	crc := crc32.Update(0, crcTable, header[8:])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != binary.LittleEndian.Uint32(header[4:]) {
		return 0, nil, false, fmt.Errorf("persist: %s: checksum failure on complete record at %d", t.path, t.off)
	}
	lsn = int64(binary.LittleEndian.Uint64(header[8:]))
	if lsn != t.next {
		return 0, nil, false, fmt.Errorf("persist: %s: record carries lsn %d, expected %d", t.path, lsn, t.next)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
		return 0, nil, false, fmt.Errorf("persist: %s: decoding record lsn %d: %w", t.path, lsn, err)
	}
	t.off += frameHeaderLen + int64(length)
	t.next++
	return lsn, env.E, true, nil
}

// Offset returns the committed frame-boundary offset reached so far.
func (t *Tailer) Offset() int64 { return t.off }

// NextLSN returns the LSN the next complete record will carry (0 until
// the segment header has been parsed).
func (t *Tailer) NextLSN() int64 { return t.next }

// Close releases the underlying file.
func (t *Tailer) Close() error { return t.f.Close() }
