package faultfs

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"durability/internal/persist"
)

// testEv is the WAL payload used by these drills.
type testEv struct{ N int }

func init() { gob.Register(testEv{}) }

// recoverAll reopens dir with the real filesystem and returns the events
// that replay, plus whether a snapshot was found.
func recoverAll(t *testing.T, dir string) (found bool, snap []int, replayed []int) {
	t.Helper()
	st, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	var snapState []int
	found, _, err = st.Recover(&snapState, nil, func(lsn int64, ev any) error {
		replayed = append(replayed, ev.(testEv).N)
		return nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return found, snapState, replayed
}

// TestTornWriteTruncated scripts a torn append — only a prefix of the
// frame reaches the file — and checks recovery keeps every complete
// record and drops the torn one.
func TestTornWriteTruncated(t *testing.T) {
	dir := t.TempDir()
	rule := &Rule{Op: OpWrite, Path: "wal-", Nth: 4, KeepBytes: 7, Kill: true}
	fsys := Wrap(nil, rule)

	st, err := persist.Open(dir, persist.Options{FS: fsys})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, _, err := st.Recover(new([]int), nil, nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	// Write 1 is the segment header; appends are writes 2..N.
	var wrote []int
	for i := 1; ; i++ {
		if _, err := st.Append(testEv{N: i}); err != nil {
			if !errors.Is(err, ErrInjected) && !errors.Is(err, ErrDead) {
				t.Fatalf("Append: unexpected error %v", err)
			}
			break
		}
		wrote = append(wrote, i)
	}
	if !fsys.Fired(rule) {
		t.Fatal("torn-write rule never fired")
	}
	if len(wrote) != 2 {
		t.Fatalf("expected 2 clean appends before the tear, got %d", len(wrote))
	}

	_, _, replayed := recoverAll(t, dir)
	if fmt.Sprint(replayed) != fmt.Sprint(wrote) {
		t.Fatalf("recovered %v, wrote %v", replayed, wrote)
	}
}

// TestSyncFailureSurfaces scripts an fsync error during checkpoint and
// checks it is reported, not swallowed, and that the pre-checkpoint log
// still recovers.
func TestSyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	rule := &Rule{Op: OpSync, Path: "wal-"}
	fsys := Wrap(nil, rule)

	st, err := persist.Open(dir, persist.Options{FS: fsys})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, _, err := st.Recover(new([]int), nil, nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := st.Append(testEv{N: i}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	err = st.Checkpoint(func() (any, error) { return []int{1, 2, 3}, nil })
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("Checkpoint error = %v, want injected sync failure", err)
	}

	_, _, replayed := recoverAll(t, dir)
	if fmt.Sprint(replayed) != "[1 2 3]" {
		t.Fatalf("recovered %v, want [1 2 3]", replayed)
	}
}

// TestTornRotationHeader crashes mid-rotation: the fresh segment's
// 16-byte header is torn at 8 bytes. Recovery must truncate the torn
// header and keep the full pre-rotation history.
func TestTornRotationHeader(t *testing.T) {
	dir := t.TempDir()
	// The second segment's first write is its header.
	rule := &Rule{Op: OpWrite, Path: "wal-0000000000000002", Nth: 1, KeepBytes: 8, Kill: true}
	fsys := Wrap(nil, rule)

	st, err := persist.Open(dir, persist.Options{FS: fsys})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, _, err := st.Recover(new([]int), nil, nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := st.Append(testEv{N: i}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := st.Checkpoint(func() (any, error) { return []int{9}, nil }); err == nil {
		t.Fatal("Checkpoint succeeded despite torn rotation header")
	}

	// The torn 8-byte header must exist before recovery repairs it.
	if blob, err := os.ReadFile(filepath.Join(dir, "wal-0000000000000002")); err != nil || len(blob) != 8 {
		t.Fatalf("torn segment = %d bytes, err %v; want 8 bytes", len(blob), err)
	}
	found, _, replayed := recoverAll(t, dir)
	if found {
		t.Fatal("no snapshot should have been published")
	}
	if fmt.Sprint(replayed) != "[1 2 3]" {
		t.Fatalf("recovered %v, want [1 2 3]", replayed)
	}
	// And the repaired store keeps appending from the right LSN.
	st2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if _, _, err := st2.Recover(new([]int), nil, nil); err != nil {
		t.Fatalf("re-Recover: %v", err)
	}
	lsn, err := st2.Append(testEv{N: 4})
	if err != nil {
		t.Fatalf("Append after repair: %v", err)
	}
	if lsn != 4 {
		t.Fatalf("post-repair lsn = %d, want 4", lsn)
	}
}

// TestShortSnapshotReadFallsBack truncates the newest snapshot at read
// time; recovery must fall back to the previous generation instead of
// serving a half-read state.
func TestShortSnapshotReadFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, err := persist.Open(dir, persist.Options{Keep: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, _, err := st.Recover(new([]int), nil, nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if _, err := st.Append(testEv{N: 1}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := st.Checkpoint(func() (any, error) { return []int{1}, nil }); err != nil {
		t.Fatalf("Checkpoint 1: %v", err)
	}
	if _, err := st.Append(testEv{N: 2}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := st.Checkpoint(func() (any, error) { return []int{1, 2}, nil }); err != nil {
		t.Fatalf("Checkpoint 2: %v", err)
	}
	st.Close()

	fsys := Wrap(nil, &Rule{Op: OpRead, Path: "snap-0000000000000003", MaxBytes: 10})
	st2, err := persist.Open(dir, persist.Options{FS: fsys})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	var snap []int
	var replayed []int
	found, _, err := st2.Recover(&snap, nil, func(lsn int64, ev any) error {
		replayed = append(replayed, ev.(testEv).N)
		return nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !found || fmt.Sprint(snap) != "[1]" {
		t.Fatalf("fallback snapshot = %v (found %v), want [1]", snap, found)
	}
	if fmt.Sprint(replayed) != "[2]" {
		t.Fatalf("replayed %v, want [2]", replayed)
	}
}

// TestCrashPointsEnumerated is the in-process port of the kill -9 drill:
// instead of killing a subprocess at an arbitrary moment, it kills the
// filesystem at *every* write in a fixed workload and checks the
// invariant the subprocess drill could only spot-check — whatever
// recovery returns is exactly the records whose frames were fully
// written, in order, with no gap.
func TestCrashPointsEnumerated(t *testing.T) {
	const appends = 8
	for point := 1; ; point++ {
		for _, keep := range []int{0, 5} { // clean kill vs torn frame
			dir := t.TempDir()
			rule := &Rule{Op: OpWrite, Nth: point, KeepBytes: keep, Kill: true}
			fsys := Wrap(nil, rule)
			st, err := persist.Open(dir, persist.Options{FS: fsys})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			var wrote []int
			if _, _, err := st.Recover(new([]int), nil, nil); err != nil {
				// The crash landed on the header write inside Recover
				// itself — a valid crash point; nothing was appended.
				if !errors.Is(err, ErrInjected) && !errors.Is(err, ErrDead) {
					t.Fatalf("point %d: Recover: %v", point, err)
				}
			} else {
				for i := 1; i <= appends; i++ {
					if _, err := st.Append(testEv{N: i}); err != nil {
						break
					}
					wrote = append(wrote, i)
				}
			}
			if !fsys.Fired(rule) {
				// The workload finished without reaching this write
				// count: every crash point is enumerated; stop.
				if point <= 2 {
					t.Fatalf("rule never fired at point %d", point)
				}
				return
			}
			_, _, replayed := recoverAll(t, dir)
			if fmt.Sprint(replayed) != fmt.Sprint(wrote) {
				t.Fatalf("crash at write %d (keep %d): recovered %v, survived appends %v",
					point, keep, replayed, wrote)
			}
		}
	}
}

// TestDeadModeFailsEverything checks kill semantics: once dead, every
// operation errors with ErrDead.
func TestDeadModeFailsEverything(t *testing.T) {
	dir := t.TempDir()
	fsys := Wrap(nil)
	st, err := persist.Open(dir, persist.Options{FS: fsys})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, _, err := st.Recover(new([]int), nil, nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	fsys.Kill()
	if _, err := st.Append(testEv{N: 1}); !errors.Is(err, ErrDead) {
		t.Fatalf("Append after Kill = %v, want ErrDead", err)
	}
	if _, err := fsys.ReadDir(dir); !errors.Is(err, ErrDead) {
		t.Fatalf("ReadDir after Kill = %v, want ErrDead", err)
	}
}
