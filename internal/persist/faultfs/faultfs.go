// Package faultfs is a fault-injecting persist.FS: a wrappable file layer
// that tears writes, shortens reads, fails fsyncs and delays I/O at
// scripted points, then optionally "kills" the process by failing every
// subsequent operation. It exists so the crash footprints the store
// claims to survive — and the failover the replication layer claims to
// mask — are enumerable in-process instead of depending on subprocess
// kill -9 timing.
//
// A script is a list of Rules. Each rule watches one operation kind,
// optionally filtered by a path substring, and fires on the Nth matching
// call. Firing performs the rule's effect:
//
//   - a torn write (KeepBytes of the buffer reach the file, then an error),
//   - a short read (at most MaxBytes returned),
//   - a plain error (fsync failures, vanished files),
//   - a delay (slow segment shipping),
//
// and, when Kill is set, flips the filesystem into dead mode — every
// later operation fails with ErrDead, exactly as if the process had been
// killed between two syscalls. Bytes written before the kill stay on
// disk, which is the kill -9 contract on a healthy kernel.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"durability/internal/persist"
)

// Op names one interceptable operation kind.
type Op string

const (
	OpOpen     Op = "open"
	OpWrite    Op = "write"
	OpRead     Op = "read" // covers File.Read and FS.ReadFile
	OpSync     Op = "sync"
	OpRemove   Op = "remove"
	OpRename   Op = "rename"
	OpTruncate Op = "truncate"
)

// ErrInjected is the default error surfaced by a firing rule.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrDead is returned by every operation once the filesystem is dead.
var ErrDead = errors.New("faultfs: process is dead")

// Rule scripts one fault. Zero Nth means the first matching call.
type Rule struct {
	Op   Op
	Path string // substring of the file path; "" matches every path
	Nth  int    // fire on the Nth matching call (1-based)

	KeepBytes int           // OpWrite: bytes of the buffer that reach the file before the failure
	MaxBytes  int           // OpRead: cap on bytes returned (no error) — a short read
	Delay     time.Duration // sleep before the operation proceeds (then no error unless Err/Kill set)
	Err       error         // error to return (default ErrInjected; ignored for pure Delay/MaxBytes rules)
	Kill      bool          // after firing, fail every subsequent operation with ErrDead

	seen  int
	fired bool
}

// FS wraps an inner persist.FS with a fault script.
type FS struct {
	inner persist.FS

	mu    sync.Mutex
	rules []*Rule
	dead  bool
}

// Wrap builds a fault-injecting filesystem over inner (nil = the real OS).
func Wrap(inner persist.FS, rules ...*Rule) *FS {
	if inner == nil {
		inner = persist.OSFS
	}
	return &FS{inner: inner, rules: rules}
}

// Kill flips the filesystem into dead mode directly (a crash between
// syscalls, with no torn artifact).
func (f *FS) Kill() {
	f.mu.Lock()
	f.dead = true
	f.mu.Unlock()
}

// Dead reports whether a Kill rule (or Kill call) has taken effect.
func (f *FS) Dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

// Fired reports whether the given rule has fired.
func (f *FS) Fired(r *Rule) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return r.fired
}

// check consults the script for one operation. It returns the rule that
// fired (nil for a clean pass) and whether the filesystem is dead.
func (f *FS) check(op Op, path string) (*Rule, error) {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return nil, ErrDead
	}
	var hit *Rule
	for _, r := range f.rules {
		if r.fired || r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		nth := r.Nth
		if nth <= 0 {
			nth = 1
		}
		if r.seen == nth {
			r.fired = true
			hit = r
			break
		}
	}
	if hit != nil && hit.Kill {
		f.dead = true
	}
	f.mu.Unlock()
	if hit != nil && hit.Delay > 0 {
		time.Sleep(hit.Delay)
	}
	return hit, nil
}

// ruleErr resolves the error a firing rule surfaces.
func ruleErr(r *Rule) error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (persist.File, error) {
	r, err := f.check(OpOpen, name)
	if err != nil {
		return nil, err
	}
	if r != nil && (r.Err != nil || r.Kill || r.Delay == 0) && r.MaxBytes == 0 {
		return nil, fmt.Errorf("faultfs: open %s: %w", name, ruleErr(r))
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner, name: name}, nil
}

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) {
	f.mu.Lock()
	dead := f.dead
	f.mu.Unlock()
	if dead {
		return nil, ErrDead
	}
	return f.inner.ReadDir(name)
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	f.mu.Lock()
	dead := f.dead
	f.mu.Unlock()
	if dead {
		return ErrDead
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FS) Remove(name string) error {
	r, err := f.check(OpRemove, name)
	if err != nil {
		return err
	}
	if r != nil && (r.Err != nil || r.Kill || r.Delay == 0) {
		return fmt.Errorf("faultfs: remove %s: %w", name, ruleErr(r))
	}
	return f.inner.Remove(name)
}

func (f *FS) Rename(oldpath, newpath string) error {
	r, err := f.check(OpRename, oldpath)
	if err != nil {
		return err
	}
	if r != nil && (r.Err != nil || r.Kill || r.Delay == 0) {
		return fmt.Errorf("faultfs: rename %s: %w", oldpath, ruleErr(r))
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	r, err := f.check(OpRead, name)
	if err != nil {
		return nil, err
	}
	blob, rerr := f.inner.ReadFile(name)
	if r != nil {
		if r.MaxBytes > 0 {
			if rerr != nil {
				return nil, rerr
			}
			if len(blob) > r.MaxBytes {
				blob = blob[:r.MaxBytes]
			}
			return blob, nil
		}
		if r.Err != nil || r.Kill || r.Delay == 0 {
			return nil, fmt.Errorf("faultfs: read %s: %w", name, ruleErr(r))
		}
	}
	return blob, rerr
}

func (f *FS) Stat(name string) (os.FileInfo, error) {
	f.mu.Lock()
	dead := f.dead
	f.mu.Unlock()
	if dead {
		return nil, ErrDead
	}
	return f.inner.Stat(name)
}

// file intercepts per-handle operations.
type file struct {
	fs    *FS
	inner persist.File
	name  string
}

func (h *file) Name() string                       { return h.inner.Name() }
func (h *file) Stat() (os.FileInfo, error)         { return h.inner.Stat() }
func (h *file) Seek(o int64, w int) (int64, error) { return h.inner.Seek(o, w) }

// Close always passes through: a dead process's descriptors close anyway.
func (h *file) Close() error { return h.inner.Close() }

func (h *file) Read(p []byte) (int, error) {
	r, err := h.fs.check(OpRead, h.name)
	if err != nil {
		return 0, err
	}
	if r != nil {
		if r.MaxBytes > 0 {
			if len(p) > r.MaxBytes {
				p = p[:r.MaxBytes]
			}
			return h.inner.Read(p)
		}
		if r.Err != nil || r.Kill || r.Delay == 0 {
			return 0, fmt.Errorf("faultfs: read %s: %w", h.name, ruleErr(r))
		}
	}
	return h.inner.Read(p)
}

func (h *file) Write(p []byte) (int, error) {
	r, err := h.fs.check(OpWrite, h.name)
	if err != nil {
		return 0, err
	}
	if r != nil {
		if r.Delay > 0 && r.Err == nil && !r.Kill && r.KeepBytes == 0 {
			return h.inner.Write(p)
		}
		// Torn write: a prefix of the buffer reaches the file, then the
		// process is gone mid-syscall.
		keep := r.KeepBytes
		if keep > len(p) {
			keep = len(p)
		}
		if keep > 0 {
			if n, werr := h.inner.Write(p[:keep]); werr != nil {
				return n, werr
			}
		}
		return keep, fmt.Errorf("faultfs: write %s: %w", h.name, ruleErr(r))
	}
	return h.inner.Write(p)
}

func (h *file) Sync() error {
	r, err := h.fs.check(OpSync, h.name)
	if err != nil {
		return err
	}
	if r != nil && (r.Err != nil || r.Kill || r.Delay == 0) {
		return fmt.Errorf("faultfs: sync %s: %w", h.name, ruleErr(r))
	}
	return h.inner.Sync()
}

func (h *file) Truncate(size int64) error {
	r, err := h.fs.check(OpTruncate, h.name)
	if err != nil {
		return err
	}
	if r != nil && (r.Err != nil || r.Kill || r.Delay == 0) {
		return fmt.Errorf("faultfs: truncate %s: %w", h.name, ruleErr(r))
	}
	return h.inner.Truncate(size)
}
