package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// envelope wraps a WAL event so gob carries it as an interface value;
// concrete event types register themselves (internal/stream does, and
// front ends register their own).
type envelope struct {
	E any
}

// Record frame layout:
//
//	[4B payload length][4B CRC32C of lsn+payload][8B lsn][payload]
//
// Every record is a self-contained gob stream, so a reader can stop at
// any frame boundary and a torn frame never confuses the decoder state.

const frameHeaderLen = 4 + 4 + 8

// encodeRecord frames one event.
func encodeRecord(lsn int64, ev any) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(envelope{E: ev}); err != nil {
		return nil, fmt.Errorf("persist: encoding %T: %w", ev, err)
	}
	frame := make([]byte, frameHeaderLen+payload.Len())
	binary.LittleEndian.PutUint32(frame[0:], uint32(payload.Len()))
	binary.LittleEndian.PutUint64(frame[8:], uint64(lsn))
	copy(frame[frameHeaderLen:], payload.Bytes())
	crc := crc32.Update(0, crcTable, frame[8:])
	binary.LittleEndian.PutUint32(frame[4:], crc)
	return frame, nil
}

// readStatus is the outcome of one frame read.
type readStatus int

const (
	readOK   readStatus = iota // a complete, valid record
	readEOF                    // stream ended cleanly at a frame boundary
	readTorn                   // incomplete or checksum-failed record: a crash footprint
)

// readRecord reads one frame. readEOF and readTorn end the stream; the
// caller decides whether a torn record is acceptable (it is only at the
// very end of the final segment). Only an EOF-shaped short read counts
// as torn — a genuine I/O failure (EIO, a vanished file) is an error,
// never a truncation point: mistaking one for a torn tail would
// silently discard committed history. A record that checksums correctly
// but will not decode, or whose sequence number breaks the chain, is
// likewise corruption beyond a torn tail and reports an error.
func readRecord(r io.Reader, wantLSN int64) (ev any, status readStatus, err error) {
	header := make([]byte, frameHeaderLen)
	if _, err := io.ReadFull(r, header); err != nil {
		switch err {
		case io.EOF:
			return nil, readEOF, nil
		case io.ErrUnexpectedEOF:
			return nil, readTorn, nil // short header
		}
		return nil, readTorn, fmt.Errorf("reading record header: %w", err)
	}
	length := binary.LittleEndian.Uint32(header[0:])
	if length > maxRecordBytes {
		return nil, readTorn, nil // garbage length
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, readTorn, nil // short payload
		}
		return nil, readTorn, fmt.Errorf("reading record payload: %w", err)
	}
	crc := crc32.Update(0, crcTable, header[8:])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != binary.LittleEndian.Uint32(header[4:]) {
		return nil, readTorn, nil // torn or bit-rotted record
	}
	lsn := int64(binary.LittleEndian.Uint64(header[8:]))
	if lsn != wantLSN {
		return nil, readTorn, fmt.Errorf("record carries lsn %d, expected %d", lsn, wantLSN)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
		return nil, readTorn, fmt.Errorf("decoding record: %w", err)
	}
	return env.E, readOK, nil
}

// Snapshot file layout:
//
//	[8B magic][4B CRC32C of payload][8B payload length][payload]
//
// The file is written to a temp name, fsynced and atomically renamed, so
// the latest snap-N is either complete or absent; the checksum guards the
// payload against anything subtler.

// writeSnapshot atomically publishes a snapshot file.
func writeSnapshot(fsys FS, path string, snap any) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return fmt.Errorf("persist: encoding snapshot %T: %w", snap, err)
	}
	header := make([]byte, len(snapMagic)+4+8)
	copy(header, snapMagic)
	binary.LittleEndian.PutUint32(header[len(snapMagic):], crc32.Checksum(payload.Bytes(), crcTable))
	binary.LittleEndian.PutUint64(header[len(snapMagic)+4:], uint64(payload.Len()))

	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(header); err == nil {
		_, err = f.Write(payload.Bytes())
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("persist: writing %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	// Make the rename itself durable.
	if dir, err := fsys.OpenFile(filepath.Dir(path), os.O_RDONLY, 0); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// readSnapshot decodes a snapshot file into snap (a pointer to the
// caller's snapshot type). ok == false with a nil error means the file is
// missing, incomplete or fails its checksum — recovery falls back to an
// older generation. A checksum-valid payload that will not decode is a
// programming error (an unregistered type, a changed snapshot struct) and
// is reported, not masked.
func readSnapshot(fsys FS, path string, snap any) (ok bool, err error) {
	blob, err := fsys.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("persist: %w", err)
	}
	headerLen := len(snapMagic) + 4 + 8
	if len(blob) < headerLen || !bytes.Equal(blob[:len(snapMagic)], snapMagic) {
		return false, nil
	}
	crc := binary.LittleEndian.Uint32(blob[len(snapMagic):])
	length := binary.LittleEndian.Uint64(blob[len(snapMagic)+4:])
	payload := blob[headerLen:]
	if uint64(len(payload)) != length || crc32.Checksum(payload, crcTable) != crc {
		return false, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(snap); err != nil {
		return false, fmt.Errorf("persist: decoding snapshot %s: %w", path, err)
	}
	return true, nil
}
