package stochastic

import "durability/internal/rng"

// RandomWalk is the textbook Gaussian random walk
//
//	X_t = X_{t-1} + Drift + Sigma * eps_t,   eps_t ~ N(0,1).
//
// It is the simplest process with a known first-hitting distribution, which
// makes it the reference model for the unbiasedness tests: analytical
// hitting probabilities can be computed to high accuracy and compared
// against SRS and MLSS estimates.
type RandomWalk struct {
	Start float64 // X_0
	Drift float64 // per-step drift
	Sigma float64 // per-step noise standard deviation
}

// Name implements Process.
func (w *RandomWalk) Name() string { return "random-walk" }

// Initial implements Process.
func (w *RandomWalk) Initial() State { return &Scalar{V: w.Start} }

// Step implements Process.
func (w *RandomWalk) Step(s State, _ int, src *rng.Source) {
	sc := s.(*Scalar)
	sc.V += w.Drift + w.Sigma*src.Norm()
}

// NewStateVec implements BulkProcess.
func (w *RandomWalk) NewStateVec(lanes int) StateVec { return newScalarVec(lanes) }

// StepVec implements BulkProcess: Step's arithmetic per lane.
func (w *RandomWalk) StepVec(v StateVec, lanes []int, _ []int, src []*rng.Source) {
	sv := v.(*scalarVec)
	for _, i := range lanes {
		sv.lane[i].V += w.Drift + w.Sigma*src[i].Norm()
	}
}
