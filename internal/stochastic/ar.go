package stochastic

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"durability/internal/rng"
)

// AR is the auto-regressive model AR(m) of §2.1 example (1):
//
//	v_t = sum_i Phi[i] * v_{t-i} + Sigma * eps_t,   eps_t ~ N(0,1).
//
// The state carries the last m values in a ring buffer so that Step is
// allocation-free and Clone costs O(m).
type AR struct {
	Phi   []float64 // lag coefficients, Phi[0] multiplies v_{t-1}
	Sigma float64   // noise standard deviation
	Start []float64 // initial history v_0, v_{-1}, ...; len must equal len(Phi)
}

// NewAR builds an AR(m) process with constant initial history start.
func NewAR(phi []float64, sigma, start float64) *AR {
	init := make([]float64, len(phi))
	for i := range init {
		init[i] = start
	}
	return &AR{Phi: append([]float64(nil), phi...), Sigma: sigma, Start: init}
}

// ARState is the last-m-values ring buffer. hist[head] is v_{t-1}, the most
// recent value.
type ARState struct {
	hist []float64
	head int
}

// Clone implements State.
func (s *ARState) Clone() State {
	return &ARState{hist: append([]float64(nil), s.hist...), head: s.head}
}

// arStateWire is the exported mirror of ARState for gob: the ring buffer's
// fields are unexported (callers must not reach into the history), so the
// state ships through an explicit encoder instead of gob's default path.
type arStateWire struct {
	Hist []float64
	Head int
}

// GobEncode implements gob.GobEncoder, making AR states snapshot- and
// cluster-shippable like the plain-data states.
func (s *ARState) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(arStateWire{Hist: s.hist, Head: s.head})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (s *ARState) GobDecode(data []byte) error {
	var w arStateWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if w.Head < 0 || w.Head >= len(w.Hist) {
		return fmt.Errorf("stochastic: decoded ARState head %d outside history of %d", w.Head, len(w.Hist))
	}
	s.hist, s.head = w.Hist, w.Head
	return nil
}

// Current returns v_{t-1}, the most recent value.
func (s *ARState) Current() float64 { return s.hist[s.head] }

// ARValue observes the most recent value of an AR process state.
func ARValue(s State) float64 {
	as, ok := s.(*ARState)
	if !ok {
		panic(fmt.Sprintf("stochastic: ARValue applied to %T", s))
	}
	return as.Current()
}

// Name implements Process.
func (a *AR) Name() string { return fmt.Sprintf("ar(%d)", len(a.Phi)) }

// Initial implements Process.
func (a *AR) Initial() State {
	if len(a.Start) != len(a.Phi) {
		panic("stochastic: AR Start history length must equal len(Phi)")
	}
	return &ARState{hist: append([]float64(nil), a.Start...)}
}

// Step implements Process.
func (a *AR) Step(s State, _ int, src *rng.Source) {
	as := s.(*ARState)
	m := len(a.Phi)
	v := a.Sigma * src.Norm()
	for i := 0; i < m; i++ {
		// hist[(head - i + m) % m] is v_{t-1-i}
		v += a.Phi[i] * as.hist[(as.head-i+m)%m]
	}
	as.head = (as.head + 1) % m
	as.hist[as.head] = v
}

// NewStateVec implements BulkProcess: lane ring buffers share one flat
// lanes*m backing array.
func (a *AR) NewStateVec(lanes int) StateVec { return newARVec(len(a.Phi), lanes) }

// StepVec implements BulkProcess: Step's recurrence per lane, lag terms
// accumulated in the same order so the sum is bit-identical.
func (a *AR) StepVec(sv StateVec, lanes []int, _ []int, src []*rng.Source) {
	av := sv.(*arVec)
	m := len(a.Phi)
	for _, l := range lanes {
		as := &av.lane[l]
		v := a.Sigma * src[l].Norm()
		for i := 0; i < m; i++ {
			v += a.Phi[i] * as.hist[(as.head-i+m)%m]
		}
		as.head = (as.head + 1) % m
		as.hist[as.head] = v
	}
}
