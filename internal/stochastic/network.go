package stochastic

import (
	"fmt"

	"durability/internal/rng"
)

// QueueNetwork is an open network of single-server exponential queues
// (a Jackson network) observed at unit time steps: the generalisation of
// the paper's tandem queue to arbitrary service topologies — the
// "computer networks analysis" and "supply chain" settings its §6 cites
// as the practical home of queueing durability queries.
//
// Node i receives external Poisson arrivals at rate Arrival[i] and serves
// customers at rate Service[i]; a customer finishing at node i moves to
// node j with probability Route[i][j] and leaves the network with
// probability 1 - sum_j Route[i][j].
//
// The continuous-time Markov chain is simulated exactly within each unit
// step (Gillespie), so like TandemQueue the state is just the queue
// lengths.
type QueueNetwork struct {
	Arrival []float64   // external arrival rate per node
	Service []float64   // service rate per node
	Route   [][]float64 // routing probabilities; row sums must be <= 1
}

// NewQueueNetwork validates the topology.
func NewQueueNetwork(arrival, service []float64, route [][]float64) (*QueueNetwork, error) {
	n := len(service)
	if n == 0 {
		return nil, fmt.Errorf("stochastic: network needs at least one node")
	}
	if len(arrival) != n || len(route) != n {
		return nil, fmt.Errorf("stochastic: network arrays disagree on node count")
	}
	totalArrival := 0.0
	for i, a := range arrival {
		if a < 0 {
			return nil, fmt.Errorf("stochastic: negative arrival rate at node %d", i)
		}
		totalArrival += a
		if service[i] <= 0 {
			return nil, fmt.Errorf("stochastic: non-positive service rate at node %d", i)
		}
		if len(route[i]) != n {
			return nil, fmt.Errorf("stochastic: routing row %d has %d entries, want %d", i, len(route[i]), n)
		}
		sum := 0.0
		for j, p := range route[i] {
			if p < 0 {
				return nil, fmt.Errorf("stochastic: negative routing probability at (%d,%d)", i, j)
			}
			sum += p
		}
		if sum > 1+1e-9 {
			return nil, fmt.Errorf("stochastic: routing row %d sums to %v > 1", i, sum)
		}
	}
	if totalArrival <= 0 {
		return nil, fmt.Errorf("stochastic: network has no external arrivals")
	}
	return &QueueNetwork{Arrival: arrival, Service: service, Route: route}, nil
}

// Tandem returns the paper's two-stage tandem topology as a QueueNetwork,
// useful for cross-checking against the specialised TandemQueue model.
func Tandem(lambda, rate1, rate2 float64) *QueueNetwork {
	qn, err := NewQueueNetwork(
		[]float64{lambda, 0},
		[]float64{rate1, rate2},
		[][]float64{{0, 1}, {0, 0}},
	)
	if err != nil {
		panic(err) // static topology above is always valid
	}
	return qn
}

// NetworkState holds the per-node queue lengths.
type NetworkState struct {
	Q []int
}

// Clone implements State.
func (s *NetworkState) Clone() State {
	return &NetworkState{Q: append([]int(nil), s.Q...)}
}

// NodeLen observes the queue length at one node of a QueueNetwork.
func NodeLen(node int) Observer {
	return func(s State) float64 {
		ns, ok := s.(*NetworkState)
		if !ok {
			panic(fmt.Sprintf("stochastic: NodeLen applied to %T", s))
		}
		return float64(ns.Q[node])
	}
}

// TotalLen observes the total number of customers in the network.
func TotalLen(s State) float64 {
	ns, ok := s.(*NetworkState)
	if !ok {
		panic(fmt.Sprintf("stochastic: TotalLen applied to %T", s))
	}
	total := 0
	for _, q := range ns.Q {
		total += q
	}
	return float64(total)
}

// Name implements Process.
func (n *QueueNetwork) Name() string { return fmt.Sprintf("queue-network-%d", len(n.Service)) }

// Initial implements Process: the network starts empty.
func (n *QueueNetwork) Initial() State { return &NetworkState{Q: make([]int, len(n.Service))} }

// Step implements Process: exact CTMC simulation over one unit of time.
func (n *QueueNetwork) Step(s State, _ int, src *rng.Source) {
	ns := s.(*NetworkState)
	remaining := 1.0
	for {
		rate := 0.0
		for i, a := range n.Arrival {
			rate += a
			if ns.Q[i] > 0 {
				rate += n.Service[i]
			}
		}
		dt := src.Exp(rate)
		if dt > remaining {
			return
		}
		remaining -= dt
		u := src.Float64() * rate
		// Walk the event list: arrivals first, then service completions.
		fired := false
		for i, a := range n.Arrival {
			if u < a {
				ns.Q[i]++
				fired = true
				break
			}
			u -= a
		}
		if fired {
			continue
		}
		for i := range n.Service {
			if ns.Q[i] == 0 {
				continue
			}
			if u < n.Service[i] {
				ns.Q[i]--
				// Route the customer onward, or let it leave.
				p := src.Float64()
				acc := 0.0
				for j, pj := range n.Route[i] {
					acc += pj
					if p < acc {
						ns.Q[j]++
						break
					}
				}
				break
			}
			u -= n.Service[i]
		}
	}
}

// Throughput returns the solution of the traffic equations
// gamma = arrival + gamma * Route (effective arrival rate per node) via
// fixed-point iteration, and each node's utilisation gamma_i/service_i.
// A utilisation >= 1 marks an unstable node — the regime durability
// queries about backlogs live in.
func (n *QueueNetwork) Throughput() (gamma, util []float64) {
	k := len(n.Service)
	gamma = append([]float64(nil), n.Arrival...)
	for iter := 0; iter < 1000; iter++ {
		next := append([]float64(nil), n.Arrival...)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				next[j] += gamma[i] * n.Route[i][j]
			}
		}
		delta := 0.0
		for i := range next {
			d := next[i] - gamma[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		gamma = next
		if delta < 1e-12 {
			break
		}
	}
	util = make([]float64, k)
	for i := range util {
		util[i] = gamma[i] / n.Service[i]
	}
	return gamma, util
}
