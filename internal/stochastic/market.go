package stochastic

import (
	"fmt"
	"math"
	"sort"

	"durability/internal/rng"
)

// Market simulates n stocks jointly: prices follow correlated geometric
// Brownian motion (a common market factor plus idiosyncratic noise) and
// per-share earnings follow slowly mean-reverting AR(1) processes.
//
// It exists for the paper's introductory query: "the probability that a
// given stock's P/E ratio will rank among the top 10 by the end of the
// week" (§1, §2.1) — a durability query whose condition is a *rank*, not
// a simple threshold. The TopKMargin observer turns that condition into
// the z(x) >= 1 form the samplers consume.
type Market struct {
	P0       []float64 // initial prices
	E0       []float64 // initial per-share earnings (must be positive)
	MarketSD float64   // common factor volatility per step
	IdioSD   []float64 // per-stock idiosyncratic volatility
	Beta     []float64 // per-stock exposure to the common factor
	EarnRho  float64   // AR(1) coefficient of log-earnings around their start
	EarnSD   float64   // earnings noise scale
}

// NewMarket builds a market with uniform parameters: each stock starts at
// price p0*(1+i/n) and earnings e0, with market beta 1.
func NewMarket(n int, p0, e0, marketSD, idioSD float64) (*Market, error) {
	if n < 2 {
		return nil, fmt.Errorf("stochastic: market needs at least two stocks")
	}
	if p0 <= 0 || e0 <= 0 {
		return nil, fmt.Errorf("stochastic: market needs positive initial price and earnings")
	}
	m := &Market{
		MarketSD: marketSD,
		EarnRho:  0.98,
		EarnSD:   0.01,
	}
	for i := 0; i < n; i++ {
		m.P0 = append(m.P0, p0*(1+float64(i)/float64(2*n)))
		m.E0 = append(m.E0, e0)
		m.IdioSD = append(m.IdioSD, idioSD)
		m.Beta = append(m.Beta, 1)
	}
	return m, nil
}

// MarketState carries every stock's price and earnings.
type MarketState struct {
	Price []float64
	Earn  []float64
}

// Clone implements State.
func (s *MarketState) Clone() State {
	return &MarketState{
		Price: append([]float64(nil), s.Price...),
		Earn:  append([]float64(nil), s.Earn...),
	}
}

// Name implements Process.
func (m *Market) Name() string { return fmt.Sprintf("market-%d", len(m.P0)) }

// Initial implements Process.
func (m *Market) Initial() State {
	return &MarketState{
		Price: append([]float64(nil), m.P0...),
		Earn:  append([]float64(nil), m.E0...),
	}
}

// Step implements Process: one trading period for every stock.
func (m *Market) Step(s State, _ int, src *rng.Source) {
	ms := s.(*MarketState)
	factor := m.MarketSD * src.Norm()
	for i := range ms.Price {
		r := m.Beta[i]*factor + m.IdioSD[i]*src.Norm()
		ms.Price[i] *= math.Exp(r - 0.5*(m.Beta[i]*m.Beta[i]*m.MarketSD*m.MarketSD+m.IdioSD[i]*m.IdioSD[i]))
		// Log-earnings mean-revert to their initial level.
		le := math.Log(ms.Earn[i]/m.E0[i])*m.EarnRho + m.EarnSD*src.Norm()
		ms.Earn[i] = m.E0[i] * math.Exp(le)
	}
}

// PE observes one stock's price/earnings ratio.
func PE(stock int) Observer {
	return func(s State) float64 {
		ms, ok := s.(*MarketState)
		if !ok {
			panic(fmt.Sprintf("stochastic: PE applied to %T", s))
		}
		return ms.Price[stock] / ms.Earn[stock]
	}
}

// PERank observes the 1-based rank of a stock by P/E ratio (1 = highest).
func PERank(stock int) Observer {
	return func(s State) float64 {
		ms, ok := s.(*MarketState)
		if !ok {
			panic(fmt.Sprintf("stochastic: PERank applied to %T", s))
		}
		mine := ms.Price[stock] / ms.Earn[stock]
		rank := 1
		for i := range ms.Price {
			if i == stock {
				continue
			}
			if ms.Price[i]/ms.Earn[i] > mine {
				rank++
			}
		}
		return float64(rank)
	}
}

// TopKMargin observes how close a stock is to entering the top k by P/E:
// the ratio of its P/E to the k-th largest P/E among the *other* stocks.
// The value reaches 1 exactly when the stock ranks within the top k, so
// the durability query "stock enters the top k" is the standard threshold
// query z(x) >= 1 — and the same expression doubles as an informative MLSS
// value function.
func TopKMargin(stock, k int) Observer {
	return func(s State) float64 {
		ms, ok := s.(*MarketState)
		if !ok {
			panic(fmt.Sprintf("stochastic: TopKMargin applied to %T", s))
		}
		if k < 1 || k > len(ms.Price)-1 {
			panic(fmt.Sprintf("stochastic: TopKMargin k=%d out of range", k))
		}
		others := make([]float64, 0, len(ms.Price)-1)
		for i := range ms.Price {
			if i != stock {
				others = append(others, ms.Price[i]/ms.Earn[i])
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(others)))
		bar := others[k-1]
		return (ms.Price[stock] / ms.Earn[stock]) / bar
	}
}
