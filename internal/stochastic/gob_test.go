package stochastic

import (
	"bytes"
	"encoding/gob"
	"testing"

	"durability/internal/rng"
)

// stateCarrier forces the round-trip through gob's interface machinery —
// exactly how cluster RPC requests and persist snapshots carry states —
// so an unregistered concrete type fails here instead of at runtime.
type stateCarrier struct {
	S State
}

// gobRoundTrip encodes st as a State interface value and decodes it back.
func gobRoundTrip(t *testing.T, name string, st State) State {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(stateCarrier{S: st}); err != nil {
		t.Fatalf("%s: encoding %T: %v", name, st, err)
	}
	var out stateCarrier
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatalf("%s: decoding %T: %v", name, st, err)
	}
	return out.S
}

// checkStateGob asserts a process state survives the gob round trip: the
// observed value is preserved and — the stronger property snapshots need —
// the decoded state continues the simulation exactly like the original.
func checkStateGob(t *testing.T, name string, proc Process, obs Observer) {
	t.Helper()
	st := proc.Initial()
	src := rng.NewStream(99, 0)
	for i := 1; i <= 5; i++ {
		proc.Step(st, i, src)
	}

	restored := gobRoundTrip(t, name, st)
	if got, want := obs(restored), obs(st); got != want {
		t.Fatalf("%s: decoded state observes %v, original %v", name, got, want)
	}
	// Continue both with identical randomness: every future observation
	// must match, or the decoded state dropped part of the simulation
	// context (a ring-buffer head, a hidden activation, ...).
	a, b := st.Clone(), restored
	srcA, srcB := rng.NewStream(7, 3), rng.NewStream(7, 3)
	for i := 6; i <= 25; i++ {
		proc.Step(a, i, srcA)
		proc.Step(b, i, srcB)
		if obs(a) != obs(b) {
			t.Fatalf("%s: decoded state diverged at step %d: %v vs %v", name, i, obs(b), obs(a))
		}
	}
}

// TestStateGob audits gob registration across every Process constructor in
// the package: each one's State must round-trip through gob as an
// interface value, so cluster shipping and serving-state snapshots can
// never hit an unregistered (or partially encoded) concrete type at
// runtime. Adding a model with a new State type and forgetting the
// registration fails this test, not a production checkpoint.
func TestStateGob(t *testing.T) {
	market, err := NewMarket(3, 100, 5, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	network, err := NewQueueNetwork(
		[]float64{0.3, 0.2},
		[]float64{1.0, 1.2},
		[][]float64{{0, 0.5}, {0.1, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	regime, err := NewRegimeSwitching(10, [][]float64{{0.9, 0.1}, {0.2, 0.8}}, []float64{0.1, -0.1}, []float64{0.5, 1.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := NewMarkovChain([][]float64{{0.5, 0.5}, {0.3, 0.7}}, 0)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		proc Process
		obs  Observer
	}{
		{"NewTandemQueue", NewTandemQueue(0.5, 2, 2), Queue2Len},
		{"NewCompoundPoisson", NewCompoundPoisson(15, 6, 0.8, 5, 10), ScalarValue},
		{"RandomWalk", &RandomWalk{Start: 0, Drift: 0.1, Sigma: 1}, ScalarValue},
		{"GBM", &GBM{S0: 100, Mu: 0.001, Sigma: 0.01}, ScalarValue},
		{"NewMarkovChain", chain, ChainIndex},
		{"BirthDeathChain", BirthDeathChain(10, 0.45, 0), ChainIndex},
		{"NewAR", NewAR([]float64{0.6, 0.3}, 0.5, 1), ARValue},
		{"NewRegimeSwitching", regime, RegimeValue},
		{"NewQueueNetwork", network, TotalLen},
		{"NewMarket", market, PE(0)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkStateGob(t, c.name, c.proc, c.obs) })
	}

	// Pinned processes snapshot through their underlying state, so the
	// wrapper itself must not break the round trip.
	t.Run("Pin", func(t *testing.T) {
		gbm := &GBM{S0: 100, Mu: 0.001, Sigma: 0.01}
		st := gbm.Initial()
		gbm.Step(st, 1, rng.NewStream(1, 1))
		checkStateGob(t, "Pin", Pin(gbm, st), ScalarValue)
	})
}
