package stochastic

import (
	"math"
	"testing"

	"durability/internal/rng"
)

func testMarket(t *testing.T) *Market {
	t.Helper()
	m, err := NewMarket(10, 100, 5, 0.01, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMarketValidation(t *testing.T) {
	if _, err := NewMarket(1, 100, 5, 0.01, 0.02); err == nil {
		t.Error("single-stock market accepted")
	}
	if _, err := NewMarket(3, 0, 5, 0.01, 0.02); err == nil {
		t.Error("zero price accepted")
	}
	if _, err := NewMarket(3, 100, -1, 0.01, 0.02); err == nil {
		t.Error("negative earnings accepted")
	}
}

func TestMarketStepKeepsPositive(t *testing.T) {
	m := testMarket(t)
	src := rng.New(1)
	s := m.Initial()
	for i := 1; i <= 2000; i++ {
		m.Step(s, i, src)
		ms := s.(*MarketState)
		for j := range ms.Price {
			if ms.Price[j] <= 0 || ms.Earn[j] <= 0 {
				t.Fatalf("stock %d price/earn non-positive at step %d", j, i)
			}
		}
	}
}

func TestMarketCloneIndependence(t *testing.T) {
	m := testMarket(t)
	src := rng.New(2)
	s := m.Initial()
	for i := 1; i <= 10; i++ {
		m.Step(s, i, src)
	}
	before := PE(3)(s)
	c := s.Clone()
	m.Step(c, 11, src)
	if PE(3)(s) != before {
		t.Fatal("stepping a clone mutated the market state")
	}
}

func TestPERankConsistent(t *testing.T) {
	m := testMarket(t)
	src := rng.New(3)
	s := m.Initial()
	for i := 1; i <= 50; i++ {
		m.Step(s, i, src)
	}
	ms := s.(*MarketState)
	n := len(ms.Price)
	// Ranks must be a permutation-ish: each rank in [1, n], and exactly
	// one stock at rank 1 (ties have measure zero).
	rank1 := 0
	for i := 0; i < n; i++ {
		r := PERank(i)(s)
		if r < 1 || r > float64(n) {
			t.Fatalf("rank of stock %d = %v", i, r)
		}
		if r == 1 {
			rank1++
		}
	}
	if rank1 != 1 {
		t.Fatalf("%d stocks at rank 1", rank1)
	}
}

func TestTopKMarginMatchesRank(t *testing.T) {
	m := testMarket(t)
	src := rng.New(4)
	s := m.Initial()
	const k = 3
	for i := 1; i <= 200; i++ {
		m.Step(s, i, src)
		for stock := 0; stock < 5; stock++ {
			margin := TopKMargin(stock, k)(s)
			rank := PERank(stock)(s)
			inTop := rank <= k
			if inTop && margin < 1 {
				t.Fatalf("step %d stock %d: rank %v but margin %v < 1", i, stock, rank, margin)
			}
			if !inTop && margin >= 1 {
				t.Fatalf("step %d stock %d: rank %v but margin %v >= 1", i, stock, rank, margin)
			}
		}
	}
}

func TestTopKMarginPanicsOnBadK(t *testing.T) {
	m := testMarket(t)
	s := m.Initial()
	for _, k := range []int{0, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d did not panic", k)
				}
			}()
			TopKMargin(0, k)(s)
		}()
	}
}

func TestMarketObserversPanicOnWrongType(t *testing.T) {
	for name, obs := range map[string]Observer{
		"PE": PE(0), "PERank": PERank(0), "TopKMargin": TopKMargin(0, 1),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on Scalar did not panic", name)
				}
			}()
			obs(&Scalar{})
		}()
	}
}

func TestMarketCorrelation(t *testing.T) {
	// With a dominant common factor, stock returns correlate strongly.
	m, err := NewMarket(2, 100, 5, 0.03, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	s := m.Initial()
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	prev := s.Clone().(*MarketState)
	const n = 20000
	for i := 1; i <= n; i++ {
		m.Step(s, i, src)
		ms := s.(*MarketState)
		x := math.Log(ms.Price[0] / prev.Price[0])
		y := math.Log(ms.Price[1] / prev.Price[1])
		sumX += x
		sumY += y
		sumXY += x * y
		sumX2 += x * x
		sumY2 += y * y
		prev = s.Clone().(*MarketState)
	}
	cov := sumXY/n - (sumX/n)*(sumY/n)
	corr := cov / math.Sqrt((sumX2/n-(sumX/n)*(sumX/n))*(sumY2/n-(sumY/n)*(sumY/n)))
	if corr < 0.9 {
		t.Fatalf("return correlation = %v, want > 0.9 with dominant common factor", corr)
	}
}
