package stochastic

import (
	"math"
	"testing"
	"testing/quick"

	"durability/internal/rng"
	"durability/internal/stats"
)

func TestScalarClone(t *testing.T) {
	s := &Scalar{V: 3}
	c := s.Clone().(*Scalar)
	c.V = 7
	if s.V != 3 {
		t.Fatal("Clone did not copy")
	}
}

func TestScalarValuePanicsOnWrongType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScalarValue on ChainState did not panic")
		}
	}()
	ScalarValue(&ChainState{})
}

func TestRandomWalkMoments(t *testing.T) {
	w := &RandomWalk{Start: 10, Drift: 0.5, Sigma: 2}
	src := rng.New(1)
	const n = 20000
	const steps = 50
	var acc stats.Accumulator
	for i := 0; i < n; i++ {
		s := w.Initial()
		for step := 1; step <= steps; step++ {
			w.Step(s, step, src)
		}
		acc.Add(ScalarValue(s))
	}
	wantMean := 10 + 0.5*steps
	wantVar := 4.0 * steps
	if math.Abs(acc.Mean()-wantMean) > 0.3 {
		t.Errorf("mean after %d steps = %v, want ~%v", steps, acc.Mean(), wantMean)
	}
	if math.Abs(acc.Variance()-wantVar) > 0.05*wantVar {
		t.Errorf("variance after %d steps = %v, want ~%v", steps, acc.Variance(), wantVar)
	}
}

func TestARStationaryVariance(t *testing.T) {
	// AR(1) with phi=0.8, sigma=1 has stationary variance 1/(1-0.64).
	a := NewAR([]float64{0.8}, 1, 0)
	src := rng.New(2)
	var acc stats.Accumulator
	s := a.Initial()
	// burn in, then sample
	for step := 1; step <= 2000; step++ {
		a.Step(s, step, src)
	}
	for step := 0; step < 200000; step++ {
		a.Step(s, step, src)
		acc.Add(ARValue(s))
	}
	want := 1 / (1 - 0.64)
	if math.Abs(acc.Variance()-want) > 0.1*want {
		t.Errorf("stationary variance = %v, want ~%v", acc.Variance(), want)
	}
	if math.Abs(acc.Mean()) > 0.2 {
		t.Errorf("stationary mean = %v, want ~0", acc.Mean())
	}
}

func TestARRingBufferOrder(t *testing.T) {
	// With sigma=0 the process is deterministic; AR(2) with phi=(0,1)
	// copies v_{t-2}, so the series alternates between the two seeds.
	a := &AR{Phi: []float64{0, 1}, Sigma: 0, Start: []float64{5, 3}}
	// Start[0]=v_0 (most recent), Start[1]=v_{-1}.
	src := rng.New(3)
	s := a.Initial()
	got := make([]float64, 6)
	for i := range got {
		a.Step(s, i+1, src)
		got[i] = ARValue(s)
	}
	want := []float64{3, 5, 3, 5, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deterministic AR(2) series = %v, want %v", got, want)
		}
	}
}

func TestARCloneIndependence(t *testing.T) {
	a := NewAR([]float64{0.5, 0.2}, 1, 1)
	src := rng.New(4)
	s := a.Initial()
	for i := 1; i <= 10; i++ {
		a.Step(s, i, src)
	}
	c := s.Clone()
	before := ARValue(s)
	a.Step(c, 11, src)
	if ARValue(s) != before {
		t.Fatal("stepping a clone mutated the original")
	}
}

func TestARInitialPanicsOnBadHistory(t *testing.T) {
	a := &AR{Phi: []float64{0.5}, Sigma: 1, Start: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Start length did not panic")
		}
	}()
	a.Initial()
}

func TestMarkovChainValidation(t *testing.T) {
	cases := []struct {
		name  string
		p     [][]float64
		start int
	}{
		{"empty", nil, 0},
		{"ragged", [][]float64{{1}, {0.5, 0.5}}, 0},
		{"negative", [][]float64{{1.5, -0.5}, {0, 1}}, 0},
		{"not-stochastic", [][]float64{{0.5, 0.4}, {0, 1}}, 0},
		{"bad-start", [][]float64{{1}}, 5},
	}
	for _, tc := range cases {
		if _, err := NewMarkovChain(tc.p, tc.start); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := NewMarkovChain([][]float64{{0.3, 0.7}, {1, 0}}, 1); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
}

func TestMarkovHitProbabilityTwoState(t *testing.T) {
	// From state 0, move to absorbing state 1 with prob p each step.
	// Pr[hit 1 within s] = 1 - (1-p)^s.
	p := 0.3
	mc, err := NewMarkovChain([][]float64{{1 - p, p}, {0, 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{1, 2, 5, 10} {
		got := mc.HitProbability(map[int]bool{1: true}, s)
		want := 1 - math.Pow(1-p, float64(s))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("horizon %d: HitProbability = %v, want %v", s, got, want)
		}
	}
}

func TestMarkovHitProbabilityZeroHorizon(t *testing.T) {
	mc := BirthDeathChain(5, 0.4, 0)
	if got := mc.HitProbability(map[int]bool{4: true}, 0); got != 0 {
		t.Fatalf("zero horizon hit probability = %v, want 0", got)
	}
}

func TestMarkovSimulationMatchesExact(t *testing.T) {
	mc := BirthDeathChain(8, 0.45, 0)
	target := map[int]bool{6: true, 7: true}
	const horizon = 30
	want := mc.HitProbability(target, horizon)

	src := rng.New(5)
	const n = 60000
	hits := 0
	for i := 0; i < n; i++ {
		s := mc.Initial()
		for step := 1; step <= horizon; step++ {
			mc.Step(s, step, src)
			if target[s.(*ChainState).I] {
				hits++
				break
			}
		}
	}
	got := float64(hits) / n
	tol := 4 * math.Sqrt(want*(1-want)/n)
	if math.Abs(got-want) > tol {
		t.Fatalf("simulated hit rate %v vs exact %v (tol %v)", got, want, tol)
	}
}

func TestMarkovObserveValues(t *testing.T) {
	mc := BirthDeathChain(3, 0.5, 0)
	mc.Values = []float64{10, 20, 30}
	obs := mc.Observe()
	if v := obs(&ChainState{I: 2}); v != 30 {
		t.Fatalf("observe = %v, want 30", v)
	}
	mc.Values = nil
	if v := mc.Observe()(&ChainState{I: 2}); v != 2 {
		t.Fatalf("index observe = %v, want 2", v)
	}
}

func TestBirthDeathRows(t *testing.T) {
	mc := BirthDeathChain(4, 0.3, 2)
	if mc.P[0][0] != 0.7 || mc.P[0][1] != 0.3 {
		t.Fatal("reflecting lower boundary wrong")
	}
	if mc.P[3][3] != 0.3 || mc.P[3][2] != 0.7 {
		t.Fatal("reflecting upper boundary wrong")
	}
}

func TestQueueConservation(t *testing.T) {
	// Without services at queue 2 (rate ~0), every arrival eventually
	// accumulates; total customers never goes negative anywhere.
	q := NewTandemQueue(0.5, 2, 2)
	src := rng.New(6)
	s := q.Initial()
	for step := 1; step <= 2000; step++ {
		q.Step(s, step, src)
		qs := s.(*QueueState)
		if qs.Q1 < 0 || qs.Q2 < 0 {
			t.Fatalf("negative queue length at step %d: %+v", step, qs)
		}
	}
}

func TestQueueArrivalRate(t *testing.T) {
	// With instant service at both queues disabled (very slow service),
	// queue 1 accumulates arrivals at the arrival rate.
	q := &TandemQueue{ArrivalRate: 0.5, ServiceRate1: 1e-12, ServiceRate2: 1e-12}
	src := rng.New(7)
	const steps = 20000
	s := q.Initial()
	for step := 1; step <= steps; step++ {
		q.Step(s, step, src)
	}
	got := float64(s.(*QueueState).Q1) / steps
	if math.Abs(got-0.5) > 0.02 {
		t.Fatalf("arrival rate = %v, want ~0.5", got)
	}
}

func TestQueueThroughput(t *testing.T) {
	// With fast service at queue 1 and negligible service at queue 2,
	// queue 2 accumulates at the arrival rate (everything flows through).
	q := &TandemQueue{ArrivalRate: 0.5, ServiceRate1: 100, ServiceRate2: 1e-12}
	src := rng.New(8)
	const steps = 20000
	s := q.Initial()
	for step := 1; step <= steps; step++ {
		q.Step(s, step, src)
	}
	got := float64(s.(*QueueState).Q2) / steps
	if math.Abs(got-0.5) > 0.02 {
		t.Fatalf("throughput = %v, want ~0.5", got)
	}
}

func TestQueueImpulse(t *testing.T) {
	q := NewTandemQueue(0.5, 2, 2)
	q.ImpulseProb = 1
	q.ImpulseSize = 5
	q.ImpulseAfter = 10
	src := rng.New(9)
	s := q.Initial()
	for step := 1; step <= 9; step++ {
		q.Step(s, step, src)
	}
	before := s.(*QueueState).Q2
	q.Step(s, 10, src)
	after := s.(*QueueState).Q2
	if after < before+5-1 { // -1: a service completion can offset by one
		t.Fatalf("impulse at step 10 moved Q2 from %d to %d, want jump of ~5", before, after)
	}
	if q.Name() != "volatile-tandem-queue" {
		t.Fatalf("volatile queue name = %q", q.Name())
	}
}

func TestCPPMeanDrift(t *testing.T) {
	p := NewCompoundPoisson(15, 4.5, 0.8, 5, 10)
	if math.Abs(p.MeanDrift()-(-1.5)) > 1e-12 {
		t.Fatalf("MeanDrift = %v, want -1.5", p.MeanDrift())
	}
}

func TestCPPEmpiricalDrift(t *testing.T) {
	p := NewCompoundPoisson(0, 6.0, 0.8, 5, 10)
	src := rng.New(10)
	const n = 3000
	const steps = 100
	var acc stats.Accumulator
	for i := 0; i < n; i++ {
		s := p.Initial()
		for step := 1; step <= steps; step++ {
			p.Step(s, step, src)
		}
		acc.Add(ScalarValue(s) / steps)
	}
	if math.Abs(acc.Mean()-p.MeanDrift()) > 0.05 {
		t.Fatalf("empirical drift = %v, want ~%v", acc.Mean(), p.MeanDrift())
	}
}

func TestCPPImpulse(t *testing.T) {
	p := NewCompoundPoisson(0, 0, 0, 1, 2) // no premium, no claims
	p.ImpulseProb = 1
	p.ImpulseSize = 200
	p.ImpulseAfter = 5
	src := rng.New(11)
	s := p.Initial()
	for step := 1; step <= 4; step++ {
		p.Step(s, step, src)
	}
	if v := ScalarValue(s); v != 0 {
		t.Fatalf("value before impulse window = %v, want 0", v)
	}
	p.Step(s, 5, src)
	if v := ScalarValue(s); v != 200 {
		t.Fatalf("value after forced impulse = %v, want 200", v)
	}
	if p.Name() != "volatile-cpp" {
		t.Fatalf("volatile CPP name = %q", p.Name())
	}
}

func TestGBMLogNormalMoments(t *testing.T) {
	g := &GBM{S0: 100, Mu: 0.001, Sigma: 0.02}
	src := rng.New(12)
	const n = 50000
	const steps = 10
	var acc stats.Accumulator
	for i := 0; i < n; i++ {
		s := g.Initial()
		for step := 1; step <= steps; step++ {
			g.Step(s, step, src)
		}
		acc.Add(math.Log(ScalarValue(s) / 100))
	}
	wantMean := (0.001 - 0.0002) * steps
	if math.Abs(acc.Mean()-wantMean) > 0.001 {
		t.Errorf("log-return mean = %v, want ~%v", acc.Mean(), wantMean)
	}
	wantVar := 0.0004 * steps
	if math.Abs(acc.Variance()-wantVar) > 0.1*wantVar {
		t.Errorf("log-return variance = %v, want ~%v", acc.Variance(), wantVar)
	}
}

func TestGBMSeriesWithRegimes(t *testing.T) {
	g := &GBM{S0: 100, Mu: 0, Sigma: 0.02}
	series := g.SeriesWithRegimes(1000, rng.New(13))
	if len(series) != 1000 {
		t.Fatalf("series length = %d", len(series))
	}
	for i, v := range series {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("series[%d] = %v, prices must stay positive", i, v)
		}
	}
}

func TestSimulateHelper(t *testing.T) {
	w := &RandomWalk{Start: 0, Drift: 1, Sigma: 0}
	vals := Simulate(w, 5, ScalarValue, rng.New(14))
	want := []float64{1, 2, 3, 4, 5}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Simulate = %v, want %v", vals, want)
		}
	}
}

func TestMaxValueHelper(t *testing.T) {
	w := &RandomWalk{Start: 0, Drift: -1, Sigma: 0}
	if got := MaxValue(w, 5, ScalarValue, rng.New(15)); got != 0 {
		t.Fatalf("MaxValue of decreasing walk = %v, want 0 (initial)", got)
	}
}

// Property: all states clone into independent copies — stepping the clone
// never changes the original's observation.
func TestQuickCloneIndependence(t *testing.T) {
	models := []struct {
		p   Process
		obs Observer
	}{
		{&RandomWalk{Start: 1, Drift: 0.1, Sigma: 1}, ScalarValue},
		{NewCompoundPoisson(15, 4.5, 0.8, 5, 10), ScalarValue},
		{NewTandemQueue(0.5, 2, 2), Queue2Len},
		{BirthDeathChain(10, 0.5, 3), ChainIndex},
		{NewAR([]float64{0.5, 0.3}, 1, 2), ARValue},
	}
	f := func(seed uint64, warm uint8) bool {
		src := rng.New(seed)
		for _, m := range models {
			s := m.p.Initial()
			for i := 1; i <= int(warm%32); i++ {
				m.p.Step(s, i, src)
			}
			before := m.obs(s)
			c := s.Clone()
			m.p.Step(c, 100, src)
			if m.obs(s) != before {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQueueStep(b *testing.B) {
	q := NewTandemQueue(0.5, 2, 2)
	src := rng.New(1)
	s := q.Initial()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Step(s, i+1, src)
	}
}

func BenchmarkCPPStep(b *testing.B) {
	p := NewCompoundPoisson(15, 4.5, 0.8, 5, 10)
	src := rng.New(1)
	s := p.Initial()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step(s, i+1, src)
	}
}
