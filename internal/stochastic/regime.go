package stochastic

import (
	"fmt"
	"math"

	"durability/internal/rng"
)

// RegimeSwitching is a Markov-modulated Gaussian walk: a hidden
// time-homogeneous Markov chain selects the active regime, and the
// observable accumulates that regime's drift and volatility each step.
// Markov-modulated processes are the standard way financial and
// reliability models capture "calm vs. turbulent" phases, and they stress
// the samplers in a specific way: hitting probability is dominated by
// excursions that coincide with the rare aggressive regime, so value
// functions based only on the observable underestimate how promising a
// turbulent-regime path is. Unbiasedness must survive regardless (§3:
// only efficiency depends on the value function).
type RegimeSwitching struct {
	Start    float64     // initial observable value
	Switch   [][]float64 // regime transition matrix (row-stochastic)
	Drift    []float64   // per-regime drift
	Sigma    []float64   // per-regime volatility
	StartReg int         // initial regime
}

// NewRegimeSwitching validates the regime definitions.
func NewRegimeSwitching(start float64, switchP [][]float64, drift, sigma []float64, startReg int) (*RegimeSwitching, error) {
	n := len(switchP)
	if n == 0 || len(drift) != n || len(sigma) != n {
		return nil, fmt.Errorf("stochastic: regime arrays disagree (%d transitions, %d drifts, %d sigmas)",
			n, len(drift), len(sigma))
	}
	if _, err := NewMarkovChain(switchP, 0); err != nil {
		return nil, fmt.Errorf("stochastic: regime switch matrix: %w", err)
	}
	for i, s := range sigma {
		if s <= 0 {
			return nil, fmt.Errorf("stochastic: regime %d has non-positive sigma %v", i, s)
		}
	}
	if startReg < 0 || startReg >= n {
		return nil, fmt.Errorf("stochastic: start regime %d out of range", startReg)
	}
	return &RegimeSwitching{Start: start, Switch: switchP, Drift: drift, Sigma: sigma, StartReg: startReg}, nil
}

// RegimeState carries the observable and the hidden regime.
type RegimeState struct {
	V      float64
	Regime int
}

// Clone implements State.
func (s *RegimeState) Clone() State {
	c := *s
	return &c
}

// RegimeValue observes the accumulated value.
func RegimeValue(s State) float64 {
	rs, ok := s.(*RegimeState)
	if !ok {
		panic(fmt.Sprintf("stochastic: RegimeValue applied to %T", s))
	}
	return rs.V
}

// RegimeIndex observes the hidden regime (useful in tests; a real query
// would not see it).
func RegimeIndex(s State) float64 {
	return float64(s.(*RegimeState).Regime)
}

// Name implements Process.
func (r *RegimeSwitching) Name() string { return fmt.Sprintf("regime-switching-%d", len(r.Drift)) }

// Initial implements Process.
func (r *RegimeSwitching) Initial() State {
	return &RegimeState{V: r.Start, Regime: r.StartReg}
}

// Step implements Process: switch the regime, then move by its dynamics.
func (r *RegimeSwitching) Step(s State, _ int, src *rng.Source) {
	rs := s.(*RegimeState)
	rs.Regime = src.Categorical(r.Switch[rs.Regime])
	rs.V += r.Drift[rs.Regime] + r.Sigma[rs.Regime]*src.Norm()
}

// NewStateVec implements BulkProcess.
func (r *RegimeSwitching) NewStateVec(lanes int) StateVec { return newRegimeVec(lanes) }

// StepVec implements BulkProcess: Step's draw order per lane — the
// regime transition first, then the Gaussian increment.
func (r *RegimeSwitching) StepVec(v StateVec, lanes []int, _ []int, src []*rng.Source) {
	rv := v.(*regimeVec)
	for _, i := range lanes {
		rs := &rv.lane[i]
		rs.Regime = src[i].Categorical(r.Switch[rs.Regime])
		rs.V += r.Drift[rs.Regime] + r.Sigma[rs.Regime]*src[i].Norm()
	}
}

// StationaryRegimes returns the stationary distribution of the regime
// chain by power iteration — a calibration helper for choosing regimes
// whose rare phase has the intended occupancy.
func (r *RegimeSwitching) StationaryRegimes() []float64 {
	n := len(r.Switch)
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for iter := 0; iter < 10000; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[j] += pi[i] * r.Switch[i][j]
			}
		}
		delta := 0.0
		for i := range pi {
			delta += math.Abs(next[i] - pi[i])
		}
		copy(pi, next)
		if delta < 1e-13 {
			break
		}
	}
	return pi
}
