// Package stochastic defines the simulation-model substrate of the
// repository: the step-wise simulation procedure 𝔤 from §2.1 of the paper,
// together with every concrete model the evaluation section uses.
//
// A Process generates one state per discrete time step. Samplers drive it
// through the two-method interface only, which is the paper's key
// architectural constraint: MLSS must work for arbitrarily complex
// black-box models, so nothing outside this package may peek inside a
// state except through an Observer function.
package stochastic

import (
	"fmt"

	"durability/internal/rng"
)

// State is one snapshot of a process. Implementations carry whatever the
// model needs to continue the simulation (for a Markov chain a single
// integer; for a recurrent network the whole hidden activation vector).
//
// Clone must return a deep copy that can be simulated forward
// independently of the original; MLSS clones the entrance state every time
// a path splits.
type State interface {
	Clone() State
}

// Process is the step-wise simulation procedure 𝔤 of §2.1. Given the state
// at time t-1 it produces (in place) the state at time t, drawing all
// randomness from src so that simulations are reproducible and
// parallelisable.
type Process interface {
	// Name identifies the model in catalogs, reports and benchmarks.
	Name() string
	// Initial returns a freshly allocated state at time 0.
	Initial() State
	// Step advances s in place from time t-1 to time t. Implementations
	// must not retain s or src.
	Step(s State, t int, src *rng.Source)
}

// Observer extracts the real-valued evaluation z(x) of a state (§3,
// "Value Functions"). Query conditions take the form z(x) >= beta.
type Observer func(State) float64

// Scalar is the one-value state shared by the random-walk, compound-
// Poisson and similar models.
type Scalar struct {
	V float64
}

// Clone returns an independent copy.
func (s *Scalar) Clone() State {
	c := *s
	return &c
}

// ScalarValue observes the value of a Scalar state. It panics if the state
// is of a different type, which always indicates a miswired experiment.
func ScalarValue(s State) float64 {
	sc, ok := s.(*Scalar)
	if !ok {
		panic(fmt.Sprintf("stochastic: ScalarValue applied to %T", s))
	}
	return sc.V
}

// Simulate runs the process for exactly steps steps from its initial state
// and returns the observed value at every time t = 1..steps. It is a
// convenience for tests, examples and model calibration; the samplers have
// their own, more careful driving loops.
func Simulate(p Process, steps int, obs Observer, src *rng.Source) []float64 {
	out := make([]float64, steps)
	s := p.Initial()
	for t := 1; t <= steps; t++ {
		p.Step(s, t, src)
		out[t-1] = obs(s)
	}
	return out
}

// MaxValue runs the process for steps steps and returns the maximum
// observed value, a helper used by threshold-calibration code.
func MaxValue(p Process, steps int, obs Observer, src *rng.Source) float64 {
	s := p.Initial()
	best := obs(s)
	for t := 1; t <= steps; t++ {
		p.Step(s, t, src)
		if v := obs(s); v > best {
			best = v
		}
	}
	return best
}
