package stochastic

import (
	"testing"

	"durability/internal/rng"
)

// bulkModels returns every built-in BulkProcess alongside an observer,
// for the differential tests below. Parameters are chosen so paths move
// through interesting dynamics (impulses enabled, multiple regimes).
func bulkModels(t *testing.T) map[string]struct {
	proc BulkProcess
	obs  Observer
} {
	t.Helper()
	regime, err := NewRegimeSwitching(0,
		[][]float64{{0.95, 0.05}, {0.2, 0.8}},
		[]float64{0.01, 0.3}, []float64{0.5, 2.0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]struct {
		proc BulkProcess
		obs  Observer
	}{
		"gbm":    {&GBM{S0: 100, Mu: 0.001, Sigma: 0.05}, ScalarValue},
		"walk":   {&RandomWalk{Start: 5, Drift: 0.1, Sigma: 2}, ScalarValue},
		"ar":     {NewAR([]float64{0.6, 0.3}, 1.5, 1), ARValue},
		"cpp":    {&CompoundPoisson{U0: 10, Premium: 1, ClaimRate: 0.8, ClaimLo: 0, ClaimHi: 2, ImpulseProb: 0.05, ImpulseSize: 4, ImpulseAfter: 3}, ScalarValue},
		"chain":  {BirthDeathChain(12, 0.45, 2), ChainIndex},
		"regime": {regime, RegimeValue},
		"queue":  {&TandemQueue{ArrivalRate: 0.5, ServiceRate1: 0.5, ServiceRate2: 0.5, ImpulseProb: 0.1, ImpulseSize: 3, ImpulseAfter: 2}, Queue2Len},
	}
}

// TestStepVecMatchesStep drives several lanes through StepVec and the
// same substreams through scalar Step, asserting the observed
// trajectories are bit-for-bit equal. This is the bulk contract at its
// smallest scope: one lane, one step, one source.
func TestStepVecMatchesStep(t *testing.T) {
	const lanes, steps = 7, 64
	for name, m := range bulkModels(t) {
		t.Run(name, func(t *testing.T) {
			vec := m.proc.NewStateVec(lanes)
			if got := vec.Lanes(); got != lanes {
				t.Fatalf("Lanes() = %d, want %d", got, lanes)
			}
			views := vec.Views()
			srcs := make([]rng.Source, lanes)
			srcPtr := make([]*rng.Source, lanes)
			active := make([]int, lanes)
			ts := make([]int, lanes)
			scalarStates := make([]State, lanes)
			scalarSrc := make([]*rng.Source, lanes)
			for i := 0; i < lanes; i++ {
				srcs[i].SeedStream(99, uint64(i))
				srcPtr[i] = &srcs[i]
				active[i] = i
				ts[i] = 1
				scalarStates[i] = m.proc.Initial()
				scalarSrc[i] = rng.NewStream(99, uint64(i))
				vec.Load(i, m.proc.Initial())
			}
			for step := 0; step < steps; step++ {
				m.proc.StepVec(vec, active, ts, srcPtr)
				for i := 0; i < lanes; i++ {
					m.proc.Step(scalarStates[i], ts[i], scalarSrc[i])
					if got, want := m.obs(views[i]), m.obs(scalarStates[i]); got != want {
						t.Fatalf("lane %d step %d: bulk %v != scalar %v", i, step, got, want)
					}
					ts[i]++
				}
			}
		})
	}
}

// TestStepVecSparseLanes checks that StepVec touches exactly the listed
// lanes: unlisted lanes keep their state and draw nothing.
func TestStepVecSparseLanes(t *testing.T) {
	for name, m := range bulkModels(t) {
		t.Run(name, func(t *testing.T) {
			const lanes = 5
			vec := m.proc.NewStateVec(lanes)
			views := vec.Views()
			srcs := make([]rng.Source, lanes)
			srcPtr := make([]*rng.Source, lanes)
			ts := make([]int, lanes)
			for i := 0; i < lanes; i++ {
				srcs[i].SeedStream(7, uint64(i))
				srcPtr[i] = &srcs[i]
				ts[i] = 1
				vec.Load(i, m.proc.Initial())
			}
			idle := m.obs(views[3])
			idleSrc := srcs[3]
			m.proc.StepVec(vec, []int{0, 1, 2, 4}, ts, srcPtr)
			if got := m.obs(views[3]); got != idle {
				t.Fatalf("unlisted lane changed: %v -> %v", idle, got)
			}
			if srcs[3] != idleSrc {
				t.Fatal("unlisted lane's source was advanced")
			}
		})
	}
}

// TestStateVecSaveRestore spills a lane, perturbs it, and restores,
// asserting the observation round-trips; Drop recycles the slot.
func TestStateVecSaveRestore(t *testing.T) {
	for name, m := range bulkModels(t) {
		t.Run(name, func(t *testing.T) {
			vec := m.proc.NewStateVec(2)
			views := vec.Views()
			src := rng.NewStream(3, 0)
			vec.Load(0, m.proc.Initial())
			for s := 0; s < 10; s++ {
				m.proc.StepVec(vec, []int{0}, []int{s + 1}, []*rng.Source{src})
			}
			want := m.obs(views[0])
			h := vec.Save(0)
			for s := 10; s < 20; s++ {
				m.proc.StepVec(vec, []int{0}, []int{s + 1}, []*rng.Source{src})
			}
			if m.obs(views[0]) == want {
				// Not fatal — a path can revisit a value — but every model
				// here moves with probability 1 under these parameters.
				t.Logf("state did not move after 10 steps; restore check is vacuous")
			}
			vec.Restore(0, h)
			if got := m.obs(views[0]); got != want {
				t.Fatalf("restore: got %v, want %v", got, want)
			}
			// The slot survives a restore and is reusable after Drop.
			vec.Restore(1, h)
			if got := m.obs(views[1]); got != want {
				t.Fatalf("restore into other lane: got %v, want %v", got, want)
			}
			vec.Drop(h)
			if h2 := vec.Save(0); h2 != h {
				t.Fatalf("free list did not recycle slot: got %d, want %d", h2, h)
			}
		})
	}
}

// TestViewsShareConcreteType asserts each view has the model's scalar
// state type, so observers and value functions apply unchanged.
func TestViewsShareConcreteType(t *testing.T) {
	for name, m := range bulkModels(t) {
		t.Run(name, func(t *testing.T) {
			vec := m.proc.NewStateVec(1)
			vec.Load(0, m.proc.Initial())
			// The observer itself type-asserts; a mismatch panics.
			_ = m.obs(vec.Views()[0])
		})
	}
}

// TestScalarOnlyHidesBulk asserts the escape hatch works: a wrapped
// model no longer satisfies BulkProcess but still steps.
func TestScalarOnlyHidesBulk(t *testing.T) {
	g := &GBM{S0: 1, Mu: 0, Sigma: 0.1}
	wrapped := ScalarOnly(g)
	if _, ok := wrapped.(BulkProcess); ok {
		t.Fatal("ScalarOnly still satisfies BulkProcess")
	}
	st := wrapped.Initial()
	wrapped.Step(st, 1, rng.New(1))
	if ScalarValue(st) == g.S0 {
		t.Fatal("wrapped model did not step")
	}
}

// TestPinPreservesBulk asserts pinning keeps the fast path and pins
// Initial, in both orders of wrapping.
func TestPinPreservesBulk(t *testing.T) {
	g := &GBM{S0: 1, Mu: 0, Sigma: 0.1}
	pinnedProc := Pin(g, &Scalar{V: 42})
	bp, ok := pinnedProc.(BulkProcess)
	if !ok {
		t.Fatal("Pin dropped the bulk fast path")
	}
	if got := ScalarValue(pinnedProc.Initial()); got != 42 {
		t.Fatalf("pinned Initial = %v, want 42", got)
	}
	vec := bp.NewStateVec(1)
	vec.Load(0, pinnedProc.Initial())
	src := rng.NewStream(5, 0)
	bp.StepVec(vec, []int{0}, []int{1}, []*rng.Source{src})

	want := pinnedProc.Initial()
	g.Step(want, 1, rng.NewStream(5, 0))
	if got := ScalarValue(vec.Views()[0]); got != ScalarValue(want) {
		t.Fatalf("pinned StepVec = %v, want %v", got, ScalarValue(want))
	}

	if _, ok := Pin(ScalarOnly(g), &Scalar{V: 1}).(BulkProcess); ok {
		t.Fatal("Pin of a scalar-only model must not invent a bulk path")
	}
}
