package stochastic

// Lane-vector storage for the built-in models. Every vec follows the
// same shape: lane states in one flat backing slice (so a batch of
// lanes is contiguous in memory and per-lane access is an index, not a
// pointer chase), a parallel []State of per-lane views handed to
// observers, and a spill slice with a free list for split entrance
// states. Nothing here is gob-encoded or persisted: vecs are transient
// per-worker scratch, rebuilt from the model on every run, which is why
// these types carry no gob registration (see internal/analysis/gobreg —
// only types reachable from a //durlint:gobroot need it).

// plainVec is the StateVec for models whose state is a plain value
// struct (no internal slices): Scalar, ChainState, RegimeState,
// QueueState. S is the state struct; PS is its pointer type, which must
// implement State.
type plainVec[S any, PS interface {
	*S
	State
}] struct {
	lane  []S
	views []State
	spill []S
	free  []int
}

func newPlainVec[S any, PS interface {
	*S
	State
}](lanes int) *plainVec[S, PS] {
	v := &plainVec[S, PS]{lane: make([]S, lanes), views: make([]State, lanes)}
	for i := range v.lane {
		v.views[i] = PS(&v.lane[i])
	}
	return v
}

func (v *plainVec[S, PS]) Lanes() int     { return len(v.lane) }
func (v *plainVec[S, PS]) Views() []State { return v.views }

func (v *plainVec[S, PS]) Load(i int, s State) { v.lane[i] = *(s.(PS)) }

func (v *plainVec[S, PS]) Save(i int) int {
	h := v.alloc()
	v.spill[h] = v.lane[i]
	return h
}

func (v *plainVec[S, PS]) Restore(i, h int) { v.lane[i] = v.spill[h] }

func (v *plainVec[S, PS]) Drop(h int) { v.free = append(v.free, h) }

func (v *plainVec[S, PS]) alloc() int {
	if n := len(v.free); n > 0 {
		h := v.free[n-1]
		v.free = v.free[:n-1]
		return h
	}
	var zero S
	v.spill = append(v.spill, zero)
	return len(v.spill) - 1
}

// Concrete plain vecs. The type aliases keep the model files readable.
type (
	scalarVec = plainVec[Scalar, *Scalar]
	chainVec  = plainVec[ChainState, *ChainState]
	regimeVec = plainVec[RegimeState, *RegimeState]
	queueVec  = plainVec[QueueState, *QueueState]
)

func newScalarVec(lanes int) *scalarVec { return newPlainVec[Scalar, *Scalar](lanes) }
func newChainVec(lanes int) *chainVec   { return newPlainVec[ChainState, *ChainState](lanes) }
func newRegimeVec(lanes int) *regimeVec { return newPlainVec[RegimeState, *RegimeState](lanes) }
func newQueueVec(lanes int) *queueVec   { return newPlainVec[QueueState, *QueueState](lanes) }

// arVec is the StateVec for AR(m): every lane's ring buffer is a
// window of one flat lanes*m backing array, so lane state is
// struct-of-arrays contiguous and Load/Save/Restore are memmoves.
type arVec struct {
	m     int
	buf   []float64 // lanes*m flat history backing
	lane  []ARState // hist of lane i subslices buf[i*m : (i+1)*m]
	views []State
	spill []ARState // each slot owns its own m-float history
	free  []int
}

func newARVec(m, lanes int) *arVec {
	v := &arVec{
		m:     m,
		buf:   make([]float64, lanes*m),
		lane:  make([]ARState, lanes),
		views: make([]State, lanes),
	}
	for i := range v.lane {
		v.lane[i].hist = v.buf[i*m : (i+1)*m : (i+1)*m]
		v.views[i] = &v.lane[i]
	}
	return v
}

func (v *arVec) Lanes() int     { return len(v.lane) }
func (v *arVec) Views() []State { return v.views }

func (v *arVec) Load(i int, s State) {
	as := s.(*ARState)
	copy(v.lane[i].hist, as.hist)
	v.lane[i].head = as.head
}

func (v *arVec) Save(i int) int {
	h := v.alloc()
	copy(v.spill[h].hist, v.lane[i].hist)
	v.spill[h].head = v.lane[i].head
	return h
}

func (v *arVec) Restore(i, h int) {
	copy(v.lane[i].hist, v.spill[h].hist)
	v.lane[i].head = v.spill[h].head
}

func (v *arVec) Drop(h int) { v.free = append(v.free, h) }

func (v *arVec) alloc() int {
	if n := len(v.free); n > 0 {
		h := v.free[n-1]
		v.free = v.free[:n-1]
		return h
	}
	v.spill = append(v.spill, ARState{hist: make([]float64, v.m)})
	return len(v.spill) - 1
}
