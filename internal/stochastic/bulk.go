package stochastic

import "durability/internal/rng"

// This file defines the optional bulk-stepping contract the vectorized
// simulation kernel (internal/core) drives: a model that implements
// BulkProcess advances many independent simulation lanes in one call,
// amortizing the per-step interface dispatch of Process.Step across a
// whole batch and keeping every lane's state in flat, preallocated
// vector storage. The scalar Process interface remains the black-box
// fallback — a model that does not implement BulkProcess is simulated
// exactly as before, one Step call at a time.
//
// The contract is numerics-preserving by construction: each lane draws
// from its own rng.Source (the per-root substream the samplers already
// assign), and StepVec must perform, per lane, the exact floating-point
// operations Step performs in the exact order. A bulk run is therefore
// bit-for-bit equal to a scalar run — the repository's standing
// invariant — and the only thing the fast path changes is how much the
// hardware charges per step.

// StateVec is a batch of independent simulation lane states held in
// flat vector storage, plus a spill area for split entrance states.
// A vec is built by the model that steps it (NewStateVec), so the
// concrete layout is model-private; samplers drive it only through this
// interface and through per-lane State views.
//
// A StateVec is not safe for concurrent use; the kernel builds one per
// worker.
type StateVec interface {
	// Lanes returns the lane capacity fixed at construction.
	Lanes() int
	// Views returns one State per lane, aliasing the vector's storage:
	// Views()[i] always reflects lane i's current state, with the same
	// concrete type the model's Initial returns, so observers and value
	// functions apply unchanged. The slice and its elements are stable
	// for the life of the vec; callers must not retain a view across
	// Load/Restore of its lane and must never Clone-and-step one
	// independently (copy out with Clone first).
	Views() []State
	// Load copies the scalar state s into lane i. s must have the
	// concrete type the model's Initial returns.
	Load(i int, s State)
	// Save copies lane i into a pooled spill slot and returns its
	// handle. Spill slots hold split entrance states; they are reused
	// through a free list, so a balanced Save/Drop pattern allocates
	// only at the high-water mark.
	Save(i int) int
	// Restore copies spill slot h back into lane i. The slot stays
	// valid until Drop.
	Restore(i, h int)
	// Drop returns spill slot h to the free list.
	Drop(h int)
}

// BulkProcess is the optional fast-path extension of Process: a model
// that can advance many lanes per call. The simulation kernel asks for
// it with a type assertion and falls back to scalar Step when the
// assertion fails (black-box models, wrapped models, ScalarOnly).
type BulkProcess interface {
	Process
	// NewStateVec allocates a lane vector for this model.
	NewStateVec(lanes int) StateVec
	// StepVec advances each lane listed in lanes from time t[i]-1 to
	// t[i], drawing lane i's randomness from src[i]. t and src are
	// indexed by lane id (not by position in lanes). The per-lane
	// arithmetic and draw sequence must be identical to one Step call
	// on that lane's state — bulk and scalar runs must agree
	// bit-for-bit.
	StepVec(v StateVec, lanes []int, t []int, src []*rng.Source)
}

// ScalarOnly hides a model's bulk fast path, forcing samplers onto the
// scalar black-box Process interface. The differential golden tests and
// the kernel benchmarks use it to run the same model down both paths
// and assert equality; it is also the escape hatch if a bulk
// implementation is ever suspect in production.
func ScalarOnly(p Process) Process { return scalarOnly{p} }

// scalarOnly promotes only Process's methods, so a BulkProcess
// assertion on it fails even when the wrapped model implements one.
type scalarOnly struct{ Process }

// Compile-time checks: every built-in model ships a bulk fast path.
var (
	_ BulkProcess = (*GBM)(nil)
	_ BulkProcess = (*RandomWalk)(nil)
	_ BulkProcess = (*AR)(nil)
	_ BulkProcess = (*CompoundPoisson)(nil)
	_ BulkProcess = (*MarkovChain)(nil)
	_ BulkProcess = (*RegimeSwitching)(nil)
	_ BulkProcess = (*TandemQueue)(nil)
)
