package stochastic

import (
	"math"
	"testing"

	"durability/internal/rng"
	"durability/internal/stats"
)

func calmTurbulent(t *testing.T) *RegimeSwitching {
	t.Helper()
	r, err := NewRegimeSwitching(0,
		[][]float64{
			{0.98, 0.02}, // calm: rarely turns turbulent
			{0.10, 0.90}, // turbulent: persists briefly
		},
		[]float64{0, 0.5},
		[]float64{0.5, 3},
		0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRegimeSwitchingValidation(t *testing.T) {
	good := [][]float64{{0.9, 0.1}, {0.5, 0.5}}
	cases := []struct {
		name     string
		switchP  [][]float64
		drift    []float64
		sigma    []float64
		startReg int
	}{
		{"empty", nil, nil, nil, 0},
		{"mismatched", good, []float64{1}, []float64{1, 1}, 0},
		{"bad-matrix", [][]float64{{0.5, 0.4}, {1, 0}}, []float64{0, 0}, []float64{1, 1}, 0},
		{"zero-sigma", good, []float64{0, 0}, []float64{1, 0}, 0},
		{"bad-start", good, []float64{0, 0}, []float64{1, 1}, 5},
	}
	for _, tc := range cases {
		if _, err := NewRegimeSwitching(0, tc.switchP, tc.drift, tc.sigma, tc.startReg); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestRegimeStationaryDistribution(t *testing.T) {
	r := calmTurbulent(t)
	pi := r.StationaryRegimes()
	// Detailed balance for a 2-state chain: pi1/pi0 = p01/p10 = 0.02/0.10.
	wantTurbulent := 0.02 / (0.02 + 0.10)
	if math.Abs(pi[1]-wantTurbulent) > 1e-9 {
		t.Fatalf("stationary turbulent share = %v, want %v", pi[1], wantTurbulent)
	}
	if math.Abs(pi[0]+pi[1]-1) > 1e-9 {
		t.Fatalf("stationary distribution sums to %v", pi[0]+pi[1])
	}
}

func TestRegimeOccupancyMatchesStationary(t *testing.T) {
	r := calmTurbulent(t)
	pi := r.StationaryRegimes()
	src := rng.New(1)
	s := r.Initial()
	turbulent := 0
	const steps = 200000
	for i := 1; i <= steps; i++ {
		r.Step(s, i, src)
		if RegimeIndex(s) == 1 {
			turbulent++
		}
	}
	got := float64(turbulent) / steps
	if math.Abs(got-pi[1]) > 0.01 {
		t.Fatalf("empirical turbulent occupancy %v vs stationary %v", got, pi[1])
	}
}

func TestRegimeMomentsPerRegime(t *testing.T) {
	// Lock the chain into one regime (identity-ish transitions) and
	// verify the per-step moments.
	r, err := NewRegimeSwitching(0,
		[][]float64{{1, 0}, {0, 1}},
		[]float64{0.3, -0.2},
		[]float64{1, 2},
		1)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(2)
	var acc stats.Accumulator
	s := r.Initial()
	prev := RegimeValue(s)
	for i := 1; i <= 100000; i++ {
		r.Step(s, i, src)
		v := RegimeValue(s)
		acc.Add(v - prev)
		prev = v
	}
	if math.Abs(acc.Mean()-(-0.2)) > 0.02 {
		t.Fatalf("regime-1 drift = %v, want -0.2", acc.Mean())
	}
	if math.Abs(acc.StdDev()-2) > 0.05 {
		t.Fatalf("regime-1 sigma = %v, want 2", acc.StdDev())
	}
}

func TestRegimeCloneIndependence(t *testing.T) {
	r := calmTurbulent(t)
	src := rng.New(3)
	s := r.Initial()
	for i := 1; i <= 20; i++ {
		r.Step(s, i, src)
	}
	before := RegimeValue(s)
	beforeReg := RegimeIndex(s)
	c := s.Clone()
	for i := 21; i <= 40; i++ {
		r.Step(c, i, src)
	}
	if RegimeValue(s) != before || RegimeIndex(s) != beforeReg {
		t.Fatal("stepping a clone mutated the original")
	}
}

func TestRegimeValuePanicsOnWrongType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RegimeValue on Scalar did not panic")
		}
	}()
	RegimeValue(&Scalar{})
}
