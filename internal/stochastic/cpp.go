package stochastic

import "durability/internal/rng"

// CompoundPoisson is the risk process of §6 model (2):
//
//	U(t) = u + c*t - S(t)
//
// where S(t) is a compound Poisson process with jump density ClaimRate and
// uniform jump sizes on [ClaimLo, ClaimHi). U models the net position of
// an insurance policy: u is the initial surplus, c the per-step premium
// income and S the aggregate claims paid out.
//
// The impulse fields reproduce the "Volatile CPP" process of §6.2: after
// time ImpulseAfter, each step adds ImpulseSize to U with probability
// ImpulseProb, producing level-skipping jumps.
type CompoundPoisson struct {
	U0        float64 // initial surplus u
	Premium   float64 // per-step premium income c
	ClaimRate float64 // Poisson jump density lambda
	ClaimLo   float64 // uniform claim size lower bound
	ClaimHi   float64 // uniform claim size upper bound

	ImpulseProb  float64 // per-step probability of an impulse jump (0 disables)
	ImpulseSize  float64 // value added to U by an impulse
	ImpulseAfter int     // first time step at which impulses may fire
}

// NewCompoundPoisson returns the paper's CPP model with the given surplus
// and premium; claims arrive at rate lambda with Uni(lo, hi) sizes.
func NewCompoundPoisson(u, c, lambda, lo, hi float64) *CompoundPoisson {
	return &CompoundPoisson{U0: u, Premium: c, ClaimRate: lambda, ClaimLo: lo, ClaimHi: hi}
}

// Name implements Process.
func (p *CompoundPoisson) Name() string {
	if p.ImpulseProb > 0 {
		return "volatile-cpp"
	}
	return "cpp"
}

// Initial implements Process.
func (p *CompoundPoisson) Initial() State { return &Scalar{V: p.U0} }

// Step implements Process: one unit of time adds the premium and subtracts
// a Poisson-distributed number of uniform claims.
func (p *CompoundPoisson) Step(s State, t int, src *rng.Source) {
	sc := s.(*Scalar)
	sc.V += p.Premium
	claims := src.Poisson(p.ClaimRate)
	for i := 0; i < claims; i++ {
		sc.V -= src.Uniform(p.ClaimLo, p.ClaimHi)
	}
	if p.ImpulseProb > 0 && t >= p.ImpulseAfter && src.Bernoulli(p.ImpulseProb) {
		sc.V += p.ImpulseSize
	}
}

// NewStateVec implements BulkProcess.
func (p *CompoundPoisson) NewStateVec(lanes int) StateVec { return newScalarVec(lanes) }

// StepVec implements BulkProcess: Step's draw sequence per lane —
// Poisson claim count, then one uniform per claim, then the impulse
// Bernoulli — each lane from its own source.
func (p *CompoundPoisson) StepVec(v StateVec, lanes []int, t []int, src []*rng.Source) {
	sv := v.(*scalarVec)
	for _, i := range lanes {
		sc := &sv.lane[i]
		sc.V += p.Premium
		claims := src[i].Poisson(p.ClaimRate)
		for c := 0; c < claims; c++ {
			sc.V -= src[i].Uniform(p.ClaimLo, p.ClaimHi)
		}
		if p.ImpulseProb > 0 && t[i] >= p.ImpulseAfter && src[i].Bernoulli(p.ImpulseProb) {
			sc.V += p.ImpulseSize
		}
	}
}

// MeanDrift returns the expected per-step change of U, a calibration
// helper: premium minus expected aggregate claims.
func (p *CompoundPoisson) MeanDrift() float64 {
	return p.Premium - p.ClaimRate*(p.ClaimLo+p.ClaimHi)/2
}
