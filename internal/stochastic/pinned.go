package stochastic

import "durability/internal/rng"

// pinned adapts a snapshot into a Process whose Initial is that snapshot,
// so samplers (which always start from Initial) simulate futures of a
// live state. Time restarts at 1 for each run: a standing query's horizon
// is a sliding window measured from "now".
type pinned struct {
	proc Process
	st   State
}

func (p pinned) Name() string                         { return p.proc.Name() }
func (p pinned) Initial() State                       { return p.st.Clone() }
func (p pinned) Step(s State, t int, src *rng.Source) { p.proc.Step(s, t, src) }

// bulkPinned additionally forwards the bulk fast path, so standing-query
// refreshes pinned to a live snapshot keep the vectorized kernel.
type bulkPinned struct {
	pinned
	bulk BulkProcess
}

func (p bulkPinned) NewStateVec(lanes int) StateVec { return p.bulk.NewStateVec(lanes) }
func (p bulkPinned) StepVec(v StateVec, lanes []int, t []int, src []*rng.Source) {
	p.bulk.StepVec(v, lanes, t, src)
}

// Pin returns a Process with proc's dynamics whose Initial state is the
// given snapshot (cloned on every Initial call). It is how the standing-
// query engine and the execution backends start simulations from a live
// state instead of the model's canonical initial state. Pinning
// preserves the bulk fast path: a pinned BulkProcess is still a
// BulkProcess (only Initial changes, and the kernel reads Initial once).
func Pin(proc Process, st State) Process {
	if bp, ok := proc.(BulkProcess); ok {
		return bulkPinned{pinned: pinned{proc: proc, st: st}, bulk: bp}
	}
	return pinned{proc: proc, st: st}
}
