package stochastic

import "durability/internal/rng"

// pinned adapts a snapshot into a Process whose Initial is that snapshot,
// so samplers (which always start from Initial) simulate futures of a
// live state. Time restarts at 1 for each run: a standing query's horizon
// is a sliding window measured from "now".
type pinned struct {
	proc Process
	st   State
}

func (p pinned) Name() string                         { return p.proc.Name() }
func (p pinned) Initial() State                       { return p.st.Clone() }
func (p pinned) Step(s State, t int, src *rng.Source) { p.proc.Step(s, t, src) }

// Pin returns a Process with proc's dynamics whose Initial state is the
// given snapshot (cloned on every Initial call). It is how the standing-
// query engine and the execution backends start simulations from a live
// state instead of the model's canonical initial state.
func Pin(proc Process, st State) Process {
	return pinned{proc: proc, st: st}
}
