package stochastic

import (
	"fmt"

	"durability/internal/rng"
)

// TandemQueue is the two-stage queueing network of §6 Figure 4: Poisson
// arrivals into queue 1, exponential service at queue 1 feeding queue 2,
// exponential service at queue 2. The observed process is the number of
// customers in queue 2, starting from an empty system.
//
// The continuous-time Markov chain is simulated exactly inside each unit
// time step with the Gillespie algorithm; thanks to the memorylessness of
// all three event types no residual clocks have to be carried across step
// boundaries, so the state is just the two queue lengths.
//
// The impulse fields reproduce the "Volatile Queue" process of §6.2: after
// time ImpulseAfter, each step adds ImpulseSize customers to queue 2 with
// probability ImpulseProb, which makes sample paths skip levels.
type TandemQueue struct {
	ArrivalRate  float64 // Poisson arrival rate into queue 1
	ServiceRate1 float64 // exponential service rate of queue 1
	ServiceRate2 float64 // exponential service rate of queue 2

	ImpulseProb  float64 // per-step probability of an impulse jump (0 disables)
	ImpulseSize  int     // customers added to queue 2 by an impulse
	ImpulseAfter int     // first time step at which impulses may fire
}

// NewTandemQueue returns the paper's queue model. The paper parameterises
// services by their Exp(mu) label with mu1 = mu2 = 2 and arrivals with
// Pois(lambda), lambda = 0.5; we interpret mu as the mean service time
// (rate 1/mu), which puts both stations at critical load rho = 1 — the
// regime in which the paper's reported hitting probabilities for queue-2
// backlogs are attainable.
func NewTandemQueue(lambda, mu1, mu2 float64) *TandemQueue {
	return &TandemQueue{
		ArrivalRate:  lambda,
		ServiceRate1: 1 / mu1,
		ServiceRate2: 1 / mu2,
	}
}

// QueueState holds the two queue lengths.
type QueueState struct {
	Q1, Q2 int
}

// Clone implements State.
func (s *QueueState) Clone() State {
	c := *s
	return &c
}

// Queue2Len observes the number of customers in queue 2, the process the
// paper's durability queries are about.
func Queue2Len(s State) float64 {
	qs, ok := s.(*QueueState)
	if !ok {
		panic(fmt.Sprintf("stochastic: Queue2Len applied to %T", s))
	}
	return float64(qs.Q2)
}

// Queue1Len observes the number of customers in queue 1.
func Queue1Len(s State) float64 {
	return float64(s.(*QueueState).Q1)
}

// Name implements Process.
func (q *TandemQueue) Name() string {
	if q.ImpulseProb > 0 {
		return "volatile-tandem-queue"
	}
	return "tandem-queue"
}

// Initial implements Process. The system starts empty (§6).
func (q *TandemQueue) Initial() State { return &QueueState{} }

// Step implements Process: exact CTMC simulation over one unit of time.
func (q *TandemQueue) Step(s State, t int, src *rng.Source) {
	qs := s.(*QueueState)
	remaining := 1.0
	for {
		rate := q.ArrivalRate
		if qs.Q1 > 0 {
			rate += q.ServiceRate1
		}
		if qs.Q2 > 0 {
			rate += q.ServiceRate2
		}
		dt := src.Exp(rate)
		if dt > remaining {
			break
		}
		remaining -= dt
		// Choose which event fired, proportionally to its rate.
		u := src.Float64() * rate
		switch {
		case u < q.ArrivalRate:
			qs.Q1++
		case qs.Q1 > 0 && u < q.ArrivalRate+q.ServiceRate1:
			qs.Q1--
			qs.Q2++
		default:
			qs.Q2--
		}
	}
	if q.ImpulseProb > 0 && t >= q.ImpulseAfter && src.Bernoulli(q.ImpulseProb) {
		qs.Q2 += q.ImpulseSize
	}
}

// NewStateVec implements BulkProcess.
func (q *TandemQueue) NewStateVec(lanes int) StateVec { return newQueueVec(lanes) }

// StepVec implements BulkProcess: the exact Gillespie loop of Step per
// lane, each lane drawing its event clocks from its own source.
func (q *TandemQueue) StepVec(v StateVec, lanes []int, t []int, src []*rng.Source) {
	qv := v.(*queueVec)
	for _, i := range lanes {
		qs := &qv.lane[i]
		remaining := 1.0
		for {
			rate := q.ArrivalRate
			if qs.Q1 > 0 {
				rate += q.ServiceRate1
			}
			if qs.Q2 > 0 {
				rate += q.ServiceRate2
			}
			dt := src[i].Exp(rate)
			if dt > remaining {
				break
			}
			remaining -= dt
			u := src[i].Float64() * rate
			switch {
			case u < q.ArrivalRate:
				qs.Q1++
			case qs.Q1 > 0 && u < q.ArrivalRate+q.ServiceRate1:
				qs.Q1--
				qs.Q2++
			default:
				qs.Q2--
			}
		}
		if q.ImpulseProb > 0 && t[i] >= q.ImpulseAfter && src[i].Bernoulli(q.ImpulseProb) {
			qs.Q2 += q.ImpulseSize
		}
	}
}
