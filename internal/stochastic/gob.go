package stochastic

import "encoding/gob"

// The distributed execution backend (internal/exec, internal/cluster)
// ships live-state snapshots to remote workers inside gob-encoded RPC
// requests, and the durable-serving layer (internal/persist) writes them
// into checkpoints and WAL records — both as a State interface field. gob
// resolves interface values through a registry of concrete types, so every
// State defined here is registered once; ARState, whose ring buffer is
// unexported, carries its own GobEncode/GobDecode pair. TestStateGob
// audits that every constructor's state round-trips, so an unregistered
// concrete type is a test failure rather than a runtime encoding error on
// a live snapshot or RPC. (The neural package registers its StockState
// alongside its own encoder.)
func init() {
	gob.Register(&Scalar{})
	gob.Register(&QueueState{})
	gob.Register(&ChainState{})
	gob.Register(&RegimeState{})
	gob.Register(&NetworkState{})
	gob.Register(&MarketState{})
	gob.Register(&ARState{})
}
