package stochastic

import "encoding/gob"

// The distributed execution backend (internal/exec, internal/cluster)
// ships live-state snapshots to remote workers inside gob-encoded RPC
// requests, as a State interface field. gob resolves interface values
// through a registry of concrete types, so every plain-data State defined
// here is registered once. States with unexported fields (ARState) or
// heavyweight payloads (neural hidden states) are deliberately absent:
// encoding one surfaces a clear gob error at the caller, and those models
// stay on the local backend.
func init() {
	gob.Register(&Scalar{})
	gob.Register(&QueueState{})
	gob.Register(&ChainState{})
	gob.Register(&RegimeState{})
	gob.Register(&NetworkState{})
	gob.Register(&MarketState{})
}
