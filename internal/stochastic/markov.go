package stochastic

import (
	"fmt"

	"durability/internal/rng"
)

// MarkovChain is a time-homogeneous discrete-time Markov chain (§2.1
// example (2)) over states 0..n-1 with a dense row-stochastic transition
// matrix. Values maps each chain state to the real-valued observation
// z(x); if nil, the observation is the state index itself.
//
// Because the exact hitting probability of a finite chain can be computed
// by dynamic programming (HitProbability), this model anchors the
// correctness tests: every sampler's estimate is compared against the
// exact answer.
type MarkovChain struct {
	P      [][]float64 // P[i][j] = Pr[X_t = j | X_{t-1} = i]
	Start  int         // initial chain state
	Values []float64   // optional observation per state
}

// NewMarkovChain validates the transition matrix and returns the chain.
func NewMarkovChain(p [][]float64, start int) (*MarkovChain, error) {
	n := len(p)
	if n == 0 {
		return nil, fmt.Errorf("stochastic: empty transition matrix")
	}
	for i, row := range p {
		if len(row) != n {
			return nil, fmt.Errorf("stochastic: row %d has %d entries, want %d", i, len(row), n)
		}
		sum := 0.0
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("stochastic: P[%d][%d] = %v is negative", i, j, v)
			}
			sum += v
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			return nil, fmt.Errorf("stochastic: row %d sums to %v, want 1", i, sum)
		}
	}
	if start < 0 || start >= n {
		return nil, fmt.Errorf("stochastic: start state %d out of range [0,%d)", start, n)
	}
	return &MarkovChain{P: p, Start: start}, nil
}

// ChainState is the integer state of a Markov chain.
type ChainState struct {
	I int
}

// Clone implements State.
func (s *ChainState) Clone() State {
	c := *s
	return &c
}

// ChainIndex observes the raw chain-state index.
func ChainIndex(s State) float64 {
	cs, ok := s.(*ChainState)
	if !ok {
		panic(fmt.Sprintf("stochastic: ChainIndex applied to %T", s))
	}
	return float64(cs.I)
}

// Name implements Process.
func (m *MarkovChain) Name() string { return fmt.Sprintf("markov-%d", len(m.P)) }

// Initial implements Process.
func (m *MarkovChain) Initial() State { return &ChainState{I: m.Start} }

// Step implements Process.
func (m *MarkovChain) Step(s State, _ int, src *rng.Source) {
	cs := s.(*ChainState)
	cs.I = src.Categorical(m.P[cs.I])
}

// NewStateVec implements BulkProcess.
func (m *MarkovChain) NewStateVec(lanes int) StateVec { return newChainVec(lanes) }

// StepVec implements BulkProcess: one categorical transition per lane.
func (m *MarkovChain) StepVec(v StateVec, lanes []int, _ []int, src []*rng.Source) {
	cv := v.(*chainVec)
	for _, i := range lanes {
		cs := &cv.lane[i]
		cs.I = src[i].Categorical(m.P[cs.I])
	}
}

// Observe returns the model's observation function: Values[i] when Values
// is set, the state index otherwise.
func (m *MarkovChain) Observe() Observer {
	if m.Values == nil {
		return ChainIndex
	}
	vals := m.Values
	return func(s State) float64 { return vals[s.(*ChainState).I] }
}

// HitProbability computes, exactly, the probability that the chain visits
// any state in target within horizon steps of the start state. This is the
// ground truth the sampler correctness tests compare against.
//
// The recurrence is h_0(i) = [i in target]; h_k(i) = [i in target] +
// (1 - [i in target]) * sum_j P[i][j] h_{k-1}(j). The answer, matching the
// query semantics Pr[∨_{1<=t<=s} q(X_t)], excludes the initial state's own
// membership: it is sum_j P[start][j] * h_{horizon-1}(j).
func (m *MarkovChain) HitProbability(target map[int]bool, horizon int) float64 {
	n := len(m.P)
	h := make([]float64, n)
	next := make([]float64, n)
	for i := 0; i < n; i++ {
		if target[i] {
			h[i] = 1
		}
	}
	for k := 1; k < horizon; k++ {
		for i := 0; i < n; i++ {
			if target[i] {
				next[i] = 1
				continue
			}
			sum := 0.0
			for j, pij := range m.P[i] {
				sum += pij * h[j]
			}
			next[i] = sum
		}
		h, next = next, h
	}
	if horizon <= 0 {
		return 0
	}
	ans := 0.0
	for j, pij := range m.P[m.Start] {
		ans += pij * h[j]
	}
	return ans
}

// BirthDeathChain builds the classic birth-death chain on 0..n-1 with
// up-probability p (down 1-p, reflecting at both ends), a standard
// test-bed whose hitting probabilities stress the level machinery: with
// small p, reaching high states is a rare event.
func BirthDeathChain(n int, p float64, start int) *MarkovChain {
	mat := make([][]float64, n)
	for i := range mat {
		mat[i] = make([]float64, n)
		switch i {
		case 0:
			mat[i][1] = p
			mat[i][0] = 1 - p
		case n - 1:
			mat[i][n-1] = p
			mat[i][n-2] = 1 - p
		default:
			mat[i][i+1] = p
			mat[i][i-1] = 1 - p
		}
	}
	mc, err := NewMarkovChain(mat, start)
	if err != nil {
		panic(err) // construction above is always valid
	}
	return mc
}
