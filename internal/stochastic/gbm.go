package stochastic

import (
	"math"

	"durability/internal/rng"
)

// GBM is geometric Brownian motion observed at unit time steps:
//
//	S_t = S_{t-1} * exp((Mu - Sigma^2/2) + Sigma * eps_t)
//
// It serves two roles: the training-data generator for the LSTM-MDN stock
// model (the stand-in for the paper's Google daily price series, see
// DESIGN.md §5), and a cheap analytically tractable price process for
// examples and tests.
type GBM struct {
	S0    float64 // initial price
	Mu    float64 // per-step log drift
	Sigma float64 // per-step log volatility
}

// Name implements Process.
func (g *GBM) Name() string { return "gbm" }

// Initial implements Process.
func (g *GBM) Initial() State { return &Scalar{V: g.S0} }

// Step implements Process.
func (g *GBM) Step(s State, _ int, src *rng.Source) {
	sc := s.(*Scalar)
	sc.V *= math.Exp(g.Mu - g.Sigma*g.Sigma/2 + g.Sigma*src.Norm())
}

// NewStateVec implements BulkProcess.
func (g *GBM) NewStateVec(lanes int) StateVec { return newScalarVec(lanes) }

// StepVec implements BulkProcess: per lane, the same expression Step
// evaluates (same association, so the floating-point result is
// bit-identical), drawn from that lane's own source.
func (g *GBM) StepVec(v StateVec, lanes []int, _ []int, src []*rng.Source) {
	sv := v.(*scalarVec)
	for _, i := range lanes {
		sv.lane[i].V *= math.Exp(g.Mu - g.Sigma*g.Sigma/2 + g.Sigma*src[i].Norm())
	}
}

// SeriesWithRegimes generates a length-n price series from the GBM with
// occasional volatility regime shifts, giving the neural model richer
// structure to learn than plain GBM. Used only for training data.
func (g *GBM) SeriesWithRegimes(n int, src *rng.Source) []float64 {
	out := make([]float64, n)
	price := g.S0
	sigma := g.Sigma
	for i := 0; i < n; i++ {
		// A regime shift roughly every 250 steps rescales volatility.
		if src.Bernoulli(1.0 / 250) {
			sigma = g.Sigma * src.Uniform(0.5, 2.0)
		}
		price *= math.Exp(g.Mu - sigma*sigma/2 + sigma*src.Norm())
		out[i] = price
	}
	return out
}
