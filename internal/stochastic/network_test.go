package stochastic

import (
	"math"
	"testing"

	"durability/internal/rng"
	"durability/internal/stats"
)

func TestNewQueueNetworkValidation(t *testing.T) {
	cases := []struct {
		name    string
		arrival []float64
		service []float64
		route   [][]float64
	}{
		{"empty", nil, nil, nil},
		{"mismatched", []float64{1}, []float64{1, 1}, [][]float64{{0, 0}, {0, 0}}},
		{"negative-arrival", []float64{-1}, []float64{1}, [][]float64{{0}}},
		{"zero-service", []float64{1}, []float64{0}, [][]float64{{0}}},
		{"ragged-route", []float64{1, 0}, []float64{1, 1}, [][]float64{{0}, {0, 0}}},
		{"negative-route", []float64{1}, []float64{1}, [][]float64{{-0.5}}},
		{"super-stochastic", []float64{1, 0}, []float64{1, 1}, [][]float64{{0.7, 0.7}, {0, 0}}},
		{"no-arrivals", []float64{0, 0}, []float64{1, 1}, [][]float64{{0, 1}, {0, 0}}},
	}
	for _, tc := range cases {
		if _, err := NewQueueNetwork(tc.arrival, tc.service, tc.route); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewQueueNetwork([]float64{1}, []float64{2}, [][]float64{{0}}); err != nil {
		t.Fatalf("valid single node rejected: %v", err)
	}
}

func TestNetworkStateClone(t *testing.T) {
	s := &NetworkState{Q: []int{1, 2, 3}}
	c := s.Clone().(*NetworkState)
	c.Q[0] = 99
	if s.Q[0] != 1 {
		t.Fatal("Clone shares the queue slice")
	}
}

func TestNodeLenAndTotalLen(t *testing.T) {
	s := &NetworkState{Q: []int{4, 7}}
	if NodeLen(1)(s) != 7 {
		t.Fatal("NodeLen wrong")
	}
	if TotalLen(s) != 11 {
		t.Fatal("TotalLen wrong")
	}
}

func TestNodeLenPanicsOnWrongType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NodeLen on Scalar did not panic")
		}
	}()
	NodeLen(0)(&Scalar{})
}

// The tandem QueueNetwork must agree distributionally with the specialised
// TandemQueue implementation: same long-run mean of queue 2 within noise.
func TestNetworkMatchesTandemQueue(t *testing.T) {
	// Stable regime so the mean is finite: rates, not means — service
	// rate 1, arrival 0.5 gives rho = 0.5 at both stations.
	qn := Tandem(0.5, 1, 1)
	tq := &TandemQueue{ArrivalRate: 0.5, ServiceRate1: 1, ServiceRate2: 1}
	const steps = 40000
	measure := func(p Process, obs Observer, seed uint64) float64 {
		src := rng.New(seed)
		s := p.Initial()
		var acc stats.Accumulator
		for i := 1; i <= steps; i++ {
			p.Step(s, i, src)
			if i > 1000 { // burn-in
				acc.Add(obs(s))
			}
		}
		return acc.Mean()
	}
	a := measure(qn, NodeLen(1), 1)
	b := measure(tq, Queue2Len, 2)
	// M/M/1 with rho=0.5: mean number in system = rho/(1-rho) = 1.
	if math.Abs(a-1) > 0.25 {
		t.Errorf("network queue-2 mean = %v, want ~1", a)
	}
	if math.Abs(a-b) > 0.3 {
		t.Errorf("network %v vs tandem %v", a, b)
	}
}

func TestNetworkThroughput(t *testing.T) {
	// Two-node tandem: all of node 1's throughput feeds node 2.
	qn := Tandem(0.5, 2, 1)
	gamma, util := qn.Throughput()
	if math.Abs(gamma[0]-0.5) > 1e-9 || math.Abs(gamma[1]-0.5) > 1e-9 {
		t.Fatalf("gamma = %v, want [0.5 0.5]", gamma)
	}
	if math.Abs(util[0]-0.25) > 1e-9 || math.Abs(util[1]-0.5) > 1e-9 {
		t.Fatalf("util = %v, want [0.25 0.5]", util)
	}
}

func TestNetworkThroughputWithFeedback(t *testing.T) {
	// One node that routes half its output back to itself:
	// gamma = a + gamma/2 => gamma = 2a.
	qn, err := NewQueueNetwork([]float64{0.3}, []float64{2}, [][]float64{{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	gamma, util := qn.Throughput()
	if math.Abs(gamma[0]-0.6) > 1e-9 {
		t.Fatalf("gamma = %v, want 0.6", gamma[0])
	}
	if math.Abs(util[0]-0.3) > 1e-9 {
		t.Fatalf("util = %v, want 0.3", util[0])
	}
}

func TestNetworkConservation(t *testing.T) {
	// Three-node fork-join-ish topology; queue lengths never go negative
	// and customers only appear via arrivals.
	qn, err := NewQueueNetwork(
		[]float64{0.4, 0.2, 0},
		[]float64{1, 1, 0.8},
		[][]float64{
			{0, 0.5, 0.5},
			{0, 0, 0.7},
			{0, 0, 0},
		})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	s := qn.Initial()
	for i := 1; i <= 5000; i++ {
		qn.Step(s, i, src)
		for node, q := range s.(*NetworkState).Q {
			if q < 0 {
				t.Fatalf("node %d negative at step %d", node, i)
			}
		}
	}
}

func TestNetworkCriticalNodeGrows(t *testing.T) {
	// An unstable node (util > 1) accumulates customers linearly.
	qn, err := NewQueueNetwork([]float64{1.5}, []float64{1}, [][]float64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	_, util := qn.Throughput()
	if util[0] <= 1 {
		t.Fatalf("util = %v, want > 1", util[0])
	}
	src := rng.New(6)
	s := qn.Initial()
	const steps = 5000
	for i := 1; i <= steps; i++ {
		qn.Step(s, i, src)
	}
	got := NodeLen(0)(s)
	want := 0.5 * steps // net growth rate 1.5 - 1
	if math.Abs(got-want) > 0.15*want {
		t.Fatalf("unstable node length = %v, want ~%v", got, want)
	}
}

func BenchmarkNetworkStep(b *testing.B) {
	qn := Tandem(0.5, 0.5, 0.5)
	src := rng.New(1)
	s := qn.Initial()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qn.Step(s, i+1, src)
	}
}
