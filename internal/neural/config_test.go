package neural

import "testing"

func TestConfigDefaults(t *testing.T) {
	m := NewModel(Config{}, 1)
	cfg := m.Config()
	if cfg.Hidden != 24 || cfg.Layers != 2 || cfg.Mixtures != 5 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.SeqLen != 40 || cfg.LR <= 0 || cfg.Clip <= 0 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestConfigExplicitValuesKept(t *testing.T) {
	cfg := Config{Hidden: 7, Layers: 3, Mixtures: 2, SeqLen: 11, LR: 0.5, Clip: 9}
	m := NewModel(cfg, 1)
	if m.Config() != cfg {
		t.Fatalf("config mangled: %+v", m.Config())
	}
}

func TestParamCountsMatchArchitecture(t *testing.T) {
	m := NewModel(Config{Hidden: 4, Layers: 2, Mixtures: 3}, 1)
	ps := m.params()
	// 2 LSTM layers x (wx, wh, b) + MDN (w, b) = 8 tensors.
	if len(ps) != 8 {
		t.Fatalf("param tensors = %d, want 8", len(ps))
	}
	// Layer 1: input 1 -> wx is 4*4*1, wh 4*4*4, b 16.
	if len(ps[0].w) != 16 || len(ps[1].w) != 64 || len(ps[2].w) != 16 {
		t.Fatalf("layer-1 shapes: %d %d %d", len(ps[0].w), len(ps[1].w), len(ps[2].w))
	}
	// Layer 2: input 4 -> wx is 16*4.
	if len(ps[3].w) != 64 {
		t.Fatalf("layer-2 wx = %d, want 64", len(ps[3].w))
	}
	// Head: 3 mixtures -> 9 outputs over 4 inputs, bias 9.
	if len(ps[6].w) != 36 || len(ps[7].w) != 9 {
		t.Fatalf("head shapes: %d %d", len(ps[6].w), len(ps[7].w))
	}
}

func TestInitialWeightsDeterministic(t *testing.T) {
	a := NewModel(Config{Hidden: 5}, 42)
	b := NewModel(Config{Hidden: 5}, 42)
	pa, pb := a.params(), b.params()
	for i := range pa {
		for j := range pa[i].w {
			if pa[i].w[j] != pb[i].w[j] {
				t.Fatalf("tensor %d index %d differs across equal seeds", i, j)
			}
		}
	}
	c := NewModel(Config{Hidden: 5}, 43)
	diff := false
	pc := c.params()
	for j := range pa[0].w {
		if pa[0].w[j] != pc[0].w[j] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical weights")
	}
}
