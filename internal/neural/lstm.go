package neural

import (
	"math"

	"durability/internal/rng"
)

// lstmLayer is a standard LSTM cell:
//
//	[i f g o] = Wx*x + Wh*h + b
//	i, f, o  = sigmoid(...)   g = tanh(...)
//	c' = f.c + i.g            h' = o.tanh(c')
//
// Gate pre-activations are packed i|f|g|o, each a block of size hidden.
type lstmLayer struct {
	in, hidden int
	wx, wh, b  *param
}

func newLSTMLayer(in, hidden int, src *rng.Source) *lstmLayer {
	l := &lstmLayer{
		in:     in,
		hidden: hidden,
		wx:     newParam(4*hidden*in, 0.4/float64(in+hidden), src),
		wh:     newParam(4*hidden*hidden, 0.4/float64(in+hidden), src),
		b:      newParam(4*hidden, 0, src),
	}
	// Forget-gate bias starts at 1: the standard trick that keeps memory
	// alive early in training.
	for i := hidden; i < 2*hidden; i++ {
		l.b.w[i] = 1
	}
	return l
}

func (l *lstmLayer) params() []*param { return []*param{l.wx, l.wh, l.b} }

// lstmCache holds everything backward needs from one forward step.
type lstmCache struct {
	x, hPrev, cPrev []float64
	i, f, g, o      []float64 // post-activation gates
	c, tanhC        []float64
}

// forward advances the cell one step. h and c are updated in place; the
// returned cache is nil-able for inference-only calls.
func (l *lstmLayer) forward(x, h, c []float64, keepCache bool) (*lstmCache, []float64) {
	hd := l.hidden
	pre := make([]float64, 4*hd)
	matVec(pre, l.wx.w, 4*hd, l.in, x, l.b.w)
	// add Wh*h without a second bias
	for r := 0; r < 4*hd; r++ {
		row := l.wh.w[r*hd : (r+1)*hd]
		s := pre[r]
		for k, hv := range h {
			s += row[k] * hv
		}
		pre[r] = s
	}
	var cache *lstmCache
	if keepCache {
		cache = &lstmCache{
			x:     append([]float64(nil), x...),
			hPrev: append([]float64(nil), h...),
			cPrev: append([]float64(nil), c...),
			i:     make([]float64, hd),
			f:     make([]float64, hd),
			g:     make([]float64, hd),
			o:     make([]float64, hd),
			c:     make([]float64, hd),
			tanhC: make([]float64, hd),
		}
	}
	for j := 0; j < hd; j++ {
		iG := sigmoid(pre[j])
		fG := sigmoid(pre[hd+j])
		gG := tanhf(pre[2*hd+j])
		oG := sigmoid(pre[3*hd+j])
		cNew := fG*c[j] + iG*gG
		tc := tanhf(cNew)
		hNew := oG * tc
		if cache != nil {
			cache.i[j], cache.f[j], cache.g[j], cache.o[j] = iG, fG, gG, oG
			cache.c[j], cache.tanhC[j] = cNew, tc
		}
		c[j] = cNew
		h[j] = hNew
	}
	return cache, h
}

// backward consumes the gradient dh (w.r.t. this step's output h) and dc
// (carried from the next step), accumulates parameter gradients, and
// returns (dx, dhPrev, dcPrev).
func (l *lstmLayer) backward(cache *lstmCache, dh, dc []float64) (dx, dhPrev, dcPrev []float64) {
	hd := l.hidden
	dPre := make([]float64, 4*hd)
	dcPrev = make([]float64, hd)
	for j := 0; j < hd; j++ {
		doG := dh[j] * cache.tanhC[j]
		dcTot := dc[j] + dh[j]*cache.o[j]*(1-cache.tanhC[j]*cache.tanhC[j])
		diG := dcTot * cache.g[j]
		dfG := dcTot * cache.cPrev[j]
		dgG := dcTot * cache.i[j]
		dcPrev[j] = dcTot * cache.f[j]
		dPre[j] = diG * cache.i[j] * (1 - cache.i[j])
		dPre[hd+j] = dfG * cache.f[j] * (1 - cache.f[j])
		dPre[2*hd+j] = dgG * (1 - cache.g[j]*cache.g[j])
		dPre[3*hd+j] = doG * cache.o[j] * (1 - cache.o[j])
	}
	dx = make([]float64, l.in)
	dhPrev = make([]float64, hd)
	for r := 0; r < 4*hd; r++ {
		dp := dPre[r]
		if dp == 0 {
			continue
		}
		l.b.g[r] += dp
		wxRow := l.wx.g[r*l.in : (r+1)*l.in]
		for cIdx, xv := range cache.x {
			wxRow[cIdx] += dp * xv
		}
		whRow := l.wh.g[r*hd : (r+1)*hd]
		for k, hv := range cache.hPrev {
			whRow[k] += dp * hv
		}
		wxW := l.wx.w[r*l.in : (r+1)*l.in]
		for cIdx := range dx {
			dx[cIdx] += dp * wxW[cIdx]
		}
		whW := l.wh.w[r*hd : (r+1)*hd]
		for k := range dhPrev {
			dhPrev[k] += dp * whW[k]
		}
	}
	return dx, dhPrev, dcPrev
}

func tanhf(x float64) float64 { return math.Tanh(x) }
