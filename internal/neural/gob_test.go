package neural

import (
	"bytes"
	"encoding/gob"
	"testing"

	"durability/internal/rng"
	"durability/internal/stochastic"
)

// The neural wrapper's state carries the full recurrent context; it must
// round-trip through gob as a stochastic.State interface value — the form
// snapshots and cluster RPC requests use — and the decoded state must
// continue the simulation bit-for-bit, or a recovered standing query on an
// LSTM-MDN model would silently restart its hidden state.
func TestStockStateGob(t *testing.T) {
	m := NewModel(Config{Hidden: 6, Layers: 2, Mixtures: 2, SeqLen: 20}, 5)
	p := NewStockProcess(m, 1000, 10)

	st := p.Initial()
	src := rng.NewStream(3, 0)
	for i := 1; i <= 5; i++ {
		p.Step(st, i, src)
	}

	var buf bytes.Buffer
	carrier := struct{ S stochastic.State }{S: st}
	if err := gob.NewEncoder(&buf).Encode(carrier); err != nil {
		t.Fatalf("encoding StockState: %v", err)
	}
	var out struct{ S stochastic.State }
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatalf("decoding StockState: %v", err)
	}

	if got, want := Price(out.S), Price(st); got != want {
		t.Fatalf("decoded price %v, original %v", got, want)
	}
	a, b := st.Clone(), out.S
	srcA, srcB := rng.NewStream(11, 2), rng.NewStream(11, 2)
	for i := 6; i <= 20; i++ {
		p.Step(a, i, srcA)
		p.Step(b, i, srcB)
		if Price(a) != Price(b) {
			t.Fatalf("decoded state diverged at step %d: %v vs %v", i, Price(b), Price(a))
		}
	}
}
