package neural

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"durability/internal/rng"
	"durability/internal/stochastic"
)

// StockProcess adapts a trained Model into the repository's step-wise
// simulation interface: the black-box 𝔤 of §2.1 example (3). The state
// carries the price, the last normalised return, and the full recurrent
// hidden state — exactly what the paper means by "the state at time t
// includes both v_t and h_t".
type StockProcess struct {
	Model *Model
	S0    float64 // initial price
	// Warmup steps run at construction time with a fixed substream so the
	// initial hidden state reflects a plausible recent history rather
	// than zeros.
	Warmup int

	initial *StockState
}

// StockState is the simulation state of the LSTM-MDN price process.
type StockState struct {
	Price   float64
	lastRet float64
	hidden  hiddenState
}

// Clone implements stochastic.State; it deep-copies the hidden state so
// MLSS offspring evolve independently.
func (s *StockState) Clone() stochastic.State {
	return &StockState{Price: s.Price, lastRet: s.lastRet, hidden: s.hidden.clone()}
}

// stockStateWire is the exported mirror of StockState for gob: the last
// return and the recurrent activations are unexported (nothing outside the
// package may touch them), so the state ships through an explicit encoder.
type stockStateWire struct {
	Price, LastRet float64
	H, C           [][]float64
}

// GobEncode implements gob.GobEncoder: the full simulation state — price,
// last normalised return and every layer's recurrent activations — so a
// snapshotted LSTM-MDN state resumes simulation exactly where it stood.
func (s *StockState) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(stockStateWire{
		Price: s.Price, LastRet: s.lastRet, H: s.hidden.h, C: s.hidden.c,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (s *StockState) GobDecode(data []byte) error {
	var w stockStateWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if len(w.H) != len(w.C) {
		return fmt.Errorf("neural: decoded StockState has %d h layers but %d c layers", len(w.H), len(w.C))
	}
	s.Price, s.lastRet = w.Price, w.LastRet
	s.hidden = hiddenState{h: w.H, c: w.C}
	return nil
}

// Serving-state snapshots and cluster RPC requests carry states as
// stochastic.State interface values, which gob resolves through its
// type registry.
func init() {
	gob.Register(&StockState{})
}

// Price observes the simulated stock price of a StockState.
func Price(s stochastic.State) float64 {
	ss, ok := s.(*StockState)
	if !ok {
		panic(fmt.Sprintf("neural: Price applied to %T", s))
	}
	return ss.Price
}

// NewStockProcess prepares the process. The warm-up runs the model forward
// on its own samples from a dedicated deterministic stream, once, so every
// root path starts from the same warmed state (a fixed initial condition,
// as the paper's queries require).
func NewStockProcess(m *Model, s0 float64, warmup int) *StockProcess {
	p := &StockProcess{Model: m, S0: s0, Warmup: warmup}
	st := &StockState{Price: s0, hidden: m.newHidden()}
	src := rng.New(0x57a7e)
	for i := 0; i < warmup; i++ {
		p.advance(st, src)
	}
	st.Price = s0 // warm the hidden state but pin the starting price
	p.initial = st
	return p
}

// Name implements stochastic.Process.
func (p *StockProcess) Name() string { return "lstm-mdn-stock" }

// Initial implements stochastic.Process.
func (p *StockProcess) Initial() stochastic.State {
	return p.initial.Clone()
}

// Step implements stochastic.Process.
func (p *StockProcess) Step(s stochastic.State, _ int, src *rng.Source) {
	p.advance(s.(*StockState), src)
}

func (p *StockProcess) advance(st *StockState, src *rng.Source) {
	_, mix := p.Model.stepForward(st.lastRet, st.hidden, false)
	y := mix.sample(src)
	// Guard the simulation against pathological mixtures early in
	// training: cap one-step normalised moves at 8 sigma.
	if y > 8 {
		y = 8
	}
	if y < -8 {
		y = -8
	}
	st.lastRet = y
	st.Price *= math.Exp(y*p.Model.RetStd + p.Model.RetMean)
}
