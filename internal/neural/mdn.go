package neural

import (
	"math"

	"durability/internal/rng"
)

// mdnHead is a dense layer mapping the top LSTM hidden state to the
// parameters of a K-component Gaussian mixture over the scalar target
// (Bishop's mixture density network). The output packs
// [logit_1..K | mu_1..K | logsigma_1..K].
type mdnHead struct {
	in, k int
	w, b  *param
}

const (
	logSigmaMin = -6
	logSigmaMax = 3
)

func newMDNHead(in, k int, src *rng.Source) *mdnHead {
	return &mdnHead{
		in: in,
		k:  k,
		w:  newParam(3*k*in, 0.4/float64(in), src),
		b:  newParam(3*k, 0, src),
	}
}

func (m *mdnHead) params() []*param { return []*param{m.w, m.b} }

// mixture is the evaluated mixture parameters for one input.
type mixture struct {
	pi, mu, sigma []float64
	logit         []float64 // retained for backward
}

// forward evaluates the head.
func (m *mdnHead) forward(h []float64) mixture {
	out := make([]float64, 3*m.k)
	matVec(out, m.w.w, 3*m.k, m.in, h, m.b.w)
	mix := mixture{
		pi:    make([]float64, m.k),
		mu:    make([]float64, m.k),
		sigma: make([]float64, m.k),
		logit: out[:m.k],
	}
	maxL := out[0]
	for i := 1; i < m.k; i++ {
		if out[i] > maxL {
			maxL = out[i]
		}
	}
	sum := 0.0
	for i := 0; i < m.k; i++ {
		mix.pi[i] = math.Exp(out[i] - maxL)
		sum += mix.pi[i]
	}
	for i := 0; i < m.k; i++ {
		mix.pi[i] /= sum
		mix.mu[i] = out[m.k+i]
		ls := out[2*m.k+i]
		if ls < logSigmaMin {
			ls = logSigmaMin
		}
		if ls > logSigmaMax {
			ls = logSigmaMax
		}
		mix.sigma[i] = math.Exp(ls)
	}
	return mix
}

// nll returns the negative log-likelihood of y under the mixture.
func (mix mixture) nll(y float64) float64 {
	return -math.Log(mix.density(y) + 1e-300)
}

// density returns the mixture probability density at y.
func (mix mixture) density(y float64) float64 {
	const invSqrt2Pi = 0.3989422804014327
	d := 0.0
	for i := range mix.pi {
		z := (y - mix.mu[i]) / mix.sigma[i]
		d += mix.pi[i] * invSqrt2Pi / mix.sigma[i] * math.Exp(-0.5*z*z)
	}
	return d
}

// sample draws one value from the mixture.
func (mix mixture) sample(src *rng.Source) float64 {
	i := src.Categorical(mix.pi)
	return mix.mu[i] + mix.sigma[i]*src.Norm()
}

// backward accumulates the parameter gradients of nll(y) and returns the
// gradient w.r.t. the input h. Standard MDN gradients via the component
// posterior gamma.
func (m *mdnHead) backward(h []float64, mix mixture, y float64) []float64 {
	k := m.k
	gamma := make([]float64, k)
	const invSqrt2Pi = 0.3989422804014327
	total := 0.0
	for i := 0; i < k; i++ {
		z := (y - mix.mu[i]) / mix.sigma[i]
		gamma[i] = mix.pi[i] * invSqrt2Pi / mix.sigma[i] * math.Exp(-0.5*z*z)
		total += gamma[i]
	}
	if total <= 0 {
		total = 1e-300
	}
	dOut := make([]float64, 3*k)
	for i := 0; i < k; i++ {
		gamma[i] /= total
		z := (y - mix.mu[i]) / mix.sigma[i]
		dOut[i] = mix.pi[i] - gamma[i]                                         // d nll / d logit_i
		dOut[k+i] = gamma[i] * (mix.mu[i] - y) / (mix.sigma[i] * mix.sigma[i]) // d nll / d mu_i
		dOut[2*k+i] = gamma[i] * (1 - z*z)                                     // d nll / d logsigma_i
	}
	dh := make([]float64, m.in)
	for r := 0; r < 3*k; r++ {
		dp := dOut[r]
		m.b.g[r] += dp
		wRow := m.w.g[r*m.in : (r+1)*m.in]
		wW := m.w.w[r*m.in : (r+1)*m.in]
		for c, hv := range h {
			wRow[c] += dp * hv
			dh[c] += dp * wW[c]
		}
	}
	return dh
}
