package neural

import (
	"bytes"
	"math"
	"testing"

	"durability/internal/rng"
	"durability/internal/stats"
	"durability/internal/stochastic"
)

func TestSigmoid(t *testing.T) {
	if v := sigmoid(0); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", v)
	}
	if v := sigmoid(100); math.Abs(v-1) > 1e-12 {
		t.Fatalf("sigmoid(100) = %v", v)
	}
	if v := sigmoid(-100); v > 1e-12 {
		t.Fatalf("sigmoid(-100) = %v", v)
	}
	// Symmetry: sigmoid(-x) = 1 - sigmoid(x).
	for _, x := range []float64{0.1, 1, 3, 7} {
		if math.Abs(sigmoid(-x)-(1-sigmoid(x))) > 1e-12 {
			t.Fatalf("sigmoid symmetry broken at %v", x)
		}
	}
}

func TestMatVec(t *testing.T) {
	w := []float64{1, 2, 3, 4, 5, 6} // 2x3
	x := []float64{1, 0, -1}
	b := []float64{10, 20}
	dst := make([]float64, 2)
	matVec(dst, w, 2, 3, x, b)
	if dst[0] != 1-3+10 || dst[1] != 4-6+20 {
		t.Fatalf("matVec = %v", dst)
	}
}

func TestAdamReducesQuadratic(t *testing.T) {
	// Minimise f(w) = (w-3)^2 with Adam; gradient 2(w-3).
	p := &param{w: []float64{0}, g: []float64{0}, m: []float64{0}, v: []float64{0}}
	for i := 1; i <= 2000; i++ {
		p.g[0] = 2 * (p.w[0] - 3)
		p.adamStep(0.05, 0.9, 0.999, 1e-8, i)
	}
	if math.Abs(p.w[0]-3) > 0.05 {
		t.Fatalf("Adam converged to %v, want 3", p.w[0])
	}
}

func TestMixtureDensityIntegratesToOne(t *testing.T) {
	mix := mixture{
		pi:    []float64{0.3, 0.7},
		mu:    []float64{-1, 2},
		sigma: []float64{0.5, 1.5},
	}
	// Trapezoid rule over a wide interval.
	total := 0.0
	const n = 20000
	lo, hi := -15.0, 15.0
	for i := 0; i <= n; i++ {
		y := lo + (hi-lo)*float64(i)/n
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		total += w * mix.density(y)
	}
	total *= (hi - lo) / n
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("mixture density integrates to %v", total)
	}
}

func TestMixtureSampleMoments(t *testing.T) {
	mix := mixture{
		pi:    []float64{0.4, 0.6},
		mu:    []float64{-2, 3},
		sigma: []float64{0.5, 1},
	}
	src := rng.New(1)
	var acc stats.Accumulator
	for i := 0; i < 200000; i++ {
		acc.Add(mix.sample(src))
	}
	wantMean := 0.4*(-2) + 0.6*3
	// Var = sum pi (sigma^2 + mu^2) - mean^2
	wantVar := 0.4*(0.25+4) + 0.6*(1+9) - wantMean*wantMean
	if math.Abs(acc.Mean()-wantMean) > 0.02 {
		t.Errorf("sample mean = %v, want %v", acc.Mean(), wantMean)
	}
	if math.Abs(acc.Variance()-wantVar) > 0.1 {
		t.Errorf("sample variance = %v, want %v", acc.Variance(), wantVar)
	}
}

func TestMDNNLLMatchesGaussian(t *testing.T) {
	// A one-component mixture with mu=0, sigma=1 must reproduce the
	// standard normal NLL: 0.5*log(2*pi) + y^2/2.
	mix := mixture{pi: []float64{1}, mu: []float64{0}, sigma: []float64{1}}
	for _, y := range []float64{0, 1, -2.5} {
		want := 0.5*math.Log(2*math.Pi) + y*y/2
		if got := mix.nll(y); math.Abs(got-want) > 1e-9 {
			t.Fatalf("nll(%v) = %v, want %v", y, got, want)
		}
	}
}

// numericalGrad computes the central finite difference of the model's NLL
// on a tiny sequence with respect to one weight.
func numericalGrad(m *Model, seq []float64, p *param, idx int) float64 {
	const eps = 1e-5
	orig := p.w[idx]
	loss := func() float64 {
		hs := m.newHidden()
		total := 0.0
		for t := 0; t+1 < len(seq); t++ {
			_, mix := m.stepForward(seq[t], hs, false)
			total += mix.nll(seq[t+1])
		}
		return total
	}
	p.w[idx] = orig + eps
	up := loss()
	p.w[idx] = orig - eps
	down := loss()
	p.w[idx] = orig
	return (up - down) / (2 * eps)
}

// The decisive correctness test for the whole neural substrate: BPTT
// gradients agree with finite differences for every parameter tensor.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	m := NewModel(Config{Hidden: 5, Layers: 2, Mixtures: 3, SeqLen: 4, LR: 1e-3}, 42)
	seq := []float64{0.3, -0.5, 0.9, -0.1, 0.4}

	// Analytic gradients over the same 4-step window.
	for _, p := range m.params() {
		p.zeroGrad()
	}
	hs := m.newHidden()
	L := len(seq) - 1
	caches := make([][]*lstmCache, L)
	mixes := make([]mixture, L)
	tops := make([][]float64, L)
	for tt := 0; tt < L; tt++ {
		c, mix := m.stepForward(seq[tt], hs, true)
		caches[tt] = c
		mixes[tt] = mix
		tops[tt] = append([]float64(nil), hs.h[len(m.layers)-1]...)
	}
	nl := len(m.layers)
	dh := make([][]float64, nl)
	dc := make([][]float64, nl)
	for li := 0; li < nl; li++ {
		dh[li] = make([]float64, m.cfg.Hidden)
		dc[li] = make([]float64, m.cfg.Hidden)
	}
	for tt := L - 1; tt >= 0; tt-- {
		dTop := m.head.backward(tops[tt], mixes[tt], seq[tt+1])
		for j := range dh[nl-1] {
			dh[nl-1][j] += dTop[j]
		}
		for li := nl - 1; li >= 0; li-- {
			dx, dhPrev, dcPrev := m.layers[li].backward(caches[tt][li], dh[li], dc[li])
			dh[li], dc[li] = dhPrev, dcPrev
			if li > 0 {
				for j := range dh[li-1] {
					dh[li-1][j] += dx[j]
				}
			}
		}
	}

	checked := 0
	for pi, p := range m.params() {
		stride := len(p.w)/7 + 1
		for idx := 0; idx < len(p.w); idx += stride {
			want := numericalGrad(m, seq, p, idx)
			got := p.g[idx]
			tol := 1e-5 + 1e-4*math.Abs(want)
			if math.Abs(got-want) > tol {
				t.Fatalf("param %d idx %d: analytic %v vs numeric %v", pi, idx, got, want)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d gradient entries checked", checked)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	gbm := &stochastic.GBM{S0: 1000, Mu: 0.0005, Sigma: 0.02}
	series := gbm.SeriesWithRegimes(800, rng.New(7))
	m := NewModel(Config{Hidden: 12, Layers: 1, Mixtures: 3, SeqLen: 25}, 3)
	rep, err := m.Train(series, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastLoss >= rep.FirstLoss {
		t.Fatalf("training did not reduce loss: %v -> %v", rep.FirstLoss, rep.LastLoss)
	}
}

func TestTrainRejectsBadSeries(t *testing.T) {
	m := NewModel(Config{}, 1)
	if _, err := m.Train([]float64{1, 2}, 1); err == nil {
		t.Error("short series accepted")
	}
	if _, err := m.Train([]float64{1, -2, 3, 4, 5}, 1); err == nil {
		t.Error("negative price accepted")
	}
	flat := make([]float64, 100)
	for i := range flat {
		flat[i] = 5
	}
	if _, err := m.Train(flat, 1); err == nil {
		t.Error("constant series accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	gbm := &stochastic.GBM{S0: 1000, Mu: 0, Sigma: 0.02}
	series := gbm.SeriesWithRegimes(400, rng.New(8))
	m := NewModel(Config{Hidden: 8, Layers: 2, Mixtures: 2, SeqLen: 20}, 4)
	if _, err := m.Train(series, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lossA, err := m.Loss(series)
	if err != nil {
		t.Fatal(err)
	}
	lossB, err := loaded.Loss(series)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lossA-lossB) > 1e-12 {
		t.Fatalf("loaded model loss %v differs from original %v", lossB, lossA)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func trainedProcess(t *testing.T) *StockProcess {
	t.Helper()
	gbm := &stochastic.GBM{S0: 1000, Mu: 0.0004, Sigma: 0.02}
	series := gbm.SeriesWithRegimes(600, rng.New(9))
	m := NewModel(Config{Hidden: 8, Layers: 1, Mixtures: 3, SeqLen: 20}, 5)
	if _, err := m.Train(series, 4); err != nil {
		t.Fatal(err)
	}
	return NewStockProcess(m, 1000, 30)
}

func TestStockProcessBasics(t *testing.T) {
	p := trainedProcess(t)
	if p.Name() == "" {
		t.Fatal("empty name")
	}
	src := rng.New(10)
	s := p.Initial()
	if Price(s) != 1000 {
		t.Fatalf("initial price = %v", Price(s))
	}
	for i := 1; i <= 200; i++ {
		p.Step(s, i, src)
		v := Price(s)
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("price became %v at step %d", v, i)
		}
	}
}

func TestStockProcessDeterministicPerSeed(t *testing.T) {
	p := trainedProcess(t)
	run := func() []float64 {
		src := rng.New(11)
		s := p.Initial()
		out := make([]float64, 50)
		for i := range out {
			p.Step(s, i+1, src)
			out[i] = Price(s)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestStockProcessCloneIndependence(t *testing.T) {
	p := trainedProcess(t)
	src := rng.New(12)
	s := p.Initial()
	for i := 1; i <= 20; i++ {
		p.Step(s, i, src)
	}
	before := Price(s)
	c := s.Clone()
	for i := 21; i <= 40; i++ {
		p.Step(c, i, src)
	}
	if Price(s) != before {
		t.Fatal("stepping a clone mutated the original state")
	}
	// The clone's hidden state must also be independent: stepping the
	// original now must not be influenced by the clone's evolution
	// (verified indirectly: both continue without panics and diverge).
	p.Step(s, 21, src)
	if Price(s) == Price(c) {
		t.Log("prices coincidentally equal; acceptable but unusual")
	}
}

func TestStockProcessVolatilityPlausible(t *testing.T) {
	// The trained model should produce returns whose standard deviation
	// is within a factor ~3 of the training series' (it learned *some*
	// structure rather than exploding).
	p := trainedProcess(t)
	src := rng.New(13)
	var acc stats.Accumulator
	s := p.Initial()
	last := Price(s)
	for i := 1; i <= 3000; i++ {
		p.Step(s, i, src)
		cur := Price(s)
		acc.Add(math.Log(cur / last))
		last = cur
	}
	sd := acc.StdDev()
	if sd <= 0.002 || sd > 0.2 {
		t.Fatalf("simulated daily return sd = %v, implausible vs training ~0.02", sd)
	}
}

func BenchmarkStockStep(b *testing.B) {
	gbm := &stochastic.GBM{S0: 1000, Mu: 0.0004, Sigma: 0.02}
	series := gbm.SeriesWithRegimes(600, rng.New(9))
	m := NewModel(Config{Hidden: 24, Layers: 2, Mixtures: 5, SeqLen: 20}, 5)
	if _, err := m.Train(series, 1); err != nil {
		b.Fatal(err)
	}
	p := NewStockProcess(m, 1000, 10)
	src := rng.New(1)
	s := p.Initial()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step(s, i+1, src)
	}
}
