package neural

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"

	"durability/internal/rng"
)

// Config sizes the sequence model. The paper's network (2x256 LSTM, 5
// mixtures) is scaled down by default so the pure-Go forward pass keeps
// per-step cost compatible with million-step sampling experiments; the
// architecture is identical.
type Config struct {
	Hidden   int // LSTM units per layer (default 24)
	Layers   int // stacked LSTM layers (default 2)
	Mixtures int // MDN components (default 5)
	SeqLen   int // truncated-BPTT window (default 40)
	LR       float64
	Clip     float64 // global gradient-norm clip (default 5)
}

func (c Config) withDefaults() Config {
	if c.Hidden <= 0 {
		c.Hidden = 24
	}
	if c.Layers <= 0 {
		c.Layers = 2
	}
	if c.Mixtures <= 0 {
		c.Mixtures = 5
	}
	if c.SeqLen <= 0 {
		c.SeqLen = 40
	}
	if c.LR <= 0 {
		c.LR = 3e-3
	}
	if c.Clip <= 0 {
		c.Clip = 5
	}
	return c
}

// Model is an LSTM-MDN sequence model over normalised log-returns: the
// paper's Figure 5 architecture. Inputs are scalar (the previous return),
// outputs are a Gaussian mixture over the next return.
type Model struct {
	cfg    Config
	layers []*lstmLayer
	head   *mdnHead

	// Normalisation of the training series: returns are modelled as
	// (logreturn - RetMean)/RetStd.
	RetMean, RetStd float64
	adamT           int
}

// NewModel builds an untrained model with deterministic initial weights.
func NewModel(cfg Config, seed uint64) *Model {
	cfg = cfg.withDefaults()
	src := rng.New(seed)
	m := &Model{cfg: cfg, RetStd: 1}
	in := 1
	for l := 0; l < cfg.Layers; l++ {
		m.layers = append(m.layers, newLSTMLayer(in, cfg.Hidden, src))
		in = cfg.Hidden
	}
	m.head = newMDNHead(in, cfg.Mixtures, src)
	return m
}

// Config returns the (defaulted) configuration the model was built with.
func (m *Model) Config() Config { return m.cfg }

func (m *Model) params() []*param {
	var ps []*param
	for _, l := range m.layers {
		ps = append(ps, l.params()...)
	}
	return append(ps, m.head.params()...)
}

// hiddenState is the recurrent state: h and c per layer.
type hiddenState struct {
	h, c [][]float64
}

func (m *Model) newHidden() hiddenState {
	hs := hiddenState{}
	for range m.layers {
		hs.h = append(hs.h, make([]float64, m.cfg.Hidden))
		hs.c = append(hs.c, make([]float64, m.cfg.Hidden))
	}
	return hs
}

func (hs hiddenState) clone() hiddenState {
	out := hiddenState{}
	for i := range hs.h {
		out.h = append(out.h, append([]float64(nil), hs.h[i]...))
		out.c = append(out.c, append([]float64(nil), hs.c[i]...))
	}
	return out
}

// stepForward advances the recurrent state in place on input x and returns
// the predicted mixture (plus caches when training).
func (m *Model) stepForward(x float64, hs hiddenState, keepCache bool) ([]*lstmCache, mixture) {
	input := []float64{x}
	var caches []*lstmCache
	for li, l := range m.layers {
		cache, h := l.forward(input, hs.h[li], hs.c[li], keepCache)
		if keepCache {
			caches = append(caches, cache)
		}
		input = h
	}
	return caches, m.head.forward(input)
}

// Returns converts a price series into normalised log-returns, fitting
// the model's normalisation constants.
func (m *Model) fitReturns(prices []float64) ([]float64, error) {
	if len(prices) < 3 {
		return nil, errors.New("neural: price series too short")
	}
	rets := make([]float64, len(prices)-1)
	for i := 1; i < len(prices); i++ {
		if prices[i] <= 0 || prices[i-1] <= 0 {
			return nil, fmt.Errorf("neural: non-positive price at index %d", i)
		}
		rets[i-1] = math.Log(prices[i] / prices[i-1])
	}
	mean, sd := 0.0, 0.0
	for _, r := range rets {
		mean += r
	}
	mean /= float64(len(rets))
	for _, r := range rets {
		sd += (r - mean) * (r - mean)
	}
	sd = math.Sqrt(sd / float64(len(rets)))
	if sd == 0 {
		return nil, errors.New("neural: constant price series")
	}
	m.RetMean, m.RetStd = mean, sd
	for i := range rets {
		rets[i] = (rets[i] - mean) / sd
	}
	return rets, nil
}

// TrainReport summarises one training run.
type TrainReport struct {
	Epochs    int
	FirstLoss float64 // mean NLL of the first epoch
	LastLoss  float64 // mean NLL of the final epoch
}

// Train fits the model to a daily price series with truncated BPTT for the
// given number of epochs. The series plays the role of the paper's 5-year
// Google price history.
func (m *Model) Train(prices []float64, epochs int) (TrainReport, error) {
	rets, err := m.fitReturns(prices)
	if err != nil {
		return TrainReport{}, err
	}
	if len(rets) <= m.cfg.SeqLen {
		return TrainReport{}, fmt.Errorf("neural: need more than %d returns, got %d", m.cfg.SeqLen, len(rets))
	}
	report := TrainReport{Epochs: epochs}
	for e := 0; e < epochs; e++ {
		loss := m.trainEpoch(rets)
		if e == 0 {
			report.FirstLoss = loss
		}
		report.LastLoss = loss
	}
	return report, nil
}

// trainEpoch runs one pass of truncated BPTT over the return series and
// returns the mean NLL.
func (m *Model) trainEpoch(rets []float64) float64 {
	hs := m.newHidden()
	totalLoss := 0.0
	count := 0
	L := m.cfg.SeqLen
	for start := 0; start+L+1 <= len(rets); start += L {
		// Forward over the window; inputs rets[t], targets rets[t+1].
		caches := make([][]*lstmCache, L)
		mixes := make([]mixture, L)
		tops := make([][]float64, L)
		for t := 0; t < L; t++ {
			c, mix := m.stepForward(rets[start+t], hs, true)
			caches[t] = c
			mixes[t] = mix
			tops[t] = append([]float64(nil), hs.h[len(m.layers)-1]...)
			totalLoss += mix.nll(rets[start+t+1])
			count++
		}
		// Backward through the window.
		for _, p := range m.params() {
			p.zeroGrad()
		}
		nl := len(m.layers)
		dh := make([][]float64, nl)
		dc := make([][]float64, nl)
		for li := 0; li < nl; li++ {
			dh[li] = make([]float64, m.cfg.Hidden)
			dc[li] = make([]float64, m.cfg.Hidden)
		}
		for t := L - 1; t >= 0; t-- {
			dTop := m.head.backward(tops[t], mixes[t], rets[start+t+1])
			for j := range dh[nl-1] {
				dh[nl-1][j] += dTop[j]
			}
			var dxLower []float64
			for li := nl - 1; li >= 0; li-- {
				dx, dhPrev, dcPrev := m.layers[li].backward(caches[t][li], dh[li], dc[li])
				dh[li], dc[li] = dhPrev, dcPrev
				if li > 0 {
					dxLower = dx
					for j := range dh[li-1] {
						dh[li-1][j] += dxLower[j]
					}
				}
			}
		}
		m.clipAndStep()
	}
	if count == 0 {
		return 0
	}
	return totalLoss / float64(count)
}

// clipAndStep applies global-norm gradient clipping followed by Adam.
func (m *Model) clipAndStep() {
	ps := m.params()
	norm := 0.0
	for _, p := range ps {
		norm += p.gradNormSq()
	}
	norm = math.Sqrt(norm)
	if norm > m.cfg.Clip {
		f := m.cfg.Clip / norm
		for _, p := range ps {
			p.scaleGrad(f)
		}
	}
	m.adamT++
	for _, p := range ps {
		p.adamStep(m.cfg.LR, 0.9, 0.999, 1e-8, m.adamT)
	}
}

// Loss evaluates the mean NLL of the model on a price series without
// updating weights — the held-out validation metric.
func (m *Model) Loss(prices []float64) (float64, error) {
	if len(prices) < 3 {
		return 0, errors.New("neural: price series too short")
	}
	rets := make([]float64, len(prices)-1)
	for i := 1; i < len(prices); i++ {
		rets[i-1] = (math.Log(prices[i]/prices[i-1]) - m.RetMean) / m.RetStd
	}
	hs := m.newHidden()
	total := 0.0
	count := 0
	for t := 0; t+1 < len(rets); t++ {
		_, mix := m.stepForward(rets[t], hs, false)
		total += mix.nll(rets[t+1])
		count++
	}
	return total / float64(count), nil
}

// modelWire is the gob serialisation schema.
type modelWire struct {
	Cfg             Config
	RetMean, RetStd float64
	Weights         [][]float64
}

// Save writes the model weights (not the optimiser state) to w.
func (m *Model) Save(w io.Writer) error {
	wire := modelWire{Cfg: m.cfg, RetMean: m.RetMean, RetStd: m.RetStd}
	for _, p := range m.params() {
		wire.Weights = append(wire.Weights, p.w)
	}
	return gob.NewEncoder(w).Encode(wire)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var wire modelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, err
	}
	m := NewModel(wire.Cfg, 0)
	m.RetMean, m.RetStd = wire.RetMean, wire.RetStd
	ps := m.params()
	if len(ps) != len(wire.Weights) {
		return nil, fmt.Errorf("neural: weight count mismatch: %d vs %d", len(ps), len(wire.Weights))
	}
	for i, p := range ps {
		if len(p.w) != len(wire.Weights[i]) {
			return nil, fmt.Errorf("neural: weight tensor %d has %d values, want %d", i, len(wire.Weights[i]), len(p.w))
		}
		copy(p.w, wire.Weights[i])
	}
	return m, nil
}
