// Package neural is a self-contained, dependency-free neural substrate:
// LSTM layers, a mixture-density output head (MDN), Adam, and truncated
// back-propagation through time.
//
// It exists to reproduce the paper's third evaluation model (§6, Figure 5):
// an LSTM-RNN-MDN trained on daily stock prices, used as a black-box
// step-wise simulator for durability queries. The paper trained a
// Keras/TensorFlow network on Google's 2015–2020 prices; this package
// trains an equivalent (smaller) network in pure Go on a synthetic price
// series — see DESIGN.md §5 for why the substitution preserves the
// behaviour the experiment measures.
package neural

import (
	"math"

	"durability/internal/rng"
)

// param is one flat parameter tensor with its gradient and Adam moments.
type param struct {
	w, g, m, v []float64
}

func newParam(n int, scale float64, src *rng.Source) *param {
	p := &param{
		w: make([]float64, n),
		g: make([]float64, n),
		m: make([]float64, n),
		v: make([]float64, n),
	}
	for i := range p.w {
		p.w[i] = scale * src.Norm()
	}
	return p
}

func (p *param) zeroGrad() {
	for i := range p.g {
		p.g[i] = 0
	}
}

// gradNormSq returns the squared L2 norm of the gradient.
func (p *param) gradNormSq() float64 {
	s := 0.0
	for _, g := range p.g {
		s += g * g
	}
	return s
}

func (p *param) scaleGrad(f float64) {
	for i := range p.g {
		p.g[i] *= f
	}
}

// adamStep applies one Adam update with bias correction at step t (1-based).
func (p *param) adamStep(lr, beta1, beta2, eps float64, t int) {
	c1 := 1 - math.Pow(beta1, float64(t))
	c2 := 1 - math.Pow(beta2, float64(t))
	for i := range p.w {
		p.m[i] = beta1*p.m[i] + (1-beta1)*p.g[i]
		p.v[i] = beta2*p.v[i] + (1-beta2)*p.g[i]*p.g[i]
		p.w[i] -= lr * (p.m[i] / c1) / (math.Sqrt(p.v[i]/c2) + eps)
	}
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// matVec computes dst = W*x + b where W is rows x cols, row-major.
func matVec(dst, w []float64, rows, cols int, x, b []float64) {
	for r := 0; r < rows; r++ {
		s := b[r]
		row := w[r*cols : (r+1)*cols]
		for c, xv := range x {
			s += row[c] * xv
		}
		dst[r] = s
	}
}
