// Package mc provides the Monte-Carlo foundation shared by every sampler:
// the durability query definition, cost accounting (the paper measures
// cost in invocations of the step simulator 𝔤), estimator quality targets,
// stopping rules, and the Simple Random Sampling (SRS) baseline of §2.2.
package mc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"durability/internal/rng"
	"durability/internal/stats"
	"durability/internal/stochastic"
)

// Condition is the Boolean query function q : X -> {0,1} of §2.1.
type Condition func(stochastic.State) bool

// Query is a durability prediction query Q(q, s): the probability that the
// process satisfies Cond at any time 1 <= t <= Horizon.
type Query struct {
	Cond    Condition
	Horizon int
}

// Threshold builds the standard condition z(x) >= beta from an observer.
func Threshold(z stochastic.Observer, beta float64) Condition {
	return func(s stochastic.State) bool { return z(s) >= beta }
}

// Validate reports configuration errors in the query.
func (q Query) Validate() error {
	if q.Cond == nil {
		return errors.New("mc: query has no condition")
	}
	if q.Horizon <= 0 {
		return fmt.Errorf("mc: query horizon %d must be positive", q.Horizon)
	}
	return nil
}

// Result is a sampler's answer to a durability query together with its
// quality and cost accounting.
type Result struct {
	P        float64 // unbiased point estimate of tau
	Variance float64 // estimated variance of the estimator

	Steps int64 // invocations of the step simulator (the paper's cost metric)
	Paths int64 // root paths simulated
	Hits  int64 // sample paths that reached the target

	Elapsed time.Duration // total wall-clock time
	VarTime time.Duration // portion spent estimating the variance (bootstrap)
}

// CI returns the normal-approximation confidence interval at the given
// confidence level (e.g. 0.95).
func (r Result) CI(confidence float64) stats.Interval {
	return stats.MeanCI(r.P, r.Variance, confidence)
}

// RelErr returns sqrt(Variance)/P, the paper's relative-error measure.
func (r Result) RelErr() float64 { return stats.RelativeError(r.P, r.Variance) }

// StdErr returns the standard error of the estimate.
func (r Result) StdErr() float64 { return math.Sqrt(math.Max(r.Variance, 0)) }

// String formats the result for logs and CLI output.
func (r Result) String() string {
	return fmt.Sprintf("p=%.6g ±%.2g (95%% CI %v) steps=%d paths=%d hits=%d in %v",
		r.P, r.StdErr(), r.CI(0.95), r.Steps, r.Paths, r.Hits, r.Elapsed.Round(time.Millisecond))
}

// StopRule decides when a sampler may stop. Samplers consult the rule
// between batches of root paths.
type StopRule interface {
	// Done reports whether the running result meets the target.
	Done(r Result) bool
	// String describes the rule for reports.
	String() string
}

// Budget stops after a fixed number of simulator invocations — the paper's
// fixed-cost experiments (e.g. Table 6 uses a 50,000-invocation budget).
type Budget struct {
	Steps int64
}

// Done implements StopRule.
func (b Budget) Done(r Result) bool { return r.Steps >= b.Steps }

func (b Budget) String() string { return fmt.Sprintf("budget(%d steps)", b.Steps) }

// CITarget stops when the normal-approximation confidence interval
// half-width drops to Half (relative to the estimate when Relative is
// set, absolute otherwise). MinHits guards against the degenerate early
// stop at p̂ = 0 where the variance estimate is still meaningless.
type CITarget struct {
	Half       float64 // target half-width
	Confidence float64 // e.g. 0.95
	Relative   bool    // interpret Half as a fraction of the estimate
	MinHits    int64   // required hits before the rule can fire (default 10)
}

// Done implements StopRule.
func (c CITarget) Done(r Result) bool {
	minHits := c.MinHits
	if minHits == 0 {
		minHits = 10
	}
	if r.Hits < minHits || r.P <= 0 {
		return false
	}
	half := stats.ZCritical(c.Confidence) * math.Sqrt(math.Max(r.Variance, 0))
	if c.Relative {
		return half <= c.Half*r.P
	}
	return half <= c.Half
}

func (c CITarget) String() string {
	kind := "abs"
	if c.Relative {
		kind = "rel"
	}
	return fmt.Sprintf("ci(%.3g %s @%.2g)", c.Half, kind, c.Confidence)
}

// RETarget stops when the relative error sqrt(Var)/p̂ drops below Target —
// the paper's quality measure for tiny and rare queries (10% by default).
type RETarget struct {
	Target  float64
	MinHits int64 // required hits before the rule can fire (default 10)
}

// Done implements StopRule.
func (t RETarget) Done(r Result) bool {
	minHits := t.MinHits
	if minHits == 0 {
		minHits = 10
	}
	if r.Hits < minHits || r.P <= 0 {
		return false
	}
	return stats.RelativeError(r.P, r.Variance) <= t.Target
}

func (t RETarget) String() string { return fmt.Sprintf("re(%.3g)", t.Target) }

// Any stops as soon as any of the component rules is satisfied. The usual
// composition is Any(qualityTarget, Budget{hardCap}).
type Any []StopRule

// Done implements StopRule.
func (a Any) Done(r Result) bool {
	for _, rule := range a {
		if rule.Done(r) {
			return true
		}
	}
	return false
}

func (a Any) String() string {
	s := "any("
	for i, rule := range a {
		if i > 0 {
			s += ", "
		}
		s += rule.String()
	}
	return s + ")"
}

// All stops only when every component rule is satisfied.
type All []StopRule

// Done implements StopRule.
func (a All) Done(r Result) bool {
	for _, rule := range a {
		if !rule.Done(r) {
			return false
		}
	}
	return len(a) > 0
}

func (a All) String() string {
	s := "all("
	for i, rule := range a {
		if i > 0 {
			s += ", "
		}
		s += rule.String()
	}
	return s + ")"
}

// SRS is the Simple Random Sampling baseline (§2.2): simulate independent
// root paths, label each 1 if it satisfies the query condition before the
// horizon, and average the labels.
type SRS struct {
	Proc  stochastic.Process
	Query Query
	Stop  StopRule // when to stop; required
	Seed  uint64   // base seed; path i uses substream i, so results are scheduling-independent

	Workers int          // parallel workers (default 1)
	Batch   int          // root paths between stop-rule checks (default 256)
	Trace   func(Result) // optional per-batch progress callback (convergence plots)
}

// pathOutcome is the per-path accounting a worker reports.
type pathOutcome struct {
	steps int64
	hit   bool
}

// runPath simulates one root path and reports its label and cost.
func (s *SRS) runPath(idx int64) pathOutcome {
	src := rng.NewStream(s.Seed, uint64(idx))
	st := s.Proc.Initial()
	var out pathOutcome
	for t := 1; t <= s.Query.Horizon; t++ {
		s.Proc.Step(st, t, src)
		out.steps++
		if s.Query.Cond(st) {
			out.hit = true
			return out
		}
	}
	return out
}

// Run executes the sampler until the stop rule fires or the context is
// cancelled, returning the current unbiased estimate either way.
func (s *SRS) Run(ctx context.Context) (Result, error) {
	if err := s.Query.Validate(); err != nil {
		return Result{}, err
	}
	if s.Stop == nil {
		return Result{}, errors.New("mc: SRS requires a stop rule")
	}
	workers := s.Workers
	if workers <= 0 {
		workers = 1
	}
	batch := s.Batch
	if batch <= 0 {
		batch = 256
	}

	start := time.Now()
	var res Result
	next := int64(0)
	for {
		if err := ctx.Err(); err != nil {
			res.Elapsed = time.Since(start)
			return res, err
		}
		lo, hi := next, next+int64(batch)
		next = hi

		var mu sync.Mutex
		var wg sync.WaitGroup
		per := (hi - lo + int64(workers) - 1) / int64(workers)
		for w := 0; w < workers; w++ {
			wlo := lo + int64(w)*per
			whi := wlo + per
			if whi > hi {
				whi = hi
			}
			if wlo >= whi {
				continue
			}
			wg.Add(1)
			go func(wlo, whi int64) {
				defer wg.Done()
				var steps, hits int64
				for i := wlo; i < whi; i++ {
					out := s.runPath(i)
					steps += out.steps
					if out.hit {
						hits++
					}
				}
				mu.Lock()
				res.Steps += steps
				res.Hits += hits
				mu.Unlock()
			}(wlo, whi)
		}
		wg.Wait()

		res.Paths = hi
		res.P = float64(res.Hits) / float64(res.Paths)
		res.Variance = stats.BinomialVariance(res.P, res.Paths)
		res.Elapsed = time.Since(start)
		if s.Trace != nil {
			s.Trace(res)
		}
		if s.Stop.Done(res) {
			return res, nil
		}
	}
}
