package mc

import (
	"context"
	"math"
	"testing"
	"time"

	"durability/internal/stochastic"
)

// testChain returns a birth-death chain and a query whose exact answer is
// computable by dynamic programming.
func testChain() (*stochastic.MarkovChain, Query, float64) {
	mc := stochastic.BirthDeathChain(10, 0.45, 0)
	const horizon = 50
	const beta = 7
	q := Query{Cond: Threshold(stochastic.ChainIndex, beta), Horizon: horizon}
	target := map[int]bool{}
	for i := beta; i < 10; i++ {
		target[i] = true
	}
	return mc, q, mc.HitProbability(target, horizon)
}

func TestQueryValidate(t *testing.T) {
	if err := (Query{}).Validate(); err == nil {
		t.Fatal("empty query passed validation")
	}
	if err := (Query{Cond: func(stochastic.State) bool { return false }}).Validate(); err == nil {
		t.Fatal("zero horizon passed validation")
	}
	if err := (Query{Cond: func(stochastic.State) bool { return false }, Horizon: 5}).Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
}

func TestThreshold(t *testing.T) {
	cond := Threshold(stochastic.ScalarValue, 10)
	if cond(&stochastic.Scalar{V: 9.99}) {
		t.Fatal("9.99 >= 10?")
	}
	if !cond(&stochastic.Scalar{V: 10}) {
		t.Fatal("10 >= 10 should hold")
	}
}

func TestSRSMatchesExactAnswer(t *testing.T) {
	chain, query, want := testChain()
	s := &SRS{
		Proc:  chain,
		Query: query,
		Stop:  Budget{Steps: 2_000_000},
		Seed:  1,
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tol := 5 * math.Sqrt(res.Variance)
	if math.Abs(res.P-want) > tol {
		t.Fatalf("SRS estimate %v, exact %v (tol %v)", res.P, want, tol)
	}
	if res.Steps < 2_000_000 {
		t.Fatalf("stopped before budget: %d steps", res.Steps)
	}
	if res.Paths == 0 || res.Hits == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestSRSParallelDeterministic(t *testing.T) {
	chain, query, _ := testChain()
	run := func(workers int) Result {
		s := &SRS{Proc: chain, Query: query, Stop: Budget{Steps: 300_000}, Seed: 7, Workers: workers}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if seq.P != par.P || seq.Hits != par.Hits || seq.Steps != par.Steps {
		t.Fatalf("parallel run diverged: seq=%+v par=%+v", seq, par)
	}
}

func TestSRSRelativeErrorStop(t *testing.T) {
	chain, query, want := testChain()
	s := &SRS{
		Proc:  chain,
		Query: query,
		Stop:  Any{RETarget{Target: 0.10}, Budget{Steps: 50_000_000}},
		Seed:  3,
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if re := res.RelErr(); re > 0.11 {
		t.Fatalf("stopped with RE %v, want <= 0.10", re)
	}
	if math.Abs(res.P-want) > 0.3*want {
		t.Fatalf("estimate %v too far from exact %v", res.P, want)
	}
}

func TestSRSCITargetStop(t *testing.T) {
	chain, query, _ := testChain()
	s := &SRS{
		Proc:  chain,
		Query: query,
		Stop:  Any{CITarget{Half: 0.05, Confidence: 0.95, Relative: true}, Budget{Steps: 100_000_000}},
		Seed:  4,
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	half := res.CI(0.95).Width() / 2
	if half > 0.055*res.P {
		t.Fatalf("stopped with CI half-width %v (rel %v)", half, half/res.P)
	}
}

func TestSRSContextCancel(t *testing.T) {
	chain, query, _ := testChain()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := &SRS{Proc: chain, Query: query, Stop: Budget{Steps: 1 << 60}, Seed: 5}
	if _, err := s.Run(ctx); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}

func TestSRSTrace(t *testing.T) {
	chain, query, _ := testChain()
	calls := 0
	var lastSteps int64
	s := &SRS{
		Proc:  chain,
		Query: query,
		Stop:  Budget{Steps: 100_000},
		Seed:  6,
		Batch: 128,
		Trace: func(r Result) {
			calls++
			if r.Steps < lastSteps {
				t.Fatalf("trace steps went backwards: %d -> %d", lastSteps, r.Steps)
			}
			lastSteps = r.Steps
		},
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("trace never called")
	}
}

func TestSRSConfigErrors(t *testing.T) {
	chain, query, _ := testChain()
	if _, err := (&SRS{Proc: chain, Query: query}).Run(context.Background()); err == nil {
		t.Fatal("missing stop rule not rejected")
	}
	if _, err := (&SRS{Proc: chain, Query: Query{}, Stop: Budget{1}}).Run(context.Background()); err == nil {
		t.Fatal("invalid query not rejected")
	}
}

func TestStopRules(t *testing.T) {
	r := Result{P: 0.1, Variance: 1e-6, Steps: 1000, Hits: 100}
	if !(Budget{Steps: 1000}).Done(r) {
		t.Error("budget at exactly the cap should fire")
	}
	if (Budget{Steps: 1001}).Done(r) {
		t.Error("budget below the cap fired")
	}
	// RE here = 1e-3/0.1 = 1%.
	if !(RETarget{Target: 0.02}).Done(r) {
		t.Error("RE target not met")
	}
	if (RETarget{Target: 0.005}).Done(r) {
		t.Error("RE target met too early")
	}
	// Few hits: never stop on quality rules.
	rFew := Result{P: 0.1, Variance: 1e-12, Hits: 2}
	if (RETarget{Target: 0.5}).Done(rFew) {
		t.Error("RE fired with 2 hits")
	}
	if (CITarget{Half: 0.5, Confidence: 0.95}).Done(rFew) {
		t.Error("CI fired with 2 hits")
	}
	// Zero estimate: never stop on quality rules.
	rZero := Result{P: 0, Variance: 0, Hits: 0}
	if (RETarget{Target: 0.5}).Done(rZero) || (CITarget{Half: 0.5, Confidence: 0.95}).Done(rZero) {
		t.Error("quality rule fired on zero estimate")
	}
}

func TestAnyAllCombinators(t *testing.T) {
	r := Result{P: 0.5, Variance: 1e-8, Steps: 500, Hits: 100}
	yes := Budget{Steps: 1}
	no := Budget{Steps: 1 << 50}
	if !(Any{no, yes}).Done(r) {
		t.Error("Any with one satisfied rule should fire")
	}
	if (Any{no, no}).Done(r) {
		t.Error("Any with no satisfied rules fired")
	}
	if (All{yes, no}).Done(r) {
		t.Error("All with one unsatisfied rule fired")
	}
	if !(All{yes, yes}).Done(r) {
		t.Error("All with all rules satisfied should fire")
	}
	if (All{}).Done(r) {
		t.Error("empty All fired")
	}
	for _, s := range []string{yes.String(), (Any{yes}).String(), (All{yes}).String(),
		(RETarget{Target: 0.1}).String(), (CITarget{Half: 0.01, Confidence: 0.95, Relative: true}).String()} {
		if s == "" {
			t.Error("empty rule description")
		}
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{P: 0.2, Variance: 0.0001, Elapsed: time.Second}
	ci := r.CI(0.95)
	if !ci.Contains(0.2) {
		t.Error("CI must contain the estimate")
	}
	if math.Abs(r.RelErr()-0.05) > 1e-12 {
		t.Errorf("RelErr = %v, want 0.05", r.RelErr())
	}
	if r.StdErr() != 0.01 {
		t.Errorf("StdErr = %v", r.StdErr())
	}
	if r.String() == "" {
		t.Error("empty result string")
	}
}

// SRS estimator is unbiased: across many independent short runs, the mean
// estimate matches the exact answer well within the standard error.
func TestSRSUnbiasedAcrossRuns(t *testing.T) {
	chain, query, want := testChain()
	const runs = 40
	sum := 0.0
	for i := 0; i < runs; i++ {
		s := &SRS{Proc: chain, Query: query, Stop: Budget{Steps: 60_000}, Seed: uint64(1000 + i)}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sum += res.P
	}
	mean := sum / runs
	if math.Abs(mean-want) > 0.15*want {
		t.Fatalf("mean of %d SRS runs = %v, exact %v", runs, mean, want)
	}
}
