package mc

import "encoding/gob"

// Serving-state snapshots (internal/persist) and WAL records carry each
// standing query's stopping rule as a StopRule interface value inside its
// gob-encoded subscription state. gob resolves interface values through a
// registry of concrete types, so every plain-data rule defined here is
// registered once. Callers embedding custom StopRule implementations in
// persisted specs must register those themselves.
func init() {
	gob.Register(Budget{})
	gob.Register(CITarget{})
	gob.Register(RETarget{})
	gob.Register(Any{})
	gob.Register(All{})
}
