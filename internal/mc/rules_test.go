package mc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCITargetAbsoluteMode(t *testing.T) {
	// Estimator sd = 0.002 => 95% half-width ~ 0.0039.
	r := Result{P: 0.5, Variance: 4e-6, Hits: 100}
	if !(CITarget{Half: 0.005, Confidence: 0.95}).Done(r) {
		t.Error("absolute half-width 0.005 should be met")
	}
	if (CITarget{Half: 0.003, Confidence: 0.95}).Done(r) {
		t.Error("absolute half-width 0.003 met too early")
	}
}

func TestCITargetRelativeMode(t *testing.T) {
	// Same variance, smaller estimate: relative target is harder.
	r := Result{P: 0.01, Variance: 4e-6, Hits: 100}
	if (CITarget{Half: 0.1, Confidence: 0.95, Relative: true}).Done(r) {
		t.Error("relative 10% met although half-width is ~39% of the estimate")
	}
	if !(CITarget{Half: 0.5, Confidence: 0.95, Relative: true}).Done(r) {
		t.Error("relative 50% should be met")
	}
}

func TestMinHitsOverride(t *testing.T) {
	r := Result{P: 0.5, Variance: 1e-12, Hits: 5}
	if (RETarget{Target: 0.5}).Done(r) {
		t.Error("default MinHits=10 should block at 5 hits")
	}
	if !(RETarget{Target: 0.5, MinHits: 3}).Done(r) {
		t.Error("explicit MinHits=3 should allow stopping at 5 hits")
	}
	if (CITarget{Half: 0.5, Confidence: 0.95}).Done(r) {
		t.Error("CI default MinHits should block at 5 hits")
	}
	if !(CITarget{Half: 0.5, Confidence: 0.95, MinHits: 3}).Done(r) {
		t.Error("CI explicit MinHits=3 should allow stopping")
	}
}

// Property: whenever RETarget fires, the reported relative error really is
// below the target.
func TestQuickRETargetSound(t *testing.T) {
	rule := RETarget{Target: 0.1}
	f := func(pRaw, varRaw uint16, hits uint8) bool {
		p := float64(pRaw)/65536 + 1e-6
		variance := float64(varRaw) / 65536 * 1e-4
		r := Result{P: p, Variance: variance, Hits: int64(hits)}
		if rule.Done(r) {
			return math.Sqrt(variance)/p <= 0.1 && r.Hits >= 10
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
