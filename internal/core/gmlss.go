package core

import (
	"context"
	"errors"
	"fmt"

	"durability/internal/mc"
	"durability/internal/rng"
	"durability/internal/stochastic"
	"durability/internal/telemetry"
)

// levelCounters is the sufficient statistic of a set of root-path trees
// for the g-MLSS estimator (§4.1). All slices are indexed by level
// 1..m-1 (index 0 unused):
//
//	land[i]  — |H_i|: paths that landed in L_i for the first time (split states)
//	skip[i]  — n_skip_i: paths that crossed beta_{i+1} without landing in L_i
//	mu[i]    — sum over h in H_i of mu(h), the fraction of h's offspring
//	           that crossed beta_{i+1}
//
// hits counts paths reaching the target L_m.
type levelCounters struct {
	land []float64
	skip []float64
	mu   []float64
	// muSq accumulates, per level, the sum of squared per-split crossing
	// fractions — the second moment the closed-form two-level variance
	// (Eq. 11) needs for Var(N_2^<1>).
	muSq []float64
	hits float64
}

// newLevelCounters allocates counters in one flat backing array; the
// batch drivers go further and carve many roots' counters out of a
// pooled arena (see counterArena).
func newLevelCounters(m int) levelCounters {
	return countersFrom(make([]float64, 4*(m+1)), m)
}

// countersFrom carves a levelCounters out of a caller-owned backing
// slice of length 4*(m+1). The subslice capacities are clipped so an
// append on one section can never bleed into the next.
func countersFrom(buf []float64, m int) levelCounters {
	n := m + 1
	return levelCounters{
		land: buf[0*n : 1*n : 1*n],
		skip: buf[1*n : 2*n : 2*n],
		mu:   buf[2*n : 3*n : 3*n],
		muSq: buf[3*n : 4*n : 4*n],
	}
}

func (c *levelCounters) add(o levelCounters) {
	for i := range c.land {
		c.land[i] += o.land[i]
		c.skip[i] += o.skip[i]
		c.mu[i] += o.mu[i]
		c.muSq[i] += o.muSq[i]
	}
	c.hits += o.hits
}

// estimate computes the g-MLSS estimator (Eq. 10) from aggregate counters
// over n root paths whose initial state sits in level initLevel:
//
//	pi_hat_{first} = (land[first] + skip[first]) / n
//	pi_hat_{i+1}   = (mu[i] + skip[i]) / (land[i] + skip[i])
//
// Any level with zero crossers makes the estimate zero.
func (c *levelCounters) estimate(n int64, m, initLevel int) float64 {
	if n == 0 {
		return 0
	}
	first := initLevel + 1
	if first == m {
		// No boundary below the target: crossing beta_m is a hit, and the
		// estimator degenerates to the SRS form hits/n.
		return c.hits / float64(n)
	}
	cross := c.land[first] + c.skip[first]
	tau := cross / float64(n)
	if tau == 0 {
		return 0
	}
	for i := first; i < m; i++ {
		denom := c.land[i] + c.skip[i]
		if denom == 0 {
			return 0
		}
		tau *= (c.mu[i] + c.skip[i]) / denom
	}
	return tau
}

// GMLSS is the general Multi-Level Splitting sampler of §4. Unlike SMLSS
// it watches every boundary above the path's current level, so jumps that
// skip levels are accounted exactly: skipped levels contribute to n_skip
// and the per-split advancement ratios mu(h) replace the uniform-ratio
// bookkeeping. The estimator (Eq. 10) is unbiased for arbitrary processes.
//
// No closed-form variance exists in general (§4.2); Run estimates the
// variance by bootstrap resampling of root-path statistics, and the
// Result's VarTime field reports how much time that evaluation consumed —
// the quantity Figure 9 of the paper breaks out.
type GMLSS struct {
	Proc  stochastic.Process
	Query Query
	Plan  Plan
	Ratio int // splitting ratio r used at every split
	// Ratios optionally overrides Ratio per landing level: Ratios[i] is
	// the number of offspring for splits in level L_{i+1} (the first
	// splittable level). g-MLSS's estimator uses per-split advancement
	// *fractions*, so variable ratios stay unbiased (§4.1: "the flexible
	// splitting procedure opens up many interesting opportunities ...
	// how to optimally allocate splitting ratios"). Rarer, higher levels
	// typically warrant larger ratios.
	Ratios []int
	Stop   mc.StopRule
	Seed   uint64

	Workers int             // parallel workers (default 1)
	Batch   int             // root paths between stop-rule checks (default 128)
	Lanes   int             // lane-frontier width per worker for bulk models (default 64)
	Trace   func(mc.Result) // optional per-batch progress callback

	// BootstrapReps is the number of bootstrap replicates used for each
	// variance evaluation (default 200).
	BootstrapReps int
	// VarEvery controls the conservative evaluation schedule (§4.2): a
	// bootstrap evaluation runs only when total steps have grown by this
	// factor since the last one (default 1.3).
	VarEvery float64
	// ForceBootstrap disables the closed-form two-level variance (Eq. 11)
	// even when the plan has exactly two levels, so the bootstrap path can
	// be exercised and compared (ablation).
	ForceBootstrap bool

	// Observe, when non-nil, receives the run's finalized aggregate
	// counters (root paths and simulator steps alongside) exactly once,
	// at a successful return. Both execution paths — the scalar
	// recursion and the vectorized kernel — feed the same aggregate, so
	// they book identically. Observability only: the callback sees a
	// copy-safe view after the estimate is computed and must not be used
	// to influence the run.
	Observe func(agg Counters, roots, steps int64)
}

// gmlssRoot is one root tree's counters plus its simulation cost.
type gmlssRoot struct {
	counters levelCounters
	steps    int64
}

func (g *GMLSS) validate() error {
	if err := g.Query.Validate(); err != nil {
		return err
	}
	if g.Ratio < 1 {
		return fmt.Errorf("core: splitting ratio %d must be >= 1", g.Ratio)
	}
	if g.Ratios != nil {
		if len(g.Ratios) != g.Plan.M()-1 {
			return fmt.Errorf("core: %d per-level ratios for %d splittable levels", len(g.Ratios), g.Plan.M()-1)
		}
		for i, r := range g.Ratios {
			if r < 1 {
				return fmt.Errorf("core: per-level ratio %d at level %d must be >= 1", r, i+1)
			}
		}
	}
	if g.Stop == nil {
		return errors.New("core: GMLSS requires a stop rule")
	}
	return nil
}

// ratioAt returns the offspring count for splits landing in level j.
func (g *GMLSS) ratioAt(j int) int {
	if g.Ratios != nil {
		return g.Ratios[j-1]
	}
	return g.Ratio
}

// segment simulates one path that last landed in level curr at time t0 and
// reports whether it crossed boundary beta_{curr+1} before the horizon.
// On the first crossing it books skipped levels, and either records a
// target hit (the crossing reached f >= 1) or lands in level j, splits
// into Ratio offspring and records mu = (offspring crossing beta_{j+1})/Ratio.
func (g *GMLSS) segment(st stochastic.State, t0, curr int, src *rng.Source, out *gmlssRoot) bool {
	m := g.Plan.M()
	nextB := g.Plan.Boundary(curr + 1)
	for t := t0 + 1; t <= g.Query.Horizon; t++ {
		g.Proc.Step(st, t, src)
		out.steps++
		f := g.Query.Value(st, t)
		if f < nextB {
			continue
		}
		j := g.Plan.LevelOf(f)
		for i := curr + 1; i < j; i++ {
			out.counters.skip[i]++
		}
		if j == m {
			out.counters.hits++
			return true
		}
		out.counters.land[j]++
		ratio := g.ratioAt(j)
		crossed := 0
		for c := 0; c < ratio; c++ {
			if g.segment(st.Clone(), t, j, src, out) {
				crossed++
			}
		}
		frac := float64(crossed) / float64(ratio)
		out.counters.mu[j] += frac
		out.counters.muSq[j] += frac * frac
		return true
	}
	return false
}

// Run executes the sampler until the stop rule fires or the context is
// cancelled.
func (g *GMLSS) Run(ctx context.Context) (mc.Result, error) {
	if err := g.validate(); err != nil {
		return mc.Result{}, err
	}
	workers := g.Workers
	if workers <= 0 {
		workers = 1
	}
	batch := g.Batch
	if batch <= 0 {
		batch = 128
	}
	reps := g.BootstrapReps
	if reps <= 0 {
		reps = 200
	}
	varEvery := g.VarEvery
	if varEvery <= 1 {
		varEvery = 1.3
	}
	m := g.Plan.M()
	proto := g.Proc.Initial()
	initLevel := g.Plan.LevelOf(g.Query.Value(proto, 0))
	if initLevel >= m {
		return mc.Result{}, errors.New("core: initial state already satisfies the query")
	}
	sim := g.newSim(workers, proto, initLevel)

	start := telemetry.Now()
	var res mc.Result
	agg := newLevelCounters(m)
	pool := newRootPool(m)
	bootSrc := rng.NewStream(g.Seed, 1<<63) // dedicated stream for resampling
	var nextVarAt int64
	for {
		lo, hi := res.Paths, res.Paths+int64(batch)
		roots, err := sim.runRange(ctx, lo, hi)
		for _, r := range roots {
			res.Steps += r.steps
			agg.add(r.counters)
			pool.push(r.counters)
		}
		res.Paths += int64(len(roots))
		res.Hits = int64(agg.hits)
		res.P = agg.estimate(res.Paths, m, initLevel)
		if err != nil {
			res.Elapsed = telemetry.Since(start)
			return res, err
		}

		// Variance evaluation. The two-level case has the closed form of
		// Eq. 11 and costs nothing; otherwise bootstrap on a conservative
		// schedule — evaluating on every batch would dominate total cost
		// (§4.2), so re-evaluate only after the simulation has grown by
		// varEvery.
		if v, ok := twoLevelVariance(agg, res.Paths, m, initLevel); ok && !g.ForceBootstrap {
			res.Variance = v
		} else if res.Steps >= nextVarAt {
			varStart := telemetry.Now()
			res.Variance = pool.bootstrapVariance(reps, m, initLevel, bootSrc)
			res.VarTime += telemetry.Since(varStart)
			nextVarAt = int64(float64(res.Steps) * varEvery)
		}
		res.Elapsed = telemetry.Since(start)
		if g.Trace != nil {
			g.Trace(res)
		}
		if g.Stop.Done(res) {
			if _, ok := twoLevelVariance(agg, res.Paths, m, initLevel); !ok || g.ForceBootstrap {
				// Refresh the bootstrap so the returned quality is current.
				varStart := telemetry.Now()
				res.Variance = pool.bootstrapVariance(reps, m, initLevel, bootSrc)
				res.VarTime += telemetry.Since(varStart)
			}
			res.Elapsed = telemetry.Since(start)
			if g.Observe != nil {
				g.Observe(fromInternal(agg), res.Paths, res.Steps)
			}
			return res, nil
		}
	}
}
