// Package core implements Multi-Level Splitting Sampling (MLSS), the
// paper's primary contribution: the simple sampler s-MLSS of §3 (unbiased
// only under the "no level-skipping" assumption) and the general sampler
// g-MLSS of §4 (unbiased for arbitrary processes), together with their
// variance estimators (direct for s-MLSS, bootstrap for g-MLSS) and the
// level-partition machinery both share.
package core

import (
	"errors"
	"fmt"
	"sort"

	"durability/internal/stochastic"
)

// ValueFunc is the heuristic value function f(x_t) of §3: it maps a state
// (and the current time) into [0, 1], where 1 means "the query condition
// holds right now" and larger values mean the path is closer to hitting
// the condition. Estimator unbiasedness never depends on f — only
// efficiency does.
type ValueFunc func(s stochastic.State, t int) float64

// ThresholdValue builds the paper's standard value function for conditions
// of the form z(x) >= beta:
//
//	f(x) = clamp(z(x)/beta, 0, 1)
//
// so f reaches 1 exactly when the condition holds. beta must be positive.
func ThresholdValue(z stochastic.Observer, beta float64) ValueFunc {
	if beta <= 0 {
		panic("core: ThresholdValue requires beta > 0")
	}
	return func(s stochastic.State, _ int) float64 {
		v := z(s) / beta
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
}

// Query is a durability prediction query expressed through a value
// function: the probability that f reaches 1 at some time 1 <= t <= Horizon.
type Query struct {
	Value   ValueFunc
	Horizon int
}

// Validate reports configuration errors.
func (q Query) Validate() error {
	if q.Value == nil {
		return errors.New("core: query has no value function")
	}
	if q.Horizon <= 0 {
		return fmt.Errorf("core: query horizon %d must be positive", q.Horizon)
	}
	return nil
}

// Plan is a level partition plan: the interior boundaries
// 0 < beta_1 < beta_2 < ... < beta_{m-1} < 1 of §3. Together with the
// implicit beta_0 = 0 and beta_m = 1 they induce m+1 levels
// L_0 = [0, beta_1), ..., L_{m-1} = [beta_{m-1}, 1), L_m = [1, 1].
type Plan struct {
	Boundaries []float64

	// Ratios optionally fixes a per-level splitting ratio alongside the
	// boundaries: Ratios[j-1] is the offspring count for splits landing in
	// level L_j (so len(Ratios) == M()-1 when set). g-MLSS bookkeeps
	// per-split advancement fractions, so variable ratios stay unbiased
	// (§4.1); covering plans built for batch answering rely on them — a
	// dense threshold ladder has near-certain advancement at most
	// boundaries, where any uniform ratio > 1 would grow the splitting
	// tree geometrically. Empty means "use the sampler's uniform ratio".
	Ratios []int
}

// NewPlan validates and returns a plan. Boundaries are sorted defensively.
func NewPlan(boundaries ...float64) (Plan, error) {
	b := append([]float64(nil), boundaries...)
	sort.Float64s(b)
	for i, v := range b {
		if v <= 0 || v >= 1 {
			return Plan{}, fmt.Errorf("core: boundary %v outside (0,1)", v)
		}
		if i > 0 && v == b[i-1] {
			return Plan{}, fmt.Errorf("core: duplicate boundary %v", v)
		}
	}
	return Plan{Boundaries: b}, nil
}

// MustPlan is NewPlan for statically known boundaries; it panics on error.
func MustPlan(boundaries ...float64) Plan {
	p, err := NewPlan(boundaries...)
	if err != nil {
		panic(err)
	}
	return p
}

// UniformPlan places m-1 equally spaced interior boundaries, giving m
// levels below the target.
func UniformPlan(m int) Plan {
	if m < 1 {
		panic("core: UniformPlan needs m >= 1")
	}
	b := make([]float64, m-1)
	for i := range b {
		b[i] = float64(i+1) / float64(m)
	}
	return Plan{Boundaries: b}
}

// M returns the paper's m: the number of level-advancement probabilities,
// i.e. the number of boundaries including the implicit target boundary 1.
func (p Plan) M() int { return len(p.Boundaries) + 1 }

// Boundary returns beta_i for 1 <= i <= M (Boundary(M) == 1).
func (p Plan) Boundary(i int) float64 {
	if i == p.M() {
		return 1
	}
	return p.Boundaries[i-1]
}

// LevelOf returns the index of the highest boundary that f has crossed:
// 0 when f < beta_1, i when beta_i <= f < beta_{i+1}, and M when f >= 1
// (the target). It runs in O(log m).
func (p Plan) LevelOf(f float64) int {
	if f >= 1 {
		return p.M()
	}
	// Number of interior boundaries <= f: SearchFloat64s finds the first
	// boundary >= f; an exact match also counts as crossed.
	idx := sort.SearchFloat64s(p.Boundaries, f)
	if idx < len(p.Boundaries) && p.Boundaries[idx] == f {
		idx++
	}
	return idx
}

// Equal reports whether two plans have identical boundaries and per-level
// ratios. Counters accumulated under one plan are interpretable under
// another exactly when the plans are equal, which incremental maintenance
// relies on.
func (p Plan) Equal(o Plan) bool {
	if len(p.Boundaries) != len(o.Boundaries) || len(p.Ratios) != len(o.Ratios) {
		return false
	}
	for i, b := range p.Boundaries {
		if b != o.Boundaries[i] {
			return false
		}
	}
	for i, r := range p.Ratios {
		if r != o.Ratios[i] {
			return false
		}
	}
	return true
}

func (p Plan) String() string {
	return fmt.Sprintf("plan%v", p.Boundaries)
}
