package core

import (
	"context"
	"math"
	"testing"

	"durability/internal/mc"
	"durability/internal/stochastic"
)

// Regression: a plan with no interior boundaries (m == 1) degenerates
// g-MLSS to SRS — the estimator must be hits/paths, not zero. (An early
// version recorded final-boundary crossings only as hits and estimated 0.)
func TestGMLSSEmptyPlanDegeneratesToSRS(t *testing.T) {
	w := &stochastic.RandomWalk{Start: 0, Drift: 0, Sigma: 1}
	q := Query{Value: ThresholdValue(stochastic.ScalarValue, 8), Horizon: 100}
	g := &GMLSS{Proc: w, Query: q, Plan: Plan{}, Ratio: 3,
		Stop: mc.Budget{Steps: 500_000}, Seed: 1}
	res, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.P <= 0 {
		t.Fatalf("empty-plan estimate = %v, want > 0", res.P)
	}
	if math.Abs(res.P-float64(res.Hits)/float64(res.Paths)) > 1e-12 {
		t.Fatalf("empty-plan estimator %v != hits/paths %v", res.P, float64(res.Hits)/float64(res.Paths))
	}
}

// Same regression for s-MLSS.
func TestSMLSSEmptyPlan(t *testing.T) {
	w := &stochastic.RandomWalk{Start: 0, Drift: 0, Sigma: 1}
	q := Query{Value: ThresholdValue(stochastic.ScalarValue, 8), Horizon: 100}
	s := &SMLSS{Proc: w, Query: q, Plan: Plan{}, Ratio: 3,
		Stop: mc.Budget{Steps: 500_000}, Seed: 2}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.P <= 0 {
		t.Fatalf("estimate = %v", res.P)
	}
	if math.Abs(res.P-float64(res.Hits)/float64(res.Paths)) > 1e-12 {
		t.Fatal("empty-plan s-MLSS is not hits/paths")
	}
}

// A plan whose lowest boundary sits below the initial state's value: the
// root starts above L_0 and the estimator must account for the shorter
// boundary chain rather than mis-scaling.
func TestMLSSInitialStateAboveFirstBoundary(t *testing.T) {
	w := &stochastic.RandomWalk{Start: 5, Drift: 0, Sigma: 1}
	// beta = 10, so the start value 5 has f = 0.5, above the 0.3 boundary.
	q := Query{Value: ThresholdValue(stochastic.ScalarValue, 10), Horizon: 200}
	plan := MustPlan(0.3, 0.8)

	ref := &mc.SRS{
		Proc:    w,
		Query:   mc.Query{Cond: mc.Threshold(stochastic.ScalarValue, 10), Horizon: 200},
		Stop:    mc.Budget{Steps: 3_000_000},
		Seed:    3,
		Workers: 8,
	}
	want, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"smlss", "gmlss"} {
		var res mc.Result
		if name == "smlss" {
			s := &SMLSS{Proc: w, Query: q, Plan: plan, Ratio: 3, Stop: mc.Budget{Steps: 1_000_000}, Seed: 4}
			res, err = s.Run(context.Background())
		} else {
			g := &GMLSS{Proc: w, Query: q, Plan: plan, Ratio: 3, Stop: mc.Budget{Steps: 1_000_000}, Seed: 5}
			res, err = g.Run(context.Background())
		}
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.P-want.P) > 0.2*want.P {
			t.Fatalf("%s with elevated start: %v vs SRS %v", name, res.P, want.P)
		}
	}
}

// High splitting ratios on an easy query must still terminate and stay
// unbiased — the regime the paper warns is wasteful (Figure 10's right
// edge), not incorrect.
func TestMLSSLargeRatioStillCorrect(t *testing.T) {
	chain, q, plan, want := noSkipChain()
	s := &SMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 7,
		Stop: mc.Budget{Steps: 2_000_000}, Seed: 6}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-want) > 0.15*want {
		t.Fatalf("ratio-7 estimate %v, exact %v", res.P, want)
	}
}

// The budget stop rule may overshoot by at most one batch of root trees.
func TestBudgetOvershootBounded(t *testing.T) {
	chain, q, plan, _ := noSkipChain()
	const budget = 100_000
	s := &SMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
		Stop: mc.Budget{Steps: budget}, Seed: 7, Batch: 32}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 32 roots * (tree depth bound): a root tree of the 10-state chain
	// costs at most 50 * (1 + 3 + 9) steps; one batch is < 32 * 650.
	if res.Steps > budget+32*650 {
		t.Fatalf("budget %d overshot to %d", budget, res.Steps)
	}
}

// Boundary values exactly equal to a state's value function count as
// crossed (f >= beta_i semantics).
func TestLevelOfBoundaryEquality(t *testing.T) {
	p := MustPlan(0.5)
	if p.LevelOf(0.5) != 1 {
		t.Fatal("f == boundary must count as crossed")
	}
	if p.LevelOf(math.Nextafter(0.5, 0)) != 0 {
		t.Fatal("f just below boundary must not count")
	}
}

// Trace callbacks observe monotonically non-decreasing cost on both
// samplers.
func TestMLSSTraceMonotone(t *testing.T) {
	chain, q, plan, _ := noSkipChain()
	for _, general := range []bool{false, true} {
		var last int64 = -1
		trace := func(r mc.Result) {
			if r.Steps < last {
				t.Fatalf("steps went backwards: %d -> %d", last, r.Steps)
			}
			last = r.Steps
		}
		var err error
		if general {
			g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
				Stop: mc.Budget{Steps: 120_000}, Seed: 8, Trace: trace}
			_, err = g.Run(context.Background())
		} else {
			s := &SMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
				Stop: mc.Budget{Steps: 120_000}, Seed: 8, Trace: trace}
			_, err = s.Run(context.Background())
		}
		if err != nil {
			t.Fatal(err)
		}
		if last < 0 {
			t.Fatal("trace never fired")
		}
	}
}

// g-MLSS and s-MLSS agree (bit-for-bit estimates are not expected, but
// statistical agreement is) on a non-skipping process with equal budgets
// — §6.1's premise that the two coincide without level skipping.
func TestSamplersAgreeWithoutSkipping(t *testing.T) {
	chain, q, plan, want := noSkipChain()
	s := &SMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
		Stop: mc.Budget{Steps: 800_000}, Seed: 9}
	sres, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
		Stop: mc.Budget{Steps: 800_000}, Seed: 9}
	gres, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sres.P-want) > 0.1*want || math.Abs(gres.P-want) > 0.1*want {
		t.Fatalf("s=%v g=%v exact=%v", sres.P, gres.P, want)
	}
}

// Identical seeds and settings give identical g-MLSS results even with
// the bootstrap in the loop (its resampling uses a dedicated substream).
func TestGMLSSFullyDeterministic(t *testing.T) {
	chain, q, plan, _ := noSkipChain()
	run := func() mc.Result {
		g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
			Stop: mc.Any{mc.RETarget{Target: 0.3}, mc.Budget{Steps: 2_000_000}}, Seed: 10}
		res, err := g.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.P != b.P || a.Variance != b.Variance || a.Steps != b.Steps {
		t.Fatalf("repeat run diverged: %+v vs %+v", a, b)
	}
}
