package core

import (
	"context"
	"errors"
	"fmt"

	"durability/internal/mc"
	"durability/internal/rng"
	"durability/internal/stats"
	"durability/internal/stochastic"
	"durability/internal/telemetry"
)

// SMLSS is the simple Multi-Level Splitting sampler of §3. A root path
// simulates forward watching the *next* level interval; the first time it
// lands inside that interval it splits into Ratio offspring, each of which
// recursively watches the following level. The estimator is
//
//	tau_hat = N_m / (N_0 * r^(m-1))
//
// with variance sigma^2 / (N_0 * r^(2(m-1))) where sigma^2 is the sample
// variance of per-root target-hit counts (Eq. 5–6).
//
// s-MLSS is unbiased only under the paper's "no level-skipping"
// assumption. When a path's value jumps over a level between consecutive
// steps, the landing test never fires and the path's contribution is lost
// — exactly the failure mode Table 6 of the paper demonstrates. Use GMLSS
// for processes that can skip.
type SMLSS struct {
	Proc  stochastic.Process
	Query Query
	Plan  Plan
	Ratio int // splitting ratio r (>= 1; 1 degenerates to SRS)
	Stop  mc.StopRule
	Seed  uint64

	Workers int             // parallel workers (default 1)
	Batch   int             // root paths between stop-rule checks (default 128)
	Lanes   int             // lane-frontier width per worker for bulk models (default 64)
	Trace   func(mc.Result) // optional per-batch progress callback
}

// smlssRoot is the accounting for one root path's full splitting tree.
type smlssRoot struct {
	hits    int64   // target hits N_m contributed by this tree
	steps   int64   // simulator invocations spent on this tree
	entries []int64 // first-time landings per level, indexed 1..m-1
}

func (s *SMLSS) validate() error {
	if err := s.Query.Validate(); err != nil {
		return err
	}
	if s.Ratio < 1 {
		return fmt.Errorf("core: splitting ratio %d must be >= 1", s.Ratio)
	}
	return nil
}

// segment simulates one path from time t0, watching level L_watch: the
// first landing inside [beta_watch, beta_{watch+1}) triggers a split.
// When watch == m the watched "interval" is the target [1,1].
func (s *SMLSS) segment(st stochastic.State, t0, watch int, src *rng.Source, out *smlssRoot) {
	m := s.Plan.M()
	var lo, hi float64
	if watch <= m {
		lo = s.Plan.Boundary(watch)
	}
	if watch < m {
		hi = s.Plan.Boundary(watch + 1)
	}
	for t := t0 + 1; t <= s.Query.Horizon; t++ {
		s.Proc.Step(st, t, src)
		out.steps++
		f := s.Query.Value(st, t)
		if watch == m {
			if f >= 1 {
				out.hits++
				out.entries[m]++
				return
			}
			continue
		}
		if f >= lo && f < hi {
			out.entries[watch]++
			for c := 0; c < s.Ratio; c++ {
				s.segment(st.Clone(), t, watch+1, src, out)
			}
			return
		}
	}
}

// Run executes the sampler until the stop rule fires or the context is
// cancelled.
func (s *SMLSS) Run(ctx context.Context) (mc.Result, error) {
	res, _, err := s.run(ctx, s.Stop)
	return res, err
}

// Trial runs the sampler under a fixed step budget and also returns the
// aggregate first-landing counts per level (indexed 1..m; m is the
// target). The level-design optimiser (internal/opt) uses trials to score
// partition plans: the paper's eval(B) of Eq. 15 equals Variance * Steps
// of a fixed-budget run, and the entry counts yield the level-advancement
// probabilities the greedy strategy bisects on.
func (s *SMLSS) Trial(ctx context.Context, budget int64) (mc.Result, []int64, error) {
	return s.run(ctx, mc.Budget{Steps: budget})
}

func (s *SMLSS) run(ctx context.Context, stop mc.StopRule) (mc.Result, []int64, error) {
	if stop == nil {
		return mc.Result{}, nil, errors.New("core: SMLSS requires a stop rule")
	}
	if err := s.validate(); err != nil {
		return mc.Result{}, nil, err
	}
	workers := s.Workers
	if workers <= 0 {
		workers = 1
	}
	batch := s.Batch
	if batch <= 0 {
		batch = 128
	}
	m := s.Plan.M()
	proto := s.Proc.Initial()
	initLevel := s.Plan.LevelOf(s.Query.Value(proto, 0))
	if initLevel >= m {
		return mc.Result{}, nil, errors.New("core: initial state already satisfies the query")
	}
	sim := s.newSim(workers, proto, initLevel)
	// Scale factor r^(m-1-initLevel): total leaves per root.
	scale := 1.0
	for i := initLevel + 1; i < m; i++ {
		scale *= float64(s.Ratio)
	}

	start := telemetry.Now()
	var res mc.Result
	var hitsAcc stats.Accumulator // per-root hit counts, for the variance
	entries := make([]int64, m+1)
	next := int64(0)
	for {
		lo, hi := next, next+int64(batch)
		next = hi
		roots, err := sim.runRange(ctx, lo, hi)
		for _, r := range roots {
			res.Steps += r.steps
			res.Hits += r.hits
			hitsAcc.Add(float64(r.hits))
			for i, c := range r.entries {
				entries[i] += c
			}
		}
		res.Paths = hitsAcc.N()
		if res.Paths > 0 {
			res.P = float64(res.Hits) / (float64(res.Paths) * scale)
			res.Variance = hitsAcc.Variance() / (float64(res.Paths) * scale * scale)
		}
		res.Elapsed = telemetry.Since(start)
		if err != nil {
			return res, entries, err
		}
		if s.Trace != nil {
			s.Trace(res)
		}
		if stop.Done(res) {
			return res, entries, nil
		}
	}
}

// LevelEntryCounts runs nRoots full splitting trees and returns the
// aggregate first-landing counts per level (index 1..m-1; index m is the
// target). The optimiser uses these to estimate level-advancement
// probabilities without re-implementing the tree walk.
func (s *SMLSS) LevelEntryCounts(ctx context.Context, nRoots int64) ([]int64, int64, error) {
	if err := s.validate(); err != nil {
		return nil, 0, err
	}
	workers := s.Workers
	if workers <= 0 {
		workers = 1
	}
	proto := s.Proc.Initial()
	initLevel := s.Plan.LevelOf(s.Query.Value(proto, 0))
	roots, err := s.newSim(workers, proto, initLevel).runRange(ctx, 0, nRoots)
	counts := make([]int64, s.Plan.M()+1)
	var steps int64
	for _, r := range roots {
		steps += r.steps
		for i, c := range r.entries {
			counts[i] += c
		}
	}
	return counts, steps, err
}
