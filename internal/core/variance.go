package core

import "math"

// twoLevelVariance is the closed-form variance of the g-MLSS estimator
// for the simple-but-nontrivial case the paper analyses in §4.2: two
// levels with level skipping (Figure 3). With
//
//	p01 = P(land in L1), p02 = P(jump straight past beta_2),
//	p12 = P(cross beta_2 | landed in L1),
//
// Eq. 11 reads
//
//	Var(tau_hat) = p12^2 * p01(1-p01)/N0
//	             + p01 * Var(N2^<1>)/(N0 r^2)
//	             + p02(1-p02)/N0
//
// where N2^<1> is the number of target hits among one split state's r
// offspring. All quantities are estimated from the run's own counters:
// p01 = land[1]/N0, p02 = skip[1]/N0, p12 = mu[1]/land[1], and
// Var(N2^<1>) from the per-split first and second moments (mu, muSq).
//
// It returns (variance, true) only when the plan really has m == 2 and at
// least two splits happened; otherwise the caller falls back to the
// bootstrap.
func twoLevelVariance(agg levelCounters, n int64, m, initLevel int) (float64, bool) {
	if m != 2 || initLevel != 0 || n == 0 {
		return 0, false
	}
	n0 := float64(n)
	h1 := agg.land[1]
	if h1 < 2 {
		return 0, false
	}
	p01 := h1 / n0
	p02 := agg.skip[1] / n0
	p12 := agg.mu[1] / h1
	// Var over splits of the offspring hit count N2^<1> = r * frac:
	// Var(r*frac) = r^2 * (E[frac^2] - E[frac]^2), with the unbiased
	// (h1-1) divisor.
	meanFrac := agg.mu[1] / h1
	varFrac := (agg.muSq[1] - h1*meanFrac*meanFrac) / (h1 - 1)
	if varFrac < 0 {
		varFrac = 0
	}
	// Var(N2^<1>)/r^2 = varFrac, so the middle term is p01 * varFrac / N0.
	v := p12*p12*p01*(1-p01)/n0 +
		p01*varFrac/n0 +
		p02*(1-p02)/n0
	if math.IsNaN(v) || v < 0 {
		return 0, false
	}
	return v, true
}
