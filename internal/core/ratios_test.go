package core

import (
	"context"
	"math"
	"testing"

	"durability/internal/mc"
)

func TestVariableRatiosUnbiased(t *testing.T) {
	chain, q, plan, want := skipChain() // 3 interior boundaries -> 3 splittable levels
	g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 2,
		Ratios: []int{2, 3, 5}, // escalate the ratio with the level
		Stop:   mc.Budget{Steps: 2_000_000}, Seed: 41}
	res, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-want) > 0.10*want {
		t.Fatalf("variable-ratio estimate %v, exact %v", res.P, want)
	}
}

func TestVariableRatiosAcrossRuns(t *testing.T) {
	chain, q, plan, want := skipChain()
	const runs = 20
	sum := 0.0
	for i := 0; i < runs; i++ {
		g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 2,
			Ratios: []int{4, 3, 2}, // de-escalating ratios, also valid
			Stop:   mc.Budget{Steps: 150_000}, Seed: uint64(900 + i)}
		res, err := g.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sum += res.P
	}
	mean := sum / runs
	if math.Abs(mean-want) > 0.12*want {
		t.Fatalf("mean of %d variable-ratio runs = %v, exact %v", runs, mean, want)
	}
}

func TestVariableRatiosValidation(t *testing.T) {
	chain, q, plan, _ := skipChain()
	ctx := context.Background()
	g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 2,
		Ratios: []int{2, 3}, // plan has 3 splittable levels
		Stop:   mc.Budget{Steps: 10}}
	if _, err := g.Run(ctx); err == nil {
		t.Error("mismatched ratio count accepted")
	}
	g.Ratios = []int{2, 0, 3}
	if _, err := g.Run(ctx); err == nil {
		t.Error("zero per-level ratio accepted")
	}
}

func TestUniformRatiosEquivalent(t *testing.T) {
	// Ratios filled with the uniform value must reproduce the plain-Ratio
	// run exactly (same seeds, same split counts).
	chain, q, plan, _ := noSkipChain()
	run := func(ratios []int) mc.Result {
		g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
			Ratios: ratios, Stop: mc.Budget{Steps: 150_000}, Seed: 13}
		res, err := g.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	explicit := run([]int{3, 3})
	if plain.P != explicit.P || plain.Steps != explicit.Steps {
		t.Fatalf("explicit uniform ratios diverged: %v/%d vs %v/%d",
			plain.P, plain.Steps, explicit.P, explicit.Steps)
	}
}
