package core

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"durability/internal/mc"
	"durability/internal/rng"
	"durability/internal/stochastic"
)

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(0.5, 0.2); err != nil {
		t.Fatalf("unsorted boundaries should be accepted (sorted defensively): %v", err)
	}
	for _, bad := range [][]float64{{0}, {1}, {-0.1}, {1.5}, {0.3, 0.3}} {
		if _, err := NewPlan(bad...); err == nil {
			t.Errorf("NewPlan(%v) accepted", bad)
		}
	}
	p := MustPlan(0.25, 0.5, 0.75)
	if p.M() != 4 {
		t.Fatalf("M = %d, want 4", p.M())
	}
}

func TestPlanLevelOf(t *testing.T) {
	p := MustPlan(0.4, 0.67)
	cases := []struct {
		f    float64
		want int
	}{
		{0, 0}, {0.39, 0}, {0.4, 1}, {0.5, 1}, {0.66, 1},
		{0.67, 2}, {0.9, 2}, {0.999, 2}, {1, 3}, {1.2, 3},
	}
	for _, tc := range cases {
		if got := p.LevelOf(tc.f); got != tc.want {
			t.Errorf("LevelOf(%v) = %d, want %d", tc.f, got, tc.want)
		}
	}
}

func TestPlanBoundary(t *testing.T) {
	p := MustPlan(0.4, 0.67)
	if p.Boundary(1) != 0.4 || p.Boundary(2) != 0.67 || p.Boundary(3) != 1 {
		t.Fatalf("boundaries wrong: %v %v %v", p.Boundary(1), p.Boundary(2), p.Boundary(3))
	}
}

func TestUniformPlan(t *testing.T) {
	p := UniformPlan(4)
	want := []float64{0.25, 0.5, 0.75}
	if len(p.Boundaries) != 3 {
		t.Fatalf("UniformPlan(4) has %d boundaries", len(p.Boundaries))
	}
	for i := range want {
		if math.Abs(p.Boundaries[i]-want[i]) > 1e-12 {
			t.Fatalf("boundaries = %v, want %v", p.Boundaries, want)
		}
	}
	if UniformPlan(1).M() != 1 {
		t.Fatal("UniformPlan(1) should have no interior boundary (pure SRS levels)")
	}
}

func TestThresholdValueClamps(t *testing.T) {
	f := ThresholdValue(stochastic.ScalarValue, 10)
	if v := f(&stochastic.Scalar{V: -5}, 0); v != 0 {
		t.Fatalf("negative z gave f = %v", v)
	}
	if v := f(&stochastic.Scalar{V: 5}, 0); v != 0.5 {
		t.Fatalf("f = %v, want 0.5", v)
	}
	if v := f(&stochastic.Scalar{V: 25}, 0); v != 1 {
		t.Fatalf("overshoot gave f = %v, want 1", v)
	}
}

func TestThresholdValuePanicsOnBadBeta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("beta <= 0 did not panic")
		}
	}()
	ThresholdValue(stochastic.ScalarValue, 0)
}

// noSkipChain is a birth-death chain: values move one state per step, so
// with boundaries more than one state apart no level skipping can occur
// and s-MLSS is exact.
func noSkipChain() (*stochastic.MarkovChain, Query, Plan, float64) {
	chain := stochastic.BirthDeathChain(10, 0.45, 0)
	const horizon, beta = 50, 7
	q := Query{Value: ThresholdValue(stochastic.ChainIndex, beta), Horizon: horizon}
	plan := MustPlan(3.0/beta, 5.0/beta)
	target := map[int]bool{}
	for i := beta; i < 10; i++ {
		target[i] = true
	}
	return chain, q, plan, chain.HitProbability(target, horizon)
}

// skipChain adds +4 jumps to a birth-death chain so paths frequently skip
// levels; the exact answer is still computable by dynamic programming.
func skipChain() (*stochastic.MarkovChain, Query, Plan, float64) {
	const n = 15
	mat := make([][]float64, n)
	for i := range mat {
		mat[i] = make([]float64, n)
		up, down, jump := 0.30, 0.55, 0.15
		hi := i + 1
		if hi >= n {
			hi = n - 1
		}
		lo := i - 1
		if lo < 0 {
			lo = 0
		}
		far := i + 4
		if far >= n {
			far = n - 1
		}
		mat[i][hi] += up
		mat[i][lo] += down
		mat[i][far] += jump
	}
	chain, err := stochastic.NewMarkovChain(mat, 0)
	if err != nil {
		panic(err)
	}
	const horizon, beta = 40, 10
	q := Query{Value: ThresholdValue(stochastic.ChainIndex, beta), Horizon: horizon}
	plan := MustPlan(4.0/beta, 6.0/beta, 8.0/beta)
	target := map[int]bool{}
	for i := beta; i < n; i++ {
		target[i] = true
	}
	return chain, q, plan, chain.HitProbability(target, horizon)
}

func TestSMLSSMatchesExactNoSkip(t *testing.T) {
	chain, q, plan, want := noSkipChain()
	s := &SMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
		Stop: mc.Budget{Steps: 1_500_000}, Seed: 1}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-want) > 0.05*want {
		t.Fatalf("s-MLSS estimate %v, exact %v", res.P, want)
	}
	if res.Variance <= 0 {
		t.Fatalf("variance = %v, want > 0", res.Variance)
	}
}

func TestGMLSSMatchesExactNoSkip(t *testing.T) {
	chain, q, plan, want := noSkipChain()
	g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
		Stop: mc.Budget{Steps: 1_500_000}, Seed: 2}
	res, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-want) > 0.05*want {
		t.Fatalf("g-MLSS estimate %v, exact %v", res.P, want)
	}
	if res.Variance <= 0 || math.IsInf(res.Variance, 1) {
		t.Fatalf("variance = %v", res.Variance)
	}
}

func TestGMLSSMatchesExactWithSkipping(t *testing.T) {
	chain, q, plan, want := skipChain()
	g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
		Stop: mc.Budget{Steps: 2_000_000}, Seed: 3}
	res, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-want) > 0.08*want {
		t.Fatalf("g-MLSS estimate %v under skipping, exact %v", res.P, want)
	}
}

// The headline negative result of §6.2 (Table 6): s-MLSS applied blindly
// to a level-skipping process is biased low, because paths that jump over
// the watched level are lost.
func TestSMLSSBiasedUnderSkipping(t *testing.T) {
	chain, q, plan, want := skipChain()
	s := &SMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
		Stop: mc.Budget{Steps: 2_000_000}, Seed: 4}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.8*want {
		t.Fatalf("s-MLSS estimate %v not visibly below exact %v under skipping", res.P, want)
	}
}

// Across independent runs the mean g-MLSS estimate converges to the exact
// answer — the unbiasedness claim of Proposition 2.
func TestGMLSSUnbiasedAcrossRuns(t *testing.T) {
	chain, q, plan, want := skipChain()
	const runs = 30
	sum := 0.0
	for i := 0; i < runs; i++ {
		g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
			Stop: mc.Budget{Steps: 120_000}, Seed: uint64(100 + i)}
		res, err := g.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sum += res.P
	}
	mean := sum / runs
	if math.Abs(mean-want) > 0.10*want {
		t.Fatalf("mean of %d g-MLSS runs = %v, exact %v", runs, mean, want)
	}
}

// Splitting ratio 1 degenerates MLSS to SRS (§3.1): identical estimator
// form, and the estimate still matches the exact answer.
func TestRatioOneDegeneratesToSRS(t *testing.T) {
	chain, q, plan, want := noSkipChain()
	s := &SMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 1,
		Stop: mc.Budget{Steps: 800_000}, Seed: 5}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != int64(res.P*float64(res.Paths)+0.5) {
		t.Fatalf("with r=1 the estimator must be hits/paths: %+v", res)
	}
	if math.Abs(res.P-want) > 0.15*want {
		t.Fatalf("r=1 estimate %v, exact %v", res.P, want)
	}
}

func TestMLSSParallelDeterministic(t *testing.T) {
	chain, q, plan, _ := noSkipChain()
	run := func(workers int) mc.Result {
		g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
			Stop: mc.Budget{Steps: 200_000}, Seed: 6, Workers: workers}
		res, err := g.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if seq.P != par.P || seq.Steps != par.Steps || seq.Hits != par.Hits {
		t.Fatalf("parallel g-MLSS diverged: seq=%+v par=%+v", seq, par)
	}
}

func TestMLSSConfigErrors(t *testing.T) {
	chain, q, plan, _ := noSkipChain()
	ctx := context.Background()
	if _, err := (&SMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 0, Stop: mc.Budget{Steps: 1}}).Run(ctx); err == nil {
		t.Error("ratio 0 accepted")
	}
	if _, err := (&SMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 2}).Run(ctx); err == nil {
		t.Error("missing stop rule accepted")
	}
	if _, err := (&GMLSS{Proc: chain, Query: Query{}, Plan: plan, Ratio: 2, Stop: mc.Budget{Steps: 1}}).Run(ctx); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestMLSSContextCancel(t *testing.T) {
	chain, q, plan, _ := noSkipChain()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3, Stop: mc.Budget{Steps: 1 << 60}, Seed: 7}
	if _, err := g.Run(ctx); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}

func TestGMLSSVarTimeTracked(t *testing.T) {
	chain, q, plan, _ := noSkipChain()
	g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
		Stop: mc.Budget{Steps: 150_000}, Seed: 8}
	res, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.VarTime <= 0 {
		t.Fatal("bootstrap variance time not tracked")
	}
	if res.VarTime > res.Elapsed {
		t.Fatalf("VarTime %v exceeds Elapsed %v", res.VarTime, res.Elapsed)
	}
}

func TestLevelCountersEstimateEdgeCases(t *testing.T) {
	c := newLevelCounters(3)
	if got := c.estimate(0, 3, 0); got != 0 {
		t.Fatalf("estimate with no roots = %v", got)
	}
	if got := c.estimate(100, 3, 0); got != 0 {
		t.Fatalf("estimate with no crossers = %v", got)
	}
	// One root crossed all the way by skipping everything.
	c.skip[1], c.skip[2], c.hits = 1, 1, 1
	got := c.estimate(100, 3, 0)
	// pi_1 = 1/100, pi_2 = (0+1)/(0+1) = 1, pi_3 = 1/1 = 1.
	if math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("skip-only estimate = %v, want 0.01", got)
	}
}

func TestLevelCountersAdd(t *testing.T) {
	a, b := newLevelCounters(2), newLevelCounters(2)
	a.land[1], a.hits = 2, 1
	b.land[1], b.skip[1], b.mu[1], b.hits = 3, 1, 0.5, 2
	a.add(b)
	if a.land[1] != 5 || a.skip[1] != 1 || a.mu[1] != 0.5 || a.hits != 3 {
		t.Fatalf("add gave %+v", a)
	}
}

func TestRootPoolGroupMerging(t *testing.T) {
	p := newRootPool(2)
	one := newLevelCounters(2)
	one.hits = 1
	for i := 0; i < maxBootstrapGroups+10; i++ {
		p.push(one)
	}
	if p.groupSize != 2 {
		t.Fatalf("groupSize = %d after overflow, want 2", p.groupSize)
	}
	if len(p.groups) > maxBootstrapGroups {
		t.Fatalf("groups grew past the cap: %d", len(p.groups))
	}
	total := 0.0
	for _, g := range p.groups {
		total += g.hits
	}
	if int64(total) != p.roots() {
		t.Fatalf("merged groups cover %v roots, pool reports %d", total, p.roots())
	}
}

func TestBootstrapVarianceBeforeData(t *testing.T) {
	p := newRootPool(2)
	if v := p.bootstrapVariance(50, 2, 0, rng.New(1)); !math.IsInf(v, 1) {
		t.Fatalf("variance with no groups = %v, want +Inf", v)
	}
}

func TestBootstrapVarianceShrinksWithData(t *testing.T) {
	chain, q, plan, _ := noSkipChain()
	variances := make([]float64, 0, 2)
	for _, budget := range []int64{60_000, 600_000} {
		g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
			Stop: mc.Budget{Steps: budget}, Seed: 9}
		res, err := g.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		variances = append(variances, res.Variance)
	}
	if variances[1] >= variances[0] {
		t.Fatalf("10x budget did not reduce bootstrap variance: %v -> %v", variances[0], variances[1])
	}
}

func TestSMLSSLevelEntryCounts(t *testing.T) {
	chain, q, plan, _ := noSkipChain()
	s := &SMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
		Stop: mc.Budget{Steps: 1}, Seed: 10}
	counts, steps, err := s.LevelEntryCounts(context.Background(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if steps <= 0 {
		t.Fatal("no steps recorded")
	}
	// Landings must decrease with the level (fewer paths reach higher
	// milestones than lower ones when each split keeps ratio*p < 1 here).
	if counts[1] == 0 {
		t.Fatal("no paths reached level 1")
	}
	if counts[2] > counts[1]*3 {
		t.Fatalf("level 2 entries %d exceed r * level-1 entries %d", counts[2], counts[1])
	}
}

// Property: for any boundary placement the g-MLSS estimate on the skipping
// chain stays a valid probability.
func TestQuickGMLSSProducesProbabilities(t *testing.T) {
	chain, q, _, _ := skipChain()
	f := func(seed uint64, b1, b2 uint8) bool {
		lo := 0.1 + 0.4*float64(b1)/255
		hi := lo + 0.05 + (0.9-lo-0.05)*float64(b2)/255
		plan, err := NewPlan(lo, hi)
		if err != nil {
			return true // degenerate draw, skip
		}
		g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 2,
			Stop: mc.Budget{Steps: 20_000}, Seed: seed}
		res, err := g.Run(context.Background())
		if err != nil {
			return false
		}
		return res.P >= 0 && res.P <= 1 && !math.IsNaN(res.P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMLSSRejectsSatisfiedInitialState(t *testing.T) {
	w := &stochastic.RandomWalk{Start: 20, Drift: 0, Sigma: 1}
	q := Query{Value: ThresholdValue(stochastic.ScalarValue, 10), Horizon: 10}
	plan := MustPlan(0.5)
	if _, err := (&SMLSS{Proc: w, Query: q, Plan: plan, Ratio: 2, Stop: mc.Budget{Steps: 10}}).Run(context.Background()); err == nil {
		t.Error("SMLSS accepted an initial state at the target")
	}
	if _, err := (&GMLSS{Proc: w, Query: q, Plan: plan, Ratio: 2, Stop: mc.Budget{Steps: 10}}).Run(context.Background()); err == nil {
		t.Error("GMLSS accepted an initial state at the target")
	}
}
