package core

import (
	"context"
	"sync/atomic"
	"testing"
)

// A cancelled batch must report only completed roots: the serial path
// truncates to the finished prefix, and the parallel path must match, or
// callers would merge zero-valued roots into their counters.
func TestForEachRootCancelReturnsCompletedPrefix(t *testing.T) {
	for _, workers := range []int{1, 4, 7} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		out, err := forEachRoot(ctx, workers, 100, 100+512, func(idx int64) int64 {
			if calls.Add(1) == 40 {
				cancel()
			}
			return idx + 1 // sentinel: a completed root is never zero
		})
		cancel()
		if err == nil {
			t.Fatalf("workers=%d: cancelled run returned no error", workers)
		}
		if len(out) == int(512) {
			t.Fatalf("workers=%d: cancelled run reported the full batch", workers)
		}
		for i, v := range out {
			if v != 100+int64(i)+1 {
				t.Fatalf("workers=%d: position %d holds %d — an incomplete root leaked into the prefix", workers, i, v)
			}
		}
	}
}

// Without cancellation the parallel path must fill every slot.
func TestForEachRootComplete(t *testing.T) {
	out, err := forEachRoot(context.Background(), 3, 0, 50, func(idx int64) int64 { return idx + 1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("got %d results, want 50", len(out))
	}
	for i, v := range out {
		if v != int64(i)+1 {
			t.Fatalf("position %d holds %d", i, v)
		}
	}
}
