package core

import (
	"context"
	"errors"
	"math"

	"durability/internal/rng"
	"durability/internal/stats"
)

// Counters is the exported form of the g-MLSS sufficient statistic, used
// by the distributed runner (internal/cluster) to ship per-shard results
// between machines: slices indexed 1..m-1 as in §4.1, plus target hits.
// It is plain data, so it serialises with encoding/gob.
type Counters struct {
	Land []float64
	Skip []float64
	Mu   []float64
	Hits float64
}

// Add merges another counter set (levels must agree).
func (c *Counters) Add(o Counters) {
	for i := range c.Land {
		c.Land[i] += o.Land[i]
		c.Skip[i] += o.Skip[i]
		c.Mu[i] += o.Mu[i]
	}
	c.Hits += o.Hits
}

// NewCounters allocates zeroed counters for a plan with M() == m.
func NewCounters(m int) Counters {
	return Counters{
		Land: make([]float64, m+1),
		Skip: make([]float64, m+1),
		Mu:   make([]float64, m+1),
	}
}

func (c Counters) toInternal() levelCounters {
	return levelCounters{land: c.Land, skip: c.Skip, mu: c.Mu, hits: c.Hits}
}

func fromInternal(lc levelCounters) Counters {
	return Counters{Land: lc.land, Skip: lc.skip, Mu: lc.mu, Hits: lc.hits}
}

// ShardResult is the outcome of simulating one contiguous range of root
// paths: the aggregate counters, the cost, and the per-group counters the
// coordinator needs for bootstrap variance estimation.
type ShardResult struct {
	Agg    Counters
	Groups []Counters // equal-size batches of roots, for resampling
	Roots  int64
	Steps  int64
}

// RunRoots simulates root paths [lo, hi) of the sampler's tree process and
// returns their counters, batched into the requested number of bootstrap
// groups. It performs no stopping logic — that is the coordinator's job in
// the distributed setting of §3.1 ("synchronize counters on the machines
// periodically to produce a running estimate").
func (g *GMLSS) RunRoots(ctx context.Context, lo, hi int64, groups int) (ShardResult, error) {
	if hi <= lo {
		return ShardResult{}, errors.New("core: empty root range")
	}
	if groups < 1 {
		groups = 1
	}
	if int64(groups) > hi-lo {
		groups = int(hi - lo)
	}
	per := int((hi - lo + int64(groups) - 1) / int64(groups))
	return g.RunRootsBy(ctx, lo, hi, per)
}

// RunRootsBy is RunRoots with the bootstrap grouping fixed by size rather
// than count: every group covers exactly rootsPerGroup consecutive root
// indices (the last group of a range may be smaller). Distributed
// executors shard one logical root range across machines; size-based
// grouping makes the group boundaries — and therefore the order of every
// floating-point merge downstream — identical no matter how the range was
// cut, which is what keeps a sharded run bit-for-bit equal to a
// single-machine run.
func (g *GMLSS) RunRootsBy(ctx context.Context, lo, hi int64, rootsPerGroup int) (ShardResult, error) {
	if err := g.validate(); err != nil {
		return ShardResult{}, err
	}
	if hi <= lo {
		return ShardResult{}, errors.New("core: empty root range")
	}
	if rootsPerGroup < 1 {
		rootsPerGroup = 1
	}
	m := g.Plan.M()
	proto := g.Proc.Initial()
	initLevel := g.Plan.LevelOf(g.Query.Value(proto, 0))
	if initLevel >= m {
		return ShardResult{}, errors.New("core: initial state already satisfies the query")
	}
	workers := g.Workers
	if workers <= 0 {
		workers = 1
	}
	roots, err := g.newSim(workers, proto, initLevel).runRange(ctx, lo, hi)
	if err != nil {
		return ShardResult{}, err
	}
	out := ShardResult{Agg: NewCounters(m), Roots: int64(len(roots))}
	per := rootsPerGroup
	for gi := 0; gi < len(roots); gi += per {
		group := NewCounters(m)
		end := gi + per
		if end > len(roots) {
			end = len(roots)
		}
		for _, r := range roots[gi:end] {
			group.Add(fromInternal(r.counters))
			out.Steps += r.steps
		}
		out.Agg.Add(group)
		out.Groups = append(out.Groups, group)
	}
	return out, nil
}

// EstimateFromCounters computes the g-MLSS estimator (Eq. 10) from
// aggregated counters over n root paths starting in level initLevel of an
// m-boundary plan.
func EstimateFromCounters(agg Counters, n int64, m, initLevel int) float64 {
	lc := agg.toInternal()
	return lc.estimate(n, m, initLevel)
}

// EstimatePrefixFromCounters computes the g-MLSS estimator truncated at
// level target (initLevel < target <= m): the cumulative level-crossing
// product up to boundary beta_target. It is an unbiased estimate of the
// probability that the value function reaches beta_target within the
// horizon — the same telescoping-conditional argument that makes Eq. 10
// unbiased for the top level applies to every prefix, which is what lets
// one splitting run answer a whole threshold lattice: each intermediate
// threshold is read off as a prefix of the shared counters.
func EstimatePrefixFromCounters(agg Counters, n int64, m, target, initLevel int) float64 {
	if target == m {
		return EstimateFromCounters(agg, n, m, initLevel)
	}
	if n == 0 || target <= initLevel || target > m {
		return 0
	}
	first := initLevel + 1
	// Crossings of the first watched boundary: paths that landed in
	// L_first plus paths that jumped past it (the segment loop books a
	// skip at every level below the landing level, the target included).
	tau := (agg.Land[first] + agg.Skip[first]) / float64(n)
	if tau == 0 {
		return 0
	}
	for i := first; i < target; i++ {
		denom := agg.Land[i] + agg.Skip[i]
		if denom == 0 {
			return 0
		}
		tau *= (agg.Mu[i] + agg.Skip[i]) / denom
	}
	return tau
}

// PrefixCrossings counts the crossing events observed at boundary target:
// the per-level evidence mass behind a prefix estimate, the analog of
// Result.Hits for an intermediate threshold (MinHits-style stop-rule
// guards key off it). For the top level the crossings are the target hits.
func PrefixCrossings(agg Counters, m, target int) float64 {
	if target == m {
		return agg.Hits
	}
	if target < 1 || target > m {
		return 0
	}
	return agg.Land[target] + agg.Skip[target]
}

// BootstrapPrefixVariancesFromGroups estimates the variance of every
// prefix estimator in targets at once by resampling equal-size root groups
// with replacement. Each replicate draws one resampled counter set and
// evaluates all prefixes from it, so the cost is one resampling pass (and
// one PRNG trajectory) regardless of how many thresholds share the run; a
// single-element targets slice consumes exactly the draws
// BootstrapVarianceFromGroups would, keeping batch and single-query
// variance trajectories comparable. rootsPerGroup * len(groups) must equal
// the total number of roots the groups cover.
func BootstrapPrefixVariancesFromGroups(groups []Counters, rootsPerGroup int64, m, initLevel int, targets []int, reps int, src *rng.Source) []float64 {
	out := make([]float64, len(targets))
	n := len(groups)
	if n < 2 {
		for i := range out {
			out[i] = math.Inf(1)
		}
		return out
	}
	total := rootsPerGroup * int64(n)
	accs := make([]stats.Accumulator, len(targets))
	for b := 0; b < reps; b++ {
		resampled := NewCounters(m)
		for i := 0; i < n; i++ {
			resampled.Add(groups[src.Intn(n)])
		}
		for ti, target := range targets {
			accs[ti].Add(EstimatePrefixFromCounters(resampled, total, m, target, initLevel))
		}
	}
	for i := range accs {
		out[i] = accs[i].PopulationVariance()
	}
	return out
}

// BootstrapVarianceFromGroups estimates the estimator's variance by
// resampling equal-size root groups with replacement, as the coordinator
// does after merging shard results. rootsPerGroup * len(groups) must equal
// the total number of roots the groups cover.
func BootstrapVarianceFromGroups(groups []Counters, rootsPerGroup int64, m, initLevel, reps int, src *rng.Source) float64 {
	n := len(groups)
	if n < 2 {
		return math.Inf(1)
	}
	total := rootsPerGroup * int64(n)
	var acc stats.Accumulator
	for b := 0; b < reps; b++ {
		resampled := NewCounters(m)
		for i := 0; i < n; i++ {
			resampled.Add(groups[src.Intn(n)])
		}
		acc.Add(EstimateFromCounters(resampled, total, m, initLevel))
	}
	return acc.PopulationVariance()
}
