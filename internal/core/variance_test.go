package core

import (
	"context"
	"math"
	"testing"

	"durability/internal/mc"
	"durability/internal/stochastic"
)

// twoLevelChain is a skipping chain with a single interior boundary, the
// exact setting of §4.2's closed-form analysis (Figure 3).
func twoLevelChain() (*stochastic.MarkovChain, Query, Plan) {
	const n = 12
	mat := make([][]float64, n)
	for i := range mat {
		mat[i] = make([]float64, n)
		hi := i + 1
		if hi >= n {
			hi = n - 1
		}
		lo := i - 1
		if lo < 0 {
			lo = 0
		}
		far := i + 5
		if far >= n {
			far = n - 1
		}
		mat[i][hi] += 0.32
		mat[i][lo] += 0.53
		mat[i][far] += 0.15
	}
	chain, err := stochastic.NewMarkovChain(mat, 0)
	if err != nil {
		panic(err)
	}
	const beta = 9
	q := Query{Value: ThresholdValue(stochastic.ChainIndex, beta), Horizon: 30}
	return chain, q, MustPlan(5.0 / beta)
}

func TestTwoLevelVarianceMatchesBootstrap(t *testing.T) {
	chain, q, plan := twoLevelChain()
	run := func(force bool) mc.Result {
		g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
			Stop: mc.Budget{Steps: 1_500_000}, Seed: 11, ForceBootstrap: force}
		res, err := g.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	closed := run(false)
	boot := run(true)
	if closed.P != boot.P {
		t.Fatalf("estimates differ: %v vs %v", closed.P, boot.P)
	}
	if closed.Variance <= 0 {
		t.Fatalf("closed-form variance = %v", closed.Variance)
	}
	// The two estimators target the same quantity; they should agree
	// within a small factor at this sample size (the bootstrap's group
	// batching and the closed form's moment plug-ins bias them in
	// different directions).
	ratio := closed.Variance / boot.Variance
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("closed-form %v vs bootstrap %v (ratio %v)", closed.Variance, boot.Variance, ratio)
	}
	// The closed form costs no evaluation time.
	if closed.VarTime > 0 {
		t.Fatalf("closed-form path spent %v on bootstrap", closed.VarTime)
	}
	if boot.VarTime <= 0 {
		t.Fatal("forced bootstrap did not record evaluation time")
	}
}

// The closed-form variance is calibrated: across many independent runs,
// the empirical variance of the estimates matches the average reported
// variance within statistical slack.
func TestTwoLevelVarianceCalibrated(t *testing.T) {
	chain, q, plan := twoLevelChain()
	const runs = 40
	var ests []float64
	meanVar := 0.0
	for i := 0; i < runs; i++ {
		g := &GMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3,
			Stop: mc.Budget{Steps: 120_000}, Seed: uint64(500 + i)}
		res, err := g.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, res.P)
		meanVar += res.Variance
	}
	meanVar /= runs
	mean := 0.0
	for _, e := range ests {
		mean += e
	}
	mean /= runs
	empVar := 0.0
	for _, e := range ests {
		empVar += (e - mean) * (e - mean)
	}
	empVar /= runs - 1
	ratio := meanVar / empVar
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("reported variance %v vs empirical %v (ratio %v)", meanVar, empVar, ratio)
	}
}

func TestTwoLevelVarianceInapplicable(t *testing.T) {
	agg := newLevelCounters(3)
	if _, ok := twoLevelVariance(agg, 100, 3, 0); ok {
		t.Fatal("m=3 accepted")
	}
	agg2 := newLevelCounters(2)
	if _, ok := twoLevelVariance(agg2, 100, 2, 1); ok {
		t.Fatal("elevated initial level accepted")
	}
	if _, ok := twoLevelVariance(agg2, 0, 2, 0); ok {
		t.Fatal("zero roots accepted")
	}
	agg2.land[1] = 1 // a single split cannot give a variance
	if _, ok := twoLevelVariance(agg2, 100, 2, 0); ok {
		t.Fatal("single split accepted")
	}
}

func TestTwoLevelVarianceHandComputed(t *testing.T) {
	// Construct counters by hand: N0=100 roots, 40 land in L1 with
	// per-split fractions alternating 0 and 1 (20 each), 10 skip.
	agg := newLevelCounters(2)
	agg.land[1] = 40
	agg.skip[1] = 10
	agg.mu[1] = 20   // 20 splits crossed with fraction 1
	agg.muSq[1] = 20 // squares of the same
	v, ok := twoLevelVariance(agg, 100, 2, 0)
	if !ok {
		t.Fatal("closed form not applicable")
	}
	p01, p02, p12 := 0.4, 0.1, 0.5
	varFrac := (20 - 40*0.25) / 39.0
	want := p12*p12*p01*(1-p01)/100 + p01*varFrac/100 + p02*(1-p02)/100
	if math.Abs(v-want) > 1e-12 {
		t.Fatalf("variance = %v, want %v", v, want)
	}
}
