package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"durability/internal/rng"
)

// randomPlan derives a valid plan from arbitrary fuzz bytes.
func randomPlan(raw []byte) (Plan, bool) {
	set := map[float64]bool{}
	for _, b := range raw {
		v := (float64(b) + 1) / 257 // strictly inside (0,1)
		set[v] = true
	}
	if len(set) == 0 {
		return Plan{}, false
	}
	var bs []float64
	for v := range set {
		bs = append(bs, v)
	}
	sort.Float64s(bs)
	p, err := NewPlan(bs...)
	if err != nil {
		return Plan{}, false
	}
	return p, true
}

// Property: LevelOf is monotone non-decreasing in f, bounded by [0, M],
// and consistent with Boundary: LevelOf(Boundary(i)) >= i.
func TestQuickLevelOfMonotone(t *testing.T) {
	f := func(raw []byte, samples []float64) bool {
		p, ok := randomPlan(raw)
		if !ok {
			return true
		}
		clean := samples[:0]
		for _, v := range samples {
			if !math.IsNaN(v) {
				clean = append(clean, math.Mod(math.Abs(v), 1.2))
			}
		}
		sort.Float64s(clean)
		prev := -1
		for _, v := range clean {
			lv := p.LevelOf(v)
			if lv < 0 || lv > p.M() {
				return false
			}
			if lv < prev {
				return false
			}
			prev = lv
		}
		for i := 1; i <= p.M(); i++ {
			if p.LevelOf(p.Boundary(i)) < i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: counter addition is commutative and associative (up to float
// re-association slack), and estimate stays within [0, +inf).
func TestQuickCountersAlgebra(t *testing.T) {
	build := func(vals []float64, m int) levelCounters {
		c := newLevelCounters(m)
		for i, v := range vals {
			v = math.Abs(v)
			if math.IsNaN(v) || math.IsInf(v, 0) || v > 1e6 {
				v = 1
			}
			switch i % 4 {
			case 0:
				c.land[1+i%m] += v
			case 1:
				c.skip[1+i%m] += v
			case 2:
				c.mu[1+i%m] += v / (v + 1) // keep mu <= land-ish scale
			default:
				c.hits += v
			}
		}
		return c
	}
	f := func(a, b []float64) bool {
		const m = 3
		ca, cb := build(a, m), build(b, m)
		ab := newLevelCounters(m)
		ab.add(ca)
		ab.add(cb)
		ba := newLevelCounters(m)
		ba.add(cb)
		ba.add(ca)
		for i := range ab.land {
			if math.Abs(ab.land[i]-ba.land[i]) > 1e-9 ||
				math.Abs(ab.skip[i]-ba.skip[i]) > 1e-9 ||
				math.Abs(ab.mu[i]-ba.mu[i]) > 1e-9 {
				return false
			}
		}
		est := ab.estimate(100, m, 0)
		return est >= 0 && !math.IsNaN(est)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the root pool's group bookkeeping always covers exactly
// groupSize*len(groups) roots, no matter the push sequence length.
func TestQuickRootPoolAccounting(t *testing.T) {
	f := func(n uint16) bool {
		p := newRootPool(2)
		one := newLevelCounters(2)
		one.hits = 1
		pushes := int(n)%10000 + 1
		for i := 0; i < pushes; i++ {
			p.push(one)
		}
		covered := p.roots()
		// Roots in full groups plus the partial current group equal pushes.
		return covered+int64(p.inCurrent) == int64(pushes) &&
			len(p.groups) <= maxBootstrapGroups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: bootstrap variance is non-negative and finite once at least
// two groups exist, for arbitrary counter contents.
func TestQuickBootstrapVarianceSane(t *testing.T) {
	src := rng.New(99)
	f := func(hits []uint8) bool {
		if len(hits) < 2 {
			return true
		}
		p := newRootPool(2)
		for _, h := range hits {
			c := newLevelCounters(2)
			c.land[1] = float64(h % 5)
			c.mu[1] = float64(h%5) * 0.5
			c.hits = float64(h % 3)
			p.push(c)
		}
		v := p.bootstrapVariance(50, 2, 0, src)
		return v >= 0 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a fresh pool the variance is infinite (cannot stop), and
// it becomes finite exactly when two groups exist.
func TestQuickPoolVarianceTransition(t *testing.T) {
	src := rng.New(7)
	p := newRootPool(2)
	one := newLevelCounters(2)
	one.hits = 1
	if v := p.bootstrapVariance(10, 2, 0, src); !math.IsInf(v, 1) {
		t.Fatalf("empty pool variance = %v", v)
	}
	p.push(one)
	if v := p.bootstrapVariance(10, 2, 0, src); !math.IsInf(v, 1) {
		t.Fatalf("one-group pool variance = %v", v)
	}
	p.push(one)
	if v := p.bootstrapVariance(10, 2, 0, src); math.IsInf(v, 1) || math.IsNaN(v) {
		t.Fatalf("two-group pool variance = %v", v)
	}
}
