package core

import (
	"math"

	"durability/internal/rng"
	"durability/internal/stats"
)

// maxBootstrapGroups bounds the number of resampling units kept in memory.
// When more root paths arrive than this, adjacent groups are merged and
// each unit comes to represent several roots ("batch means"); bootstrap
// over iid groups of equal size remains a consistent variance estimator
// while memory and per-replicate cost stay bounded.
const maxBootstrapGroups = 4096

// rootPool holds per-root (or per-group) g-MLSS counters for bootstrap
// variance evaluation (§4.2).
type rootPool struct {
	groups    []levelCounters
	current   levelCounters
	inCurrent int
	groupSize int
	m         int
}

func newRootPool(m int) *rootPool {
	return &rootPool{current: newLevelCounters(m), groupSize: 1, m: m}
}

// push adds one root path's counters to the pool.
func (p *rootPool) push(c levelCounters) {
	p.current.add(c)
	p.inCurrent++
	if p.inCurrent < p.groupSize {
		return
	}
	p.groups = append(p.groups, p.current)
	p.current = newLevelCounters(p.m)
	p.inCurrent = 0
	if len(p.groups) >= maxBootstrapGroups {
		merged := make([]levelCounters, 0, len(p.groups)/2)
		for i := 0; i+1 < len(p.groups); i += 2 {
			g := p.groups[i]
			g.add(p.groups[i+1])
			merged = append(merged, g)
		}
		p.groups = merged
		p.groupSize *= 2
	}
}

// roots returns the number of root paths fully represented in groups.
func (p *rootPool) roots() int64 {
	return int64(len(p.groups)) * int64(p.groupSize)
}

// bootstrapVariance draws reps bootstrap replicates — each resamples the
// group pool with replacement and recomputes the g-MLSS estimate — and
// returns their empirical variance (the paper's d-Var(tau_hat_0), §4.2).
// With fewer than two groups the variance is unknown; it returns +Inf so
// quality-based stop rules keep sampling rather than stopping blind.
func (p *rootPool) bootstrapVariance(reps, m, initLevel int, src *rng.Source) float64 {
	n := len(p.groups)
	if n < 2 {
		return math.Inf(1)
	}
	nRoots := p.roots()
	var acc stats.Accumulator
	resampled := newLevelCounters(m)
	for b := 0; b < reps; b++ {
		for i := range resampled.land {
			resampled.land[i] = 0
			resampled.skip[i] = 0
			resampled.mu[i] = 0
		}
		resampled.hits = 0
		for i := 0; i < n; i++ {
			resampled.add(p.groups[src.Intn(n)])
		}
		acc.Add(resampled.estimate(nRoots, m, initLevel))
	}
	return acc.PopulationVariance()
}
