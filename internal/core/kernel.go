package core

import (
	"context"
	"sync"

	"durability/internal/rng"
	"durability/internal/stochastic"
)

// This file implements the vectorized simulation kernel: instead of
// recursing through one root-path tree at a time, each worker drives a
// frontier of lanes — one lane per in-flight root — in lockstep through
// the model's bulk step (stochastic.BulkProcess.StepVec), amortizing
// per-step dispatch across the whole frontier and keeping lane state in
// flat vector storage.
//
// The kernel is numerics-preserving by construction. A lane is a whole
// root: all of a root's randomness comes from its own substream, and
// the scalar recursion's depth-first order through the splitting tree
// is replicated exactly by an explicit frame stack, so the draw
// sequence on each substream — and therefore every floating-point
// value, in the exact accumulation order — is bit-for-bit identical to
// the scalar path. Models without a bulk fast path fall back to the
// scalar recursion unchanged.

// defaultLanes is the lane-frontier width per worker. Wide enough to
// amortize the per-round bookkeeping, small enough that the frontier's
// state vectors stay cache-resident for every built-in model.
const defaultLanes = 64

// kframe is one pending split of the depth-first tree walk: the
// spilled entrance state plus the offspring accounting the scalar
// recursion keeps in its call frame. level is the landing level (the
// level the offspring segments watch from for g-MLSS, or the child
// watch level for s-MLSS).
type kframe struct {
	spill   int // StateVec spill handle of the split entrance state
	t       int // entrance time; offspring resume at t+1
	level   int
	ratio   int
	done    int // offspring completed so far
	crossed int // offspring that crossed the next boundary (g-MLSS)
}

// counterArena carves per-root levelCounters out of one flat backing
// array, recycled batch to batch. Both drivers fold every root's
// counters into their aggregates (and the bootstrap pool) before the
// next batch starts, so the backing can be zeroed and reused: one
// allocation amortized over the run instead of four per root.
type counterArena struct {
	m   int
	buf []float64
	cnt []levelCounters
}

func (a *counterArena) carve(n int) []levelCounters {
	stride := 4 * (a.m + 1)
	need := n * stride
	if cap(a.buf) < need {
		a.buf = make([]float64, need)
	} else {
		a.buf = a.buf[:need]
		clear(a.buf)
	}
	if cap(a.cnt) < n {
		a.cnt = make([]levelCounters, n)
	}
	a.cnt = a.cnt[:n]
	for i := 0; i < n; i++ {
		a.cnt[i] = countersFrom(a.buf[i*stride:(i+1)*stride], a.m)
	}
	return a.cnt
}

// entryArena is counterArena's analog for the s-MLSS per-root
// first-landing counts.
type entryArena struct {
	m   int
	buf []int64
}

func (a *entryArena) carve(n int) [][]int64 {
	stride := a.m + 1
	need := n * stride
	if cap(a.buf) < need {
		a.buf = make([]int64, need)
	} else {
		a.buf = a.buf[:need]
		clear(a.buf)
	}
	out := make([][]int64, n)
	for i := 0; i < n; i++ {
		out[i] = a.buf[i*stride : (i+1)*stride : (i+1)*stride]
	}
	return out
}

// runLaneChunks mirrors forEachRoot's worker layout and cancellation
// semantics for the lane kernels: the range [0, n) is cut into one
// contiguous chunk per worker, each worker advances its chunk with its
// own kernel, and on cancellation the completed range is the longest
// contiguous prefix of finished roots — exactly the contract callers
// already rely on for deterministic resume.
func runLaneChunks(ctx context.Context, workers int, n int64, chunk func(w int, wlo, whi int64) int64) (int64, error) {
	if workers <= 1 {
		completed := chunk(0, 0, n)
		if err := ctx.Err(); err != nil {
			return completed, err
		}
		return n, nil
	}
	per := (n + int64(workers) - 1) / int64(workers)
	done := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wlo := int64(w) * per
		whi := wlo + per
		if whi > n {
			whi = n
		}
		if wlo >= whi {
			continue
		}
		wg.Add(1)
		go func(w int, wlo, whi int64) {
			defer wg.Done()
			done[w] = chunk(w, wlo, whi)
		}(w, wlo, whi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		prefix := n
		for w := 0; w < workers; w++ {
			wlo := int64(w) * per
			whi := wlo + per
			if whi > n {
				whi = n
			}
			if wlo >= whi {
				break
			}
			if done[w] < whi-wlo {
				prefix = wlo + done[w]
				break
			}
		}
		return prefix, err
	}
	return n, nil
}

// laneSet is the per-worker lane plumbing shared by both kernels: the
// model's state vector with its stable per-lane views, one pooled
// Source per lane (re-seeded per root, so the per-root substream
// contract holds without a per-root allocation), the per-lane time
// cursors and frame stacks, and the root currently simulated by each
// lane.
type laneSet struct {
	vec    stochastic.StateVec
	views  []stochastic.State
	srcs   []rng.Source
	srcPtr []*rng.Source
	t      []int // time of the step each lane is about to take
	frames [][]kframe
	root   []int   // chunk-local index of the root each lane simulates
	lsteps []int64 // steps taken for the lane's current root, flushed on completion

	active []int

	// chunk-run cursor state
	base      int64 // global index of the chunk's first root
	next      int   // next chunk-local root to assign to a freed lane
	total     int   // roots in the current chunk
	completed []bool
}

func (ls *laneSet) init(bulk stochastic.BulkProcess, lanes int) {
	ls.vec = bulk.NewStateVec(lanes)
	ls.views = ls.vec.Views()
	ls.srcs = make([]rng.Source, lanes)
	ls.srcPtr = make([]*rng.Source, lanes)
	for i := range ls.srcs {
		ls.srcPtr[i] = &ls.srcs[i]
	}
	ls.t = make([]int, lanes)
	ls.frames = make([][]kframe, lanes)
	ls.root = make([]int, lanes)
	ls.lsteps = make([]int64, lanes)
	ls.active = make([]int, 0, lanes)
}

// beginChunk resets the cursor state for a chunk of n roots starting at
// global index base.
func (ls *laneSet) beginChunk(base int64, n int) {
	ls.base = base
	ls.next = 0
	ls.total = n
	if cap(ls.completed) < n {
		ls.completed = make([]bool, n)
	} else {
		ls.completed = ls.completed[:n]
		for i := range ls.completed {
			ls.completed[i] = false
		}
	}
	ls.active = ls.active[:0]
}

// completedPrefix returns the contiguous count of finished roots from
// the chunk start (total unless the chunk was cancelled mid-flight).
func (ls *laneSet) completedPrefix() int64 {
	p := int64(0)
	for p < int64(ls.total) && ls.completed[p] {
		p++
	}
	return p
}

// gmlssKernel drives one worker's lane frontier through the g-MLSS
// tree walk. advance replicates segment's per-step bookkeeping;
// finishSegment replicates the recursion's unwinding.
type gmlssKernel struct {
	laneSet
	g         *GMLSS
	bulk      stochastic.BulkProcess
	proto     stochastic.State
	initLevel int
	initB     float64 // Boundary(initLevel+1)
	m         int
	value     ValueFunc // Query.Value, cached off the hot loop's pointer chase
	horizon   int

	curr  []int     // current level per lane
	nextB []float64 // Boundary(curr+1) per lane, fixed per segment
	out   []gmlssRoot
}

func newGMLSSKernel(g *GMLSS, bulk stochastic.BulkProcess, proto stochastic.State, initLevel, lanes int) *gmlssKernel {
	k := &gmlssKernel{
		g:         g,
		bulk:      bulk,
		proto:     proto,
		initLevel: initLevel,
		initB:     g.Plan.Boundary(initLevel + 1),
		m:         g.Plan.M(),
		value:     g.Query.Value,
		horizon:   g.Query.Horizon,
	}
	k.laneSet.init(bulk, lanes)
	k.curr = make([]int, lanes)
	k.nextB = make([]float64, lanes)
	return k
}

// runChunk simulates roots [base, base+len(out)) into out and returns
// the contiguous count of completed roots from the chunk start.
func (k *gmlssKernel) runChunk(ctx context.Context, base int64, out []gmlssRoot) int64 {
	k.out = out
	k.beginChunk(base, len(out))
	for i := 0; i < len(k.t) && k.next < k.total; i++ {
		k.startRoot(i)
		k.active = append(k.active, i)
	}
	for len(k.active) > 0 && ctx.Err() == nil {
		k.bulk.StepVec(k.vec, k.active, k.t, k.srcPtr)
		w := 0
		for _, i := range k.active {
			// The no-crossing, sub-horizon regime is inlined here: one
			// observer call, two compares, a time bump. Everything rarer
			// goes through advance.
			k.lsteps[i]++
			t := k.t[i]
			f := k.value(k.views[i], t)
			if f < k.nextB[i] && t < k.horizon {
				k.t[i] = t + 1
				k.active[w] = i
				w++
				continue
			}
			if k.advance(i, t, f) {
				k.active[w] = i
				w++
			}
		}
		k.active = k.active[:w]
	}
	return k.completedPrefix()
}

// startRoot points lane i at the next unassigned root of the chunk.
func (k *gmlssKernel) startRoot(i int) {
	local := k.next
	k.next++
	k.root[i] = local
	k.srcs[i].SeedStream(k.g.Seed, uint64(k.base+int64(local)))
	k.vec.Load(i, k.proto)
	k.curr[i] = k.initLevel
	k.nextB[i] = k.initB
	k.t[i] = 1
	k.lsteps[i] = 0
	k.frames[i] = k.frames[i][:0]
}

// advance books the cold outcomes of the step lane i just took at time
// t with observed value f — a boundary crossing or the horizon — and
// reports whether the lane still has work. runChunk's loop handles the
// hot no-crossing regime inline; by the caller's filter, reaching here
// means f >= nextB or t >= horizon.
func (k *gmlssKernel) advance(i, t int, f float64) bool {
	if f < k.nextB[i] {
		return k.finishSegment(i, false)
	}
	out := &k.out[k.root[i]]
	j := k.g.Plan.LevelOf(f)
	for lvl := k.curr[i] + 1; lvl < j; lvl++ {
		out.counters.skip[lvl]++
	}
	if j == k.m {
		out.counters.hits++
		return k.finishSegment(i, true)
	}
	out.counters.land[j]++
	ratio := k.g.ratioAt(j)
	if t >= k.horizon {
		// The split lands exactly at the horizon: every offspring's
		// time loop is empty, so none crosses and no randomness is
		// drawn. Book the zero advancement fraction directly.
		out.counters.mu[j] += 0
		out.counters.muSq[j] += 0
		return k.finishSegment(i, true)
	}
	k.frames[i] = append(k.frames[i], kframe{spill: k.vec.Save(i), t: t, level: j, ratio: ratio})
	// The first offspring continues in-lane: its state is the entrance
	// state the lane already holds.
	k.curr[i] = j
	k.nextB[i] = k.g.Plan.Boundary(j + 1)
	k.t[i] = t + 1
	return true
}

// finishSegment unwinds the frame stack after lane i's current segment
// ended (crossed tells whether it crossed its watched boundary),
// starting the next offspring or resolving finished splits, exactly as
// the scalar recursion's returns do. When the stack empties the root is
// complete and the lane takes the next root, if any.
func (k *gmlssKernel) finishSegment(i int, crossed bool) bool {
	out := &k.out[k.root[i]]
	for {
		stack := k.frames[i]
		if len(stack) == 0 {
			out.steps += k.lsteps[i]
			k.lsteps[i] = 0
			k.completed[k.root[i]] = true
			if k.next < k.total {
				k.startRoot(i)
				return true
			}
			return false
		}
		fr := &stack[len(stack)-1]
		if crossed {
			fr.crossed++
		}
		fr.done++
		if fr.done < fr.ratio {
			// Next offspring restarts from the spilled entrance state.
			k.vec.Restore(i, fr.spill)
			k.curr[i] = fr.level
			k.nextB[i] = k.g.Plan.Boundary(fr.level + 1)
			k.t[i] = fr.t + 1 // fr.t < Horizon by the push condition
			return true
		}
		frac := float64(fr.crossed) / float64(fr.ratio)
		out.counters.mu[fr.level] += frac
		out.counters.muSq[fr.level] += frac * frac
		k.vec.Drop(fr.spill)
		k.frames[i] = stack[:len(stack)-1]
		// The finished split's segment itself crossed (it landed): keep
		// unwinding as a crossing return.
		crossed = true
	}
}

// smlssKernel drives one worker's lane frontier through the s-MLSS
// tree walk.
type smlssKernel struct {
	laneSet
	s         *SMLSS
	bulk      stochastic.BulkProcess
	proto     stochastic.State
	initWatch int
	m         int
	value     ValueFunc
	horizon   int

	watch []int
	loB   []float64
	hiB   []float64
	out   []smlssRoot
}

func newSMLSSKernel(s *SMLSS, bulk stochastic.BulkProcess, proto stochastic.State, initLevel, lanes int) *smlssKernel {
	k := &smlssKernel{
		s:         s,
		bulk:      bulk,
		proto:     proto,
		initWatch: initLevel + 1,
		m:         s.Plan.M(),
		value:     s.Query.Value,
		horizon:   s.Query.Horizon,
	}
	k.laneSet.init(bulk, lanes)
	k.watch = make([]int, lanes)
	k.loB = make([]float64, lanes)
	k.hiB = make([]float64, lanes)
	return k
}

func (k *smlssKernel) runChunk(ctx context.Context, base int64, out []smlssRoot) int64 {
	k.out = out
	k.beginChunk(base, len(out))
	for i := 0; i < len(k.t) && k.next < k.total; i++ {
		k.startRoot(i)
		k.active = append(k.active, i)
	}
	for len(k.active) > 0 && ctx.Err() == nil {
		k.bulk.StepVec(k.vec, k.active, k.t, k.srcPtr)
		w := 0
		for _, i := range k.active {
			// Inline hot path: the step neither landed in the watched
			// interval (nor hit the target) nor reached the horizon.
			k.lsteps[i]++
			t := k.t[i]
			f := k.value(k.views[i], t)
			wl := k.watch[i]
			if wl == k.m {
				if f < 1 && t < k.horizon {
					k.t[i] = t + 1
					k.active[w] = i
					w++
					continue
				}
			} else if (f < k.loB[i] || f >= k.hiB[i]) && t < k.horizon {
				k.t[i] = t + 1
				k.active[w] = i
				w++
				continue
			}
			if k.advance(i, t, f) {
				k.active[w] = i
				w++
			}
		}
		k.active = k.active[:w]
	}
	return k.completedPrefix()
}

func (k *smlssKernel) startRoot(i int) {
	local := k.next
	k.next++
	k.root[i] = local
	k.srcs[i].SeedStream(k.s.Seed, uint64(k.base+int64(local)))
	k.vec.Load(i, k.proto)
	k.setWatch(i, k.initWatch)
	k.t[i] = 1
	k.lsteps[i] = 0
	k.frames[i] = k.frames[i][:0]
}

// setWatch points lane i at watch level w and caches its interval.
func (k *smlssKernel) setWatch(i, w int) {
	k.watch[i] = w
	if w < k.m {
		k.loB[i] = k.s.Plan.Boundary(w)
		k.hiB[i] = k.s.Plan.Boundary(w + 1)
	}
}

// advance books the cold outcomes for lane i at time t with value f: a
// landing, a target hit, or the horizon. runChunk's loop keeps the hot
// no-landing regime inline.
func (k *smlssKernel) advance(i, t int, f float64) bool {
	w := k.watch[i]
	if w == k.m {
		if f >= 1 {
			out := &k.out[k.root[i]]
			out.hits++
			out.entries[k.m]++
			return k.finishSegment(i)
		}
	} else if f >= k.loB[i] && f < k.hiB[i] {
		out := &k.out[k.root[i]]
		out.entries[w]++
		if t >= k.horizon {
			// Landing at the horizon: every offspring's time loop is
			// empty, so the whole subtree resolves with no randomness.
			return k.finishSegment(i)
		}
		k.frames[i] = append(k.frames[i], kframe{spill: k.vec.Save(i), t: t, level: w + 1, ratio: k.s.Ratio})
		k.setWatch(i, w+1)
		k.t[i] = t + 1
		return true
	}
	if t >= k.horizon {
		return k.finishSegment(i)
	}
	k.t[i] = t + 1
	return true
}

func (k *smlssKernel) finishSegment(i int) bool {
	for {
		stack := k.frames[i]
		if len(stack) == 0 {
			k.out[k.root[i]].steps += k.lsteps[i]
			k.lsteps[i] = 0
			k.completed[k.root[i]] = true
			if k.next < k.total {
				k.startRoot(i)
				return true
			}
			return false
		}
		fr := &stack[len(stack)-1]
		fr.done++
		if fr.done < fr.ratio {
			k.vec.Restore(i, fr.spill)
			k.setWatch(i, fr.level)
			k.t[i] = fr.t + 1
			return true
		}
		k.vec.Drop(fr.spill)
		k.frames[i] = stack[:len(stack)-1]
	}
}
