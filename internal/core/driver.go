package core

import (
	"context"
	"sync"
)

// forEachRoot runs one batch of root-path simulations in parallel.
//
// Root paths are independent (§3.1 "Parallel Computations"), so they are
// fanned out across workers; outputs land in a slice indexed by position
// so that results are bit-for-bit independent of goroutine scheduling —
// every root draws from its own PRNG substream keyed by its global index.
func forEachRoot[T any](ctx context.Context, workers int, lo, hi int64, run func(idx int64) T) ([]T, error) {
	n := hi - lo
	out := make([]T, n)
	if workers <= 1 {
		for i := int64(0); i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out[:i], err
			}
			out[i] = run(lo + i)
		}
		return out, nil
	}
	per := (n + int64(workers) - 1) / int64(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wlo := int64(w) * per
		whi := wlo + per
		if whi > n {
			whi = n
		}
		if wlo >= whi {
			continue
		}
		wg.Add(1)
		go func(wlo, whi int64) {
			defer wg.Done()
			for i := wlo; i < whi; i++ {
				if ctx.Err() != nil {
					return
				}
				out[i] = run(lo + i)
			}
		}(wlo, whi)
	}
	wg.Wait()
	return out, ctx.Err()
}
