package core

import (
	"context"
	"sync"
)

// forEachRoot runs one batch of root-path simulations in parallel.
//
// Root paths are independent (§3.1 "Parallel Computations"), so they are
// fanned out across workers; outputs land in a slice indexed by position
// so that results are bit-for-bit independent of goroutine scheduling —
// every root draws from its own PRNG substream keyed by its global index.
//
// On context cancellation the returned slice holds only completed work: it
// is truncated to the longest contiguous prefix of finished roots, exactly
// like the serial path, so callers never merge zero-valued roots into
// their counters. (Roots a later worker finished beyond the first gap are
// discarded — they were paid for but cannot be reported without leaving a
// hole in the deterministic index space.)
func forEachRoot[T any](ctx context.Context, workers int, lo, hi int64, run func(idx int64) T) ([]T, error) {
	n := hi - lo
	out := make([]T, n)
	if workers <= 1 {
		for i := int64(0); i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out[:i], err
			}
			out[i] = run(lo + i)
		}
		return out, nil
	}
	per := (n + int64(workers) - 1) / int64(workers)
	done := make([]int64, workers) // done[w]: roots worker w completed, in chunk order
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wlo := int64(w) * per
		whi := wlo + per
		if whi > n {
			whi = n
		}
		if wlo >= whi {
			done[w] = 0
			continue
		}
		wg.Add(1)
		go func(w int, wlo, whi int64) {
			defer wg.Done()
			for i := wlo; i < whi; i++ {
				if ctx.Err() != nil {
					return
				}
				out[i] = run(lo + i)
				done[w]++ // done[w] is written by this goroutine only
			}
		}(w, wlo, whi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// Truncate to the contiguous completed prefix: chunks are laid out
		// in worker order, so the prefix ends inside the first chunk that
		// did not finish.
		prefix := n
		for w := 0; w < workers; w++ {
			wlo := int64(w) * per
			whi := wlo + per
			if whi > n {
				whi = n
			}
			if wlo >= whi {
				break
			}
			if done[w] < whi-wlo {
				prefix = wlo + done[w]
				break
			}
		}
		return out[:prefix], err
	}
	return out, nil
}
