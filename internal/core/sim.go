package core

import (
	"context"

	"durability/internal/rng"
	"durability/internal/stochastic"
)

// The sim types own everything the drivers (Run, RunRootsBy, run,
// LevelEntryCounts) reuse across batches of one run: the initial-state
// prototype built by a single Proc.Initial() call and cloned per root
// (expensive initializers — neural warmup replay — run once per run,
// not once per root), the counter arenas recycled batch to batch, and,
// when the model implements stochastic.BulkProcess, one vectorized
// kernel per worker. Models without a bulk fast path run the scalar
// recursion through forEachRoot exactly as before.

// gmlssSim is the per-run simulation engine for GMLSS.
type gmlssSim struct {
	g         *GMLSS
	workers   int
	proto     stochastic.State
	initLevel int
	bulk      stochastic.BulkProcess // nil: scalar fallback
	lanes     int
	arena     counterArena
	kernels   []*gmlssKernel // one per worker slot, built lazily
}

func (g *GMLSS) newSim(workers int, proto stochastic.State, initLevel int) *gmlssSim {
	sim := &gmlssSim{g: g, workers: workers, proto: proto, initLevel: initLevel}
	sim.arena.m = g.Plan.M()
	if bp, ok := g.Proc.(stochastic.BulkProcess); ok {
		sim.bulk = bp
		sim.lanes = laneCount(g.Lanes)
		sim.kernels = make([]*gmlssKernel, workers)
	}
	return sim
}

// runRange simulates roots [lo, hi), one gmlssRoot per index. The
// returned slice's counters alias the sim's arena: callers must fold
// them before the next runRange call, which every driver does.
func (sim *gmlssSim) runRange(ctx context.Context, lo, hi int64) ([]gmlssRoot, error) {
	n := hi - lo
	counters := sim.arena.carve(int(n))
	if sim.bulk == nil {
		return forEachRoot(ctx, sim.workers, lo, hi, func(idx int64) gmlssRoot {
			r := gmlssRoot{counters: counters[idx-lo]}
			src := rng.NewStream(sim.g.Seed, uint64(idx))
			sim.g.segment(sim.proto.Clone(), 0, sim.initLevel, src, &r)
			return r
		})
	}
	out := make([]gmlssRoot, n)
	for i := range out {
		out[i].counters = counters[i]
	}
	prefix, err := runLaneChunks(ctx, sim.workers, n, func(w int, wlo, whi int64) int64 {
		k := sim.kernels[w]
		if k == nil {
			k = newGMLSSKernel(sim.g, sim.bulk, sim.proto, sim.initLevel, sim.lanes)
			sim.kernels[w] = k
		}
		return k.runChunk(ctx, lo+wlo, out[wlo:whi])
	})
	if err != nil {
		return out[:prefix], err
	}
	return out, nil
}

// smlssSim is the per-run simulation engine for SMLSS.
type smlssSim struct {
	s         *SMLSS
	workers   int
	proto     stochastic.State
	initLevel int
	bulk      stochastic.BulkProcess
	lanes     int
	arena     entryArena
	kernels   []*smlssKernel
}

func (s *SMLSS) newSim(workers int, proto stochastic.State, initLevel int) *smlssSim {
	sim := &smlssSim{s: s, workers: workers, proto: proto, initLevel: initLevel}
	sim.arena.m = s.Plan.M()
	if bp, ok := s.Proc.(stochastic.BulkProcess); ok {
		sim.bulk = bp
		sim.lanes = laneCount(s.Lanes)
		sim.kernels = make([]*smlssKernel, workers)
	}
	return sim
}

// runRange simulates roots [lo, hi). The returned roots' entries alias
// the sim's arena: fold before the next runRange call.
func (sim *smlssSim) runRange(ctx context.Context, lo, hi int64) ([]smlssRoot, error) {
	n := hi - lo
	entries := sim.arena.carve(int(n))
	if sim.bulk == nil {
		return forEachRoot(ctx, sim.workers, lo, hi, func(idx int64) smlssRoot {
			r := smlssRoot{entries: entries[idx-lo]}
			src := rng.NewStream(sim.s.Seed, uint64(idx))
			sim.s.segment(sim.proto.Clone(), 0, sim.initLevel+1, src, &r)
			return r
		})
	}
	out := make([]smlssRoot, n)
	for i := range out {
		out[i].entries = entries[i]
	}
	prefix, err := runLaneChunks(ctx, sim.workers, n, func(w int, wlo, whi int64) int64 {
		k := sim.kernels[w]
		if k == nil {
			k = newSMLSSKernel(sim.s, sim.bulk, sim.proto, sim.initLevel, sim.lanes)
			sim.kernels[w] = k
		}
		return k.runChunk(ctx, lo+wlo, out[wlo:whi])
	})
	if err != nil {
		return out[:prefix], err
	}
	return out, nil
}

func laneCount(configured int) int {
	if configured > 0 {
		return configured
	}
	return defaultLanes
}
