package core

import (
	"context"
	"testing"

	"durability/internal/mc"
	"durability/internal/stochastic"
)

// Cold-run benchmarks for the simulation kernel: one full GMLSS run per
// iteration, scalar recursion vs the vectorized bulk path, on the two
// models the acceptance bar names (GBM and random walk). scripts/profile
// drives the bulk variants under -cpuprofile/-memprofile; durbench's
// BENCH_kernel.json covers the cross-model ns/step numbers.

func benchGMLSS(proc stochastic.Process, obs stochastic.Observer, beta float64, plan Plan, horizon int) *GMLSS {
	return &GMLSS{
		Proc:          proc,
		Query:         Query{Value: ThresholdValue(obs, beta), Horizon: horizon},
		Plan:          plan,
		Ratio:         3,
		Stop:          mc.Budget{Steps: 300_000},
		Seed:          41,
		Workers:       1,
		Batch:         512,
		BootstrapReps: 1,
	}
}

func benchModels(b *testing.B) map[string]*GMLSS {
	b.Helper()
	return map[string]*GMLSS{
		"gbm": benchGMLSS(&stochastic.GBM{S0: 100, Mu: 0.002, Sigma: 0.08},
			stochastic.ScalarValue, 200, MustPlan(0.6, 0.75, 0.9), 50),
		"walk": benchGMLSS(&stochastic.RandomWalk{Start: 5, Drift: 0.2, Sigma: 2},
			stochastic.ScalarValue, 20, MustPlan(0.35, 0.5, 0.65, 0.8), 60),
		"chain": benchGMLSS(stochastic.BirthDeathChain(12, 0.45, 2),
			stochastic.ChainIndex, 9, MustPlan(4.0/9, 6.0/9, 8.0/9), 80),
	}
}

func runColdBench(b *testing.B, g *GMLSS) {
	ctx := context.Background()
	var steps int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := g.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Steps
	}
	b.StopTimer()
	if steps > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(steps), "ns/step")
	}
}

func BenchmarkGMLSSCold(b *testing.B) {
	for name, g := range benchModels(b) {
		b.Run(name+"/scalar", func(b *testing.B) {
			sg := *g
			sg.Proc = stochastic.ScalarOnly(g.Proc)
			runColdBench(b, &sg)
		})
		b.Run(name+"/bulk", func(b *testing.B) {
			runColdBench(b, g)
		})
	}
}
