package core

import (
	"context"
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"durability/internal/exact"
	"durability/internal/mc"
	"durability/internal/rng"
	"durability/internal/stochastic"
)

// The differential golden suite: every built-in model is run down the
// vectorized kernel and down the scalar recursion (via
// stochastic.ScalarOnly) and the results are compared with ==. Bulk and
// scalar runs must be bit-for-bit identical — same estimates, same
// variance trajectories, same step counts — at every worker count,
// under cancellation, and through the sharded driver.

type kernelFixture struct {
	name    string
	proc    stochastic.Process
	obs     stochastic.Observer
	beta    float64
	plan    Plan
	horizon int
	ratios  []int // optional per-level ratios (exercises ratioAt)
}

func kernelFixtures(t *testing.T) []kernelFixture {
	t.Helper()
	regime, err := stochastic.NewRegimeSwitching(0,
		[][]float64{{0.95, 0.05}, {0.2, 0.8}},
		[]float64{0.01, 0.3}, []float64{0.5, 2.0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return []kernelFixture{
		{
			name: "gbm", proc: &stochastic.GBM{S0: 100, Mu: 0.002, Sigma: 0.08},
			obs: stochastic.ScalarValue, beta: 200,
			plan: MustPlan(0.6, 0.75, 0.9), horizon: 50,
			ratios: []int{2, 3, 2},
		},
		{
			name: "walk", proc: &stochastic.RandomWalk{Start: 5, Drift: 0.2, Sigma: 2},
			obs: stochastic.ScalarValue, beta: 20,
			plan: MustPlan(0.35, 0.5, 0.65, 0.8), horizon: 60,
		},
		{
			name: "ar", proc: stochastic.NewAR([]float64{0.6, 0.3}, 1.5, 1),
			obs: stochastic.ARValue, beta: 10,
			plan: MustPlan(0.3, 0.5, 0.7, 0.9), horizon: 50,
		},
		{
			// Impulses make the value skip levels between steps, exercising
			// the skip bookkeeping on the kernel path.
			name: "cpp", proc: &stochastic.CompoundPoisson{
				U0: 10, Premium: 1, ClaimRate: 0.8, ClaimLo: 0, ClaimHi: 2,
				ImpulseProb: 0.05, ImpulseSize: 4, ImpulseAfter: 3,
			},
			obs: stochastic.ScalarValue, beta: 25,
			plan: MustPlan(0.5, 0.65, 0.8), horizon: 60,
		},
		{
			name: "chain", proc: stochastic.BirthDeathChain(12, 0.45, 2),
			obs: stochastic.ChainIndex, beta: 9,
			plan: MustPlan(4.0/9, 6.0/9, 8.0/9), horizon: 80,
		},
		{
			name: "regime", proc: regime,
			obs: stochastic.RegimeValue, beta: 15,
			plan: MustPlan(0.25, 0.5, 0.75), horizon: 50,
		},
		{
			name: "queue", proc: &stochastic.TandemQueue{
				ArrivalRate: 0.5, ServiceRate1: 0.5, ServiceRate2: 0.5,
				ImpulseProb: 0.1, ImpulseSize: 3, ImpulseAfter: 2,
			},
			obs: stochastic.Queue2Len, beta: 8,
			plan: MustPlan(0.25, 0.5, 0.75), horizon: 60,
		},
	}
}

func (fx kernelFixture) gmlss(proc stochastic.Process, workers int) *GMLSS {
	return &GMLSS{
		Proc:          proc,
		Query:         Query{Value: ThresholdValue(fx.obs, fx.beta), Horizon: fx.horizon},
		Plan:          fx.plan,
		Ratio:         3,
		Ratios:        fx.ratios,
		Stop:          mc.Budget{Steps: 30_000},
		Seed:          41,
		Workers:       workers,
		Batch:         64,
		BootstrapReps: 25,
	}
}

func (fx kernelFixture) smlss(proc stochastic.Process, workers int) *SMLSS {
	return &SMLSS{
		Proc:    proc,
		Query:   Query{Value: ThresholdValue(fx.obs, fx.beta), Horizon: fx.horizon},
		Plan:    fx.plan,
		Ratio:   3,
		Stop:    mc.Budget{Steps: 30_000},
		Seed:    41,
		Workers: workers,
		Batch:   64,
	}
}

// stripTimes zeroes the wall-clock fields, the only ones allowed to
// differ between a bulk and a scalar run.
func stripTimes(r mc.Result) mc.Result {
	r.Elapsed, r.VarTime = 0, 0
	return r
}

func TestKernelMatchesScalarGMLSS(t *testing.T) {
	for _, fx := range kernelFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			if _, ok := fx.proc.(stochastic.BulkProcess); !ok {
				t.Fatalf("%s does not implement BulkProcess", fx.name)
			}
			scalar, err := fx.gmlss(stochastic.ScalarOnly(fx.proc), 1).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if scalar.Hits == 0 {
				t.Fatalf("fixture too rare: no hits in scalar run")
			}
			for _, workers := range []int{1, 2, 3} {
				bulk, err := fx.gmlss(fx.proc, workers).Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if got, want := stripTimes(bulk), stripTimes(scalar); got != want {
					t.Errorf("workers=%d: bulk %+v != scalar %+v", workers, got, want)
				}
			}
		})
	}
}

func TestKernelMatchesScalarSMLSS(t *testing.T) {
	for _, fx := range kernelFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			scalarRes, scalarEntries, err := fx.smlss(stochastic.ScalarOnly(fx.proc), 1).Trial(context.Background(), 30_000)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 3} {
				bulkRes, bulkEntries, err := fx.smlss(fx.proc, workers).Trial(context.Background(), 30_000)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := stripTimes(bulkRes), stripTimes(scalarRes); got != want {
					t.Errorf("workers=%d: bulk %+v != scalar %+v", workers, got, want)
				}
				if !reflect.DeepEqual(bulkEntries, scalarEntries) {
					t.Errorf("workers=%d: entries %v != %v", workers, bulkEntries, scalarEntries)
				}
			}
		})
	}
}

// TestKernelMatchesScalarShards runs the sharded driver down both paths
// and compares the full ShardResult — counters, groups, and costs — for
// several shard cuts, including ranges that do not start at zero.
func TestKernelMatchesScalarShards(t *testing.T) {
	for _, fx := range kernelFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			for _, r := range []struct{ lo, hi int64 }{{0, 300}, {137, 402}} {
				scalar, err := fx.gmlss(stochastic.ScalarOnly(fx.proc), 1).RunRootsBy(context.Background(), r.lo, r.hi, 64)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 3} {
					bulk, err := fx.gmlss(fx.proc, workers).RunRootsBy(context.Background(), r.lo, r.hi, 64)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(bulk, scalar) {
						t.Errorf("range [%d,%d) workers=%d: bulk shard result differs from scalar", r.lo, r.hi, workers)
					}
				}
			}
		})
	}
}

// TestKernelCancelBetweenBatches cancels synchronously from the Trace
// callback, so both paths observe the cancellation at the same batch
// boundary: the partial results must still be bit-for-bit equal.
func TestKernelCancelBetweenBatches(t *testing.T) {
	fx := kernelFixtures(t)[0]
	run := func(proc stochastic.Process, workers int) mc.Result {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		g := fx.gmlss(proc, workers)
		g.Stop = mc.Budget{Steps: math.MaxInt64}
		g.Trace = func(r mc.Result) {
			if r.Paths >= 256 {
				cancel()
			}
		}
		res, err := g.Run(ctx)
		if err != context.Canceled {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		return res
	}
	scalar := run(stochastic.ScalarOnly(fx.proc), 1)
	for _, workers := range []int{1, 2, 3} {
		bulk := run(fx.proc, workers)
		if got, want := stripTimes(bulk), stripTimes(scalar); got != want {
			t.Errorf("workers=%d: cancelled bulk %+v != scalar %+v", workers, got, want)
		}
	}
}

// TestKernelCancelMidBatch cancels from inside the value function, so
// the kernel is interrupted with lanes mid-root. Wherever it stops, the
// returned result must cover a contiguous prefix of root indices whose
// statistics match an uncancelled scalar run over exactly that prefix.
func TestKernelCancelMidBatch(t *testing.T) {
	fx := kernelFixtures(t)[1]
	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		g := fx.gmlss(fx.proc, workers)
		g.Stop = mc.Budget{Steps: math.MaxInt64}
		// Small batches so several have completed before the cancel lands
		// mid-flight (the kernel keeps a whole lane frontier of roots
		// in-progress at once, so a cancel early in the first batch can
		// legitimately complete zero roots).
		g.Batch = 16
		var evals int64
		inner := g.Query.Value
		g.Query.Value = func(s stochastic.State, t int) float64 {
			if atomic.AddInt64(&evals, 1) == 100_000 {
				cancel()
			}
			return inner(s, t)
		}
		res, err := g.Run(ctx)
		cancel()
		if err != context.Canceled {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if res.Paths == 0 {
			t.Fatalf("workers=%d: no completed prefix before cancellation", workers)
		}
		// Replay the prefix scalar and uncancelled: a single group keeps
		// the fold order identical to Run's batch folds.
		ref := fx.gmlss(stochastic.ScalarOnly(fx.proc), 1)
		shard, err := ref.RunRootsBy(context.Background(), 0, res.Paths, int(res.Paths))
		if err != nil {
			t.Fatal(err)
		}
		m := fx.plan.M()
		initLevel := fx.plan.LevelOf(g.Query.Value(fx.proc.Initial(), 0))
		if got, want := res.P, EstimateFromCounters(shard.Agg, res.Paths, m, initLevel); got != want {
			t.Errorf("workers=%d: prefix estimate %v != scalar replay %v", workers, got, want)
		}
		if got, want := res.Hits, int64(shard.Agg.Hits); got != want {
			t.Errorf("workers=%d: prefix hits %d != scalar replay %d", workers, got, want)
		}
		if got, want := res.Steps, shard.Steps; got != want {
			t.Errorf("workers=%d: prefix steps %d != scalar replay %d", workers, got, want)
		}
	}
}

// TestKernelStatisticalSanity checks the kernel against ground truth:
// for the birth-death chain the exact hitting probability is computable
// (internal/exact), and the bulk estimate must land within five
// standard errors.
func TestKernelStatisticalSanity(t *testing.T) {
	fx := kernelFixtures(t)[4] // chain
	g := fx.gmlss(fx.proc, 2)
	g.Stop = mc.Budget{Steps: 400_000}
	res, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.LatticeWalkHit(map[int]float64{+1: 0.45, -1: 0.55}, 2, 9, fx.horizon, 0)
	if err != nil {
		t.Fatal(err)
	}
	se := math.Sqrt(res.Variance)
	if diff := math.Abs(res.P - want); diff > 5*se {
		t.Fatalf("estimate %v vs exact %v: |diff| %v > 5*se %v", res.P, want, diff, 5*se)
	}
}

// countingInit counts Initial() calls while preserving (or hiding) the
// bulk fast path, depending on the wrapper used.
type countingInit struct {
	stochastic.Process
	n *atomic.Int64
}

func (c countingInit) Initial() stochastic.State {
	c.n.Add(1)
	return c.Process.Initial()
}

type countingBulkInit struct {
	countingInit
	bulk stochastic.BulkProcess
}

func (c countingBulkInit) NewStateVec(lanes int) stochastic.StateVec {
	return c.bulk.NewStateVec(lanes)
}
func (c countingBulkInit) StepVec(v stochastic.StateVec, lanes []int, t []int, src []*rng.Source) {
	c.bulk.StepVec(v, lanes, t, src)
}

// TestInitialCalledOncePerRun pins the pooled-prototype contract: a run
// builds the initial state exactly once, however many roots it
// simulates, on the scalar path and the bulk path alike. Expensive
// initializers (neural warmup replay) must not re-run per root.
func TestInitialCalledOncePerRun(t *testing.T) {
	fx := kernelFixtures(t)[1]
	t.Run("scalar", func(t *testing.T) {
		var n atomic.Int64
		g := fx.gmlss(countingInit{Process: stochastic.ScalarOnly(fx.proc), n: &n}, 2)
		if _, err := g.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if got := n.Load(); got != 1 {
			t.Fatalf("scalar path called Initial %d times, want 1", got)
		}
	})
	t.Run("bulk", func(t *testing.T) {
		var n atomic.Int64
		bp := fx.proc.(stochastic.BulkProcess)
		proc := countingBulkInit{countingInit: countingInit{Process: fx.proc, n: &n}, bulk: bp}
		if _, ok := stochastic.Process(proc).(stochastic.BulkProcess); !ok {
			t.Fatal("countingBulkInit lost the bulk fast path")
		}
		g := fx.gmlss(proc, 2)
		if _, err := g.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if got := n.Load(); got != 1 {
			t.Fatalf("bulk path called Initial %d times, want 1", got)
		}
	})
}

// TestNewLevelCountersSingleAlloc pins the flattened counter layout:
// one backing array, not four.
func TestNewLevelCountersSingleAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		c := newLevelCounters(6)
		c.hits++
	})
	if allocs > 1 {
		t.Fatalf("newLevelCounters allocates %v times, want 1", allocs)
	}
}

// TestKernelAllocsPerRoot pins the pooling work: a bulk sharded run
// must allocate O(1), not O(roots) — the arena, the lane vectors and
// the result slices, amortized over thousands of roots.
func TestKernelAllocsPerRoot(t *testing.T) {
	fx := kernelFixtures(t)[1]
	g := fx.gmlss(fx.proc, 1)
	ctx := context.Background()
	const roots = 2000
	if _, err := g.RunRootsBy(ctx, 0, roots, 512); err != nil {
		t.Fatal(err) // warm up any lazy globals
	}
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := g.RunRootsBy(ctx, 0, roots, 512); err != nil {
			t.Fatal(err)
		}
	})
	// The budget covers the per-call fixed costs (kernel, lane vectors,
	// frame-stack and spill growth, arena, bootstrap groups) — roughly
	// 250 — and must not scale with the 2000 roots: the scalar path's
	// per-root state would alone cost >= 2 allocations per root.
	if allocs > 600 {
		t.Fatalf("bulk path allocates %v times for %d roots, want O(1) per run", allocs, roots)
	}
}
