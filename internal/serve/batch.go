package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"durability/internal/core"
	"durability/internal/exec"
	"durability/internal/mc"
	"durability/internal/opt"
	"durability/internal/stochastic"
	"durability/internal/telemetry"
)

// DefaultRatioCap bounds the per-level splitting ratio a covering plan may
// assign (see opt.CoverOptions.RatioCap).
const DefaultRatioCap = 8

// MaxBatchThresholds bounds one batch's distinct thresholds — the covering
// plan carries one boundary per threshold, and an unbounded lattice would
// let one request allocate an arbitrarily deep level structure.
const MaxBatchThresholds = 256

// BatchSpec is one fully resolved batch: a set of thresholds over a single
// (model, observer, horizon) shape, answered by one shared splitting run.
type BatchSpec struct {
	Proc       stochastic.Process
	Obs        stochastic.Observer
	ModelID    string
	ObserverID string

	Betas   []float64 // the threshold lattice; order is preserved in results
	Horizon int

	Ratio      int // base splitting ratio (probe fallback; default levels)
	RatioCap   int // per-level ratio bound (0 = DefaultRatioCap)
	Seed       uint64
	SimWorkers int

	// Stop is the per-threshold quality target: the shared run continues
	// until every threshold's running prefix estimate satisfies it.
	Stop mc.Any

	// Trace, when set, observes the shared run's progress after every
	// round through the top (hardest) threshold's running result — there
	// is one run, so there is one trace, not one per threshold.
	Trace func(mc.Result)
}

func (s *BatchSpec) validate() error {
	if s.Proc == nil {
		return errors.New("serve: batch spec has no process")
	}
	if s.Obs == nil {
		return errors.New("serve: batch spec has no observer")
	}
	if len(s.Betas) == 0 {
		return errors.New("serve: batch spec has no thresholds")
	}
	for _, b := range s.Betas {
		if b <= 0 {
			return fmt.Errorf("serve: threshold %v must be positive", b)
		}
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("serve: horizon %d must be positive", s.Horizon)
	}
	if s.Ratio < 1 {
		return fmt.Errorf("serve: splitting ratio %d must be >= 1", s.Ratio)
	}
	if len(s.Stop) == 0 {
		return errors.New("serve: batch spec has no stopping rule")
	}
	return nil
}

func (s *BatchSpec) ratioCap() int {
	if s.RatioCap <= 0 {
		return DefaultRatioCap
	}
	return s.RatioCap
}

// BatchMeta reports how a batch was executed.
type BatchMeta struct {
	Plan        core.Plan // the covering plan (boundaries + per-level ratios)
	SearchSteps int64     // simulator invocations this call spent on the covering search
	CacheHit    bool      // true when the covering plan came from the cache
	SharedSteps int64     // simulator invocations of the shared sampling run
	Thresholds  int       // distinct thresholds the run answered
}

// distinctBetas returns the sorted distinct thresholds and, for every
// position of the original slice, the index of its distinct value.
func distinctBetas(betas []float64) (distinct []float64, posToDistinct []int) {
	distinct = append([]float64(nil), betas...)
	sort.Float64s(distinct)
	n := 0
	for i, b := range distinct {
		if i == 0 || b != distinct[n-1] {
			distinct[n] = b
			n++
		}
	}
	distinct = distinct[:n]
	posToDistinct = make([]int, len(betas))
	for i, b := range betas {
		posToDistinct[i] = sort.SearchFloat64s(distinct, b)
	}
	return distinct, posToDistinct
}

// requiredRatios normalizes every threshold below the top onto the value
// scale of the top threshold — the boundaries a covering plan must carry.
func requiredRatios(distinct []float64) []float64 {
	betaMax := distinct[len(distinct)-1]
	out := make([]float64, 0, len(distinct)-1)
	for _, b := range distinct[:len(distinct)-1] {
		out = append(out, b/betaMax)
	}
	return out
}

// ratioSetTag canonically encodes a required-ratio set for PlanKey.Set.
// Exact float encoding, deliberately: the required boundaries are part of
// the estimator (each threshold is read off its own boundary), so two
// batches may share a cached covering plan only when their ladders
// normalize to bit-identical ratios.
func ratioSetTag(ratios []float64) string {
	var b strings.Builder
	for i, r := range ratios {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(r, 'g', -1, 64))
	}
	return b.String()
}

// coverSearchFunc builds the covering-plan search for the spec at the
// given top threshold and seed.
func (s *BatchSpec) coverSearchFunc(beta float64, required []float64, seed uint64) SearchFunc {
	return func(ctx context.Context) (core.Plan, int64, error) {
		problem := &opt.Problem{
			Proc:    s.Proc,
			Query:   core.Query{Value: core.ThresholdValue(s.Obs, beta), Horizon: s.Horizon},
			Ratio:   s.Ratio,
			Seed:    seed,
			Workers: s.SimWorkers,
		}
		res, err := opt.Cover(ctx, problem, required, opt.CoverOptions{RatioCap: s.ratioCap()})
		return res.Plan, res.SearchSteps, err
	}
}

// RunBatch answers a whole threshold lattice with one shared g-MLSS run:
// it resolves a covering level plan whose boundaries include every
// requested threshold (through the plan cache when the runner has one,
// keyed by the threshold-set bucket), executes a single run through the
// execution backend, and derives each threshold's estimate and confidence
// interval from the shared per-level counters. Results align with
// s.Betas; duplicate thresholds share one answer. Each result's Steps and
// Paths are the shared run's totals (see exec.SampleBatch); the batch's
// cost is SharedSteps + SearchSteps, counted once in the meta.
func (r *Runner) RunBatch(ctx context.Context, s BatchSpec) ([]mc.Result, BatchMeta, error) {
	if err := s.validate(); err != nil {
		return nil, BatchMeta{}, err
	}
	distinct, posToDistinct := distinctBetas(s.Betas)
	if len(distinct) > MaxBatchThresholds {
		return nil, BatchMeta{}, fmt.Errorf("serve: batch has %d distinct thresholds (max %d)", len(distinct), MaxBatchThresholds)
	}
	betaMax := distinct[len(distinct)-1]
	required := requiredRatios(distinct)

	// Resolve the covering plan. Cached searches run at the bucket's
	// representative top threshold with a key-derived seed — but always
	// with this batch's exact required ratios (they are in the key), so
	// the cached plan is a pure function of the key and still carries
	// every boundary this batch reads an answer from.
	var (
		plan     core.Plan
		meta     BatchMeta
		coverKey PlanKey
		haveKey  bool
	)
	if r.Cache == nil {
		began := telemetry.Now()
		p, steps, err := s.coverSearchFunc(betaMax, required, s.Seed)(ctx)
		meta.SearchSteps = steps
		r.Trace.Observe(telemetry.StagePlanSearch, telemetry.Since(began), steps)
		if err != nil {
			return nil, meta, err
		}
		plan = p
	} else {
		key := r.Cache.Key(s.ModelID, s.ObserverID, betaMax, s.Horizon, s.Ratio, fmt.Sprintf("cover(%d)", s.ratioCap()), 0)
		key.Set = ratioSetTag(required)
		began := telemetry.Now()
		p, steps, hit, err := r.Cache.GetOrSearch(ctx, key, s.coverSearchFunc(r.Cache.RepresentativeBeta(betaMax), required, planSeed(key)))
		meta.SearchSteps = steps
		// Same exactness convention as ResolvePlan: only the searching
		// caller carries steps, so stage steps sum to the cache counter.
		stage := telemetry.StagePlanSearch
		if steps == 0 {
			stage = telemetry.StagePlanCache
		}
		r.Trace.Observe(stage, telemetry.Since(began), steps)
		if err != nil {
			return nil, meta, err
		}
		plan, meta.CacheHit = p, hit
		coverKey, haveKey = key, true
	}
	meta.Plan = plan
	meta.Thresholds = len(distinct)

	// Ledger booking rides the covering key (Set included), so every
	// batch sharing the lattice shape accumulates into one entry; without
	// a cache no key exists and the run books nothing.
	var book func(agg core.Counters, roots, steps int64)
	if haveKey {
		book = r.bookRun(coverKey, plan, s.Ratio)
	}

	// Locate every threshold's boundary in the covering plan.
	targets := make([]exec.BatchTarget, len(distinct))
	for i, ratio := range required {
		lvl := plan.LevelOf(ratio)
		if lvl < 1 || lvl >= plan.M() || plan.Boundary(lvl) != ratio {
			return nil, meta, fmt.Errorf("serve: covering plan lost required boundary %v", ratio)
		}
		targets[i] = exec.BatchTarget{Level: lvl, Stop: s.Stop}
	}
	targets[len(distinct)-1] = exec.BatchTarget{Level: plan.M(), Stop: s.Stop}

	ex := r.Exec
	if ex == nil {
		ex = exec.Local{}
	}
	sp := r.Trace.Start(telemetry.StageExec)
	distinctRes, err := exec.SampleBatch(ctx, ex, exec.Task{
		Proc:       s.Proc,
		Obs:        s.Obs,
		Model:      s.ModelID,
		Observer:   s.ObserverID,
		Beta:       betaMax,
		Horizon:    s.Horizon,
		Boundaries: plan.Boundaries,
		Ratio:      s.Ratio,
		Ratios:     plan.Ratios,
		Seed:       s.Seed,
		SimWorkers: s.SimWorkers,
	}, targets, exec.SampleOptions{Stop: s.Stop, Trace: s.Trace, BatchRoots: r.ExecBatchRoots, Tracer: r.Trace, Counters: book})
	if len(distinctRes) > 0 {
		meta.SharedSteps = distinctRes[0].Steps
	}
	// The shared run's steps are the exact quantity answerBatch books into
	// the server's sampleSteps counter, failed runs included.
	sp.AddSteps(meta.SharedSteps)
	sp.End()
	if err != nil {
		return nil, meta, err
	}
	results := make([]mc.Result, len(s.Betas))
	for i, di := range posToDistinct {
		results[i] = distinctRes[di]
	}
	return results, meta, nil
}
