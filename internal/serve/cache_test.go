package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"durability/internal/core"
)

func TestBucketBeta(t *testing.T) {
	c := NewPlanCache(0.10)
	if c.BucketBeta(100) != c.BucketBeta(102) {
		t.Error("thresholds 2% apart landed in different buckets")
	}
	if c.BucketBeta(100) == c.BucketBeta(150) {
		t.Error("thresholds 50% apart shared a bucket")
	}
	// Relative bucketing: the same 10% spread groups together at any scale.
	if c.BucketBeta(1e-6) != c.BucketBeta(1.02e-6) {
		t.Error("small thresholds 2% apart landed in different buckets")
	}
	if c.BucketBeta(0) != c.BucketBeta(-3) {
		t.Error("non-positive thresholds should share the sentinel bucket")
	}
}

func TestPlanCacheSingleFlight(t *testing.T) {
	c := NewPlanCache(0)
	key := c.Key("walk", "value", 8, 100, 3, "greedy", 0)
	var searches atomic.Int64
	release := make(chan struct{})
	search := func(ctx context.Context) (core.Plan, int64, error) {
		searches.Add(1)
		<-release
		return core.MustPlan(0.5), 1234, nil
	}

	const n = 16
	var wg sync.WaitGroup
	var hits, paid atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			plan, steps, hit, err := c.GetOrSearch(context.Background(), key, search)
			if err != nil {
				t.Error(err)
				return
			}
			if len(plan.Boundaries) != 1 || plan.Boundaries[0] != 0.5 {
				t.Errorf("wrong plan %v", plan)
			}
			if hit {
				hits.Add(1)
			}
			if steps > 0 {
				paid.Add(steps)
			}
		}()
	}
	// Let every goroutine reach the cache before the search completes, then
	// release it: all sixteen must share the single in-flight search.
	close(release)
	wg.Wait()

	if got := searches.Load(); got != 1 {
		t.Fatalf("%d searches for %d concurrent queries of one shape, want 1", got, n)
	}
	if hits.Load() != n-1 {
		t.Fatalf("%d hits, want %d", hits.Load(), n-1)
	}
	if paid.Load() != 1234 {
		t.Fatalf("search steps charged %d times over, want once", paid.Load()/1234)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Misses != 1 || st.Hits != n-1 || st.SearchSteps != 1234 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPlanCacheEvictsFailedSearch(t *testing.T) {
	c := NewPlanCache(0)
	key := c.Key("walk", "value", 8, 100, 3, "greedy", 0)
	boom := errors.New("boom")
	_, _, _, err := c.GetOrSearch(context.Background(), key, func(context.Context) (core.Plan, int64, error) {
		return core.Plan{}, 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Peek(key); ok {
		t.Fatal("failed search left a cache entry")
	}
	// The key must be retryable.
	plan, _, hit, err := c.GetOrSearch(context.Background(), key, func(context.Context) (core.Plan, int64, error) {
		return core.MustPlan(0.25), 10, nil
	})
	if err != nil || hit || len(plan.Boundaries) != 1 {
		t.Fatalf("retry after failure: plan=%v hit=%v err=%v", plan, hit, err)
	}
	if p, ok := c.Peek(key); !ok || p.Boundaries[0] != 0.25 {
		t.Fatalf("Peek after fill: %v %v", p, ok)
	}
}

// fill inserts a completed plan for key via a trivial search.
func fill(t *testing.T, c *PlanCache, key PlanKey, boundary float64) {
	t.Helper()
	_, _, _, err := c.GetOrSearch(context.Background(), key, func(context.Context) (core.Plan, int64, error) {
		return core.MustPlan(boundary), 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(0, WithCacheCapacity(2))
	keys := []PlanKey{
		c.Key("walk", "value", 8, 100, 3, "greedy", 0),
		c.Key("walk", "value", 8, 200, 3, "greedy", 0),
		c.Key("walk", "value", 8, 300, 3, "greedy", 0),
	}
	fill(t, c, keys[0], 0.25)
	fill(t, c, keys[1], 0.5)
	// Touch keys[0] so keys[1] becomes the least recently used.
	if _, _, hit, _ := c.GetOrSearch(context.Background(), keys[0], nil); !hit {
		t.Fatal("expected hit on resident key")
	}
	fill(t, c, keys[2], 0.75)

	if _, ok := c.Peek(keys[1]); ok {
		t.Fatal("least recently used plan survived past the cap")
	}
	for _, k := range []PlanKey{keys[0], keys[2]} {
		if _, ok := c.Peek(k); !ok {
			t.Fatalf("recently used plan %v was evicted", k)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want 2 entries and 1 eviction", st)
	}
	// The evicted key is re-searchable.
	fill(t, c, keys[1], 0.5)
	if st := c.Stats(); st.Evictions != 2 || st.Entries != 2 {
		t.Fatalf("stats after refill %+v", st)
	}
}

func TestPlanCacheUncapped(t *testing.T) {
	c := NewPlanCache(0, WithCacheCapacity(-1))
	for h := 1; h <= 2*DefaultPlanCacheCap; h++ {
		fill(t, c, c.Key("walk", "value", 8, h, 3, "greedy", 0), 0.5)
	}
	if st := c.Stats(); st.Evictions != 0 || st.Entries != 2*DefaultPlanCacheCap {
		t.Fatalf("uncapped cache evicted: %+v", st)
	}
}

func TestPlanCacheInvalidate(t *testing.T) {
	c := NewPlanCache(0)
	walk := c.Key("walk", "value", 8, 100, 3, "greedy", 0)
	gbm := c.Key("gbm", "value", 8, 100, 3, "greedy", 0)
	fill(t, c, walk, 0.25)
	fill(t, c, gbm, 0.5)

	n := c.Invalidate(func(k PlanKey) bool { return k.Model == "walk" })
	if n != 1 {
		t.Fatalf("invalidated %d entries, want 1", n)
	}
	if _, ok := c.Peek(walk); ok {
		t.Fatal("invalidated plan still resident")
	}
	if _, ok := c.Peek(gbm); !ok {
		t.Fatal("unrelated plan was dropped")
	}
	if st := c.Stats(); st.Invalidated != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Invalidation racing an in-flight search: the search's result must not
	// be resurrected into the cache, but single-flight keeps holding until
	// the doomed search completes — a waiter gets its result rather than
	// starting a duplicate search.
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.GetOrSearch(context.Background(), walk, func(context.Context) (core.Plan, int64, error) {
			close(started)
			<-release
			return core.MustPlan(0.75), 1, nil
		})
	}()
	<-started
	c.Invalidate(func(k PlanKey) bool { return k.Model == "walk" })
	waited := make(chan core.Plan, 1)
	go func() {
		plan, _, _, err := c.GetOrSearch(context.Background(), walk, func(context.Context) (core.Plan, int64, error) {
			t.Error("waiter started a duplicate search for a doomed in-flight key")
			return core.Plan{}, 0, nil
		})
		if err != nil {
			t.Error(err)
		}
		waited <- plan
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter block on the in-flight entry
	close(release)
	<-done
	if plan := <-waited; len(plan.Boundaries) != 1 || plan.Boundaries[0] != 0.75 {
		t.Fatalf("waiter got %v, want the doomed search's plan", plan)
	}
	if _, ok := c.Peek(walk); ok {
		t.Fatal("search finishing after invalidation re-inserted its plan")
	}
}

func TestStartBucketSeparatesKeys(t *testing.T) {
	c := NewPlanCache(0)
	a := c.Key("walk", "value", 8, 100, 3, "greedy", 0)
	b := c.Key("walk", "value", 8, 100, 3, "greedy", 2)
	if a == b {
		t.Fatal("distinct start buckets produced the same plan key")
	}
	if planSeed(a) == planSeed(b) {
		t.Fatal("distinct start buckets share a search seed")
	}
}

func TestPlanCacheWaiterRespectsContext(t *testing.T) {
	c := NewPlanCache(0)
	key := c.Key("walk", "value", 8, 100, 3, "greedy", 0)
	started := make(chan struct{})
	release := make(chan struct{})
	go c.GetOrSearch(context.Background(), key, func(context.Context) (core.Plan, int64, error) {
		close(started)
		<-release
		return core.MustPlan(0.5), 1, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := c.GetOrSearch(ctx, key, func(context.Context) (core.Plan, int64, error) {
		t.Error("cancelled waiter ran a second search")
		return core.Plan{}, 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
}
