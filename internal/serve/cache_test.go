package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"durability/internal/core"
)

func TestBucketBeta(t *testing.T) {
	c := NewPlanCache(0.10)
	if c.BucketBeta(100) != c.BucketBeta(102) {
		t.Error("thresholds 2% apart landed in different buckets")
	}
	if c.BucketBeta(100) == c.BucketBeta(150) {
		t.Error("thresholds 50% apart shared a bucket")
	}
	// Relative bucketing: the same 10% spread groups together at any scale.
	if c.BucketBeta(1e-6) != c.BucketBeta(1.02e-6) {
		t.Error("small thresholds 2% apart landed in different buckets")
	}
	if c.BucketBeta(0) != c.BucketBeta(-3) {
		t.Error("non-positive thresholds should share the sentinel bucket")
	}
}

func TestPlanCacheSingleFlight(t *testing.T) {
	c := NewPlanCache(0)
	key := c.Key("walk", "value", 8, 100, 3, "greedy")
	var searches atomic.Int64
	release := make(chan struct{})
	search := func(ctx context.Context) (core.Plan, int64, error) {
		searches.Add(1)
		<-release
		return core.MustPlan(0.5), 1234, nil
	}

	const n = 16
	var wg sync.WaitGroup
	var hits, paid atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			plan, steps, hit, err := c.GetOrSearch(context.Background(), key, search)
			if err != nil {
				t.Error(err)
				return
			}
			if len(plan.Boundaries) != 1 || plan.Boundaries[0] != 0.5 {
				t.Errorf("wrong plan %v", plan)
			}
			if hit {
				hits.Add(1)
			}
			if steps > 0 {
				paid.Add(steps)
			}
		}()
	}
	// Let every goroutine reach the cache before the search completes, then
	// release it: all sixteen must share the single in-flight search.
	close(release)
	wg.Wait()

	if got := searches.Load(); got != 1 {
		t.Fatalf("%d searches for %d concurrent queries of one shape, want 1", got, n)
	}
	if hits.Load() != n-1 {
		t.Fatalf("%d hits, want %d", hits.Load(), n-1)
	}
	if paid.Load() != 1234 {
		t.Fatalf("search steps charged %d times over, want once", paid.Load()/1234)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Misses != 1 || st.Hits != n-1 || st.SearchSteps != 1234 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPlanCacheEvictsFailedSearch(t *testing.T) {
	c := NewPlanCache(0)
	key := c.Key("walk", "value", 8, 100, 3, "greedy")
	boom := errors.New("boom")
	_, _, _, err := c.GetOrSearch(context.Background(), key, func(context.Context) (core.Plan, int64, error) {
		return core.Plan{}, 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Peek(key); ok {
		t.Fatal("failed search left a cache entry")
	}
	// The key must be retryable.
	plan, _, hit, err := c.GetOrSearch(context.Background(), key, func(context.Context) (core.Plan, int64, error) {
		return core.MustPlan(0.25), 10, nil
	})
	if err != nil || hit || len(plan.Boundaries) != 1 {
		t.Fatalf("retry after failure: plan=%v hit=%v err=%v", plan, hit, err)
	}
	if p, ok := c.Peek(key); !ok || p.Boundaries[0] != 0.25 {
		t.Fatalf("Peek after fill: %v %v", p, ok)
	}
}

func TestPlanCacheWaiterRespectsContext(t *testing.T) {
	c := NewPlanCache(0)
	key := c.Key("walk", "value", 8, 100, 3, "greedy")
	started := make(chan struct{})
	release := make(chan struct{})
	go c.GetOrSearch(context.Background(), key, func(context.Context) (core.Plan, int64, error) {
		close(started)
		<-release
		return core.MustPlan(0.5), 1, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := c.GetOrSearch(ctx, key, func(context.Context) (core.Plan, int64, error) {
		t.Error("cancelled waiter ran a second search")
		return core.Plan{}, 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
}
