package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"durability/internal/exec"
	"durability/internal/mc"
	"durability/internal/planstats"
	"durability/internal/stochastic"
	"durability/internal/telemetry"
)

// ModelFactory rebuilds a model and its named observers, reusing the
// registry idiom of internal/cluster: processes are not serialisable (they
// may hold neural networks), so only names travel over the wire and every
// server constructs models locally from registered factories.
type ModelFactory func() (stochastic.Process, map[string]stochastic.Observer, error)

// Registry maps model names to factories.
type Registry map[string]ModelFactory

// Request is one durability query as a front end submits it.
type Request struct {
	Model    string  `json:"model"`
	Observer string  `json:"observer,omitempty"` // default "value"
	Beta     float64 `json:"beta"`
	Horizon  int     `json:"horizon"`

	Method string  `json:"method,omitempty"` // "g-mlss" (default) | "s-mlss" | "srs"
	RelErr float64 `json:"re,omitempty"`     // relative-error target (default: server's)
	Budget int64   `json:"budget,omitempty"` // step budget (capped by the server's MaxBudget)
	Ratio  int     `json:"ratio,omitempty"`  // splitting ratio (default 3)
	Seed   uint64  `json:"seed,omitempty"`   // 0 selects the server seed
}

// Response is the answer to one Request.
type Response struct {
	P       float64 `json:"p"`
	StdErr  float64 `json:"stderr"`
	RelErr  float64 `json:"relErr"`
	CILo    float64 `json:"ciLo"` // 95% confidence interval
	CIHi    float64 `json:"ciHi"`
	Steps   int64   `json:"steps"` // includes search steps when this query paid them
	Paths   int64   `json:"paths"`
	Hits    int64   `json:"hits"`
	Elapsed float64 `json:"elapsedSec"`

	Method      string    `json:"method"`
	Plan        []float64 `json:"plan,omitempty"`
	SearchSteps int64     `json:"searchSteps"`
	PlanCached  bool      `json:"planCached"`
}

// Config tunes a Server.
type Config struct {
	// PoolWorkers is the number of queries executed concurrently
	// (default: GOMAXPROCS).
	PoolWorkers int
	// QueueDepth bounds the admission queue; a query arriving while the
	// queue is full is rejected immediately with ErrOverloaded
	// (default 64).
	QueueDepth int
	// SimWorkers is the per-query simulation parallelism (default 1; keep
	// it low when PoolWorkers already saturates the machine).
	SimWorkers int
	// QueryTimeout is the per-query deadline enforced on top of the
	// caller's context (0 = none).
	QueryTimeout time.Duration
	// MaxBudget caps any single query's simulator invocations
	// (default 200_000_000).
	MaxBudget int64
	// DefaultRelErr is the quality target applied when a request names
	// neither a relative-error target nor a budget (default 0.10, the
	// paper's setting).
	DefaultRelErr float64
	// Seed is the base random seed used when a request does not fix one.
	Seed uint64
	// BetaBucketWidth is the plan cache's relative threshold-bucket width
	// (default DefaultBetaBucketWidth).
	BetaBucketWidth float64
	// PlanCacheCap caps the number of completed plans kept resident
	// (default DefaultPlanCacheCap; negative removes the cap).
	PlanCacheCap int
	// Executor, when set, is the execution backend g-MLSS queries run on
	// (see Runner.Exec); nil keeps every query on the in-process
	// samplers. ExecBatchRoots tunes the backend's per-round root batch
	// (see Runner.ExecBatchRoots).
	Executor       exec.Executor
	ExecBatchRoots int

	// CoalesceWindow is how long the first batch request of a
	// compatibility class (model, observer, horizon, ratio, seed, quality
	// target) holds the door open for concurrently arriving compatible
	// batches before the shared run starts; everyone who joins is answered
	// from one run over the union of their thresholds. 0 disables
	// coalescing: every batch runs alone (still one run for all its own
	// thresholds).
	CoalesceWindow time.Duration

	// MaxHorizon rejects queries whose horizon exceeds it (0 = unlimited).
	// Budgets are enforced between sampling rounds, so a single absurd
	// horizon can overshoot MaxBudget by a whole round; front ends exposed
	// to untrusted bodies should set a ceiling.
	MaxHorizon int

	// Tracer, when non-nil, receives query-lifecycle spans (admission,
	// plan-cache/plan-search, exec, merge, answer, and the end-to-end
	// query/batch envelopes). Telemetry only — a nil tracer serves
	// identically.
	Tracer *telemetry.Tracer

	// Ledger, when non-nil, receives every finished g-MLSS run's crossing
	// counters keyed by plan (see Runner.Ledger) — the feed behind plan
	// drift metrics and GET /plans. Observability only — a nil ledger
	// serves identically.
	Ledger *planstats.Ledger
}

func (c Config) withDefaults() Config {
	if c.PoolWorkers <= 0 {
		c.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SimWorkers <= 0 {
		c.SimWorkers = 1
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 200_000_000
	}
	if c.DefaultRelErr <= 0 {
		c.DefaultRelErr = 0.10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ErrOverloaded reports that the admission queue was full — the server is
// shedding load rather than queueing without bound.
var ErrOverloaded = errors.New("serve: server overloaded, query rejected")

// ErrClosed reports a submission to a server that has been closed.
var ErrClosed = errors.New("serve: server is closed")

// ErrInternal marks failures on the server's side of the contract (a model
// factory failing to build, for example), so HTTP front ends can answer
// 5xx instead of blaming the client's request.
var ErrInternal = errors.New("serve: internal error")

// builtModel is a lazily constructed model shared by all queries; Process
// implementations are safe for concurrent Step calls on distinct states
// (the samplers already rely on this for their own parallelism). The
// factory runs under the entry's own once, never under the server lock —
// a heavy build (the factory may load a neural network) must not stall
// admission or unrelated models.
type builtModel struct {
	factory   ModelFactory
	once      sync.Once
	proc      stochastic.Process
	observers map[string]stochastic.Observer
	err       error
}

// job is one admitted unit of work waiting for a pool worker: a single
// query, or a coalesced batch occupying one pool slot for all its callers.
type job struct {
	ctx   context.Context
	req   Request
	reply chan outcome
	batch *batchGather
	// admit times the admission wait (enqueue to pool-worker pickup). A
	// shed or never-admitted job simply never ends its span.
	admit *telemetry.Span
}

type outcome struct {
	resp Response
	err  error
}

// Server schedules durability queries onto a bounded worker pool, executes
// them through a shared plan cache, and keeps serving statistics. It is
// the embeddable core of the durserve daemon, but has no network
// dependency of its own.
type Server struct {
	cfg      Config
	registry Registry
	runner   *Runner

	mu      sync.Mutex
	models  map[string]*builtModel
	closed  bool
	pending map[batchKey]*batchGather // batch gathers holding their coalescing window open

	queue chan *job
	wg    sync.WaitGroup

	stats serverCounters
}

// NewServer starts a server with its worker pool running. Close releases
// the pool.
func NewServer(registry Registry, cfg Config) *Server {
	cfg = cfg.withDefaults()
	cap := cfg.PlanCacheCap
	if cap == 0 {
		cap = DefaultPlanCacheCap
	}
	s := &Server{
		cfg:      cfg,
		registry: registry,
		runner:   &Runner{Cache: NewPlanCache(cfg.BetaBucketWidth, WithCacheCapacity(cap)), Exec: cfg.Executor, ExecBatchRoots: cfg.ExecBatchRoots, Trace: cfg.Tracer, Ledger: cfg.Ledger},
		models:   make(map[string]*builtModel),
		pending:  make(map[batchKey]*batchGather),
		queue:    make(chan *job, cfg.QueueDepth),
	}
	for w := 0; w < cfg.PoolWorkers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.stats.queueDepth.Add(-1)
				j.admit.End()
				if j.batch != nil {
					s.executeBatch(j.batch)
					continue
				}
				resp, err := s.execute(j.ctx, j.req)
				j.reply <- outcome{resp: resp, err: err}
			}
		}()
	}
	return s
}

// Close stops accepting queries and waits for in-flight ones to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// Runner exposes the server's query runner (and through it the shared
// plan cache), so sibling subsystems — the standing-query engine of
// internal/stream in particular — amortize their level searches against
// the same cache the one-shot query path fills.
func (s *Server) Runner() *Runner { return s.runner }

// Do submits a query and waits for its answer. Admission control is
// immediate: a full queue rejects with ErrOverloaded instead of blocking,
// and a context that expires while the query waits or runs returns the
// context's error.
func (s *Server) Do(ctx context.Context, req Request) (Response, error) {
	j := &job{ctx: ctx, req: req, reply: make(chan outcome, 1), admit: s.cfg.Tracer.Start(telemetry.StageAdmission)}
	// The enqueue must happen under the same lock as the closed check:
	// Close closes s.queue, and a send racing that close would panic. The
	// send is non-blocking, so the critical section stays short.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Response{}, ErrClosed
	}
	select {
	case s.queue <- j:
		s.stats.queueDepth.Add(1)
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.stats.rejected.Add(1)
		return Response{}, ErrOverloaded
	}
	select {
	case out := <-j.reply:
		return out.resp, out.err
	case <-ctx.Done():
		// The worker will notice the dead context; the buffered reply
		// channel lets it finish without leaking.
		return Response{}, ctx.Err()
	}
}

// model returns the lazily built model for name. The server lock covers
// only the map lookup; the build itself is deduplicated by the entry's
// once, and a failed build is evicted so a later request can retry.
func (s *Server) model(name string) (*builtModel, error) {
	s.mu.Lock()
	m, ok := s.models[name]
	if !ok {
		factory, known := s.registry[name]
		if !known {
			s.mu.Unlock()
			return nil, fmt.Errorf("serve: unknown model %q", name)
		}
		m = &builtModel{factory: factory}
		s.models[name] = m
	}
	s.mu.Unlock()

	m.once.Do(func() {
		proc, observers, err := m.factory()
		if err != nil {
			m.err = fmt.Errorf("%w: building model %q: %v", ErrInternal, name, err)
			return
		}
		if len(observers) == 0 {
			m.err = fmt.Errorf("%w: model %q registered no observers", ErrInternal, name)
			return
		}
		m.proc, m.observers = proc, observers
	})
	if m.err != nil {
		s.mu.Lock()
		if s.models[name] == m {
			delete(s.models, name)
		}
		s.mu.Unlock()
		return nil, m.err
	}
	return m, nil
}

// spec translates a request into a runnable Spec.
func (s *Server) spec(req Request) (Spec, error) {
	m, err := s.model(req.Model)
	if err != nil {
		return Spec{}, err
	}
	obsName := req.Observer
	if obsName == "" {
		obsName = "value"
	}
	obs, ok := m.observers[obsName]
	if !ok {
		return Spec{}, fmt.Errorf("serve: model %q has no observer %q", req.Model, obsName)
	}
	if s.cfg.MaxHorizon > 0 && req.Horizon > s.cfg.MaxHorizon {
		return Spec{}, fmt.Errorf("serve: horizon %d exceeds the server's cap %d", req.Horizon, s.cfg.MaxHorizon)
	}

	var method Method
	switch req.Method {
	case "", "g-mlss", "gmlss":
		method = GMLSS
	case "s-mlss", "smlss":
		method = SMLSS
	case "srs":
		method = SRS
	default:
		return Spec{}, fmt.Errorf("serve: unknown method %q", req.Method)
	}

	ratio := req.Ratio
	if ratio <= 0 {
		ratio = 3
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.Seed
	}

	var stop mc.Any
	if req.RelErr > 0 {
		stop = append(stop, mc.RETarget{Target: req.RelErr})
	}
	budget := s.cfg.MaxBudget
	if req.Budget > 0 && req.Budget < budget {
		budget = req.Budget
	}
	if len(stop) == 0 && req.Budget <= 0 {
		stop = append(stop, mc.RETarget{Target: s.cfg.DefaultRelErr})
	}
	stop = append(stop, mc.Budget{Steps: budget})

	return Spec{
		Proc:       m.proc,
		Obs:        obs,
		ModelID:    req.Model,
		ObserverID: obsName,
		Beta:       req.Beta,
		Horizon:    req.Horizon,
		Method:     method,
		PlanMode:   PlanAuto,
		Ratio:      ratio,
		Seed:       seed,
		SimWorkers: s.cfg.SimWorkers,
		Stop:       stop,
	}, nil
}

// execute runs one admitted query on a pool worker.
func (s *Server) execute(ctx context.Context, req Request) (Response, error) {
	qspan := s.cfg.Tracer.Start(telemetry.StageQuery)
	defer qspan.End()
	if err := ctx.Err(); err != nil {
		// Expired while queued: count as shed load, not as a query served.
		s.stats.rejected.Add(1)
		return Response{}, err
	}
	spec, err := s.spec(req)
	if err != nil {
		s.stats.errors.Add(1)
		return Response{}, err
	}
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}

	s.stats.inFlight.Add(1)
	res, meta, err := s.runner.Run(ctx, spec)
	s.stats.inFlight.Add(-1)
	// Sampling cost is booked even for failed queries — partial runs
	// burned real simulation. (Search cost flows through the cache's own
	// counter, failed searches included.)
	s.stats.sampleSteps.Add(res.Steps - meta.SearchSteps)
	if err != nil {
		s.stats.errors.Add(1)
		return Response{}, err
	}
	s.stats.served.Add(1)

	aspan := s.cfg.Tracer.Start(telemetry.StageAnswer)
	defer aspan.End()
	ci := res.CI(0.95)
	return Response{
		P:           res.P,
		StdErr:      res.StdErr(),
		RelErr:      res.RelErr(),
		CILo:        ci.Lo,
		CIHi:        ci.Hi,
		Steps:       res.Steps,
		Paths:       res.Paths,
		Hits:        res.Hits,
		Elapsed:     res.Elapsed.Seconds(),
		Method:      spec.Method.String(),
		Plan:        meta.Plan.Boundaries,
		SearchSteps: meta.SearchSteps,
		PlanCached:  meta.CacheHit,
	}, nil
}
