package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"durability/internal/core"
	"durability/internal/exec"
	"durability/internal/mc"
	"durability/internal/opt"
	"durability/internal/planstats"
	"durability/internal/stochastic"
	"durability/internal/telemetry"
)

// Method selects the sampling algorithm, mirroring the public API's enum.
type Method int

// Available methods.
const (
	GMLSS Method = iota
	SMLSS
	SRS
)

func (m Method) String() string {
	switch m {
	case GMLSS:
		return "g-mlss"
	case SMLSS:
		return "s-mlss"
	case SRS:
		return "srs"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// PlanMode selects how an MLSS query obtains its level partition.
type PlanMode int

// Plan modes.
const (
	// PlanAuto runs (or reuses) the adaptive greedy search of §5.2.
	PlanAuto PlanMode = iota
	// PlanFixed uses Spec.Plan verbatim; the cache is bypassed.
	PlanFixed
	// PlanBalanced runs (or reuses) the balanced-growth construction of
	// §5.1 from the prior BalTau with BalLevels levels.
	PlanBalanced
)

// Spec is one fully resolved query: the model, the observable, the
// threshold query itself and every execution knob. ModelID and ObserverID
// identify the model/observer pair for plan caching; they never influence
// the numerics.
type Spec struct {
	Proc       stochastic.Process
	Obs        stochastic.Observer
	ModelID    string
	ObserverID string

	Beta    float64
	Horizon int

	Method     Method
	PlanMode   PlanMode
	Plan       core.Plan // used when PlanMode == PlanFixed
	BalTau     float64
	BalLevels  int
	Ratio      int
	Seed       uint64
	SimWorkers int // parallel simulation workers within this one query

	// StartBucket is the drift bucket of the start state for plan keying.
	// Queries answered from a model's canonical initial state leave it 0;
	// standing queries maintained against a live state (internal/stream)
	// bucket the normalized start value, so a level plan is re-searched
	// only when the live state drifts across a bucket boundary — and
	// returning to a previously visited bucket reuses its plan for free.
	StartBucket int

	Stop  mc.Any // stopping rules; at least one required
	Trace func(mc.Result)
}

func (s *Spec) validate() error {
	if s.Proc == nil {
		return errors.New("serve: spec has no process")
	}
	if s.Obs == nil {
		return errors.New("serve: spec has no observer")
	}
	if s.Beta <= 0 {
		return fmt.Errorf("serve: threshold %v must be positive", s.Beta)
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("serve: horizon %d must be positive", s.Horizon)
	}
	if s.Ratio < 1 {
		return fmt.Errorf("serve: splitting ratio %d must be >= 1", s.Ratio)
	}
	if len(s.Stop) == 0 {
		return errors.New("serve: spec has no stopping rule")
	}
	return nil
}

// Meta reports how a query was executed, beyond the estimate itself.
type Meta struct {
	Plan        core.Plan // the partition plan the sampler ran with (empty for SRS)
	SearchSteps int64     // simulator invocations this call spent on level search
	CacheHit    bool      // true when the plan came from the cache
}

// Runner executes query specs. With a Cache, plan searches are memoized
// and deduplicated across queries; with Cache == nil every query pays its
// own search, which is exactly the per-query behavior of durability.Run.
type Runner struct {
	Cache *PlanCache

	// Exec, when set, is the execution backend g-MLSS sampling runs on:
	// queries are driven through the §3.1 coordination loop of
	// internal/exec, so root-path simulation lands wherever the backend
	// places it (in-process for exec.Local, a worker fleet for
	// exec.Cluster) with bit-for-bit identical results. Plan searches
	// always run locally, and s-MLSS and SRS queries — whose estimators
	// are not expressed as mergeable root counters — stay on the
	// in-process samplers regardless. A nil Exec keeps every query on the
	// in-process samplers, the exact durability.Run path.
	Exec exec.Executor

	// ExecBatchRoots is the per-round root batch handed to the backend
	// (0 = exec's default, 256). A cluster backend cuts each round into
	// at most BatchRoots/16 group-aligned chunks, so this is also the
	// fleet-size ceiling one query can exploit — raise it when queries
	// should spread over more workers. Changing it changes the stopping
	// schedule (the batch size is part of the deterministic numerics),
	// so compare runs only at equal settings.
	ExecBatchRoots int

	// Trace, when non-nil, receives lifecycle spans: plan-cache /
	// plan-search around plan resolution and exec around sampling, with
	// step counts attributed so each stage's steps sum exactly to the
	// serving totals. Telemetry only — spans never alter execution.
	Trace *telemetry.Tracer

	// Ledger, when non-nil, receives every finished g-MLSS run's crossing
	// counters under the run's plan-cache key — the plan-quality
	// observability feed. Runs without a key (no Cache, or PlanFixed) and
	// the non-counter samplers (s-MLSS, SRS) book nothing. Observability
	// only — the ledger never alters execution.
	Ledger *planstats.Ledger
}

// StatsKey mirrors a plan-cache key into the ledger's key type, field
// for field (planstats sits below serve in the import order, so it
// restates the key rather than importing it).
func StatsKey(key PlanKey) planstats.Key {
	return planstats.Key{
		Model:      key.Model,
		Observer:   key.Observer,
		BetaBucket: key.BetaBucket,
		Horizon:    key.Horizon,
		Ratio:      key.Ratio,
		Search:     key.Search,
		Start:      key.Start,
		Set:        key.Set,
	}
}

// bookRun returns the ledger booking callback for one run executed under
// key with the given plan shape, or nil when the runner has no ledger.
// The signature matches both core.GMLSS.Observe and
// exec.SampleOptions.Counters, so the scalar recursion, the vectorized
// kernel, and every execution backend book through one function.
func (r *Runner) bookRun(key PlanKey, plan core.Plan, ratio int) func(agg core.Counters, roots, steps int64) {
	if r.Ledger == nil {
		return nil
	}
	k := StatsKey(key)
	shape := planstats.Shape{
		Boundaries: append([]float64(nil), plan.Boundaries...),
		Ratio:      ratio,
		Ratios:     append([]int(nil), plan.Ratios...),
	}
	ledger := r.Ledger
	return func(agg core.Counters, roots, steps int64) {
		ledger.Book(k, shape, planstats.Delta{
			Land:  agg.Land,
			Skip:  agg.Skip,
			Mu:    agg.Mu,
			Hits:  agg.Hits,
			Roots: roots,
			Steps: steps,
		})
	}
}

// BookRun books one finished g-MLSS run's counters into the runner's
// ledger under the spec's plan key — the hook callers that sample
// incrementally themselves (internal/stream) invoke after folding their
// own shard results in root order. A runner without a ledger or a cache,
// or a spec under a fixed plan (no key exists), books nothing.
func (r *Runner) BookRun(s Spec, plan core.Plan, agg core.Counters, roots, steps int64) {
	if r.Ledger == nil || r.Cache == nil || s.PlanMode == PlanFixed {
		return
	}
	if hook := r.bookRun(s.planKey(r.Cache), plan, s.Ratio); hook != nil {
		hook(agg, roots, steps)
	}
}

// searchTag names the plan-search strategy for cache keying, so greedy and
// balanced plans for the same query shape never alias.
func (s *Spec) searchTag() string {
	if s.PlanMode == PlanBalanced {
		return fmt.Sprintf("balanced(%g,%d)", s.BalTau, s.BalLevels)
	}
	return "greedy"
}

// planSeed derives the level-search seed from the cache key, so a cached
// plan is a pure function of the query shape — not of the seed (or
// scheduling luck) of whichever query triggered the search.
func planSeed(key PlanKey) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%d\x00%d\x00%d\x00%s\x00%d\x00%s", key.Model, key.Observer, key.BetaBucket, key.Horizon, key.Ratio, key.Search, key.Start, key.Set)
	seed := h.Sum64()
	if seed == 0 {
		seed = 1
	}
	return seed
}

// searchFunc builds the level search for the spec at the given threshold
// and seed.
func (s *Spec) searchFunc(beta float64, seed uint64) SearchFunc {
	return func(ctx context.Context) (core.Plan, int64, error) {
		problem := &opt.Problem{
			Proc:    s.Proc,
			Query:   core.Query{Value: core.ThresholdValue(s.Obs, beta), Horizon: s.Horizon},
			Ratio:   s.Ratio,
			Seed:    seed,
			Workers: s.SimWorkers,
		}
		if s.PlanMode == PlanBalanced {
			return opt.BalancedPlan(ctx, problem, s.BalTau, s.BalLevels, 500)
		}
		g, err := opt.Greedy(ctx, problem, opt.GreedyOptions{})
		if err != nil {
			return core.Plan{}, g.SearchSteps, err
		}
		return g.Plan, g.SearchSteps, nil
	}
}

// ResolvePlan obtains the level partition for an MLSS query, through the
// cache when one is configured. Cached searches run at the bucket's
// representative threshold with a key-derived seed; uncached searches run
// at the query's own threshold and seed, reproducing Run's per-query
// behavior exactly. It is exported for callers that sample incrementally
// themselves (internal/stream) but still want plan memoization.
func (r *Runner) ResolvePlan(ctx context.Context, s *Spec) (core.Plan, Meta, error) {
	if s.PlanMode == PlanFixed {
		return s.Plan, Meta{Plan: s.Plan}, nil
	}
	if r.Cache == nil {
		sp := r.Trace.Start(telemetry.StagePlanSearch)
		plan, steps, err := s.searchFunc(s.Beta, s.Seed)(ctx)
		sp.AddSteps(steps)
		sp.End()
		if err != nil {
			return core.Plan{}, Meta{SearchSteps: steps}, err
		}
		return plan, Meta{Plan: plan, SearchSteps: steps}, nil
	}
	key := s.planKey(r.Cache)
	began := telemetry.Now()
	plan, steps, hit, err := r.Cache.GetOrSearch(ctx, key, s.searchFunc(r.Cache.RepresentativeBeta(s.Beta), planSeed(key)))
	// Exactly the searching caller carries steps > 0 (hits and waiters get
	// 0), so stage steps sum to the cache's SearchSteps with no double
	// counting; a hit or a coalesced wait books a plan-cache span instead.
	stage := telemetry.StagePlanSearch
	if steps == 0 {
		stage = telemetry.StagePlanCache
	}
	r.Trace.Observe(stage, telemetry.Since(began), steps)
	if err != nil {
		return core.Plan{}, Meta{SearchSteps: steps}, err
	}
	return plan, Meta{Plan: plan, SearchSteps: steps, CacheHit: hit}, nil
}

// planKey assembles the spec's cache key.
func (s *Spec) planKey(c *PlanCache) PlanKey {
	return c.Key(s.ModelID, s.ObserverID, s.Beta, s.Horizon, s.Ratio, s.searchTag(), s.StartBucket)
}

// PlanKeyFor reports the cache key the spec's plan resolves under —
// the key its ledger entry lives at. ok is false when the runner has no
// cache or the spec fixes its plan (no key exists).
func (r *Runner) PlanKeyFor(s Spec) (PlanKey, bool) {
	if r.Cache == nil || s.PlanMode == PlanFixed {
		return PlanKey{}, false
	}
	return s.planKey(r.Cache), true
}

// PeekPlan reports the cached plan that would serve the spec's shape, if
// the runner has a cache and the plan is resident.
func (r *Runner) PeekPlan(s Spec) (core.Plan, bool) {
	if r.Cache == nil || s.PlanMode == PlanFixed {
		return core.Plan{}, false
	}
	return r.Cache.Peek(s.planKey(r.Cache))
}

// Run answers one query. The result's Steps include the level-search cost
// only when this call actually performed the search; cache hits report the
// sampling cost alone, so summing Steps over a workload measures the total
// simulation actually performed.
func (r *Runner) Run(ctx context.Context, s Spec) (mc.Result, Meta, error) {
	if err := s.validate(); err != nil {
		return mc.Result{}, Meta{}, err
	}
	if s.Method == SRS {
		srs := &mc.SRS{
			Proc:    s.Proc,
			Query:   mc.Query{Cond: mc.Threshold(s.Obs, s.Beta), Horizon: s.Horizon},
			Stop:    s.Stop,
			Seed:    s.Seed,
			Workers: s.SimWorkers,
			Trace:   s.Trace,
		}
		sp := r.Trace.Start(telemetry.StageExec)
		res, err := srs.Run(ctx)
		sp.AddSteps(res.Steps)
		sp.End()
		return res, Meta{}, err
	}

	cq := core.Query{Value: core.ThresholdValue(s.Obs, s.Beta), Horizon: s.Horizon}
	plan, meta, err := r.ResolvePlan(ctx, &s)
	if err != nil {
		return mc.Result{Steps: meta.SearchSteps}, meta, err
	}

	// The ledger hook (nil without a ledger) fires once at a successful
	// return on either g-MLSS path; s-MLSS keeps different sufficient
	// statistics and is not booked. Fixed plans have no cache key, so
	// their runs are not attributable to a cached plan and book nothing.
	var book func(agg core.Counters, roots, steps int64)
	if s.Method == GMLSS && r.Cache != nil && s.PlanMode != PlanFixed {
		book = r.bookRun(s.planKey(r.Cache), plan, s.Ratio)
	}

	// The exec span carries the sampler's own steps — res.Steps before the
	// search bill is folded in below — so stage steps sum exactly to the
	// server's sampleSteps counter, which books the same difference.
	sp := r.Trace.Start(telemetry.StageExec)
	var res mc.Result
	if s.Method == SMLSS {
		sampler := &core.SMLSS{
			Proc: s.Proc, Query: cq, Plan: plan, Ratio: s.Ratio,
			Stop: s.Stop, Seed: s.Seed, Workers: s.SimWorkers, Trace: s.Trace,
		}
		res, err = sampler.Run(ctx)
	} else if r.Exec != nil {
		res, err = exec.Sample(ctx, r.Exec, exec.Task{
			Proc:       s.Proc,
			Obs:        s.Obs,
			Model:      s.ModelID,
			Observer:   s.ObserverID,
			Beta:       s.Beta,
			Horizon:    s.Horizon,
			Boundaries: plan.Boundaries,
			Ratio:      s.Ratio,
			Seed:       s.Seed,
			SimWorkers: s.SimWorkers,
		}, exec.SampleOptions{Stop: s.Stop, Trace: s.Trace, BatchRoots: r.ExecBatchRoots, Tracer: r.Trace, Counters: book})
	} else {
		sampler := &core.GMLSS{
			Proc: s.Proc, Query: cq, Plan: plan, Ratio: s.Ratio,
			Stop: s.Stop, Seed: s.Seed, Workers: s.SimWorkers, Trace: s.Trace,
			Observe: book,
		}
		res, err = sampler.Run(ctx)
	}
	sp.AddSteps(res.Steps)
	sp.End()
	res.Steps += meta.SearchSteps // search cost is part of this query's bill
	return res, meta, err
}
