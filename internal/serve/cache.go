// Package serve is the concurrent query-serving layer: it turns the
// one-shot samplers of internal/core into a system that answers heavy
// streams of durability prediction queries.
//
// The paper pays the adaptive level search of §5.2 once per query. Under
// serving workloads many queries share a model and a threshold family, so
// the search — often the dominant cost for a single query — can be
// amortized: a PlanCache memoizes level-partition plans keyed by the query
// shape (model, observer, normalized-threshold bucket, horizon, splitting
// ratio) with single-flight deduplication, so N concurrent queries of the
// same shape trigger exactly one search. This is the same reuse instinct
// as incremental view maintenance under updates: the expensive derived
// structure (here a partition plan) outlives the single query that built
// it. A Runner executes queries through the cache, and a Server adds a
// worker-pool scheduler with admission control for network front ends.
//
// Plan reuse never affects correctness: both MLSS estimators are unbiased
// under any partition plan (§3.2, §4.1); the plan only decides efficiency.
// Reusing a plan searched at a nearby threshold is therefore safe, and the
// bucket width bounds how far "nearby" stretches.
package serve

import (
	"container/list"
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"durability/internal/core"
)

// DefaultBetaBucketWidth is the relative width of a normalized-threshold
// bucket: thresholds within ~10% of one another share a cached plan. The
// value function is f = z/beta clamped to [0,1], so plans are expressed
// relative to the threshold and transfer across small threshold changes.
const DefaultBetaBucketWidth = 0.10

// DefaultPlanCacheCap bounds the number of completed plans the cache keeps
// resident. Every distinct query shape costs one entry, so an adversarial
// stream of never-repeating shapes (say, a fresh horizon per request) would
// otherwise grow the map without bound.
const DefaultPlanCacheCap = 1024

// PlanKey identifies a family of queries that can share a partition plan.
type PlanKey struct {
	Model      string // model identity (the process being simulated)
	Observer   string // observer identity (which quantity is thresholded)
	BetaBucket int    // normalized threshold bucket (log scale)
	Horizon    int    // query horizon
	Ratio      int    // splitting ratio the plan was tuned for
	Search     string // search strategy ("greedy", "balanced(tau,m)", ...)
	Start      int    // start-state drift bucket (0 for canonical initial states)
	// Set is the threshold-set bucket for batch covering plans: the
	// canonical encoding of every requested threshold's ratio to the
	// batch's top threshold. Two batches asking the same ladder shape
	// (the common serving case — many users, one product's threshold
	// lattice) share one covering plan; single-threshold queries leave it
	// empty and key exactly as before.
	Set string
}

// SearchFunc runs a level search and returns the plan plus the simulator
// invocations it consumed.
type SearchFunc func(ctx context.Context) (core.Plan, int64, error)

// cacheEntry is one memoized (or in-flight) search. ready is closed when
// plan/steps/err are final. elem is the entry's node in the LRU list; it
// is nil while the search is in flight (in-flight entries are never
// evicted — waiters hold a pointer to the entry, not to the map slot).
// doomed marks an in-flight entry invalidated mid-search: its result is
// handed to the waiters but discarded instead of retained.
type cacheEntry struct {
	ready  chan struct{}
	plan   core.Plan
	steps  int64
	err    error
	elem   *list.Element
	doomed bool
	// hits counts lookups this entry served (waiters included); warmed
	// marks entries inserted from a snapshot instead of a search. Both
	// feed the per-plan introspection of Entries.
	hits   atomic.Int64
	warmed bool
}

// PlanCache memoizes level-partition plans by query shape with
// single-flight deduplication: the first caller for a key runs the search,
// concurrent callers for the same key block until it finishes, and later
// callers get the plan for free. Failed searches are evicted so a
// transient error (for example a cancelled context) does not poison the
// key forever. Completed plans are kept in LRU order and capped, so an
// adversarial stream of never-repeating query shapes cannot grow the
// cache without bound.
type PlanCache struct {
	bucketWidth float64
	capacity    int

	mu      sync.Mutex
	entries map[PlanKey]*cacheEntry
	lru     *list.List // completed keys, front = most recently used

	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
	invalidated atomic.Int64
	warmed      atomic.Int64
	searchSteps atomic.Int64
}

// CacheOption configures a PlanCache beyond its bucket width.
type CacheOption func(*PlanCache)

// WithCacheCapacity caps the number of completed plans kept resident
// (default DefaultPlanCacheCap); the least recently used plan is evicted
// beyond the cap. n <= 0 removes the cap.
func WithCacheCapacity(n int) CacheOption {
	return func(c *PlanCache) { c.capacity = n }
}

// NewPlanCache builds a cache with the given relative threshold-bucket
// width; width <= 0 selects DefaultBetaBucketWidth.
func NewPlanCache(bucketWidth float64, opts ...CacheOption) *PlanCache {
	if bucketWidth <= 0 {
		bucketWidth = DefaultBetaBucketWidth
	}
	c := &PlanCache{
		bucketWidth: bucketWidth,
		capacity:    DefaultPlanCacheCap,
		entries:     make(map[PlanKey]*cacheEntry),
		lru:         list.New(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BucketBeta maps a positive threshold onto its logarithmic bucket: two
// thresholds land in the same bucket when they differ by less than
// (roughly) the bucket width, at any magnitude.
func (c *PlanCache) BucketBeta(beta float64) int {
	if beta <= 0 || math.IsInf(beta, 0) || math.IsNaN(beta) {
		return math.MinInt32 // sentinel bucket; such queries fail validation upstream
	}
	return int(math.Floor(math.Log(beta) / math.Log1p(c.bucketWidth)))
}

// RepresentativeBeta returns the canonical threshold of beta's bucket (its
// geometric midpoint). Plan searches run at the representative, not at the
// threshold of whichever query reaches the cache first, so the cached plan
// for a bucket is a pure function of the key: concurrent queries racing
// the single-flight search cannot make results scheduling-dependent.
func (c *PlanCache) RepresentativeBeta(beta float64) float64 {
	b := c.BucketBeta(beta)
	if b == math.MinInt32 {
		return beta
	}
	return math.Pow(1+c.bucketWidth, float64(b)+0.5)
}

// Key assembles a PlanKey for a threshold query shape. start is the
// start-state drift bucket — 0 for queries answered from a model's
// canonical initial state, and the bucketed normalized start value for
// standing queries maintained against a live state (internal/stream).
func (c *PlanCache) Key(model, observer string, beta float64, horizon, ratio int, search string, start int) PlanKey {
	return PlanKey{
		Model:      model,
		Observer:   observer,
		BetaBucket: c.BucketBeta(beta),
		Horizon:    horizon,
		Ratio:      ratio,
		Search:     search,
		Start:      start,
	}
}

// GetOrSearch returns the plan for key, running search to fill the cache
// on a miss. Exactly one search runs per key at a time; concurrent callers
// wait for it (or their own context). The reported steps are nonzero only
// for the caller that actually ran the search — waiters and later hits pay
// nothing, which is precisely the amortization being measured.
func (c *PlanCache) GetOrSearch(ctx context.Context, key PlanKey, search SearchFunc) (plan core.Plan, steps int64, hit bool, err error) {
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if !ok {
			e = &cacheEntry{ready: make(chan struct{})}
			c.entries[key] = e
			c.mu.Unlock()

			e.plan, e.steps, e.err = search(ctx)
			// Steps were burned whether or not the search succeeded; the
			// cost accounting must not hide failed or cancelled searches.
			c.searchSteps.Add(e.steps)
			c.mu.Lock()
			if c.entries[key] == e {
				if e.err != nil || e.doomed {
					// Failed searches evict so the next caller can retry
					// (waiters see the error through the entry they hold);
					// searches invalidated mid-flight are discarded rather
					// than retained, so the next lookup re-searches.
					delete(c.entries, key)
				} else {
					e.elem = c.lru.PushFront(key)
					c.enforceCapLocked()
				}
			}
			c.mu.Unlock()
			close(e.ready)
			if e.err != nil {
				return core.Plan{}, e.steps, false, e.err
			}
			c.misses.Add(1)
			return e.plan, e.steps, false, nil
		}
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()

		select {
		case <-e.ready:
		case <-ctx.Done():
			return core.Plan{}, 0, false, ctx.Err()
		}
		if e.err != nil {
			// The owner failed and evicted the entry; retry (possibly
			// becoming the new owner) unless we are cancelled ourselves.
			if ctx.Err() != nil {
				return core.Plan{}, 0, false, ctx.Err()
			}
			continue
		}
		c.hits.Add(1)
		e.hits.Add(1)
		return e.plan, 0, true, nil
	}
}

// enforceCapLocked evicts least-recently-used completed entries beyond the
// capacity. Callers must hold c.mu. In-flight entries are not in the LRU
// and never count against the cap.
func (c *PlanCache) enforceCapLocked() {
	if c.capacity <= 0 {
		return
	}
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		key := back.Value.(PlanKey)
		c.lru.Remove(back)
		delete(c.entries, key)
		c.evictions.Add(1)
	}
}

// Invalidate removes every completed plan whose key matches pred and
// reports how many were dropped. It is the hook live-state subsystems use
// when a model's dynamics change (say, a stream is re-registered with a
// recalibrated process): plans tuned for the old dynamics remain unbiased
// but may be badly shaped, so they are dropped and re-searched on next
// use. A search still in flight keeps deduplicating concurrent callers
// until it finishes — they receive its (stale but unbiased) plan — and
// is then discarded instead of retained; such entries are not counted.
func (c *PlanCache) Invalidate(pred func(PlanKey) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, e := range c.entries {
		if !pred(key) {
			continue
		}
		if e.elem == nil {
			// In flight: the owner discards the result on completion.
			e.doomed = true
			continue
		}
		c.lru.Remove(e.elem)
		delete(c.entries, key)
		n++
	}
	c.invalidated.Add(int64(n))
	return n
}

// WarmPlan is one exported cache entry: a completed plan together with the
// key it serves. Serving-state snapshots (internal/persist) carry the warm
// set so a recovered server answers its first queries without re-searching.
type WarmPlan struct {
	Key  PlanKey
	Plan core.Plan
}

// Export returns every completed plan in least-recently-used-first order,
// so warming a fresh cache by inserting them in sequence reproduces the
// exporting cache's recency order (the last insert is the most recent).
// In-flight searches are not exported — their waiters hold the entry, but
// a snapshot must not publish a plan that may still fail or be doomed.
func (c *PlanCache) Export() []WarmPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WarmPlan, 0, c.lru.Len())
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		key := e.Value.(PlanKey)
		out = append(out, WarmPlan{Key: key, Plan: c.entries[key].plan})
	}
	return out
}

// Warm inserts a completed plan for key without running a search — the
// recovery path filling a fresh cache from a snapshot's export. A key that
// already holds an entry (completed or in flight) is left untouched: live
// traffic racing a recovery warm-start must never have a plan swapped out
// from under it, and a search already under way will produce an equivalent
// plan anyway (searches are pure functions of the key and the searching
// state). Warm counts against the LRU cap like any completed entry.
func (c *PlanCache) Warm(key PlanKey, plan core.Plan) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	e := &cacheEntry{ready: make(chan struct{}), plan: plan, warmed: true}
	close(e.ready)
	c.entries[key] = e
	e.elem = c.lru.PushFront(key)
	c.enforceCapLocked()
	c.warmed.Add(1)
	return true
}

// CachedPlan is one completed cache entry as the plan-introspection
// endpoint sees it: the key, the plan it memoizes, and how the entry got
// here and how often it was used.
type CachedPlan struct {
	Key    PlanKey
	Plan   core.Plan
	Hits   int64 // lookups this entry served (single-flight waiters included)
	Warmed bool  // inserted from a snapshot instead of a search
}

// Entries returns every completed plan sorted by key — the canonical
// order GET /plans serves, independent of insertion or recency. In-flight
// and failed searches are excluded, like Export.
func (c *PlanCache) Entries() []CachedPlan {
	c.mu.Lock()
	out := make([]CachedPlan, 0, c.lru.Len())
	for e := c.lru.Front(); e != nil; e = e.Next() {
		key := e.Value.(PlanKey)
		ent := c.entries[key]
		out = append(out, CachedPlan{Key: key, Plan: ent.plan, Hits: ent.hits.Load(), Warmed: ent.warmed})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key.less(out[j].Key) })
	return out
}

// less orders plan keys lexicographically field by field — the canonical
// order of every plan listing.
func (k PlanKey) less(o PlanKey) bool {
	if k.Model != o.Model {
		return k.Model < o.Model
	}
	if k.Observer != o.Observer {
		return k.Observer < o.Observer
	}
	if k.BetaBucket != o.BetaBucket {
		return k.BetaBucket < o.BetaBucket
	}
	if k.Horizon != o.Horizon {
		return k.Horizon < o.Horizon
	}
	if k.Ratio != o.Ratio {
		return k.Ratio < o.Ratio
	}
	if k.Search != o.Search {
		return k.Search < o.Search
	}
	if k.Start != o.Start {
		return k.Start < o.Start
	}
	return k.Set < o.Set
}

// Peek returns the cached plan for key without triggering a search. It
// reports false while the key is missing or still in flight.
func (c *PlanCache) Peek(key PlanKey) (core.Plan, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return core.Plan{}, false
	}
	select {
	case <-e.ready:
	default:
		return core.Plan{}, false
	}
	if e.err != nil {
		return core.Plan{}, false
	}
	return e.plan, true
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries     int   // completed plans resident
	Hits        int64 // lookups served from cache (including single-flight waiters)
	Misses      int64 // lookups whose search completed a plan
	Evictions   int64 // completed plans dropped by the LRU cap
	Invalidated int64 // completed plans dropped by Invalidate
	Warmed      int64 // plans inserted without a search (snapshot warm-start)
	SearchSteps int64 // total simulator invocations spent on searches, failed ones included
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Entries:     n,
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Invalidated: c.invalidated.Load(),
		Warmed:      c.warmed.Load(),
		SearchSteps: c.searchSteps.Load(),
	}
}
