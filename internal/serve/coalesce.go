package serve

import (
	"context"
	"fmt"
	"time"

	"durability/internal/mc"
	"durability/internal/telemetry"
)

// BatchRequest is one threshold-lattice query as a front end submits it:
// many thresholds, one (model, observer, horizon) shape, answered by a
// single shared splitting run.
type BatchRequest struct {
	Model    string    `json:"model"`
	Observer string    `json:"observer,omitempty"` // default "value"
	Betas    []float64 `json:"betas"`
	Horizon  int       `json:"horizon"`

	RelErr float64 `json:"re,omitempty"`     // per-threshold relative-error target (default: server's)
	Budget int64   `json:"budget,omitempty"` // shared-run step budget (capped by the server's MaxBudget)
	Ratio  int     `json:"ratio,omitempty"`  // base splitting ratio (default 3)
	Seed   uint64  `json:"seed,omitempty"`   // 0 selects the server seed
}

// BatchAnswer is one threshold's slice of a batch answer.
type BatchAnswer struct {
	Beta      float64 `json:"beta"`
	P         float64 `json:"p"`
	StdErr    float64 `json:"stderr"`
	RelErr    float64 `json:"relErr"`
	CILo      float64 `json:"ciLo"` // 95% confidence interval
	CIHi      float64 `json:"ciHi"`
	Crossings int64   `json:"crossings"` // crossing events observed at this threshold's boundary
}

// BatchResponse answers one BatchRequest. Answers align with the
// request's Betas. Cost fields describe the shared run — when callers
// were coalesced, they all report the same run.
type BatchResponse struct {
	Answers []BatchAnswer `json:"answers"`

	Thresholds  int     `json:"thresholds"` // distinct thresholds the shared run answered (union over coalesced callers)
	Coalesced   int     `json:"coalesced"`  // callers answered by this run (>= 1)
	SharedSteps int64   `json:"sharedSteps"`
	SearchSteps int64   `json:"searchSteps"`
	Paths       int64   `json:"paths"`
	Elapsed     float64 `json:"elapsedSec"`

	Plan       []float64 `json:"plan,omitempty"`
	Ratios     []int     `json:"ratios,omitempty"`
	PlanCached bool      `json:"planCached"`
}

// batchKey is the compatibility class of a batch request: two batches
// coalesce into one shared run exactly when everything that shapes the
// run's numerics — model, observer, horizon, ratio, seed, quality target,
// budget — agrees; only the threshold sets may differ (the run covers
// their union).
type batchKey struct {
	model    string
	observer string
	horizon  int
	ratio    int
	seed     uint64
	relErr   float64
	budget   int64
}

type batchOutcome struct {
	resp BatchResponse
	err  error
}

// batchCall is one caller waiting on a gather.
type batchCall struct {
	betas []float64
	reply chan batchOutcome
}

// batchGather collects the callers of one compatibility class while its
// coalescing window is open. Access to calls is guarded by the server
// lock until the gather is unlinked from pending; after that the leader
// goroutine owns it exclusively. betaCount tracks the (pre-dedup) union
// size so a gather stops accepting joiners before the merged lattice
// could exceed MaxBatchThresholds — a join must never turn individually
// valid requests into a collectively rejected run. registered marks a
// gather reachable through s.pending; an overflow gather runs
// unregistered (no joiner can find it, so it skips the window too).
type batchGather struct {
	key        batchKey
	calls      []*batchCall
	betaCount  int
	registered bool
}

// normalizeBatch validates a request and resolves its defaults, so that
// requests spelling a default explicitly and requests omitting it land in
// the same compatibility class.
func (s *Server) normalizeBatch(req BatchRequest) (BatchRequest, batchKey, error) {
	if len(req.Betas) == 0 {
		return req, batchKey{}, fmt.Errorf("serve: batch has no thresholds")
	}
	if len(req.Betas) > MaxBatchThresholds {
		return req, batchKey{}, fmt.Errorf("serve: batch has %d thresholds (max %d)", len(req.Betas), MaxBatchThresholds)
	}
	for _, b := range req.Betas {
		if b <= 0 {
			return req, batchKey{}, fmt.Errorf("serve: threshold %v must be positive", b)
		}
	}
	if req.Horizon <= 0 {
		return req, batchKey{}, fmt.Errorf("serve: horizon %d must be positive", req.Horizon)
	}
	if req.Observer == "" {
		req.Observer = "value"
	}
	if req.Ratio <= 0 {
		req.Ratio = 3 // mirrors the single-query path's default handling
	}
	if req.Seed == 0 {
		req.Seed = s.cfg.Seed
	}
	if req.RelErr < 0 {
		return req, batchKey{}, fmt.Errorf("serve: relative-error target %v must not be negative", req.RelErr)
	}
	key := batchKey{
		model:    req.Model,
		observer: req.Observer,
		horizon:  req.Horizon,
		ratio:    req.Ratio,
		seed:     req.Seed,
		relErr:   req.RelErr,
		budget:   req.Budget,
	}
	return req, key, nil
}

// DoBatch answers a threshold lattice with one shared splitting run. When
// the server's CoalesceWindow is set, concurrently arriving batches of the
// same compatibility class are merged into a single run over the union of
// their thresholds; every caller receives exactly the answers for its own
// thresholds, in its own order. Admission control matches Do: the gathered
// run occupies one pool slot, and a full queue rejects every gathered
// caller with ErrOverloaded.
//
// The shared run is executed under the server's own lifetime (bounded by
// QueryTimeout and the budget caps), not any single caller's context — a
// caller abandoning a coalesced run must not cancel it for the others. A
// caller whose context ends while waiting gets its context error; the run
// completes for the rest.
func (s *Server) DoBatch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	req, key, err := s.normalizeBatch(req)
	if err != nil {
		s.stats.errors.Add(1)
		return BatchResponse{}, err
	}
	call := &batchCall{betas: req.Betas, reply: make(chan batchOutcome, 1)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return BatchResponse{}, ErrClosed
	}
	if g, ok := s.pending[key]; ok && s.cfg.CoalesceWindow > 0 && g.betaCount+len(call.betas) <= MaxBatchThresholds {
		g.calls = append(g.calls, call)
		g.betaCount += len(call.betas)
		s.stats.batchCoalesced.Add(1)
		s.mu.Unlock()
	} else {
		g := &batchGather{key: key, calls: []*batchCall{call}, betaCount: len(call.betas), registered: !ok}
		if !ok {
			// Register for joiners; an overflow gather runs unregistered
			// (and so alone), leaving the open one in place.
			s.pending[key] = g
		}
		s.mu.Unlock()
		go s.gatherAndEnqueue(g)
	}
	select {
	case out := <-call.reply:
		return out.resp, out.err
	case <-ctx.Done():
		return BatchResponse{}, ctx.Err()
	}
}

// gatherAndEnqueue holds the gather's coalescing window open (nothing can
// join an unregistered gather, so it skips straight to admission), then
// closes the class and submits the shared run.
func (s *Server) gatherAndEnqueue(g *batchGather) {
	if w := s.cfg.CoalesceWindow; w > 0 && g.registered {
		time.Sleep(w)
	}
	s.mu.Lock()
	if s.pending[g.key] == g {
		delete(s.pending, g.key)
	}
	if s.closed {
		s.mu.Unlock()
		g.deliverError(ErrClosed)
		return
	}
	j := &job{batch: g, admit: s.cfg.Tracer.Start(telemetry.StageAdmission)}
	select {
	case s.queue <- j:
		s.stats.queueDepth.Add(1)
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.stats.rejected.Add(int64(len(g.calls)))
		g.deliverError(ErrOverloaded)
	}
}

// deliverError fails every caller of the gather identically.
func (g *batchGather) deliverError(err error) {
	for _, c := range g.calls {
		c.reply <- batchOutcome{err: err}
	}
}

// batchSpec lowers a closed gather onto a runnable BatchSpec over the
// union of its callers' thresholds.
func (s *Server) batchSpec(key batchKey, betas []float64) (BatchSpec, error) {
	m, err := s.model(key.model)
	if err != nil {
		return BatchSpec{}, err
	}
	obs, ok := m.observers[key.observer]
	if !ok {
		return BatchSpec{}, fmt.Errorf("serve: model %q has no observer %q", key.model, key.observer)
	}
	if s.cfg.MaxHorizon > 0 && key.horizon > s.cfg.MaxHorizon {
		return BatchSpec{}, fmt.Errorf("serve: horizon %d exceeds the server's cap %d", key.horizon, s.cfg.MaxHorizon)
	}

	var stop mc.Any
	if key.relErr > 0 {
		stop = append(stop, mc.RETarget{Target: key.relErr})
	}
	budget := s.cfg.MaxBudget
	if key.budget > 0 && key.budget < budget {
		budget = key.budget
	}
	if len(stop) == 0 && key.budget <= 0 {
		stop = append(stop, mc.RETarget{Target: s.cfg.DefaultRelErr})
	}
	stop = append(stop, mc.Budget{Steps: budget})

	return BatchSpec{
		Proc:       m.proc,
		Obs:        obs,
		ModelID:    key.model,
		ObserverID: key.observer,
		Betas:      betas,
		Horizon:    key.horizon,
		Ratio:      key.ratio,
		Seed:       key.seed,
		SimWorkers: s.cfg.SimWorkers,
		Stop:       stop,
	}, nil
}

// executeBatch runs one gathered batch on a pool worker. The union run
// answers every caller at once; if the union run fails with more than one
// caller gathered, each caller is retried alone — the union itself may be
// at fault (say, one joiner's threshold sits below the model's initial
// value, which poisons the covering plan for everyone), and a join must
// never turn an individually valid request into a rejected one.
func (s *Server) executeBatch(g *batchGather) {
	ctx := context.Background()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	err := s.answerBatch(ctx, g.key, g.calls)
	if err == nil {
		return
	}
	if len(g.calls) == 1 {
		s.stats.errors.Add(1)
		g.deliverError(err)
		return
	}
	for _, c := range g.calls {
		if err := s.answerBatch(ctx, g.key, []*batchCall{c}); err != nil {
			s.stats.errors.Add(1)
			c.reply <- batchOutcome{err: err}
		}
	}
}

// answerBatch runs one shared splitting run over the callers' combined
// thresholds and, on success, delivers every caller its own slice of the
// answers. On error nothing is delivered. Duplicate thresholds across
// callers are deduplicated by RunBatch itself; results align with the
// concatenation order.
func (s *Server) answerBatch(ctx context.Context, key batchKey, calls []*batchCall) error {
	bspan := s.cfg.Tracer.Start(telemetry.StageBatch)
	defer bspan.End()
	var betas []float64
	for _, c := range calls {
		betas = append(betas, c.betas...)
	}
	spec, err := s.batchSpec(key, betas)
	if err != nil {
		return err
	}
	s.stats.inFlight.Add(1)
	results, meta, err := s.runner.RunBatch(ctx, spec)
	s.stats.inFlight.Add(-1)
	// The shared sampling cost is booked once, failed runs included.
	s.stats.sampleSteps.Add(meta.SharedSteps)
	if err != nil {
		return err
	}
	s.stats.batchRuns.Add(1)
	s.stats.batchCallers.Add(int64(len(calls)))
	s.stats.batchThresholds.Add(int64(meta.Thresholds))
	s.stats.served.Add(int64(len(calls))) // a batch caller is a served query

	aspan := s.cfg.Tracer.Start(telemetry.StageAnswer)
	defer aspan.End()
	byBeta := make(map[float64]int, len(betas))
	for i, b := range betas {
		if _, ok := byBeta[b]; !ok {
			byBeta[b] = i
		}
	}
	for _, c := range calls {
		resp := BatchResponse{
			Answers:     make([]BatchAnswer, len(c.betas)),
			Thresholds:  meta.Thresholds,
			Coalesced:   len(calls),
			SharedSteps: meta.SharedSteps,
			SearchSteps: meta.SearchSteps,
			Plan:        meta.Plan.Boundaries,
			Ratios:      meta.Plan.Ratios,
			PlanCached:  meta.CacheHit,
		}
		if len(results) > 0 {
			resp.Paths = results[0].Paths
			resp.Elapsed = results[0].Elapsed.Seconds()
		}
		for i, b := range c.betas {
			r := results[byBeta[b]]
			ci := r.CI(0.95)
			resp.Answers[i] = BatchAnswer{
				Beta:      b,
				P:         r.P,
				StdErr:    r.StdErr(),
				RelErr:    r.RelErr(),
				CILo:      ci.Lo,
				CIHi:      ci.Hi,
				Crossings: r.Hits,
			}
		}
		c.reply <- batchOutcome{resp: resp}
	}
	return nil
}
