package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"durability/internal/core"
)

// warmKey builds a distinct key per index.
func warmKey(i int) PlanKey {
	return PlanKey{Model: "m", Observer: fmt.Sprintf("obs-%d", i), Horizon: 100, Ratio: 3, Search: "greedy"}
}

func TestExportWarmRoundTrip(t *testing.T) {
	src := NewPlanCache(0)
	plans := map[PlanKey]core.Plan{}
	for i := 0; i < 8; i++ {
		key := warmKey(i)
		plan := core.MustPlan(float64(i+1) / 10)
		plans[key] = plan
		if _, _, _, err := src.GetOrSearch(context.Background(), key, func(context.Context) (core.Plan, int64, error) {
			return plan, 1, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	dst := NewPlanCache(0)
	for _, wp := range src.Export() {
		if !dst.Warm(wp.Key, wp.Plan) {
			t.Fatalf("warm rejected fresh key %+v", wp.Key)
		}
	}
	if got := dst.Stats().Warmed; got != 8 {
		t.Fatalf("Warmed = %d, want 8", got)
	}
	for key, want := range plans {
		got, ok := dst.Peek(key)
		if !ok || !got.Equal(want) {
			t.Fatalf("warmed cache misses %+v (ok=%v)", key, ok)
		}
	}

	// Warming an occupied key must not replace the resident plan.
	occupied := warmKey(0)
	if dst.Warm(occupied, core.MustPlan(0.99)) {
		t.Fatal("Warm replaced a resident entry")
	}
	if got, _ := dst.Peek(occupied); !got.Equal(plans[occupied]) {
		t.Fatal("resident plan changed under Warm")
	}
}

// Warm entries must obey the LRU cap: a warm-start larger than the cap
// keeps only the most recently inserted plans.
func TestWarmRespectsCapacity(t *testing.T) {
	c := NewPlanCache(0, WithCacheCapacity(3))
	for i := 0; i < 10; i++ {
		c.Warm(warmKey(i), core.MustPlan(0.5))
	}
	st := c.Stats()
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
	if st.Evictions != 7 {
		t.Fatalf("evictions = %d, want 7", st.Evictions)
	}
	for i := 7; i < 10; i++ {
		if _, ok := c.Peek(warmKey(i)); !ok {
			t.Fatalf("most recent key %d evicted", i)
		}
	}
}

// Recovery-time warm-start inserts race with live traffic: searches,
// warms, invalidations and LRU eviction all mutate the cache concurrently.
// The test drives all four under the race detector and then checks the
// cache is still internally consistent (every LRU node resolves to a
// completed entry, entry count matches, capacity holds).
func TestPlanCacheConcurrentWarmGetInvalidate(t *testing.T) {
	c := NewPlanCache(0, WithCacheCapacity(16))
	const (
		goroutines = 8
		iters      = 300
		keys       = 48
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := warmKey((g*iters + i) % keys)
				switch i % 4 {
				case 0:
					c.Warm(key, core.MustPlan(0.5))
				case 1:
					if _, _, _, err := c.GetOrSearch(context.Background(), key, func(context.Context) (core.Plan, int64, error) {
						return core.MustPlan(0.25, 0.75), 1, nil
					}); err != nil {
						t.Errorf("GetOrSearch: %v", err)
						return
					}
				case 2:
					c.Peek(key)
				default:
					c.Invalidate(func(k PlanKey) bool { return k == key })
				}
			}
		}(g)
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lru.Len() != len(c.entries) {
		t.Fatalf("lru holds %d keys but map holds %d entries", c.lru.Len(), len(c.entries))
	}
	if c.lru.Len() > 16 {
		t.Fatalf("capacity exceeded: %d entries", c.lru.Len())
	}
	for e := c.lru.Front(); e != nil; e = e.Next() {
		key := e.Value.(PlanKey)
		entry, ok := c.entries[key]
		if !ok {
			t.Fatalf("lru key %+v missing from entry map", key)
		}
		select {
		case <-entry.ready:
		default:
			t.Fatalf("lru holds in-flight entry for %+v", key)
		}
	}
}
