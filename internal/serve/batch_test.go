package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"durability/internal/mc"
	"durability/internal/stochastic"
)

func chainBatchSpec(betas ...float64) BatchSpec {
	return BatchSpec{
		Proc:       stochastic.BirthDeathChain(10, 0.45, 0),
		Obs:        stochastic.ChainIndex,
		ModelID:    "chain",
		ObserverID: "value",
		Betas:      betas,
		Horizon:    50,
		Ratio:      3,
		Seed:       7,
		Stop:       mc.Any{mc.RETarget{Target: 0.15}, mc.Budget{Steps: 5_000_000}},
	}
}

// The covering plan is cached by the threshold-set bucket: a second batch
// of the same ladder shape pays no search, and answers reproduce bit for
// bit; a different ladder keys separately.
func TestRunBatchPlanCache(t *testing.T) {
	r := &Runner{Cache: NewPlanCache(0)}
	ctx := context.Background()

	first, meta1, err := r.RunBatch(ctx, chainBatchSpec(3, 5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if meta1.CacheHit || meta1.SearchSteps == 0 {
		t.Fatalf("first batch should pay a covering search: %+v", meta1)
	}
	if meta1.Thresholds != 3 || len(meta1.Plan.Ratios) != meta1.Plan.M()-1 {
		t.Fatalf("covering plan malformed: %+v", meta1)
	}

	second, meta2, err := r.RunBatch(ctx, chainBatchSpec(3, 5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !meta2.CacheHit || meta2.SearchSteps != 0 {
		t.Fatalf("second batch should hit the plan cache: %+v", meta2)
	}
	for i := range first {
		if first[i].P != second[i].P || first[i].Variance != second[i].Variance {
			t.Fatalf("cached batch diverged at %d: %v vs %v", i, first[i].P, second[i].P)
		}
	}

	if _, meta3, err := r.RunBatch(ctx, chainBatchSpec(4, 5, 7)); err != nil {
		t.Fatal(err)
	} else if meta3.CacheHit {
		t.Fatalf("different ladder shape must not share a covering plan: %+v", meta3)
	}
}

// Without a cache every batch pays its own search — the per-batch analog
// of durability.Run's behavior.
func TestRunBatchNoCache(t *testing.T) {
	r := &Runner{}
	res, meta, err := r.RunBatch(context.Background(), chainBatchSpec(3, 7))
	if err != nil {
		t.Fatal(err)
	}
	if meta.SearchSteps == 0 || meta.CacheHit {
		t.Fatalf("cacheless batch meta: %+v", meta)
	}
	if len(res) != 2 || res[0].P <= res[1].P {
		t.Fatalf("results wrong: %+v", res)
	}
}

func TestRunBatchValidation(t *testing.T) {
	r := &Runner{}
	ctx := context.Background()
	bad := []BatchSpec{
		{},                    // everything missing
		chainBatchSpec(),      // no thresholds
		chainBatchSpec(-3, 7), // non-positive threshold
	}
	long := chainBatchSpec(3)
	long.Horizon = 0
	bad = append(bad, long)
	for i, spec := range bad {
		if _, _, err := r.RunBatch(ctx, spec); err == nil {
			t.Errorf("case %d: invalid batch spec accepted", i)
		}
	}
	wide := chainBatchSpec()
	for i := 0; i < MaxBatchThresholds+1; i++ {
		wide.Betas = append(wide.Betas, 1+float64(i)*1e-6)
	}
	if _, _, err := r.RunBatch(ctx, wide); err == nil {
		t.Error("oversized threshold lattice accepted")
	}
}

func batchTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	registry := Registry{
		"chain": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return stochastic.BirthDeathChain(10, 0.45, 0), map[string]stochastic.Observer{"value": stochastic.ChainIndex}, nil
		},
	}
	srv := NewServer(registry, cfg)
	t.Cleanup(srv.Close)
	return srv
}

// DoBatch end to end: per-threshold answers aligned with the request,
// monotone in the threshold, with batch stats accounted.
func TestServerDoBatch(t *testing.T) {
	srv := batchTestServer(t, Config{PoolWorkers: 2, Seed: 1})
	resp, err := srv.DoBatch(context.Background(), BatchRequest{
		Model: "chain", Betas: []float64{7, 3, 5}, Horizon: 50, RelErr: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 3 || resp.Thresholds != 3 || resp.Coalesced != 1 {
		t.Fatalf("batch response shape: %+v", resp)
	}
	for i, beta := range []float64{7, 3, 5} {
		if resp.Answers[i].Beta != beta {
			t.Fatalf("answer %d echoes beta %v, want %v", i, resp.Answers[i].Beta, beta)
		}
	}
	if !(resp.Answers[1].P > resp.Answers[2].P && resp.Answers[2].P > resp.Answers[0].P) {
		t.Fatalf("estimates not monotone in beta: %+v", resp.Answers)
	}
	if resp.SharedSteps == 0 || resp.SearchSteps == 0 || len(resp.Plan) == 0 {
		t.Fatalf("cost accounting missing: %+v", resp)
	}
	st := srv.Stats()
	if st.BatchRuns != 1 || st.BatchCallers != 1 || st.BatchThresholds != 3 {
		t.Fatalf("batch stats: %+v", st)
	}
	if st.SampleSteps == 0 {
		t.Fatalf("shared steps not booked: %+v", st)
	}
}

func TestServerDoBatchValidation(t *testing.T) {
	srv := batchTestServer(t, Config{PoolWorkers: 1, Seed: 1, MaxHorizon: 1000})
	ctx := context.Background()
	cases := []BatchRequest{
		{Model: "chain", Horizon: 50},                                               // no thresholds
		{Model: "chain", Betas: []float64{0}, Horizon: 50},                          // bad threshold
		{Model: "chain", Betas: []float64{3}, Horizon: 0},                           // bad horizon
		{Model: "chain", Betas: []float64{3}, Horizon: 5000},                        // beyond MaxHorizon
		{Model: "nope", Betas: []float64{3}, Horizon: 50},                           // unknown model
		{Model: "chain", Observer: "nope", Betas: []float64{3}, Horizon: 50},        // unknown observer
		{Model: "chain", Betas: []float64{3}, Horizon: 50, RelErr: -1},              // negative target
		{Model: "chain", Betas: make([]float64, MaxBatchThresholds+1), Horizon: 50}, // oversized
	}
	for i := range cases[len(cases)-1].Betas {
		cases[len(cases)-1].Betas[i] = 1 + float64(i)
	}
	for i, req := range cases {
		if _, err := srv.DoBatch(ctx, req); err == nil {
			t.Errorf("case %d: invalid batch request accepted: %+v", i, req)
		}
	}
}

// Coalescing: batches of one compatibility class arriving inside the
// window share a single run over the union of their thresholds, and every
// caller receives exactly its own thresholds' answers.
func TestServerDoBatchCoalesces(t *testing.T) {
	srv := batchTestServer(t, Config{PoolWorkers: 2, Seed: 1, CoalesceWindow: 300 * time.Millisecond})
	ctx := context.Background()

	type out struct {
		resp BatchResponse
		err  error
	}
	leader := make(chan out, 1)
	go func() {
		resp, err := srv.DoBatch(ctx, BatchRequest{Model: "chain", Betas: []float64{3, 7}, Horizon: 50, RelErr: 0.15})
		leader <- out{resp, err}
	}()
	// Wait until the leader's gather is registered, then join it — the
	// join is deterministic, not a timing race.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().BatchPending == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader gather never became pending")
		}
		time.Sleep(time.Millisecond)
	}
	follower, err := srv.DoBatch(ctx, BatchRequest{Model: "chain", Betas: []float64{5}, Horizon: 50, RelErr: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	l := <-leader
	if l.err != nil {
		t.Fatal(l.err)
	}

	if l.resp.Coalesced != 2 || follower.Coalesced != 2 {
		t.Fatalf("coalesced counts: leader %d, follower %d, want 2", l.resp.Coalesced, follower.Coalesced)
	}
	if l.resp.Thresholds != 3 || follower.Thresholds != 3 {
		t.Fatalf("union size: leader %d, follower %d, want 3", l.resp.Thresholds, follower.Thresholds)
	}
	if len(l.resp.Answers) != 2 || l.resp.Answers[0].Beta != 3 || l.resp.Answers[1].Beta != 7 {
		t.Fatalf("leader got wrong thresholds: %+v", l.resp.Answers)
	}
	if len(follower.Answers) != 1 || follower.Answers[0].Beta != 5 {
		t.Fatalf("follower got wrong thresholds: %+v", follower.Answers)
	}
	// Shared run: identical cost accounting, and the follower's estimate
	// sits between the leader's (monotonicity across the union).
	if l.resp.SharedSteps != follower.SharedSteps || l.resp.Paths != follower.Paths {
		t.Fatalf("coalesced callers report different runs: %+v vs %+v", l.resp, follower)
	}
	if !(l.resp.Answers[0].P > follower.Answers[0].P && follower.Answers[0].P > l.resp.Answers[1].P) {
		t.Fatalf("union answers not monotone: %v, %v, %v",
			l.resp.Answers[0].P, follower.Answers[0].P, l.resp.Answers[1].P)
	}
	if st := srv.Stats(); st.BatchRuns != 1 || st.BatchCallers != 2 || st.BatchCoalesced != 1 {
		t.Fatalf("coalescing stats: %+v", st)
	}
}

// A joiner whose thresholds poison the union (here: below the model's
// initial state, so the covering run cannot answer it) must fail alone —
// the other gathered callers are retried without it and still succeed.
func TestServerDoBatchBadJoinerFailsAlone(t *testing.T) {
	registry := Registry{
		"chain4": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return stochastic.BirthDeathChain(10, 0.45, 4), map[string]stochastic.Observer{"value": stochastic.ChainIndex}, nil
		},
	}
	srv := NewServer(registry, Config{PoolWorkers: 2, Seed: 1, CoalesceWindow: 300 * time.Millisecond})
	t.Cleanup(srv.Close)
	ctx := context.Background()

	type out struct {
		resp BatchResponse
		err  error
	}
	leader := make(chan out, 1)
	go func() {
		resp, err := srv.DoBatch(ctx, BatchRequest{Model: "chain4", Betas: []float64{7}, Horizon: 50, RelErr: 0.2})
		leader <- out{resp, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().BatchPending == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader gather never became pending")
		}
		time.Sleep(time.Millisecond)
	}
	// Beta 3 sits below the chain's start state 4: invalid for any run.
	_, badErr := srv.DoBatch(ctx, BatchRequest{Model: "chain4", Betas: []float64{3}, Horizon: 50, RelErr: 0.2})
	l := <-leader
	if badErr == nil {
		t.Fatal("already-satisfied threshold accepted")
	}
	if l.err != nil {
		t.Fatalf("valid caller failed because of a bad joiner: %v", l.err)
	}
	if len(l.resp.Answers) != 1 || l.resp.Answers[0].Beta != 7 || l.resp.Answers[0].P <= 0 {
		t.Fatalf("valid caller's solo retry answered wrong: %+v", l.resp)
	}
	if l.resp.Coalesced != 1 {
		t.Fatalf("solo retry should report itself uncoalesced: %+v", l.resp)
	}
}

// With coalescing disabled, identical concurrent batches still answer
// independently and correctly.
func TestServerDoBatchNoCoalesceWindow(t *testing.T) {
	srv := batchTestServer(t, Config{PoolWorkers: 2, Seed: 1})
	var wg sync.WaitGroup
	outs := make([]BatchResponse, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = srv.DoBatch(context.Background(),
				BatchRequest{Model: "chain", Betas: []float64{3, 7}, Horizon: 50, RelErr: 0.15})
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if outs[i].Coalesced != 1 || len(outs[i].Answers) != 2 {
			t.Fatalf("caller %d: %+v", i, outs[i])
		}
	}
	// Same seed, same shape: independent runs reproduce bit for bit.
	if outs[0].Answers[0].P != outs[1].Answers[0].P {
		t.Fatalf("independent same-seed batches diverged: %v vs %v", outs[0].Answers[0].P, outs[1].Answers[0].P)
	}
}

// A closed server fails batch callers with ErrClosed rather than hanging.
func TestServerDoBatchClosed(t *testing.T) {
	srv := batchTestServer(t, Config{PoolWorkers: 1, Seed: 1})
	srv.Close()
	if _, err := srv.DoBatch(context.Background(),
		BatchRequest{Model: "chain", Betas: []float64{3}, Horizon: 50}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
