package serve

import "sync/atomic"

// serverCounters are the server's hot-path counters; everything is atomic
// so query workers never contend on a stats lock.
type serverCounters struct {
	served      atomic.Int64
	errors      atomic.Int64
	rejected    atomic.Int64
	sampleSteps atomic.Int64
	inFlight    atomic.Int64
	queueDepth  atomic.Int64

	// Batch path: shared runs executed, callers they answered, callers
	// that joined an already-open gather, and distinct thresholds the
	// shared runs covered.
	batchRuns       atomic.Int64
	batchCallers    atomic.Int64
	batchCoalesced  atomic.Int64
	batchThresholds atomic.Int64
}

// Stats is a point-in-time snapshot of the server, shaped for the
// GET /stats endpoint of cmd/durserve.
type Stats struct {
	QueriesServed int64 `json:"queriesServed"`
	Errors        int64 `json:"errors"`
	Rejected      int64 `json:"rejected"` // shed by admission control or expired in queue
	InFlight      int64 `json:"inFlight"`
	QueueDepth    int64 `json:"queueDepth"`
	QueueCap      int   `json:"queueCap"`
	PoolWorkers   int   `json:"poolWorkers"`

	// Batch answering: one shared splitting run per gathered batch, many
	// thresholds (and possibly many callers) per run.
	BatchRuns       int64 `json:"batchRuns"`
	BatchCallers    int64 `json:"batchCallers"`
	BatchCoalesced  int64 `json:"batchCoalesced"`
	BatchThresholds int64 `json:"batchThresholds"`
	BatchPending    int   `json:"batchPending"` // gathers currently holding their coalescing window open

	// Cost accounting, in simulator invocations: how much simulation went
	// into answering queries versus searching for level plans. The ratio
	// SearchSteps/(QueriesServed) shrinking toward zero is the plan cache
	// doing its job.
	SampleSteps int64 `json:"sampleSteps"`
	SearchSteps int64 `json:"searchSteps"`

	// Plan cache effectiveness.
	PlanEntries     int     `json:"planEntries"`
	PlanHits        int64   `json:"planHits"`
	PlanMisses      int64   `json:"planMisses"`
	PlanEvictions   int64   `json:"planEvictions"`
	PlanInvalidated int64   `json:"planInvalidated"`
	PlanHitRate     float64 `json:"planHitRate"`
	TotalSteps      int64   `json:"totalSteps"`
	SearchShare     float64 `json:"searchShare"` // SearchSteps / TotalSteps
}

// Stats snapshots the server counters and its plan cache.
func (s *Server) Stats() Stats {
	cache := s.runner.Cache.Stats()
	s.mu.Lock()
	pending := len(s.pending)
	s.mu.Unlock()
	out := Stats{
		QueriesServed:   s.stats.served.Load(),
		Errors:          s.stats.errors.Load(),
		Rejected:        s.stats.rejected.Load(),
		InFlight:        s.stats.inFlight.Load(),
		QueueDepth:      s.stats.queueDepth.Load(),
		QueueCap:        s.cfg.QueueDepth,
		PoolWorkers:     s.cfg.PoolWorkers,
		BatchRuns:       s.stats.batchRuns.Load(),
		BatchCallers:    s.stats.batchCallers.Load(),
		BatchCoalesced:  s.stats.batchCoalesced.Load(),
		BatchThresholds: s.stats.batchThresholds.Load(),
		BatchPending:    pending,
		SampleSteps:     s.stats.sampleSteps.Load(),
		SearchSteps:     cache.SearchSteps,
		PlanEntries:     cache.Entries,
		PlanHits:        cache.Hits,
		PlanMisses:      cache.Misses,
		PlanEvictions:   cache.Evictions,
		PlanInvalidated: cache.Invalidated,
		PlanHitRate:     cache.HitRate(),
	}
	out.TotalSteps = out.SampleSteps + out.SearchSteps
	if out.TotalSteps > 0 {
		out.SearchShare = float64(out.SearchSteps) / float64(out.TotalSteps)
	}
	return out
}
