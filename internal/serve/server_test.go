package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"durability/internal/rng"
	"durability/internal/stochastic"
)

func walkRegistry() Registry {
	return Registry{
		"walk": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return &stochastic.RandomWalk{Start: 0, Drift: 0, Sigma: 1},
				map[string]stochastic.Observer{"value": stochastic.ScalarValue}, nil
		},
	}
}

func TestServerServesAndCachesPlans(t *testing.T) {
	s := NewServer(walkRegistry(), Config{PoolWorkers: 2, SimWorkers: 1, Seed: 1})
	defer s.Close()

	req := Request{Model: "walk", Beta: 8, Horizon: 100, RelErr: 0.2}
	first, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.P <= 0 || first.P >= 1 {
		t.Fatalf("estimate %v outside (0,1)", first.P)
	}
	if first.PlanCached || first.SearchSteps == 0 {
		t.Fatalf("first query should pay the search: %+v", first)
	}

	second, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.PlanCached || second.SearchSteps != 0 {
		t.Fatalf("second query should hit the plan cache: cached=%v searchSteps=%d",
			second.PlanCached, second.SearchSteps)
	}
	if second.P != first.P {
		t.Fatalf("same request, same seed: %v != %v", second.P, first.P)
	}

	st := s.Stats()
	if st.QueriesServed != 2 || st.PlanMisses != 1 || st.PlanHits != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.SearchSteps == 0 || st.SampleSteps == 0 {
		t.Fatalf("cost split missing: %+v", st)
	}
}

func TestServerValidatesRequests(t *testing.T) {
	s := NewServer(walkRegistry(), Config{PoolWorkers: 1})
	defer s.Close()
	ctx := context.Background()
	for _, req := range []Request{
		{Model: "nope", Beta: 8, Horizon: 100},
		{Model: "walk", Observer: "nope", Beta: 8, Horizon: 100},
		{Model: "walk", Beta: -1, Horizon: 100},
		{Model: "walk", Beta: 8, Horizon: 0},
		{Model: "walk", Beta: 8, Horizon: 100, Method: "nope"},
	} {
		if _, err := s.Do(ctx, req); err == nil {
			t.Errorf("request %+v accepted", req)
		}
	}
	if st := s.Stats(); st.Errors != 5 {
		t.Fatalf("errors = %d, want 5", st.Errors)
	}
}

// gateProc blocks every Step until the gate closes — it lets the test hold
// a pool worker busy deterministically.
type gateProc struct{ gate chan struct{} }

func (p *gateProc) Name() string              { return "gate" }
func (p *gateProc) Initial() stochastic.State { return &stochastic.Scalar{} }
func (p *gateProc) Step(s stochastic.State, t int, src *rng.Source) {
	<-p.gate
	s.(*stochastic.Scalar).V++
}

func TestServerAdmissionControl(t *testing.T) {
	gate := make(chan struct{})
	reg := Registry{
		"gate": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return &gateProc{gate: gate}, map[string]stochastic.Observer{"value": stochastic.ScalarValue}, nil
		},
	}
	s := NewServer(reg, Config{PoolWorkers: 1, QueueDepth: 1, Seed: 1})
	defer s.Close()

	// SRS avoids the plan search; the value climbs one per step, so the
	// query finishes as soon as the gate opens.
	req := Request{Model: "gate", Beta: 3, Horizon: 10, Method: "srs", Budget: 1000}
	type res struct {
		err error
	}
	replies := make(chan res, 2)
	submit := func() { _, err := s.Do(context.Background(), req); replies <- res{err} }

	go submit() // occupies the single pool worker, blocked on the gate
	waitFor(t, func() bool { return s.Stats().InFlight == 1 })
	go submit() // sits in the queue (depth 1)
	waitFor(t, func() bool { return s.Stats().QueueDepth == 1 })

	// Queue full, worker busy: the third query must be shed immediately.
	if _, err := s.Do(context.Background(), req); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if r := <-replies; r.err != nil {
			t.Fatalf("held query failed: %v", r.err)
		}
	}
}

func TestServerFactoryFailureIsInternal(t *testing.T) {
	reg := Registry{
		"broken": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return nil, nil, errors.New("weights file missing")
		},
	}
	s := NewServer(reg, Config{PoolWorkers: 1})
	defer s.Close()
	_, err := s.Do(context.Background(), Request{Model: "broken", Beta: 8, Horizon: 100})
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	// An unknown model stays a client error.
	_, err = s.Do(context.Background(), Request{Model: "nope", Beta: 8, Horizon: 100})
	if err == nil || errors.Is(err, ErrInternal) {
		t.Fatalf("unknown model: err = %v, want a non-internal error", err)
	}
}

// Submissions racing Close must resolve to ErrClosed or a served answer,
// never a send on the closed queue (which would panic the process). Run
// with -race to make the window count.
func TestServerDoCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := NewServer(walkRegistry(), Config{PoolWorkers: 2, QueueDepth: 4, Seed: 1})
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				req := Request{Model: "walk", Beta: 8, Horizon: 100, Method: "srs", Budget: 1000}
				if _, err := s.Do(context.Background(), req); err != nil &&
					!errors.Is(err, ErrClosed) && !errors.Is(err, ErrOverloaded) {
					t.Errorf("unexpected error: %v", err)
				}
			}()
		}
		s.Close()
		wg.Wait()
	}
}

func TestServerClosed(t *testing.T) {
	s := NewServer(walkRegistry(), Config{PoolWorkers: 1})
	s.Close()
	s.Close() // idempotent
	if _, err := s.Do(context.Background(), Request{Model: "walk", Beta: 8, Horizon: 100}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestServerQueryTimeout(t *testing.T) {
	// The first Step blocks until well past the server's per-query
	// deadline; once released, the sampler's next context check must end
	// the query with the deadline error even though the caller imposed no
	// deadline of its own — proving the timeout propagates from the
	// server's config into the simulation loop.
	gate := make(chan struct{})
	reg := Registry{
		"gate": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return &gateProc{gate: gate}, map[string]stochastic.Observer{"value": stochastic.ScalarValue}, nil
		},
	}
	s := NewServer(reg, Config{PoolWorkers: 1, QueryTimeout: 30 * time.Millisecond, Seed: 1})
	defer s.Close()
	time.AfterFunc(300*time.Millisecond, func() { close(gate) })
	_, err := s.Do(context.Background(), Request{Model: "gate", Beta: 3, Horizon: 10, Method: "srs", Budget: 1000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
