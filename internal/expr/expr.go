// Package expr implements a small arithmetic/boolean expression language
// over named state fields. It lets query conditions and value functions be
// written as text — "q2 >= 26", "min(price / 1550, 1)" — which is how the
// CLI and the embedded model database (internal/simdb) accept the paper's
// "complex query functions" without compiling Go code.
//
// Grammar (precedence low to high):
//
//	expr  := or
//	or    := and ('||' and)*
//	and   := cmp ('&&' cmp)*
//	cmp   := sum (('>=' '<=' '>' '<' '==' '!=') sum)?
//	sum   := term (('+' '-') term)*
//	term  := unary (('*' '/') unary)*
//	unary := '-' unary | primary
//	prim  := number | ident | ident '(' expr (',' expr)* ')' | '(' expr ')'
//
// Booleans are floats: 0 is false, anything else is true; comparisons
// yield 1 or 0. Built-in functions: min, max, abs, log, exp, sqrt, floor,
// ceil, pow.
package expr

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Env supplies values for identifiers during evaluation.
type Env interface {
	// Lookup resolves a variable; ok is false for unknown names.
	Lookup(name string) (float64, bool)
}

// MapEnv is the simplest Env: a map from names to values.
type MapEnv map[string]float64

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (float64, bool) {
	v, ok := m[name]
	return v, ok
}

// Expr is a compiled expression.
type Expr struct {
	root node
	src  string
}

// String returns the original source text.
func (e *Expr) String() string { return e.src }

// Eval evaluates the expression under env.
func (e *Expr) Eval(env Env) (float64, error) {
	return e.root.eval(env)
}

// EvalBool evaluates the expression and interprets the result as a
// condition: non-zero means true.
func (e *Expr) EvalBool(env Env) (bool, error) {
	v, err := e.root.eval(env)
	return v != 0, err
}

// Vars returns the distinct identifiers the expression references,
// in first-appearance order.
func (e *Expr) Vars() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(n node)
	walk = func(n node) {
		switch t := n.(type) {
		case *varNode:
			if !seen[t.name] {
				seen[t.name] = true
				out = append(out, t.name)
			}
		case *binNode:
			walk(t.lhs)
			walk(t.rhs)
		case *unaryNode:
			walk(t.arg)
		case *callNode:
			for _, a := range t.args {
				walk(a)
			}
		}
	}
	walk(e.root)
	return out
}

type node interface {
	eval(Env) (float64, error)
}

type numNode struct{ v float64 }

func (n *numNode) eval(Env) (float64, error) { return n.v, nil }

type varNode struct{ name string }

func (n *varNode) eval(env Env) (float64, error) {
	v, ok := env.Lookup(n.name)
	if !ok {
		return 0, fmt.Errorf("expr: unknown variable %q", n.name)
	}
	return v, nil
}

type unaryNode struct{ arg node }

func (n *unaryNode) eval(env Env) (float64, error) {
	v, err := n.arg.eval(env)
	return -v, err
}

type binNode struct {
	op       string
	lhs, rhs node
}

func (n *binNode) eval(env Env) (float64, error) {
	l, err := n.lhs.eval(env)
	if err != nil {
		return 0, err
	}
	// Short-circuit the boolean operators.
	switch n.op {
	case "&&":
		if l == 0 {
			return 0, nil
		}
		r, err := n.rhs.eval(env)
		if err != nil || r == 0 {
			return 0, err
		}
		return 1, nil
	case "||":
		if l != 0 {
			return 1, nil
		}
		r, err := n.rhs.eval(env)
		if err != nil || r == 0 {
			return 0, err
		}
		return 1, nil
	}
	r, err := n.rhs.eval(env)
	if err != nil {
		return 0, err
	}
	switch n.op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("expr: division by zero")
		}
		return l / r, nil
	case ">=":
		return b2f(l >= r), nil
	case "<=":
		return b2f(l <= r), nil
	case ">":
		return b2f(l > r), nil
	case "<":
		return b2f(l < r), nil
	case "==":
		return b2f(l == r), nil
	case "!=":
		return b2f(l != r), nil
	}
	return 0, fmt.Errorf("expr: unknown operator %q", n.op)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

type callNode struct {
	fn   string
	args []node
}

var functions = map[string]struct {
	arity int
	apply func(args []float64) (float64, error)
}{
	"min": {2, func(a []float64) (float64, error) { return math.Min(a[0], a[1]), nil }},
	"max": {2, func(a []float64) (float64, error) { return math.Max(a[0], a[1]), nil }},
	"abs": {1, func(a []float64) (float64, error) { return math.Abs(a[0]), nil }},
	"log": {1, func(a []float64) (float64, error) {
		if a[0] <= 0 {
			return 0, fmt.Errorf("expr: log of non-positive value %v", a[0])
		}
		return math.Log(a[0]), nil
	}},
	"exp": {1, func(a []float64) (float64, error) { return math.Exp(a[0]), nil }},
	"sqrt": {1, func(a []float64) (float64, error) {
		if a[0] < 0 {
			return 0, fmt.Errorf("expr: sqrt of negative value %v", a[0])
		}
		return math.Sqrt(a[0]), nil
	}},
	"floor": {1, func(a []float64) (float64, error) { return math.Floor(a[0]), nil }},
	"ceil":  {1, func(a []float64) (float64, error) { return math.Ceil(a[0]), nil }},
	"pow":   {2, func(a []float64) (float64, error) { return math.Pow(a[0], a[1]), nil }},
}

func (n *callNode) eval(env Env) (float64, error) {
	fn, ok := functions[n.fn]
	if !ok {
		return 0, fmt.Errorf("expr: unknown function %q", n.fn)
	}
	args := make([]float64, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(env)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	return fn.apply(args)
}

// --- lexer ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokNum
	tokIdent
	tokOp
	tokLParen
	tokRParen
	tokComma
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, pos: i})
			i++
		case strings.ContainsRune("+-*/", rune(c)):
			toks = append(toks, token{kind: tokOp, text: string(c), pos: i})
			i++
		case c == '>' || c == '<':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{kind: tokOp, text: op, pos: i})
			i++
		case c == '=' || c == '!':
			if i+1 >= len(src) || src[i+1] != '=' {
				return nil, fmt.Errorf("expr: stray %q at position %d", c, i)
			}
			toks = append(toks, token{kind: tokOp, text: string(c) + "=", pos: i})
			i += 2
		case c == '&' || c == '|':
			if i+1 >= len(src) || src[i+1] != c {
				return nil, fmt.Errorf("expr: stray %q at position %d", c, i)
			}
			toks = append(toks, token{kind: tokOp, text: string(c) + string(c), pos: i})
			i += 2
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' ||
				src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			v, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("expr: bad number %q at position %d", src[i:j], i)
			}
			toks = append(toks, token{kind: tokNum, num: v, pos: i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("expr: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(kind tokKind, what string) error {
	if p.peek().kind != kind {
		return fmt.Errorf("expr: expected %s at position %d", what, p.peek().pos)
	}
	p.next()
	return nil
}

// Parse compiles source text into an Expr.
func Parse(src string) (*Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("expr: unexpected trailing input at position %d", p.peek().pos)
	}
	return &Expr{root: root, src: src}, nil
}

// MustParse is Parse for statically known expressions; it panics on error.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) parseOr() (node, error) {
	lhs, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && p.peek().text == "||" {
		p.next()
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		lhs = &binNode{op: "||", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseAnd() (node, error) {
	lhs, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && p.peek().text == "&&" {
		p.next()
		rhs, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		lhs = &binNode{op: "&&", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseCmp() (node, error) {
	lhs, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokOp {
		switch t.text {
		case ">=", "<=", ">", "<", "==", "!=":
			p.next()
			rhs, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			return &binNode{op: t.text, lhs: lhs, rhs: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *parser) parseSum() (node, error) {
	lhs, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for t := p.peek(); t.kind == tokOp && (t.text == "+" || t.text == "-"); t = p.peek() {
		p.next()
		rhs, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		lhs = &binNode{op: t.text, lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseTerm() (node, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for t := p.peek(); t.kind == tokOp && (t.text == "*" || t.text == "/"); t = p.peek() {
		p.next()
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		lhs = &binNode{op: t.text, lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseUnary() (node, error) {
	if t := p.peek(); t.kind == tokOp && t.text == "-" {
		p.next()
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryNode{arg: arg}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (node, error) {
	t := p.next()
	switch t.kind {
	case tokNum:
		return &numNode{v: t.num}, nil
	case tokIdent:
		if p.peek().kind == tokLParen {
			p.next()
			var args []node
			if p.peek().kind != tokRParen {
				for {
					a, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind != tokComma {
						break
					}
					p.next()
				}
			}
			if err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			fn, ok := functions[t.text]
			if !ok {
				return nil, fmt.Errorf("expr: unknown function %q at position %d", t.text, t.pos)
			}
			if len(args) != fn.arity {
				return nil, fmt.Errorf("expr: %s takes %d arguments, got %d", t.text, fn.arity, len(args))
			}
			return &callNode{fn: t.text, args: args}, nil
		}
		return &varNode{name: t.text}, nil
	case tokLParen:
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return nil, fmt.Errorf("expr: unexpected token at position %d", t.pos)
}
