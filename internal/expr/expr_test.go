package expr

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func evalOK(t *testing.T, src string, env Env) float64 {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 4", 2.5},
		{"2 - 3 - 4", -5},
		{"-3 + 5", 2},
		{"--3", 3},
		{"1.5e2 + 1", 151},
		{"2*-3", -6},
	}
	for _, tc := range cases {
		if got := evalOK(t, tc.src, MapEnv{}); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%q = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestComparisonsAndBooleans(t *testing.T) {
	env := MapEnv{"x": 5, "y": 3}
	cases := []struct {
		src  string
		want float64
	}{
		{"x >= 5", 1},
		{"x > 5", 0},
		{"y < x", 1},
		{"x == 5 && y == 3", 1},
		{"x == 4 || y == 3", 1},
		{"x == 4 && y == 3", 0},
		{"x != y", 1},
		{"x <= y || y <= x", 1},
	}
	for _, tc := range cases {
		if got := evalOK(t, tc.src, env); got != tc.want {
			t.Errorf("%q = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the right side must not be reached.
	env := MapEnv{"x": 0}
	if got := evalOK(t, "x != 0 && 1/x > 0", env); got != 0 {
		t.Fatalf("short-circuit && = %v", got)
	}
	if got := evalOK(t, "x == 0 || 1/x > 0", env); got != 1 {
		t.Fatalf("short-circuit || = %v", got)
	}
}

func TestFunctions(t *testing.T) {
	env := MapEnv{"p": 1200.0}
	cases := []struct {
		src  string
		want float64
	}{
		{"min(p / 1550, 1)", 1200.0 / 1550},
		{"max(p, 2000)", 2000},
		{"abs(-4)", 4},
		{"sqrt(16)", 4},
		{"exp(0)", 1},
		{"log(exp(2))", 2},
		{"floor(3.9)", 3},
		{"ceil(3.1)", 4},
		{"pow(2, 10)", 1024},
	}
	for _, tc := range cases {
		if got := evalOK(t, tc.src, env); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%q = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestEvalBool(t *testing.T) {
	e := MustParse("q2 >= 26")
	b, err := e.EvalBool(MapEnv{"q2": 30})
	if err != nil || !b {
		t.Fatalf("EvalBool = %v, %v", b, err)
	}
	b, err = e.EvalBool(MapEnv{"q2": 25})
	if err != nil || b {
		t.Fatalf("EvalBool = %v, %v", b, err)
	}
}

func TestVars(t *testing.T) {
	e := MustParse("min(price/beta, 1) + price - other")
	vars := e.Vars()
	want := []string{"price", "beta", "other"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "foo(1)", "min(1)", "min(1,2,3)", "1 & 2",
		"= 3", "!", "nosuchfn(1,2)", "1 2", "2..3", "@",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []struct {
		src string
		env Env
	}{
		{"missing + 1", MapEnv{}},
		{"1/0", MapEnv{}},
		{"log(-1)", MapEnv{}},
		{"sqrt(-1)", MapEnv{}},
		{"1/(x-x)", MapEnv{"x": 3}},
	}
	for _, tc := range cases {
		e, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		if _, err := e.Eval(tc.env); err == nil {
			t.Errorf("Eval(%q) succeeded", tc.src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on garbage did not panic")
		}
	}()
	MustParse("((")
}

func TestStringRoundTrip(t *testing.T) {
	src := "min(p/2, 1) >= 0.5"
	if got := MustParse(src).String(); got != src {
		t.Fatalf("String() = %q", got)
	}
}

func TestPrecedenceMatrix(t *testing.T) {
	// Comparison binds tighter than &&, which binds tighter than ||.
	if got := evalOK(t, "1 > 2 || 3 > 2 && 4 > 3", MapEnv{}); got != 1 {
		t.Fatalf("precedence = %v", got)
	}
	if got := evalOK(t, "0 || 1 && 0", MapEnv{}); got != 0 {
		t.Fatalf("precedence = %v", got)
	}
}

// Property: every parsed numeric literal evaluates to itself.
func TestQuickNumberLiterals(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := math.Abs(x) // sign is handled by unary minus, not the lexer
		src := strconv.FormatFloat(v, 'g', -1, 64)
		e, err := Parse(src)
		if err != nil {
			return false
		}
		got, err := e.Eval(MapEnv{})
		if err != nil {
			return false
		}
		return got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
