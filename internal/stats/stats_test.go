package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatal("zero accumulator should report zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(v)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", a.Mean())
	}
	// population variance of that classic dataset is 4
	if math.Abs(a.PopulationVariance()-4) > 1e-12 {
		t.Fatalf("population variance = %v, want 4", a.PopulationVariance())
	}
	if math.Abs(a.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("sample variance = %v, want 32/7", a.Variance())
	}
}

func TestAccumulatorSingleValue(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Variance() != 0 {
		t.Fatalf("variance of one value = %v, want 0", a.Variance())
	}
	if a.MeanStdErr() != 0 {
		t.Fatalf("stderr of one value = %v, want 0", a.MeanStdErr())
	}
}

func TestAccumulatorAddN(t *testing.T) {
	var a, b Accumulator
	a.AddN(1, 3)
	a.AddN(0, 7)
	for _, v := range []float64{1, 1, 1, 0, 0, 0, 0, 0, 0, 0} {
		b.Add(v)
	}
	if math.Abs(a.Mean()-b.Mean()) > 1e-12 || math.Abs(a.Variance()-b.Variance()) > 1e-12 {
		t.Fatal("AddN disagrees with repeated Add")
	}
}

func TestAccumulatorMerge(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, -3, 2.5}
	var whole, left, right Accumulator
	for i, v := range data {
		whole.Add(v)
		if i < 5 {
			left.Add(v)
		} else {
			right.Add(v)
		}
	}
	left.Merge(right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-12 {
		t.Fatalf("merged mean = %v, want %v", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merged variance = %v, want %v", left.Variance(), whole.Variance())
	}
}

func TestAccumulatorMergeEmpty(t *testing.T) {
	var a, empty Accumulator
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(empty)
	if a != before {
		t.Fatal("merging an empty accumulator changed state")
	}
	empty.Merge(a)
	if empty.Mean() != a.Mean() || empty.N() != a.N() {
		t.Fatal("merging into empty accumulator lost data")
	}
}

// Property (testing/quick): merging two accumulators is equivalent to
// accumulating the concatenated stream.
func TestQuickMergeEquivalence(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, whole Accumulator
		for _, v := range xs {
			a.Add(v)
			whole.Add(v)
		}
		for _, v := range ys {
			b.Add(v)
			whole.Add(v)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			return false
		}
		scale := 1 + math.Abs(whole.Mean())
		if math.Abs(a.Mean()-whole.Mean()) > 1e-8*scale {
			return false
		}
		vScale := 1 + whole.Variance()
		return math.Abs(a.Variance()-whole.Variance()) <= 1e-6*vScale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZCritical(t *testing.T) {
	if z := ZCritical(0.95); math.Abs(z-1.95996) > 1e-3 {
		t.Fatalf("z(0.95) = %v, want ~1.96", z)
	}
	if z := ZCritical(0.99); math.Abs(z-2.57583) > 1e-3 {
		t.Fatalf("z(0.99) = %v, want ~2.576", z)
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		x := NormQuantile(p)
		back := NormCDF(x)
		if math.Abs(back-p) > 1e-6 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
}

func TestNormQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.01, 0.2, 0.35} {
		if math.Abs(NormQuantile(p)+NormQuantile(1-p)) > 1e-8 {
			t.Errorf("quantile not symmetric at p=%v", p)
		}
	}
	if math.Abs(NormQuantile(0.5)) > 1e-9 {
		t.Error("median of standard normal should be 0")
	}
}

func TestNormQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormQuantile(%v) did not panic", p)
				}
			}()
			NormQuantile(p)
		}()
	}
}

func TestMeanCI(t *testing.T) {
	iv := MeanCI(0.5, 0.0001, 0.95)
	if !iv.Contains(0.5) {
		t.Fatal("CI must contain the point estimate")
	}
	wantHalf := 1.96 * 0.01
	if math.Abs(iv.Width()-2*wantHalf) > 1e-3 {
		t.Fatalf("CI width = %v, want ~%v", iv.Width(), 2*wantHalf)
	}
}

func TestRelativeError(t *testing.T) {
	if re := RelativeError(0.1, 0.0001); math.Abs(re-0.1) > 1e-12 {
		t.Fatalf("RE = %v, want 0.1", re)
	}
	if !math.IsInf(RelativeError(0, 0.5), 1) {
		t.Fatal("RE of zero estimate should be +Inf")
	}
}

func TestBinomialVariance(t *testing.T) {
	if v := BinomialVariance(0.5, 100); math.Abs(v-0.0025) > 1e-12 {
		t.Fatalf("BinomialVariance = %v", v)
	}
	if v := BinomialVariance(0.5, 0); v != 0 {
		t.Fatalf("BinomialVariance with n=0 = %v, want 0", v)
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	if q := Quantile(data, 0.5); math.Abs(q-5) > 1e-12 {
		t.Fatalf("median = %v, want 5", q)
	}
	if q := Quantile(data, 0); q != 1 {
		t.Fatalf("min = %v, want 1", q)
	}
	if q := Quantile(data, 1); q != 9 {
		t.Fatalf("max = %v, want 9", q)
	}
	single := []float64{42}
	if q := Quantile(single, 0.7); q != 42 {
		t.Fatalf("quantile of singleton = %v", q)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	data := []float64{0, 10}
	if q := Quantile(data, 0.25); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("q(0.25) = %v, want 2.5", q)
	}
}

func TestMeanVarianceHelpers(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	if m := Mean(data); math.Abs(m-2.5) > 1e-12 {
		t.Fatalf("Mean = %v", m)
	}
	if v := Variance(data); math.Abs(v-5.0/3.0) > 1e-12 {
		t.Fatalf("Variance = %v", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("helpers on empty input should return 0")
	}
	if s := StdDev(data); math.Abs(s-math.Sqrt(5.0/3.0)) > 1e-12 {
		t.Fatalf("StdDev = %v", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1.9, 2, 5, 9.99, -1, 10, 11} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Clamped() != 3 {
		t.Fatalf("clamped = %d, want 3", h.Clamped())
	}
	if h.Counts[0] != 3 { // 0, 1.9, -1(clamped)
		t.Fatalf("bucket0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 3 { // 9.99, 10(clamped), 11(clamped)
		t.Fatalf("bucket4 = %d, want 3", h.Counts[4])
	}
	if c := h.BucketCenter(0); math.Abs(c-1) > 1e-12 {
		t.Fatalf("bucket center = %v, want 1", c)
	}
}

func TestHistogramPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewHistogram with 0 buckets did not panic")
			}
		}()
		NewHistogram(0, 1, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewHistogram with empty range did not panic")
			}
		}()
		NewHistogram(1, 1, 4)
	}()
}

func TestIntervalString(t *testing.T) {
	iv := Interval{Lo: 0.1, Hi: 0.2}
	if iv.String() == "" {
		t.Fatal("empty interval string")
	}
	if iv.Width() != 0.1 {
		t.Fatalf("width = %v", iv.Width())
	}
}
