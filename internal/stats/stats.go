// Package stats provides the estimator-quality machinery shared by every
// sampler: numerically stable moment accumulation (Welford), normal-theory
// confidence intervals, relative error, quantiles and histograms.
//
// The paper evaluates estimates against two quality targets (§6): a 1%-wide
// 95% confidence interval for medium/small queries, and 10% relative error
// for tiny/rare queries. Both reduce to functions of the estimate and its
// variance, which this package computes.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator tracks count, mean and variance of a stream of observations
// using Welford's online algorithm, which is numerically stable for the
// long, small-magnitude streams produced by rare-event sampling.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddN folds the observation x in count times. Useful when observations are
// pre-aggregated (e.g. "k of the N0 root paths scored zero").
func (a *Accumulator) AddN(x float64, count int64) {
	for i := int64(0); i < count; i++ {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean, or 0 before any observation.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (divisor n-1), or 0 when
// fewer than two observations have been seen.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// PopulationVariance returns the biased (divisor n) variance.
func (a *Accumulator) PopulationVariance() float64 {
	if a.n < 1 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// StdDev returns the unbiased sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// MeanStdErr returns the standard error of the sample mean.
func (a *Accumulator) MeanStdErr() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.Variance() / float64(a.n))
}

// Merge combines another accumulator into this one, as if every observation
// of other had been Added here. Used to fuse per-worker accumulators.
func (a *Accumulator) Merge(other Accumulator) {
	if other.n == 0 {
		return
	}
	if a.n == 0 {
		*a = other
		return
	}
	n := a.n + other.n
	delta := other.mean - a.mean
	a.m2 += other.m2 + delta*delta*float64(a.n)*float64(other.n)/float64(n)
	a.mean += delta * float64(other.n) / float64(n)
	a.n = n
}

// Reset clears the accumulator.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Width returns the total interval width.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies inside the interval (inclusive).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

func (iv Interval) String() string { return fmt.Sprintf("[%.6g, %.6g]", iv.Lo, iv.Hi) }

// ZCritical returns the standard-normal critical value z such that
// P(|Z| <= z) = confidence. The paper uses confidence = 0.95 (z ≈ 1.96).
func ZCritical(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		panic("stats: confidence must be in (0,1)")
	}
	return NormQuantile(0.5 + confidence/2)
}

// NormQuantile returns the p-quantile of the standard normal distribution
// using the Beasley-Springer-Moro rational approximation, accurate to about
// 1e-9 over (0,1) — far tighter than anything the experiments need.
func NormQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormQuantile argument must be in (0,1)")
	}
	a := [...]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [...]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [...]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [...]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// NormCDF returns the standard normal CDF at x.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// MeanCI returns a normal-approximation confidence interval for a point
// estimate with the given estimator variance. variance is the variance of
// the *estimator* (already divided by the sample size where applicable).
func MeanCI(estimate, variance, confidence float64) Interval {
	z := ZCritical(confidence)
	half := z * math.Sqrt(math.Max(variance, 0))
	return Interval{Lo: estimate - half, Hi: estimate + half}
}

// RelativeError returns sqrt(variance)/estimate, the paper's RE measure
// (§6, "Relative Error"). It returns +Inf when the estimate is zero, which
// correctly forces samplers to keep going until they have seen a hit.
func RelativeError(estimate, variance float64) float64 {
	if estimate <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(math.Max(variance, 0)) / estimate
}

// BinomialVariance returns the variance p(1-p)/n of a binomial proportion
// estimate — the SRS estimator variance (§2.2).
func BinomialVariance(p float64, n int64) float64 {
	if n <= 0 {
		return 0
	}
	return p * (1 - p) / float64(n)
}

// Quantile returns the q-quantile of the data using linear interpolation
// between order statistics. The slice is sorted in place.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		panic("stats: Quantile of empty data")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile must be in [0,1]")
	}
	sort.Float64s(data)
	if len(data) == 1 {
		return data[0]
	}
	pos := q * float64(len(data)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return data[lo]
	}
	frac := pos - float64(lo)
	return data[lo]*(1-frac) + data[hi]*frac
}

// Mean returns the arithmetic mean of data, or 0 for empty input.
func Mean(data []float64) float64 {
	if len(data) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range data {
		sum += v
	}
	return sum / float64(len(data))
}

// Variance returns the unbiased sample variance of data, or 0 when fewer
// than two values are supplied.
func Variance(data []float64) float64 {
	var acc Accumulator
	for _, v := range data {
		acc.Add(v)
	}
	return acc.Variance()
}

// StdDev returns the unbiased sample standard deviation of data.
func StdDev(data []float64) float64 { return math.Sqrt(Variance(data)) }

// Histogram is a fixed-width bucket histogram over [Lo, Hi). Values outside
// the range are clamped into the first/last bucket, which is the behaviour
// the convergence plots want (outliers still show up at the edges).
type Histogram struct {
	Lo, Hi  float64
	Counts  []int64
	total   int64
	clamped int64
}

// NewHistogram builds a histogram with the given number of buckets.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	idx := int(math.Floor(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo)))
	if idx < 0 {
		idx = 0
		h.clamped++
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
		h.clamped++
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// Clamped returns how many observations fell outside [Lo, Hi).
func (h *Histogram) Clamped() int64 { return h.clamped }

// BucketCenter returns the midpoint value of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}
