package opt

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"durability/internal/core"
	"durability/internal/rng"
)

// CoverOptions tunes the covering-plan construction.
type CoverOptions struct {
	// RatioCap bounds the per-level splitting ratio the design may assign
	// (default 8). It doubles as the hardness threshold for boundary
	// insertion: a gap whose advancement probability is below 1/RatioCap
	// cannot be balanced by splitting alone and gets a midpoint boundary.
	RatioCap int
	// MaxExtra caps the boundaries inserted beyond the required set
	// (default 16).
	MaxExtra int
	// MaxEscalations bounds the probe-budget escalation for rare ladders:
	// when a probe sees too few top-level reaches to estimate advancement,
	// its step budget quadruples and it retries, up to this many times
	// (default 4 — the same 256x worst case as Greedy's trial escalation).
	MaxEscalations int
}

func (o CoverOptions) ratioCap() int {
	if o.RatioCap <= 0 {
		return 8
	}
	return o.RatioCap
}

func (o CoverOptions) maxExtra() int {
	if o.MaxExtra <= 0 {
		return 16
	}
	return o.MaxExtra
}

func (o CoverOptions) maxEscalations() int {
	if o.MaxEscalations <= 0 {
		return 4
	}
	return o.MaxEscalations
}

// CoverResult is the output of the covering-plan construction.
type CoverResult struct {
	// Plan contains every required boundary (plus any inserted ones) and
	// the designed per-level splitting ratios.
	Plan core.Plan
	// SearchSteps is the simulator invocations all probes consumed.
	SearchSteps int64
	// Probes counts probe rounds performed.
	Probes int
	// Adv is the final probe's conditional advancement estimate per level
	// (Adv[i] ~= P(reach beta_{i+2} | reach beta_{i+1}), with Adv[0]
	// conditioned on the start); -1 marks levels the probe never reached.
	Adv []float64
}

// Cover builds a covering level plan: a partition whose boundaries include
// every value in required — so one shared g-MLSS run can read an unbiased
// estimate off each of them as a prefix — refined and ratio-balanced for
// efficiency. The batch answering path (internal/serve) uses it to answer
// a whole threshold ladder with one splitting run.
//
// Unlike Greedy, which is free to place boundaries anywhere, the covering
// construction is constrained: required boundaries are load-bearing (they
// are the thresholds being answered) and can never be dropped. Efficiency
// comes from two dials instead. Per-level splitting ratios are matched to
// measured advancement probabilities (r_i ~ 1/p_i, the balanced-growth
// prescription of §5.1 applied level-locally) — essential for dense
// ladders, where advancement at most boundaries is near 1 and any uniform
// ratio > 1 would grow the splitting tree geometrically. And gaps too hard
// for the ratio cap (p_i < 1/RatioCap) receive midpoint boundaries, the
// covering analog of Algorithm 1's obstacle-level refinement.
//
// Advancement is measured with unsplit probe paths that track the maximum
// level reached — deliberately not the s-MLSS landing trials Greedy
// scores with, because a path whose step size exceeds a dense ladder's
// gap width skips landing windows almost surely, which would read as
// "nothing ever advances". Plan choice affects only cost, never
// unbiasedness, so probe error is benign.
func Cover(ctx context.Context, p *Problem, required []float64, opts CoverOptions) (CoverResult, error) {
	if err := p.validate(); err != nil {
		return CoverResult{}, err
	}
	for _, r := range required {
		if r <= 0 || r >= 1 {
			return CoverResult{}, fmt.Errorf("opt: required boundary %v outside (0,1)", r)
		}
	}
	plan, err := core.NewPlan(dedupSorted(required)...)
	if err != nil {
		return CoverResult{}, err
	}

	out := CoverResult{}
	rcap := opts.ratioCap()
	budget := p.trialSteps()
	escalations := 0
	// minReach is the evidence floor: with fewer top-level reaches the
	// advancement profile is too noisy to drive insertion or ratio design.
	const minReach = 8

	var reach []int64
	var roots int64
	var initLevel int
	for {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		var steps int64
		reach, initLevel, roots, steps, err = probeReach(ctx, p, plan, budget, uint64(out.Probes))
		out.Probes++
		out.SearchSteps += steps
		if err != nil {
			return out, err
		}
		m := plan.M()
		if reach[m] < minReach && escalations < opts.maxEscalations() {
			escalations++
			budget *= 4
			continue
		}

		// Find the hardest gap; insert a midpoint when even the ratio cap
		// cannot balance it.
		adv := advFromReach(reach, initLevel, roots)
		worst, worstAdv := -1, 1.0
		for i := initLevel; i < m; i++ {
			a := adv[i]
			if a < 0 { // never reached: no evidence to refine on past here
				break
			}
			if a < worstAdv {
				worst, worstAdv = i, a
			}
		}
		if worst < 0 || worstAdv*float64(rcap) >= 1 || len(plan.Boundaries)-len(required) >= opts.maxExtra() {
			out.Adv = adv[initLevel:]
			break
		}
		lo := 0.0
		if worst > 0 {
			lo = plan.Boundary(worst)
		}
		hi := plan.Boundary(worst + 1)
		mid := lo + (hi-lo)/2
		refined, err := core.NewPlan(append(append([]float64(nil), plan.Boundaries...), mid)...)
		if err != nil {
			// The gap is too narrow to split further; accept the plan.
			out.Adv = adv[initLevel:]
			break
		}
		plan = refined
	}

	plan.Ratios = designRatios(plan, reach, initLevel, roots, p.Ratio, rcap)
	out.Plan = plan
	return out, nil
}

// probeReach simulates unsplit root paths until the step budget is spent
// (every started path runs to completion, so the count of paths is itself
// deterministic) and counts, per level, how many reached it: reach[i] =
// paths whose maximum value-level was >= i. Probe path j of round probeID
// draws its own deterministic substream, so the whole construction is a
// pure function of (problem, required, options).
func probeReach(ctx context.Context, p *Problem, plan core.Plan, stepBudget int64, probeID uint64) (reach []int64, initLevel int, roots, steps int64, err error) {
	m := plan.M()
	initLevel = plan.LevelOf(p.Query.Value(p.Proc.Initial(), 0))
	if initLevel >= m {
		return nil, 0, 0, 0, errors.New("opt: initial state already satisfies the query")
	}
	reach = make([]int64, m+1)
	seed := p.Seed ^ (0x9e3779b97f4a7c15 * (probeID + 1))
	for j := uint64(0); steps < stepBudget; j++ {
		if err := ctx.Err(); err != nil {
			return reach, initLevel, roots, steps, err
		}
		src := rng.NewStream(seed, j)
		st := p.Proc.Initial()
		best := initLevel
		for t := 1; t <= p.Query.Horizon && best < m; t++ {
			p.Proc.Step(st, t, src)
			steps++
			if lvl := plan.LevelOf(p.Query.Value(st, t)); lvl > best {
				best = lvl
			}
		}
		roots++
		for i := initLevel + 1; i <= best; i++ {
			reach[i]++
		}
	}
	return reach, initLevel, roots, steps, nil
}

// advFromReach derives per-level conditional advancement estimates:
// adv[i] = reach[i+1]/reach[i] for levels from initLevel (whose base is
// the probe size) upward. Levels never reached report -1.
func advFromReach(reach []int64, initLevel int, roots int64) []float64 {
	m := len(reach) - 1
	adv := make([]float64, m)
	prev := roots
	for i := initLevel; i < m; i++ {
		if prev == 0 {
			adv[i] = -1
		} else {
			adv[i] = float64(reach[i+1]) / float64(prev)
		}
		prev = reach[i+1]
	}
	return adv
}

// designRatios assigns each splittable level the balanced-growth ratio
// round(1/p_i), clamped to [1, cap]. Levels without advancement evidence
// fall back to the problem's base ratio (clamped) — they are reached too
// rarely for their ratio to dominate cost either way.
func designRatios(plan core.Plan, reach []int64, initLevel int, roots int64, base, cap int) []int {
	m := plan.M()
	adv := advFromReach(reach, initLevel, roots)
	ratios := make([]int, m-1)
	for j := 1; j < m; j++ {
		r := base
		if j >= initLevel && j < len(adv) && adv[j] > 0 {
			r = int(1/adv[j] + 0.5)
		}
		if r < 1 {
			r = 1
		}
		if r > cap {
			r = cap
		}
		ratios[j-1] = r
	}
	return ratios
}

// dedupSorted sorts a copy of vs and drops exact duplicates.
func dedupSorted(vs []float64) []float64 {
	out := append([]float64(nil), vs...)
	sort.Float64s(out)
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}
