package opt

import (
	"context"
	"fmt"
	"math"

	"durability/internal/core"
	"durability/internal/rng"
	"durability/internal/stats"
	"durability/internal/stochastic"
)

// BalancedPlan reconstructs a "balanced growth" partition plan (§5.1):
// boundaries are placed so that every level-advancement probability is
// approximately p* = tau^(1/m), the setting branching-process theory
// identifies as optimal (Eq. 12). The paper obtained such plans by manual
// tuning; this staged pilot search automates the same construction so the
// experiments can use MLSS-BAL baselines without a human in the loop.
//
// The search proceeds level by level. A population of pilot paths is
// simulated from the current entrance states; the next boundary is the
// (1-p*)-quantile of their maximum future value, so about p* of them cross
// it. Paths that cross contribute their first-crossing states as the next
// stage's entrance population (resampled with replacement to keep the
// population size fixed). Replays are driven by per-path deterministic
// substreams, so the crossing states are found without storing whole
// trajectories.
//
// tau is a rough prior estimate of the query answer (an order of magnitude
// suffices); m is the desired number of levels. The returned cost is the
// number of simulator invocations the search consumed.
func BalancedPlan(ctx context.Context, p *Problem, tau float64, m, pilotPaths int) (core.Plan, int64, error) {
	if err := p.validate(); err != nil {
		return core.Plan{}, 0, err
	}
	if tau <= 0 || tau >= 1 {
		return core.Plan{}, 0, fmt.Errorf("opt: prior tau %v must be in (0,1)", tau)
	}
	if m < 1 {
		return core.Plan{}, 0, fmt.Errorf("opt: level count %d must be >= 1", m)
	}
	if pilotPaths < 10 {
		pilotPaths = 10
	}
	pStar := math.Pow(tau, 1/float64(m))

	type entrance struct {
		state stochastic.State
		t     int
	}
	population := make([]entrance, pilotPaths)
	for i := range population {
		population[i] = entrance{state: p.Proc.Initial(), t: 0}
	}

	var cost int64
	var boundaries []float64
	last := 0.0
	resampleSrc := rng.NewStream(p.Seed, 1<<62)

	for stage := 0; len(boundaries) < m-1; stage++ {
		// Pass 1: maximum future value of each pilot path.
		maxes := make([]float64, len(population))
		for i, e := range population {
			src := rng.NewStream(p.Seed, uint64(stage)<<32|uint64(i))
			st := e.state.Clone()
			best := p.Query.Value(st, e.t)
			for t := e.t + 1; t <= p.Query.Horizon; t++ {
				p.Proc.Step(st, t, src)
				cost++
				if v := p.Query.Value(st, t); v > best {
					best = v
				}
			}
			maxes[i] = best
		}
		b := stats.Quantile(append([]float64(nil), maxes...), 1-pStar)
		if b >= 1 || b <= last+1e-9 {
			break // remaining advancement already easier than p*, or no progress
		}
		boundaries = append(boundaries, b)
		last = b

		// Pass 2: replay the same substreams and harvest first-crossing
		// entrance states.
		var next []entrance
		for i, e := range population {
			src := rng.NewStream(p.Seed, uint64(stage)<<32|uint64(i))
			st := e.state.Clone()
			for t := e.t + 1; t <= p.Query.Horizon; t++ {
				p.Proc.Step(st, t, src)
				cost++
				if p.Query.Value(st, t) >= b {
					next = append(next, entrance{state: st.Clone(), t: t})
					break
				}
			}
		}
		if len(next) == 0 {
			break // quantile said some cross, replay disagreed only if degenerate
		}
		// Resample with replacement back to the pilot population size.
		population = population[:0]
		for i := 0; i < pilotPaths; i++ {
			population = append(population, next[resampleSrc.Intn(len(next))])
		}
		if err := ctx.Err(); err != nil {
			return core.Plan{}, cost, err
		}
	}
	plan, err := core.NewPlan(boundaries...)
	if err != nil {
		return core.Plan{}, cost, err
	}
	return plan, cost, nil
}
