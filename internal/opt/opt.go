// Package opt implements the level-design optimisation of §5 of the
// paper: the empirical partition-plan cost metric eval(B) of Eq. 15, the
// adaptive greedy partition strategy of Algorithm 1, and a staged
// balanced-growth search that reconstructs the paper's manually tuned
// "MLSS-BAL" plans.
package opt

import (
	"context"
	"errors"
	"fmt"
	"math"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/stochastic"
)

// Problem bundles everything plan evaluation needs: the model, the query
// and the MLSS execution parameters shared by all trial runs.
type Problem struct {
	Proc    stochastic.Process
	Query   core.Query
	Ratio   int    // splitting ratio used during trials and by the final plan
	Seed    uint64 // base seed; trial i shifts it so trials are independent
	Workers int    // parallel workers for trial simulations

	// TrialSteps is the per-trial simulation budget t0 (in simulator
	// invocations). Default 20000.
	TrialSteps int64
}

func (p *Problem) trialSteps() int64 {
	if p.TrialSteps <= 0 {
		return 20000
	}
	return p.TrialSteps
}

func (p *Problem) validate() error {
	if p.Proc == nil {
		return errors.New("opt: problem has no process")
	}
	if err := p.Query.Validate(); err != nil {
		return err
	}
	if p.Ratio < 1 {
		return fmt.Errorf("opt: splitting ratio %d must be >= 1", p.Ratio)
	}
	return nil
}

// Trial is the outcome of evaluating one candidate plan.
type Trial struct {
	Plan    core.Plan
	Score   float64 // eval(B) of Eq. 15, lower is better; +Inf if the trial saw no hits
	Result  mc.Result
	Entries []int64 // first-landing counts per level from the trial run
}

// Evaluate scores a partition plan with a fixed-budget s-MLSS trial run.
//
// Eq. 15 reads eval(B) = Var(N_m^<1>)/r^(2(m-1)) * c_B/t0. A fixed-budget
// run reports Variance = Var(N_m^<1>)/(N0 r^(2(m-1))) and cost
// c_B = Steps/N0, so eval(B) = Variance * Steps / t0; t0 is identical for
// every candidate and is dropped. Plans whose trial never reaches the
// target score +Inf — they produced no usable estimate at this budget.
//
// Trials use s-MLSS even when the final sampler is g-MLSS: §5's metric is
// derived under the no-skipping surrogate precisely because it is cheap,
// and the choice only affects plan selection, never correctness.
func (p *Problem) Evaluate(ctx context.Context, plan core.Plan, trialID uint64) (Trial, error) {
	if err := p.validate(); err != nil {
		return Trial{}, err
	}
	s := &core.SMLSS{
		Proc:    p.Proc,
		Query:   p.Query,
		Plan:    plan,
		Ratio:   p.Ratio,
		Seed:    p.Seed ^ (0x9e3779b97f4a7c15 * (trialID + 1)),
		Workers: p.Workers,
	}
	res, entries, err := s.Trial(ctx, p.trialSteps())
	if err != nil {
		return Trial{Plan: plan, Result: res, Entries: entries}, err
	}
	score := math.Inf(1)
	if res.Hits > 0 && res.Variance > 0 {
		score = res.Variance * float64(res.Steps)
	}
	return Trial{Plan: plan, Score: score, Result: res, Entries: entries}, nil
}

// advancement returns the estimated level-advancement probabilities
// implied by a trial's entry counts: adv[0] = N_1/N_0 (from the root
// level) and adv[i] = N_{i+1}/(r*N_i) for interior levels. Levels with no
// entries report probability 0.
func advancement(entries []int64, roots int64, ratio int) []float64 {
	m := len(entries) - 1 // entries indexed 1..m
	adv := make([]float64, m)
	prev := roots
	for i := 1; i <= m; i++ {
		if prev > 0 {
			denom := float64(prev)
			if i > 1 {
				denom *= float64(ratio)
			}
			adv[i-1] = float64(entries[i]) / denom
		}
		prev = entries[i]
	}
	return adv
}

// GreedyResult is the output of the adaptive greedy partition search.
type GreedyResult struct {
	Plan        core.Plan // the selected partition plan
	Score       float64   // its eval(B) score
	SearchSteps int64     // simulator invocations spent on all trial runs
	Rounds      int       // boundary-placement rounds performed
	Trials      []Trial   // every candidate evaluation, for diagnostics
}

// GreedyOptions tunes Algorithm 1.
type GreedyOptions struct {
	// Candidates per round (Line 5 of Algorithm 1); they are placed
	// uniformly inside the interval under refinement. Default 5.
	Candidates int
	// MaxBoundaries caps the number of rounds as a safety net. Default 10.
	MaxBoundaries int
	// MaxEscalations bounds the trial-budget escalation for rare queries:
	// when a whole round of candidates produces no usable estimate (no
	// trial reached the target), the budget quadruples and the round
	// retries, up to this many times. Default 4 (256x the base budget).
	MaxEscalations int
}

func (o GreedyOptions) candidates() int {
	if o.Candidates <= 0 {
		return 5
	}
	return o.Candidates
}

func (o GreedyOptions) maxBoundaries() int {
	if o.MaxBoundaries <= 0 {
		return 10
	}
	return o.MaxBoundaries
}

func (o GreedyOptions) maxEscalations() int {
	if o.MaxEscalations <= 0 {
		return 4
	}
	return o.MaxEscalations
}

// Greedy runs the adaptive greedy partition strategy (Algorithm 1 of §5.2):
// starting from the whole interval (0,1) it places one boundary per round,
// keeping a candidate only if it improves eval(B), and always refines next
// the level with the smallest advancement probability — the "obstacle"
// level. It stops the first time no candidate improves the metric.
func Greedy(ctx context.Context, p *Problem, opts GreedyOptions) (GreedyResult, error) {
	if err := p.validate(); err != nil {
		return GreedyResult{}, err
	}
	out := GreedyResult{Score: math.Inf(1)}
	vlo, vhi := 0.0, 1.0
	var best Trial
	haveBest := false
	trialID := uint64(0)
	// Work on a copy so budget escalation does not mutate the caller's
	// problem definition.
	prob := *p
	escalations := 0

	for round := 0; round < opts.maxBoundaries(); round++ {
		k := opts.candidates()
		improved := false
		sawEstimate := false
		var roundBest Trial
		for c := 1; c <= k; c++ {
			v := vlo + (vhi-vlo)*float64(c)/float64(k+1)
			plan, err := core.NewPlan(append(append([]float64(nil), best.Plan.Boundaries...), v)...)
			if err != nil {
				continue // candidate collided with an existing boundary
			}
			tr, err := prob.Evaluate(ctx, plan, trialID)
			trialID++
			out.SearchSteps += tr.Result.Steps
			if err != nil {
				return out, err
			}
			out.Trials = append(out.Trials, tr)
			if !math.IsInf(tr.Score, 1) {
				sawEstimate = true
			}
			if tr.Score < out.Score {
				out.Score = tr.Score
				roundBest = tr
				improved = true
			}
		}
		if !improved {
			// Rare-query escalation: if no candidate trial ever reached
			// the target, the budget was simply too small to see a hit —
			// quadruple it and retry the round rather than settling for a
			// blind plan.
			if !sawEstimate && !haveBest && escalations < opts.maxEscalations() {
				escalations++
				prob.TrialSteps = prob.trialSteps() * 4
				round--
				continue
			}
			break
		}
		best = roundBest
		haveBest = true
		out.Plan = best.Plan
		out.Rounds = round + 1

		// Line 11–12: refine the level with the smallest advancement
		// probability next.
		adv := advancement(best.Entries, best.Result.Paths, p.Ratio)
		worst := 0
		for i := 1; i < len(adv); i++ {
			if adv[i] < adv[worst] {
				worst = i
			}
		}
		vlo = 0.0
		if worst > 0 {
			vlo = best.Plan.Boundary(worst)
		}
		vhi = 1.0
		if worst < len(adv)-1 {
			vhi = best.Plan.Boundary(worst + 1)
		}
	}
	if !haveBest {
		// No plan beat +Inf: fall back to no interior boundaries (SRS-like).
		out.Plan = core.Plan{}
	}
	return out, nil
}
