package opt

import (
	"context"
	"math"
	"testing"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/stochastic"
)

// hardChain returns a birth-death chain with a rare target, the natural
// test-bed for level design: plans with well-placed levels score far
// better than SRS-like plans.
func hardChain() (*stochastic.MarkovChain, core.Query, float64) {
	chain := stochastic.BirthDeathChain(16, 0.40, 0)
	const horizon, beta = 80, 12
	q := core.Query{Value: core.ThresholdValue(stochastic.ChainIndex, beta), Horizon: horizon}
	target := map[int]bool{}
	for i := beta; i < 16; i++ {
		target[i] = true
	}
	return chain, q, chain.HitProbability(target, horizon)
}

func problem(t *testing.T) *Problem {
	t.Helper()
	chain, q, _ := hardChain()
	return &Problem{
		Proc:       chain,
		Query:      q,
		Ratio:      3,
		Seed:       11,
		TrialSteps: 40_000,
	}
}

func TestProblemValidate(t *testing.T) {
	ctx := context.Background()
	if _, err := (&Problem{}).Evaluate(ctx, core.Plan{}, 0); err == nil {
		t.Error("empty problem accepted")
	}
	chain, q, _ := hardChain()
	if _, err := (&Problem{Proc: chain, Query: q, Ratio: 0}).Evaluate(ctx, core.Plan{}, 0); err == nil {
		t.Error("zero ratio accepted")
	}
	if _, err := (&Problem{Proc: chain, Query: core.Query{}, Ratio: 2}).Evaluate(ctx, core.Plan{}, 0); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestEvaluateScoresPlans(t *testing.T) {
	p := problem(t)
	ctx := context.Background()
	// A reasonable 3-level plan must beat the boundary-free (SRS-like)
	// plan on the work-normalised variance metric for this rare event.
	good, err := p.Evaluate(ctx, core.MustPlan(4.0/12, 8.0/12), 0)
	if err != nil {
		t.Fatal(err)
	}
	srs, err := p.Evaluate(ctx, core.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if good.Score >= srs.Score {
		t.Fatalf("3-level plan score %v not better than SRS-like score %v", good.Score, srs.Score)
	}
	if good.Result.Steps == 0 || good.Entries == nil {
		t.Fatal("trial accounting missing")
	}
}

func TestEvaluateNoHitsScoresInf(t *testing.T) {
	// A horizon of 5 makes state 12 unreachable (the chain moves one
	// state per step), so every trial ends hitless.
	p := problem(t)
	p.Query.Horizon = 5
	p.TrialSteps = 2000
	tr, err := p.Evaluate(context.Background(), core.Plan{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tr.Score, 1) {
		t.Fatalf("no-hit trial scored %v, want +Inf", tr.Score)
	}
}

func TestAdvancement(t *testing.T) {
	// entries indexed 1..m: N1=50, N2=30, N3=9 with 100 roots, r=3.
	adv := advancement([]int64{0, 50, 30, 9}, 100, 3)
	want := []float64{0.5, 30.0 / 150, 9.0 / 90}
	for i := range want {
		if math.Abs(adv[i]-want[i]) > 1e-12 {
			t.Fatalf("advancement = %v, want %v", adv, want)
		}
	}
	// Dead level: no entries anywhere downstream.
	adv = advancement([]int64{0, 0, 0}, 100, 3)
	if adv[0] != 0 || adv[1] != 0 {
		t.Fatalf("dead-level advancement = %v, want zeros", adv)
	}
}

func TestGreedyFindsMultiLevelPlan(t *testing.T) {
	p := problem(t)
	res, err := Greedy(context.Background(), p, GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Boundaries) == 0 {
		t.Fatalf("greedy found no boundaries: %+v", res)
	}
	if res.SearchSteps == 0 || res.Rounds == 0 {
		t.Fatalf("search accounting missing: %+v", res)
	}
	if math.IsInf(res.Score, 1) {
		t.Fatal("greedy kept an infinite score")
	}
	// The plan must beat the SRS-like plan's score.
	srs, err := p.Evaluate(context.Background(), core.Plan{}, 999)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score >= srs.Score {
		t.Fatalf("greedy score %v not better than SRS score %v", res.Score, srs.Score)
	}
}

// Rare queries whose base trial budget never reaches the target must not
// leave the search blind: the budget escalates until trials produce
// scores, and the final plan still has boundaries.
func TestGreedyEscalatesTrialBudget(t *testing.T) {
	p := problem(t)
	p.TrialSteps = 500 // far too small to see the ~1e-3 event
	res, err := Greedy(context.Background(), p, GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Boundaries) == 0 {
		t.Fatalf("escalating greedy still found no boundaries: %+v", res)
	}
	if math.IsInf(res.Score, 1) {
		t.Fatal("escalating greedy kept an infinite score")
	}
	// The caller's problem must not be mutated by the escalation.
	if p.TrialSteps != 500 {
		t.Fatalf("caller's TrialSteps mutated to %d", p.TrialSteps)
	}
}

func TestGreedyRespectsMaxBoundaries(t *testing.T) {
	p := problem(t)
	res, err := Greedy(context.Background(), p, GreedyOptions{MaxBoundaries: 2, Candidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Boundaries) > 2 {
		t.Fatalf("greedy placed %d boundaries, cap was 2", len(res.Plan.Boundaries))
	}
}

func TestGreedyPlanIsUsable(t *testing.T) {
	chain, q, want := hardChain()
	p := problem(t)
	res, err := Greedy(context.Background(), p, GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := &core.GMLSS{Proc: chain, Query: q, Plan: res.Plan, Ratio: 3,
		Stop: mc.Budget{Steps: 600_000}, Seed: 21}
	est, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.P-want) > 0.25*want {
		t.Fatalf("g-MLSS with greedy plan: %v, exact %v", est.P, want)
	}
}

func TestBalancedPlanAdvancementRoughlyEqual(t *testing.T) {
	chain, q, tau := hardChain()
	p := &Problem{Proc: chain, Query: q, Ratio: 3, Seed: 31}
	const m = 4
	plan, cost, err := BalancedPlan(context.Background(), p, tau, m, 400)
	if err != nil {
		t.Fatal(err)
	}
	if cost == 0 {
		t.Fatal("balanced search reported zero cost")
	}
	if len(plan.Boundaries) == 0 {
		t.Fatal("balanced search found no boundaries")
	}
	// Measure the advancement probabilities the plan actually induces.
	s := &core.SMLSS{Proc: chain, Query: q, Plan: plan, Ratio: 3, Seed: 32}
	_, entries, err := s.Trial(context.Background(), 300_000)
	if err != nil {
		t.Fatal(err)
	}
	counts := entries
	roots := int64(0)
	// Recover roots from the trial: advancement() wants N0; rerun cheaply.
	res, _, err := s.Trial(context.Background(), 300_000)
	if err != nil {
		t.Fatal(err)
	}
	roots = res.Paths
	adv := advancement(counts, roots, 3)
	pStar := math.Pow(tau, 1.0/float64(len(adv)))
	for i, a := range adv {
		if a == 0 {
			t.Fatalf("level %d advancement is zero: %v", i, adv)
		}
		if a < pStar/6 || a > math.Min(1, pStar*6) {
			t.Fatalf("level %d advancement %v far from balanced target %v (all: %v)", i, a, pStar, adv)
		}
	}
}

func TestBalancedPlanArgumentChecks(t *testing.T) {
	chain, q, _ := hardChain()
	p := &Problem{Proc: chain, Query: q, Ratio: 3, Seed: 33}
	ctx := context.Background()
	if _, _, err := BalancedPlan(ctx, p, 0, 3, 100); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, _, err := BalancedPlan(ctx, p, 1.5, 3, 100); err == nil {
		t.Error("tau>1 accepted")
	}
	if _, _, err := BalancedPlan(ctx, p, 0.1, 0, 100); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestBalancedPlanEasyEventNeedsFewLevels(t *testing.T) {
	// For a very likely event, the first quantile is already at the
	// target and no boundaries are needed.
	chain := stochastic.BirthDeathChain(6, 0.7, 3)
	q := core.Query{Value: core.ThresholdValue(stochastic.ChainIndex, 4), Horizon: 50}
	p := &Problem{Proc: chain, Query: q, Ratio: 3, Seed: 34}
	plan, _, err := BalancedPlan(context.Background(), p, 0.9, 4, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Boundaries) > 1 {
		t.Fatalf("easy event got %d boundaries, want <= 1", len(plan.Boundaries))
	}
}
