// Package rng provides the deterministic pseudo-random substrate used by
// every sampler in this repository.
//
// The samplers in internal/mc and internal/core must be reproducible (the
// experiment harness re-runs them hundreds of times and compares
// distributions) and parallelisable (root paths are simulated on a worker
// pool). Both needs are served by xoshiro256**, a small, fast generator
// with an easy way to derive statistically independent streams: we seed
// each stream through SplitMix64, following the generator authors'
// recommendation.
//
// The package also implements the non-uniform distributions the paper's
// simulation models draw from: exponential (queue service times), Poisson
// (arrival counts and jump counts), normal (AR noise, MDN sampling),
// uniform (jump sizes), and categorical (Markov transitions, mixture
// component choice).
package rng

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Source is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; derive one Source per goroutine with NewStream or Split.
type Source struct {
	s0, s1, s2, s3 uint64
	// cached second normal variate from the Box-Muller transform
	normCached bool
	normValue  float64
}

// splitmix64 advances a 64-bit state and returns a well-mixed output. It is
// used only for seeding, as recommended by the xoshiro authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Two Sources built from
// the same seed produce identical sequences.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// NewStream returns a Source for the stream-th independent substream of the
// given seed. Streams with different indices are, for practical purposes,
// statistically independent; this is how the parallel samplers hand one
// generator to each worker.
func NewStream(seed, stream uint64) *Source {
	var s Source
	s.SeedStream(seed, stream)
	return &s
}

// SeedStream re-seeds s in place to the stream-th substream of seed,
// leaving it in exactly the state NewStream(seed, stream) returns —
// cached Box-Muller variate cleared included. The vectorized simulation
// kernel keeps one pooled Source per lane and re-seeds it per root, so
// the per-root substream contract holds without a per-root allocation.
// The substream analyzer (cmd/durlint) applies the same rule here as at
// NewStream call sites: keep the seed argument pristine and put identity
// in the stream index.
func (s *Source) SeedStream(seed, stream uint64) {
	mix := seed
	_ = splitmix64(&mix)
	mix ^= 0x6a09e667f3bcc909 * (stream + 1)
	s.Reseed(mix)
}

// Reseed resets the Source to the state derived from seed, discarding any
// cached variates.
func (s *Source) Reseed(seed uint64) {
	state := seed
	s.s0 = splitmix64(&state)
	s.s1 = splitmix64(&state)
	s.s2 = splitmix64(&state)
	s.s3 = splitmix64(&state)
	s.normCached = false
	s.normValue = 0
}

// Split derives a fresh, independent Source from the current state without
// disturbing the parent's future output beyond one draw.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// sourceMarshalLen is the wire size of a marshalled Source: four 64-bit
// state words, the Box-Muller cache flag and the cached variate.
const sourceMarshalLen = 4*8 + 1 + 8

// MarshalBinary implements encoding.BinaryMarshaler: the full generator
// state, cached Box-Muller variate included, so a restored Source resumes
// the sequence at exactly the draw where the original stood. Snapshots of
// serving state (internal/persist) rely on this for the bit-for-bit
// determinism guarantee across restarts; gob picks the interface up
// automatically.
func (s *Source) MarshalBinary() ([]byte, error) {
	buf := make([]byte, sourceMarshalLen)
	binary.LittleEndian.PutUint64(buf[0:], s.s0)
	binary.LittleEndian.PutUint64(buf[8:], s.s1)
	binary.LittleEndian.PutUint64(buf[16:], s.s2)
	binary.LittleEndian.PutUint64(buf[24:], s.s3)
	if s.normCached {
		buf[32] = 1
	}
	binary.LittleEndian.PutUint64(buf[33:], math.Float64bits(s.normValue))
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, restoring the
// exact state captured by MarshalBinary.
func (s *Source) UnmarshalBinary(data []byte) error {
	if len(data) != sourceMarshalLen {
		return fmt.Errorf("rng: marshalled Source is %d bytes, want %d", len(data), sourceMarshalLen)
	}
	s.s0 = binary.LittleEndian.Uint64(data[0:])
	s.s1 = binary.LittleEndian.Uint64(data[8:])
	s.s2 = binary.LittleEndian.Uint64(data[16:])
	s.s3 = binary.LittleEndian.Uint64(data[24:])
	s.normCached = data[32] == 1
	s.normValue = math.Float64frombits(binary.LittleEndian.Uint64(data[33:]))
	return nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1), never exactly zero. Inverse
// transforms (exponential sampling) need an open interval to avoid log(0).
func (s *Source) Float64Open() float64 {
	for {
		v := s.Float64()
		if v > 0 {
			return v
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	bound := uint64(n)
	for {
		x := s.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard normal variate via the Box-Muller transform. One
// transform produces two variates; the second is cached for the next call.
func (s *Source) Norm() float64 {
	if s.normCached {
		s.normCached = false
		return s.normValue
	}
	u1 := s.Float64Open()
	u2 := s.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	s.normValue = r * math.Sin(theta)
	s.normCached = true
	return r * math.Cos(theta)
}

// NormMS returns a normal variate with the given mean and standard
// deviation.
func (s *Source) NormMS(mean, stddev float64) float64 {
	return mean + stddev*s.Norm()
}

// Exp returns an exponential variate with the given rate (mean 1/rate) by
// inverse transform. It panics if rate <= 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with rate <= 0")
	}
	return -math.Log(s.Float64Open()) / rate
}

// Poisson returns a Poisson-distributed count with the given mean. For
// small means it uses Knuth's product method; for large means it switches
// to the normal approximation with continuity correction, which is accurate
// to well under the noise floor of every experiment in this repository.
func (s *Source) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		limit := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= limit {
				return k
			}
			k++
		}
	default:
		v := math.Round(s.NormMS(mean, math.Sqrt(mean)))
		if v < 0 {
			return 0
		}
		return int(v)
	}
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Categorical draws an index proportionally to the given non-negative
// weights. It panics if the weights are empty or sum to a non-positive
// value.
func (s *Source) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Categorical called with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: Categorical called with a negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical weights sum to zero")
	}
	target := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm fills dst with a uniform random permutation of [0, len(dst)).
func (s *Source) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}
