package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 0 and 1 collided %d times", same)
	}
}

func TestReseedResetsState(t *testing.T) {
	s := New(99)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Reseed(99)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("draw %d after reseed = %d, want %d", i, got, first[i])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want 0.5 +/- 0.005", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(6)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d has %d draws, want ~%v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(8)
	const n = 300000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(9)
	for _, rate := range []float64{0.5, 1, 2, 4.5} {
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := s.Exp(rate)
			if v < 0 {
				t.Fatalf("Exp(%v) returned negative %v", rate, v)
			}
			sum += v
		}
		mean := sum / n
		want := 1 / rate
		if math.Abs(mean-want) > 0.03*want {
			t.Errorf("Exp(%v) mean = %v, want ~%v", rate, mean, want)
		}
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMoments(t *testing.T) {
	s := New(10)
	for _, mean := range []float64{0.5, 0.8, 5, 40, 100} {
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(s.Poisson(mean))
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.02 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(variance-mean) > 0.10*mean+0.05 {
			t.Errorf("Poisson(%v) variance = %v, want ~%v", mean, variance, mean)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	s := New(11)
	if got := s.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := s.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(12)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) hit rate = %v", rate)
	}
}

func TestCategoricalWeights(t *testing.T) {
	s := New(13)
	weights := []float64{1, 2, 7}
	const n = 100000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[s.Categorical(weights)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("category %d drawn %d times, want ~%v", i, counts[i], want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {0, 0}, {1, -1}}
	for _, weights := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", weights)
				}
			}()
			New(1).Categorical(weights)
		}()
	}
}

func TestUniformRange(t *testing.T) {
	s := New(14)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(5, 10)
		if v < 5 || v >= 10 {
			t.Fatalf("Uniform(5,10) = %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(15)
	p := make([]int, 20)
	s.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(16)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and split child collided %d times", same)
	}
}

// Property: Float64 output is always a valid probability-like value for any
// seed, exercised via testing/quick.
func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 64; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds give identical streams regardless of seed value.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 32; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = s.Norm()
	}
	_ = sink
}

func BenchmarkPoissonSmallMean(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = s.Poisson(0.8)
	}
	_ = sink
}

// A Source restored from its marshalled form must resume the sequence at
// exactly the draw where the original stood — including the cached second
// Box-Muller variate, which an odd number of Norm calls leaves pending.
func TestSourceMarshalRoundTrip(t *testing.T) {
	s := NewStream(42, 17)
	for i := 0; i < 1000; i++ {
		s.Uint64()
	}
	s.Norm() // leave a cached variate pending

	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r Source
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if g, w := r.Norm(), s.Norm(); g != w {
			t.Fatalf("restored Norm draw %d = %v, original %v", i, g, w)
		}
		if g, w := r.Uint64(), s.Uint64(); g != w {
			t.Fatalf("restored Uint64 draw %d = %d, original %d", i, g, w)
		}
	}
}

func TestSourceUnmarshalRejectsBadLength(t *testing.T) {
	var r Source
	if err := r.UnmarshalBinary(make([]byte, 7)); err == nil {
		t.Fatal("UnmarshalBinary accepted a truncated blob")
	}
}
