package rng

import "testing"

// TestSeedStreamMatchesNewStream asserts the in-place re-seed leaves a
// Source in exactly the state NewStream builds, which is what lets the
// simulation kernel pool one Source per lane across roots.
func TestSeedStreamMatchesNewStream(t *testing.T) {
	var pooled Source
	for stream := uint64(0); stream < 50; stream++ {
		pooled.SeedStream(1234, stream)
		fresh := NewStream(1234, stream)
		for i := 0; i < 100; i++ {
			if got, want := pooled.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("stream %d draw %d: pooled %x != fresh %x", stream, i, got, want)
			}
		}
	}
}

// TestSeedStreamClearsNormCache asserts re-seeding discards the cached
// Box-Muller variate: a pooled lane source must not leak half a
// transform from the previous root into the next one.
func TestSeedStreamClearsNormCache(t *testing.T) {
	var pooled Source
	pooled.SeedStream(9, 0)
	pooled.Norm() // leaves the second variate cached
	pooled.SeedStream(9, 1)
	if got, want := pooled.Norm(), NewStream(9, 1).Norm(); got != want {
		t.Fatalf("first Norm after re-seed: pooled %v != fresh %v", got, want)
	}
}
