// Package cluster implements the distributed MLSS execution sketched in
// §3.1 of the paper: "Since the simulations of root paths are independent,
// it is straightforward to parallelize MLSS on a group of machines ... We
// monitor the progress of simulations and synchronize counters on the
// machines periodically to produce a running estimate; the procedure
// stops until the estimate reaches the desired accuracy level."
//
// A Worker serves shard requests over net/rpc (stdlib, gob-encoded): it
// rebuilds the model locally from a registered factory, simulates a range
// of root paths with g-MLSS bookkeeping, and returns the counters. The
// Coordinator fans root-index ranges out to workers, merges counters,
// computes the running estimate and its bootstrap variance, and stops when
// the quality target is met. Determinism carries over: root path i draws
// from substream i regardless of which worker simulates it, so a cluster
// run returns bit-for-bit the same estimate as a single-machine run with
// the same seed.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/rng"
	"durability/internal/stochastic"
)

// ModelFactory rebuilds a model and its observable on a worker.
type ModelFactory func() (stochastic.Process, stochastic.Observer, error)

// Registry maps model names to factories. Workers must register every
// model the coordinator will reference; processes themselves are not
// serialisable (they may hold neural networks), so only names travel.
type Registry map[string]ModelFactory

// ShardRequest asks a worker to simulate root paths [RootLo, RootHi).
type ShardRequest struct {
	Model      string
	Beta       float64
	Horizon    int
	Boundaries []float64
	Ratio      int
	Seed       uint64
	RootLo     int64
	RootHi     int64
	Groups     int // bootstrap groups to return (default 16)
}

// ShardReply carries the shard's counters back to the coordinator.
type ShardReply struct {
	Result core.ShardResult
}

// Worker is the rpc service running on each machine.
type Worker struct {
	registry Registry
	workers  int // local simulation parallelism per shard
}

// NewWorker builds a worker that simulates each shard with the given
// local parallelism.
func NewWorker(registry Registry, localWorkers int) *Worker {
	if localWorkers < 1 {
		localWorkers = 1
	}
	return &Worker{registry: registry, workers: localWorkers}
}

// Run answers one shard request. The method shape follows net/rpc.
func (w *Worker) Run(req ShardRequest, reply *ShardReply) error {
	factory, ok := w.registry[req.Model]
	if !ok {
		return fmt.Errorf("cluster: worker has no model %q", req.Model)
	}
	proc, obs, err := factory()
	if err != nil {
		return err
	}
	plan, err := core.NewPlan(req.Boundaries...)
	if err != nil {
		return err
	}
	g := &core.GMLSS{
		Proc:    proc,
		Query:   core.Query{Value: core.ThresholdValue(obs, req.Beta), Horizon: req.Horizon},
		Plan:    plan,
		Ratio:   req.Ratio,
		Stop:    mc.Budget{Steps: 1}, // unused by RunRoots; validate() wants a rule
		Seed:    req.Seed,
		Workers: w.workers,
	}
	groups := req.Groups
	if groups <= 0 {
		groups = 16
	}
	res, err := g.RunRoots(context.Background(), req.RootLo, req.RootHi, groups)
	if err != nil {
		return err
	}
	reply.Result = res
	return nil
}

// Serve registers the worker on an rpc server and serves connections on
// the listener until it is closed. It returns the address it listens on.
func Serve(w *Worker, ln net.Listener) string {
	srv := rpc.NewServer()
	// Registration only fails for malformed services; Worker is static.
	if err := srv.RegisterName("Worker", w); err != nil {
		panic(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln.Addr().String()
}

// Coordinator drives a durability query across a set of worker addresses.
type Coordinator struct {
	Model      string
	Beta       float64
	Horizon    int
	Boundaries []float64
	Ratio      int
	Stop       mc.StopRule
	Seed       uint64

	ShardRoots    int64 // roots per shard request (default 256)
	BootstrapReps int   // replicates per variance evaluation (default 200)

	// M and InitLevel describe the plan; they are computed from a local
	// factory so the coordinator can run the estimator without a model.
	// Registry must contain Model on the coordinator as well.
	Registry Registry
}

// Run executes the distributed query against the given worker addresses.
func (c *Coordinator) Run(ctx context.Context, addrs []string) (mc.Result, error) {
	if len(addrs) == 0 {
		return mc.Result{}, errors.New("cluster: no workers")
	}
	if c.Stop == nil {
		return mc.Result{}, errors.New("cluster: coordinator requires a stop rule")
	}
	factory, ok := c.Registry[c.Model]
	if !ok {
		return mc.Result{}, fmt.Errorf("cluster: coordinator has no model %q", c.Model)
	}
	proc, obs, err := factory()
	if err != nil {
		return mc.Result{}, err
	}
	plan, err := core.NewPlan(c.Boundaries...)
	if err != nil {
		return mc.Result{}, err
	}
	m := plan.M()
	initLevel := plan.LevelOf(core.ThresholdValue(obs, c.Beta)(proc.Initial(), 0))

	clients := make([]*rpc.Client, len(addrs))
	dead := make([]bool, len(addrs))
	for i, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return mc.Result{}, fmt.Errorf("cluster: dialing %s: %w", addr, err)
		}
		clients[i] = rpc.NewClient(conn)
		defer clients[i].Close()
	}
	alive := func() []int {
		var out []int
		for i := range clients {
			if !dead[i] {
				out = append(out, i)
			}
		}
		return out
	}

	shardRoots := c.ShardRoots
	if shardRoots <= 0 {
		shardRoots = 256
	}
	reps := c.BootstrapReps
	if reps <= 0 {
		reps = 200
	}
	ratio := c.Ratio
	if ratio <= 0 {
		ratio = 3
	}

	start := time.Now()
	agg := core.NewCounters(m)
	var groups []core.Counters
	var rootsPerGroup int64
	var res mc.Result
	bootSrc := rng.NewStream(c.Seed, 1<<61)
	next := int64(0)

	merge := func(r core.ShardResult) {
		agg.Add(r.Agg)
		groups = append(groups, r.Groups...)
		rootsPerGroup = r.Roots / int64(len(r.Groups))
		res.Steps += r.Steps
		res.Paths += r.Roots
		res.Hits += int64(r.Agg.Hits)
	}
	call := func(idx int, req ShardRequest) (core.ShardResult, error) {
		var reply ShardReply
		if err := clients[idx].Call("Worker.Run", req, &reply); err != nil {
			return core.ShardResult{}, err
		}
		return reply.Result, nil
	}
	// retry reassigns a failed shard to the remaining live workers, one
	// by one. Root ranges travel with the request, so a retried shard
	// simulates exactly the substreams the dead worker was assigned and
	// determinism is preserved.
	retry := func(req ShardRequest, lastErr error) (core.ShardResult, error) {
		for _, idx := range alive() {
			r, err := call(idx, req)
			if err == nil {
				return r, nil
			}
			dead[idx] = true
			lastErr = err
		}
		return core.ShardResult{}, fmt.Errorf("cluster: shard [%d,%d) failed on every live worker: %w",
			req.RootLo, req.RootHi, lastErr)
	}

	for {
		if err := ctx.Err(); err != nil {
			res.Elapsed = time.Since(start)
			return res, err
		}
		workers := alive()
		if len(workers) == 0 {
			res.Elapsed = time.Since(start)
			return res, errors.New("cluster: no live workers remain")
		}
		// One synchronisation round: every live worker simulates one
		// shard. A worker that fails its shard is marked dead and the
		// shard is retried on the survivors, so losing a machine mid-run
		// costs its in-flight shard's work, not the query.
		type outcome struct {
			req    ShardRequest
			result core.ShardResult
			err    error
		}
		results := make([]outcome, len(workers))
		var wg sync.WaitGroup
		for i, idx := range workers {
			req := ShardRequest{
				Model:      c.Model,
				Beta:       c.Beta,
				Horizon:    c.Horizon,
				Boundaries: c.Boundaries,
				Ratio:      ratio,
				Seed:       c.Seed,
				RootLo:     next,
				RootHi:     next + shardRoots,
				Groups:     16,
			}
			next += shardRoots
			results[i].req = req
			wg.Add(1)
			go func(i, idx int, req ShardRequest) {
				defer wg.Done()
				results[i].result, results[i].err = call(idx, req)
			}(i, idx, req)
		}
		wg.Wait()
		for i, idx := range workers {
			if results[i].err == nil {
				merge(results[i].result)
				continue
			}
			dead[idx] = true
			r, err := retry(results[i].req, results[i].err)
			if err != nil {
				res.Elapsed = time.Since(start)
				return res, err
			}
			merge(r)
		}

		res.P = core.EstimateFromCounters(agg, res.Paths, m, initLevel)
		res.Variance = core.BootstrapVarianceFromGroups(groups, rootsPerGroup, m, initLevel, reps, bootSrc)
		res.Elapsed = time.Since(start)
		if c.Stop.Done(res) {
			return res, nil
		}
	}
}
